(* gcr: command-line interface to the GC real-cost reproduction.

   Subcommands mirror the repo's deliverables: run single configurations,
   measure minimum heaps, and regenerate any of the paper's tables and
   figures from a campaign. *)

open Cmdliner
module Registry = Gcr_gcs.Registry
module Suite = Gcr_workloads.Suite
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement
module Harness = Gcr_core.Harness
module Report = Gcr_core.Report
module Minheap = Gcr_core.Minheap
module Validate = Gcr_core.Validate
module Pool = Gcr_sched.Pool
module Result_cache = Gcr_sched.Result_cache
module Obs = Gcr_obs.Obs
module Perfetto = Gcr_obs.Perfetto
module Engine = Gcr_engine.Engine
module Tape = Gcr_tape.Tape
module Tape_gen = Gcr_workloads.Tape_gen
module Decision_source = Gcr_workloads.Decision_source
module Controller = Gcr_policy.Controller
module Market = Gcr_core.Market

(* ---------- shared argument parsing ---------- *)

let bench_conv =
  let parse s =
    match Suite.find s with
    | Some spec -> Ok spec
    | None -> Error (`Msg (Printf.sprintf "unknown benchmark %S (see `gcr list`)" s))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf s.Spec.name)

let gc_conv =
  let parse s =
    match Registry.of_name s with
    | Some kind -> Ok kind
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown collector %S (valid: %s)" s
               (String.concat ", " Registry.valid_names)))
  in
  Arg.conv (parse, fun ppf k -> Format.pp_print_string ppf (Registry.name k))

let benchmarks_arg =
  let doc = "Benchmarks to run (repeatable; default: the whole suite)." in
  Arg.(value & opt_all bench_conv [] & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc)

let gcs_arg =
  let doc = "Collectors to run (repeatable; default: the whole frontier)." in
  Arg.(value & opt_all gc_conv [] & info [ "g"; "gc" ] ~docv:"GC" ~doc)

let invocations_arg =
  let doc = "Invocations per configuration (distinct seeds)." in
  Arg.(value & opt int 5 & info [ "n"; "invocations" ] ~docv:"N" ~doc)

let scale_arg =
  let doc = "Workload scale factor (run length and machine memory together)." in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"S" ~doc)

let seed_arg =
  let doc = "Base random seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let factor_arg =
  let doc = "Heap size as a multiple of the benchmark's minimum heap." in
  Arg.(value & opt float 3.0 & info [ "x"; "heap-factor" ] ~docv:"F" ~doc)

let factors_arg =
  let doc =
    "Heap factors for grid experiments (comma separated; default: the twelve-point \
     grid, a superset of the paper's eight sizes)."
  in
  Arg.(
    value
    & opt (list float) Harness.default_heap_factors
    & info [ "factors" ] ~docv:"F1,F2,.." ~doc)

let quiet_arg =
  let doc = "Suppress progress output." in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains draining the campaign queue (default: $(b,GCR_JOBS) or 1). \
     Campaign output is bit-identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let workers_arg =
  let doc =
    "Forked worker processes executing the campaign through the multi-process \
     fabric (default: $(b,GCR_WORKERS) if set, else in-process).  Each worker owns \
     a whole OCaml runtime, so throughput scales with cores; campaign output is \
     bit-identical for every worker count.  When both $(b,--workers) and \
     $(b,--jobs) are given, the fabric wins: $(b,--jobs) is ignored with a notice."
  in
  Arg.(value & opt (some int) None & info [ "w"; "workers" ] ~docv:"N" ~doc)

let listen_arg =
  let doc =
    "With $(b,--workers N): accept the N workers as TCP connections at \
     $(i,HOST:PORT) instead of forking them — start each with \
     $(b,gcr worker --connect HOST:PORT).  Port 0 binds an ephemeral port.  \
     Campaign output stays bit-identical to the forked fabric and to in-process \
     runs."
  in
  Arg.(value & opt (some string) None & info [ "listen" ] ~docv:"HOST:PORT" ~doc)

let connect_timeout_arg =
  let doc =
    "Seconds to wait for $(b,--listen) workers to connect before proceeding with \
     however many arrived (the coordinator backstops an empty fleet inline)."
  in
  Arg.(value & opt float 30.0 & info [ "connect-timeout" ] ~docv:"S" ~doc)

(* HOST:PORT with the port after the last ':' so bare IPv6 addresses keep
   working once resolve_addr learns about them. *)
let parse_host_port s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "expected HOST:PORT, got %S" s)
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p <= 65535 ->
          Ok ((if host = "" then "127.0.0.1" else host), p)
      | Some p -> Error (Printf.sprintf "port %d out of range" p)
      | None -> Error (Printf.sprintf "expected HOST:PORT, got %S" s))

let cache_dir_arg =
  let doc =
    "Directory for the on-disk result cache (default: $(b,GCR_CACHE_DIR) if set). \
     Already-measured configurations are replayed from disk instead of re-run."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

(* Runs that ended in OOM / degeneration / budget exhaustion make the
   whole invocation fail: reasons on stderr, distinct exit code. *)
let failed_run_exit = 3

let exit_on_failures measurements =
  match Measurement.failure_lines measurements with
  | [] -> ()
  | lines ->
      List.iter (fun l -> Printf.eprintf "gcr: %s\n" l) lines;
      exit failed_run_exit

let default_benchmarks = function [] -> Suite.all | bs -> bs

let default_gcs = function [] -> Harness.default_gcs | gs -> gs

let resolve_jobs = function
  | Some n when n > 0 -> n
  | Some _ -> 1
  | None -> Pool.default_jobs ()

(* Worker-count validation is strict where --jobs is forgiving: a typo'd
   GCR_WORKERS silently running a campaign single-process would quietly
   invalidate a throughput study, so bad values refuse to run at all. *)
let resolve_workers arg =
  let reject reason =
    Printf.eprintf "gcr: invalid worker count: %s\n%!" reason;
    exit failed_run_exit
  in
  match arg with
  | Some n when n > 0 -> Some n
  | Some n ->
      reject
        (Printf.sprintf "--workers must be a positive integer, got %d" n)
  | None -> (
      match Sys.getenv_opt "GCR_WORKERS" with
      | None -> None
      | Some s -> (
          match int_of_string_opt s with
          | Some n when n > 0 -> Some n
          | Some n ->
              reject
                (Printf.sprintf "GCR_WORKERS must be a positive integer, got %d" n)
          | None ->
              reject
                (Printf.sprintf "GCR_WORKERS must be a positive integer, got %S" s)))

(* Controller lookup mirrors --workers strictness: a typo'd controller
   name silently falling back to Fixed would quietly turn an adaptive-
   sizing study into a static one, so bad names refuse to run at all. *)
let resolve_controller s =
  match Controller.of_name s with
  | Some c -> c
  | None ->
      Printf.eprintf "gcr: unknown controller %S (valid: %s)\n%!" s
        (String.concat ", " Controller.valid_names);
      exit failed_run_exit

let resolve_controllers = function
  | [] -> [ Controller.fixed ]
  | names -> List.map resolve_controller names

let controller_arg =
  let doc =
    Printf.sprintf
      "Heap-sizing controller driving the heap limit at safepoints (one of %s; \
       case-insensitive).  $(b,fixed) is the status quo and is bit-identical to \
       not passing this flag at all."
      (String.concat ", " Controller.valid_names)
  in
  Arg.(value & opt string "fixed" & info [ "controller" ] ~docv:"NAME" ~doc)

let controllers_arg =
  let doc =
    Printf.sprintf
      "Heap-sizing controllers multiplying the campaign grid as its innermost axis \
       (comma separated; one of %s).  The default $(b,fixed) reproduces the \
       historical grid exactly."
      (String.concat ", " Controller.valid_names)
  in
  Arg.(value & opt (list string) [ "fixed" ] & info [ "controllers" ] ~docv:"A,B" ~doc)

let resolve_cache_dir arg =
  match (match arg with Some _ -> arg | None -> Sys.getenv_opt "GCR_CACHE_DIR") with
  | None -> None
  | Some dir -> (
      (* validate eagerly: a bad cache location should be a clean CLI
         error before the campaign starts, not a mid-run exception *)
      try Some (Result_cache.dir (Result_cache.create ~dir))
      with Sys_error msg ->
        Printf.eprintf "gcr: unusable cache directory: %s\n%!" msg;
        exit 1)

let no_tapes_arg =
  let doc =
    "Disable workload tapes: derive every cell's decision stream live from the PRNG \
     instead of replaying the per-(benchmark, seed) tape.  Results are bit-identical \
     either way ($(b,GCR_TAPES=0) is the environment equivalent)."
  in
  Arg.(value & flag & info [ "no-tapes" ] ~doc)

let resolve_listen = function
  | None -> None
  | Some s -> (
      match parse_host_port s with
      | Ok hp -> Some hp
      | Error msg ->
          Printf.eprintf "gcr: invalid --listen address: %s\n%!" msg;
          exit failed_run_exit)

let harness_config ?(controllers = [ Controller.fixed ]) ?listen
    ?(connect_timeout = 30.0) ~invocations ~scale ~seed ~factors ~quiet ~jobs ~workers
    ~cache_dir ~no_tapes () =
  let defaults = Harness.default_config () in
  let workers = resolve_workers workers in
  (* Both parallelism knobs at once: the fabric subsumes the domain pool,
     so it wins — but say so rather than silently ignoring a flag. *)
  (match (workers, jobs) with
  | Some w, Some j ->
      Printf.eprintf
        "gcr: both --workers %d and --jobs %d given; the multi-process fabric wins \
         and --jobs is ignored\n%!"
        w j
  | _ -> ());
  let listen = resolve_listen listen in
  (match (listen, workers) with
  | Some _, None ->
      Printf.eprintf "gcr: --listen requires --workers N (the fleet size)\n%!";
      exit failed_run_exit
  | _ -> ());
  {
    defaults with
    Harness.invocations;
    scale;
    base_seed = seed;
    heap_factors = factors;
    log_progress = not quiet;
    jobs = resolve_jobs jobs;
    workers;
    cache_dir = resolve_cache_dir cache_dir;
    tapes = defaults.Harness.tapes && not no_tapes;
    controllers;
    listen;
    connect_timeout;
  }

(* ---------- list ---------- *)

let list_cmd =
  let run () =
    print_endline "Benchmarks (DaCapo Chopin analogues):";
    List.iter
      (fun s -> Format.printf "  %-12s %s@." s.Spec.name s.Spec.description)
      Suite.all;
    print_endline "";
    print_endline "Collectors:";
    List.iter
      (fun k ->
        Printf.printf "  %-12s %s%s%s\n" (Registry.name k)
          (if Registry.is_concurrent k then "concurrent" else "stop-the-world")
          (if Registry.is_generational k then ", generational" else "")
          (if List.mem k Registry.experimental then " (experimental)" else ""))
      Registry.frontier
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmarks and collectors")
    Term.(const run $ const ())

(* ---------- tape helpers ---------- *)

let read_tape_exn path =
  match Tape.read_file path with
  | Ok tape -> tape
  | Error msg ->
      Printf.eprintf "gcr: invalid tape %s: %s\n" path msg;
      exit 1

(* A tape is only meaningful against the exact spec it was recorded for;
   resolve the benchmark by name and refuse a digest mismatch (usually a
   --scale that differs from the recording). *)
let tape_resolve_spec ~scale tape =
  match Suite.find tape.Tape.benchmark with
  | None ->
      Printf.eprintf "gcr: tape benchmark %S is not in the suite\n" tape.Tape.benchmark;
      exit 1
  | Some spec ->
      let spec = Spec.scale spec scale in
      if not (String.equal (Spec.digest spec) tape.Tape.spec_digest) then begin
        Printf.eprintf
          "gcr: tape %S was recorded against a different spec (digest %s, this \
           invocation resolves to %s); pass the --scale it was recorded at\n"
          tape.Tape.benchmark tape.Tape.spec_digest (Spec.digest spec);
        exit 1
      end;
      spec

(* ---------- run ---------- *)

let execute_traced ~trace_out config =
  let captured = ref None in
  let on_engine engine =
    let obs = Engine.obs engine in
    captured := Some (obs, Obs.attach_trace obs)
  in
  let m = Run.execute ~on_engine config in
  (match !captured with
  | Some (obs, trace) ->
      Perfetto.write_file trace_out obs trace;
      Printf.eprintf "gcr: wrote %d events to %s\n%!" (Obs.Trace.length trace) trace_out
  | None -> ());
  m

let run_cmd =
  let run benchmarks gcs factor invocations scale seed jobs cache_dir trace_out tape_file
      controller_name =
    let gcs = default_gcs gcs in
    let controller = resolve_controller controller_name in
    let cache =
      Option.map (fun dir -> Result_cache.create ~dir) (resolve_cache_dir cache_dir)
    in
    let configs =
      match tape_file with
      | None ->
          List.concat_map
            (fun spec ->
              let spec = Spec.scale spec scale in
              let minheap = Minheap.find spec in
              List.concat_map
                (fun gc ->
                  List.init invocations (fun i ->
                      let heap_words = int_of_float (factor *. float_of_int minheap) in
                      {
                        (Run.default_config ~spec ~gc ~heap_words ~seed:(seed + i + 1)) with
                        Run.controller;
                      }))
                gcs)
            (default_benchmarks benchmarks)
      | Some path ->
          (* the tape pins benchmark, spec and seed; the command line picks
             collectors and heap factor *)
          let tape = read_tape_exn path in
          let spec = tape_resolve_spec ~scale tape in
          (match benchmarks with
          | [] -> ()
          | bs when List.exists (fun b -> String.equal b.Spec.name spec.Spec.name) bs ->
              ()
          | _ ->
              Printf.eprintf "gcr: --tape %s replays benchmark %S; drop -b or pass it\n"
                path spec.Spec.name;
              exit 1);
          let image = Decision_source.image_of_tape ~spec tape in
          let minheap = Minheap.find spec in
          let heap_words = int_of_float (factor *. float_of_int minheap) in
          List.map
            (fun gc ->
              {
                (Run.default_config ~spec ~gc ~heap_words ~seed:tape.Tape.seed) with
                Run.tape = Run.Tape_replay image;
                controller;
              })
            gcs
    in
    let measurements =
      match trace_out with
      | None -> Pool.map ~jobs:(resolve_jobs jobs) ?cache configs
      | Some file -> (
          match configs with
          | [ config ] -> [ execute_traced ~trace_out:file config ]
          | _ ->
              Printf.eprintf
                "gcr: --trace-out records a single run; pick one benchmark and one \
                 collector with -n 1\n";
              exit 1)
    in
    List.iter
      (fun m ->
        Format.printf "%a@." Measurement.pp m;
        (* only under an adaptive controller, so `--controller fixed`
           output stays byte-identical to not passing the flag at all
           (CI diffs the two) *)
        if not (Controller.is_fixed controller) then
          Printf.printf
            "  controller: %d limit moves, peak %d words, mean footprint %.0f words, \
             memory-time %.3e word-cycles\n"
            m.Measurement.limit_changes m.Measurement.heap_limit_peak_words
            (Measurement.mean_footprint_words m)
            (Measurement.memory_time_integral m))
      measurements;
    exit_on_failures measurements
  in
  let trace_out_arg =
    let doc =
      "Record the run's event stream and write a Chrome/Perfetto trace-event JSON \
       file (open at ui.perfetto.dev).  Requires a single configuration."
    in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let tape_arg =
    let doc =
      "Replay a workload tape recorded with $(b,gcr tape record): the tape fixes the \
       benchmark, spec and seed (so -n/--seed are ignored), and every requested \
       collector runs against the identical decision stream.  Results are \
       bit-identical to live runs at the tape's seed."
    in
    Arg.(value & opt (some string) None & info [ "tape" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run benchmark/collector configurations and print measurements")
    Term.(
      const run $ benchmarks_arg $ gcs_arg $ factor_arg $ invocations_arg $ scale_arg
      $ seed_arg $ jobs_arg $ cache_dir_arg $ trace_out_arg $ tape_arg $ controller_arg)

(* ---------- minheap ---------- *)

let minheap_cmd =
  let run benchmarks scale =
    List.iter
      (fun spec ->
        let spec = Spec.scale spec scale in
        let words = Minheap.find spec in
        Printf.printf "%-12s %8d words (%d regions)\n" spec.Spec.name words
          (words / Run.default_region_words))
      (default_benchmarks benchmarks)
  in
  Cmd.v
    (Cmd.info "minheap"
       ~doc:"Measure the minimum heap (with G1) for benchmarks, as the paper does")
    Term.(const run $ benchmarks_arg $ scale_arg)

(* ---------- campaign-backed commands ---------- *)

let build_campaign ?controllers ?listen ?connect_timeout benchmarks gcs invocations
    scale seed factors quiet jobs workers cache_dir no_tapes =
  let config =
    harness_config ?controllers ?listen ?connect_timeout ~invocations ~scale ~seed
      ~factors ~quiet ~jobs ~workers ~cache_dir ~no_tapes ()
  in
  Harness.run_campaign config ~benchmarks:(default_benchmarks benchmarks)
    ~gcs:(default_gcs gcs)

let artefact_names =
  [
    "tables2-5"; "table6"; "table7"; "table8"; "table9"; "table10"; "table11";
    "fig1"; "fig2"; "fig3"; "fig4"; "energy"; "pauses"; "latency"; "validation";
    "ablation"; "all";
  ]

let print_artefact campaign = function
  | "tables2-5" -> Report.worked_example campaign ()
  | "table6" -> Report.table_vi campaign
  | "table7" -> Report.table_vii campaign
  | "table8" -> Report.table_viii campaign
  | "table9" -> Report.table_ix campaign
  | "table10" -> Report.table_x campaign
  | "table11" -> Report.table_xi campaign
  | "fig1" -> Report.fig1 campaign
  | "fig2" -> Report.fig2 campaign
  | "fig3" -> Report.fig3 campaign
  | "fig4" -> Report.fig4 campaign
  | "energy" -> Report.table_energy campaign
  | "pauses" -> Report.pause_breakdown campaign
  | "latency" -> Report.latency_summary campaign
  | "validation" -> Validate.tightness_study campaign ~factor:3.0
  | "ablation" -> Validate.attribution_ablation campaign ()
  | "all" ->
      Report.all campaign;
      Validate.tightness_study campaign ~factor:3.0;
      Validate.attribution_ablation campaign ()
  | other -> Printf.eprintf "unknown artefact %S\n" other

let artefact_arg =
  let doc =
    Printf.sprintf "Artefact to regenerate: %s." (String.concat ", " artefact_names)
  in
  Arg.(
    required
    & pos 0 (some (enum (List.map (fun n -> (n, n)) artefact_names))) None
    & info [] ~docv:"ARTEFACT" ~doc)

let artefact_cmd =
  let run artefact benchmarks gcs invocations scale seed factors quiet jobs workers
      cache_dir no_tapes =
    let campaign =
      build_campaign benchmarks gcs invocations scale seed factors quiet jobs workers
        cache_dir no_tapes
    in
    print_artefact campaign artefact;
    exit_on_failures (Harness.all_measurements campaign)
  in
  Cmd.v
    (Cmd.info "artefact"
       ~doc:"Run the needed campaign and regenerate a paper table or figure")
    Term.(
      const run $ artefact_arg $ benchmarks_arg $ gcs_arg $ invocations_arg $ scale_arg
      $ seed_arg $ factors_arg $ quiet_arg $ jobs_arg $ workers_arg $ cache_dir_arg
      $ no_tapes_arg)

(* Per-phase breakdown of where the campaign's wall time went.  Wall
   times partition [elapsed_s]; the self-times under "execute" are summed
   across pool domains and fabric workers, so under parallel execution
   they can exceed the execute wall time. *)
let print_profile (s : Harness.exec_summary) =
  let pct part = if s.Harness.elapsed_s > 0.0 then 100.0 *. part /. s.Harness.elapsed_s else 0.0 in
  Printf.printf "\n== campaign profile ==\n";
  Printf.printf "total       %8.2fs\n" s.Harness.elapsed_s;
  Printf.printf "  plan      %8.2fs  %5.1f%%  (minheap probes + grid planning)\n"
    s.Harness.plan_s (pct s.Harness.plan_s);
  Printf.printf "  execute   %8.2fs  %5.1f%%  (%.1f cells/s)\n" s.Harness.execute_s
    (pct s.Harness.execute_s) s.Harness.cells_per_sec;
  Printf.printf "  reduce    %8.2fs  %5.1f%%\n" s.Harness.reduce_s (pct s.Harness.reduce_s);
  Printf.printf "execute self-time (summed across workers):\n";
  Printf.printf "  setup     %8.2fs  (engine/heap construction or warm reset)\n"
    s.Harness.setup_s;
  Printf.printf "  tape      %8.2fs  (generate/fetch/decode)\n" s.Harness.tape_s;
  Printf.printf "  simulate  %8.2fs\n" s.Harness.simulate_s;
  let other =
    s.Harness.execute_s -. s.Harness.setup_s -. s.Harness.tape_s -. s.Harness.simulate_s
  in
  Printf.printf "  other     %8.2fs  (scheduling, cache, marshalling%s)\n" other
    (if s.Harness.worker_processes > 0 then "; negative = parallel overlap" else "")

let profile_arg =
  let doc =
    "Print a per-phase wall-time breakdown (plan / tape / execute / reduce, plus \
     setup/simulate self-time) after the campaign summary."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let campaign_cmd =
  let run benchmarks gcs invocations scale seed factors quiet jobs workers cache_dir
      no_tapes profile controller_names listen connect_timeout =
    let controllers = resolve_controllers controller_names in
    let campaign =
      build_campaign ~controllers ?listen ~connect_timeout benchmarks gcs invocations
        scale seed factors quiet jobs workers cache_dir no_tapes
    in
    print_artefact campaign "all";
    let s = Harness.summary campaign in
    if s.Harness.limit_changes > 0 then
      Printf.printf
        "\ncontroller decisions: %d heap-limit changes, peak footprint %d words, mean \
         footprint %.0f words/cell\n"
        s.Harness.limit_changes s.Harness.peak_footprint_words
        s.Harness.mean_footprint_words;
    if profile then print_profile s;
    exit_on_failures (Harness.all_measurements campaign)
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Run the full grid and print every table and figure of the paper")
    Term.(
      const run $ benchmarks_arg $ gcs_arg $ invocations_arg $ scale_arg $ seed_arg
      $ factors_arg $ quiet_arg $ jobs_arg $ workers_arg $ cache_dir_arg $ no_tapes_arg
      $ profile_arg $ controllers_arg $ listen_arg $ connect_timeout_arg)

(* ---------- worker ---------- *)

let worker_cmd =
  let run connect store_dir retry_for =
    let host, port =
      match parse_host_port connect with
      | Ok hp -> hp
      | Error msg ->
          Printf.eprintf "gcr: invalid --connect address: %s\n%!" msg;
          exit failed_run_exit
    in
    let store =
      match store_dir with
      | None -> None
      | Some dir -> (
          try Some (Gcr_sched.Artifact_store.create ~dir)
          with Sys_error msg ->
            Printf.eprintf "gcr: unusable store directory: %s\n%!" msg;
            exit 1)
    in
    match Gcr_sched.Fabric.worker_connect ~host ~port ?store ~retry_for () with
    | Ok code -> exit code
    | Error msg ->
        Printf.eprintf "gcr: %s\n%!" msg;
        exit failed_run_exit
  in
  let connect_arg =
    let doc =
      "Coordinator address — the $(i,HOST:PORT) a $(b,gcr campaign --listen) \
       coordinator is accepting on.  Refused connections are retried until \
       $(b,--retry-for) elapses, so workers can start before the coordinator."
    in
    Arg.(
      required & opt (some string) None & info [ "connect" ] ~docv:"HOST:PORT" ~doc)
  in
  let store_arg =
    let doc =
      "Content-addressed artifact store for tapes and cached results (point \
       co-located workers at the coordinator's $(b,--cache-dir)).  Without it the \
       worker fetches tapes over the socket — digest-verified on receipt — and \
       caches nothing."
    in
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)
  in
  let retry_for_arg =
    let doc = "Seconds to keep retrying a refused connection." in
    Arg.(value & opt float 30.0 & info [ "retry-for" ] ~docv:"S" ~doc)
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Join a campaign coordinator over TCP and execute dealt cell groups until \
          told to quit (the cross-host half of `gcr campaign --listen`)")
    Term.(const run $ connect_arg $ store_arg $ retry_for_arg)

(* ---------- ablations ---------- *)

let ablation_names = [ "gc-workers"; "tenure-age"; "shenandoah-trigger"; "conc-mark-penalty"; "all" ]

let ablation_cmd =
  let run name bench factor scale seed =
    let config =
      { (Gcr_core.Ablation.default_config ~bench:bench.Spec.name ()) with
        Gcr_core.Ablation.heap_factor = factor;
        scale;
        seed;
      }
    in
    match name with
    | "gc-workers" -> Gcr_core.Ablation.gc_workers config
    | "tenure-age" -> Gcr_core.Ablation.tenure_age config
    | "shenandoah-trigger" -> Gcr_core.Ablation.shenandoah_trigger config
    | "conc-mark-penalty" -> Gcr_core.Ablation.concurrent_mark_penalty config
    | _ -> Gcr_core.Ablation.all config
  in
  let name_arg =
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun n -> (n, n)) ablation_names))) None
      & info [] ~docv:"STUDY"
          ~doc:(Printf.sprintf "One of %s." (String.concat ", " ablation_names)))
  in
  let bench_arg =
    Arg.(value & opt bench_conv (Suite.find_exn "h2") & info [ "b"; "benchmark" ] ~docv:"NAME")
  in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Sweep one design knob and print how the costs move")
    Term.(const run $ name_arg $ bench_arg $ factor_arg $ scale_arg $ seed_arg)

(* ---------- trace ---------- *)

let trace_cmd =
  let run bench gc factor scale seed out check controller_name =
    match check with
    | Some file -> (
        match Perfetto.validate_file file with
        | Ok s ->
            Printf.printf
              "%s: ok (%d events, %d pause slices, %d phase slices, %d begins / %d \
               ends)\n"
              file s.Perfetto.events s.Perfetto.pause_slices s.Perfetto.phase_slices
              s.Perfetto.begins s.Perfetto.ends
        | Error msg ->
            Printf.eprintf "gcr: invalid trace %s: %s\n" file msg;
            exit 1)
    | None ->
        let controller = resolve_controller controller_name in
        let spec = Spec.scale bench scale in
        let minheap = Minheap.find spec in
        let heap_words = int_of_float (factor *. float_of_int minheap) in
        let config =
          { (Run.default_config ~spec ~gc ~heap_words ~seed) with Run.controller }
        in
        let m = execute_traced ~trace_out:out config in
        Format.printf "%a@." Measurement.pp m;
        exit_on_failures [ m ]
  in
  let bench_arg =
    Arg.(
      value
      & opt bench_conv (Suite.find_exn "h2")
      & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc:"Benchmark to trace.")
  in
  let gc_arg =
    Arg.(
      value & opt gc_conv Registry.G1 & info [ "g"; "gc" ] ~docv:"GC" ~doc:"Collector.")
  in
  let out_arg =
    Arg.(
      value & opt string "trace.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Trace file to write.")
  in
  let check_arg =
    let doc =
      "Validate an existing trace file (JSON syntax, balanced begin/end slices) \
       instead of running anything."
    in
    Arg.(value & opt (some string) None & info [ "check" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Record one run as a Chrome/Perfetto trace, or validate a trace file")
    Term.(
      const run $ bench_arg $ gc_arg $ factor_arg $ scale_arg $ seed_arg $ out_arg
      $ check_arg $ controller_arg)

(* ---------- market ---------- *)

let market_cmd =
  let run bench tenants gc controller_name budget_factor epoch_cycles deadline_ms scale
      seed quiet trace_out =
    let controller = resolve_controller controller_name in
    let log = if quiet then None else Some (fun s -> Printf.eprintf "%s\n%!" s) in
    let captured = ref None in
    let on_tenant_engine =
      match trace_out with
      | None -> None
      | Some _ ->
          Some
            (fun tenant engine ->
              if tenant = 0 then begin
                let obs = Engine.obs engine in
                captured := Some (obs, Obs.attach_trace obs)
              end)
    in
    let report =
      try
        Market.run ~bench ?epoch_cycles ~deadline_ms ?log ?on_tenant_engine ~tenants ~gc
          ~controller ~budget_factor ~scale ~seed ()
      with Invalid_argument msg ->
        Printf.eprintf "gcr: %s\n" msg;
        exit 1
    in
    (match (trace_out, !captured) with
    | Some file, Some (obs, trace) ->
        Perfetto.write_file file obs trace;
        Printf.eprintf "gcr: wrote %d events (tenant 0) to %s\n%!"
          (Obs.Trace.length trace) file
    | _ -> ());
    Format.printf "%a@." Market.pp_report report;
    if List.exists (fun t -> not t.Market.completed) report.Market.per_tenant then begin
      List.iter
        (fun t ->
          if not t.Market.completed then
            Printf.eprintf "gcr: tenant %d (%s) did not complete\n" t.Market.tenant
              t.Market.bench)
        report.Market.per_tenant;
      exit failed_run_exit
    end
  in
  let bench_arg =
    let doc = "Latency-sensitive benchmark every tenant runs." in
    Arg.(
      value
      & opt (enum (List.map (fun s -> (s.Spec.name, s.Spec.name)) Suite.latency_sensitive))
          "lusearch"
      & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc)
  in
  let tenants_arg =
    let doc = "Number of tenant runtimes sharing the machine." in
    Arg.(value & opt int 4 & info [ "tenants" ] ~docv:"N" ~doc)
  in
  let gc_arg =
    Arg.(
      value & opt gc_conv Registry.G1
      & info [ "g"; "gc" ] ~docv:"GC" ~doc:"Collector every tenant runs.")
  in
  let budget_factor_arg =
    let doc =
      "Machine-wide memory budget as a multiple of (tenants x the benchmark's \
       baseline footprint).  Below 1.0 the tenants are under-provisioned and the \
       broker has to arbitrate."
    in
    Arg.(value & opt float 1.0 & info [ "budget-factor" ] ~docv:"F" ~doc)
  in
  let epoch_arg =
    let doc = "Broker rebalancing epoch in simulated cycles." in
    Arg.(value & opt (some int) None & info [ "epoch-cycles" ] ~docv:"N" ~doc)
  in
  let deadline_arg =
    let doc = "Request deadline in milliseconds (metered latency above it is a miss)." in
    Arg.(
      value & opt float Market.default_deadline_ms
      & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let trace_out_arg =
    let doc =
      "Write tenant 0's event stream as a Chrome/Perfetto trace-event JSON file."
    in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "market"
       ~doc:
         "Run the multi-tenant memory market: N runtimes share one machine-wide \
          budget under a diurnal request wave, with a broker reallocating heap \
          limits every epoch")
    Term.(
      const run $ bench_arg $ tenants_arg $ gc_arg $ controller_arg $ budget_factor_arg
      $ epoch_arg $ deadline_arg $ scale_arg $ seed_arg $ quiet_arg $ trace_out_arg)

(* ---------- tape ---------- *)

let tape_file_pos =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Tape file to read.")

let tape_record_cmd =
  let run bench scale seed out via_run factor =
    let spec = Spec.scale bench scale in
    let tape =
      match via_run with
      | None ->
          (* pure generation: replicate the run's PRNG split tree without
             simulating anything *)
          Tape_gen.generate ~spec ~seed
      | Some gc ->
          (* record tee: execute one real run with a Record source and keep
             the stream it actually consumed (plus fallback headroom is not
             needed — replay falls over to the live continuation) *)
          let minheap = Minheap.find spec in
          let heap_words = int_of_float (factor *. float_of_int minheap) in
          let captured = ref None in
          let config =
            {
              (Run.default_config ~spec ~gc ~heap_words ~seed) with
              Run.tape = Run.Tape_record (fun t -> captured := Some t);
            }
          in
          let (_ : Measurement.t) = Run.execute config in
          (match !captured with
          | Some t -> t
          | None ->
              Printf.eprintf "gcr: run finished without producing a tape\n";
              exit 1)
    in
    Tape.write_file tape ~path:out;
    Printf.printf "%s: %d draws, digest %s\n" out (Tape.draws tape) (Tape.digest tape)
  in
  let bench_arg =
    Arg.(
      required
      & opt (some bench_conv) None
      & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc:"Benchmark to record.")
  in
  let out_arg =
    Arg.(
      value & opt string "workload.tape"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Tape file to write.")
  in
  let via_run_arg =
    let doc =
      "Record by executing one real run under this collector (the record tee) \
       instead of generating the stream directly.  Both paths produce replay-
       equivalent tapes; the tee also captures only the prefix that run consumed."
    in
    Arg.(value & opt (some gc_conv) None & info [ "via-run" ] ~docv:"GC" ~doc)
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:"Record the workload decision stream for one (benchmark, seed)")
    Term.(
      const run $ bench_arg $ scale_arg $ seed_arg $ out_arg $ via_run_arg $ factor_arg)

let tape_info_cmd =
  let run file =
    let tape = read_tape_exn file in
    print_endline (Tape.info tape)
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Print a tape's header, stream sizes and digest")
    Term.(const run $ tape_file_pos)

let tape_verify_cmd =
  let run file scale replay_check gc factor =
    let tape = read_tape_exn file in
    Printf.printf "%s: ok (%d threads, %d draws, digest %s)\n" file
      (Array.length tape.Tape.streams)
      (Tape.draws tape) (Tape.digest tape);
    if replay_check then begin
      let spec = tape_resolve_spec ~scale tape in
      let image = Decision_source.image_of_tape ~spec tape in
      let minheap = Minheap.find spec in
      let heap_words = int_of_float (factor *. float_of_int minheap) in
      let base = Run.default_config ~spec ~gc ~heap_words ~seed:tape.Tape.seed in
      let live = Run.execute base in
      let replayed = Run.execute { base with Run.tape = Run.Tape_replay image } in
      let render m = Format.asprintf "%a" Measurement.pp m in
      if String.equal (render live) (render replayed) then
        Printf.printf "replay check: bit-identical to a live run under %s at %gx\n"
          (Registry.name gc) factor
      else begin
        Printf.eprintf "gcr: replay diverged from the live run under %s at %gx\n"
          (Registry.name gc) factor;
        exit 1
      end
    end
  in
  let replay_check_arg =
    let doc =
      "Additionally execute the tape's configuration twice — live and replayed — \
       and fail unless the measurements are bit-identical."
    in
    Arg.(value & flag & info [ "replay-check" ] ~doc)
  in
  let gc_arg =
    Arg.(
      value & opt gc_conv Registry.G1
      & info [ "g"; "gc" ] ~docv:"GC" ~doc:"Collector for --replay-check.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Validate a tape file (magic, checksum, bounds); optionally prove replay \
             bit-identity")
    Term.(const run $ tape_file_pos $ scale_arg $ replay_check_arg $ gc_arg $ factor_arg)

let tape_cmd =
  Cmd.group
    (Cmd.info "tape"
       ~doc:"Record, inspect and verify workload tapes (record once, replay across \
             the campaign grid)")
    [ tape_record_cmd; tape_info_cmd; tape_verify_cmd ]

let main =
  let doc = "empirical lower bounds on the overheads of production garbage collectors" in
  Cmd.group
    (Cmd.info "gcr" ~version:"1.0.0" ~doc)
    [
      list_cmd; run_cmd; minheap_cmd; artefact_cmd; campaign_cmd; worker_cmd;
      ablation_cmd; trace_cmd; tape_cmd; market_cmd;
    ]

let () = exit (Cmd.eval main)
