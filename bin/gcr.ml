(* gcr: command-line interface to the GC real-cost reproduction.

   Subcommands mirror the repo's deliverables: run single configurations,
   measure minimum heaps, and regenerate any of the paper's tables and
   figures from a campaign. *)

open Cmdliner
module Registry = Gcr_gcs.Registry
module Suite = Gcr_workloads.Suite
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement
module Harness = Gcr_core.Harness
module Report = Gcr_core.Report
module Minheap = Gcr_core.Minheap
module Validate = Gcr_core.Validate
module Pool = Gcr_sched.Pool
module Result_cache = Gcr_sched.Result_cache
module Obs = Gcr_obs.Obs
module Perfetto = Gcr_obs.Perfetto
module Engine = Gcr_engine.Engine

(* ---------- shared argument parsing ---------- *)

let bench_conv =
  let parse s =
    match Suite.find s with
    | Some spec -> Ok spec
    | None -> Error (`Msg (Printf.sprintf "unknown benchmark %S (see `gcr list`)" s))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf s.Spec.name)

let gc_conv =
  let parse s =
    match Registry.of_name s with
    | Some kind -> Ok kind
    | None -> Error (`Msg (Printf.sprintf "unknown collector %S (see `gcr list`)" s))
  in
  Arg.conv (parse, fun ppf k -> Format.pp_print_string ppf (Registry.name k))

let benchmarks_arg =
  let doc = "Benchmarks to run (repeatable; default: the whole suite)." in
  Arg.(value & opt_all bench_conv [] & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc)

let gcs_arg =
  let doc = "Collectors to run (repeatable; default: the five production GCs)." in
  Arg.(value & opt_all gc_conv [] & info [ "g"; "gc" ] ~docv:"GC" ~doc)

let invocations_arg =
  let doc = "Invocations per configuration (distinct seeds)." in
  Arg.(value & opt int 5 & info [ "n"; "invocations" ] ~docv:"N" ~doc)

let scale_arg =
  let doc = "Workload scale factor (run length and machine memory together)." in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"S" ~doc)

let seed_arg =
  let doc = "Base random seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let factor_arg =
  let doc = "Heap size as a multiple of the benchmark's minimum heap." in
  Arg.(value & opt float 3.0 & info [ "x"; "heap-factor" ] ~docv:"F" ~doc)

let factors_arg =
  let doc = "Heap factors for grid experiments (comma separated)." in
  Arg.(
    value
    & opt (list float) Harness.paper_heap_factors
    & info [ "factors" ] ~docv:"F1,F2,.." ~doc)

let quiet_arg =
  let doc = "Suppress progress output." in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains draining the campaign queue (default: $(b,GCR_JOBS) or 1). \
     Campaign output is bit-identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let cache_dir_arg =
  let doc =
    "Directory for the on-disk result cache (default: $(b,GCR_CACHE_DIR) if set). \
     Already-measured configurations are replayed from disk instead of re-run."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

(* Runs that ended in OOM / degeneration / budget exhaustion make the
   whole invocation fail: reasons on stderr, distinct exit code. *)
let failed_run_exit = 3

let exit_on_failures measurements =
  match Measurement.failure_lines measurements with
  | [] -> ()
  | lines ->
      List.iter (fun l -> Printf.eprintf "gcr: %s\n" l) lines;
      exit failed_run_exit

let default_benchmarks = function [] -> Suite.all | bs -> bs

let default_gcs = function [] -> Registry.production | gs -> gs

let resolve_jobs = function
  | Some n when n > 0 -> n
  | Some _ -> 1
  | None -> Pool.default_jobs ()

let resolve_cache_dir arg =
  match (match arg with Some _ -> arg | None -> Sys.getenv_opt "GCR_CACHE_DIR") with
  | None -> None
  | Some dir -> (
      (* validate eagerly: a bad cache location should be a clean CLI
         error before the campaign starts, not a mid-run exception *)
      try Some (Result_cache.dir (Result_cache.create ~dir))
      with Sys_error msg ->
        Printf.eprintf "gcr: unusable cache directory: %s\n%!" msg;
        exit 1)

let harness_config ~invocations ~scale ~seed ~factors ~quiet ~jobs ~cache_dir =
  {
    (Harness.default_config ()) with
    Harness.invocations;
    scale;
    base_seed = seed;
    heap_factors = factors;
    log_progress = not quiet;
    jobs = resolve_jobs jobs;
    cache_dir = resolve_cache_dir cache_dir;
  }

(* ---------- list ---------- *)

let list_cmd =
  let run () =
    print_endline "Benchmarks (DaCapo Chopin analogues):";
    List.iter
      (fun s -> Format.printf "  %-12s %s@." s.Spec.name s.Spec.description)
      Suite.all;
    print_endline "";
    print_endline "Collectors:";
    List.iter
      (fun k ->
        Printf.printf "  %-12s %s%s\n" (Registry.name k)
          (if Registry.is_concurrent k then "concurrent" else "stop-the-world")
          (if Registry.is_generational k then ", generational" else ""))
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmarks and collectors")
    Term.(const run $ const ())

(* ---------- run ---------- *)

let execute_traced ~trace_out config =
  let captured = ref None in
  let on_engine engine =
    let obs = Engine.obs engine in
    captured := Some (obs, Obs.attach_trace obs)
  in
  let m = Run.execute ~on_engine config in
  (match !captured with
  | Some (obs, trace) ->
      Perfetto.write_file trace_out obs trace;
      Printf.eprintf "gcr: wrote %d events to %s\n%!" (Obs.Trace.length trace) trace_out
  | None -> ());
  m

let run_cmd =
  let run benchmarks gcs factor invocations scale seed jobs cache_dir trace_out =
    let benchmarks = default_benchmarks benchmarks in
    let gcs = default_gcs gcs in
    let cache =
      Option.map (fun dir -> Result_cache.create ~dir) (resolve_cache_dir cache_dir)
    in
    let configs =
      List.concat_map
        (fun spec ->
          let spec = Spec.scale spec scale in
          let minheap = Minheap.find spec in
          List.concat_map
            (fun gc ->
              List.init invocations (fun i ->
                  let heap_words = int_of_float (factor *. float_of_int minheap) in
                  Run.default_config ~spec ~gc ~heap_words ~seed:(seed + i + 1)))
            gcs)
        benchmarks
    in
    let measurements =
      match trace_out with
      | None -> Pool.map ~jobs:(resolve_jobs jobs) ?cache configs
      | Some file -> (
          match configs with
          | [ config ] -> [ execute_traced ~trace_out:file config ]
          | _ ->
              Printf.eprintf
                "gcr: --trace-out records a single run; pick one benchmark and one \
                 collector with -n 1\n";
              exit 1)
    in
    List.iter (fun m -> Format.printf "%a@." Measurement.pp m) measurements;
    exit_on_failures measurements
  in
  let trace_out_arg =
    let doc =
      "Record the run's event stream and write a Chrome/Perfetto trace-event JSON \
       file (open at ui.perfetto.dev).  Requires a single configuration."
    in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run benchmark/collector configurations and print measurements")
    Term.(
      const run $ benchmarks_arg $ gcs_arg $ factor_arg $ invocations_arg $ scale_arg
      $ seed_arg $ jobs_arg $ cache_dir_arg $ trace_out_arg)

(* ---------- minheap ---------- *)

let minheap_cmd =
  let run benchmarks scale =
    List.iter
      (fun spec ->
        let spec = Spec.scale spec scale in
        let words = Minheap.find spec in
        Printf.printf "%-12s %8d words (%d regions)\n" spec.Spec.name words
          (words / Run.default_region_words))
      (default_benchmarks benchmarks)
  in
  Cmd.v
    (Cmd.info "minheap"
       ~doc:"Measure the minimum heap (with G1) for benchmarks, as the paper does")
    Term.(const run $ benchmarks_arg $ scale_arg)

(* ---------- campaign-backed commands ---------- *)

let build_campaign benchmarks gcs invocations scale seed factors quiet jobs cache_dir =
  let config = harness_config ~invocations ~scale ~seed ~factors ~quiet ~jobs ~cache_dir in
  Harness.run_campaign config ~benchmarks:(default_benchmarks benchmarks)
    ~gcs:(default_gcs gcs)

let artefact_names =
  [
    "tables2-5"; "table6"; "table7"; "table8"; "table9"; "table10"; "table11";
    "fig1"; "fig2"; "fig3"; "fig4"; "energy"; "pauses"; "latency"; "validation";
    "ablation"; "all";
  ]

let print_artefact campaign = function
  | "tables2-5" -> Report.worked_example campaign ()
  | "table6" -> Report.table_vi campaign
  | "table7" -> Report.table_vii campaign
  | "table8" -> Report.table_viii campaign
  | "table9" -> Report.table_ix campaign
  | "table10" -> Report.table_x campaign
  | "table11" -> Report.table_xi campaign
  | "fig1" -> Report.fig1 campaign
  | "fig2" -> Report.fig2 campaign
  | "fig3" -> Report.fig3 campaign
  | "fig4" -> Report.fig4 campaign
  | "energy" -> Report.table_energy campaign
  | "pauses" -> Report.pause_breakdown campaign
  | "latency" -> Report.latency_summary campaign
  | "validation" -> Validate.tightness_study campaign ~factor:3.0
  | "ablation" -> Validate.attribution_ablation campaign ()
  | "all" ->
      Report.all campaign;
      Validate.tightness_study campaign ~factor:3.0;
      Validate.attribution_ablation campaign ()
  | other -> Printf.eprintf "unknown artefact %S\n" other

let artefact_arg =
  let doc =
    Printf.sprintf "Artefact to regenerate: %s." (String.concat ", " artefact_names)
  in
  Arg.(
    required
    & pos 0 (some (enum (List.map (fun n -> (n, n)) artefact_names))) None
    & info [] ~docv:"ARTEFACT" ~doc)

let artefact_cmd =
  let run artefact benchmarks gcs invocations scale seed factors quiet jobs cache_dir =
    let campaign =
      build_campaign benchmarks gcs invocations scale seed factors quiet jobs cache_dir
    in
    print_artefact campaign artefact;
    exit_on_failures (Harness.all_measurements campaign)
  in
  Cmd.v
    (Cmd.info "artefact"
       ~doc:"Run the needed campaign and regenerate a paper table or figure")
    Term.(
      const run $ artefact_arg $ benchmarks_arg $ gcs_arg $ invocations_arg $ scale_arg
      $ seed_arg $ factors_arg $ quiet_arg $ jobs_arg $ cache_dir_arg)

let campaign_cmd =
  let run benchmarks gcs invocations scale seed factors quiet jobs cache_dir =
    let campaign =
      build_campaign benchmarks gcs invocations scale seed factors quiet jobs cache_dir
    in
    print_artefact campaign "all";
    exit_on_failures (Harness.all_measurements campaign)
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Run the full grid and print every table and figure of the paper")
    Term.(
      const run $ benchmarks_arg $ gcs_arg $ invocations_arg $ scale_arg $ seed_arg
      $ factors_arg $ quiet_arg $ jobs_arg $ cache_dir_arg)

(* ---------- ablations ---------- *)

let ablation_names = [ "gc-workers"; "tenure-age"; "shenandoah-trigger"; "conc-mark-penalty"; "all" ]

let ablation_cmd =
  let run name bench factor scale seed =
    let config =
      { (Gcr_core.Ablation.default_config ~bench:bench.Spec.name ()) with
        Gcr_core.Ablation.heap_factor = factor;
        scale;
        seed;
      }
    in
    match name with
    | "gc-workers" -> Gcr_core.Ablation.gc_workers config
    | "tenure-age" -> Gcr_core.Ablation.tenure_age config
    | "shenandoah-trigger" -> Gcr_core.Ablation.shenandoah_trigger config
    | "conc-mark-penalty" -> Gcr_core.Ablation.concurrent_mark_penalty config
    | _ -> Gcr_core.Ablation.all config
  in
  let name_arg =
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun n -> (n, n)) ablation_names))) None
      & info [] ~docv:"STUDY"
          ~doc:(Printf.sprintf "One of %s." (String.concat ", " ablation_names)))
  in
  let bench_arg =
    Arg.(value & opt bench_conv (Suite.find_exn "h2") & info [ "b"; "benchmark" ] ~docv:"NAME")
  in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Sweep one design knob and print how the costs move")
    Term.(const run $ name_arg $ bench_arg $ factor_arg $ scale_arg $ seed_arg)

(* ---------- trace ---------- *)

let trace_cmd =
  let run bench gc factor scale seed out check =
    match check with
    | Some file -> (
        match Perfetto.validate_file file with
        | Ok s ->
            Printf.printf
              "%s: ok (%d events, %d pause slices, %d phase slices, %d begins / %d \
               ends)\n"
              file s.Perfetto.events s.Perfetto.pause_slices s.Perfetto.phase_slices
              s.Perfetto.begins s.Perfetto.ends
        | Error msg ->
            Printf.eprintf "gcr: invalid trace %s: %s\n" file msg;
            exit 1)
    | None ->
        let spec = Spec.scale bench scale in
        let minheap = Minheap.find spec in
        let heap_words = int_of_float (factor *. float_of_int minheap) in
        let config = Run.default_config ~spec ~gc ~heap_words ~seed in
        let m = execute_traced ~trace_out:out config in
        Format.printf "%a@." Measurement.pp m;
        exit_on_failures [ m ]
  in
  let bench_arg =
    Arg.(
      value
      & opt bench_conv (Suite.find_exn "h2")
      & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc:"Benchmark to trace.")
  in
  let gc_arg =
    Arg.(
      value & opt gc_conv Registry.G1 & info [ "g"; "gc" ] ~docv:"GC" ~doc:"Collector.")
  in
  let out_arg =
    Arg.(
      value & opt string "trace.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Trace file to write.")
  in
  let check_arg =
    let doc =
      "Validate an existing trace file (JSON syntax, balanced begin/end slices) \
       instead of running anything."
    in
    Arg.(value & opt (some string) None & info [ "check" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Record one run as a Chrome/Perfetto trace, or validate a trace file")
    Term.(
      const run $ bench_arg $ gc_arg $ factor_arg $ scale_arg $ seed_arg $ out_arg
      $ check_arg)

let main =
  let doc = "empirical lower bounds on the overheads of production garbage collectors" in
  Cmd.group
    (Cmd.info "gcr" ~version:"1.0.0" ~doc)
    [ list_cmd; run_cmd; minheap_cmd; artefact_cmd; campaign_cmd; ablation_cmd; trace_cmd ]

let () = exit (Cmd.eval main)
