(** The benchmark suite: 18 synthetic workloads named after the DaCapo
    Chopin benchmarks the paper evaluates.

    Parameters are chosen to reproduce each benchmark's GC-relevant
    character qualitatively (allocation rate, live size, thread count,
    latency sensitivity — see DESIGN.md §2), not its Java semantics.
    Notable castings: [xalan] and [lusearch] have the very high allocation
    rates that trigger the concurrent collectors' pathological modes;
    [jme] allocates almost nothing (the paper's lowest overheads);
    [lusearch], [tomcat], [tradebeans] and [tradesoap] are
    latency-sensitive. *)

val all : Spec.t list
(** In the paper's table order (alphabetical). *)

val names : string list

val find : string -> Spec.t option
(** Case-insensitive lookup. *)

val find_exn : string -> Spec.t

val core_16 : Spec.t list
(** The 16 benchmarks used in the paper's summary statistics (all but
    eclipse and xalan, which too many collectors cannot run at small
    heaps). *)

val latency_sensitive : Spec.t list
