module Engine = Gcr_engine.Engine
module Obs = Gcr_obs.Obs
module Prng = Gcr_util.Prng
module Histogram = Gcr_util.Histogram
module Gc_types = Gcr_gcs.Gc_types

(* DaCapo-style metered latency: requests are processed eagerly (the
   benchmark's duration stays a throughput measure), while each request
   carries a synthetic arrival timestamp drawn from a metered (Poisson)
   schedule.  Metered latency is completion minus synthetic arrival — so
   when GC makes processing fall behind the schedule, queueing delay
   accumulates against every subsequent request, exactly the
   tail-amplification the paper's Figures 2b and 4 show. *)

type t = {
  ctx : Gc_types.ctx;
  latency_spec : Spec.latency_spec;
  mutators : Mutator.t list;
  arrivals : int array;  (** synthetic arrival time of request i *)
  obs : Obs.t;  (** request latencies live on the event spine *)
  mutable next_request : int;
  mutable completed : int;
}

(* Rough ideal cycles to serve one packet: compute plus allocation fast
   paths.  Used only to derive the metered schedule. *)
let packet_cycles_estimate (spec : Spec.t) =
  spec.Spec.packet_compute_cycles
  + (spec.Spec.allocs_per_packet * (10 + spec.Spec.size_mean))

(* The arrival schedule is a pure function of (spec, thread count, PRNG
   stream) — no GC or heap state — which is what lets workload tapes
   record it once and replay it verbatim in every sibling cell. *)
let arrival_schedule ~spec ~threads prng =
  let latency_spec =
    match spec.Spec.latency with
    | Some l -> l
    | None -> invalid_arg "Latency.arrival_schedule: spec is not latency-sensitive"
  in
  let total =
    max 1 (threads * spec.Spec.packets_per_thread / latency_spec.Spec.request_packets)
  in
  let service_cycles = latency_spec.Spec.request_packets * packet_cycles_estimate spec in
  let inter_arrival_mean =
    float_of_int service_cycles /. (float_of_int threads *. latency_spec.Spec.offered_load)
  in
  let arrivals = Array.make total 0 in
  let clock = ref 0.0 in
  for i = 0 to total - 1 do
    clock := !clock +. Prng.exponential prng ~mean:inter_arrival_mean;
    arrivals.(i) <- int_of_float !clock
  done;
  arrivals

let create (ctx : Gc_types.ctx) ~spec ~mutators ~arrivals =
  let latency_spec =
    match spec.Spec.latency with
    | Some l -> l
    | None -> invalid_arg "Latency.create: spec is not latency-sensitive"
  in
  if Array.length arrivals = 0 then invalid_arg "Latency.create: empty arrival schedule";
  {
    ctx;
    latency_spec;
    mutators;
    arrivals;
    obs = Engine.obs ctx.Gc_types.engine;
    next_request = 0;
    completed = 0;
  }

let total_requests t = Array.length t.arrivals

let completed_requests t = t.completed

let metered t = Obs.latency_metered t.obs

let simple t = Obs.latency_simple t.obs

let rec serve t m () =
  if t.next_request >= Array.length t.arrivals then Mutator.exit m
  else begin
    let index = t.next_request in
    t.next_request <- index + 1;
    let tid = Engine.thread_id (Mutator.thread m) in
    let start = Engine.now t.ctx.Gc_types.engine in
    Obs.request_start t.obs ~time:start ~index ~tid;
    Mutator.run_packets m t.latency_spec.Spec.request_packets (fun () ->
        let now = Engine.now t.ctx.Gc_types.engine in
        let service = now - start in
        (* If processing is ahead of the metered schedule, the request
           would have waited for its arrival: latency is the service time.
           Behind schedule, queueing delay dominates. *)
        Obs.request_complete t.obs ~time:now ~index ~service
          ~metered:(max service (now - t.arrivals.(index)));
        t.completed <- t.completed + 1;
        serve t m ())
  end

let start t = List.iter (fun m -> serve t m ()) t.mutators
