type latency_spec = {
  offered_load : float;
  request_packets : int;
}

type t = {
  name : string;
  description : string;
  mutator_threads : int;
  packets_per_thread : int;
  packet_compute_cycles : int;
  allocs_per_packet : int;
  size_min : int;
  size_mean : int;
  size_max : int;
  ref_density : float;
  survival_ratio : float;
  nursery_ttl_packets : int;
  long_lived_target_words : int;
  long_lived_churn_per_packet : float;
  reads_per_packet : int;
  writes_per_packet : int;
  latency : latency_spec option;
}

let scale t factor =
  if factor <= 0.0 then invalid_arg "Spec.scale: non-positive factor";
  let scaled n = max 1 (int_of_float (float_of_int n *. factor)) in
  { t with packets_per_thread = scaled t.packets_per_thread }

let packet_alloc_words t = t.allocs_per_packet * t.size_mean

let allocated_words_estimate t =
  t.mutator_threads * t.packets_per_thread * packet_alloc_words t

let live_words_estimate t =
  let nursery =
    (* Retained young objects resident at any time, across threads.  The
       factor 2 covers the geometric intra-packet chains each retained
       object pins (chain probability 1/2). *)
    int_of_float
      (float_of_int (t.nursery_ttl_packets * t.allocs_per_packet * t.size_mean)
      *. t.survival_ratio)
    * t.mutator_threads * 2
  in
  t.long_lived_target_words + nursery

(* Every field, floats rendered in hex so distinct bit patterns never
   collapse; two specs share a digest iff a tape recorded under one
   replays faithfully under the other.

   Single-slot memo on physical identity: campaign cells share one spec
   value per benchmark, and replay verification digests the spec on every
   cell — the MD5 over the rendered record was measurable on the warm
   path.  A stale or concurrent slot only costs a recompute. *)
let digest_memo : (t * string) option ref = ref None

let compute_digest t =
  let f = Printf.sprintf "%h" in
  let latency =
    match t.latency with
    | None -> "none"
    | Some l -> Printf.sprintf "load=%s,req=%d" (f l.offered_load) l.request_packets
  in
  Digest.to_hex
    (Digest.string
       (Printf.sprintf
          "spec-v1(name=%s,desc=%s,threads=%d,packets=%d,compute=%d,allocs=%d,szmin=%d,\
           szmean=%d,szmax=%d,refd=%s,surv=%s,ttl=%d,llwords=%d,llchurn=%s,reads=%d,\
           writes=%d,latency=%s)"
          (String.escaped t.name) (String.escaped t.description) t.mutator_threads
          t.packets_per_thread t.packet_compute_cycles t.allocs_per_packet t.size_min
          t.size_mean t.size_max (f t.ref_density) (f t.survival_ratio)
          t.nursery_ttl_packets t.long_lived_target_words
          (f t.long_lived_churn_per_packet) t.reads_per_packet t.writes_per_packet latency))

let digest t =
  match !digest_memo with
  | Some (t', d) when t' == t -> d
  | _ ->
      let d = compute_digest t in
      digest_memo := Some (t, d);
      d

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error (t.name ^ ": " ^ s)) fmt in
  if t.mutator_threads < 1 then err "needs at least one mutator thread"
  else if t.packets_per_thread < 1 then err "needs at least one packet"
  else if t.size_min < Gcr_heap.Obj_model.header_words + 1 then err "size_min below header"
  else if not (t.size_min <= t.size_mean && t.size_mean <= t.size_max) then
    err "size ordering must be min <= mean <= max"
  else if t.size_max > 256 then err "size_max too large for the region size"
  else if t.ref_density < 0.0 || t.ref_density > 1.0 then err "ref_density outside [0,1]"
  else if t.survival_ratio < 0.0 || t.survival_ratio > 1.0 then err "survival_ratio outside [0,1]"
  else if t.long_lived_churn_per_packet < 0.0 then err "negative churn"
  else
    match t.latency with
    | Some l when l.offered_load <= 0.0 || l.offered_load >= 1.0 ->
        err "offered_load must be in (0,1)"
    | Some l when l.request_packets < 1 -> err "request_packets must be positive"
    | Some _ | None -> Ok ()

let pp ppf t =
  Format.fprintf ppf
    "%s: %d threads x %d packets, %d allocs/packet (mean %d words), live ~%a%s" t.name
    t.mutator_threads t.packets_per_thread t.allocs_per_packet t.size_mean
    Gcr_util.Units.pp_words (live_words_estimate t)
    (match t.latency with None -> "" | Some _ -> ", latency-sensitive")
