(* One row per DaCapo benchmark.  The defaults encode a "typical" Java
   workload; each benchmark overrides what makes it distinctive.  All
   cycle numbers scale together through Spec.scale. *)

let base =
  {
    Spec.name = "base";
    description = "";
    mutator_threads = 4;
    packets_per_thread = 1000;
    packet_compute_cycles = 50_000;
    allocs_per_packet = 10;
    size_min = 4;
    size_mean = 16;
    size_max = 64;
    ref_density = 0.3;
    survival_ratio = 0.10;
    nursery_ttl_packets = 5;
    long_lived_target_words = 20_000;
    long_lived_churn_per_packet = 0.1;
    reads_per_packet = 2000;
    writes_per_packet = 300;
    latency = None;
  }

let lat ~offered_load ~request_packets = Some { Spec.offered_load; request_packets }

let all =
  [
    { base with
      Spec.name = "avrora"; description = "AVR microcontroller simulation: low allocation, little parallelism";
      mutator_threads = 2; packets_per_thread = 3000; allocs_per_packet = 4; size_mean = 10;
      survival_ratio = 0.05; nursery_ttl_packets = 6; long_lived_target_words = 6_000;
      long_lived_churn_per_packet = 0.02; reads_per_packet = 1200; writes_per_packet = 150 };
    { base with
      Spec.name = "batik"; description = "SVG rendering: bursts of medium-sized, moderately surviving objects";
      packets_per_thread = 1200; allocs_per_packet = 10; size_mean = 24; size_max = 96;
      survival_ratio = 0.15; long_lived_target_words = 24_000; long_lived_churn_per_packet = 0.2;
      writes_per_packet = 250 };
    { base with
      Spec.name = "biojava"; description = "sequence analysis: many short-lived small objects";
      packets_per_thread = 1500; allocs_per_packet = 13; size_mean = 12;
      survival_ratio = 0.04; nursery_ttl_packets = 3; long_lived_target_words = 30_000;
      long_lived_churn_per_packet = 0.05; reads_per_packet = 2500; writes_per_packet = 200 };
    { base with
      Spec.name = "eclipse"; description = "IDE workload: large live set with steady churn";
      mutator_threads = 8; allocs_per_packet = 9; survival_ratio = 0.12;
      nursery_ttl_packets = 6; long_lived_target_words = 60_000;
      long_lived_churn_per_packet = 0.25; reads_per_packet = 2200; writes_per_packet = 350 };
    { base with
      Spec.name = "fop"; description = "XSL-FO to PDF: allocation-heavy with high survival";
      packets_per_thread = 900; allocs_per_packet = 15; size_mean = 20; survival_ratio = 0.18;
      nursery_ttl_packets = 6; long_lived_target_words = 26_000;
      long_lived_churn_per_packet = 0.3; writes_per_packet = 400 };
    { base with
      Spec.name = "graphchi"; description = "out-of-core graph computation: big long-lived arrays, low churn";
      mutator_threads = 6; packets_per_thread = 1200; allocs_per_packet = 5; size_mean = 28;
      size_max = 128; survival_ratio = 0.08; nursery_ttl_packets = 8;
      long_lived_target_words = 60_000; reads_per_packet = 3000 };
    { base with
      Spec.name = "h2"; description = "in-memory SQL database: large live set, transactional churn";
      mutator_threads = 8; packets_per_thread = 1100; allocs_per_packet = 12; size_mean = 18;
      survival_ratio = 0.12; long_lived_target_words = 80_000;
      long_lived_churn_per_packet = 0.35; reads_per_packet = 2500; writes_per_packet = 450 };
    { base with
      Spec.name = "jme"; description = "3D engine frame loop: tiny allocation rate";
      packets_per_thread = 1500; allocs_per_packet = 2; size_mean = 12; survival_ratio = 0.03;
      nursery_ttl_packets = 4; long_lived_target_words = 4_000;
      long_lived_churn_per_packet = 0.01; reads_per_packet = 1000; writes_per_packet = 100 };
    { base with
      Spec.name = "jython"; description = "Python interpreter: rapid small-object allocation";
      mutator_threads = 6; packets_per_thread = 1100; allocs_per_packet = 17; size_mean = 14;
      long_lived_target_words = 25_000; long_lived_churn_per_packet = 0.15;
      reads_per_packet = 2200; writes_per_packet = 350 };
    { base with
      Spec.name = "luindex"; description = "Lucene indexing: single-writer, modest allocation";
      mutator_threads = 2; packets_per_thread = 2000; allocs_per_packet = 8;
      survival_ratio = 0.06; nursery_ttl_packets = 4; long_lived_target_words = 14_000;
      long_lived_churn_per_packet = 0.08; reads_per_packet = 1800; writes_per_packet = 250 };
    { base with
      Spec.name = "lusearch"; description = "Lucene search: latency-sensitive, allocation-intensive, all cores";
      mutator_threads = 16; allocs_per_packet = 24; size_mean = 14; survival_ratio = 0.08;
      nursery_ttl_packets = 3; long_lived_target_words = 8_000;
      long_lived_churn_per_packet = 0.05; writes_per_packet = 250;
      latency = lat ~offered_load:0.65 ~request_packets:4 };
    { base with
      Spec.name = "pmd"; description = "source-code analysis: AST-heavy with medium live set";
      mutator_threads = 8; packets_per_thread = 900; allocs_per_packet = 15; size_mean = 18;
      survival_ratio = 0.14; long_lived_target_words = 40_000;
      long_lived_churn_per_packet = 0.25; reads_per_packet = 2200; writes_per_packet = 380 };
    { base with
      Spec.name = "sunflow"; description = "ray tracing: embarrassingly parallel, high allocation of tiny objects";
      mutator_threads = 16; packets_per_thread = 900; allocs_per_packet = 22; size_mean = 12;
      survival_ratio = 0.05; nursery_ttl_packets = 3; long_lived_target_words = 10_000;
      long_lived_churn_per_packet = 0.04; reads_per_packet = 2500; writes_per_packet = 200 };
    { base with
      Spec.name = "tomcat"; description = "servlet container: latency-sensitive request processing";
      mutator_threads = 12; packets_per_thread = 900; allocs_per_packet = 11;
      long_lived_target_words = 30_000; long_lived_churn_per_packet = 0.2;
      latency = lat ~offered_load:0.60 ~request_packets:5 };
    { base with
      Spec.name = "tradebeans"; description = "DayTrader via EJB: large session state, latency-sensitive";
      mutator_threads = 8; allocs_per_packet = 13; size_mean = 18; survival_ratio = 0.12;
      long_lived_target_words = 50_000; long_lived_churn_per_packet = 0.3;
      reads_per_packet = 2300; writes_per_packet = 400;
      latency = lat ~offered_load:0.60 ~request_packets:6 };
    { base with
      Spec.name = "tradesoap"; description = "DayTrader via SOAP: serialisation garbage on top of tradebeans";
      mutator_threads = 8; allocs_per_packet = 14; size_mean = 18; survival_ratio = 0.12;
      long_lived_target_words = 50_000; long_lived_churn_per_packet = 0.3;
      reads_per_packet = 2300; writes_per_packet = 420;
      latency = lat ~offered_load:0.60 ~request_packets:6 };
    { base with
      Spec.name = "xalan"; description = "XSLT: extreme allocation rate, the concurrent collectors' nemesis";
      mutator_threads = 16; packets_per_thread = 900; allocs_per_packet = 110;
      survival_ratio = 0.15; nursery_ttl_packets = 3; long_lived_target_words = 15_000;
      writes_per_packet = 350 };
    { base with
      Spec.name = "zxing"; description = "barcode decoding: parallel, moderate allocation";
      mutator_threads = 12; packets_per_thread = 900; allocs_per_packet = 8; size_mean = 22;
      survival_ratio = 0.07; nursery_ttl_packets = 4; long_lived_target_words = 12_000;
      long_lived_churn_per_packet = 0.06; writes_per_packet = 250 };
  ]

let names = List.map (fun s -> s.Spec.name) all

let find name =
  let lower = String.lowercase_ascii name in
  List.find_opt (fun s -> String.lowercase_ascii s.Spec.name = lower) all

let find_exn name =
  match find name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Suite.find_exn: unknown benchmark %S" name)

let core_16 =
  List.filter (fun s -> s.Spec.name <> "eclipse" && s.Spec.name <> "xalan") all

let latency_sensitive = List.filter (fun s -> s.Spec.latency <> None) all

(* The suite must always be internally consistent. *)
let () =
  List.iter
    (fun s ->
      match Spec.validate s with
      | Ok () -> ()
      | Error msg -> invalid_arg ("Suite: invalid benchmark spec: " ^ msg))
    all
