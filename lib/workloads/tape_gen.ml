module Prng = Gcr_util.Prng
module Tape = Gcr_tape.Tape

(* A tape can be produced two ways: as the tee of a real run (Run with
   [Tape_record]), or — the campaign path — synthesised directly here,
   with no heap or engine, by replicating Run.execute's PRNG plumbing:

     root          = Prng.create seed
     (long-lived)    Prng.split root     -- consumed, stream unused
     mutator i     = Prng.split root     for i = 0 .. threads-1
     latency       = Prng.split root     only for latency-sensitive specs

   and then drawing each mutator stream eagerly.  The raw stream is a pure
   function of (seed, split order): the two ways agree on every word they
   both cover (test_tape.ml proves the recorded tee is a prefix of the
   generated stream).

   [stream_length] bounds the draws one thread can make without allocation
   retries: per packet, one churn-quota draw plus at most five draws per
   allocation (size, chain, long-lived ref, ref target, survival — the
   long-lived path uses at most four).  Retry re-draws past the bound are
   served by the replay cursor's PRNG fallback, so the bound does not have
   to be exact — only cheap and generous. *)

let draws_per_packet (spec : Spec.t) = 1 + (5 * spec.Spec.allocs_per_packet)

let stream_length (spec : Spec.t) = spec.Spec.packets_per_thread * draws_per_packet spec

let generate ~(spec : Spec.t) ~seed =
  let threads = spec.Spec.mutator_threads in
  let root = Prng.create seed in
  let (_ : Prng.t) = Prng.split root in
  let length = stream_length spec in
  let streams =
    (* explicit loop: stream [i] must take the [i]-th split, in order *)
    let a = Array.make threads { Tape.state0 = 0L; gamma = 0L; raw = [||] } in
    for i = 0 to threads - 1 do
      let prng = Prng.split root in
      let state0, gamma = Prng.raw_state prng in
      let raw = Array.make length 0 in
      for k = 0 to length - 1 do
        raw.(k) <- Int64.to_int (Int64.shift_right_logical (Prng.bits64 prng) 2)
      done;
      a.(i) <- { Tape.state0; gamma; raw }
    done;
    a
  in
  let arrivals =
    match spec.Spec.latency with
    | None -> [||]
    | Some _ -> Latency.arrival_schedule ~spec ~threads (Prng.split root)
  in
  {
    Tape.benchmark = spec.Spec.name;
    spec_digest = Spec.digest spec;
    seed;
    streams;
    arrivals;
  }

let image ~spec ~seed = Decision_source.image_of_tape ~spec (generate ~spec ~seed)
