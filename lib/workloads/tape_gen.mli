(** Synthesising workload tapes without running the simulator.

    The decision stream is a pure function of (spec, seed, thread count),
    so a tape does not need a recording run: this module replicates
    [Run.execute]'s PRNG split order and draws every stream eagerly.  The
    campaign executor calls {!image} once per (benchmark, seed) cell group
    and replays it in every cell. *)

val stream_length : Spec.t -> int
(** Upper bound on one thread's retry-free draw count; the replay cursor's
    PRNG fallback covers anything beyond it. *)

val generate : spec:Spec.t -> seed:int -> Gcr_tape.Tape.t

val image : spec:Spec.t -> seed:int -> Decision_source.image
(** [image_of_tape ∘ generate]. *)
