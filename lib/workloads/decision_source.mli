(** Where a mutator's workload decisions come from.

    The three workload drivers (mutator, long-lived graph, latency
    schedule) draw every random decision through one of these sources:

    - {e Live}: straight from a SplitMix64 stream — the historical path.
    - {e Record}: draws from the same stream, but logs each raw 62-bit
      word before interpreting it, so the run leaves a {!Gcr_tape.Tape.t}
      behind (the record tee).
    - {e Replay}: a cursor over a prebuilt {!image} — per-decision work is
      an array read and a bit test, no PRNG mixing and no float math.

    The tape stores raw PRNG output rather than interpreted decisions
    because the {e consumption pattern} is collector-dependent (an
    [Out_of_regions] retry re-draws the allocation size), while the stream
    itself is not.  Interpretation therefore happens at the call site in
    all three modes; the replay image just precomputes every
    interpretation this spec can ask for — the clamped geometric size in
    the low bits, one bit per Bernoulli site — so the hot path picks bits
    instead of computing [log].

    A replay source that runs past the recorded stream falls back to a
    live generator positioned at [state0 + length·gamma] — the exact
    continuation of the recorded stream (SplitMix64 is counter-based) —
    so replay is bit-identical to live for {e every} cell, including
    retry-heavy near-OOM ones, regardless of tape length. *)

type t

type image
(** An immutable, domain-shareable replay image of one tape: per-thread
    packed decision arrays plus the raw words (for [mod]-bound index
    draws) and the latency arrival schedule. *)

(** {1 Constructing sources} *)

val live : spec:Spec.t -> Gcr_util.Prng.t -> t

val record : spec:Spec.t -> Gcr_util.Prng.t -> t

val replay : image -> thread:int -> t
(** [replay image ~thread] is a fresh cursor over thread [thread]'s
    stream.  Raises [Invalid_argument] if the image has no such thread. *)

(** {1 Drawing decisions}

    One call consumes exactly one stream word, mirroring the PRNG. *)

val draw_size : t -> int
(** Clamped geometric object size in [size_min..size_max]. *)

val chain : t -> bool
(** Chain this allocation to the previous one (p = 1/2). *)

val ll_ref : t -> bool
(** Sparsely reference the long-lived graph (p = 0.3). *)

val survive : t -> bool
(** Retain this object in the nursery FIFO (p = survival_ratio). *)

val churn_extra : t -> bool
(** Round the fractional long-lived churn quota up this packet. *)

val index : t -> int -> int
(** Uniform slot index in [\[0, bound)]; [bound] must be positive. *)

(** {1 Tapes and images} *)

val recorded_stream : t -> Gcr_tape.Tape.stream
(** The stream a {!record} source has captured so far.  Raises
    [Invalid_argument] on live/replay sources. *)

val image_of_tape : spec:Spec.t -> Gcr_tape.Tape.t -> image
(** Precompute the replay image.  Raises [Invalid_argument] when the
    tape's spec digest does not match [spec] — a tape is only meaningful
    against the exact spec it was recorded for. *)

val image_benchmark : image -> string

val image_spec_digest : image -> string

val image_seed : image -> int

val image_threads : image -> int

val image_arrivals : image -> int array

val image_digest : image -> string
(** The underlying tape's content digest (folded into cache keys). *)
