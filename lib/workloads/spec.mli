(** Workload descriptors.

    DaCapo's Java bytecode cannot run on the simulator, so each benchmark
    is replaced by a descriptor of the behaviour the GC actually sees:
    allocation rate and object-size distribution, object demographics
    (nursery survival and long-lived churn, following the weak generational
    hypothesis), pointer read/write rates, thread count, and — for
    latency-sensitive benchmarks — a metered request stream (DESIGN.md §2).

    A mutator executes [packets_per_thread] {e packets}; each packet is
    [packet_compute_cycles] of pure compute plus the per-packet allocation
    and heap-access quotas below. *)

type latency_spec = {
  offered_load : float;
      (** arrival rate as a fraction of ideal service capacity; queueing
          delay explodes as GC overhead pushes effective utilisation
          towards 1 *)
  request_packets : int;  (** service time of one request, in packets *)
}

type t = {
  name : string;
  description : string;
  mutator_threads : int;
  packets_per_thread : int;
  packet_compute_cycles : int;
  allocs_per_packet : int;
  size_min : int;
  size_mean : int;
  size_max : int;  (** object sizes in words *)
  ref_density : float;  (** fraction of non-header words that are refs *)
  survival_ratio : float;
      (** probability a new object is retained in the nursery FIFO instead
          of becoming garbage at once *)
  nursery_ttl_packets : int;
      (** retained young objects are dropped after this many packets *)
  long_lived_target_words : int;  (** steady-state shared live graph *)
  long_lived_churn_per_packet : float;
      (** expected long-lived node replacements per packet *)
  reads_per_packet : int;
  writes_per_packet : int;
  latency : latency_spec option;
}

val scale : t -> float -> t
(** Scale the run length (packets, and request count implicitly) by a
    factor; everything rate-like is preserved. *)

val allocated_words_estimate : t -> int
(** Rough total allocation of one run (for Epsilon feasibility and
    min-heap search bounds). *)

val live_words_estimate : t -> int
(** Rough steady-state live footprint. *)

val packet_alloc_words : t -> int
(** Mean words allocated per packet. *)

val digest : t -> string
(** Content hash of every field (hex).  Workload tapes are stamped with
    the digest of the spec they were recorded under, and replay refuses a
    mismatch: a tape's decision stream is only meaningful against the
    exact spec that produced it. *)

val validate : t -> (unit, string) result
(** Sanity-check ranges (sizes fit regions, probabilities in [0,1]...). *)

val pp : Format.formatter -> t -> unit
