module Obj_model = Gcr_heap.Obj_model
module Gc_types = Gcr_gcs.Gc_types

let write_ref ~(gc : Gc_types.t) ~(src : Obj_model.t) ~slot ~target =
  let old_target = src.Obj_model.fields.(slot) in
  gc.Gc_types.on_pointer_write ~src ~old_target ~new_target:target;
  src.Obj_model.fields.(slot) <- target;
  gc.Gc_types.write_barrier ()

let read_ref ~(gc : Gc_types.t) ~(src : Obj_model.t) ~slot =
  (src.Obj_model.fields.(slot), gc.Gc_types.read_barrier ())
