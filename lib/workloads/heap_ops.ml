module Heap = Gcr_heap.Heap
module Obj_model = Gcr_heap.Obj_model
module Gc_types = Gcr_gcs.Gc_types

let write_ref ~(gc : Gc_types.t) ~heap ~(src : Obj_model.id) ~slot ~target =
  let old_target = Heap.field heap src slot in
  gc.Gc_types.on_pointer_write ~src ~old_target ~new_target:target;
  Heap.set_field heap src slot target;
  gc.Gc_types.write_barrier ()

let read_ref ~(gc : Gc_types.t) ~heap ~(src : Obj_model.id) ~slot =
  (Heap.field heap src slot, gc.Gc_types.read_barrier ())
