(** A mutator thread executing packets of the workload.

    Each packet is base compute plus the spec's allocation/read/write
    quotas, with every allocation and pointer write mediated by the
    collector (barrier costs, refill policy, allocation failure).  The
    packet application is written in continuation style so a collection or
    an allocation stall can interrupt it mid-allocation and resume exactly
    where it left off. *)

type t

val create :
  Gcr_gcs.Gc_types.ctx ->
  gc:Gcr_gcs.Gc_types.t ->
  spec:Spec.t ->
  longlived:Longlived.t ->
  prng:Gcr_util.Prng.t ->
  index:int ->
  t
(** Spawns the engine thread and registers the thread's eden allocator. *)

val thread : t -> Gcr_engine.Engine.thread

val roots : t -> Gcr_heap.Obj_model.id list
(** The thread's live stack/locals: nursery contents and the most recent
    allocation. *)

val packets_executed : t -> int

val start_batch : t -> unit
(** Self-driven mode: run [spec.packets_per_thread] packets, then exit the
    thread (throughput benchmarks). *)

val run_packets : t -> int -> (unit -> unit) -> unit
(** Server mode: run [n] packets then call the continuation, leaving the
    thread alive (latency benchmarks drive this per request). *)

val exit : t -> unit
(** Exit the engine thread (server mode shutdown). *)
