(** A mutator thread executing packets of the workload.

    Each packet is base compute plus the spec's allocation/read/write
    quotas, with every allocation and pointer write mediated by the
    collector (barrier costs, refill policy, allocation failure).  The
    packet application is written in continuation style so a collection or
    an allocation stall can interrupt it mid-allocation and resume exactly
    where it left off. *)

type t

val create :
  Gcr_gcs.Gc_types.ctx ->
  gc:Gcr_gcs.Gc_types.t ->
  spec:Spec.t ->
  longlived:Longlived.t ->
  ds:Decision_source.t ->
  index:int ->
  t
(** Spawns the engine thread and registers the thread's eden allocator.
    Every workload decision the thread makes is drawn from [ds] — a live
    PRNG stream, a recording tee, or a tape replay cursor. *)

val thread : t -> Gcr_engine.Engine.thread

val iter_roots : t -> (Gcr_heap.Obj_model.id -> unit) -> unit
(** The thread's live stack/locals: the most recent allocation, then the
    nursery newest-first.  Allocation-free; this is the path the
    collectors' root scans use. *)

val roots : t -> Gcr_heap.Obj_model.id list
(** [roots t] is [iter_roots] materialised as a list, in the same order
    (tests and debugging). *)

val packets_executed : t -> int

val start_batch : t -> unit
(** Self-driven mode: run [spec.packets_per_thread] packets, then exit the
    thread (throughput benchmarks). *)

val run_packets : t -> int -> (unit -> unit) -> unit
(** Server mode: run [n] packets then call the continuation, leaving the
    thread alive (latency benchmarks drive this per request). *)

val exit : t -> unit
(** Exit the engine thread (server mode shutdown). *)
