module Heap = Gcr_heap.Heap
module Region = Gcr_heap.Region
module Obj_model = Gcr_heap.Obj_model
module Allocator = Gcr_heap.Allocator
module Gc_types = Gcr_gcs.Gc_types

let fields_per_segment = 32

let segment_size = fields_per_segment + Obj_model.header_words

type t = {
  ctx : Gc_types.ctx;
  segments : Obj_model.id array;
  total_slots : int;
  mutable filled : int;
}

let create (ctx : Gc_types.ctx) ~spec =
  let target = spec.Spec.long_lived_target_words in
  let node_words = spec.Spec.size_mean in
  let total_slots = max 1 (target / max 1 node_words) in
  let n_segments = (total_slots + fields_per_segment - 1) / fields_per_segment in
  let allocator = Allocator.create ctx.Gc_types.heap ~space:Region.Old in
  let alloc_segment _ =
    match Allocator.alloc allocator ~size:segment_size ~nfields:fields_per_segment with
    | Allocator.Allocated { obj; refilled = _ } -> obj
    | Allocator.Out_of_regions ->
        invalid_arg "Longlived.create: heap too small for the static data"
  in
  let segments = Array.init n_segments alloc_segment in
  Allocator.retire allocator;
  { ctx; segments; total_slots; filled = 0 }

let iter_roots t f = Array.iter f t.segments

let roots t = Array.to_list t.segments

let is_full t = t.filled >= t.total_slots

let slot_count t = t.total_slots

let slot_position index = (index / fields_per_segment, index mod fields_per_segment)

let place t ~gc ~ds ~(node : Obj_model.id) =
  let index =
    if is_full t then
      (* Churn: replace a random node; the old one becomes garbage unless
         the graph still references it. *)
      Decision_source.index ds t.total_slots
    else begin
      let i = t.filled in
      t.filled <- t.filled + 1;
      i
    end
  in
  let seg, slot = slot_position index in
  Heap_ops.write_ref ~gc ~heap:t.ctx.Gc_types.heap ~src:t.segments.(seg) ~slot ~target:node

let random_node t ds =
  if t.filled = 0 then Obj_model.null
  else begin
    let index = Decision_source.index ds t.filled in
    let seg, slot = slot_position index in
    Heap.field t.ctx.Gc_types.heap t.segments.(seg) slot
  end
