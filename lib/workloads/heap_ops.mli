(** Barrier-mediated heap accesses.

    All workload pointer writes must go through {!write_ref} so every
    collector sees the traffic its barriers depend on (remembered sets,
    SATB snapshots).  Returns the cycle cost to charge to the current
    packet. *)

val write_ref :
  gc:Gcr_gcs.Gc_types.t ->
  heap:Gcr_heap.Heap.t ->
  src:Gcr_heap.Obj_model.id ->
  slot:int ->
  target:Gcr_heap.Obj_model.id ->
  int
(** Performs the pre-write barrier hook, stores, and returns the write
    barrier cost. *)

val read_ref :
  gc:Gcr_gcs.Gc_types.t ->
  heap:Gcr_heap.Heap.t ->
  src:Gcr_heap.Obj_model.id ->
  slot:int ->
  Gcr_heap.Obj_model.id * int
(** Loads a field; returns the value and the read-barrier cost. *)
