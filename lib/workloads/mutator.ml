module Heap = Gcr_heap.Heap
module Region = Gcr_heap.Region
module Obj_model = Gcr_heap.Obj_model
module Allocator = Gcr_heap.Allocator
module Engine = Gcr_engine.Engine
module Vec = Gcr_util.Vec
module Cost_model = Gcr_mach.Cost_model
module Gc_types = Gcr_gcs.Gc_types

(* The nursery is a ring buffer over two parallel int arrays (object id,
   expiry packet) rather than a [Queue.t] of tuples: root enumeration and
   expiry run on every packet and must not allocate. *)
type t = {
  ctx : Gc_types.ctx;
  gc : Gc_types.t;
  spec : Spec.t;
  longlived : Longlived.t;
  ds : Decision_source.t;
  nfields_tab : int array;  (** nfields by object size; sizes are <= size_max *)
  th : Engine.thread;
  eden : Allocator.t;
  mutable nursery_ids : int array;
  mutable nursery_expiry : int array;
  mutable nursery_head : int;  (** index of the oldest entry *)
  mutable nursery_len : int;
  mutable last_alloc : Obj_model.id;
  mutable packets : int;
}

let initial_nursery = 16  (* power of two; the ring index is masked *)

(* Sizes are bounded by the spec ([size_max <= 256]), so the ref-density
   rounding is a table lookup instead of per-allocation float math.  The
   table depends only on (size_max, ref_density); a single-slot memo
   serves every mutator of every sibling cell on the warm path.  The
   table is read-only after construction, so sharing it across mutators
   (and pool domains) is safe; a racing slot write only recomputes. *)
let nfields_memo : (int * float * int array) option ref = ref None

let nfields_table (spec : Spec.t) =
  let size_max = spec.Spec.size_max and ref_density = spec.Spec.ref_density in
  match !nfields_memo with
  | Some (sm, rd, tab) when sm = size_max && Float.equal rd ref_density -> tab
  | _ ->
      let tab =
        Array.init (size_max + 1) (fun size ->
            let slots = Obj_model.fields_capacity ~size in
            let wanted =
              int_of_float (Float.round (float_of_int slots *. ref_density))
            in
            max 1 (min slots wanted))
      in
      nfields_memo := Some (size_max, ref_density, tab);
      tab

let create (ctx : Gc_types.ctx) ~gc ~spec ~longlived ~ds ~index =
  let th =
    Engine.spawn ctx.Gc_types.engine ~kind:Engine.Mutator
      ~name:(Printf.sprintf "%s-mutator-%d" spec.Spec.name index)
  in
  let eden = Allocator.create ctx.Gc_types.heap ~space:Region.Eden in
  Vec.push ctx.Gc_types.allocators eden;
  {
    ctx;
    gc;
    spec;
    longlived;
    ds;
    nfields_tab = nfields_table spec;
    th;
    eden;
    nursery_ids = Array.make initial_nursery Obj_model.null;
    nursery_expiry = Array.make initial_nursery 0;
    nursery_head = 0;
    nursery_len = 0;
    last_alloc = Obj_model.null;
    packets = 0;
  }

let thread t = t.th

let packets_executed t = t.packets

let grow_nursery t =
  let cap = Array.length t.nursery_ids in
  let ids = Array.make (2 * cap) Obj_model.null in
  let expiry = Array.make (2 * cap) 0 in
  let mask = cap - 1 in
  for k = 0 to t.nursery_len - 1 do
    let i = (t.nursery_head + k) land mask in
    ids.(k) <- t.nursery_ids.(i);
    expiry.(k) <- t.nursery_expiry.(i)
  done;
  t.nursery_ids <- ids;
  t.nursery_expiry <- expiry;
  t.nursery_head <- 0

let nursery_push t id ~expiry =
  if t.nursery_len = Array.length t.nursery_ids then grow_nursery t;
  let mask = Array.length t.nursery_ids - 1 in
  let i = (t.nursery_head + t.nursery_len) land mask in
  t.nursery_ids.(i) <- id;
  t.nursery_expiry.(i) <- expiry;
  t.nursery_len <- t.nursery_len + 1

(* Roots, newest first: the in-flight allocation chain head, then the
   nursery from youngest to oldest.  [iter_roots] is the allocation-free
   path the collectors use; [roots] builds a list for tests. *)
let iter_roots t f =
  if not (Obj_model.is_null t.last_alloc) then f t.last_alloc;
  let mask = Array.length t.nursery_ids - 1 in
  for k = t.nursery_len - 1 downto 0 do
    f t.nursery_ids.((t.nursery_head + k) land mask)
  done

let roots t =
  let acc = ref [] in
  iter_roots t (fun id -> acc := id :: !acc);
  List.rev !acc

let draw_size t = Decision_source.draw_size t.ds

let nfields_for t size = Array.unsafe_get t.nfields_tab size

let drop_expired_nursery t =
  let mask = Array.length t.nursery_ids - 1 in
  while t.nursery_len > 0 && t.nursery_expiry.(t.nursery_head) <= t.packets do
    t.nursery_head <- (t.nursery_head + 1) land mask;
    t.nursery_len <- t.nursery_len - 1
  done

(* Wiring discipline (keeps the live set bounded and realistic):
   - ordinary objects chain to the previous allocation with probability
     1/2 — geometric chains, two objects transitively on average — and
     sparsely reference the long-lived graph;
   - long-lived nodes reference only other long-lived nodes, never the
     young chain (otherwise every node would pin its whole allocation
     packet for its entire lifetime).
   The chain and long-lived-reference probabilities live in
   {!Decision_source} next to their replay interpretations.
   Returns the cycle cost of the writes. *)
let wire_ordinary t id =
  let heap = t.ctx.Gc_types.heap in
  let cost = ref 0 in
  let nfields = Heap.obj_nfields heap id in
  if nfields > 0 && (not (Obj_model.is_null t.last_alloc)) && Decision_source.chain t.ds
  then cost := !cost + Heap_ops.write_ref ~gc:t.gc ~heap ~src:id ~slot:0 ~target:t.last_alloc;
  if nfields > 1 && Decision_source.ll_ref t.ds then begin
    let node = Longlived.random_node t.longlived t.ds in
    if not (Obj_model.is_null node) then
      cost := !cost + Heap_ops.write_ref ~gc:t.gc ~heap ~src:id ~slot:1 ~target:node
  end;
  t.last_alloc <- id;
  !cost

let wire_longlived t id =
  let heap = t.ctx.Gc_types.heap in
  let cost = ref 0 in
  let nfields = Heap.obj_nfields heap id in
  let slots = min nfields 2 in
  for slot = 0 to slots - 1 do
    let node = Longlived.random_node t.longlived t.ds in
    if not (Obj_model.is_null node) then
      cost := !cost + Heap_ops.write_ref ~gc:t.gc ~heap ~src:id ~slot ~target:node
  done;
  !cost

(* How many allocations of this packet become long-lived: every one during
   ramp-up (so the live set builds quickly), then the spec's churn rate. *)
let long_lived_quota t =
  if not (Longlived.is_full t.longlived) then t.spec.Spec.allocs_per_packet
  else begin
    let whole = int_of_float t.spec.Spec.long_lived_churn_per_packet in
    whole + if Decision_source.churn_extra t.ds then 1 else 0
  end

let run_packet t k =
  let cost_model = t.ctx.Gc_types.cost in
  let heap = t.ctx.Gc_types.heap in
  t.packets <- t.packets + 1;
  drop_expired_nursery t;
  let cost = ref t.spec.Spec.packet_compute_cycles in
  cost := !cost + (t.spec.Spec.reads_per_packet * t.gc.Gc_types.read_barrier ());
  cost := !cost + (t.spec.Spec.writes_per_packet * t.gc.Gc_types.write_barrier ());
  let longlived_left = ref (long_lived_quota t) in
  t.last_alloc <- Obj_model.null;
  (* chains never span packets *)
  let handle_allocated id =
    cost :=
      !cost + cost_model.Cost_model.alloc_fast
      + (cost_model.Cost_model.alloc_init_per_word * Heap.obj_size heap id);
    t.gc.Gc_types.on_alloc id;
    if !longlived_left > 0 then begin
      decr longlived_left;
      cost := !cost + wire_longlived t id;
      cost := !cost + Longlived.place t.longlived ~gc:t.gc ~ds:t.ds ~node:id
    end
    else begin
      cost := !cost + wire_ordinary t id;
      if Decision_source.survive t.ds then
        nursery_push t id ~expiry:(t.packets + t.spec.Spec.nursery_ttl_packets)
    end
  in
  let rec alloc_loop i finish =
    if i >= t.spec.Spec.allocs_per_packet then finish ()
    else begin
      let size = draw_size t in
      match Allocator.alloc t.eden ~size ~nfields:(nfields_for t size) with
      | Allocator.Allocated { obj; refilled } ->
          handle_allocated obj;
          if refilled then begin
            cost := !cost + cost_model.Cost_model.tlab_refill;
            t.gc.Gc_types.after_refill t.th ~cont:(fun () -> alloc_loop (i + 1) finish)
          end
          else alloc_loop (i + 1) finish
      | Allocator.Out_of_regions ->
          t.gc.Gc_types.on_out_of_regions t.th ~retry:(fun () -> alloc_loop i finish)
    end
  in
  alloc_loop 0 (fun () -> Engine.submit t.ctx.Gc_types.engine t.th ~cycles:!cost k)

let rec run_packets t n k =
  if n <= 0 then k () else run_packet t (fun () -> run_packets t (n - 1) k)

let start_batch t =
  run_packets t t.spec.Spec.packets_per_thread (fun () ->
      Engine.exit_thread t.ctx.Gc_types.engine t.th)

let exit t = Engine.exit_thread t.ctx.Gc_types.engine t.th
