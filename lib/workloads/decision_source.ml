module Prng = Gcr_util.Prng
module Tape = Gcr_tape.Tape

(* Interpretation parameters — everything a raw 62-bit stream word can be
   asked to mean under one spec.  The chain and long-lived-reference
   probabilities are workload-model constants (see the wiring-discipline
   note in mutator.ml); the rest come from the spec. *)
type params = {
  size_mean : int;
  size_min : int;
  size_max : int;
  p_survive : float;
  p_churn : float;  (** fractional part of the per-packet churn quota *)
}

let p_chain = 0.5

let p_llref = 0.3

let params_of_spec (spec : Spec.t) =
  let churn = spec.Spec.long_lived_churn_per_packet in
  {
    size_mean = spec.Spec.size_mean;
    size_min = spec.Spec.size_min;
    size_max = spec.Spec.size_max;
    p_survive = spec.Spec.survival_ratio;
    p_churn = churn -. float_of_int (int_of_float churn);
  }

(* --- Interpreting a raw word exactly as the PRNG would. ---

   A raw word is [bits64 lsr 2] (62 bits).  [Prng.unit_float] uses
   [bits64 lsr 11], i.e. [raw lsr 9]; the expressions below replicate the
   Prng float math operation for operation, so interpreting a recorded
   word yields the same bits as the live draw it replaces.  The
   differential suite in test_tape.ml holds this to account. *)

let interp_unit_float r = float_of_int (r lsr 9) *. 0x1.0p-53

let interp_size p r =
  let u = interp_unit_float r in
  let spread = float_of_int (p.size_mean - p.size_min) in
  let draw = p.size_min + int_of_float (-.spread *. log (1.0 -. u)) in
  if draw > p.size_max then p.size_max else draw

let interp_bernoulli r pr = interp_unit_float r < pr

let interp_index r bound = r mod bound

(* Replay image: per-position precomputed interpretations.  Packed layout
   (size_max <= 256 is enforced by Spec.validate, so the size fits 9 bits):
   bits 0..8 size, bit 9 chain, bit 10 ll_ref, bit 11 survive,
   bit 12 churn_extra.  The raw words are kept alongside for bound-relative
   index draws. *)

let bit_chain = 1 lsl 9

let bit_llref = 1 lsl 10

let bit_survive = 1 lsl 11

let bit_churn = 1 lsl 12

type thread_image = {
  state0 : int64;
  gamma : int64;
  packed : int array;
  raw : int array;
}

type image = {
  benchmark : string;
  seed : int;
  spec_digest : string;
  tape_digest : string;
  threads : thread_image array;
  arrivals : int array;
  p : params;
}

let image_of_tape ~spec (tape : Tape.t) =
  let spec_digest = Spec.digest spec in
  if tape.Tape.spec_digest <> spec_digest then
    invalid_arg
      (Printf.sprintf
         "Decision_source.image_of_tape: tape %s was recorded for spec digest %s, not %s"
         tape.Tape.benchmark tape.Tape.spec_digest spec_digest);
  let p = params_of_spec spec in
  (* Hoisted out of the per-word loop: the spread conversion and the
     per-spec thresholds are loop-invariant, and decoding runs over
     millions of words per full-size tape. *)
  let size_min = p.size_min in
  let size_max = p.size_max in
  let neg_spread = -.float_of_int (p.size_mean - size_min) in
  let p_survive = p.p_survive in
  let p_churn = p.p_churn in
  let threads =
    Array.map
      (fun (s : Tape.stream) ->
        let n = Array.length s.Tape.raw in
        let packed = Array.make n 0 in
        for i = 0 to n - 1 do
          let r = Array.unsafe_get s.Tape.raw i in
          let u = interp_unit_float r in
          let draw = size_min + int_of_float (neg_spread *. log (1.0 -. u)) in
          let size = if draw > size_max then size_max else draw in
          let v = size in
          let v = if u < p_chain then v lor bit_chain else v in
          let v = if u < p_llref then v lor bit_llref else v in
          let v = if u < p_survive then v lor bit_survive else v in
          let v = if u < p_churn then v lor bit_churn else v in
          Array.unsafe_set packed i v
        done;
        { state0 = s.Tape.state0; gamma = s.Tape.gamma; packed; raw = s.Tape.raw })
      tape.Tape.streams
  in
  {
    benchmark = tape.Tape.benchmark;
    seed = tape.Tape.seed;
    spec_digest;
    tape_digest = Tape.digest tape;
    threads;
    arrivals = tape.Tape.arrivals;
    p;
  }

let image_benchmark i = i.benchmark

let image_spec_digest i = i.spec_digest

let image_seed i = i.seed

let image_threads i = Array.length i.threads

let image_arrivals i = i.arrivals

let image_digest i = i.tape_digest

(* --- Sources. --- *)

type recorder = {
  rec_prng : Prng.t;
  rec_state0 : int64;
  rec_gamma : int64;
  mutable buf : int array;
  mutable len : int;
  rp : params;
}

type cursor = {
  packed : int array;
  raw : int array;
  rlen : int;
  mutable pos : int;
  fb : Prng.t;  (** continuation past the recorded stream *)
  cp : params;
}

type t =
  | Live of { prng : Prng.t; p : params }
  | Record of recorder
  | Replay of cursor

let live ~spec prng = Live { prng; p = params_of_spec spec }

let record ~spec prng =
  let state0, gamma = Prng.raw_state prng in
  Record
    {
      rec_prng = prng;
      rec_state0 = state0;
      rec_gamma = gamma;
      buf = Array.make 4096 0;
      len = 0;
      rp = params_of_spec spec;
    }

let replay image ~thread =
  if thread < 0 || thread >= Array.length image.threads then
    invalid_arg
      (Printf.sprintf "Decision_source.replay: thread %d of %d" thread
         (Array.length image.threads));
  let ti = image.threads.(thread) in
  let rlen = Array.length ti.raw in
  (* SplitMix64 state after n draws is state0 + n·gamma: the fallback
     generator continues the recorded stream exactly. *)
  let fb_state = Int64.add ti.state0 (Int64.mul (Int64.of_int rlen) ti.gamma) in
  Replay
    {
      packed = ti.packed;
      raw = ti.raw;
      rlen;
      pos = 0;
      fb = Prng.of_raw_state ~state:fb_state ~gamma:ti.gamma;
      cp = image.p;
    }

let record_draw r =
  let x = Int64.to_int (Int64.shift_right_logical (Prng.bits64 r.rec_prng) 2) in
  if r.len = Array.length r.buf then begin
    let buf = Array.make (2 * r.len) 0 in
    Array.blit r.buf 0 buf 0 r.len;
    r.buf <- buf
  end;
  Array.unsafe_set r.buf r.len x;
  r.len <- r.len + 1;
  x

let recorded_stream = function
  | Record r ->
      { Tape.state0 = r.rec_state0; gamma = r.rec_gamma; raw = Array.sub r.buf 0 r.len }
  | Live _ | Replay _ -> invalid_arg "Decision_source.recorded_stream: not a record source"

(* The replay hot path keeps the bounds check fused with the load: one
   compare, one bump, one unsafe read per draw.  (Funnelling the cursor
   through a shared [take] helper with a -1 exhaustion sentinel measured
   ~30% slower on tape/decisions_per_sec — the extra sentinel compare
   sits on every draw, and the common in-bounds case no longer folds
   into a single branch.) *)
let draw_size = function
  | Live { prng; p } ->
      Prng.geometric_size prng ~mean:p.size_mean ~min:p.size_min ~max:p.size_max
  | Record r -> interp_size r.rp (record_draw r)
  | Replay c ->
      let k = c.pos in
      if k < c.rlen then begin
        c.pos <- k + 1;
        Array.unsafe_get c.packed k land 0x1ff
      end
      else
        Prng.geometric_size c.fb ~mean:c.cp.size_mean ~min:c.cp.size_min
          ~max:c.cp.size_max

let[@inline] replay_bit c bit pr =
  let k = c.pos in
  if k < c.rlen then begin
    c.pos <- k + 1;
    Array.unsafe_get c.packed k land bit <> 0
  end
  else Prng.bernoulli c.fb pr

let chain = function
  | Live { prng; _ } -> Prng.bernoulli prng p_chain
  | Record r -> interp_bernoulli (record_draw r) p_chain
  | Replay c -> replay_bit c bit_chain p_chain

let ll_ref = function
  | Live { prng; _ } -> Prng.bernoulli prng p_llref
  | Record r -> interp_bernoulli (record_draw r) p_llref
  | Replay c -> replay_bit c bit_llref p_llref

let survive = function
  | Live { prng; p } -> Prng.bernoulli prng p.p_survive
  | Record r -> interp_bernoulli (record_draw r) r.rp.p_survive
  | Replay c -> replay_bit c bit_survive c.cp.p_survive

let churn_extra = function
  | Live { prng; p } -> Prng.bernoulli prng p.p_churn
  | Record r -> interp_bernoulli (record_draw r) r.rp.p_churn
  | Replay c -> replay_bit c bit_churn c.cp.p_churn

let index t bound =
  match t with
  | Live { prng; _ } -> Prng.int prng bound
  | Record r -> interp_index (record_draw r) bound
  | Replay c ->
      let k = c.pos in
      if k < c.rlen then begin
        c.pos <- k + 1;
        interp_index (Array.unsafe_get c.raw k) bound
      end
      else Prng.int c.fb bound
