(** The shared long-lived object graph.

    Models an application's caches and session state: a table of node
    slots held by {e segment} objects (heap-allocated arrays, so slot
    updates are real pointer writes with real barriers — the source of
    old-to-young remembered-set traffic).  Mutators fill the table during
    ramp-up and then churn it slowly, giving a steady-state live footprint
    of roughly [long_lived_target_words]. *)

type t

val create : Gcr_gcs.Gc_types.ctx -> spec:Spec.t -> t
(** Allocates the segment objects as cost-free static data (the
    application's pre-main initialisation).  Must run before the engine
    starts. *)

val iter_roots : t -> (Gcr_heap.Obj_model.id -> unit) -> unit
(** The segment ids (the static fields of the application), in segment
    order.  Allocation-free. *)

val roots : t -> Gcr_heap.Obj_model.id list
(** [iter_roots] materialised as a list (tests and debugging). *)

val is_full : t -> bool
(** Ramp-up finished: every slot holds a node. *)

val place :
  t -> gc:Gcr_gcs.Gc_types.t -> ds:Decision_source.t -> node:Gcr_heap.Obj_model.id -> int
(** Install a freshly allocated node into the table (an empty slot during
    ramp-up, a random slot — dropping the previous node — afterwards).
    The slot choice is drawn from the calling mutator's decision source.
    Returns the cycle cost of the write. *)

val random_node : t -> Decision_source.t -> Gcr_heap.Obj_model.id
(** A uniformly random current node, or [Obj_model.null] if the table is
    still empty.  Used to wire new objects into the long-lived graph. *)

val slot_count : t -> int
