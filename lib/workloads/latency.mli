(** Metered request stream for latency-sensitive benchmarks.

    Models DaCapo Chopin's latency harness: requests are processed eagerly
    (so the benchmark's duration remains a throughput measure), but each
    carries a {e synthetic} arrival timestamp drawn from a metered Poisson
    schedule whose rate is fixed independently of how fast the system
    actually runs.  Two latency measures are recorded, as in the paper
    (§IV-A):

    - {e simple}: completion − service start (ignores queueing);
    - {e metered}: completion − synthetic arrival, floored at the service
      time (a GC pause delays the requests in flight {e and} everything
      scheduled behind them — the measure the paper argues for).

    Latencies are recorded in cycles; convert with [Units.ms_of_cycles]. *)

type t

val arrival_schedule : spec:Spec.t -> threads:int -> Gcr_util.Prng.t -> int array
(** The metered (Poisson) arrival timestamps, in cycles, nondecreasing.
    A pure function of its arguments — the part of the latency harness a
    workload tape records.  [spec.latency] must be present. *)

val create :
  Gcr_gcs.Gc_types.ctx ->
  spec:Spec.t ->
  mutators:Mutator.t list ->
  arrivals:int array ->
  t
(** [spec.latency] must be present; [arrivals] comes from
    {!arrival_schedule} or a replayed tape and must be non-empty. *)

val start : t -> unit
(** Install the arrival process and set every mutator serving.  All
    mutator threads exit once the last request completes. *)

val total_requests : t -> int

val completed_requests : t -> int

val metered : t -> Gcr_util.Histogram.t

val simple : t -> Gcr_util.Histogram.t
