type stream = { state0 : int64; gamma : int64; raw : int array }

type t = {
  benchmark : string;
  spec_digest : string;
  seed : int;
  streams : stream array;
  arrivals : int array;
}

let magic = "GCRTAPE1"

(* FNV-1a 64-bit (shared with the fabric wire protocol): both the
   on-disk checksum and the cache digest. *)

let fnv_offset = Wire.fnv_offset

let fnv_substring = Wire.fnv_substring

let fnv_string = Wire.fnv_string

let fnv_int64 = Wire.fnv_int64

let fnv_int = Wire.fnv_int

let digest t =
  let h = fnv_string fnv_offset magic in
  let h = fnv_string h t.benchmark in
  let h = fnv_string h t.spec_digest in
  let h = fnv_int h t.seed in
  let h = fnv_int h (Array.length t.streams) in
  let h =
    Array.fold_left
      (fun h (s : stream) ->
        let h = fnv_int64 h s.state0 in
        let h = fnv_int64 h s.gamma in
        let h = fnv_int h (Array.length s.raw) in
        Array.fold_left fnv_int h s.raw)
      h t.streams
  in
  let h = fnv_int h (Array.length t.arrivals) in
  let h = Array.fold_left fnv_int h t.arrivals in
  Printf.sprintf "%016Lx" h

let draws t = Array.fold_left (fun acc s -> acc + Array.length s.raw) 0 t.streams

let info t =
  let b = Buffer.create 256 in
  Printf.bprintf b "benchmark   %s\n" t.benchmark;
  Printf.bprintf b "spec digest %s\n" t.spec_digest;
  Printf.bprintf b "seed        %d\n" t.seed;
  Printf.bprintf b "threads     %d\n" (Array.length t.streams);
  Array.iteri
    (fun i s -> Printf.bprintf b "  stream %-3d %d draws\n" i (Array.length s.raw))
    t.streams;
  Printf.bprintf b "arrivals    %d%s\n" (Array.length t.arrivals)
    (if Array.length t.arrivals = 0 then " (not latency-sensitive)" else "");
  Printf.bprintf b "digest      %s" (digest t);
  Buffer.contents b

(* --- Serialisation (format v1). ---

   magic "GCRTAPE1"
   varint  |benchmark| bytes, benchmark
   varint  |spec_digest| bytes, spec_digest
   zigzag  seed
   varint  stream count
   varint  arrival count, arrivals as varint deltas (nondecreasing)
   per stream:
     8B LE state0, 8B LE gamma
     varint raw length, raw words as fixed 8B LE
   8B LE FNV-1a checksum of every preceding byte *)

let put_varint = Wire.put_varint

let put_zigzag = Wire.put_zigzag

let put_int64_le = Wire.put_int64_le

let put_string = Wire.put_string

let to_string t =
  let b = Buffer.create (65536 + (8 * draws t)) in
  Buffer.add_string b magic;
  put_string b t.benchmark;
  put_string b t.spec_digest;
  put_zigzag b t.seed;
  put_varint b (Array.length t.streams);
  put_varint b (Array.length t.arrivals);
  let prev = ref 0 in
  Array.iter
    (fun a ->
      put_varint b (a - !prev);
      prev := a)
    t.arrivals;
  Array.iter
    (fun (s : stream) ->
      put_int64_le b s.state0;
      put_int64_le b s.gamma;
      put_varint b (Array.length s.raw);
      Array.iter (fun r -> put_int64_le b (Int64.of_int r)) s.raw)
    t.streams;
  let body = Buffer.contents b in
  put_int64_le b (fnv_string fnv_offset body);
  Buffer.contents b

(* --- Parsing.  Every read is bounds-checked (via the shared cursor);
   [Corrupt] never escapes. --- *)

let corrupt = Wire.corrupt

let get_varint = Wire.get_varint

let get_zigzag = Wire.get_zigzag

let get_int64_le = Wire.get_int64_le

let get_string = Wire.get_string

let max_threads = 65536

let of_string data =
  try
    let total = String.length data in
    if total < String.length magic + 8 then corrupt "file shorter than header + checksum";
    if String.sub data 0 (String.length magic) <> magic then
      corrupt "bad magic (not a GCRTAPE1 file)";
    let stored =
      let c = Wire.cursor ~pos:(total - 8) data in
      get_int64_le c "checksum"
    in
    let computed = fnv_substring fnv_offset data 0 (total - 8) in
    if stored <> computed then
      corrupt "checksum mismatch (stored %016Lx, computed %016Lx)" stored computed;
    let c = Wire.cursor ~pos:(String.length magic) ~limit:(total - 8) data in
    let benchmark = get_string c "benchmark" in
    let spec_digest = get_string c "spec digest" in
    let seed = get_zigzag c "seed" in
    let n_streams = get_varint c "stream count" in
    if n_streams < 0 || n_streams > max_threads then
      corrupt "implausible stream count %d" n_streams;
    let n_arrivals = get_varint c "arrival count" in
    let arrivals = Array.make n_arrivals 0 in
    let prev = ref 0 in
    for i = 0 to n_arrivals - 1 do
      prev := !prev + get_varint c "arrival delta";
      arrivals.(i) <- !prev
    done;
    let streams =
      Array.init n_streams (fun _ ->
          let state0 = get_int64_le c "stream state" in
          let gamma = get_int64_le c "stream gamma" in
          let len = get_varint c "stream length" in
          (* 8 bytes per word must fit in what remains: rejects lengths
             forged to force a huge allocation before the bounds trip. *)
          if len < 0 || len > (c.limit - c.pos) / 8 then
            corrupt "stream length %d exceeds file size" len;
          let raw =
            Array.init len (fun _ ->
                let v = get_int64_le c "raw word" in
                if Int64.shift_right_logical v 62 <> 0L then
                  corrupt "raw word %016Lx exceeds 62 bits" v;
                Int64.to_int v)
          in
          { state0; gamma; raw })
    in
    if c.pos <> c.limit then corrupt "%d trailing bytes after last stream" (c.limit - c.pos);
    Ok { benchmark; spec_digest; seed; streams; arrivals }
  with Wire.Corrupt msg -> Error msg

let write_file t ~path =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (to_string t);
  close_out oc;
  Sys.rename tmp path

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error (path ^ ": unexpected end of file")
  | data -> of_string data
