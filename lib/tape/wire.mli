(** The binary codec shared by the [GCRTAPE1] on-disk format and the
    campaign fabric's length-prefixed worker frames: LEB128 varints
    (62-bit, the OCaml int range), zigzag signed values, fixed 8-byte
    little-endian words, length-prefixed strings, and the FNV-1a-64
    checksum both layers seal their bytes with.

    Writers append to a [Buffer].  Readers go through a bounds-checked
    {!cursor}: malformed input raises {!Corrupt}, never an out-of-bounds
    access or an attacker-sized allocation. *)

(** {1 FNV-1a 64-bit} *)

val fnv_offset : int64
(** The standard offset basis — the seed of every checksum. *)

val fnv_byte : int64 -> int -> int64

val fnv_substring : int64 -> string -> int -> int -> int64

val fnv_string : int64 -> string -> int64

val fnv_int64 : int64 -> int64 -> int64

val fnv_int : int64 -> int -> int64

(** {1 Writers} *)

val put_varint : Buffer.t -> int -> unit
(** Nonnegative values only (negative ints would emit 10 bytes and then
    fail the reader's 62-bit overflow check). *)

val put_zigzag : Buffer.t -> int -> unit

val put_int64_le : Buffer.t -> int64 -> unit

val put_string : Buffer.t -> string -> unit

(** {1 Bounds-checked readers} *)

exception Corrupt of string

val corrupt : ('a, unit, string, 'b) format4 -> 'a
(** [corrupt fmt ...] raises {!Corrupt} with the formatted message. *)

type cursor = { data : string; mutable pos : int; limit : int }

val cursor : ?pos:int -> ?limit:int -> string -> cursor
(** A cursor over [data.[pos..limit)]; [limit] defaults to the string
    length. *)

val need : cursor -> int -> string -> unit
(** [need c n what] raises [Corrupt ("truncated " ^ what)] unless [n]
    bytes remain. *)

val get_byte : cursor -> string -> int

val get_varint : cursor -> string -> int

val get_zigzag : cursor -> string -> int

val get_int64_le : cursor -> string -> int64

val get_string : cursor -> string -> string
