(* The binary codec shared by the tape format and the campaign fabric's
   worker protocol: LEB128 varints (62-bit, OCaml int range), zigzag for
   signed values, fixed 8-byte little-endian words, and length-prefixed
   strings.  Writers append to a [Buffer]; readers go through a
   bounds-checked cursor that raises [Corrupt] (never an out-of-bounds
   access) on truncated or forged input. *)

(* --- FNV-1a 64-bit: checksums for tapes and fabric frames. --- *)

let fnv_offset = 0xcbf29ce484222325L

let fnv_prime = 0x100000001b3L

let fnv_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let fnv_substring h s pos len =
  let h = ref h in
  for i = pos to pos + len - 1 do
    h := fnv_byte !h (Char.code (String.unsafe_get s i))
  done;
  !h

let fnv_string h s = fnv_substring h s 0 (String.length s)

let fnv_int64 h x =
  let h = ref h in
  for i = 0 to 7 do
    h := fnv_byte !h (Int64.to_int (Int64.shift_right_logical x (8 * i)))
  done;
  !h

let fnv_int h x = fnv_int64 h (Int64.of_int x)

(* --- Writers. --- *)

let put_varint b n =
  let n = ref n in
  while !n >= 0x80 do
    Buffer.add_char b (Char.chr (0x80 lor (!n land 0x7f)));
    n := !n lsr 7
  done;
  Buffer.add_char b (Char.chr !n)

let put_zigzag b n = put_varint b (if n >= 0 then n lsl 1 else (lnot n lsl 1) lor 1)

let put_int64_le b x =
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.shift_right_logical x (8 * i)) land 0xff))
  done

let put_string b s =
  put_varint b (String.length s);
  Buffer.add_string b s

(* --- Bounds-checked cursor readers. --- *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

type cursor = { data : string; mutable pos : int; limit : int }

let cursor ?(pos = 0) ?limit data =
  let limit = match limit with Some l -> l | None -> String.length data in
  { data; pos; limit }

let need c n what = if c.pos + n > c.limit then corrupt "truncated %s" what

let get_byte c what =
  need c 1 what;
  let b = Char.code (String.unsafe_get c.data c.pos) in
  c.pos <- c.pos + 1;
  b

let get_varint c what =
  let rec loop shift acc =
    if shift > 62 then corrupt "varint overflow in %s" what;
    let b = get_byte c what in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else loop (shift + 7) acc
  in
  loop 0 0

let get_zigzag c what =
  let n = get_varint c what in
  if n land 1 = 0 then n lsr 1 else lnot (n lsr 1)

let get_int64_le c what =
  need c 8 what;
  let v = ref 0L in
  for i = 7 downto 0 do
    v :=
      Int64.logor
        (Int64.shift_left !v 8)
        (Int64.of_int (Char.code (String.unsafe_get c.data (c.pos + i))))
  done;
  c.pos <- c.pos + 8;
  !v

let get_string c what =
  let len = get_varint c what in
  need c len what;
  let s = String.sub c.data c.pos len in
  c.pos <- c.pos + len;
  s
