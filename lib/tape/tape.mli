(** Workload tapes: the campaign-invariant decision stream of one run.

    The LBO methodology fixes the workload and sweeps it across every
    (collector × heap size) cell, so the mutator's random decision stream
    is data shared by the whole cell group — it depends only on
    (spec, seed, thread count), never on the collector under test.  A tape
    captures that stream once so sibling cells can replay it instead of
    re-deriving it from the PRNG.

    What is recorded is the {e raw} per-thread SplitMix64 output (one
    62-bit word per draw), not interpreted decisions.  The distinction
    matters: the {e interpretation sequence} is collector-dependent — an
    allocation that hits [Out_of_regions] re-draws its size after the GC
    frees space, so cells consume different prefixes of the stream — but
    the stream itself is a pure function of the seed.  Each cell consumes
    the shared stream sequentially and interprets each word at its own
    call sites, which is exactly what the live PRNG does; bit-identity
    follows by induction on draws.

    Because SplitMix64 is counter-based, a stream also carries its start
    state: a cell that consumes more draws than the tape holds (deep
    retry storms) falls over to a live generator jumped to
    [state0 + length·gamma] — the exact continuation of the recorded
    stream — so correctness never depends on the tape being long enough. *)

type stream = {
  state0 : int64;  (** PRNG state when the stream started *)
  gamma : int64;  (** the stream's SplitMix64 increment *)
  raw : int array;  (** 62-bit draws: [bits64 lsr 2], one per decision *)
}

type t = {
  benchmark : string;
  spec_digest : string;
      (** digest of the full spec rendering; replay refuses a tape whose
          spec does not match the run's *)
  seed : int;
  streams : stream array;  (** one per mutator thread, in thread order *)
  arrivals : int array;
      (** latency request arrival schedule (cycles, nondecreasing); empty
          for throughput-only benchmarks *)
}

val digest : t -> string
(** Content hash (16 hex chars) over every field; folded into the
    scheduler's cache key so cached results are keyed by the decisions
    actually replayed. *)

val draws : t -> int
(** Total recorded draws across all streams. *)

val info : t -> string
(** Human-readable multi-line summary (benchmark, seed, threads, draws,
    arrivals, digest). *)

val write_file : t -> path:string -> unit
(** Serialise to the versioned binary format (magic ["GCRTAPE1"],
    varint-packed header, fixed 8-byte little-endian raw words,
    delta-varint arrivals, trailing FNV-1a 64 checksum).  Writes are
    atomic (temp file + rename). *)

val read_file : string -> (t, string) result
(** Parse and fully validate a tape file: magic, checksum over every
    preceding byte, structural bounds.  Any truncation or corruption is an
    [Error] with a reason — never a partial tape.  Depends only on the
    OCaml stdlib. *)

val to_string : t -> string
(** The exact bytes {!write_file} writes (tests round-trip through it). *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}; same validation as {!read_file}. *)
