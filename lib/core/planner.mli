(** The pure half of the campaign harness: grid → ordered cell specs.

    A plan is a deterministic function of its inputs — no side effects,
    no clocks, no environment.  It enumerates the full benchmark ×
    collector × heap-factor × invocation grid in the canonical
    submission order (invocation-major, then benchmark, then collector,
    then factor — the interleaving of §IV-A d), assigns each cell a
    dense result-slot [index], and keys each cell by its
    {!Gcr_sched.Cache_key} digest, so any executor — the serial loop,
    the domain pool, the multi-process fabric — that fills slots by
    index reproduces the identical campaign.

    Cells are grouped by (invocation, benchmark): the cells of one group
    share a (spec, seed) pair and therefore one workload decision
    stream, which is the unit of tape generation and of fabric
    placement. *)

type cell = {
  index : int;  (** dense result slot in submission order *)
  invocation : int;
  bench : string;
  gc : Gcr_gcs.Registry.kind;
  factor : float;  (** heap factor; 0.0 for Epsilon *)
  controller : Gcr_policy.Controller.spec;
      (** heap-sizing controller; always [Fixed] for Epsilon *)
  config : Gcr_runtime.Run.config;  (** carries [Tape_off]; executors attach tapes *)
  key : string;  (** {!Gcr_sched.Cache_key.of_config} digest *)
}

type group = {
  invocation : int;
  spec : Gcr_workloads.Spec.t;
  seed : int;
  cells : cell list;  (** in submission order; share (spec, seed) *)
}

type t

val groups : t -> group list
(** In submission order; concatenated cell indexes are 0, 1, 2, …. *)

val n_cells : t -> int

val cells : t -> cell list
(** All cells of all groups, flattened in submission order. *)

val heap_words : region_words:int -> minheap:int -> factor:float -> int
(** [factor × minheap] rounded up to whole regions — the heap-sizing
    rule every executor and report shares. *)

val seed_of : base_seed:int -> invocation:int -> int
(** The per-invocation seed schedule ([base_seed + 1000 × (i + 1)]). *)

val cell_cost : cell -> float
(** Unitless runtime estimate for the size-aware fabric scheduler:
    workload volume (threads × packets) weighted by heap tightness
    ([1 + 2/factor]; Epsilon, which never collects, weighs 1).  Only
    relative order across groups matters. *)

val group_cost : group -> float
(** Sum of {!cell_cost} over the group's cells — the scheduler's key. *)

val probe_cost : Gcr_workloads.Spec.t -> float
(** Cost estimate for one minheap probe cell of [spec] (a bare workload
    run), so probe waves ride the same size-aware scheduling. *)

val digest : t -> string
(** Digest over every cell key plus the cell count — the plan identity a
    socket worker pins in its handshake.  Two builds that disagree on any
    planned config (or on the cache-key format itself) get different
    digests. *)

val plan :
  ?controllers:Gcr_policy.Controller.spec list ->
  invocations:int ->
  base_seed:int ->
  machine:Gcr_mach.Machine.t ->
  cost:Gcr_mach.Cost_model.t ->
  region_words:int ->
  heap_factors:float list ->
  minheap:(bench:string -> int) ->
  specs:Gcr_workloads.Spec.t list ->
  gcs:Gcr_gcs.Registry.kind list ->
  unit ->
  t
(** [specs] must already be scaled; [machine] already memory-scaled;
    [minheap] is consulted once per (benchmark, factor) cell.  Epsilon
    is included implicitly (heap = machine memory, factor 0.0) even when
    absent from [gcs], leading each benchmark's cell block.
    [controllers] (default [[Fixed]], in which case the grid is exactly
    the historical one) multiplies each non-Epsilon (gc, factor) pair —
    the innermost axis; Epsilon always runs a single [Fixed] cell. *)
