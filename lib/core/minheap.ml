module Machine = Gcr_mach.Machine
module Cost_model = Gcr_mach.Cost_model
module Registry = Gcr_gcs.Registry
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement
module Pool = Gcr_sched.Pool
module Result_cache = Gcr_sched.Result_cache

type config = {
  machine : Machine.t;
  cost : Cost_model.t;
  region_words : int;
  seed : int;
  gc : Registry.kind;
  tapes : bool;
}

let tapes_enabled () =
  match Sys.getenv_opt "GCR_TAPES" with Some ("0" | "false" | "off") -> false | _ -> true

let default_config () =
  {
    machine = Machine.default;
    cost = Cost_model.default;
    region_words = Run.default_region_words;
    seed = 7;
    gc = Registry.G1;
    tapes = tapes_enabled ();
  }

(* Key the caches on everything that can change the answer, including a
   fingerprint of the cost model (minimum heaps move when costs do). *)
let cost_fingerprint (c : Cost_model.t) = Hashtbl.hash c land 0xFFFFFF

let cache_key config (spec : Spec.t) =
  Printf.sprintf "%s|packets=%d|threads=%d|gc=%s|seed=%d|region=%d|cpus=%d|cost=%x"
    spec.Spec.name spec.Spec.packets_per_thread spec.Spec.mutator_threads
    (Registry.name config.gc) config.seed config.region_words
    config.machine.Machine.cpus (cost_fingerprint config.cost)

let memo : (string, int) Hashtbl.t = Hashtbl.create 32

let clear_memo () = Hashtbl.reset memo

let cache_path () =
  match Sys.getenv_opt "GCR_CACHE_DIR" with
  | Some dir -> Some (Filename.concat dir "minheap.tsv")
  | None ->
      let dir = Filename.concat (Sys.getcwd ()) ".gcr-cache" in
      let usable =
        (Sys.file_exists dir && Sys.is_directory dir)
        || (try Sys.mkdir dir 0o755; true with Sys_error _ -> false)
      in
      if usable then Some (Filename.concat dir "minheap.tsv") else None

let load_file_cache () =
  match cache_path () with
  | None -> ()
  | Some path when not (Sys.file_exists path) -> ()
  | Some path -> (
      try
        let ic = open_in path in
        (try
           while true do
             let line = input_line ic in
             match String.split_on_char '\t' line with
             | [ key; words ] -> (
                 match int_of_string_opt words with
                 | Some w -> Hashtbl.replace memo key w
                 | None -> ())
             | _ -> ()
           done
         with End_of_file -> ());
        close_in ic
      with Sys_error _ -> ())

let append_file_cache key words =
  match cache_path () with
  | None -> ()
  | Some path -> (
      try
        let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
        Printf.fprintf oc "%s\t%d\n" key words;
        close_out oc
      with Sys_error _ -> ())

let file_cache_loaded = ref false

(* Probes share the campaign result cache (when GCR_CACHE_DIR is set), so
   a repeated search replays every probe from disk even in a fresh
   process, on top of the minheap.tsv memo of final answers. *)
let result_cache = lazy (Result_cache.of_env ())

(* Likewise the search tape: published to (and fetched from) the same
   content-addressed store the campaign fabric uses, so a campaign and
   its minheap searches generate each (spec, seed) tape exactly once
   across all processes. *)
let tape_store = lazy (Gcr_sched.Artifact_store.of_env ())

let tape_image ~spec ~seed =
  let started = Unix.gettimeofday () in
  let image =
    match Lazy.force tape_store with
    | None -> Gcr_workloads.Tape_gen.image ~spec ~seed
    | Some store -> (
        match Gcr_sched.Artifact_store.find_tape store ~spec ~seed with
        | Some tape -> Gcr_workloads.Decision_source.image_of_tape ~spec tape
        | None ->
            let tape = Gcr_workloads.Tape_gen.generate ~spec ~seed in
            Gcr_sched.Artifact_store.store_tape store tape;
            Gcr_workloads.Decision_source.image_of_tape ~spec tape)
  in
  Gcr_runtime.Profile.add_tape_s (Unix.gettimeofday () -. started);
  image

let probe_run_config config (spec : Spec.t) ~tape heap_words =
  {
    Run.spec;
    gc = config.gc;
    heap_words;
    machine = config.machine;
    cost = config.cost;
    seed = config.seed;
    region_words = config.region_words;
    max_events =
      (* probes must fail fast when the heap is too small to be useful *)
      Some ((12 * spec.Spec.mutator_threads * spec.Spec.packets_per_thread) + 2_000_000);
    make_collector = None;
    tape;
    (* probes define the static minimum: controllers never move the
       limit during a minheap search *)
    controller = Gcr_policy.Controller.fixed;
  }

let completes config spec ?state ~tape heap_words =
  Measurement.completed
    (Pool.execute
       ?cache:(Lazy.force result_cache)
       ?state
       (probe_run_config config spec ~tape heap_words))

(* The search as an explicit state machine, so an external driver — the
   fabric's probe waves — can run many searches concurrently, one probe
   per step, while the inline driver below walks the identical sequence:
   exponential doubling from the floor to a completing upper bound, then
   bisection down to one region.  The probe order is a pure function of
   the completion answers, so any driver lands on the same minimum. *)
module Search = struct
  type phase = Upper of int | Bisect of int * int | Finished of int

  type t = {
    s_config : config;
    s_spec : Spec.t;
    floor_regions : int;
    memory_regions : int;
    mutable phase : phase;
  }

  let start config (spec : Spec.t) =
    let region = config.region_words in
    {
      s_config = config;
      s_spec = spec;
      floor_regions = max 8 (Spec.live_words_estimate spec / region);
      memory_regions = config.machine.Machine.memory_words / region;
      phase = Upper (max 8 (Spec.live_words_estimate spec / region));
    }

  (* The next heap size to probe, in regions; [None] when finished.
     Raises [Failure] when doubling escapes machine memory — the
     benchmark cannot complete at all. *)
  let probe_regions t =
    match t.phase with
    | Finished _ -> None
    | Upper n ->
        if n > t.memory_regions then
          failwith
            (Printf.sprintf "Minheap.find: %s does not complete even in machine memory"
               t.s_spec.Spec.name)
        else Some n
    | Bisect (lo, hi) -> Some ((lo + hi) / 2)

  let advance t ~completed =
    match t.phase with
    | Finished _ -> invalid_arg "Minheap.Search.advance: search already finished"
    | Upper n ->
        if completed then begin
          (* invariant entering bisection: hi completes, lo does not
             (or is 0 — the floor itself completed on the first probe) *)
          let known_failing = if n > t.floor_regions then n / 2 else 0 in
          if n - known_failing <= 1 then t.phase <- Finished n
          else t.phase <- Bisect (known_failing, n)
        end
        else t.phase <- Upper (n * 2)
    | Bisect (lo, hi) ->
        let mid = (lo + hi) / 2 in
        let lo, hi = if completed then (lo, mid) else (mid, hi) in
        if hi - lo <= 1 then t.phase <- Finished hi else t.phase <- Bisect (lo, hi)

  let result_words t =
    match t.phase with
    | Finished hi -> Some (hi * t.s_config.region_words)
    | Upper _ | Bisect _ -> None

  let probe_config t =
    match probe_regions t with
    | None -> None
    | Some n ->
        Some (probe_run_config t.s_config t.s_spec ~tape:Run.Tape_off
                (n * t.s_config.region_words))
end

let search config spec =
  (* Every probe shares (spec, seed): one tape image serves the whole
     search.  Thrashing probes overrun the recorded stream with retry
     re-draws; the cursor's PRNG fallback keeps them bit-identical. *)
  let tape =
    if config.tapes then Run.Tape_replay (tape_image ~spec ~seed:config.seed)
    else Run.Tape_off
  in
  (* One warm run-state serves every probe of the search: the bisection
     is a long chain of same-spec runs, exactly the reuse the warm path
     exists for. *)
  let state = if Run.warm_enabled () then Some (Run.new_state ()) else None in
  let s = Search.start config spec in
  let rec loop () =
    match Search.probe_regions s with
    | None -> (
        match Search.result_words s with
        | Some words -> words
        | None -> assert false)
    | Some n ->
        let completed = completes config spec ?state ~tape (n * config.region_words) in
        Search.advance s ~completed;
        loop ()
  in
  loop ()

let ensure_file_cache () =
  if not !file_cache_loaded then begin
    file_cache_loaded := true;
    load_file_cache ()
  end

let find_cached config spec =
  ensure_file_cache ();
  Hashtbl.find_opt memo (cache_key config spec)

let record config spec words =
  ensure_file_cache ();
  let key = cache_key config spec in
  if not (Hashtbl.mem memo key) then begin
    Hashtbl.replace memo key words;
    append_file_cache key words
  end

let find ?config spec =
  let config = match config with Some c -> c | None -> default_config () in
  match find_cached config spec with
  | Some words -> words
  | None ->
      let words = search config spec in
      record config spec words;
      words
