module Registry = Gcr_gcs.Registry
module Stw_gen = Gcr_gcs.Stw_gen
module Shenandoah = Gcr_gcs.Shenandoah
module Gc_types = Gcr_gcs.Gc_types
module Cost_model = Gcr_mach.Cost_model
module Machine = Gcr_mach.Machine
module Spec = Gcr_workloads.Spec
module Suite = Gcr_workloads.Suite
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement
module Tablefmt = Gcr_util.Tablefmt
module Units = Gcr_util.Units

type config = {
  spec : Spec.t;
  heap_factor : float;
  seed : int;
  scale : float;
}

let default_config ?(bench = "h2") () =
  { spec = Suite.find_exn bench; heap_factor = 3.0; seed = 11; scale = 0.3 }

let prepare config =
  let spec = Spec.scale config.spec config.scale in
  let minheap = Minheap.find spec in
  let heap_words = int_of_float (config.heap_factor *. float_of_int minheap) in
  (spec, heap_words)

let execute ?make_collector ?(cost = Cost_model.default) ~gc config =
  let spec, heap_words = prepare config in
  Run.execute
    {
      (Run.default_config ~spec ~gc ~heap_words ~seed:config.seed) with
      Run.cost;
      make_collector;
    }

let row_of_measurement (m : Measurement.t) =
  match m.Measurement.outcome with
  | Measurement.Failed _ -> List.init 4 (fun _ -> Tablefmt.Missing)
  | Measurement.Completed ->
      [
        Tablefmt.Num (Units.ms_of_cycles m.Measurement.wall_total, 2);
        Tablefmt.Num (Units.ms_of_cycles m.Measurement.wall_stw, 3);
        Tablefmt.Num (float_of_int m.Measurement.cycles_gc /. 1e6, 1);
        Tablefmt.Num (float_of_int (Measurement.pause_count m), 0);
      ]

let measurement_columns = [ "wall ms"; "STW ms"; "GC Mcycles"; "pauses" ]

let gc_workers config =
  let cpus = Machine.default.Machine.cpus in
  let table =
    Tablefmt.create
      ~title:
        (Printf.sprintf
           "ABLATION gc-workers -- %s at %.1fx: STW worker count trades pause time for \
            cycles (dispatch, termination, imbalance)"
           config.spec.Spec.name config.heap_factor)
      ~columns:measurement_columns
  in
  List.iter
    (fun workers ->
      let make ctx =
        Stw_gen.make ctx { Stw_gen.name = "Parallel"; stw_workers = workers; tenure_age = 2 }
      in
      let m = execute ~make_collector:make ~gc:Registry.Parallel config in
      Tablefmt.add_row table ~label:(Printf.sprintf "%2d workers" workers)
        (row_of_measurement m))
    (List.filter (fun w -> w <= cpus) [ 1; 2; 4; 8; 13; 16 ]);
  Tablefmt.print table

let tenure_age config =
  let table =
    Tablefmt.create
      ~title:
        (Printf.sprintf
           "ABLATION tenure-age -- %s at %.1fx: tenure too early fills old space, too \
            late re-copies survivors"
           config.spec.Spec.name config.heap_factor)
      ~columns:("copied Kwords" :: "full GCs" :: measurement_columns)
  in
  List.iter
    (fun age ->
      let make ctx =
        Stw_gen.make ctx { Stw_gen.name = "Serial"; stw_workers = 1; tenure_age = age }
      in
      let m = execute ~make_collector:make ~gc:Registry.Serial config in
      let stats = m.Measurement.gc_stats in
      Tablefmt.add_row table ~label:(Printf.sprintf "age %2d" age)
        (Tablefmt.Num (float_of_int stats.Gc_types.words_copied /. 1e3, 1)
         :: Tablefmt.Num (float_of_int stats.Gc_types.full_collections, 0)
         :: row_of_measurement m))
    [ 0; 1; 2; 4; 8; 15 ];
  Tablefmt.print table

let shenandoah_trigger config =
  let cpus = Machine.default.Machine.cpus in
  let table =
    Tablefmt.create
      ~title:
        (Printf.sprintf
           "ABLATION shenandoah-trigger -- %s at %.1fx: late triggers save concurrent \
            CPU but risk degeneration and pacing"
           config.spec.Spec.name config.heap_factor)
      ~columns:("stalls" :: "degen+full" :: measurement_columns)
  in
  List.iter
    (fun trigger ->
      let make ctx =
        Shenandoah.make ctx
          { (Shenandoah.default_config ~cpus) with Shenandoah.trigger_free_fraction = trigger }
      in
      let m = execute ~make_collector:make ~gc:Registry.Shenandoah config in
      let stats = m.Measurement.gc_stats in
      Tablefmt.add_row table
        ~label:(Printf.sprintf "free < %.0f%%" (trigger *. 100.0))
        (Tablefmt.Num (float_of_int stats.Gc_types.stalls, 0)
         :: Tablefmt.Num (float_of_int stats.Gc_types.full_collections, 0)
         :: row_of_measurement m))
    [ 0.15; 0.25; 0.40; 0.55; 0.70 ];
  Tablefmt.print table

let concurrent_mark_penalty config =
  let table =
    Tablefmt.create
      ~title:
        (Printf.sprintf
           "ABLATION concurrent-mark-penalty -- %s at %.1fx: sensitivity of Shenandoah's \
            cost to the concurrent-marking calibration constant"
           config.spec.Spec.name config.heap_factor)
      ~columns:measurement_columns
  in
  List.iter
    (fun pct ->
      let cost = { Cost_model.default with Cost_model.concurrent_mark_penalty_pct = pct } in
      let m = execute ~cost ~gc:Registry.Shenandoah config in
      Tablefmt.add_row table ~label:(Printf.sprintf "+%3d%%" pct) (row_of_measurement m))
    [ 0; 50; 100; 200 ];
  Tablefmt.print table

let all config =
  gc_workers config;
  tenure_age config;
  shenandoah_trigger config;
  concurrent_mark_penalty config
