module Registry = Gcr_gcs.Registry
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement
module Stats = Gcr_util.Stats
module Tablefmt = Gcr_util.Tablefmt

type tightness_row = {
  benchmark : string;
  collector : string;
  lbo : float;
  true_overhead : float;
}

(* Ground truth: mean ideal cost over the campaign's seeds.  [None] when
   even the ideal cannot run within machine memory (e.g. xalan, whose
   total allocation exceeds it — exactly the benchmarks where the paper
   could not use Epsilon either). *)
let ideal_costs campaign metric spec =
  let config = Harness.config_of campaign in
  let seeds =
    List.init config.Harness.invocations (fun i ->
        config.Harness.base_seed + (1000 * (i + 1)))
  in
  let totals =
    List.map
      (fun seed ->
        let m = Run.execute_ideal ~spec ~machine:config.Harness.machine ~seed in
        if Measurement.completed m then Some (Metrics.total metric m) else None)
      seeds
  in
  if List.exists Option.is_none totals then None
  else Some (Stats.mean (Array.of_list (List.filter_map Fun.id totals)))

let tightness_rows campaign ~metric ~factor =
  let gcs =
    List.filter (fun g -> g <> Registry.Epsilon) (Harness.gcs campaign)
  in
  List.concat_map
    (fun spec ->
      let bench = spec.Spec.name in
      match ideal_costs campaign metric spec with
      | None ->
          (* ground truth itself cannot run in machine memory *)
          []
      | Some ideal_true ->
          List.filter_map
            (fun gc ->
              match
                ( Harness.lbo_value campaign metric ~bench ~gc ~factor,
                  Lbo.observation metric (Harness.runs campaign ~bench ~gc ~factor) )
              with
              | Some lbo, Some o ->
                  Some
                    {
                      benchmark = bench;
                      collector = Registry.name gc;
                      lbo;
                      true_overhead = o.Lbo.total /. ideal_true;
                    }
              | _, _ -> None)
            gcs)
    (Harness.benchmarks campaign)

let tightness_study campaign ~factor =
  List.iter
    (fun metric ->
      let rows = tightness_rows campaign ~metric ~factor in
      let table =
        Tablefmt.create
          ~title:
            (Printf.sprintf
               "VALIDATION -- LBO vs ground-truth overhead (%s, %.1fx heap): LBO must \
                not exceed the true overhead"
               (Metrics.name metric) factor)
          ~columns:[ "LBO"; "True overhead"; "Tightness %"; "Bound holds" ]
      in
      List.iter
        (fun r ->
          Tablefmt.add_row table
            ~label:(r.benchmark ^ "/" ^ r.collector)
            [
              Tablefmt.Num (r.lbo, 3);
              Tablefmt.Num (r.true_overhead, 3);
              Tablefmt.Num (100.0 *. (r.lbo -. 1.0) /. Float.max 1e-9 (r.true_overhead -. 1.0), 1);
              Tablefmt.Text (if r.lbo <= r.true_overhead +. 1e-9 then "yes" else "VIOLATED");
            ])
        rows;
      Tablefmt.print table)
    [ Metrics.Wall_time; Metrics.Cpu_cycles ]

(* Cycle observation with the naive attribution: only cycles inside pause
   windows count as GC. *)
let naive_observation runs =
  match runs with
  | [] -> None
  | runs when not (List.for_all Measurement.completed runs) -> None
  | runs ->
      let n = float_of_int (List.length runs) in
      let sum f = List.fold_left (fun acc m -> acc +. f m) 0.0 runs in
      Some
        {
          Lbo.collector = (List.hd runs).Measurement.gc;
          total = sum (fun m -> float_of_int (Measurement.cycles_total m)) /. n;
          apparent_gc =
            sum (fun m -> float_of_int (Measurement.cycles_gc_pause_window m)) /. n;
        }

let attribution_ablation campaign ?(bench = "h2") ?(factor = 3.0) () =
  (* The LBO of a collector depends only on the ideal estimate (the
     minimum "other" cost over the collector set).  With stop-the-world
     collectors in the set, both attributions coincide on the minimum, so
     — as §III-C warns — the effect of sloppy attribution shows when the
     estimate must come from concurrent collectors alone.  We therefore
     estimate the ideal from {Shenandoah, ZGC} only. *)
  let conc = [ Registry.Shenandoah; Registry.Zgc ] in
  let conc = List.filter (fun g -> List.mem g (Harness.gcs campaign)) conc in
  let runs gc = Harness.runs campaign ~bench ~gc ~factor in
  let refined = List.filter_map (fun gc -> Lbo.observation Metrics.Cpu_cycles (runs gc)) conc in
  let naive = List.filter_map (fun gc -> naive_observation (runs gc)) conc in
  if refined = [] || naive = [] then
    print_endline "attribution ablation: no completed concurrent collectors"
  else begin
    let ideal_refined = Lbo.ideal_estimate refined in
    let ideal_naive = Lbo.ideal_estimate naive in
    let table =
      Tablefmt.create
        ~title:
          (Printf.sprintf
             "ABLATION -- apparent-GC-cost attribution on %s at %.1fx, with only the \
              concurrent collectors in the set (cycle LBO): counting just pause-window \
              cycles as GC grossly loosens the bound; per-GC-thread attribution \
              (paper Section III-C) tightens it"
             bench factor)
        ~columns:[ "LBO (pause-window)"; "LBO (per-GC-thread)" ]
    in
    List.iter2
      (fun (n : Lbo.observation) (r : Lbo.observation) ->
        Tablefmt.add_row table ~label:r.Lbo.collector
          [
            Tablefmt.Num (Lbo.lbo ~ideal:ideal_naive ~total:n.Lbo.total, 3);
            Tablefmt.Num (Lbo.lbo ~ideal:ideal_refined ~total:r.Lbo.total, 3);
          ])
      naive refined;
    Tablefmt.print table
  end

let genshen_study ?(benches = [ "lusearch"; "xalan"; "h2" ]) ?(factor = 3.0) ?(scale = 0.5)
    ?(seed = 11) () =
  let module Suite = Gcr_workloads.Suite in
  let module Units = Gcr_util.Units in
  let table =
    Tablefmt.create
      ~title:
        (Printf.sprintf
           "EXTENSION -- generational Shenandoah (JEP 404, the paper's flagged future \
            work) vs the paper's Shenandoah at %.1fx heap: young scavenges spare the \
            concurrent pipeline from re-copying the whole live set"
           factor)
      ~columns:[ "wall ms"; "GC Mcycles"; "stalls"; "pauses"; "full GCs" ]
  in
  List.iter
    (fun bench ->
      let spec = Spec.scale (Suite.find_exn bench) scale in
      let minheap = Minheap.find spec in
      let heap_words = int_of_float (factor *. float_of_int minheap) in
      List.iter
        (fun gc ->
          let m = Run.execute (Run.default_config ~spec ~gc ~heap_words ~seed) in
          let label = Printf.sprintf "%s/%s" bench (Registry.name gc) in
          if Measurement.completed m then
            Tablefmt.add_row table ~label
              [
                Tablefmt.Num (Units.ms_of_cycles m.Measurement.wall_total, 2);
                Tablefmt.Num (float_of_int m.Measurement.cycles_gc /. 1e6, 1);
                Tablefmt.Num (float_of_int m.Measurement.gc_stats.Gcr_gcs.Gc_types.stalls, 0);
                Tablefmt.Num (float_of_int (Measurement.pause_count m), 0);
                Tablefmt.Num
                  (float_of_int m.Measurement.gc_stats.Gcr_gcs.Gc_types.full_collections, 0);
              ]
          else
            Tablefmt.add_row table ~label
              (Tablefmt.Text "failed" :: List.init 4 (fun _ -> Tablefmt.Missing)))
        [ Registry.Shenandoah; Registry.Shenandoah_gen ])
    benches;
  Tablefmt.print table
