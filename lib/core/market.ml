(* The multi-tenant memory market: N simulated runtimes share one
   machine-wide memory budget under a diurnal request wave.

   Each tenant is a full [Run.session] (its own engine, heap, collector,
   and workload) advanced in lockstep epochs by [Engine.run_until].  A
   broker owns the budget: every epoch it asks each tenant's sizing
   controller for a demand, scales the demands to fit the budget, and
   applies the resulting limits with [Heap.set_capacity].  The tenants'
   own in-run controllers are disabled (configs carry [Fixed]) — sizing
   authority lives in one place, the broker.

   Under [Fixed] the market degrades to a static even split of the
   budget: the broker never moves a limit, which is the baseline the
   adaptive controllers are judged against. *)

module Machine = Gcr_mach.Machine
module Units = Gcr_util.Units
module Histogram = Gcr_util.Histogram
module Prng = Gcr_util.Prng
module Obs = Gcr_obs.Obs
module Event = Gcr_obs.Event
module Heap = Gcr_heap.Heap
module Engine = Gcr_engine.Engine
module Registry = Gcr_gcs.Registry
module Spec = Gcr_workloads.Spec
module Suite = Gcr_workloads.Suite
module Latency = Gcr_workloads.Latency
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement
module Controller = Gcr_policy.Controller

type tenant_summary = {
  tenant : int;
  bench : string;
  completed : bool;
  requests : int;
  deadline_misses : int;
  metered_mean_ms : float;
  metered_p99_ms : float;
  limit_changes : int;
  peak_words : int;
  mean_footprint_words : float;
}

type report = {
  gc : string;
  controller : string;
  tenants : int;
  budget_words : int;
  deadline_ms : float;
  per_tenant : tenant_summary list;
  total_requests : int;
  total_deadline_misses : int;
  agg_metered_mean_ms : float;
  agg_metered_p99_ms : float;
  total_limit_changes : int;
  peak_total_words : int;
  wall_cycles : int;
}

let default_epoch_cycles = 250_000

let default_deadline_ms = 10.0

(* Diurnal wave as a monotone time-warp of the Poisson schedule:
   t ↦ t + A·sin(2πt/period + phase).  With A = period/4π the derivative
   stays ≥ 1/2, so order (and count) are preserved while arrivals bunch
   into rush hours and stretch into lulls.  Three full waves per run;
   each tenant gets a phase shift, so peaks land at different times —
   the whole point of brokering one budget. *)
let diurnal_warp ~phase arrivals =
  let n = Array.length arrivals in
  if n = 0 then arrivals
  else begin
    let span = float_of_int (max 1 arrivals.(n - 1)) in
    let period = span /. 3.0 in
    let amp = period /. (4.0 *. Float.pi) in
    let two_pi = 2.0 *. Float.pi in
    let warped =
      Array.map
        (fun t ->
          let ft = float_of_int t in
          let t' = ft +. (amp *. sin ((two_pi *. ft /. period) +. phase)) in
          max 0 (int_of_float t'))
        arrivals
    in
    (* int rounding can nick the monotone warp by one cycle; repair to
       nondecreasing, which the tape format and Latency require *)
    for i = 1 to n - 1 do
      if warped.(i) < warped.(i - 1) then warped.(i) <- warped.(i - 1)
    done;
    warped
  end

let round_regions ~region_words w = max (2 * region_words) (w / region_words * region_words)

let run ?(bench = "lusearch") ?(epoch_cycles = default_epoch_cycles)
    ?(deadline_ms = default_deadline_ms) ?(log = fun (_ : string) -> ())
    ?(on_tenant_engine = fun (_ : int) (_ : Engine.t) -> ()) ~tenants ~gc ~controller
    ~budget_factor ~scale ~seed () =
  if tenants < 1 then invalid_arg "Market.run: need at least one tenant";
  if gc = Registry.Epsilon then
    invalid_arg "Market.run: Epsilon never collects, so there is no market to broker";
  let base_spec =
    match Suite.find bench with
    | Some s when s.Spec.latency <> None -> Spec.scale s scale
    | Some _ ->
        invalid_arg
          (Printf.sprintf "Market.run: %S is not latency-sensitive; pick one of: %s" bench
             (String.concat ", "
                (List.map (fun s -> s.Spec.name) Suite.latency_sensitive)))
    | None -> invalid_arg (Printf.sprintf "Market.run: unknown benchmark %S" bench)
  in
  let region_words = Run.default_region_words in
  (* Per-tenant baseline from the spec's live-set estimate: cheap and
     deterministic where a full minheap search would dwarf the scenario
     itself.  The budget is what the market divides; the baseline only
     anchors its magnitude. *)
  let per_tenant_base =
    round_regions ~region_words
      (max (16 * region_words) (3 * Spec.live_words_estimate base_spec))
  in
  let budget_words =
    round_regions ~region_words
      (int_of_float (budget_factor *. float_of_int (tenants * per_tenant_base)))
  in
  let initial_words = round_regions ~region_words (budget_words / tenants) in
  let deadline_cycles = Units.cycles_of_us (1000.0 *. deadline_ms) in
  log
    (Printf.sprintf
       "market: %d × %s under %s/%s, budget %d words (%d/tenant), deadline %.1fms"
       tenants base_spec.Spec.name (Registry.name gc) (Controller.name controller)
       budget_words initial_words deadline_ms);
  let misses = Array.make tenants 0 in
  let requests = Array.make tenants 0 in
  let sessions =
    Array.init tenants (fun i ->
        let tenant_seed = seed + (37 * i) in
        let config =
          {
            (Run.default_config ~spec:base_spec ~gc ~heap_words:initial_words
               ~seed:tenant_seed)
            with
            (* broker holds the sizing authority; in-run controllers stay off *)
            Run.controller = Controller.fixed;
          }
        in
        let phase = 2.0 *. Float.pi *. float_of_int i /. float_of_int tenants in
        let arrivals =
          diurnal_warp ~phase
            (Latency.arrival_schedule ~spec:base_spec
               ~threads:base_spec.Spec.mutator_threads
               (Prng.create tenant_seed))
        in
        let on_engine engine =
          on_tenant_engine i engine;
          let obs = Engine.obs engine in
          Obs.subscribe obs
            {
              Obs.sub_name = "market-deadline";
              on_event =
                (fun ~time:_ ~code ~a:_ ~b:_ ~c ->
                  if code = Event.code_request_complete then begin
                    requests.(i) <- requests.(i) + 1;
                    if c > deadline_cycles then misses.(i) <- misses.(i) + 1
                  end);
            }
        in
        Run.prepare ~on_engine ~arrivals_override:arrivals config)
  in
  let ctls =
    Array.map
      (fun _ ->
        Controller.make controller ~min_heap_words:(2 * region_words)
          ~max_heap_words:budget_words)
      sessions
  in
  let cause_ids =
    Array.map
      (fun s -> Obs.intern (Run.session_obs s) ("market-" ^ Controller.name controller))
      sessions
  in
  let capacity i = Heap.capacity_words (Run.session_heap sessions.(i)) in
  let live = Array.make tenants true in
  let peak_total = ref (tenants * initial_words) in
  let total_limit_moves = ref 0 in
  let rebalance () =
    (* Demands: each live tenant's controller proposal (or its current
       holding when the controller abstains / is Fixed).  Finished
       tenants release their share back to the pool. *)
    let floors = Array.make tenants 0 in
    let desired = Array.make tenants 0 in
    Array.iteri
      (fun i s ->
        if live.(i) then begin
          let heap = Run.session_heap s in
          let obs = Run.session_obs s in
          let live_words = Heap.live_words_exact heap in
          floors.(i) <- max (2 * region_words) (live_words + (live_words / 4));
          let sample =
            {
              Controller.now = Run.session_now s;
              live_words;
              capacity_words = Heap.capacity_words heap;
              allocated_words = Heap.words_allocated_total heap;
              gc_cycles = Obs.cycles_of_kind obs Event.gc_worker_kind;
              mutator_cycles = Obs.cycles_of_kind obs Event.mutator_kind;
            }
          in
          desired.(i) <-
            (match Controller.observe ctls.(i) sample with
            | Some w -> max floors.(i) w
            | None -> max floors.(i) (Heap.capacity_words heap))
        end)
      sessions;
    let total = Array.fold_left ( + ) 0 desired in
    let scale_down =
      if total > budget_words then float_of_int budget_words /. float_of_int total
      else 1.0
    in
    Array.iteri
      (fun i s ->
        if live.(i) then begin
          let target =
            max floors.(i) (int_of_float (float_of_int desired.(i) *. scale_down))
          in
          let before = capacity i in
          let after =
            Heap.set_capacity (Run.session_heap s) ~capacity_words:target
              ~cause_id:cause_ids.(i)
          in
          if after <> before then incr total_limit_moves
        end)
      sessions
  in
  let horizon = ref 0 in
  let epochs = ref 0 in
  while Array.exists Fun.id live do
    horizon := !horizon + epoch_cycles;
    incr epochs;
    Array.iteri
      (fun i s -> if live.(i) then live.(i) <- Run.step s ~until:!horizon)
      sessions;
    rebalance ();
    let in_use = ref 0 in
    Array.iteri (fun i _ -> if live.(i) then in_use := !in_use + capacity i) sessions;
    peak_total := max !peak_total !in_use
  done;
  log (Printf.sprintf "market: all tenants done after %d epochs" !epochs);
  let measurements = Array.map Run.finish sessions in
  let agg = Histogram.create () in
  Array.iter
    (fun (m : Measurement.t) ->
      match m.Measurement.latency_metered with
      | Some h -> Histogram.merge_into ~dst:agg h
      | None -> ())
    measurements;
  let per_tenant =
    Array.to_list
      (Array.mapi
         (fun i (m : Measurement.t) ->
           let metered = m.Measurement.latency_metered in
           {
             tenant = i;
             bench = m.Measurement.benchmark;
             completed = Measurement.completed m;
             requests = requests.(i);
             deadline_misses = misses.(i);
             metered_mean_ms =
               (match metered with
               | Some h -> Units.ms_of_cycles (int_of_float (Histogram.mean h))
               | None -> 0.0);
             metered_p99_ms =
               (match metered with
               | Some h -> Units.ms_of_cycles (Histogram.percentile h 99.0)
               | None -> 0.0);
             limit_changes = m.Measurement.limit_changes;
             peak_words = m.Measurement.heap_limit_peak_words;
             mean_footprint_words = Measurement.mean_footprint_words m;
           })
         measurements)
  in
  {
    gc = Registry.name gc;
    controller = Controller.name controller;
    tenants;
    budget_words;
    deadline_ms;
    per_tenant;
    total_requests = Array.fold_left ( + ) 0 requests;
    total_deadline_misses = Array.fold_left ( + ) 0 misses;
    agg_metered_mean_ms = Units.ms_of_cycles (int_of_float (Histogram.mean agg));
    agg_metered_p99_ms = Units.ms_of_cycles (Histogram.percentile agg 99.0);
    total_limit_changes = !total_limit_moves;
    peak_total_words = !peak_total;
    wall_cycles =
      Array.fold_left (fun acc (m : Measurement.t) -> max acc m.Measurement.wall_total) 0
        measurements;
  }

let pp_report ppf r =
  let open Format in
  fprintf ppf "market: %d tenants, %s + %s, budget %a@." r.tenants r.gc r.controller
    Units.pp_words r.budget_words;
  List.iter
    (fun t ->
      fprintf ppf
        "  tenant %d: %s %s: %d requests, %d deadline misses (>%.1fms), metered mean \
         %.2fms p99 %.2fms, %d limit moves, peak %a, mean footprint %a@."
        t.tenant t.bench
        (if t.completed then "ok" else "FAILED")
        t.requests t.deadline_misses r.deadline_ms t.metered_mean_ms t.metered_p99_ms
        t.limit_changes Units.pp_words t.peak_words Units.pp_words
        (int_of_float t.mean_footprint_words))
    r.per_tenant;
  fprintf ppf
    "  aggregate: %d requests, %d deadline misses, metered mean %.2fms p99 %.2fms@."
    r.total_requests r.total_deadline_misses r.agg_metered_mean_ms r.agg_metered_p99_ms;
  fprintf ppf "  %d broker limit moves, peak total footprint %a, wall %a@."
    r.total_limit_changes Units.pp_words r.peak_total_words Units.pp_cycles r.wall_cycles
