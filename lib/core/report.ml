module Registry = Gcr_gcs.Registry
module Spec = Gcr_workloads.Spec
module Measurement = Gcr_runtime.Measurement
module Stats = Gcr_util.Stats
module Tablefmt = Gcr_util.Tablefmt
module Histogram = Gcr_util.Histogram
module Units = Gcr_util.Units

let default_factor = 3.0

let core_bench_names campaign =
  Harness.benchmarks campaign
  |> List.map (fun s -> s.Spec.name)
  |> List.filter (fun n -> n <> "eclipse" && n <> "xalan")

let production_gcs campaign =
  List.filter (fun g -> g <> Registry.Epsilon) (Harness.gcs campaign)

let short_name = function
  | Registry.Epsilon -> "Eps."
  | Registry.Serial -> "Ser."
  | Registry.Parallel -> "Par."
  | Registry.G1 -> "G1"
  | Registry.Shenandoah -> "Shen."
  | Registry.Zgc -> "ZGC"
  | Registry.Shenandoah_gen -> "GenSh."
  | Registry.Lxr -> "LXR"
  | Registry.Serial_pretenure -> "SerPT"

let factor_label f = Printf.sprintf "%.1fx" f

let opt_cell places = function
  | Some v -> Tablefmt.Num (v, places)
  | None -> Tablefmt.Missing

(* ---------- Tables II-V: the worked example ---------- *)

let worked_example campaign ?(bench = "h2") ?(factor = default_factor) () =
  let metric = Metrics.Cpu_cycles in
  let gcs = [ Registry.Parallel; Registry.Serial; Registry.Shenandoah ] in
  let observations =
    List.filter_map
      (fun gc -> Lbo.observation metric (Harness.runs campaign ~bench ~gc ~factor))
      gcs
  in
  if observations = [] then
    print_endline "worked example: no collector completed this configuration"
  else begin
    let to_g v = v /. 1e9 in
    let t2 =
      Tablefmt.create
        ~title:
          (Printf.sprintf
             "TABLE II -- total CPU cycles, %s at %s heap (Gcycles, lower is better)" bench
             (factor_label factor))
        ~columns:[ "Total"; "Normalized to best" ]
    in
    let best_total =
      List.fold_left (fun acc o -> Float.min acc o.Lbo.total) Float.infinity observations
    in
    List.iter
      (fun o ->
        Tablefmt.add_row t2 ~label:o.Lbo.collector
          [ Tablefmt.Num (to_g o.Lbo.total, 2); Tablefmt.Num (o.Lbo.total /. best_total, 3) ])
      observations;
    Tablefmt.print t2;
    let t3 =
      Tablefmt.create
        ~title:
          "TABLE III -- attribution: cycles in STW pauses vs other (Gcycles; best other \
           bounds the ideal)"
        ~columns:[ "STW"; "Other"; "Total" ]
    in
    List.iter
      (fun o ->
        Tablefmt.add_row t3 ~label:o.Lbo.collector
          [
            Tablefmt.Num (to_g o.Lbo.apparent_gc, 2);
            Tablefmt.Num (to_g (Lbo.other_cost o), 2);
            Tablefmt.Num (to_g o.Lbo.total, 2);
          ])
      observations;
    Tablefmt.print t3;
    let ideal = Lbo.ideal_estimate observations in
    let t4 =
      Tablefmt.create
        ~title:
          (Printf.sprintf
             "TABLE IV -- LBO: total / best other (ideal estimate = %.2f Gcycles)"
             (to_g ideal))
        ~columns:[ "Total"; "LBO" ]
    in
    List.iter
      (fun o ->
        Tablefmt.add_row t4 ~label:o.Lbo.collector
          [
            Tablefmt.Num (to_g o.Lbo.total, 2);
            Tablefmt.Num (Lbo.lbo ~ideal ~total:o.Lbo.total, 3);
          ])
      observations;
    Tablefmt.print t4;
    (* Table V: an illustrative cheaper collector tightens every bound. *)
    let hypo_other = 0.95 *. ideal in
    let hypo_total = hypo_other *. 1.095 in
    let hypothetical =
      { Lbo.collector = "Hypothetical"; total = hypo_total; apparent_gc = hypo_total -. hypo_other }
    in
    let refined = observations @ [ hypothetical ] in
    let ideal' = Lbo.ideal_estimate refined in
    let t5 =
      Tablefmt.create
        ~title:
          "TABLE V -- refinement: a collector with cheaper other cycles tightens all LBOs"
        ~columns:[ "Other"; "Total"; "LBO" ]
    in
    List.iter
      (fun o ->
        Tablefmt.add_row t5 ~label:o.Lbo.collector
          [
            Tablefmt.Num (to_g (Lbo.other_cost o), 2);
            Tablefmt.Num (to_g o.Lbo.total, 2);
            Tablefmt.Num (Lbo.lbo ~ideal:ideal' ~total:o.Lbo.total, 3);
          ])
      refined;
    Tablefmt.print t5
  end

(* ---------- Tables VI/VII: LBO grids ---------- *)

let lbo_grid campaign metric ~title =
  let benches = core_bench_names campaign in
  let factors = (Harness.config_of campaign).Harness.heap_factors in
  let table = Tablefmt.create ~title ~columns:(List.map factor_label factors) in
  List.iter
    (fun gc ->
      let cells =
        List.map
          (fun factor ->
            opt_cell 2 (Harness.lbo_geomean campaign metric ~benches ~gc ~factor))
          factors
      in
      Tablefmt.add_row table ~label:(short_name gc) cells)
    (production_gcs campaign);
  Tablefmt.mark_best_in_column table ~min:true;
  Tablefmt.print table

let table_vi campaign =
  lbo_grid campaign Metrics.Wall_time
    ~title:
      "TABLE VI -- LBO total TIME overhead, geomean over core benchmarks (lower is \
       better; * = best per heap size; blank = cannot run all benchmarks)"

let table_vii campaign =
  lbo_grid campaign Metrics.Cpu_cycles
    ~title:
      "TABLE VII -- LBO total CYCLE overhead, geomean over core benchmarks (lower is \
       better; * = best per heap size; blank = cannot run all benchmarks)"

(* ---------- Tables VIII/IX: per-benchmark at 3.0x ---------- *)

let per_benchmark campaign metric ~factor ~title =
  let gcs = production_gcs campaign in
  let table = Tablefmt.create ~title ~columns:(List.map short_name gcs) in
  let summary : (Registry.kind, float list ref) Hashtbl.t = Hashtbl.create 8 in
  let all_names = List.map (fun s -> s.Spec.name) (Harness.benchmarks campaign) in
  let core = core_bench_names campaign in
  List.iter
    (fun bench ->
      let values =
        List.map (fun gc -> Harness.lbo_value campaign metric ~bench ~gc ~factor) gcs
      in
      let in_summary = List.mem bench core in
      if in_summary then
        List.iter2
          (fun gc v ->
            match v with
            | None -> ()
            | Some v ->
                let cell =
                  match Hashtbl.find_opt summary gc with
                  | Some c -> c
                  | None ->
                      let c = ref [] in
                      Hashtbl.replace summary gc c;
                      c
                in
                cell := v :: !cell)
          gcs values;
      let label = if in_summary then bench else "(" ^ bench ^ ")" in
      Tablefmt.add_row table ~label (List.map (opt_cell 3) values))
    all_names;
  Tablefmt.add_separator table;
  let stat name f =
    let cells =
      List.map
        (fun gc ->
          match Hashtbl.find_opt summary gc with
          | Some c when !c <> [] -> Tablefmt.Num (f (Array.of_list !c), 3)
          | Some _ | None -> Tablefmt.Missing)
        gcs
    in
    Tablefmt.add_row table ~label:name cells
  in
  stat "min" Stats.min;
  stat "max" Stats.max;
  stat "mean" Stats.mean;
  stat "geomean" Stats.geomean;
  Tablefmt.mark_best_in_row table ~min:true;
  Tablefmt.print table

let table_viii ?(factor = default_factor) campaign =
  per_benchmark campaign Metrics.Wall_time ~factor
    ~title:
      (Printf.sprintf
         "TABLE VIII -- total TIME overhead (LBO) per benchmark at %s heap (lower is \
          better; parenthesised rows excluded from summaries; blank = failed)"
         (factor_label factor))

let table_ix ?(factor = default_factor) campaign =
  per_benchmark campaign Metrics.Cpu_cycles ~factor
    ~title:
      (Printf.sprintf
         "TABLE IX -- total CYCLE overhead (LBO) per benchmark at %s heap (lower is \
          better; parenthesised rows excluded from summaries; blank = failed)"
         (factor_label factor))

(* ---------- Tables X/XI: STW fractions ---------- *)

let stw_grid campaign ~title ~fraction =
  let benches = core_bench_names campaign in
  let factors = (Harness.config_of campaign).Harness.heap_factors in
  let table = Tablefmt.create ~title ~columns:(List.map factor_label factors) in
  List.iter
    (fun gc ->
      let cells =
        List.map
          (fun factor ->
            let per_bench =
              List.map
                (fun bench ->
                  let runs = Harness.runs campaign ~bench ~gc ~factor in
                  if runs = [] || not (List.for_all Measurement.completed runs) then None
                  else
                    Some
                      (Stats.mean
                         (Array.of_list (List.map fraction runs))))
                benches
            in
            if List.exists Option.is_none per_bench then Tablefmt.Missing
            else
              let values = Array.of_list (List.filter_map Fun.id per_bench) in
              Tablefmt.Num (100.0 *. Stats.mean values, 1))
          factors
      in
      Tablefmt.add_row table ~label:(short_name gc) cells)
    (production_gcs campaign);
  Tablefmt.mark_best_in_column table ~min:true;
  Tablefmt.print table

let table_x campaign =
  stw_grid campaign ~fraction:Measurement.stw_time_fraction
    ~title:
      "TABLE X -- percent of TIME spent in STW pauses, mean over core benchmarks \
       (lower is better)"

let table_xi campaign =
  stw_grid campaign ~fraction:Measurement.stw_cycle_fraction
    ~title:
      "TABLE XI -- percent of CYCLES spent in STW pauses, mean over core benchmarks \
       (lower is better)"

(* ---------- Figures ---------- *)

let mean_metric campaign metric ~bench ~gc ~factor =
  match Lbo.observation metric (Harness.runs campaign ~bench ~gc ~factor) with
  | Some o -> Some o.Lbo.total
  | None -> None

(* Fig 1: two series, normalised to the best point of either series. *)
let fig1 ?(bench = "lusearch") campaign =
  let factors = (Harness.config_of campaign).Harness.heap_factors in
  let series metric =
    List.map
      (fun gc ->
        ( gc,
          List.map (fun factor -> mean_metric campaign metric ~bench ~gc ~factor) factors ))
      [ Registry.Serial; Registry.G1 ]
  in
  let print_sub ~title metric =
    let data = series metric in
    let best =
      List.fold_left
        (fun acc (_, points) ->
          List.fold_left
            (fun acc p -> match p with Some v -> Float.min acc v | None -> acc)
            acc points)
        Float.infinity data
    in
    let table =
      Tablefmt.create ~title ~columns:(List.map factor_label factors)
    in
    List.iter
      (fun (gc, points) ->
        Tablefmt.add_row table ~label:(short_name gc)
          (List.map (fun p -> opt_cell 3 (Option.map (fun v -> v /. best) p)) points))
      data;
    Tablefmt.print table
  in
  print_sub
    ~title:
      (Printf.sprintf
         "FIGURE 1a -- %s: total wall-clock time vs heap size, normalized to best (lower \
          is better)"
         bench)
    Metrics.Wall_time;
  print_sub
    ~title:
      (Printf.sprintf
         "FIGURE 1b -- %s: total CPU cycles vs heap size, normalized to best (lower is \
          better)"
         bench)
    Metrics.Cpu_cycles

let pooled_pauses campaign ~bench ~gc ~factor =
  Harness.runs campaign ~bench ~gc ~factor
  |> List.concat_map (fun (m : Measurement.t) ->
         List.map (fun (p : Gcr_engine.Engine.pause) -> p.duration) m.Measurement.pauses)

let pooled_latency campaign ~bench ~gc ~factor =
  let merged = Histogram.create () in
  List.iter
    (fun (m : Measurement.t) ->
      match m.Measurement.latency_metered with
      | Some h -> Histogram.merge_into ~dst:merged h
      | None -> ())
    (Harness.runs campaign ~bench ~gc ~factor);
  merged

let fig2 ?(bench = "lusearch") campaign =
  let factors = (Harness.config_of campaign).Harness.heap_factors in
  let gcs = [ Registry.G1; Registry.Shenandoah ] in
  let t2a =
    Tablefmt.create
      ~title:
        (Printf.sprintf "FIGURE 2a -- %s: mean time (ms) per GC pause (lower is better)"
           bench)
      ~columns:(List.map factor_label factors)
  in
  List.iter
    (fun gc ->
      let cells =
        List.map
          (fun factor ->
            match pooled_pauses campaign ~bench ~gc ~factor with
            | [] -> Tablefmt.Missing
            | pauses ->
                let mean = Stats.mean (Array.of_list (List.map float_of_int pauses)) in
                Tablefmt.Num (Units.ms_of_cycles (int_of_float mean), 4))
          factors
      in
      Tablefmt.add_row t2a ~label:(short_name gc) cells)
    gcs;
  Tablefmt.print t2a;
  let t2b =
    Tablefmt.create
      ~title:
        (Printf.sprintf
           "FIGURE 2b -- %s: 99.99th percentile metered query latency (ms, lower is \
            better)"
           bench)
      ~columns:(List.map factor_label factors)
  in
  List.iter
    (fun gc ->
      let cells =
        List.map
          (fun factor ->
            let h = pooled_latency campaign ~bench ~gc ~factor in
            if Histogram.is_empty h then Tablefmt.Missing
            else Tablefmt.Num (Units.ms_of_cycles (Histogram.percentile h 99.99), 4))
          factors
      in
      Tablefmt.add_row t2b ~label:(short_name gc) cells)
    gcs;
  Tablefmt.print t2b

let distribution_percentiles = [ 50.0; 75.0; 90.0; 95.0; 99.0; 99.9; 99.99; 100.0 ]

let fig3 ?(bench = "lusearch") ?(factor = default_factor) campaign =
  let gcs = production_gcs campaign in
  let table =
    Tablefmt.create
      ~title:
        (Printf.sprintf
           "FIGURE 3 -- %s at %s heap: GC pause time (ms) at percentiles (lower is \
            better)"
           bench (factor_label factor))
      ~columns:(List.map short_name gcs)
  in
  List.iter
    (fun p ->
      let cells =
        List.map
          (fun gc ->
            match pooled_pauses campaign ~bench ~gc ~factor with
            | [] -> Tablefmt.Missing
            | pauses ->
                let arr = Array.of_list (List.map float_of_int pauses) in
                Tablefmt.Num (Units.ms_of_cycles (int_of_float (Stats.percentile arr p)), 4))
          gcs
      in
      Tablefmt.add_row table ~label:(Printf.sprintf "p%g" p) cells)
    distribution_percentiles;
  Tablefmt.print table

let fig4 ?(bench = "lusearch") ?(factor = default_factor) campaign =
  let gcs = production_gcs campaign in
  let table =
    Tablefmt.create
      ~title:
        (Printf.sprintf
           "FIGURE 4 -- %s at %s heap: metered query latency (ms) at percentiles (lower \
            is better)"
           bench (factor_label factor))
      ~columns:(List.map short_name gcs)
  in
  List.iter
    (fun p ->
      let cells =
        List.map
          (fun gc ->
            let h = pooled_latency campaign ~bench ~gc ~factor in
            if Histogram.is_empty h then Tablefmt.Missing
            else Tablefmt.Num (Units.ms_of_cycles (Histogram.percentile h p), 4))
          gcs
      in
      Tablefmt.add_row table ~label:(Printf.sprintf "p%g" p) cells)
    distribution_percentiles;
  Tablefmt.print table

(* ---------- extensions beyond the paper's artefacts ---------- *)

let table_energy ?(factor = default_factor) campaign =
  let gcs = production_gcs campaign in
  let table =
    Tablefmt.create
      ~title:
        (Printf.sprintf
           "EXTENSION -- LBO under the ENERGY metric at %s heap (active cycles + 0.15 \
            static per idle CPU-cycle; the additional metric of paper Section IV-E)"
           (factor_label factor))
      ~columns:(List.map short_name gcs)
  in
  List.iter
    (fun bench ->
      let cells =
        List.map
          (fun gc ->
            opt_cell 3 (Harness.lbo_value campaign Metrics.Energy ~bench ~gc ~factor))
          gcs
      in
      Tablefmt.add_row table ~label:bench cells)
    (core_bench_names campaign);
  Tablefmt.mark_best_in_row table ~min:true;
  Tablefmt.print table

let confidence_note ?(factor = default_factor) campaign =
  let gcs = production_gcs campaign in
  List.iter
    (fun metric ->
      let worst = ref 0.0 in
      let samples = ref 0 in
      List.iter
        (fun bench ->
          match Harness.ideal campaign metric ~bench ~factor with
          | None -> ()
          | Some ideal ->
              List.iter
                (fun gc ->
                    let runs = Harness.runs campaign ~bench ~gc ~factor in
                    if runs <> [] && List.for_all Measurement.completed runs then begin
                      let lbos = Lbo.per_invocation_lbos metric ~ideal runs in
                      if Array.length lbos >= 2 then begin
                        incr samples;
                        let ci = Stats.ci95_half_width lbos /. Stats.mean lbos in
                        if ci > !worst then worst := ci
                      end
                    end)
                gcs)
        (core_bench_names campaign);
      if !samples > 0 then
        Printf.printf
          "CI note (%s, %s heap): largest 95%% CI across %d per-benchmark LBO cells is \
           %.1f%% of the mean.\n"
          (Metrics.name metric) (factor_label factor) !samples (100.0 *. !worst))
    [ Metrics.Wall_time; Metrics.Cpu_cycles ];
  print_newline ()

let pause_breakdown ?(factor = default_factor) campaign =
  let gcs = production_gcs campaign in
  (* Pause reasons carry collector-specific prefixes; bucket them into the
     categories the paper's log analysis uses. *)
  let categorise reason =
    let contains needle =
      let n = String.length needle and len = String.length reason in
      let rec go i = i + n <= len && (String.sub reason i n = needle || go (i + 1)) in
      go 0
    in
    if contains "degenerated" then "degenerated"
    else if contains "init-mark" then "init-mark"
    else if contains "final-mark" then "final-mark"
    else if contains "allocation" then "alloc-failure"
    else if contains "young" then "young"
    else if contains "full" then "full"
    else "other"
  in
  let reasons_of gc =
    Harness.runs campaign ~bench:"lusearch" ~gc ~factor
    |> List.concat_map (fun (m : Measurement.t) -> m.Measurement.pauses)
    |> List.map (fun (p : Gcr_engine.Engine.pause) -> categorise p.reason)
  in
  let table_reasons =
    List.sort_uniq compare (List.concat_map reasons_of gcs)
  in
  if table_reasons = [] then print_endline "pause breakdown: no pauses recorded"
  else begin
    let table =
      Tablefmt.create
        ~title:
          (Printf.sprintf
             "EXTENSION -- pause counts by reason, lusearch at %s heap (the log analysis \
              of paper Section IV-C d: degenerated collections betray the pathological \
              modes)"
             (factor_label factor))
        ~columns:table_reasons
    in
    List.iter
      (fun gc ->
        let counts = Hashtbl.create 8 in
        List.iter
          (fun r -> Hashtbl.replace counts r (1 + Option.value ~default:0 (Hashtbl.find_opt counts r)))
          (reasons_of gc);
        let cells =
          List.map
            (fun r ->
              match Hashtbl.find_opt counts r with
              | Some n -> Tablefmt.Num (float_of_int n, 0)
              | None -> Tablefmt.Missing)
            table_reasons
        in
        Tablefmt.add_row table ~label:(short_name gc) cells)
      gcs;
    Tablefmt.print table
  end

let latency_summary ?(factor = default_factor) campaign =
  let gcs = production_gcs campaign in
  let latency_benches =
    Harness.benchmarks campaign
    |> List.filter (fun s -> s.Spec.latency <> None)
    |> List.map (fun s -> s.Spec.name)
  in
  if latency_benches = [] then print_endline "latency summary: no latency-sensitive benchmarks"
  else begin
    let table =
      Tablefmt.create
        ~title:
          (Printf.sprintf
             "EXTENSION -- metered latency (ms) p50 / p99 / p99.99 at %s heap for every \
              latency-sensitive benchmark"
             (factor_label factor))
        ~columns:(List.map short_name gcs)
    in
    List.iter
      (fun bench ->
        let cells =
          List.map
            (fun gc ->
              let h = pooled_latency campaign ~bench ~gc ~factor in
              if Histogram.is_empty h then Tablefmt.Missing
              else
                Tablefmt.Text
                  (Printf.sprintf "%.2f/%.2f/%.2f"
                     (Units.ms_of_cycles (Histogram.percentile h 50.0))
                     (Units.ms_of_cycles (Histogram.percentile h 99.0))
                     (Units.ms_of_cycles (Histogram.percentile h 99.99))))
            gcs
        in
        Tablefmt.add_row table ~label:bench cells)
      latency_benches;
    Tablefmt.print table
  end

let banner title =
  print_newline ();
  print_endline (String.make 72 '=');
  print_endline title;
  print_endline (String.make 72 '=')

let all campaign =
  banner "Worked example (Tables II-V)";
  worked_example campaign ();
  banner "LBO grids (Tables VI-VII)";
  table_vi campaign;
  table_vii campaign;
  banner "Per-benchmark LBO at 3.0x (Tables VIII-IX)";
  table_viii campaign;
  table_ix campaign;
  banner "STW fractions (Tables X-XI)";
  table_x campaign;
  table_xi campaign;
  banner "Figures 1-2 (lusearch across heap sizes)";
  fig1 campaign;
  fig2 campaign;
  banner "Figures 3-4 (lusearch distributions at 3.0x)";
  fig3 campaign;
  fig4 campaign;
  banner "Extensions (energy metric, CIs, pause reasons, latency summary)";
  table_energy campaign;
  confidence_note campaign;
  pause_breakdown campaign;
  latency_summary campaign
