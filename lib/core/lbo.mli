(** The lower-bound overhead (LBO) methodology — the paper's contribution
    (Section III).

    For a fixed workload and machine, each collector [g] yields an
    observation: its total cost and its apparent GC cost under some
    metric.  Since the cost outside apparent GC activity strictly exceeds
    the cost of a notional ideal (zero-cost) GC,

    {v  Ĉost_ideal = min_g (Cost_total(g) − Cost_gc(g))
    LBO(g)      = Cost_total(g) / Ĉost_ideal           v}

    gives a lower bound on each collector's absolute overhead.  Adding
    collectors (e.g. Epsilon where it fits in memory) can only tighten the
    bound (make LBO values larger), never invalidate it. *)

type observation = {
  collector : string;
  total : float;
  apparent_gc : float;
}

val observation :
  Metrics.t -> Gcr_runtime.Measurement.t list -> observation option
(** Aggregate one collector's invocations (means).  [None] if the list is
    empty or any invocation failed — matching the paper's blank entries. *)

val other_cost : observation -> float

val ideal_estimate : observation list -> float
(** The tightest upper bound on the ideal cost over this collector set.
    Raises [Invalid_argument] on an empty list. *)

val lbo : ideal:float -> total:float -> float

val compute : observation list -> (observation * float) list
(** Each observation paired with its LBO value (order preserved). *)

val lbo_of_runs :
  Metrics.t ->
  baseline:Gcr_runtime.Measurement.t list list ->
  Gcr_runtime.Measurement.t list ->
  float option
(** Convenience: LBO of one collector's runs against an ideal estimated
    from all the [baseline] collectors' runs (the collector's own runs
    should be among them).  [None] if the collector failed or no baseline
    observation exists. *)

val per_invocation_lbos :
  Metrics.t -> ideal:float -> Gcr_runtime.Measurement.t list -> float array
(** LBO of each completed invocation against a fixed ideal estimate — the
    samples behind the paper's confidence intervals. *)
