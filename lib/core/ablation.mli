(** Ablation studies for the simulator's design choices.

    Each study sweeps one knob the collectors' designs hinge on and prints
    how the costs move, using the same measurement machinery as the paper's
    tables.  They answer "is this mechanism actually doing what the design
    section claims?" — e.g. that parallel STW workers trade cycles for
    pause time, or that Shenandoah's trigger threshold trades concurrent
    CPU for degeneration risk. *)

type config = {
  spec : Gcr_workloads.Spec.t;
  heap_factor : float;
  seed : int;
  scale : float;
}

val default_config : ?bench:string -> unit -> config
(** h2 at 3.0x, scale 0.3. *)

val gc_workers : config -> unit
(** Sweep the Parallel collector's STW worker count: pause wall time falls
    with workers while GC cycles rise (dispatch, termination, imbalance) —
    the Serial-vs-Parallel tradeoff of paper §IV-C b, made continuous. *)

val tenure_age : config -> unit
(** Sweep the generational tenuring threshold: tenure too early and the
    old space fills with dying objects (full collections); too late and
    survivors are copied repeatedly. *)

val shenandoah_trigger : config -> unit
(** Sweep Shenandoah's cycle-trigger headroom: late triggers save
    concurrent CPU but risk degeneration and pacing; early triggers burn
    CPU continuously. *)

val concurrent_mark_penalty : config -> unit
(** Sweep the cost-model penalty for marking concurrently: how sensitive
    the concurrent collectors' cycle LBOs are to this calibration
    constant. *)

val all : config -> unit
