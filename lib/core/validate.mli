(** Validation studies only a simulator can run.

    The paper argues (Section III) that LBO is a lower bound on the true
    overhead, and that better attribution of apparent GC cost tightens it.
    On real hardware the true overhead is unobservable; in the simulator
    it is: the ground-truth ideal is Epsilon with every barrier cost
    zeroed on a memory-sized heap.  These studies verify the bound and
    quantify its tightness, and reproduce the §III-C discussion of
    attribution quality. *)

type tightness_row = {
  benchmark : string;
  collector : string;
  lbo : float;
  true_overhead : float;
}

val tightness_rows :
  Harness.campaign -> metric:Metrics.t -> factor:float -> tightness_row list
(** For every (benchmark, collector) that completed at this heap factor:
    its LBO and its true overhead against the ground-truth ideal (same
    seeds as the campaign).  The bound holds iff [lbo <= true_overhead]
    (up to measurement identity — the check is exact in the simulator). *)

val tightness_study : Harness.campaign -> factor:float -> unit
(** Print the study for both wall-clock time and cycles, flagging any
    violation of the bound. *)

val attribution_ablation :
  Harness.campaign -> ?bench:string -> ?factor:float -> unit -> unit
(** §III-C: cycle LBO computed with the naive pause-window attribution vs
    the per-GC-thread attribution: the latter yields strictly tighter
    (larger) bounds for concurrent collectors. *)

val genshen_study :
  ?benches:string list -> ?factor:float -> ?scale:float -> ?seed:int -> unit -> unit
(** The paper's flagged future work, measured: generational Shenandoah
    (JEP 404) against the non-generational Shenandoah of the study, on the
    allocation-heavy benchmarks where the paper shows Shenandoah's
    pathological modes.  Prints wall time, GC cycles, stalls and pause
    counts side by side. *)
