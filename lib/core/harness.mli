(** The experiment harness: campaigns over benchmark × collector × heap
    grids, following the paper's execution methodology (§IV-A): heap sizes
    as multiples of the per-benchmark minimum heap, several invocations
    per configuration with distinct seeds, invocations of different
    configurations interleaved, Epsilon included wherever it fits in
    memory.

    The harness is split into a pure {!Planner} (grid → ordered cell
    specs) and the executors here: the in-process domain pool and the
    multi-process {!Gcr_sched.Fabric}.  Both fill the plan's result
    slots and the reduction reads them back in submission order, so the
    recorded campaign is bit-identical whichever executor ran it and at
    any parallelism ([test/test_fabric.ml] enforces this). *)

type config = {
  invocations : int;
  base_seed : int;
  scale : float;
      (** scales run length {e and} machine memory together, so Epsilon
          feasibility (and thus the LBO collector set) is preserved *)
  machine : Gcr_mach.Machine.t;
  cost : Gcr_mach.Cost_model.t;
  region_words : int;
  heap_factors : float list;
  log_progress : bool;  (** one stderr line per configuration *)
  jobs : int;
      (** worker domains draining the campaign queue; 1 = serial.  Results
          are reassembled in submission order, so any value produces
          bit-identical campaigns (the differential tests in
          [test/test_sched.ml] hold this to account) *)
  workers : int option;
      (** [Some n]: execute through the multi-process campaign fabric
          with [n] forked worker processes — each owns a whole OCaml
          runtime, so throughput scales with cores instead of being
          throttled by cross-domain minor STW.  [None] (default): the
          in-process domain pool.  Campaign results are bit-identical
          either way. *)
  cache_dir : string option;
      (** when set, completed runs are stored in (and replayed from) an
          on-disk {!Gcr_sched.Result_cache} keyed by the full run config;
          with [workers] set, the same directory is the fabric's
          content-addressed {!Gcr_sched.Artifact_store} for tapes and
          results.  [None] disables result caching *)
  tapes : bool;
      (** record-once / replay-many workload tapes: each (benchmark, seed)
          cell group generates its decision stream once and every cell in
          the group replays it.  Campaign results are bit-identical with
          tapes on or off; [GCR_TAPES=0] turns them off *)
  controllers : Gcr_policy.Controller.spec list;
      (** heap-sizing controllers, multiplying each non-Epsilon
          (collector, factor) cell as the innermost grid axis.  The
          default [[Fixed]] reproduces the historical grid — same cells,
          same keys, same goldens *)
  listen : (string * int) option;
      (** with [workers = Some n]: accept [n] TCP socket workers at this
          (host, port) instead of forking — [gcr campaign --listen].
          Port 0 binds an ephemeral port, announced via [on_listen].
          Campaign results remain bit-identical to every other executor:
          the socket fabric is just a transport. *)
  connect_timeout : float;
      (** seconds to wait for socket workers before proceeding with
          however many connected (default 30; the coordinator's inline
          backstop covers even an empty fleet) *)
  on_listen : (int -> unit) option;
      (** called once with the actual bound port when the coordinator
          starts accepting — tests and benches fork their workers from
          here, race-free *)
  sched : Gcr_sched.Fabric.sched option;
      (** fabric scheduling policy; [None] defers to [GCR_FABRIC_SCHED]
          (default size-aware).  Either policy yields the identical
          report — scheduling moves cells between workers, never changes
          their results *)
}

val paper_heap_factors : float list
(** 1.4, 1.9, 2.4, 3.0, 3.7, 4.4, 5.2, 6.0 — the paper's eight sizes. *)

val default_heap_factors : float list
(** The default grid: twelve sizes, a superset of {!paper_heap_factors}
    densified below 2× (where LBO curves bend hardest) and between the
    paper's steps. *)

val default_gcs : Gcr_gcs.Registry.kind list
(** The default campaign grid: the whole collector frontier
    ({!Gcr_gcs.Registry.frontier} — the paper's six plus the experimental
    extensions). *)

val default_config : unit -> config
(** 8 invocations at scale 1.0 over {!default_heap_factors}, serial,
    in-process, no result cache; [GCR_INVOCATIONS], [GCR_SCALE],
    [GCR_JOBS], and [GCR_CACHE_DIR] override.  ([GCR_WORKERS] is a CLI
    concern: the library default is always [workers = None].) *)

type exec_summary = {
  cells : int;  (** grid cells executed (invocations included) *)
  cache_hits : int;  (** cells replayed from the result cache *)
  cache_misses : int;  (** cells actually executed *)
  worker_processes : int;  (** fabric worker count; 0 = in-process pool *)
  per_worker : int array;  (** cells completed per fabric worker *)
  reassigned_cells : int;  (** cells requeued after a worker crash *)
  parent_cells : int;  (** cells the fabric parent ran as a backstop *)
  elapsed_s : float;  (** wall-clock campaign time, minheaps included *)
  plan_s : float;
      (** wall time before execution: minheap probes + grid planning *)
  execute_s : float;  (** wall time filling the plan's result slots *)
  reduce_s : float;  (** wall time reducing slots into the report *)
  setup_s : float;
      (** engine/heap construction (or warm reset) self-time within the
          execute phase, summed across pool domains and fabric workers *)
  tape_s : float;
      (** tape generate/fetch/decode self-time within the execute phase *)
  simulate_s : float;  (** in-simulation self-time within the execute phase *)
  cells_per_sec : float;  (** cells / [execute_s] — the execution rate *)
  limit_changes : int;
      (** heap-limit moves controllers made, summed over all cells (0 for
          an all-Fixed campaign) *)
  peak_footprint_words : int;  (** highest heap limit any cell reached *)
  mean_footprint_words : float;
      (** per-cell mean heap limit (footprint integral / wall time),
          averaged over cells *)
  probe_cells : int;
      (** minheap probe runs dispatched through the fabric as first-class
          cells (0 on the in-process path, where searches run inline) *)
  worker_deaths : int;  (** workers declared dead during the session *)
  stolen_groups : int;
      (** prefetched groups revoked from stragglers and re-dealt *)
  wire_tapes : int;
      (** tapes served over the socket to workers without a shared store *)
  worker_rows : Gcr_sched.Fabric.worker_row list;
      (** per-worker accounting (host, transport, session-cumulative
          cells); empty on the in-process path *)
}
(** How a campaign was executed — the accounting behind the CLI summary
    line and [gcr campaign --profile].  Pure reporting: no field feeds
    back into results.  Phase wall times satisfy
    [elapsed_s = plan_s + execute_s + reduce_s]; the [*_s] self-times are
    summed across workers, so they can legitimately exceed [execute_s]
    under parallel execution. *)

type campaign

val run_campaign :
  config ->
  benchmarks:Gcr_workloads.Spec.t list ->
  gcs:Gcr_gcs.Registry.kind list ->
  campaign
(** Runs everything: each production collector at every heap factor, plus
    Epsilon once per benchmark (its heap is the machine memory).  Specs
    are scaled before running; min-heaps are measured per benchmark. *)

(** {1 Access} *)

val config_of : campaign -> config

val benchmarks : campaign -> Gcr_workloads.Spec.t list
(** The scaled specs actually run. *)

val gcs : campaign -> Gcr_gcs.Registry.kind list

val minheap_words : campaign -> bench:string -> int

val summary : campaign -> exec_summary

val all_measurements : campaign -> Gcr_runtime.Measurement.t list
(** Every invocation in the campaign, in a deterministic (key-sorted)
    order — the failure audit the CLI exit code is based on. *)

val runs :
  ?controller:Gcr_policy.Controller.spec ->
  campaign -> bench:string -> gc:Gcr_gcs.Registry.kind -> factor:float ->
  Gcr_runtime.Measurement.t list
(** Invocations for one configuration (Epsilon: any factor returns its
    single configuration).  [controller] defaults to [Fixed], so existing
    reports and LBO readers see exactly the historical cells; pass a
    non-fixed spec to read that controller's column. *)

(** {1 LBO over a campaign} *)

val observations :
  campaign -> Metrics.t -> bench:string -> factor:float -> Lbo.observation list
(** One observation per collector that completed all invocations at this
    configuration, Epsilon included when feasible — the set G of the
    methodology. *)

val ideal : campaign -> Metrics.t -> bench:string -> factor:float -> float option

val lbo_value :
  campaign -> Metrics.t -> bench:string -> gc:Gcr_gcs.Registry.kind -> factor:float ->
  float option
(** [None] where the collector cannot run the configuration (the paper's
    blank cells). *)

val lbo_geomean :
  campaign -> Metrics.t -> benches:string list -> gc:Gcr_gcs.Registry.kind ->
  factor:float -> float option
(** Geometric mean across benchmarks; [None] if the collector misses any
    of them (matching the paper's blank summary cells) or if [benches]
    is empty. *)
