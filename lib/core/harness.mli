(** The experiment harness: campaigns over benchmark × collector × heap
    grids, following the paper's execution methodology (§IV-A): heap sizes
    as multiples of the per-benchmark minimum heap, several invocations
    per configuration with distinct seeds, invocations of different
    configurations interleaved, Epsilon included wherever it fits in
    memory. *)

type config = {
  invocations : int;
  base_seed : int;
  scale : float;
      (** scales run length {e and} machine memory together, so Epsilon
          feasibility (and thus the LBO collector set) is preserved *)
  machine : Gcr_mach.Machine.t;
  cost : Gcr_mach.Cost_model.t;
  region_words : int;
  heap_factors : float list;
  log_progress : bool;  (** one stderr line per configuration *)
  jobs : int;
      (** worker domains draining the campaign queue; 1 = serial.  Results
          are reassembled in submission order, so any value produces
          bit-identical campaigns (the differential tests in
          [test/test_sched.ml] hold this to account) *)
  cache_dir : string option;
      (** when set, completed runs are stored in (and replayed from) an
          on-disk {!Gcr_sched.Result_cache} keyed by the full run config;
          [None] disables result caching *)
  tapes : bool;
      (** record-once / replay-many workload tapes: each (benchmark, seed)
          cell group generates its decision stream once and every cell in
          the group replays it.  Campaign results are bit-identical with
          tapes on or off; [GCR_TAPES=0] turns them off *)
}

val paper_heap_factors : float list
(** 1.4, 1.9, 2.4, 3.0, 3.7, 4.4, 5.2, 6.0 — the paper's eight sizes. *)

val default_gcs : Gcr_gcs.Registry.kind list
(** The default campaign grid: the whole collector frontier
    ({!Gcr_gcs.Registry.frontier} — the paper's six plus the experimental
    extensions). *)

val default_config : unit -> config
(** 5 invocations at scale 1.0, serial, no result cache;
    [GCR_INVOCATIONS], [GCR_SCALE], [GCR_JOBS], and [GCR_CACHE_DIR]
    override. *)

type campaign

val run_campaign :
  config ->
  benchmarks:Gcr_workloads.Spec.t list ->
  gcs:Gcr_gcs.Registry.kind list ->
  campaign
(** Runs everything: each production collector at every heap factor, plus
    Epsilon once per benchmark (its heap is the machine memory).  Specs
    are scaled before running; min-heaps are measured per benchmark. *)

(** {1 Access} *)

val config_of : campaign -> config

val benchmarks : campaign -> Gcr_workloads.Spec.t list
(** The scaled specs actually run. *)

val gcs : campaign -> Gcr_gcs.Registry.kind list

val minheap_words : campaign -> bench:string -> int

val all_measurements : campaign -> Gcr_runtime.Measurement.t list
(** Every invocation in the campaign, in a deterministic (key-sorted)
    order — the failure audit the CLI exit code is based on. *)

val runs :
  campaign -> bench:string -> gc:Gcr_gcs.Registry.kind -> factor:float ->
  Gcr_runtime.Measurement.t list
(** Invocations for one configuration (Epsilon: any factor returns its
    single configuration). *)

(** {1 LBO over a campaign} *)

val observations :
  campaign -> Metrics.t -> bench:string -> factor:float -> Lbo.observation list
(** One observation per collector that completed all invocations at this
    configuration, Epsilon included when feasible — the set G of the
    methodology. *)

val ideal : campaign -> Metrics.t -> bench:string -> factor:float -> float option

val lbo_value :
  campaign -> Metrics.t -> bench:string -> gc:Gcr_gcs.Registry.kind -> factor:float ->
  float option
(** [None] where the collector cannot run the configuration (the paper's
    blank cells). *)

val lbo_geomean :
  campaign -> Metrics.t -> benches:string list -> gc:Gcr_gcs.Registry.kind ->
  factor:float -> float option
(** Geometric mean across benchmarks; [None] if the collector misses any
    of them (matching the paper's blank summary cells) or if [benches]
    is empty. *)
