module Measurement = Gcr_runtime.Measurement

type observation = {
  collector : string;
  total : float;
  apparent_gc : float;
}

let observation metric runs =
  match runs with
  | [] -> None
  | runs when not (List.for_all Measurement.completed runs) -> None
  | runs ->
      let n = float_of_int (List.length runs) in
      let sum f = List.fold_left (fun acc m -> acc +. f m) 0.0 runs in
      Some
        {
          collector = (List.hd runs).Measurement.gc;
          total = sum (Metrics.total metric) /. n;
          apparent_gc = sum (Metrics.apparent_gc metric) /. n;
        }

let other_cost o = o.total -. o.apparent_gc

let ideal_estimate = function
  | [] -> invalid_arg "Lbo.ideal_estimate: no observations"
  | first :: rest ->
      List.fold_left (fun acc o -> Float.min acc (other_cost o)) (other_cost first) rest

let lbo ~ideal ~total =
  if ideal <= 0.0 then invalid_arg "Lbo.lbo: non-positive ideal estimate";
  total /. ideal

let compute observations =
  let ideal = ideal_estimate observations in
  List.map (fun o -> (o, lbo ~ideal ~total:o.total)) observations

let lbo_of_runs metric ~baseline runs =
  let observations = List.filter_map (observation metric) baseline in
  match (observations, observation metric runs) with
  | [], _ | _, None -> None
  | observations, Some o ->
      Some (lbo ~ideal:(ideal_estimate observations) ~total:o.total)

let per_invocation_lbos metric ~ideal runs =
  runs
  |> List.filter Measurement.completed
  |> List.map (fun m -> lbo ~ideal ~total:(Metrics.total metric m))
  |> Array.of_list
