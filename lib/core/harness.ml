module Machine = Gcr_mach.Machine
module Cost_model = Gcr_mach.Cost_model
module Registry = Gcr_gcs.Registry
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement
module Stats = Gcr_util.Stats
module Pool = Gcr_sched.Pool
module Result_cache = Gcr_sched.Result_cache
module Artifact_store = Gcr_sched.Artifact_store
module Fabric = Gcr_sched.Fabric
module Controller = Gcr_policy.Controller

type config = {
  invocations : int;
  base_seed : int;
  scale : float;
  machine : Machine.t;
  cost : Cost_model.t;
  region_words : int;
  heap_factors : float list;
  log_progress : bool;
  jobs : int;
  workers : int option;
      (** [Some n]: execute through the multi-process fabric with [n]
          forked worker processes (sidestepping the cross-domain minor
          STW that throttles the domain pool); [None]: the in-process
          domain pool with [jobs] domains.  Either way the recorded
          campaign is bit-identical. *)
  cache_dir : string option;
  tapes : bool;
      (** replay each (benchmark, seed) cell group from one generated
          workload tape instead of re-deriving the decision stream from
          the PRNG in every cell; results are bit-identical either way *)
  controllers : Controller.spec list;
      (** heap-sizing controllers, the innermost grid axis.  The default
          [[Fixed]] reproduces the historical grid exactly *)
  listen : (string * int) option;
      (** with [workers = Some n]: accept [n] TCP socket workers here
          instead of forking ([gcr campaign --listen]); port 0 binds an
          ephemeral port announced via [on_listen] *)
  connect_timeout : float;
      (** seconds to wait for socket workers before proceeding short *)
  on_listen : (int -> unit) option;
      (** called with the actual bound port once accepting (tests and
          benches fork their workers from here, race-free) *)
  sched : Gcr_sched.Fabric.sched option;
      (** fabric scheduling policy; [None] = [GCR_FABRIC_SCHED] or
          size-aware *)
}

let paper_heap_factors = [ 1.4; 1.9; 2.4; 3.0; 3.7; 4.4; 5.2; 6.0 ]

(* The default grid is denser than the paper's eight sizes: extra points
   below 2× (where LBO curves bend hardest) and between the paper's
   steps.  A superset of [paper_heap_factors], so paper-grid cells can
   be read straight out of a default campaign. *)
let default_heap_factors =
  [ 1.2; 1.4; 1.7; 1.9; 2.4; 2.7; 3.0; 3.4; 3.7; 4.4; 5.2; 6.0 ]

(* The default campaign grid is the full collector frontier: the paper's
   six plus the experimental extensions (GenShen, LXR, Serial+pretenure)
   that the LBO-tightening study measures. *)
let default_gcs = Registry.frontier

let env_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some v when v > 0 -> v
  | Some _ | None -> default

let env_float name default =
  match Option.bind (Sys.getenv_opt name) float_of_string_opt with
  | Some v when v > 0.0 -> v
  | Some _ | None -> default

let default_config () =
  {
    invocations = env_int "GCR_INVOCATIONS" 8;
    base_seed = 1;
    scale = env_float "GCR_SCALE" 1.0;
    machine = Machine.default;
    cost = Cost_model.default;
    region_words = Run.default_region_words;
    heap_factors = default_heap_factors;
    log_progress = true;
    jobs = Pool.default_jobs ();
    workers = None;
    cache_dir = Sys.getenv_opt "GCR_CACHE_DIR";
    tapes = Minheap.tapes_enabled ();
    controllers = [ Controller.fixed ];
    listen = None;
    connect_timeout = 30.0;
    on_listen = None;
    sched = None;
  }

type exec_summary = {
  cells : int;
  cache_hits : int;
  cache_misses : int;
  worker_processes : int;  (** 0 when the in-process pool executed *)
  per_worker : int array;
  reassigned_cells : int;
  parent_cells : int;
  elapsed_s : float;
  plan_s : float;
  execute_s : float;
  reduce_s : float;
  setup_s : float;
  tape_s : float;
  simulate_s : float;
  cells_per_sec : float;
  limit_changes : int;  (** controller decisions applied, summed over cells *)
  peak_footprint_words : int;  (** highest heap limit any cell reached *)
  mean_footprint_words : float;  (** per-cell mean heap limit, averaged *)
  probe_cells : int;  (** minheap probe runs dispatched through the fabric *)
  worker_deaths : int;
  stolen_groups : int;
  wire_tapes : int;  (** tapes served over the socket to storeless workers *)
  worker_rows : Fabric.worker_row list;  (** per-worker accounting (fabric) *)
}

(* Configurations are keyed by (benchmark, collector, factor in permille,
   controller name); Epsilon is heap-independent and stored under factor 0
   with the fixed controller. *)
type key = string * string * int * string

type campaign = {
  config : config;
  specs : Spec.t list;
  gc_kinds : Registry.kind list;
  minheaps : (string, int) Hashtbl.t;
  cells : (key, Measurement.t list ref) Hashtbl.t;
  summary : exec_summary;
}

let permille factor = int_of_float (Float.round (factor *. 1000.0))

let key_of ~bench ~gc ~factor ~controller : key =
  match gc with
  | Registry.Epsilon -> (bench, "Epsilon", 0, Controller.name Controller.fixed)
  | g -> (bench, Registry.name g, permille factor, Controller.name controller)

let scaled_machine config =
  {
    config.machine with
    Machine.memory_words =
      max 4096 (int_of_float (float_of_int config.machine.Machine.memory_words *. config.scale));
  }

let config_of t = t.config

let benchmarks t = t.specs

let gcs t = t.gc_kinds

let summary t = t.summary

let minheap_words t ~bench =
  match Hashtbl.find_opt t.minheaps bench with
  | Some w -> w
  | None -> invalid_arg (Printf.sprintf "Harness.minheap_words: no benchmark %S" bench)

let all_measurements t =
  let keyed = Hashtbl.fold (fun key cell acc -> (key, List.rev !cell) :: acc) t.cells [] in
  let keyed = List.sort (fun (a, _) (b, _) -> compare a b) keyed in
  List.concat_map snd keyed

let runs ?(controller = Controller.fixed) t ~bench ~gc ~factor =
  match Hashtbl.find_opt t.cells (key_of ~bench ~gc ~factor ~controller) with
  | Some cell -> List.rev !cell
  | None -> []

(* --- Executors: fill the plan's result slots. --- *)

(* Execution accounting threaded from the executor branch into the
   summary; the pool branch leaves the fabric-only fields at zero. *)
type exec_info = {
  x_hits : int;
  x_workers : int;
  x_per_worker : int array;
  x_reassigned : int;
  x_parent : int;
  x_profile : Gcr_runtime.Profile.snapshot;
  x_probe_cells : int;
  x_deaths : int;
  x_stolen : int;
  x_wire : int;
  x_rows : Fabric.worker_row list;
}

(* In-process domain pool, one sibling group at a time: generate the
   group's tape image once, replay it in every cell, then drop it before
   the next group (images of full-size benchmarks are tens of MB). *)
let execute_pool config plan results =
  let cache = Option.map (fun dir -> Result_cache.create ~dir) config.cache_dir in
  let hit_counter = Atomic.make 0 in
  List.iter
    (fun (g : Planner.group) ->
      if config.log_progress then
        Printf.eprintf "[harness] invocation %d/%d: %s\n%!" (g.Planner.invocation + 1)
          config.invocations g.Planner.spec.Spec.name;
      let configs = List.map (fun (c : Planner.cell) -> c.Planner.config) g.Planner.cells in
      let configs =
        if not config.tapes then configs
        else begin
          let tape_started = Unix.gettimeofday () in
          let tape =
            Run.Tape_replay
              (Gcr_workloads.Tape_gen.image ~spec:g.Planner.spec ~seed:g.Planner.seed)
          in
          Gcr_runtime.Profile.add_tape_s (Unix.gettimeofday () -. tape_started);
          List.map (fun rc -> { rc with Run.tape }) configs
        end
      in
      let measurements = Pool.map ~jobs:config.jobs ?cache ~hits:hit_counter configs in
      List.iter2
        (fun (c : Planner.cell) m -> results.(c.Planner.index) <- Some m)
        g.Planner.cells measurements)
    (Planner.groups plan);
  (* the pool runs in this process, so its setup/tape/simulate self-time
     is already on the local [Profile] counters *)
  {
    x_hits = Atomic.get hit_counter;
    x_workers = 0;
    x_per_worker = [||];
    x_reassigned = 0;
    x_parent = 0;
    x_profile = Gcr_runtime.Profile.zero;
    x_probe_cells = 0;
    x_deaths = 0;
    x_stolen = 0;
    x_wire = 0;
    x_rows = [];
  }

let rec make_temp_store_dir n =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gcr-fabric-%d-%d" (Unix.getpid ()) n)
  in
  match Unix.mkdir dir 0o700 with
  | () -> dir
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> make_temp_store_dir (n + 1)

let remove_dir dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | entries ->
      Array.iter
        (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        entries;
      (try Unix.rmdir dir with Unix.Unix_error _ -> ())

(* One planner group as a fabric group: the cost estimate rides along so
   the size-aware scheduler can deal largest-first. *)
let fabric_group_of config (g : Planner.group) =
  {
    Fabric.spec = g.Planner.spec;
    seed = g.Planner.seed;
    tapes = config.tapes;
    cost = Planner.group_cost g;
    cells =
      List.map (fun (c : Planner.cell) -> (c.Planner.index, c.Planner.config)) g.Planner.cells;
  }

(* What a socket worker pins in its handshake before any plan exists
   (minheap probes precede planning): a digest of the whole campaign
   request plus the cache-key format version.  Builds that would plan
   different grids — or key results differently — get different digests. *)
let campaign_digest config specs gcs =
  let b = Buffer.create 256 in
  Buffer.add_string b Gcr_sched.Cache_key.version;
  Printf.bprintf b "|inv=%d|seed=%d|scale=%g|region=%d" config.invocations
    config.base_seed config.scale config.region_words;
  List.iter (fun f -> Printf.bprintf b "|f=%g" f) config.heap_factors;
  List.iter (fun c -> Printf.bprintf b "|ctl=%s" (Controller.name c)) config.controllers;
  List.iter (fun (s : Spec.t) -> Printf.bprintf b "|spec=%s" (Spec.digest s)) specs;
  List.iter (fun g -> Printf.bprintf b "|gc=%s" (Registry.name g)) gcs;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* Minheap searches as fabric waves: every benchmark's search advances
   one probe per wave, each probe a first-class single-cell group, so
   probe runs ride the same transport, result cache, and warm worker
   state as the grid — and N benchmarks search concurrently on N
   workers instead of serially in the coordinator. *)
let fabric_minheaps session minheap_config config specs minheaps ~log_minheap =
  let searches =
    List.filter_map
      (fun (spec : Spec.t) ->
        match Minheap.find_cached minheap_config spec with
        | Some words ->
            Hashtbl.replace minheaps spec.Spec.name words;
            log_minheap spec words;
            None
        | None -> Some (spec, Minheap.Search.start minheap_config spec))
      specs
  in
  let probe_cells = ref 0 in
  let rec waves actives =
    let running, finished =
      List.partition (fun (_, s) -> Minheap.Search.result_words s = None) actives
    in
    List.iter
      (fun ((spec : Spec.t), s) ->
        match Minheap.Search.result_words s with
        | Some words ->
            Minheap.record minheap_config spec words;
            Hashtbl.replace minheaps spec.Spec.name words;
            log_minheap spec words
        | None -> assert false)
      finished;
    if running <> [] then begin
      let groups =
        List.mapi
          (fun i ((spec : Spec.t), s) ->
            let rc =
              match Minheap.Search.probe_config s with
              | Some rc -> rc
              | None -> assert false (* running implies a next probe *)
            in
            {
              Fabric.spec;
              seed = minheap_config.Minheap.seed;
              tapes = config.tapes;
              cost = Planner.probe_cost spec;
              cells = [ (i, rc) ];
            })
          running
      in
      let measurements, _stats =
        Fabric.dispatch session ~n_cells:(List.length running) groups
      in
      probe_cells := !probe_cells + List.length running;
      List.iteri
        (fun i (_, s) ->
          Minheap.Search.advance s ~completed:(Measurement.completed measurements.(i)))
        running;
      waves running
    end
  in
  waves searches;
  !probe_cells

let run_campaign config ~benchmarks ~gcs =
  let started = Unix.gettimeofday () in
  let machine = scaled_machine config in
  let config = { config with machine } in
  let specs = List.map (fun s -> Spec.scale s config.scale) benchmarks in
  let minheap_config =
    {
      Minheap.machine;
      cost = config.cost;
      region_words = config.region_words;
      seed = config.base_seed;
      gc = Registry.G1;
      tapes = config.tapes;
    }
  in
  let minheaps = Hashtbl.create 32 in
  let log_minheap (spec : Spec.t) words =
    if config.log_progress then
      Printf.eprintf "[harness] minheap %-12s = %d words\n%!" spec.Spec.name words
  in
  let mk_plan () =
    Planner.plan ~controllers:config.controllers ~invocations:config.invocations
      ~base_seed:config.base_seed ~machine ~cost:config.cost
      ~region_words:config.region_words ~heap_factors:config.heap_factors
      ~minheap:(fun ~bench ->
        match Hashtbl.find_opt minheaps bench with
        | Some w -> w
        | None -> invalid_arg "Harness: plan references an unmeasured benchmark")
      ~specs ~gcs ()
  in
  (* Phase boundaries: wall-clock stamps around execution, plus local
     {!Gcr_runtime.Profile} snapshots so setup/tape/simulate self-time is
     attributed to the execute window only (minheap probes also tick
     those counters, but inside [plan_s]). *)
  let plan, results, plan_done, prof_plan, info =
    match config.workers with
    | None ->
        (* In-process path: minheap searches run inline (memoised), then
           the domain pool fills the plan. *)
        List.iter
          (fun spec ->
            let words = Minheap.find ~config:minheap_config spec in
            log_minheap spec words;
            Hashtbl.replace minheaps spec.Spec.name words)
          specs;
        let plan = mk_plan () in
        let n_cells = Planner.n_cells plan in
        let results : Measurement.t option array = Array.make n_cells None in
        let plan_done = Unix.gettimeofday () in
        let prof_plan = Gcr_runtime.Profile.snapshot () in
        let info = execute_pool config plan results in
        (plan, results, plan_done, prof_plan, info)
    | Some workers ->
        (* Fabric path: one session carries the minheap probe waves and
           then the grid, so probes share the workers' transport, warm
           state, and result cache. *)
        let store, cleanup =
          match config.cache_dir with
          | Some dir -> (Artifact_store.create ~dir, fun () -> ())
          | None ->
              (* tapes still need a rendezvous point; results stay uncached *)
              let dir = make_temp_store_dir 0 in
              (Artifact_store.create ~dir, fun () -> remove_dir dir)
        in
        let log =
          if config.log_progress then fun line -> Printf.eprintf "[fabric] %s\n%!" line
          else fun _ -> ()
        in
        let session =
          Fabric.start ~workers ~store
            ~cache_results:(config.cache_dir <> None)
            ~log ?sched:config.sched ?listen:config.listen
            ~connect_timeout:config.connect_timeout ?on_listen:config.on_listen
            ~plan_digest:(campaign_digest config specs gcs) ()
        in
        Fun.protect
          ~finally:(fun () ->
            Fabric.shutdown session;
            cleanup ())
          (fun () ->
            let probe_cells =
              fabric_minheaps session minheap_config config specs minheaps ~log_minheap
            in
            let plan = mk_plan () in
            let n_cells = Planner.n_cells plan in
            let results : Measurement.t option array = Array.make n_cells None in
            let plan_done = Unix.gettimeofday () in
            let prof_plan = Gcr_runtime.Profile.snapshot () in
            let groups = List.map (fabric_group_of config) (Planner.groups plan) in
            let measurements, stats = Fabric.dispatch session ~n_cells groups in
            Array.iteri (fun i m -> results.(i) <- Some m) measurements;
            let info =
              {
                x_hits = stats.Fabric.cache_hits;
                x_workers = workers;
                x_per_worker = stats.Fabric.per_worker;
                x_reassigned = stats.Fabric.reassigned_cells;
                x_parent = stats.Fabric.parent_cells;
                x_profile = stats.Fabric.worker_profile;
                x_probe_cells = probe_cells;
                x_deaths = Fabric.worker_deaths session;
                x_stolen = Fabric.stolen_groups session;
                x_wire = stats.Fabric.wire_tapes;
                x_rows = Fabric.worker_rows session;
              }
            in
            (plan, results, plan_done, prof_plan, info))
  in
  let n_cells = Planner.n_cells plan in
  let cache_hits = info.x_hits in
  let execute_done = Unix.gettimeofday () in
  let prof_exec = Gcr_runtime.Profile.snapshot () in
  (* Reduce in submission order: the recorded campaign is a pure function
     of the plan, identical whatever executor (or parallelism) ran it. *)
  let cells = Hashtbl.create 512 in
  let record ~bench ~gc ~factor ~controller m =
    let key = key_of ~bench ~gc ~factor ~controller in
    let cell =
      match Hashtbl.find_opt cells key with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.replace cells key c;
          c
    in
    cell := m :: !cell
  in
  List.iter
    (fun (c : Planner.cell) ->
      match results.(c.Planner.index) with
      | Some m ->
          record ~bench:c.Planner.bench ~gc:c.Planner.gc ~factor:c.Planner.factor
            ~controller:c.Planner.controller m
      | None -> invalid_arg "Harness: executor left a cell unfilled")
    (Planner.cells plan);
  (* Controller visibility: how much the limit moved and where footprint
     ended up, aggregated over the filled slots. *)
  let limit_changes_total = ref 0 in
  let peak_footprint = ref 0 in
  let footprint_sum = ref 0.0 in
  let footprint_cells = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some (m : Measurement.t) ->
          limit_changes_total := !limit_changes_total + m.Measurement.limit_changes;
          peak_footprint := max !peak_footprint m.Measurement.heap_limit_peak_words;
          footprint_sum := !footprint_sum +. Measurement.mean_footprint_words m;
          incr footprint_cells)
    results;
  let finished = Unix.gettimeofday () in
  let elapsed_s = finished -. started in
  let plan_s = plan_done -. started in
  let execute_s = execute_done -. plan_done in
  let reduce_s = finished -. execute_done in
  let exec_profile = Gcr_runtime.Profile.diff prof_exec prof_plan in
  let self field =
    Gcr_runtime.Profile.seconds (field exec_profile + field info.x_profile)
  in
  let summary =
    {
      cells = n_cells;
      cache_hits;
      cache_misses = n_cells - cache_hits;
      worker_processes = info.x_workers;
      per_worker = info.x_per_worker;
      reassigned_cells = info.x_reassigned;
      parent_cells = info.x_parent;
      elapsed_s;
      plan_s;
      execute_s;
      reduce_s;
      setup_s = self (fun p -> p.Gcr_runtime.Profile.setup_us);
      tape_s = self (fun p -> p.Gcr_runtime.Profile.tape_us);
      simulate_s = self (fun p -> p.Gcr_runtime.Profile.simulate_us);
      cells_per_sec = (if execute_s > 0.0 then float_of_int n_cells /. execute_s else 0.0);
      limit_changes = !limit_changes_total;
      peak_footprint_words = !peak_footprint;
      mean_footprint_words =
        (if !footprint_cells = 0 then 0.0
         else !footprint_sum /. float_of_int !footprint_cells);
      probe_cells = info.x_probe_cells;
      worker_deaths = info.x_deaths;
      stolen_groups = info.x_stolen;
      wire_tapes = info.x_wire;
      worker_rows = info.x_rows;
    }
  in
  if config.log_progress then begin
    let worker_note =
      if info.x_workers = 0 then Printf.sprintf "pool jobs=%d" config.jobs
      else
        Printf.sprintf "fabric workers=%d [%s]%s%s%s%s%s" info.x_workers
          (String.concat " "
             (Array.to_list (Array.mapi (Printf.sprintf "w%d=%d") info.x_per_worker)))
          (if info.x_reassigned > 0 then Printf.sprintf " reassigned=%d" info.x_reassigned
           else "")
          (if info.x_parent > 0 then Printf.sprintf " parent=%d" info.x_parent else "")
          (if info.x_probe_cells > 0 then Printf.sprintf " probes=%d" info.x_probe_cells
           else "")
          (if info.x_stolen > 0 then Printf.sprintf " stolen=%d" info.x_stolen else "")
          (if info.x_wire > 0 then Printf.sprintf " wire-tapes=%d" info.x_wire else "")
    in
    Printf.eprintf
      "[harness] %d cells in %.1fs (plan %.1fs, execute %.1fs at %.1f cells/s, reduce \
       %.2fs): %d cache hits, %d executed; %s\n\
       %!"
      n_cells elapsed_s plan_s execute_s summary.cells_per_sec reduce_s cache_hits
      summary.cache_misses worker_note;
    if summary.limit_changes > 0 then
      Printf.eprintf
        "[harness] controllers: %d limit changes, peak footprint %d words, mean %.0f \
         words/cell\n\
         %!"
        summary.limit_changes summary.peak_footprint_words summary.mean_footprint_words;
    List.iter
      (fun (r : Fabric.worker_row) ->
        Printf.eprintf "[harness]   worker %d (%s, %s): %d cells%s%s\n%!" r.Fabric.row_id
          r.Fabric.row_transport r.Fabric.row_host r.Fabric.row_cells
          (if r.Fabric.row_wire_tapes > 0 then
             Printf.sprintf ", %d wire tapes" r.Fabric.row_wire_tapes
           else "")
          (if r.Fabric.row_alive then "" else " (died)"))
      summary.worker_rows
  end;
  { config; specs; gc_kinds = gcs; minheaps; cells; summary }

let observations t metric ~bench ~factor =
  let kinds =
    if List.mem Registry.Epsilon t.gc_kinds then t.gc_kinds
    else Registry.Epsilon :: t.gc_kinds
  in
  List.filter_map
    (fun gc -> Lbo.observation metric (runs t ~bench ~gc ~factor))
    kinds

let ideal t metric ~bench ~factor =
  match observations t metric ~bench ~factor with
  | [] -> None
  | obs -> Some (Lbo.ideal_estimate obs)

let lbo_value t metric ~bench ~gc ~factor =
  match (ideal t metric ~bench ~factor, Lbo.observation metric (runs t ~bench ~gc ~factor)) with
  | Some ideal, Some o -> Some (Lbo.lbo ~ideal ~total:o.Lbo.total)
  | None, _ | _, None -> None

let lbo_geomean t metric ~benches ~gc ~factor =
  match benches with
  | [] -> None (* an empty selection has no mean, not an exception *)
  | benches ->
      let values = List.map (fun bench -> lbo_value t metric ~bench ~gc ~factor) benches in
      if List.exists Option.is_none values then None
      else Some (Stats.geomean (Array.of_list (List.filter_map Fun.id values)))
