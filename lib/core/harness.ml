module Machine = Gcr_mach.Machine
module Cost_model = Gcr_mach.Cost_model
module Registry = Gcr_gcs.Registry
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement
module Stats = Gcr_util.Stats
module Pool = Gcr_sched.Pool
module Result_cache = Gcr_sched.Result_cache

type config = {
  invocations : int;
  base_seed : int;
  scale : float;
  machine : Machine.t;
  cost : Cost_model.t;
  region_words : int;
  heap_factors : float list;
  log_progress : bool;
  jobs : int;
  cache_dir : string option;
  tapes : bool;
      (** replay each (benchmark, seed) cell group from one generated
          workload tape instead of re-deriving the decision stream from
          the PRNG in every cell; results are bit-identical either way *)
}

let paper_heap_factors = [ 1.4; 1.9; 2.4; 3.0; 3.7; 4.4; 5.2; 6.0 ]

(* The default campaign grid is the full collector frontier: the paper's
   six plus the experimental extensions (GenShen, LXR, Serial+pretenure)
   that the LBO-tightening study measures. *)
let default_gcs = Registry.frontier

let env_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some v when v > 0 -> v
  | Some _ | None -> default

let env_float name default =
  match Option.bind (Sys.getenv_opt name) float_of_string_opt with
  | Some v when v > 0.0 -> v
  | Some _ | None -> default

let default_config () =
  {
    invocations = env_int "GCR_INVOCATIONS" 5;
    base_seed = 1;
    scale = env_float "GCR_SCALE" 1.0;
    machine = Machine.default;
    cost = Cost_model.default;
    region_words = Run.default_region_words;
    heap_factors = paper_heap_factors;
    log_progress = true;
    jobs = Pool.default_jobs ();
    cache_dir = Sys.getenv_opt "GCR_CACHE_DIR";
    tapes = Minheap.tapes_enabled ();
  }

(* Configurations are keyed by (benchmark, collector, factor in permille);
   Epsilon is heap-independent and stored under factor 0. *)
type key = string * string * int

type campaign = {
  config : config;
  specs : Spec.t list;
  gc_kinds : Registry.kind list;
  minheaps : (string, int) Hashtbl.t;
  cells : (key, Measurement.t list ref) Hashtbl.t;
}

let permille factor = int_of_float (Float.round (factor *. 1000.0))

let key_of ~bench ~gc ~factor : key =
  match gc with
  | Registry.Epsilon -> (bench, "Epsilon", 0)
  | g -> (bench, Registry.name g, permille factor)

let scaled_machine config =
  {
    config.machine with
    Machine.memory_words =
      max 4096 (int_of_float (float_of_int config.machine.Machine.memory_words *. config.scale));
  }

let config_of t = t.config

let benchmarks t = t.specs

let gcs t = t.gc_kinds

let minheap_words t ~bench =
  match Hashtbl.find_opt t.minheaps bench with
  | Some w -> w
  | None -> invalid_arg (Printf.sprintf "Harness.minheap_words: no benchmark %S" bench)

let all_measurements t =
  let keyed = Hashtbl.fold (fun key cell acc -> (key, List.rev !cell) :: acc) t.cells [] in
  let keyed = List.sort (fun (a, _) (b, _) -> compare a b) keyed in
  List.concat_map snd keyed

let runs t ~bench ~gc ~factor =
  match Hashtbl.find_opt t.cells (key_of ~bench ~gc ~factor) with
  | Some cell -> List.rev !cell
  | None -> []

let heap_words_for t ~bench ~factor =
  let minheap = minheap_words t ~bench in
  let words = int_of_float (Float.round (factor *. float_of_int minheap)) in
  (* round up to whole regions *)
  let region = t.config.region_words in
  (words + region - 1) / region * region

let run_campaign config ~benchmarks ~gcs =
  let machine = scaled_machine config in
  let specs = List.map (fun s -> Spec.scale s config.scale) benchmarks in
  let minheap_config =
    {
      Minheap.machine;
      cost = config.cost;
      region_words = config.region_words;
      seed = config.base_seed;
      gc = Registry.G1;
      tapes = config.tapes;
    }
  in
  let t =
    {
      config = { config with machine };
      specs;
      gc_kinds = gcs;
      minheaps = Hashtbl.create 32;
      cells = Hashtbl.create 512;
    }
  in
  List.iter
    (fun spec ->
      let words = Minheap.find ~config:minheap_config spec in
      if config.log_progress then
        Printf.eprintf "[harness] minheap %-12s = %d words\n%!" spec.Spec.name words;
      Hashtbl.replace t.minheaps spec.Spec.name words)
    specs;
  let record ~bench ~gc ~factor m =
    let key = key_of ~bench ~gc ~factor in
    let cell =
      match Hashtbl.find_opt t.cells key with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.replace t.cells key c;
          c
    in
    cell := m :: !cell
  in
  (* Submission phase: walk the grid in the canonical serial order and
     queue one run config per cell×invocation, grouped by
     (invocation, benchmark) — the cells that share a workload decision
     stream.  Execution happens below through the scheduler; because
     results come back in submission order, the recorded campaign is
     identical whatever [config.jobs] (or [config.tapes]) is. *)
  let groups = ref [] in
  let submit subs spec gc ~factor ~seed =
    let bench = spec.Spec.name in
    let heap_words =
      match gc with
      | Registry.Epsilon -> machine.Machine.memory_words
      | _ -> heap_words_for t ~bench ~factor
    in
    if config.log_progress && Sys.getenv_opt "GCR_TRACE_RUNS" <> None then
      Printf.eprintf "[harness]   %s/%s factor=%.1f seed=%d heap=%d\n%!" bench
        (Registry.name gc) factor seed heap_words;
    let run_config =
      {
        Run.spec;
        gc;
        heap_words;
        machine;
        cost = config.cost;
        seed;
        region_words = config.region_words;
        max_events = None;
        make_collector = None;
        tape = Run.Tape_off;
      }
    in
    subs := (bench, gc, factor, run_config) :: !subs
  in
  (* Interleave configurations across invocations (§IV-A d). *)
  for invocation = 0 to config.invocations - 1 do
    let seed = config.base_seed + (1000 * (invocation + 1)) in
    List.iter
      (fun spec ->
        let subs = ref [] in
        List.iter
          (fun gc ->
            match gc with
            | Registry.Epsilon -> submit subs spec gc ~factor:0.0 ~seed
            | _ ->
                List.iter (fun factor -> submit subs spec gc ~factor ~seed) config.heap_factors)
          ( (* Epsilon participates implicitly even if not requested *)
            if List.mem Registry.Epsilon gcs then gcs else Registry.Epsilon :: gcs );
        groups := (invocation, spec, seed, List.rev !subs) :: !groups)
      specs
  done;
  let cache = Option.map (fun dir -> Result_cache.create ~dir) config.cache_dir in
  (* Execution phase, one cell group at a time: generate the group's tape
     image once, replay it in every cell, then drop it before the next
     group (images of full-size benchmarks are tens of MB). *)
  List.iter
    (fun (invocation, spec, seed, ordered) ->
      if config.log_progress then
        Printf.eprintf "[harness] invocation %d/%d: %s\n%!" (invocation + 1)
          config.invocations spec.Spec.name;
      let ordered =
        if not config.tapes then ordered
        else begin
          let tape = Run.Tape_replay (Gcr_workloads.Tape_gen.image ~spec ~seed) in
          List.map (fun (b, g, f, rc) -> (b, g, f, { rc with Run.tape })) ordered
        end
      in
      let results =
        Pool.map ~jobs:config.jobs ?cache (List.map (fun (_, _, _, rc) -> rc) ordered)
      in
      List.iter2 (fun (bench, gc, factor, _) m -> record ~bench ~gc ~factor m) ordered results)
    (List.rev !groups);
  t

let observations t metric ~bench ~factor =
  let kinds =
    if List.mem Registry.Epsilon t.gc_kinds then t.gc_kinds
    else Registry.Epsilon :: t.gc_kinds
  in
  List.filter_map
    (fun gc -> Lbo.observation metric (runs t ~bench ~gc ~factor))
    kinds

let ideal t metric ~bench ~factor =
  match observations t metric ~bench ~factor with
  | [] -> None
  | obs -> Some (Lbo.ideal_estimate obs)

let lbo_value t metric ~bench ~gc ~factor =
  match (ideal t metric ~bench ~factor, Lbo.observation metric (runs t ~bench ~gc ~factor)) with
  | Some ideal, Some o -> Some (Lbo.lbo ~ideal ~total:o.Lbo.total)
  | None, _ | _, None -> None

let lbo_geomean t metric ~benches ~gc ~factor =
  match benches with
  | [] -> None (* an empty selection has no mean, not an exception *)
  | benches ->
      let values = List.map (fun bench -> lbo_value t metric ~bench ~gc ~factor) benches in
      if List.exists Option.is_none values then None
      else Some (Stats.geomean (Array.of_list (List.filter_map Fun.id values)))
