(** Minimum-heap measurement.

    The paper sizes every heap relative to the minimum heap in which the
    benchmark completes, measured with G1 ("the most space-efficient GC
    among the ones we study", §IV-A).  This module performs that search:
    exponential probing for an upper bound, then binary search down to a
    region granularity.  Results are memoised in-process and, optionally,
    in a small TSV cache file, because each probe is a full run. *)

type config = {
  machine : Gcr_mach.Machine.t;
  cost : Gcr_mach.Cost_model.t;
  region_words : int;
  seed : int;
  gc : Gcr_gcs.Registry.kind;  (** G1 in the paper's protocol *)
  tapes : bool;
      (** drive every probe of a search from one generated workload tape
          (results are bit-identical to live PRNG probes) *)
}

val tapes_enabled : unit -> bool
(** Default for the [tapes] flags here and in {!Harness.config}: on,
    unless [GCR_TAPES] is ["0"], ["false"], or ["off"]. *)

val default_config : unit -> config

val find : ?config:config -> Gcr_workloads.Spec.t -> int
(** Minimum heap size in words (a whole number of regions) in which the
    benchmark completes.  Raises [Failure] if it cannot complete even in
    the machine's full memory. *)

val find_cached : config -> Gcr_workloads.Spec.t -> int option
(** The memoised/persisted answer only — never probes.  Loads the file
    cache on first use. *)

val record : config -> Gcr_workloads.Spec.t -> int -> unit
(** Store a search result (memo + file cache) computed by an external
    driver such as the fabric's probe waves.  First write wins. *)

(** The probe sequence as an explicit state machine, for drivers that
    execute probes elsewhere (the campaign fabric runs many searches
    concurrently, one single-cell group per probe).  The sequence —
    exponential doubling from the live-set floor, then bisection — is a
    pure function of the completion answers, so every driver lands on
    the minimum {!find} computes. *)
module Search : sig
  type t

  val start : config -> Gcr_workloads.Spec.t -> t

  val probe_regions : t -> int option
  (** Next heap size to probe, in regions; [None] once finished.  Raises
      [Failure] when doubling escapes machine memory. *)

  val probe_config : t -> Gcr_runtime.Run.config option
  (** The full run config for the next probe (carries [Tape_off]; the
      executor attaches the group tape), built exactly as the inline
      search builds its probes — including the fail-fast event budget —
      so probe results are cache-compatible between drivers. *)

  val advance : t -> completed:bool -> unit
  (** Feed back whether the probed heap completed the benchmark. *)

  val result_words : t -> int option
  (** The minimum heap in words once the search is finished. *)
end

val cache_path : unit -> string option
(** Where results are persisted: [$GCR_CACHE_DIR/minheap.tsv] if
    [GCR_CACHE_DIR] is set, else [./.gcr-cache/minheap.tsv] when the
    working directory is writable, else no persistence. *)

val clear_memo : unit -> unit
(** Test hook: forget in-process results (the file cache is untouched). *)
