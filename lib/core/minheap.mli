(** Minimum-heap measurement.

    The paper sizes every heap relative to the minimum heap in which the
    benchmark completes, measured with G1 ("the most space-efficient GC
    among the ones we study", §IV-A).  This module performs that search:
    exponential probing for an upper bound, then binary search down to a
    region granularity.  Results are memoised in-process and, optionally,
    in a small TSV cache file, because each probe is a full run. *)

type config = {
  machine : Gcr_mach.Machine.t;
  cost : Gcr_mach.Cost_model.t;
  region_words : int;
  seed : int;
  gc : Gcr_gcs.Registry.kind;  (** G1 in the paper's protocol *)
  tapes : bool;
      (** drive every probe of a search from one generated workload tape
          (results are bit-identical to live PRNG probes) *)
}

val tapes_enabled : unit -> bool
(** Default for the [tapes] flags here and in {!Harness.config}: on,
    unless [GCR_TAPES] is ["0"], ["false"], or ["off"]. *)

val default_config : unit -> config

val find : ?config:config -> Gcr_workloads.Spec.t -> int
(** Minimum heap size in words (a whole number of regions) in which the
    benchmark completes.  Raises [Failure] if it cannot complete even in
    the machine's full memory. *)

val cache_path : unit -> string option
(** Where results are persisted: [$GCR_CACHE_DIR/minheap.tsv] if
    [GCR_CACHE_DIR] is set, else [./.gcr-cache/minheap.tsv] when the
    working directory is writable, else no persistence. *)

val clear_memo : unit -> unit
(** Test hook: forget in-process results (the file cache is untouched). *)
