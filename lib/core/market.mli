(** The multi-tenant memory market: N simulated runtimes share one
    machine-wide memory budget under a diurnal request wave.

    Each tenant is a full {!Gcr_runtime.Run.session} advanced in lockstep
    epochs; a broker owns the budget, asks each tenant's heap-sizing
    controller for a demand every epoch, scales the demands to fit, and
    applies the limits with {!Gcr_heap.Heap.set_capacity}.  Under [Fixed]
    the market is a static even split — the baseline the adaptive
    controllers (membalancer, monk) are judged against on aggregate
    metered latency, deadline misses, and footprint. *)

type tenant_summary = {
  tenant : int;
  bench : string;
  completed : bool;
  requests : int;
  deadline_misses : int;  (** requests whose metered latency exceeded the deadline *)
  metered_mean_ms : float;
  metered_p99_ms : float;
  limit_changes : int;  (** broker moves applied to this tenant's heap *)
  peak_words : int;  (** highest limit this tenant ever held *)
  mean_footprint_words : float;  (** time-weighted mean limit *)
}

type report = {
  gc : string;
  controller : string;
  tenants : int;
  budget_words : int;
  deadline_ms : float;
  per_tenant : tenant_summary list;
  total_requests : int;
  total_deadline_misses : int;
  agg_metered_mean_ms : float;  (** mean over all tenants' metered requests *)
  agg_metered_p99_ms : float;
  total_limit_changes : int;
  peak_total_words : int;
      (** highest sum of live tenants' limits observed at an epoch
          boundary — the machine-wide footprint the budget constrains *)
  wall_cycles : int;  (** slowest tenant's wall clock *)
}

val default_epoch_cycles : int
(** 250k cycles (~70µs simulated) — comfortably past the controllers'
    decision period, so every epoch can move limits. *)

val default_deadline_ms : float
(** 10ms. *)

val run :
  ?bench:string ->
  ?epoch_cycles:int ->
  ?deadline_ms:float ->
  ?log:(string -> unit) ->
  ?on_tenant_engine:(int -> Gcr_engine.Engine.t -> unit) ->
  tenants:int ->
  gc:Gcr_gcs.Registry.kind ->
  controller:Gcr_policy.Controller.spec ->
  budget_factor:float ->
  scale:float ->
  seed:int ->
  unit ->
  report
(** Run the scenario to completion (every tenant finishes or fails) and
    report.  [bench] (default ["lusearch"]) must be latency-sensitive;
    [budget_factor] scales the machine-wide budget relative to
    [tenants × baseline] where the baseline derives from the spec's
    live-set estimate; tenant [i] runs seed [seed + 37i] with its arrival
    wave phase-shifted by [2πi/N].  [on_tenant_engine] fires as each
    tenant's engine is built — the hook the CLI uses to attach a Perfetto
    trace to tenant 0.  Deterministic: equal arguments, equal report.
    Raises [Invalid_argument] for Epsilon (nothing to broker), a
    non-latency benchmark, or [tenants < 1]. *)

val pp_report : Format.formatter -> report -> unit
