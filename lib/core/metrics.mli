(** Cost metrics.

    The LBO methodology is parametric in the notion of cost (paper
    §III-B); these are the two the paper reports throughout, plus the
    simple energy model it suggests as an extension. *)

type t =
  | Wall_time  (** wall-clock cycles of the whole run *)
  | Cpu_cycles  (** cycles consumed across all threads *)
  | Energy
      (** simple model: active cycles cost 1 energy unit, idle CPU-seconds
          cost 0.15 (static power), so parallelism and stalls both show *)

val all : t list

val name : t -> string

val total : t -> Gcr_runtime.Measurement.t -> float
(** The run's total cost under this metric. *)

val apparent_gc : t -> Gcr_runtime.Measurement.t -> float
(** The apparent GC cost, following §III-C: pause wall time for
    [Wall_time]; all GC-thread cycles for [Cpu_cycles] (and the GC share
    of active energy for [Energy]). *)

val other : t -> Gcr_runtime.Measurement.t -> float
(** [total - apparent_gc] — the upper bound on the ideal cost this run
    contributes. *)
