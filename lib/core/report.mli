(** Regeneration of every table and figure in the paper's evaluation.

    Each function prints a plain-text rendition of the corresponding
    artefact from a campaign's measurements.  Table and figure numbers
    follow the paper; the per-experiment index in DESIGN.md maps them to
    modules and parameters. *)

val core_bench_names : Harness.campaign -> string list
(** The campaign's benchmarks minus eclipse and xalan — the paper's
    16-benchmark summary set (intersected with what the campaign
    actually ran). *)

val worked_example : Harness.campaign -> ?bench:string -> ?factor:float -> unit -> unit
(** Tables II–V: the LBO walkthrough on h2 at 3.0× with Serial, Parallel
    and Shenandoah, including the hypothetical-collector refinement. *)

val table_vi : Harness.campaign -> unit
(** Time LBO per collector × heap factor, geomean over the core set. *)

val table_vii : Harness.campaign -> unit
(** Cycle LBO per collector × heap factor. *)

val table_viii : ?factor:float -> Harness.campaign -> unit
(** Per-benchmark time LBO at 3.0× with summary statistics. *)

val table_ix : ?factor:float -> Harness.campaign -> unit
(** Per-benchmark cycle LBO at 3.0×. *)

val table_x : Harness.campaign -> unit
(** Percent of wall-clock time in STW pauses per collector × factor. *)

val table_xi : Harness.campaign -> unit
(** Percent of cycles in STW pauses per collector × factor. *)

val fig1 : ?bench:string -> Harness.campaign -> unit
(** Fig. 1(a,b): Serial vs G1 on lusearch — total time and total cycles
    across heap sizes, normalised to the best value. *)

val fig2 : ?bench:string -> Harness.campaign -> unit
(** Fig. 2(a,b): G1 vs Shenandoah on lusearch — mean pause time and
    99.99th-percentile metered latency across heap sizes. *)

val fig3 : ?bench:string -> ?factor:float -> Harness.campaign -> unit
(** Fig. 3: pause-time distribution (ms at percentiles) at 3.0×. *)

val fig4 : ?bench:string -> ?factor:float -> Harness.campaign -> unit
(** Fig. 4: metered-latency distribution (ms at percentiles) at 3.0×. *)

(** {1 Extensions beyond the paper's artefacts} *)

val table_energy : ?factor:float -> Harness.campaign -> unit
(** LBO under the energy metric — the "additional metric" the paper
    recommends (§IV-E); parallelism and stalls price differently than
    under time or cycles. *)

val confidence_note : ?factor:float -> Harness.campaign -> unit
(** The paper's CI footnotes, computed: the largest 95% confidence
    interval (as a percent of the mean) over all per-benchmark LBO cells
    at the given factor, per metric. *)

val pause_breakdown : ?factor:float -> Harness.campaign -> unit
(** Pause counts by reason (young / full / init-mark / final-mark /
    degenerated ...) per collector — the §IV-C d log analysis that exposed
    Shenandoah's pathological modes, as a first-class report. *)

val latency_summary : ?factor:float -> Harness.campaign -> unit
(** p50/p99/p99.99 metered latency for every latency-sensitive benchmark
    and collector at one heap factor (generalises Figure 4). *)

val all : Harness.campaign -> unit
(** Everything, in paper order, with headers. *)
