module Machine = Gcr_mach.Machine
module Cost_model = Gcr_mach.Cost_model
module Registry = Gcr_gcs.Registry
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Cache_key = Gcr_sched.Cache_key
module Controller = Gcr_policy.Controller

type cell = {
  index : int;
  invocation : int;
  bench : string;
  gc : Registry.kind;
  factor : float;
  controller : Controller.spec;
  config : Run.config;
  key : string;
}

type group = {
  invocation : int;
  spec : Spec.t;
  seed : int;
  cells : cell list;
}

type t = { groups : group list; n_cells : int }

let groups t = t.groups

let n_cells t = t.n_cells

let cells t = List.concat_map (fun g -> g.cells) t.groups

let heap_words ~region_words ~minheap ~factor =
  let words = int_of_float (Float.round (factor *. float_of_int minheap)) in
  (* round up to whole regions *)
  (words + region_words - 1) / region_words * region_words

let seed_of ~base_seed ~invocation = base_seed + (1000 * (invocation + 1))

(* --- Cost model for the size-aware fabric scheduler. ---

   A unitless estimate of how long a cell takes to simulate; only the
   relative order of group costs matters.  The dominant term is workload
   volume (threads × packets — simulation steps scale with it); tight
   heaps add collection work on top, roughly in proportion to how close
   the heap sits to the minimum (factor 1.3 reclaims far more often than
   factor 6.0), hence the [1 + 2/factor] weight.  Epsilon never collects:
   weight 1.  Deliberately crude — the scheduler only needs "this group
   is several times that one", and work-stealing mops up the residue. *)

let spec_weight (spec : Spec.t) =
  float_of_int (spec.Spec.mutator_threads * spec.Spec.packets_per_thread)

let cell_cost c =
  let gc_weight =
    match c.gc with
    | Registry.Epsilon -> 1.0
    | _ -> if c.factor > 0.0 then 1.0 +. (2.0 /. c.factor) else 1.0
  in
  spec_weight c.config.Run.spec *. gc_weight

let group_cost g = List.fold_left (fun acc c -> acc +. cell_cost c) 0.0 g.cells

(* Probe cells (minheap search) run one invocation of the workload with no
   collector pressure worth modelling: weight them as a bare workload. *)
let probe_cost spec = spec_weight spec

(* The digest a socket worker pins in its handshake: every cell key (each
   already a digest of the full run config) plus the cell count, so two
   builds disagreeing on any planned cell — or on the cache-key format —
   cannot silently serve each other. *)
let digest t =
  let b = Buffer.create (40 * t.n_cells) in
  Buffer.add_string b (string_of_int t.n_cells);
  List.iter
    (fun g ->
      List.iter
        (fun c ->
          Buffer.add_char b '|';
          Buffer.add_string b c.key)
        g.cells)
    t.groups;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* Epsilon participates implicitly even if not requested; it leads the
   cell order exactly as the serial harness always emitted it. *)
let with_epsilon gcs =
  if List.mem Registry.Epsilon gcs then gcs else Registry.Epsilon :: gcs

let plan ?(controllers = [ Controller.fixed ]) ~invocations ~base_seed ~machine ~cost
    ~region_words ~heap_factors ~minheap ~specs ~gcs () =
  let gcs = with_epsilon gcs in
  let controllers = if controllers = [] then [ Controller.fixed ] else controllers in
  let index = ref 0 in
  let cell ~invocation ~spec ~seed ~gc ~factor ~controller =
    let bench = spec.Spec.name in
    let heap_words =
      match gc with
      | Registry.Epsilon -> machine.Machine.memory_words
      | _ -> heap_words ~region_words ~minheap:(minheap ~bench) ~factor
    in
    let config =
      {
        Run.spec;
        gc;
        heap_words;
        machine;
        cost;
        seed;
        region_words;
        max_events = None;
        make_collector = None;
        tape = Run.Tape_off;
        controller;
      }
    in
    let key =
      match Cache_key.of_config config with
      | Some digest -> digest
      | None -> assert false (* make_collector is None above *)
    in
    let c = { index = !index; invocation; bench; gc; factor; controller; config; key } in
    incr index;
    c
  in
  let groups = ref [] in
  (* Interleave configurations across invocations (§IV-A d): the outer
     walk is invocation-major, so consecutive groups belong to different
     grid rows and system drift spreads evenly over the whole grid. *)
  for invocation = 0 to invocations - 1 do
    let seed = seed_of ~base_seed ~invocation in
    List.iter
      (fun spec ->
        let cells =
          List.concat_map
            (fun gc ->
              match gc with
              | Registry.Epsilon ->
                  (* no heap pressure, nothing for a controller to move:
                     one cell, always [Fixed] *)
                  [
                    cell ~invocation ~spec ~seed ~gc ~factor:0.0
                      ~controller:Controller.fixed;
                  ]
              | _ ->
                  List.concat_map
                    (fun factor ->
                      List.map
                        (fun controller ->
                          cell ~invocation ~spec ~seed ~gc ~factor ~controller)
                        controllers)
                    heap_factors)
            gcs
        in
        groups := { invocation; spec; seed; cells } :: !groups)
      specs
  done;
  { groups = List.rev !groups; n_cells = !index }
