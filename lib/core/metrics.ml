module Measurement = Gcr_runtime.Measurement

type t = Wall_time | Cpu_cycles | Energy

let all = [ Wall_time; Cpu_cycles; Energy ]

let name = function
  | Wall_time -> "wall-clock time"
  | Cpu_cycles -> "CPU cycles"
  | Energy -> "energy"

(* Static (idle) power per CPU relative to an active cycle. *)
let idle_cost_per_cycle = 0.15

let machine_cpus = 16
(* energy model assumes the default machine *)

let energy_total (m : Measurement.t) =
  let active = float_of_int (Measurement.cycles_total m) in
  let idle = (float_of_int (m.Measurement.wall_total * machine_cpus)) -. active in
  active +. (idle_cost_per_cycle *. Float.max 0.0 idle)

let total metric (m : Measurement.t) =
  match metric with
  | Wall_time -> float_of_int m.Measurement.wall_total
  | Cpu_cycles -> float_of_int (Measurement.cycles_total m)
  | Energy -> energy_total m

let apparent_gc metric (m : Measurement.t) =
  match metric with
  | Wall_time -> float_of_int m.Measurement.wall_stw
  | Cpu_cycles -> float_of_int (Measurement.cycles_gc_apparent m)
  | Energy ->
      (* GC-thread cycles plus the idle energy of the pause windows. *)
      float_of_int (Measurement.cycles_gc_apparent m)
      +. (idle_cost_per_cycle
         *. float_of_int (m.Measurement.wall_stw * machine_cpus))

let other metric m = total metric m -. apparent_gc metric m
