(* Per-process phase self-time accounting for `gcr campaign --profile`.

   Three wall-clock accumulators — run setup (everything Run.execute does
   before handing control to the engine), tape preparation (generation,
   store round-trips, image decode), and simulation (Engine.run itself) —
   kept as atomic microsecond counters so pool domains can add to them
   concurrently.  Fabric workers run in their own processes and ship
   their deltas back inside result frames; the harness sums both sources.

   Host-time only: nothing here feeds back into simulated results. *)

type snapshot = { setup_us : int; tape_us : int; simulate_us : int }

let zero = { setup_us = 0; tape_us = 0; simulate_us = 0 }

let setup = Atomic.make 0

let tape = Atomic.make 0

let simulate = Atomic.make 0

let add counter seconds =
  let us = int_of_float (seconds *. 1e6) in
  if us > 0 then ignore (Atomic.fetch_and_add counter us)

let add_setup_s s = add setup s

let add_tape_s s = add tape s

let add_simulate_s s = add simulate s

let snapshot () =
  {
    setup_us = Atomic.get setup;
    tape_us = Atomic.get tape;
    simulate_us = Atomic.get simulate;
  }

let diff a b =
  {
    setup_us = a.setup_us - b.setup_us;
    tape_us = a.tape_us - b.tape_us;
    simulate_us = a.simulate_us - b.simulate_us;
  }

let seconds us = float_of_int us /. 1e6
