module Machine = Gcr_mach.Machine
module Obs = Gcr_obs.Obs
module Cost_model = Gcr_mach.Cost_model
module Heap = Gcr_heap.Heap
module Engine = Gcr_engine.Engine
module Prng = Gcr_util.Prng
module Gc_types = Gcr_gcs.Gc_types
module Registry = Gcr_gcs.Registry
module Spec = Gcr_workloads.Spec
module Mutator = Gcr_workloads.Mutator
module Longlived = Gcr_workloads.Longlived
module Latency = Gcr_workloads.Latency
module Decision_source = Gcr_workloads.Decision_source
module Tape = Gcr_tape.Tape
module Controller = Gcr_policy.Controller

type tape_mode =
  | Tape_off
  | Tape_record of (Tape.t -> unit)
  | Tape_replay of Decision_source.image

type probe = {
  probe_heap : Heap.t;
  probe_roots : (Gcr_heap.Obj_model.id -> unit) -> unit;
  probe_packets : unit -> int;
}

type config = {
  spec : Spec.t;
  gc : Registry.kind;
  heap_words : int;
  machine : Machine.t;
  cost : Cost_model.t;
  seed : int;
  region_words : int;
  max_events : int option;
  make_collector : (Gc_types.ctx -> Gc_types.t) option;
  tape : tape_mode;
  controller : Controller.spec;
}

let default_region_words = 256

(* A per-worker pool of the big per-run structures.  The engine (and the
   obs spine it owns) and the heap are built on the first run through a
   state and reset in place by every later one; collectors, mutators, and
   PRNGs are still constructed per run (they are cheap and deeply
   config-dependent).  The heap is created against the pooled engine's
   spine, and the engine is never replaced within a state, so the
   heap→obs reference stays correct across reuse. *)
type state = {
  mutable st_engine : Engine.t option;
  mutable st_heap : Heap.t option;
}

let new_state () = { st_engine = None; st_heap = None }

let state_heap state = state.st_heap

(* Warm-path opt-out for A/B comparison and bisecting: GCR_WARM=0 makes
   every executor build fresh state per cell, as before.  Read per call —
   the bench flips it mid-process. *)
let warm_enabled () =
  match Sys.getenv_opt "GCR_WARM" with
  | Some ("0" | "false" | "off") -> false
  | Some _ | None -> true

(* Healthy runs use a few engine events per packet plus a few dozen per
   collection; 100x headroom separates "slow" from "pathological". *)
let default_max_events (spec : Spec.t) =
  (100 * spec.Spec.mutator_threads * spec.Spec.packets_per_thread) + 5_000_000

let default_config ~spec ~gc ~heap_words ~seed =
  {
    spec;
    gc;
    heap_words;
    machine = Machine.default;
    cost = Cost_model.default;
    seed;
    region_words = default_region_words;
    max_events = None;
    make_collector = None;
    tape = Tape_off;
    controller = Controller.fixed;
  }

let check_replay_image config (spec : Spec.t) image =
  let fail fmt =
    Printf.ksprintf (fun s -> invalid_arg ("Run.execute: replay tape " ^ s)) fmt
  in
  if Decision_source.image_spec_digest image <> Spec.digest spec then
    fail "is for benchmark %S (spec digest %s), which is not the spec of this run"
      (Decision_source.image_benchmark image)
      (Decision_source.image_spec_digest image);
  if Decision_source.image_seed image <> config.seed then
    fail "was recorded under seed %d, run uses %d"
      (Decision_source.image_seed image)
      config.seed;
  if Decision_source.image_threads image <> spec.Spec.mutator_threads then
    fail "has %d streams, spec has %d threads"
      (Decision_source.image_threads image)
      spec.Spec.mutator_threads

(* A run split at the engine boundary: [prepare] builds the whole stack
   and starts the workload without processing a single event; [step]
   advances it to a time horizon; [finish] runs it to completion and
   produces the measurement.  [execute] below is prepare∘finish — the
   historical single-shot path, bit-identical to the pre-split code.  The
   split exists for the multi-tenant memory market, which interleaves
   several prepared runs in epochs under one machine-wide budget. *)
type session = {
  ses_config : config;
  ses_engine : Engine.t;
  ses_heap : Heap.t;
  ses_obs : Obs.t;
  ses_gc : Gc_types.t;
  ses_capacity_words : int;
  ses_has_latency : bool;
  ses_max_events : int;
  ses_capture : unit -> unit;
  mutable ses_outcome : Engine.outcome option;
}

let prepare ?state ?(on_engine = fun (_ : Engine.t) -> ()) ?on_pause
    ?arrivals_override config =
  let setup_started = Unix.gettimeofday () in
  let spec = config.spec in
  (match Spec.validate spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Run.execute: " ^ msg));
  let capacity_words =
    match config.gc with
    | Registry.Epsilon -> config.machine.Machine.memory_words
    | Registry.Serial | Registry.Parallel | Registry.G1 | Registry.Shenandoah
    | Registry.Zgc | Registry.Shenandoah_gen | Registry.Lxr
    | Registry.Serial_pretenure ->
        config.heap_words
  in
  let cpus = config.machine.Machine.cpus in
  let safepoint_sync_cycles =
    config.cost.Cost_model.safepoint_global
    + (config.cost.Cost_model.safepoint_per_thread * spec.Spec.mutator_threads)
  in
  let cache_disruption_cycles = config.cost.Cost_model.cache_disruption_per_pause in
  let engine =
    match state with
    | Some { st_engine = Some e; _ } ->
        Engine.reset e ~cpus ~safepoint_sync_cycles ~cache_disruption_cycles ();
        e
    | Some s ->
        let e = Engine.create ~cpus ~safepoint_sync_cycles ~cache_disruption_cycles () in
        s.st_engine <- Some e;
        e
    | None -> Engine.create ~cpus ~safepoint_sync_cycles ~cache_disruption_cycles ()
  in
  on_engine engine;
  let obs = Engine.obs engine in
  let heap =
    match state with
    | Some { st_heap = Some h; _ } ->
        Heap.reset h ~capacity_words ~region_words:config.region_words;
        h
    | Some s ->
        let h = Heap.create ~obs ~capacity_words ~region_words:config.region_words () in
        s.st_heap <- Some h;
        h
    | None -> Heap.create ~obs ~capacity_words ~region_words:config.region_words ()
  in
  let ctx = Gc_types.make_ctx ~heap ~engine ~cost:config.cost ~machine:config.machine in
  let gc =
    match config.make_collector with
    | Some make -> make ctx
    | None -> Registry.make config.gc ctx
  in
  (* The sizing controller observes at pause_end — the world is stopped
     and this collection's reclamation is complete, so live_words is as
     honest as it gets and resizing the region array is safe.  [Fixed]
     wires nothing at all: no subscriber, no events, and therefore a
     spine bit-identical to a build that predates controllers. *)
  if not (Controller.is_fixed config.controller) then begin
    let ctl =
      Controller.make config.controller
        ~min_heap_words:(2 * config.region_words)
        ~max_heap_words:config.machine.Machine.memory_words
    in
    let cause_id = Obs.intern obs (Controller.name config.controller) in
    Obs.subscribe obs
      {
        Obs.sub_name = "heap-controller";
        on_event =
          (fun ~time ~code ~a:_ ~b:_ ~c:_ ->
            if code = Gcr_obs.Event.code_pause_end then begin
              let sample =
                {
                  Controller.now = time;
                  live_words = Heap.live_words_exact heap;
                  capacity_words = Heap.capacity_words heap;
                  allocated_words = Heap.words_allocated_total heap;
                  gc_cycles = Obs.cycles_of_kind obs Gcr_obs.Event.gc_worker_kind;
                  mutator_cycles = Obs.cycles_of_kind obs Gcr_obs.Event.mutator_kind;
                }
              in
              match Controller.observe ctl sample with
              | None -> ()
              | Some w -> ignore (Heap.set_capacity heap ~capacity_words:w ~cause_id)
            end);
      }
  end;
  (* The PRNG split order (long-lived graph, then one stream per mutator
     thread, then the latency schedule) is the contract tapes are recorded
     against — Tape_gen.generate replicates it exactly.  In replay mode no
     root generator exists at all: every decision comes off the image. *)
  let sources, arrivals_for, capture_tape =
    match config.tape with
    | Tape_off ->
        let root_prng = Prng.create config.seed in
        let (_ : Prng.t) = Prng.split root_prng in
        let sources =
          List.init spec.Spec.mutator_threads (fun _ ->
              Decision_source.live ~spec (Prng.split root_prng))
        in
        (sources, (fun () -> Latency.arrival_schedule ~spec
                     ~threads:spec.Spec.mutator_threads (Prng.split root_prng)),
         fun _ _ -> ())
    | Tape_record sink ->
        let root_prng = Prng.create config.seed in
        let (_ : Prng.t) = Prng.split root_prng in
        let sources =
          List.init spec.Spec.mutator_threads (fun _ ->
              Decision_source.record ~spec (Prng.split root_prng))
        in
        let capture sources arrivals =
          sink
            {
              Tape.benchmark = spec.Spec.name;
              spec_digest = Spec.digest spec;
              seed = config.seed;
              streams =
                Array.of_list (List.map Decision_source.recorded_stream sources);
              arrivals;
            }
        in
        (sources, (fun () -> Latency.arrival_schedule ~spec
                     ~threads:spec.Spec.mutator_threads (Prng.split root_prng)),
         capture)
    | Tape_replay image ->
        check_replay_image config spec image;
        let sources =
          List.init spec.Spec.mutator_threads (fun thread ->
              Decision_source.replay image ~thread)
        in
        (sources, (fun () -> Decision_source.image_arrivals image), fun _ _ -> ())
  in
  let longlived = Longlived.create ctx ~spec in
  let mutators =
    List.map2
      (fun index ds -> Mutator.create ctx ~gc ~spec ~longlived ~ds ~index)
      (List.init spec.Spec.mutator_threads Fun.id)
      sources
  in
  (ctx.Gc_types.iter_roots :=
     fun f ->
       Longlived.iter_roots longlived f;
       List.iter (fun m -> Mutator.iter_roots m f) mutators);
  (* The pause probe fires on the pause_begin event itself — after the
     world is stopped, before the collector's pause callback has run (and
     thus before anything is freed this pause): every collector sees the
     same heap at the same safepoints. *)
  (match on_pause with
  | None -> ()
  | Some hook ->
      let probe =
        {
          probe_heap = heap;
          probe_roots = (fun f -> !(ctx.Gc_types.iter_roots) f);
          probe_packets =
            (fun () ->
              List.fold_left (fun acc m -> acc + Mutator.packets_executed m) 0 mutators);
        }
      in
      Obs.subscribe obs
        {
          Obs.sub_name = "pause-probe";
          on_event =
            (fun ~time:_ ~code ~a:_ ~b:_ ~c:_ ->
              if code = Gcr_obs.Event.code_pause_begin then hook probe);
        });
  let arrivals = ref [||] in
  let latency =
    match spec.Spec.latency with
    | None ->
        List.iter Mutator.start_batch mutators;
        None
    | Some _ ->
        arrivals :=
          (match arrivals_override with Some a -> a | None -> arrivals_for ());
        let l = Latency.create ctx ~spec ~mutators ~arrivals:!arrivals in
        Latency.start l;
        Some l
  in
  let max_events =
    match config.max_events with Some n -> n | None -> default_max_events spec
  in
  Profile.add_setup_s (Unix.gettimeofday () -. setup_started);
  {
    ses_config = config;
    ses_engine = engine;
    ses_heap = heap;
    ses_obs = obs;
    ses_gc = gc;
    ses_capacity_words = capacity_words;
    ses_has_latency = latency <> None;
    ses_max_events = max_events;
    (* Aborted runs still leave a valid tape: the captured prefix plus the
       cursor's PRNG fallback reproduce any longer sibling run exactly. *)
    ses_capture = (fun () -> capture_tape sources !arrivals);
    ses_outcome = None;
  }

let session_engine s = s.ses_engine

let session_heap s = s.ses_heap

let session_obs s = s.ses_obs

let session_now s = Engine.now s.ses_engine

let step s ~until =
  match s.ses_outcome with
  | Some _ -> false
  | None ->
      let simulate_started = Unix.gettimeofday () in
      let r = Engine.run_until s.ses_engine ~time:until ~max_events:s.ses_max_events () in
      Profile.add_simulate_s (Unix.gettimeofday () -. simulate_started);
      (match r with
      | Some o -> s.ses_outcome <- Some o
      | None -> ());
      r = None

let finish s =
  (match s.ses_outcome with
  | Some _ -> ()
  | None ->
      let simulate_started = Unix.gettimeofday () in
      let o = Engine.run s.ses_engine ~max_events:s.ses_max_events () in
      Profile.add_simulate_s (Unix.gettimeofday () -. simulate_started);
      s.ses_outcome <- Some o);
  let outcome =
    match s.ses_outcome with
    | Some Engine.All_mutators_finished -> Measurement.Completed
    | Some (Engine.Aborted reason) -> Measurement.Failed reason
    | None -> assert false
  in
  s.ses_capture ();
  let config = s.ses_config in
  let spec = config.spec in
  Measurement.of_obs ~benchmark:spec.Spec.name ~gc:(Registry.name config.gc)
    ~heap_words:s.ses_capacity_words ~seed:config.seed ~outcome
    ~wall_total:(Engine.now s.ses_engine) ~has_latency:s.ses_has_latency
    ~allocated_words:(Heap.words_allocated_total s.ses_heap)
    ~allocated_objects:(Heap.objects_allocated_total s.ses_heap)
    ~gc_stats:(s.ses_gc.Gc_types.stats ()) s.ses_obs

let execute ?state ?on_engine ?on_pause config =
  finish (prepare ?state ?on_engine ?on_pause config)

let execute_ideal ~spec ~machine ~seed =
  let config =
    {
      spec;
      gc = Registry.Epsilon;
      heap_words = machine.Machine.memory_words;
      machine;
      cost = Cost_model.zero_barriers Cost_model.default;
      seed;
      region_words = default_region_words;
      max_events = None;
      make_collector = None;
      tape = Tape_off;
      controller = Controller.fixed;
    }
  in
  execute config
