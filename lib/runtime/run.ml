module Machine = Gcr_mach.Machine
module Obs = Gcr_obs.Obs
module Cost_model = Gcr_mach.Cost_model
module Heap = Gcr_heap.Heap
module Engine = Gcr_engine.Engine
module Prng = Gcr_util.Prng
module Gc_types = Gcr_gcs.Gc_types
module Registry = Gcr_gcs.Registry
module Spec = Gcr_workloads.Spec
module Mutator = Gcr_workloads.Mutator
module Longlived = Gcr_workloads.Longlived
module Latency = Gcr_workloads.Latency

type config = {
  spec : Spec.t;
  gc : Registry.kind;
  heap_words : int;
  machine : Machine.t;
  cost : Cost_model.t;
  seed : int;
  region_words : int;
  max_events : int option;
  make_collector : (Gc_types.ctx -> Gc_types.t) option;
}

let default_region_words = 256

(* Healthy runs use a few engine events per packet plus a few dozen per
   collection; 100x headroom separates "slow" from "pathological". *)
let default_max_events (spec : Spec.t) =
  (100 * spec.Spec.mutator_threads * spec.Spec.packets_per_thread) + 5_000_000

let default_config ~spec ~gc ~heap_words ~seed =
  {
    spec;
    gc;
    heap_words;
    machine = Machine.default;
    cost = Cost_model.default;
    seed;
    region_words = default_region_words;
    max_events = None;
    make_collector = None;
  }

let execute ?(on_engine = fun (_ : Engine.t) -> ()) config =
  let spec = config.spec in
  (match Spec.validate spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Run.execute: " ^ msg));
  let capacity_words =
    match config.gc with
    | Registry.Epsilon -> config.machine.Machine.memory_words
    | Registry.Serial | Registry.Parallel | Registry.G1 | Registry.Shenandoah
    | Registry.Zgc | Registry.Shenandoah_gen ->
        config.heap_words
  in
  let engine =
    Engine.create ~cpus:config.machine.Machine.cpus
      ~safepoint_sync_cycles:
        (config.cost.Cost_model.safepoint_global
        + (config.cost.Cost_model.safepoint_per_thread * spec.Spec.mutator_threads))
      ~cache_disruption_cycles:config.cost.Cost_model.cache_disruption_per_pause ()
  in
  on_engine engine;
  let obs = Engine.obs engine in
  let heap = Heap.create ~obs ~capacity_words ~region_words:config.region_words () in
  let ctx = Gc_types.make_ctx ~heap ~engine ~cost:config.cost ~machine:config.machine in
  let gc =
    match config.make_collector with
    | Some make -> make ctx
    | None -> Registry.make config.gc ctx
  in
  let root_prng = Prng.create config.seed in
  let longlived = Longlived.create ctx ~spec ~prng:(Prng.split root_prng) in
  let mutators =
    List.init spec.Spec.mutator_threads (fun index ->
        Mutator.create ctx ~gc ~spec ~longlived ~prng:(Prng.split root_prng) ~index)
  in
  (ctx.Gc_types.iter_roots :=
     fun f ->
       Longlived.iter_roots longlived f;
       List.iter (fun m -> Mutator.iter_roots m f) mutators);
  let latency =
    match spec.Spec.latency with
    | None ->
        List.iter Mutator.start_batch mutators;
        None
    | Some _ ->
        let l = Latency.create ctx ~spec ~mutators ~prng:(Prng.split root_prng) in
        Latency.start l;
        Some l
  in
  let max_events =
    match config.max_events with Some n -> n | None -> default_max_events spec
  in
  let outcome =
    match Engine.run engine ~max_events () with
    | Engine.All_mutators_finished -> Measurement.Completed
    | Engine.Aborted reason -> Measurement.Failed reason
  in
  Measurement.of_obs ~benchmark:spec.Spec.name ~gc:(Registry.name config.gc)
    ~heap_words:capacity_words ~seed:config.seed ~outcome
    ~wall_total:(Engine.now engine) ~has_latency:(latency <> None)
    ~allocated_words:(Heap.words_allocated_total heap)
    ~allocated_objects:(Heap.objects_allocated_total heap)
    ~gc_stats:(gc.Gc_types.stats ()) obs

let execute_ideal ~spec ~machine ~seed =
  let config =
    {
      spec;
      gc = Registry.Epsilon;
      heap_words = machine.Machine.memory_words;
      machine;
      cost = Cost_model.zero_barriers Cost_model.default;
      seed;
      region_words = default_region_words;
      max_events = None;
      make_collector = None;
    }
  in
  execute config
