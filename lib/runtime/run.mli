(** Execute one benchmark invocation under one collector.

    Builds the whole stack — machine, heap, engine, collector, workload —
    runs it to completion (or failure), and returns the measurement.  Runs
    are deterministic: equal configs (including seed) yield equal
    measurements. *)

type tape_mode =
  | Tape_off  (** decisions drawn live from the seeded PRNG (historical path) *)
  | Tape_record of (Gcr_tape.Tape.t -> unit)
      (** live draws, teed into a tape handed to the sink after the run
          (aborted runs included — the captured prefix is still valid) *)
  | Tape_replay of Gcr_workloads.Decision_source.image
      (** decisions replayed from a prebuilt image; bit-identical to the
          live run under every collector, including past the end of the
          recorded stream (PRNG fallback) *)

type config = {
  spec : Gcr_workloads.Spec.t;
  gc : Gcr_gcs.Registry.kind;
  heap_words : int;
      (** ignored for Epsilon, which gets the machine's memory instead
          (matching the paper's use of Epsilon wherever it physically
          fits) *)
  machine : Gcr_mach.Machine.t;
  cost : Gcr_mach.Cost_model.t;
  seed : int;
  region_words : int;
  max_events : int option;
      (** engine event budget; [None] = a generous default scaled to the
          workload.  Runs that exceed it abort with a failure — the
          simulator's "this configuration thrashes beyond usefulness"
          verdict (used aggressively by min-heap probes) *)
  make_collector : (Gcr_gcs.Gc_types.ctx -> Gcr_gcs.Gc_types.t) option;
      (** override the collector constructor (ablations with custom
          collector configs); [gc] still labels the measurement and picks
          the Epsilon heap rule.  [None] = registry default *)
  tape : tape_mode;
      (** where workload decisions come from.  Replay refuses an image
          whose spec digest, seed, or thread count disagree with this
          config ([Invalid_argument]) *)
  controller : Gcr_policy.Controller.spec;
      (** the dynamic heap-sizing controller.  [Fixed] (the default)
          attaches nothing at all — runs are bit-identical to builds that
          predate controllers.  Non-fixed controllers observe at every
          pause_end and may grow/shrink the heap between the configured
          [heap_words] floor and the machine's memory *)
}

val default_region_words : int
(** 256 words (2 KiB): small enough that per-thread allocation buffers
    (one region each) stay a small fraction of even the smallest heaps. *)

type state
(** A per-worker pool of the expensive per-run structures (engine + obs
    spine, heap + object store).  The first {!execute} through a state
    builds them; every later one resets them in place — same results,
    bit for bit, without the per-cell allocation storm.  A state must
    only ever be used by one domain at a time. *)

val new_state : unit -> state
(** An empty pool; the first run through it populates it. *)

val state_heap : state -> Gcr_heap.Heap.t option
(** The pooled heap, if one has been built — post-run inspection for the
    reuse≡fresh differential suite ({!Gcr_heap.Heap.history_digest}
    comparison). *)

val warm_enabled : unit -> bool
(** Whether executors should pool run state across cells.  [GCR_WARM=0]
    (or [false] / [off]) disables it — the A/B switch the fabric smoke
    test and the cold benchmark kernels use.  Read from the environment
    on every call. *)

val default_config :
  spec:Gcr_workloads.Spec.t -> gc:Gcr_gcs.Registry.kind -> heap_words:int -> seed:int -> config
(** Default machine, cost model, and {!default_region_words} regions. *)

type probe = {
  probe_heap : Gcr_heap.Heap.t;
  probe_roots : (Gcr_heap.Obj_model.id -> unit) -> unit;
      (** the collector-facing root iterator (long-lived spine + every
          mutator's roots) *)
  probe_packets : unit -> int;
      (** total packets executed across all mutator threads — a
          collector-independent progress coordinate *)
}
(** A safepoint observation window handed to [on_pause] (below). *)

type session
(** A prepared run whose engine has not finished: the stack is built, the
    workload is started, and events are processed on demand.  Obtained
    from {!prepare}; advanced with {!step}; closed with {!finish}.  The
    multi-tenant memory market interleaves several sessions in epochs. *)

val prepare :
  ?state:state ->
  ?on_engine:(Gcr_engine.Engine.t -> unit) ->
  ?on_pause:(probe -> unit) ->
  ?arrivals_override:int array ->
  config ->
  session
(** Build the stack and start the workload without processing any events.
    [arrivals_override] replaces the PRNG-drawn request arrival schedule
    (latency-sensitive specs only) — the market's diurnal waves enter
    here, leaving {!Gcr_workloads.Spec} and its digest untouched.  Other
    optional arguments as in {!execute}. *)

val session_engine : session -> Gcr_engine.Engine.t

val session_heap : session -> Gcr_heap.Heap.t

val session_obs : session -> Gcr_obs.Obs.t

val session_now : session -> int
(** The session's simulated clock (last processed event). *)

val step : session -> until:int -> bool
(** Advance until the next event lies strictly beyond [until].  [true]
    means the run is still in flight; [false] means it ended (finished,
    aborted, or already over) — {!finish} has the verdict. *)

val finish : session -> Measurement.t
(** Run any remaining events to completion and produce the measurement.
    [execute config] ≡ [finish (prepare config)], bit for bit. *)

val execute :
  ?state:state ->
  ?on_engine:(Gcr_engine.Engine.t -> unit) -> ?on_pause:(probe -> unit) -> config -> Measurement.t
(** [state], when given, recycles that pool's engine and heap instead of
    building fresh ones — the warm execution path.  Results are
    bit-identical with or without it ([test/test_warm.ml] enforces
    this), including after a run that aborted or raised: resets assume
    no clean end state.

    [on_engine] runs right after the engine (and its event spine) is
    created or reset, before any heap or collector state exists — the
    place to attach trace subscribers ({!Gcr_obs.Obs.attach_trace}) or
    keep the engine for post-run inspection.

    [on_pause] fires at every pause_begin event: the world is stopped and
    the collector's pause work has not started, so the probe sees the heap
    exactly as the mutators left it.  The differential live-set oracle
    ({!test_liveset_diff}) snapshots reachability here.  Probing does not
    perturb the measurement (observation is passive). *)

val execute_ideal : spec:Gcr_workloads.Spec.t -> machine:Gcr_mach.Machine.t -> seed:int -> Measurement.t
(** Ground truth for the validation study: Epsilon with all barrier costs
    zeroed on a memory-capacity heap — the closest measurable realisation
    of the paper's notional zero-cost GC. *)
