module Units = Gcr_util.Units

type outcome = Completed | Failed of string

type t = {
  benchmark : string;
  gc : string;
  heap_words : int;
  seed : int;
  outcome : outcome;
  wall_total : int;
  wall_stw : int;
  cycles_mutator : int;
  cycles_gc : int;
  cycles_gc_stw : int;
  pauses : Gcr_engine.Engine.pause list;
  latency_metered : Gcr_util.Histogram.t option;
  latency_simple : Gcr_util.Histogram.t option;
  allocated_words : int;
  allocated_objects : int;
  gc_stats : Gcr_gcs.Gc_types.stats;
}

let completed t = t.outcome = Completed

let cycles_total t = t.cycles_mutator + t.cycles_gc

let time_total t = t.wall_total

let time_gc t = t.wall_stw

let time_other t = t.wall_total - t.wall_stw

let cycles_gc_apparent t = t.cycles_gc

let cycles_other t = cycles_total t - cycles_gc_apparent t

let cycles_gc_pause_window t = t.cycles_gc_stw

let stw_time_fraction t =
  if t.wall_total = 0 then 0.0 else float_of_int t.wall_stw /. float_of_int t.wall_total

let stw_cycle_fraction t =
  let total = cycles_total t in
  if total = 0 then 0.0 else float_of_int t.cycles_gc_stw /. float_of_int total

let pause_count t = List.length t.pauses

let mean_pause_ms t =
  match t.pauses with
  | [] -> 0.0
  | pauses ->
      let total =
        List.fold_left (fun acc (p : Gcr_engine.Engine.pause) -> acc + p.duration) 0 pauses
      in
      Units.ms_of_cycles total /. float_of_int (List.length pauses)

let pp ppf t =
  let status = match t.outcome with Completed -> "ok" | Failed reason -> "FAILED: " ^ reason in
  Format.fprintf ppf
    "%s/%s heap=%a [%s] wall=%.2fms (stw %.1f%%) cycles: mutator=%a gc=%a pauses=%d"
    t.benchmark t.gc Units.pp_words t.heap_words status
    (Units.ms_of_cycles t.wall_total)
    (100.0 *. stw_time_fraction t)
    Units.pp_cycles t.cycles_mutator Units.pp_cycles t.cycles_gc (pause_count t)
