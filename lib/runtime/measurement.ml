module Units = Gcr_util.Units
module Histogram = Gcr_util.Histogram
module Obs = Gcr_obs.Obs
module Event = Gcr_obs.Event

type outcome = Completed | Failed of string

type t = {
  benchmark : string;
  gc : string;
  heap_words : int;
  seed : int;
  outcome : outcome;
  wall_total : int;
  wall_stw : int;
  cycles_mutator : int;
  cycles_gc : int;
  cycles_gc_stw : int;
  pauses : Gcr_engine.Engine.pause list;
  pause_hist : Gcr_util.Histogram.t;
  latency_metered : Gcr_util.Histogram.t option;
  latency_simple : Gcr_util.Histogram.t option;
  allocated_words : int;
  allocated_objects : int;
  gc_stats : Gcr_gcs.Gc_types.stats;
  limit_changes : int;
  heap_limit_peak_words : int;
  footprint_word_cycles : float;
      (** time-weighted integral of the heap limit over the run
          (word·cycles) — the memory half of the memory·time cost a
          sizing controller trades against; float because the product
          overflows 63 bits on long runs *)
}

let completed t = t.outcome = Completed

let cycles_total t = t.cycles_mutator + t.cycles_gc

let time_total t = t.wall_total

let time_gc t = t.wall_stw

let time_other t = t.wall_total - t.wall_stw

let cycles_gc_apparent t = t.cycles_gc

let cycles_other t = cycles_total t - cycles_gc_apparent t

let cycles_gc_pause_window t = t.cycles_gc_stw

let stw_time_fraction t =
  if t.wall_total = 0 then 0.0 else float_of_int t.wall_stw /. float_of_int t.wall_total

let stw_cycle_fraction t =
  let total = cycles_total t in
  if total = 0 then 0.0 else float_of_int t.cycles_gc_stw /. float_of_int total

let pause_count t = Histogram.count t.pause_hist

let mean_pause_ms t =
  (* [Histogram.total] is the exact sum of recorded durations, so this is
     bit-identical to folding over the pause list. *)
  match Histogram.count t.pause_hist with
  | 0 -> 0.0
  | n -> Units.ms_of_cycles (Histogram.total t.pause_hist) /. float_of_int n

let mean_footprint_words t =
  if t.wall_total = 0 then float_of_int t.heap_words
  else t.footprint_word_cycles /. float_of_int t.wall_total

let memory_time_integral t = t.footprint_word_cycles

let of_obs ~benchmark ~gc ~heap_words ~seed ~outcome ~wall_total ~has_latency
    ~allocated_words ~allocated_objects ~gc_stats obs =
  (* regions → words via the heap-init geometry the spine recorded *)
  let region_words = Obs.heap_region_words obs in
  {
    benchmark;
    gc;
    heap_words;
    seed;
    outcome;
    wall_total;
    wall_stw = Obs.wall_stw obs ~now:wall_total;
    cycles_mutator = Obs.cycles_of_kind obs Event.mutator_kind;
    cycles_gc = Obs.cycles_of_kind obs Event.gc_worker_kind;
    cycles_gc_stw = Obs.cycles_stw_of_kind obs Event.gc_worker_kind;
    pauses = Obs.pauses obs;
    pause_hist = Obs.pause_histogram obs;
    latency_metered = (if has_latency then Some (Obs.latency_metered obs) else None);
    latency_simple = (if has_latency then Some (Obs.latency_simple obs) else None);
    allocated_words;
    allocated_objects;
    gc_stats;
    limit_changes = Obs.limit_changes obs;
    heap_limit_peak_words = Obs.heap_limit_peak_regions obs * region_words;
    footprint_word_cycles =
      float_of_int (Obs.footprint_region_cycles obs ~now:wall_total)
      *. float_of_int region_words;
  }

let failure_line t =
  match t.outcome with
  | Completed -> None
  | Failed reason ->
      Some
        (Printf.sprintf "%s/%s heap=%d seed=%d failed: %s" t.benchmark t.gc
           t.heap_words t.seed reason)

let failure_lines ms = List.filter_map failure_line ms

let pp ppf t =
  let status = match t.outcome with Completed -> "ok" | Failed reason -> "FAILED: " ^ reason in
  Format.fprintf ppf
    "%s/%s heap=%a [%s] wall=%.2fms (stw %.1f%%) cycles: mutator=%a gc=%a pauses=%d"
    t.benchmark t.gc Units.pp_words t.heap_words status
    (Units.ms_of_cycles t.wall_total)
    (100.0 *. stw_time_fraction t)
    Units.pp_cycles t.cycles_mutator Units.pp_cycles t.cycles_gc (pause_count t)
