(** The record produced by one benchmark invocation — everything the
    paper's JVMTI/perf agent captures, plus simulator ground truth.

    Cost attribution follows Section III-C of the paper:
    - for wall-clock time, the apparent GC cost is the time inside
      stop-the-world pauses;
    - for CPU cycles, the apparent GC cost is every cycle consumed by GC
      threads (both inside pauses and concurrently), read "per-thread from
      the PMU".
    Barrier and allocation-path cycles remain inside the mutator cost —
    which is exactly why the methodology yields a {e lower} bound. *)

type outcome =
  | Completed
  | Failed of string  (** OOM / deadlock / budget exhausted *)

type t = {
  benchmark : string;
  gc : string;
  heap_words : int;
  seed : int;
  outcome : outcome;
  (* wall clock, cycles of simulated time *)
  wall_total : int;
  wall_stw : int;
  (* per-thread-kind CPU cycles *)
  cycles_mutator : int;
  cycles_gc : int;
  cycles_gc_stw : int;
  pauses : Gcr_engine.Engine.pause list;
  pause_hist : Gcr_util.Histogram.t;
      (** Pause-duration histogram, recorded as each pause closes; the
          exact total/count make {!mean_pause_ms} list-fold identical. *)
  latency_metered : Gcr_util.Histogram.t option;
  latency_simple : Gcr_util.Histogram.t option;
  allocated_words : int;
  allocated_objects : int;
  gc_stats : Gcr_gcs.Gc_types.stats;
  limit_changes : int;
      (** heap-limit moves made by the sizing controller (0 under Fixed) *)
  heap_limit_peak_words : int;
      (** highest heap limit ever in effect (= [heap_words] under Fixed) *)
  footprint_word_cycles : float;
      (** time-weighted integral of the heap limit (word·cycles) — the
          memory half of the memory·time product sizing controllers
          minimise; float because the product overflows 63 bits *)
}

val completed : t -> bool

val cycles_total : t -> int

(** {1 LBO ingredients} *)

val time_total : t -> int

val time_gc : t -> int
(** Wall time inside pauses. *)

val time_other : t -> int

val cycles_gc_apparent : t -> int
(** All GC-thread cycles (the refined per-thread attribution). *)

val cycles_other : t -> int

val cycles_gc_pause_window : t -> int
(** The naive attribution: only cycles inside pause windows (used by the
    attribution ablation). *)

val stw_time_fraction : t -> float

val stw_cycle_fraction : t -> float

val pause_count : t -> int

val mean_pause_ms : t -> float
(** 0 when there were no pauses. *)

val mean_footprint_words : t -> float
(** Footprint integral over total wall time: the run's average heap
    limit.  Equals [heap_words] under Fixed (up to region rounding). *)

val memory_time_integral : t -> float
(** The raw word·cycles integral ({!field-footprint_word_cycles}). *)

val of_obs :
  benchmark:string ->
  gc:string ->
  heap_words:int ->
  seed:int ->
  outcome:outcome ->
  wall_total:int ->
  has_latency:bool ->
  allocated_words:int ->
  allocated_objects:int ->
  gc_stats:Gcr_gcs.Gc_types.stats ->
  Gcr_obs.Obs.t ->
  t
(** Derive every cost field — STW wall time, per-kind cycles, pauses and
    their histogram, latency histograms — from the event spine.  The only
    inputs that do not come from events are the run labels and the heap's
    allocation totals. *)

val failure_line : t -> string option
(** One human-readable line identifying a [Failed] run, [None] when
    completed.  The CLI prints these to stderr and exits non-zero. *)

val failure_lines : t list -> string list

val pp : Format.formatter -> t -> unit
