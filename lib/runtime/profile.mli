(** Per-process phase self-time accounting (host wall clock) behind the
    campaign summary's phase breakdown and [gcr campaign --profile].

    Three atomic accumulators: run {e setup} (building engine, heap,
    collector, and workload state before the engine runs), {e tape}
    preparation (generation, artifact-store round-trips, image decode),
    and {e simulate} ([Engine.run] itself).  [Run.execute] and the
    executors add to them; the harness reads deltas around its phases.
    Fabric workers accumulate in their own process and ship deltas back
    in result frames.

    Purely observational: no value here feeds back into results. *)

type snapshot = { setup_us : int; tape_us : int; simulate_us : int }

val zero : snapshot

val add_setup_s : float -> unit

val add_tape_s : float -> unit

val add_simulate_s : float -> unit

val snapshot : unit -> snapshot

val diff : snapshot -> snapshot -> snapshot
(** [diff a b] is the per-field difference [a - b]. *)

val seconds : int -> float
(** Microseconds to seconds. *)
