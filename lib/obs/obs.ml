module Vec = Gcr_util.Vec
module Histogram = Gcr_util.Histogram

type pause = { start : int; duration : int; reason : string }

(* ------------------------------------------------------------------ *)
(* Counters: the always-on fold over the event stream.                 *)
(* ------------------------------------------------------------------ *)

module Counters = struct
  (* Every field below is a pure function of the event sequence applied so
     far: [apply] is the fold step.  Replaying a recorded trace through a
     fresh [Counters.t] must land on the same state — the differential
     tests rely on this. *)
  type t = {
    mutable kind_cycles : int array;  (** per thread kind *)
    mutable kind_cycles_stw : int array;
    mutable thread_cycles : int array;  (** per tid, grown on spawn *)
    mutable thread_cycles_stw : int array;
    mutable thread_kind : int array;
    thread_names : int Vec.t;  (** name ids, per tid *)
    mutable wall_stw_closed : int;  (** sum over closed pauses *)
    mutable pause_open : bool;
    mutable pause_open_start : int;
    mutable pause_open_reason : int;
    pause_starts : int Vec.t;
    pause_durations : int Vec.t;
    pause_reasons : int Vec.t;  (** string ids *)
    mutable pause_hist : Histogram.t;
    mutable safepoint_requests : int;
    phase_begins : int array;  (** per phase, worker-level *)
    phase_ends : int array;
    mutable stalls : int;
    mutable alloc_stalls : int;
    mutable alloc_stall_waited : int;
    mutable pacing_stalls : int;
    mutable pacing_stall_cycles : int;
    mutable degenerations : int;
    mutable ooms : int;
    mutable heap_regions : int;
    mutable heap_region_words : int;
    mutable region_transitions : int;
    mutable limit_changes : int;
    mutable heap_limit_regions : int;  (** live heap limit, in regions *)
    mutable heap_limit_peak : int;
    mutable limit_region_cycles : int;
        (** time-weighted integral of the limit (region·cycles), accrued up
            to [limit_since]; {!footprint_region_cycles} closes it at [now] *)
    mutable limit_since : int;
    mutable latency_metered : Histogram.t;
    mutable latency_simple : Histogram.t;
    mutable requests_started : int;
    mutable requests_completed : int;
    (* Fabric worker lifecycle (coordinator-emitted, not simulation
       events).  Deliberately NOT part of [fingerprint]: worker placement
       varies with scheduling and crashes, and the differential tests
       demand identical fingerprints across all of those. *)
    mutable worker_spawns : int;
    mutable worker_deaths : int;
    mutable cells_requeued : int;
    mutable groups_stolen : int;
    mutable cells_stolen : int;
  }

  let create () =
    {
      kind_cycles = Array.make Event.num_kinds 0;
      kind_cycles_stw = Array.make Event.num_kinds 0;
      thread_cycles = [||];
      thread_cycles_stw = [||];
      thread_kind = [||];
      thread_names = Vec.create ();
      wall_stw_closed = 0;
      pause_open = false;
      pause_open_start = 0;
      pause_open_reason = 0;
      pause_starts = Vec.create ();
      pause_durations = Vec.create ();
      pause_reasons = Vec.create ();
      pause_hist = Histogram.create ();
      safepoint_requests = 0;
      phase_begins = Array.make Event.num_phases 0;
      phase_ends = Array.make Event.num_phases 0;
      stalls = 0;
      alloc_stalls = 0;
      alloc_stall_waited = 0;
      pacing_stalls = 0;
      pacing_stall_cycles = 0;
      degenerations = 0;
      ooms = 0;
      heap_regions = 0;
      heap_region_words = 0;
      region_transitions = 0;
      limit_changes = 0;
      heap_limit_regions = 0;
      heap_limit_peak = 0;
      limit_region_cycles = 0;
      limit_since = 0;
      latency_metered = Histogram.create ();
      latency_simple = Histogram.create ();
      requests_started = 0;
      requests_completed = 0;
      worker_spawns = 0;
      worker_deaths = 0;
      cells_requeued = 0;
      groups_stolen = 0;
      cells_stolen = 0;
    }

  (* Rewind to the post-[create] state, keeping grown array capacities.
     The three histograms are REPLACED, not cleared: [Measurement.of_obs]
     captures them by reference, so mutating them in place would
     retroactively corrupt the previous run's measurement. *)
  let reset t =
    Array.fill t.kind_cycles 0 (Array.length t.kind_cycles) 0;
    Array.fill t.kind_cycles_stw 0 (Array.length t.kind_cycles_stw) 0;
    Array.fill t.thread_cycles 0 (Array.length t.thread_cycles) 0;
    Array.fill t.thread_cycles_stw 0 (Array.length t.thread_cycles_stw) 0;
    Array.fill t.thread_kind 0 (Array.length t.thread_kind) 0;
    Vec.clear t.thread_names;
    t.wall_stw_closed <- 0;
    t.pause_open <- false;
    t.pause_open_start <- 0;
    t.pause_open_reason <- 0;
    Vec.clear t.pause_starts;
    Vec.clear t.pause_durations;
    Vec.clear t.pause_reasons;
    t.pause_hist <- Histogram.create ();
    t.safepoint_requests <- 0;
    Array.fill t.phase_begins 0 (Array.length t.phase_begins) 0;
    Array.fill t.phase_ends 0 (Array.length t.phase_ends) 0;
    t.stalls <- 0;
    t.alloc_stalls <- 0;
    t.alloc_stall_waited <- 0;
    t.pacing_stalls <- 0;
    t.pacing_stall_cycles <- 0;
    t.degenerations <- 0;
    t.ooms <- 0;
    t.heap_regions <- 0;
    t.heap_region_words <- 0;
    t.region_transitions <- 0;
    t.limit_changes <- 0;
    t.heap_limit_regions <- 0;
    t.heap_limit_peak <- 0;
    t.limit_region_cycles <- 0;
    t.limit_since <- 0;
    t.latency_metered <- Histogram.create ();
    t.latency_simple <- Histogram.create ();
    t.requests_started <- 0;
    t.requests_completed <- 0;
    t.worker_spawns <- 0;
    t.worker_deaths <- 0;
    t.cells_requeued <- 0;
    t.groups_stolen <- 0;
    t.cells_stolen <- 0

  let grow_threads t tid =
    let cap = Array.length t.thread_cycles in
    if tid >= cap then begin
      let cap' = max 8 (max (tid + 1) (2 * cap)) in
      let grow a = let a' = Array.make cap' 0 in Array.blit a 0 a' 0 cap; a' in
      t.thread_cycles <- grow t.thread_cycles;
      t.thread_cycles_stw <- grow t.thread_cycles_stw;
      t.thread_kind <- grow t.thread_kind
    end

  (* The fold step.  The [Step_complete] arm is the engine's per-step hot
     path: four array updates, no allocation. *)
  let apply t ~time ~code ~a ~b ~c =
    if code = Event.code_step_complete then begin
      let tid = a and cycles = c in
      let kind = Event.step_kind_of_flags b in
      t.thread_cycles.(tid) <- t.thread_cycles.(tid) + cycles;
      t.kind_cycles.(kind) <- t.kind_cycles.(kind) + cycles;
      if b land 1 = 1 then begin
        t.thread_cycles_stw.(tid) <- t.thread_cycles_stw.(tid) + cycles;
        t.kind_cycles_stw.(kind) <- t.kind_cycles_stw.(kind) + cycles
      end
    end
    else
      match code with
      | 1 (* thread-spawn *) ->
          grow_threads t a;
          t.thread_kind.(a) <- b;
          while Vec.length t.thread_names <= a do
            Vec.push t.thread_names (-1)
          done;
          Vec.set t.thread_names a c
      | 2 (* safepoint-request *) -> t.safepoint_requests <- t.safepoint_requests + 1
      | 3 (* pause-begin *) ->
          t.pause_open <- true;
          t.pause_open_start <- time;
          t.pause_open_reason <- a
      | 4 (* pause-end *) ->
          let duration = time - t.pause_open_start in
          t.pause_open <- false;
          t.wall_stw_closed <- t.wall_stw_closed + duration;
          Vec.push t.pause_starts t.pause_open_start;
          Vec.push t.pause_durations duration;
          Vec.push t.pause_reasons a;
          Histogram.record t.pause_hist duration
      | 5 (* phase-begin *) -> t.phase_begins.(b) <- t.phase_begins.(b) + 1
      | 6 (* phase-end *) -> t.phase_ends.(b) <- t.phase_ends.(b) + 1
      | 7 (* stall-begin *) -> t.stalls <- t.stalls + 1
      | 8 (* stall-end *) -> ()
      | 9 (* alloc-stall-begin *) -> t.alloc_stalls <- t.alloc_stalls + 1
      | 10 (* alloc-stall-end *) -> t.alloc_stall_waited <- t.alloc_stall_waited + b
      | 11 (* pacing-stall *) ->
          t.pacing_stalls <- t.pacing_stalls + 1;
          t.pacing_stall_cycles <- t.pacing_stall_cycles + b
      | 12 (* degeneration *) -> t.degenerations <- t.degenerations + 1
      | 13 (* oom *) -> t.ooms <- t.ooms + 1
      | 14 (* heap-init *) ->
          t.heap_regions <- a;
          t.heap_region_words <- b;
          t.limit_region_cycles <-
            t.limit_region_cycles + (t.heap_limit_regions * (time - t.limit_since));
          t.heap_limit_regions <- a;
          t.heap_limit_peak <- max t.heap_limit_peak a;
          t.limit_since <- time
      | 15 (* region-transition *) -> t.region_transitions <- t.region_transitions + 1
      | 16 (* request-start *) -> t.requests_started <- t.requests_started + 1
      | 17 (* request-complete *) ->
          t.requests_completed <- t.requests_completed + 1;
          Histogram.record t.latency_simple b;
          Histogram.record t.latency_metered c
      | 18 (* limit-change *) ->
          t.limit_changes <- t.limit_changes + 1;
          t.heap_regions <- a;
          t.limit_region_cycles <-
            t.limit_region_cycles + (t.heap_limit_regions * (time - t.limit_since));
          t.heap_limit_regions <- a;
          t.heap_limit_peak <- max t.heap_limit_peak a;
          t.limit_since <- time
      | 19 (* worker-spawn *) -> t.worker_spawns <- t.worker_spawns + 1
      | 20 (* worker-dead *) ->
          t.worker_deaths <- t.worker_deaths + 1;
          t.cells_requeued <- t.cells_requeued + b
      | 21 (* group-steal *) ->
          t.groups_stolen <- t.groups_stolen + 1;
          t.cells_stolen <- t.cells_stolen + c
      | _ -> invalid_arg (Printf.sprintf "Obs.Counters.apply: unknown code %d" code)

  (* Wall time inside pauses, counting the currently open pause (if any) up
     to [now] — an aborted run's partial pause still costs wall time. *)
  let wall_stw t ~now =
    t.wall_stw_closed + if t.pause_open then now - t.pause_open_start else 0

  (* Memory·time integral of the heap limit (region·cycles), the accrued
     sum closed at [now] — the live-footprint cost a sizing controller is
     trying to shrink. *)
  let footprint_region_cycles t ~now =
    t.limit_region_cycles + (t.heap_limit_regions * (now - t.limit_since))

  (* Flattened scalar view for differential tests: replaying a trace must
     reproduce the same fingerprint as the online fold. *)
  let fingerprint t ~now =
    let hist h =
      [ Histogram.count h; Histogram.total h; Histogram.max_value h ]
    in
    List.concat
      [
        Array.to_list t.kind_cycles;
        Array.to_list t.kind_cycles_stw;
        Array.to_list t.thread_cycles;
        Array.to_list t.thread_cycles_stw;
        [ wall_stw t ~now; t.safepoint_requests ];
        [ Vec.length t.pause_starts;
          Vec.fold ( + ) 0 t.pause_durations;
          Vec.fold ( + ) 0 t.pause_starts ];
        hist t.pause_hist;
        Array.to_list t.phase_begins;
        Array.to_list t.phase_ends;
        [ t.stalls; t.alloc_stalls; t.alloc_stall_waited;
          t.pacing_stalls; t.pacing_stall_cycles; t.degenerations; t.ooms;
          t.heap_regions; t.heap_region_words; t.region_transitions ];
        [ t.limit_changes; t.heap_limit_regions; t.heap_limit_peak;
          footprint_region_cycles t ~now ];
        hist t.latency_metered;
        hist t.latency_simple;
        [ t.requests_started; t.requests_completed ];
      ]
end

(* ------------------------------------------------------------------ *)
(* Subscribers and the full-trace sink.                                *)
(* ------------------------------------------------------------------ *)

type subscriber = {
  sub_name : string;
  on_event : time:int -> code:int -> a:int -> b:int -> c:int -> unit;
}

module Trace = struct
  (* Flat int buffer, five slots per event.  Appending is a bounds check
     and five stores — attaching a trace keeps emission allocation-free
     between grows. *)
  type t = { mutable buf : int array; mutable len : int }

  let record_width = 5

  let create ?(capacity_events = 4096) () =
    { buf = Array.make (record_width * max 1 capacity_events) 0; len = 0 }

  let length t = t.len / record_width

  let append t ~time ~code ~a ~b ~c =
    let cap = Array.length t.buf in
    if t.len + record_width > cap then begin
      let buf = Array.make (2 * cap) 0 in
      Array.blit t.buf 0 buf 0 t.len;
      t.buf <- buf
    end;
    let i = t.len in
    t.buf.(i) <- time;
    t.buf.(i + 1) <- code;
    t.buf.(i + 2) <- a;
    t.buf.(i + 3) <- b;
    t.buf.(i + 4) <- c;
    t.len <- i + record_width

  let iter t f =
    let i = ref 0 in
    while !i < t.len do
      let j = !i in
      f ~time:t.buf.(j) ~code:t.buf.(j + 1) ~a:t.buf.(j + 2) ~b:t.buf.(j + 3)
        ~c:t.buf.(j + 4);
      i := j + record_width
    done

  let replay t =
    let counters = Counters.create () in
    iter t (fun ~time ~code ~a ~b ~c -> Counters.apply counters ~time ~code ~a ~b ~c);
    counters
end

(* ------------------------------------------------------------------ *)
(* The spine.                                                          *)
(* ------------------------------------------------------------------ *)

type t = {
  counters : Counters.t;
  strings : string Vec.t;
  string_ids : (string, int) Hashtbl.t;
  mutable clock : unit -> int;
  mutable subs : subscriber array;
  mutable nsubs : int;
}

let create () =
  {
    counters = Counters.create ();
    strings = Vec.create ();
    string_ids = Hashtbl.create 64;
    clock = (fun () -> 0);
    subs = [||];
    nsubs = 0;
  }

let counters t = t.counters

(* Rewind the whole spine for the next run of a warm worker: counters,
   the string intern table, and — critically — the subscriber list, so a
   previous run's pause probes and trace sinks cannot fire into the next
   run.  The clock is left wired: the engine that owns this spine resets
   its own clock to zero and the closure identity stays valid. *)
let reset t =
  Counters.reset t.counters;
  Vec.clear t.strings;
  Hashtbl.reset t.string_ids;
  t.subs <- [||];
  t.nsubs <- 0

let set_clock t f = t.clock <- f

let now t = t.clock ()

let intern t s =
  match Hashtbl.find_opt t.string_ids s with
  | Some id -> id
  | None ->
      let id = Vec.length t.strings in
      Vec.push t.strings s;
      Hashtbl.add t.string_ids s id;
      id

let string_of_id t id = if id < 0 then "" else Vec.get t.strings id

let subscribe t sub =
  let subs = Array.make (t.nsubs + 1) sub in
  Array.blit t.subs 0 subs 0 t.nsubs;
  t.subs <- subs;
  t.nsubs <- t.nsubs + 1

let attach_trace ?capacity_events t =
  let tr = Trace.create ?capacity_events () in
  subscribe t
    {
      sub_name = "trace";
      on_event = (fun ~time ~code ~a ~b ~c -> Trace.append tr ~time ~code ~a ~b ~c);
    };
  tr

let tracing t = t.nsubs > 0

(* One dispatch point: fold into the counters, then fan out.  [t.nsubs] is
   0 in ordinary runs, so the subscriber loop costs one load + branch. *)
let[@inline] emit t ~time ~code ~a ~b ~c =
  Counters.apply t.counters ~time ~code ~a ~b ~c;
  if t.nsubs > 0 then
    for i = 0 to t.nsubs - 1 do
      t.subs.(i).on_event ~time ~code ~a ~b ~c
    done

(* ---------- typed emitters ---------- *)

let step_complete t ~time ~tid ~kind ~cycles ~in_pause =
  emit t ~time ~code:Event.code_step_complete ~a:tid
    ~b:(Event.pack_step_flags ~kind ~in_pause) ~c:cycles

let thread_spawn t ~time ~tid ~kind ~name =
  emit t ~time ~code:Event.code_thread_spawn ~a:tid ~b:kind ~c:(intern t name)

let safepoint_request t ~time ~reason_id =
  emit t ~time ~code:Event.code_safepoint_request ~a:reason_id ~b:0 ~c:0

let pause_begin t ~time ~reason_id =
  emit t ~time ~code:Event.code_pause_begin ~a:reason_id ~b:0 ~c:0

let pause_end t ~time ~reason_id =
  let duration = time - t.counters.Counters.pause_open_start in
  emit t ~time ~code:Event.code_pause_end ~a:reason_id ~b:duration ~c:0

let phase_begin t ~time ~collector_id ~phase ~tid =
  emit t ~time ~code:Event.code_phase_begin ~a:collector_id
    ~b:(Event.phase_index phase) ~c:tid

let phase_end t ~time ~collector_id ~phase ~tid =
  emit t ~time ~code:Event.code_phase_end ~a:collector_id
    ~b:(Event.phase_index phase) ~c:tid

let stall_begin t ~time ~tid ~wake =
  emit t ~time ~code:Event.code_stall_begin ~a:tid ~b:wake ~c:0

let stall_end t ~time ~tid = emit t ~time ~code:Event.code_stall_end ~a:tid ~b:0 ~c:0

let alloc_stall_begin t ~time ~tid =
  emit t ~time ~code:Event.code_alloc_stall_begin ~a:tid ~b:0 ~c:0

let alloc_stall_end t ~time ~tid ~waited =
  emit t ~time ~code:Event.code_alloc_stall_end ~a:tid ~b:waited ~c:0

let pacing_stall t ~time ~tid ~cycles =
  emit t ~time ~code:Event.code_pacing_stall ~a:tid ~b:cycles ~c:0

let degeneration t ~time ~reason_id =
  emit t ~time ~code:Event.code_degeneration ~a:reason_id ~b:0 ~c:0

let oom t ~time ~reason_id = emit t ~time ~code:Event.code_oom ~a:reason_id ~b:0 ~c:0

let heap_init t ~time ~regions ~region_words =
  emit t ~time ~code:Event.code_heap_init ~a:regions ~b:region_words ~c:0

let region_transition t ~time ~index ~from_space ~to_space =
  emit t ~time ~code:Event.code_region_transition ~a:index ~b:from_space ~c:to_space

let request_start t ~time ~index ~tid =
  emit t ~time ~code:Event.code_request_start ~a:index ~b:tid ~c:0

let request_complete t ~time ~index ~service ~metered =
  emit t ~time ~code:Event.code_request_complete ~a:index ~b:service ~c:metered

let limit_change t ~time ~regions ~old_regions ~controller_id =
  emit t ~time ~code:Event.code_limit_change ~a:regions ~b:old_regions ~c:controller_id

let fabric_worker_spawn t ~time ~worker ~transport =
  emit t ~time ~code:Event.code_worker_spawn ~a:worker ~b:transport ~c:0

let fabric_worker_dead t ~time ~worker ~requeued =
  emit t ~time ~code:Event.code_worker_dead ~a:worker ~b:requeued ~c:0

let fabric_group_steal t ~time ~victim ~thief ~cells =
  emit t ~time ~code:Event.code_group_steal ~a:victim ~b:thief ~c:cells

(* ---------- derived views ---------- *)

let wall_stw t ~now = Counters.wall_stw t.counters ~now

let cycles_of_kind t kind = t.counters.Counters.kind_cycles.(kind)

let cycles_stw_of_kind t kind = t.counters.Counters.kind_cycles_stw.(kind)

let cycles_of_thread t tid =
  let c = t.counters in
  if tid < Array.length c.Counters.thread_cycles then c.Counters.thread_cycles.(tid) else 0

let pause_count t = Vec.length t.counters.Counters.pause_starts

let pause_histogram t = t.counters.Counters.pause_hist

let iter_pauses t f =
  let c = t.counters in
  for i = 0 to Vec.length c.Counters.pause_starts - 1 do
    f ~start:(Vec.get c.Counters.pause_starts i)
      ~duration:(Vec.get c.Counters.pause_durations i)
      ~reason:(string_of_id t (Vec.get c.Counters.pause_reasons i))
  done

let pauses t =
  let acc = ref [] in
  iter_pauses t (fun ~start ~duration ~reason -> acc := { start; duration; reason } :: !acc);
  List.rev !acc

let latency_metered t = t.counters.Counters.latency_metered

let latency_simple t = t.counters.Counters.latency_simple

let limit_changes t = t.counters.Counters.limit_changes

let heap_limit_regions t = t.counters.Counters.heap_limit_regions

let heap_region_words t = t.counters.Counters.heap_region_words

let heap_limit_peak_regions t = t.counters.Counters.heap_limit_peak

let footprint_region_cycles t ~now =
  Counters.footprint_region_cycles t.counters ~now

let worker_spawns t = t.counters.Counters.worker_spawns

let worker_deaths t = t.counters.Counters.worker_deaths

let cells_requeued t = t.counters.Counters.cells_requeued

let groups_stolen t = t.counters.Counters.groups_stolen

let cells_stolen t = t.counters.Counters.cells_stolen

let decode_event t ~code ~a ~b ~c =
  Event.decode ~string_of_id:(string_of_id t) ~code ~a ~b ~c

let fingerprint t ~now = Counters.fingerprint t.counters ~now
