(* The event taxonomy and its integer encoding.

   Every simulation event is encoded as five ints — (time, code, a, b, c) —
   so the spine can record, fold and replay events without allocating.
   Strings (thread names, pause reasons, collector names) never travel in
   events; they are interned once and referenced by id.  This module owns
   the code assignments and the arg-packing conventions; [Obs] owns the
   intern table and the sinks. *)

(* Thread kinds, mirroring [Engine.thread_kind] without depending on the
   engine (the engine depends on us). *)
let mutator_kind = 0
let gc_worker_kind = 1
let num_kinds = 2

let kind_name = function 0 -> "mutator" | 1 -> "gc-worker" | _ -> "unknown"

(* Fabric worker transports, for [Worker_spawn]. *)
let transport_name = function 0 -> "pipe" | 1 -> "socket" | _ -> "unknown"

(* The last three phases belong to reference-counting collectors (LXR):
   applying buffered increments, draining deferred decrements, and the
   backup tracing cycle that reclaims cyclic garbage. *)
type phase =
  | Root_scan
  | Mark
  | Evacuate
  | Update_refs
  | Compact
  | Sweep
  | Rc_increment
  | Decrement_drain
  | Cycle_trace

let num_phases = 9

let phase_index = function
  | Root_scan -> 0
  | Mark -> 1
  | Evacuate -> 2
  | Update_refs -> 3
  | Compact -> 4
  | Sweep -> 5
  | Rc_increment -> 6
  | Decrement_drain -> 7
  | Cycle_trace -> 8

let phase_of_index = function
  | 0 -> Root_scan
  | 1 -> Mark
  | 2 -> Evacuate
  | 3 -> Update_refs
  | 4 -> Compact
  | 5 -> Sweep
  | 6 -> Rc_increment
  | 7 -> Decrement_drain
  | 8 -> Cycle_trace
  | i -> invalid_arg (Printf.sprintf "Event.phase_of_index: %d" i)

let phase_name = function
  | Root_scan -> "root-scan"
  | Mark -> "mark"
  | Evacuate -> "evacuate"
  | Update_refs -> "update-refs"
  | Compact -> "compact"
  | Sweep -> "sweep"
  | Rc_increment -> "rc-increment"
  | Decrement_drain -> "decrement-drain"
  | Cycle_trace -> "cycle-trace"

(* Event codes.  [Step_complete] is by far the hottest (one per engine
   step), so it gets code 0. *)
let code_step_complete = 0
let code_thread_spawn = 1
let code_safepoint_request = 2
let code_pause_begin = 3
let code_pause_end = 4
let code_phase_begin = 5
let code_phase_end = 6
let code_stall_begin = 7
let code_stall_end = 8
let code_alloc_stall_begin = 9
let code_alloc_stall_end = 10
let code_pacing_stall = 11
let code_degeneration = 12
let code_oom = 13
let code_heap_init = 14
let code_region_transition = 15
let code_request_start = 16
let code_request_complete = 17
let code_limit_change = 18

(* Fabric worker lifecycle: emitted by the campaign coordinator, not the
   simulation engine, so they appear only in campaign-level obs streams. *)
let code_worker_spawn = 19
let code_worker_dead = 20
let code_group_steal = 21

let num_codes = 22

let code_name = function
  | 0 -> "step-complete"
  | 1 -> "thread-spawn"
  | 2 -> "safepoint-request"
  | 3 -> "pause-begin"
  | 4 -> "pause-end"
  | 5 -> "phase-begin"
  | 6 -> "phase-end"
  | 7 -> "stall-begin"
  | 8 -> "stall-end"
  | 9 -> "alloc-stall-begin"
  | 10 -> "alloc-stall-end"
  | 11 -> "pacing-stall"
  | 12 -> "degeneration"
  | 13 -> "oom"
  | 14 -> "heap-init"
  | 15 -> "region-transition"
  | 16 -> "request-start"
  | 17 -> "request-complete"
  | 18 -> "limit-change"
  | 19 -> "worker-spawn"
  | 20 -> "worker-dead"
  | 21 -> "group-steal"
  | _ -> "unknown"

(* Step_complete packs kind and in-pause into [b]: b = kind*2 + stw. *)
let pack_step_flags ~kind ~in_pause = (kind * 2) + if in_pause then 1 else 0
let step_kind_of_flags b = b / 2
let step_in_pause_of_flags b = b land 1 = 1

(* Decoded view of one event.  Only used off the hot path (trace export,
   tests); strings are resolved through a lookup function so [Event] stays
   independent of the intern table. *)
type t =
  | Step_complete of { tid : int; kind : int; cycles : int; in_pause : bool }
  | Thread_spawn of { tid : int; kind : int; name : string }
  | Safepoint_request of { reason : string }
  | Pause_begin of { reason : string }
  | Pause_end of { reason : string; duration : int }
  | Phase_begin of { collector : string; phase : phase; tid : int }
  | Phase_end of { collector : string; phase : phase; tid : int }
  | Stall_begin of { tid : int; wake : int }
  | Stall_end of { tid : int }
  | Alloc_stall_begin of { tid : int }
  | Alloc_stall_end of { tid : int; waited : int }
  | Pacing_stall of { tid : int; cycles : int }
  | Degeneration of { reason : string }
  | Oom of { reason : string }
  | Heap_init of { regions : int; region_words : int }
  | Region_transition of { index : int; from_space : int; to_space : int }
  | Request_start of { index : int; tid : int }
  | Request_complete of { index : int; service : int; metered : int }
  | Limit_change of { regions : int; old_regions : int; controller : string }
  | Worker_spawn of { worker : int; transport : int }
  | Worker_dead of { worker : int; requeued : int }
  | Group_steal of { victim : int; thief : int; cells : int }

let decode ~string_of_id ~code ~a ~b ~c =
  match code with
  | 0 -> Step_complete { tid = a; kind = step_kind_of_flags b;
                         cycles = c; in_pause = step_in_pause_of_flags b }
  | 1 -> Thread_spawn { tid = a; kind = b; name = string_of_id c }
  | 2 -> Safepoint_request { reason = string_of_id a }
  | 3 -> Pause_begin { reason = string_of_id a }
  | 4 -> Pause_end { reason = string_of_id a; duration = b }
  | 5 -> Phase_begin { collector = string_of_id a; phase = phase_of_index b; tid = c }
  | 6 -> Phase_end { collector = string_of_id a; phase = phase_of_index b; tid = c }
  | 7 -> Stall_begin { tid = a; wake = b }
  | 8 -> Stall_end { tid = a }
  | 9 -> Alloc_stall_begin { tid = a }
  | 10 -> Alloc_stall_end { tid = a; waited = b }
  | 11 -> Pacing_stall { tid = a; cycles = b }
  | 12 -> Degeneration { reason = string_of_id a }
  | 13 -> Oom { reason = string_of_id a }
  | 14 -> Heap_init { regions = a; region_words = b }
  | 15 -> Region_transition { index = a; from_space = b; to_space = c }
  | 16 -> Request_start { index = a; tid = b }
  | 17 -> Request_complete { index = a; service = b; metered = c }
  | 18 -> Limit_change { regions = a; old_regions = b; controller = string_of_id c }
  | 19 -> Worker_spawn { worker = a; transport = b }
  | 20 -> Worker_dead { worker = a; requeued = b }
  | 21 -> Group_steal { victim = a; thief = b; cells = c }
  | _ -> invalid_arg (Printf.sprintf "Event.decode: unknown code %d" code)

let pp ~string_of_id ppf (time, code, a, b, c) =
  let ev = decode ~string_of_id ~code ~a ~b ~c in
  let p fmt = Format.fprintf ppf fmt in
  match ev with
  | Step_complete { tid; kind; cycles; in_pause } ->
      p "@%d step tid=%d %s cycles=%d%s" time tid (kind_name kind) cycles
        (if in_pause then " (stw)" else "")
  | Thread_spawn { tid; kind; name } -> p "@%d spawn tid=%d %s %S" time tid (kind_name kind) name
  | Safepoint_request { reason } -> p "@%d safepoint-request %S" time reason
  | Pause_begin { reason } -> p "@%d pause-begin %S" time reason
  | Pause_end { reason; duration } -> p "@%d pause-end %S duration=%d" time reason duration
  | Phase_begin { collector; phase; tid } ->
      p "@%d phase-begin %s/%s tid=%d" time collector (phase_name phase) tid
  | Phase_end { collector; phase; tid } ->
      p "@%d phase-end %s/%s tid=%d" time collector (phase_name phase) tid
  | Stall_begin { tid; wake } -> p "@%d stall-begin tid=%d wake=%d" time tid wake
  | Stall_end { tid } -> p "@%d stall-end tid=%d" time tid
  | Alloc_stall_begin { tid } -> p "@%d alloc-stall-begin tid=%d" time tid
  | Alloc_stall_end { tid; waited } -> p "@%d alloc-stall-end tid=%d waited=%d" time tid waited
  | Pacing_stall { tid; cycles } -> p "@%d pacing-stall tid=%d cycles=%d" time tid cycles
  | Degeneration { reason } -> p "@%d degeneration %S" time reason
  | Oom { reason } -> p "@%d oom %S" time reason
  | Heap_init { regions; region_words } ->
      p "@%d heap-init regions=%d region-words=%d" time regions region_words
  | Region_transition { index; from_space; to_space } ->
      p "@%d region %d: space %d -> %d" time index from_space to_space
  | Request_start { index; tid } -> p "@%d request-start #%d tid=%d" time index tid
  | Request_complete { index; service; metered } ->
      p "@%d request-complete #%d service=%d metered=%d" time index service metered
  | Limit_change { regions; old_regions; controller } ->
      p "@%d limit-change %d -> %d regions (%s)" time old_regions regions controller
  | Worker_spawn { worker; transport } ->
      p "@%d worker-spawn %d (%s)" time worker (transport_name transport)
  | Worker_dead { worker; requeued } ->
      p "@%d worker-dead %d requeued=%d" time worker requeued
  | Group_steal { victim; thief; cells } ->
      p "@%d group-steal %d -> %d (%d cells)" time victim thief cells
