(* Chrome trace-event JSON export of a recorded event stream, loadable in
   ui.perfetto.dev (or chrome://tracing).

   Layout:
   - one track per simulated thread (tid = engine tid), carrying GC phase
     slices (workers), stall slices and allocation-stall slices;
   - a "safepoints" pseudo-track carrying pause slices plus
     safepoint-request / degeneration / OOM instants;
   - per-mutator "requests" pseudo-tracks carrying request slices;
   - a "regions" counter fed by region transitions.
   Timestamps are microseconds of simulated time (Units.clock_hz).

   The writer emits exactly one JSON object per line inside "traceEvents"
   and closes any still-open slices at the end, so begin/end events are
   always balanced — [validate_file] (used by `gcr trace --check` and the
   CI trace-smoke step) relies on both properties. *)

module Units = Gcr_util.Units

let safepoint_tid = 900_000
let request_tid_base = 910_000

let ts_of_cycles c = Units.us_of_cycles c

let escape_string s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

type writer = {
  out : Buffer.t;
  mutable first : bool;
  (* per-track stack of open (cat, name) slices, for closing at the end *)
  open_slices : (int, (string * string) list ref) Hashtbl.t;
  (* request index -> track tid, bridged from Request_start to _complete *)
  request_track : (int, int) Hashtbl.t;
  mutable last_time : int;
}

let emit_line w line =
  if w.first then w.first <- false else Buffer.add_string w.out ",\n";
  Buffer.add_string w.out line

let slice_stack w tid =
  match Hashtbl.find_opt w.open_slices tid with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.add w.open_slices tid r;
      r

let emit_meta w ~tid ~name =
  emit_line w
    (Printf.sprintf
       {|{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":"%s"}}|}
       tid (escape_string name))

let emit_begin w ~time ~tid ~cat ~name ~args =
  let stack = slice_stack w tid in
  stack := (cat, name) :: !stack;
  emit_line w
    (Printf.sprintf {|{"ph":"B","pid":1,"tid":%d,"ts":%.3f,"cat":"%s","name":"%s"%s}|}
       tid (ts_of_cycles time) cat (escape_string name)
       (match args with "" -> "" | a -> Printf.sprintf {|,"args":{%s}|} a))

let emit_end w ~time ~tid =
  (match Hashtbl.find_opt w.open_slices tid with
  | Some ({ contents = _ :: rest } as r) -> r := rest
  | Some { contents = [] } | None -> ());
  emit_line w
    (Printf.sprintf {|{"ph":"E","pid":1,"tid":%d,"ts":%.3f}|} tid (ts_of_cycles time))

let emit_instant w ~time ~tid ~cat ~name =
  emit_line w
    (Printf.sprintf
       {|{"ph":"i","pid":1,"tid":%d,"ts":%.3f,"s":"t","cat":"%s","name":"%s"}|}
       tid (ts_of_cycles time) cat (escape_string name))

let emit_counter w ~time ~name ~key ~value =
  emit_line w
    (Printf.sprintf {|{"ph":"C","pid":1,"ts":%.3f,"name":"%s","args":{"%s":%d}}|}
       (ts_of_cycles time) name key value)

let write_events w obs trace =
  let module E = Event in
  let free_regions = ref 0 in
  let request_meta_done = Hashtbl.create 8 in
  emit_meta w ~tid:safepoint_tid ~name:"safepoints";
  Obs.Trace.iter trace (fun ~time ~code ~a ~b ~c ->
      w.last_time <- max w.last_time time;
      match Obs.decode_event obs ~code ~a ~b ~c with
      | E.Step_complete _ -> ()
      | E.Thread_spawn { tid; kind; name } ->
          ignore kind;
          emit_meta w ~tid ~name
      | E.Safepoint_request { reason } ->
          emit_instant w ~time ~tid:safepoint_tid ~cat:"safepoint" ~name:("request: " ^ reason)
      | E.Pause_begin { reason } ->
          emit_begin w ~time ~tid:safepoint_tid ~cat:"pause" ~name:reason ~args:""
      | E.Pause_end { reason = _; duration = _ } -> emit_end w ~time ~tid:safepoint_tid
      | E.Phase_begin { collector; phase; tid } ->
          emit_begin w ~time ~tid ~cat:"phase" ~name:(E.phase_name phase)
            ~args:(Printf.sprintf {|"collector":"%s"|} (escape_string collector))
      | E.Phase_end { collector = _; phase = _; tid } -> emit_end w ~time ~tid
      | E.Stall_begin { tid; wake = _ } ->
          emit_begin w ~time ~tid ~cat:"stall" ~name:"stall" ~args:""
      | E.Stall_end { tid } -> emit_end w ~time ~tid
      | E.Alloc_stall_begin { tid } ->
          emit_begin w ~time ~tid ~cat:"stall" ~name:"allocation stall" ~args:""
      | E.Alloc_stall_end { tid; waited = _ } -> emit_end w ~time ~tid
      | E.Pacing_stall { tid; cycles } ->
          emit_instant w ~time ~tid ~cat:"stall" ~name:(Printf.sprintf "pacing (%d cycles)" cycles)
      | E.Degeneration { reason } ->
          emit_instant w ~time ~tid:safepoint_tid ~cat:"degeneration" ~name:reason
      | E.Oom { reason } -> emit_instant w ~time ~tid:safepoint_tid ~cat:"oom" ~name:reason
      | E.Heap_init { regions; region_words = _ } ->
          free_regions := regions;
          emit_counter w ~time ~name:"regions" ~key:"free" ~value:!free_regions;
          emit_counter w ~time ~name:"heap-limit" ~key:"regions" ~value:regions
      | E.Limit_change { regions; old_regions; controller = _ } ->
          (* grow appends free regions, shrink removes only free ones, so
             the delta lands entirely on the free counter *)
          free_regions := !free_regions + (regions - old_regions);
          emit_counter w ~time ~name:"regions" ~key:"free" ~value:!free_regions;
          emit_counter w ~time ~name:"heap-limit" ~key:"regions" ~value:regions
      | E.Region_transition { index = _; from_space; to_space } ->
          if from_space = 0 then decr free_regions;
          if to_space = 0 then incr free_regions;
          emit_counter w ~time ~name:"regions" ~key:"free" ~value:!free_regions
      | E.Request_start { index; tid } ->
          let track = request_tid_base + tid in
          if not (Hashtbl.mem request_meta_done track) then begin
            Hashtbl.add request_meta_done track ();
            emit_meta w ~tid:track ~name:(Printf.sprintf "requests (tid %d)" tid)
          end;
          Hashtbl.replace w.request_track index track;
          emit_begin w ~time ~tid:track ~cat:"request"
            ~name:(Printf.sprintf "request %d" index) ~args:""
      | E.Request_complete { index; service; metered } ->
          let track =
            match Hashtbl.find_opt w.request_track index with
            | Some t -> t
            | None -> request_tid_base
          in
          Hashtbl.remove w.request_track index;
          ignore service;
          ignore metered;
          emit_end w ~time ~tid:track
      | E.Worker_spawn { worker; transport } ->
          emit_instant w ~time ~tid:safepoint_tid ~cat:"fabric"
            ~name:(Printf.sprintf "worker %d spawn (%s)" worker (E.transport_name transport))
      | E.Worker_dead { worker; requeued } ->
          emit_instant w ~time ~tid:safepoint_tid ~cat:"fabric"
            ~name:(Printf.sprintf "worker %d dead (%d cells requeued)" worker requeued)
      | E.Group_steal { victim; thief; cells } ->
          emit_instant w ~time ~tid:safepoint_tid ~cat:"fabric"
            ~name:(Printf.sprintf "steal %d -> %d (%d cells)" victim thief cells));
  (* Close slices still open at the end of the trace (e.g. the pause that
     was open when an aborted run stopped). *)
  Hashtbl.iter
    (fun tid stack ->
      List.iter (fun (_cat, _name) -> emit_end w ~time:w.last_time ~tid) !stack)
    w.open_slices

let write_buffer obs trace =
  let out = Buffer.create 65536 in
  Buffer.add_string out "{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n";
  let w =
    {
      out;
      first = true;
      open_slices = Hashtbl.create 16;
      request_track = Hashtbl.create 64;
      last_time = 0;
    }
  in
  write_events w obs trace;
  Buffer.add_string out "\n]}\n";
  out

let write_channel oc obs trace = Buffer.output_buffer oc (write_buffer obs trace)

let write_file path obs trace =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel oc obs trace)

(* ------------------------------------------------------------------ *)
(* Validation (CI trace-smoke and `gcr trace --check`).                *)
(* ------------------------------------------------------------------ *)

type summary = {
  events : int;
  pause_slices : int;
  phase_slices : int;
  begins : int;
  ends : int;
}

exception Invalid of string

(* Minimal JSON syntax checker — no external dependency, enough to promise
   "the file parses as JSON". *)
let check_json_syntax s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Invalid (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
  in
  let expect c = if peek () = c then advance () else fail (Printf.sprintf "expected %c" c) in
  let parse_string () =
    expect '"';
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            if !pos >= n then fail "unterminated escape";
            (match s.[!pos] with
            | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> advance ()
            | 'u' ->
                advance ();
                for _ = 1 to 4 do
                  (match peek () with
                  | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> advance ()
                  | _ -> fail "bad \\u escape")
                done
            | _ -> fail "bad escape");
            loop ()
        | c when Char.code c < 0x20 -> fail "control char in string"
        | _ -> advance (); loop ()
    in
    loop ()
  in
  let parse_number () =
    if peek () = '-' then advance ();
    let digits () =
      let seen = ref false in
      while (match peek () with '0' .. '9' -> true | _ -> false) do
        seen := true;
        advance ()
      done;
      if not !seen then fail "expected digit"
    in
    digits ();
    if peek () = '.' then begin advance (); digits () end;
    (match peek () with
    | 'e' | 'E' ->
        advance ();
        (match peek () with '+' | '-' -> advance () | _ -> ());
        digits ()
    | _ -> ())
  in
  let literal l =
    let len = String.length l in
    if !pos + len <= n && String.sub s !pos len = l then pos := !pos + len
    else fail ("expected " ^ l)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then advance ()
        else begin
          let rec members () =
            skip_ws ();
            parse_string ();
            skip_ws ();
            expect ':';
            parse_value ();
            skip_ws ();
            match peek () with
            | ',' -> advance (); members ()
            | '}' -> advance ()
            | _ -> fail "expected , or }"
          in
          members ()
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then advance ()
        else begin
          let rec elements () =
            parse_value ();
            skip_ws ();
            match peek () with
            | ',' -> advance (); elements ()
            | ']' -> advance ()
            | _ -> fail "expected , or ]"
          in
          elements ()
        end
    | '"' -> parse_string ()
    | 't' -> literal "true"
    | 'f' -> literal "false"
    | 'n' -> literal "null"
    | '-' | '0' .. '9' -> parse_number ()
    | _ -> fail "expected value"
  in
  parse_value ();
  skip_ws ();
  if !pos <> n then fail "trailing content"

(* The writer emits one event per line, so per-event fields can be read
   back with plain string search.  [field line key] returns the raw token
   following ["key":]. *)
let field line key =
  let pat = Printf.sprintf "\"%s\":" key in
  let plen = String.length pat in
  let n = String.length line in
  let rec find i =
    if i + plen > n then None
    else if String.sub line i plen = pat then begin
      let start = i + plen in
      let rec stop j in_string =
        if j >= n then j
        else
          match line.[j] with
          | '"' -> stop (j + 1) (not in_string)
          | (',' | '}') when not in_string -> j
          | _ -> stop (j + 1) in_string
      in
      Some (String.sub line start (stop start false - start))
    end
    else find (i + 1)
  in
  find 0

let unquote s =
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then String.sub s 1 (n - 2) else s

let validate_string contents =
  try
    check_json_syntax contents;
    let begins = Hashtbl.create 16 and ends = Hashtbl.create 16 in
    let bump tbl k = Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)) in
    let events = ref 0 and pause_slices = ref 0 and phase_slices = ref 0 in
    let nbegins = ref 0 and nends = ref 0 in
    String.split_on_char '\n' contents
    |> List.iter (fun line ->
           match field line "ph" with
           | None -> ()
           | Some ph ->
               incr events;
               let tid = match field line "tid" with Some t -> t | None -> "-" in
               let cat = Option.map unquote (field line "cat") in
               (match unquote ph with
               | "B" ->
                   incr nbegins;
                   bump begins tid;
                   (match cat with
                   | Some "pause" -> incr pause_slices
                   | Some "phase" -> incr phase_slices
                   | _ -> ())
               | "E" ->
                   incr nends;
                   bump ends tid
               | _ -> ()));
    if !nbegins <> !nends then
      Error (Printf.sprintf "unbalanced slices: %d begins vs %d ends" !nbegins !nends)
    else begin
      let unbalanced = ref None in
      Hashtbl.iter
        (fun tid b ->
          let e = Option.value ~default:0 (Hashtbl.find_opt ends tid) in
          if b <> e && !unbalanced = None then
            unbalanced := Some (Printf.sprintf "track %s: %d begins vs %d ends" tid b e))
        begins;
      match !unbalanced with
      | Some msg -> Error ("unbalanced slices: " ^ msg)
      | None ->
          Ok
            {
              events = !events;
              pause_slices = !pause_slices;
              phase_slices = !phase_slices;
              begins = !nbegins;
              ends = !nends;
            }
    end
  with Invalid msg -> Error ("invalid JSON: " ^ msg)

let validate_file path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  validate_string contents
