(** The simulation event spine: one typed, allocation-conscious stream that
    every layer (engine, collectors, heap, workloads) emits into, and from
    which every measurement is derived.

    Events are encoded as five ints — (time, code, a, b, c); see {!Event}
    for the taxonomy and packing.  Strings never travel in events: they are
    interned once ({!intern}) and referenced by id.  Each event is folded
    into the always-on {!Counters} (cycle attribution, pause log, latency
    histograms) and fanned out to any attached subscribers.  With no
    subscriber attached, emission allocates nothing; attaching a full trace
    ({!attach_trace}) buffers the raw stream for export or replay. *)

type pause = { start : int; duration : int; reason : string }

module Counters : sig
  (** State of the fold over the event stream.  Every field is a pure
      function of the events applied so far; {!Trace.replay} reproduces it
      from a recorded trace. *)
  type t

  val create : unit -> t

  val apply : t -> time:int -> code:int -> a:int -> b:int -> c:int -> unit
  (** The fold step.  [Step_complete] is the hot arm: four array updates,
      no allocation. *)

  val wall_stw : t -> now:int -> int
  (** Wall cycles inside pauses, counting an open pause up to [now]. *)

  val footprint_region_cycles : t -> now:int -> int
  (** Time-weighted integral of the heap limit (region·cycles), accrued
      over [heap-init] and [limit-change] events and closed at [now] —
      the memory·time cost heap-sizing controllers minimise. *)

  val reset : t -> unit
  (** Rewind to the post-{!create} state, keeping grown array capacities.
      The histograms are replaced with fresh ones rather than cleared:
      measurements capture them by reference, so in-place clearing would
      corrupt the previous run's report.  Note the thread arrays keep
      their (zero-filled) capacity, so {!fingerprint} — which flattens
      whole arrays — may differ from a fresh spine in trailing zeros;
      differential suites over warm state compare measurements, not
      fingerprints. *)

  val fingerprint : t -> now:int -> int list
  (** Flattened scalar view for differential tests. *)
end

type subscriber = {
  sub_name : string;
  on_event : time:int -> code:int -> a:int -> b:int -> c:int -> unit;
}

module Trace : sig
  (** Full-trace sink: a flat int buffer, five slots per event. *)
  type t

  val create : ?capacity_events:int -> unit -> t

  val length : t -> int
  (** Number of recorded events. *)

  val append : t -> time:int -> code:int -> a:int -> b:int -> c:int -> unit

  val iter :
    t -> (time:int -> code:int -> a:int -> b:int -> c:int -> unit) -> unit

  val replay : t -> Counters.t
  (** Fold the recorded stream into a fresh [Counters.t]. *)
end

type t

val create : unit -> t

val counters : t -> Counters.t

val reset : t -> unit
(** Rewind the spine for the next run of a warm worker: {!Counters.reset},
    a cleared intern table, and an emptied subscriber list (a previous
    run's pause probes must not fire into the next run).  The clock stays
    wired — the owning engine resets its own clock. *)

val set_clock : t -> (unit -> int) -> unit
(** Install the simulated-time source (the engine does this at creation);
    emitters that are not driven by the engine read it via {!now}. *)

val now : t -> int

val intern : t -> string -> int

val string_of_id : t -> int -> string
(** [string_of_id t (-1)] is [""]. *)

val subscribe : t -> subscriber -> unit

val attach_trace : ?capacity_events:int -> t -> Trace.t
(** Attach a full-trace subscriber and return its sink. *)

val tracing : t -> bool
(** At least one subscriber is attached. *)

(** {1 Typed emitters}

    All take the event time explicitly; the hot ones take only ints. *)

val step_complete :
  t -> time:int -> tid:int -> kind:int -> cycles:int -> in_pause:bool -> unit

val thread_spawn : t -> time:int -> tid:int -> kind:int -> name:string -> unit

val safepoint_request : t -> time:int -> reason_id:int -> unit

val pause_begin : t -> time:int -> reason_id:int -> unit

val pause_end : t -> time:int -> reason_id:int -> unit
(** Closes the pause opened by the last {!pause_begin}; the duration is
    derived from its start time. *)

val phase_begin :
  t -> time:int -> collector_id:int -> phase:Event.phase -> tid:int -> unit

val phase_end :
  t -> time:int -> collector_id:int -> phase:Event.phase -> tid:int -> unit

val stall_begin : t -> time:int -> tid:int -> wake:int -> unit

val stall_end : t -> time:int -> tid:int -> unit

val alloc_stall_begin : t -> time:int -> tid:int -> unit

val alloc_stall_end : t -> time:int -> tid:int -> waited:int -> unit

val pacing_stall : t -> time:int -> tid:int -> cycles:int -> unit

val degeneration : t -> time:int -> reason_id:int -> unit

val oom : t -> time:int -> reason_id:int -> unit

val heap_init : t -> time:int -> regions:int -> region_words:int -> unit

val region_transition :
  t -> time:int -> index:int -> from_space:int -> to_space:int -> unit

val request_start : t -> time:int -> index:int -> tid:int -> unit

val request_complete :
  t -> time:int -> index:int -> service:int -> metered:int -> unit

val limit_change :
  t -> time:int -> regions:int -> old_regions:int -> controller_id:int -> unit
(** A heap-sizing controller changed the region-array limit.  Also
    refreshes the heap-geometry counters ([heap_regions], peak, and the
    footprint integral). *)

(** Fabric worker lifecycle, emitted by the campaign coordinator (not the
    simulation engine).  [time] is a coordinator-side monotonic tick, not
    simulated cycles.  These fold into dedicated counters that are
    deliberately {e not} part of {!fingerprint}: worker placement varies
    with scheduling and crashes while the report must not. *)

val fabric_worker_spawn : t -> time:int -> worker:int -> transport:int -> unit
(** [transport]: 0 = pipe (forked), 1 = socket ({!Event.transport_name}). *)

val fabric_worker_dead : t -> time:int -> worker:int -> requeued:int -> unit

val fabric_group_steal :
  t -> time:int -> victim:int -> thief:int -> cells:int -> unit

(** {1 Derived views} *)

val wall_stw : t -> now:int -> int

val cycles_of_kind : t -> int -> int
(** Indexed by {!Event.mutator_kind} / {!Event.gc_worker_kind}. *)

val cycles_stw_of_kind : t -> int -> int

val cycles_of_thread : t -> int -> int

val pause_count : t -> int

val pause_histogram : t -> Gcr_util.Histogram.t
(** Duration histogram, recorded at pause close. *)

val iter_pauses :
  t -> (start:int -> duration:int -> reason:string -> unit) -> unit

val pauses : t -> pause list
(** Completed pauses, in order (an open pause at abort is not listed). *)

val latency_metered : t -> Gcr_util.Histogram.t

val latency_simple : t -> Gcr_util.Histogram.t

val limit_changes : t -> int
(** Number of [limit-change] events folded so far. *)

val heap_limit_regions : t -> int
(** The live heap limit, in regions (initialised by [heap-init]). *)

val heap_limit_peak_regions : t -> int

val heap_region_words : t -> int
(** Region size recorded by the last heap-init event; 0 before any. *)

val footprint_region_cycles : t -> now:int -> int
(** See {!Counters.footprint_region_cycles}. *)

val worker_spawns : t -> int

val worker_deaths : t -> int

val cells_requeued : t -> int

val groups_stolen : t -> int

val cells_stolen : t -> int

val decode_event : t -> code:int -> a:int -> b:int -> c:int -> Event.t

val fingerprint : t -> now:int -> int list
