(** Chrome trace-event JSON export of a recorded event stream, loadable in
    ui.perfetto.dev: one track per simulated thread (phase and stall
    slices), a safepoint track (pause slices, degeneration/OOM instants),
    per-mutator request tracks, and a free-region counter.  Timestamps are
    microseconds of simulated time. *)

val write_buffer : Obs.t -> Obs.Trace.t -> Buffer.t

val write_channel : out_channel -> Obs.t -> Obs.Trace.t -> unit

val write_file : string -> Obs.t -> Obs.Trace.t -> unit

type summary = {
  events : int;
  pause_slices : int;
  phase_slices : int;
  begins : int;
  ends : int;
}

val validate_string : string -> (summary, string) result
(** Check that the trace text parses as JSON and that every track's
    begin/end slice events balance. *)

val validate_file : string -> (summary, string) result
