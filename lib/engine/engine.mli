(** Discrete-event execution engine.

    The engine owns simulated time (integer cycles), a set of threads, and
    [cpus] logical processors.  Threads execute {e steps}: bounded slices of
    work with a cycle cost and a host-side completion callback.  At most
    [cpus] steps run concurrently; surplus runnable threads wait in a FIFO
    run queue, so contention between mutators and concurrent GC workers
    lengthens wall-clock time exactly as core oversubscription does on real
    hardware.  Stalled threads consume wall time but no cycles — the
    mechanism behind allocation stalls and pacing.

    The engine also implements the safepoint protocol and attributes both
    wall time and per-thread cycles to "inside a stop-the-world pause" vs
    "outside", which is precisely the measurement the paper's JVMTI agent
    performs.

    Steps should stay small (tens of microseconds of simulated time): the
    scheduler is run-to-completion within a step, so step granularity bounds
    both time-to-safepoint and scheduling fairness. *)

type t

type thread

type thread_kind =
  | Mutator
  | Gc_worker

val create :
  cpus:int ->
  ?safepoint_sync_cycles:int ->
  ?cache_disruption_cycles:int ->
  ?obs:Gcr_obs.Obs.t ->
  unit ->
  t
(** [safepoint_sync_cycles] (default 3000): wall cost of reaching a global
    safepoint once every mutator has parked.  [cache_disruption_cycles]
    (default 0): cold-cache penalty added to each mutator's first step
    after a pause (collection work displaced its cache — paper §II-B).
    [obs] (default: a fresh spine) receives every scheduling, safepoint and
    stall event; all accounting below is derived from it. *)

val obs : t -> Gcr_obs.Obs.t
(** The observation spine this engine emits into.  Collectors, the heap and
    workloads reach it through here; its clock is wired to {!now}. *)

val reset :
  t ->
  cpus:int ->
  ?safepoint_sync_cycles:int ->
  ?cache_disruption_cycles:int ->
  unit ->
  unit
(** Rewind the engine (and its observation spine, subscribers included)
    to the post-{!create} state under possibly new machine parameters,
    keeping internal capacities — the warm execution path's per-worker
    reuse.  Safe after aborted runs: no clean end state is assumed.
    Same defaults and validation as {!create}. *)

(** {1 Threads and steps} *)

val spawn : t -> kind:thread_kind -> name:string -> thread

val thread_kind : thread -> thread_kind

val thread_name : thread -> string

val thread_id : thread -> int
(** The engine tid, as carried by the thread's events. *)

val submit : t -> thread -> cycles:int -> (unit -> unit) -> unit
(** Schedule the thread's next step.  The thread must be idle (no step
    pending).  When the step has consumed [cycles] on a CPU, the callback
    runs; it typically submits the next step.  If a safepoint is pending and
    the thread is a mutator, the step is parked until release. *)

val exit_thread : t -> thread -> unit
(** Mark the thread finished.  When the last mutator exits, [run]
    returns. *)

val stall : t -> thread -> cycles:int -> (unit -> unit) -> unit
(** Put the thread to sleep for [cycles] of wall time without occupying a
    CPU or accruing cycles; then run the continuation. *)

val park : t -> thread -> unit
(** Block the thread indefinitely (e.g. waiting for a collection); resume
    with {!resume}. *)

val resume : t -> thread -> (unit -> unit) -> unit
(** Unblock a parked thread by scheduling a zero-cost continuation. *)

val is_parked : thread -> bool

(** {1 Timers} *)

val at : t -> time:int -> (unit -> unit) -> unit
(** Run a host callback at the given simulated time (≥ now).  Timer
    callbacks consume no cycles and need no CPU (external events such as
    request arrivals). *)

val after : t -> cycles:int -> (unit -> unit) -> unit

(** {1 Safepoints and pauses} *)

val request_stop : t -> reason:string -> (unit -> unit) -> unit
(** Bring all mutators to a stop.  Mutators park at their next step
    boundary; once none is running, the global sync cost elapses, the pause
    window opens and the callback runs.  Only one outstanding request is
    allowed. *)

val release_stop : t -> unit
(** Close the pause window and release every mutator parked at the
    safepoint. *)

val stw_active : t -> bool

val stop_requested : t -> bool
(** A stop is pending or a pause is open — collectors must not issue a
    second [request_stop] while this holds. *)

type pause = Gcr_obs.Obs.pause = { start : int; duration : int; reason : string }

val pauses : t -> pause list
(** Completed pauses, in order. *)

(** {1 Time and accounting}

    All accounting is derived from the observation spine; the engine keeps
    no counters of its own. *)

val now : t -> int

val wall_stw : t -> int
(** Wall cycles spent inside pause windows so far (a currently open pause
    counts up to now). *)

val cycles_of_kind : t -> thread_kind -> int
(** Total cycles consumed by threads of that kind. *)

val cycles_stw_of_kind : t -> thread_kind -> int
(** The subset consumed inside pause windows. *)

val cycles_of_thread : thread -> int

(** {1 Legacy accounting (differential testing only)}

    When the environment variable [GCR_LEGACY_ACCOUNTING] is set at engine
    creation, the pre-event-spine counters are maintained in parallel so
    tests can assert the derived numbers match them exactly. *)

type legacy_snapshot = {
  lsnap_wall_stw : int;
  lsnap_cycles_mutator : int;
  lsnap_cycles_gc : int;
  lsnap_cycles_mutator_stw : int;
  lsnap_cycles_gc_stw : int;
  lsnap_pauses : pause list;
}

val legacy_snapshot : t -> legacy_snapshot option
(** [None] unless legacy accounting was enabled at creation. *)

(** {1 Running} *)

type outcome =
  | All_mutators_finished
  | Aborted of string

val abort : t -> reason:string -> unit
(** Stop the simulation at the current instant (e.g. OutOfMemoryError). *)

val run : t -> ?max_events:int -> unit -> outcome
(** Process events until every mutator has exited, [abort] is called, or
    the engine detects that no progress is possible (reported as
    [Aborted "deadlock"]).  [max_events] (default 50 million) guards
    against runaway simulations. *)

val run_until : t -> time:int -> ?max_events:int -> unit -> outcome option
(** Like {!run}, but additionally pauses once the next queued event lies
    strictly after [time]: [None] means the simulation is still alive and
    a later [run_until]/[run] resumes it losslessly (the horizon event
    stays queued; the clock stays at the last processed event).  The
    epoch-stepping primitive under the multi-tenant memory market, where
    several engines advance in lockstep between broker decisions.
    [Some outcome] means the run ended before the horizon. *)
