module Vec = Gcr_util.Vec
module Binary_heap = Gcr_util.Binary_heap
module Obs = Gcr_obs.Obs
module Event = Gcr_obs.Event

type thread_kind = Mutator | Gc_worker

let kind_index = function Mutator -> Event.mutator_kind | Gc_worker -> Event.gc_worker_kind

type thread_state =
  | Idle  (** between steps; waiting for a submit *)
  | Queued  (** in the run queue *)
  | On_cpu
  | Parked_safepoint  (** step withheld until the pause is released *)
  | Parked  (** blocked, waiting for an explicit resume *)
  | Stalled
  | Finished

(* The pending step (cost + continuation) lives flat on the thread record
   rather than in per-event tuples/variants: submitting, queueing and
   completing a step allocates nothing.  [event] is the thread's one
   preallocated event box, pushed into the event queue whenever the thread
   is On_cpu or Stalled — the state disambiguates which completion it is.
   The state machine guarantees the box is in the queue at most once.

   Cycle accounting does not live here: step completions are emitted into
   the observation spine ([obs]), which owns every derived counter. *)
type thread = {
  tid : int;
  kind : thread_kind;
  name : string;
  obs : Obs.t;
  mutable state : thread_state;
  mutable pending_cycles : int;
  mutable pending_cb : unit -> unit;
  event : event;
}

and event =
  | Thread_ev of thread  (** step or stall completion, per [state] *)
  | Timer of (unit -> unit)

type pause = Gcr_obs.Obs.pause = { start : int; duration : int; reason : string }

type stop_state =
  | No_stop
  | Stopping of {
      reason : string;
      reason_id : int;
      cb : unit -> unit;
      mutable sync_scheduled : bool;
    }
  | Paused of { reason : string; reason_id : int }

(* The pre-refactor accounting, kept behind a debug flag
   (GCR_LEGACY_ACCOUNTING) so differential tests can check the
   event-derived numbers against it.  Off by default: ordinary runs carry
   no duplicate counters. *)
type legacy = {
  mutable lwall_stw : int;
  lkind_cycles : int array;
  lkind_cycles_stw : int array;
  lpauses : pause Vec.t;
}

type t = {
  mutable cpus : int;
  mutable safepoint_sync : int;
  mutable cache_disruption : int;
  obs : Obs.t;
  mutable clock : int;
  events : event Binary_heap.t;
  (* FIFO run queue: a ring of threads (their step is in the pending
     fields) *)
  mutable ready : thread array;
  mutable ready_head : int;
  mutable ready_len : int;
  mutable busy : int;
  threads : thread Vec.t;
  mutable mutators_live : int;
  mutable mutators_active : int;  (** mutator steps queued or on CPU *)
  mutable stop : stop_state;
  mutable pause_start : int;
  legacy_on : bool;
  legacy : legacy;
  mutable aborted : string option;
}

type outcome = All_mutators_finished | Aborted of string

let nop () = ()

let create ~cpus ?(safepoint_sync_cycles = 3000) ?(cache_disruption_cycles = 0) ?obs () =
  if cpus < 1 then invalid_arg "Engine.create: cpus < 1";
  if safepoint_sync_cycles < 0 || cache_disruption_cycles < 0 then
    invalid_arg "Engine.create: negative cost";
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let t =
    {
      cpus;
      safepoint_sync = safepoint_sync_cycles;
      cache_disruption = cache_disruption_cycles;
      obs;
      clock = 0;
      events = Binary_heap.create ();
      ready = [||];
      ready_head = 0;
      ready_len = 0;
      busy = 0;
      threads = Vec.create ();
      mutators_live = 0;
      mutators_active = 0;
      stop = No_stop;
      pause_start = 0;
      legacy_on = Sys.getenv_opt "GCR_LEGACY_ACCOUNTING" <> None;
      legacy =
        {
          lwall_stw = 0;
          lkind_cycles = Array.make 2 0;
          lkind_cycles_stw = Array.make 2 0;
          lpauses = Vec.create ();
        };
      aborted = None;
    }
  in
  Obs.set_clock obs (fun () -> t.clock);
  t

(* Rewind a finished (or aborted) engine for its next run, keeping the
   event heap, run-queue ring and thread vec at their grown capacities.
   The observation spine is reset with it — subscribers included, so a
   previous run's probes cannot fire — and its clock closure stays valid
   because the engine identity is unchanged.  An aborted run leaves
   arbitrary mid-flight state (queued events, parked threads, an open
   pause); nothing here assumes a clean end, so a poisoned engine re-arms
   fully. *)
let reset t ~cpus ?(safepoint_sync_cycles = 3000) ?(cache_disruption_cycles = 0) () =
  if cpus < 1 then invalid_arg "Engine.reset: cpus < 1";
  if safepoint_sync_cycles < 0 || cache_disruption_cycles < 0 then
    invalid_arg "Engine.reset: negative cost";
  t.cpus <- cpus;
  t.safepoint_sync <- safepoint_sync_cycles;
  t.cache_disruption <- cache_disruption_cycles;
  t.clock <- 0;
  Binary_heap.reset t.events;
  (* drop the ring outright: stale slots would retain the previous run's
     thread records (and their continuation closures) indefinitely *)
  t.ready <- [||];
  t.ready_head <- 0;
  t.ready_len <- 0;
  t.busy <- 0;
  Vec.clear t.threads;
  t.mutators_live <- 0;
  t.mutators_active <- 0;
  t.stop <- No_stop;
  t.pause_start <- 0;
  t.legacy.lwall_stw <- 0;
  Array.fill t.legacy.lkind_cycles 0 (Array.length t.legacy.lkind_cycles) 0;
  Array.fill t.legacy.lkind_cycles_stw 0 (Array.length t.legacy.lkind_cycles_stw) 0;
  Vec.clear t.legacy.lpauses;
  t.aborted <- None;
  Obs.reset t.obs

let obs t = t.obs

let now t = t.clock

let spawn t ~kind ~name =
  let rec th =
    {
      tid = Vec.length t.threads;
      kind;
      name;
      obs = t.obs;
      state = Idle;
      pending_cycles = 0;
      pending_cb = nop;
      event = Thread_ev th;
    }
  in
  Vec.push t.threads th;
  if kind = Mutator then t.mutators_live <- t.mutators_live + 1;
  Obs.thread_spawn t.obs ~time:t.clock ~tid:th.tid ~kind:(kind_index kind) ~name;
  th

let thread_kind th = th.kind

let thread_name th = th.name

let thread_id th = th.tid

let pause_active t = match t.stop with Paused _ -> true | No_stop | Stopping _ -> false

let stop_pending t = match t.stop with No_stop -> false | Stopping _ | Paused _ -> true

let stw_active t = pause_active t

let stop_requested = stop_pending

(* Threads are permanently retained by [t.threads], so ring slots need no
   scrubbing on pop. *)
let ready_push t th =
  let cap = Array.length t.ready in
  if t.ready_len = cap then begin
    let cap' = if cap = 0 then 8 else cap * 2 in
    let ring = Array.make cap' th in
    for i = 0 to t.ready_len - 1 do
      let j = t.ready_head + i in
      ring.(i) <- t.ready.(if j >= cap then j - cap else j)
    done;
    t.ready <- ring;
    t.ready_head <- 0
  end;
  let cap = Array.length t.ready in
  let tail = t.ready_head + t.ready_len in
  t.ready.(if tail >= cap then tail - cap else tail) <- th;
  t.ready_len <- t.ready_len + 1

let ready_pop t =
  let th = t.ready.(t.ready_head) in
  let head = t.ready_head + 1 in
  t.ready_head <- (if head >= Array.length t.ready then 0 else head);
  t.ready_len <- t.ready_len - 1;
  th

let enqueue_ready t th cycles cb =
  th.state <- Queued;
  th.pending_cycles <- cycles;
  th.pending_cb <- cb;
  if th.kind = Mutator then t.mutators_active <- t.mutators_active + 1;
  ready_push t th

let submit t th ~cycles cb =
  if cycles < 0 then invalid_arg "Engine.submit: negative cycles";
  (match th.state with
  | Idle -> ()
  | Queued | On_cpu | Parked_safepoint | Parked | Stalled | Finished ->
      invalid_arg (Printf.sprintf "Engine.submit: thread %s is not idle" th.name));
  if th.kind = Mutator && stop_pending t then begin
    th.state <- Parked_safepoint;
    th.pending_cycles <- cycles;
    th.pending_cb <- cb
  end
  else enqueue_ready t th cycles cb

let exit_thread t th =
  (match th.state with
  | Idle | Parked | Stalled -> ()
  | Queued | On_cpu | Parked_safepoint | Finished ->
      invalid_arg (Printf.sprintf "Engine.exit_thread: thread %s is busy" th.name));
  th.state <- Finished;
  th.pending_cb <- nop;
  if th.kind = Mutator then t.mutators_live <- t.mutators_live - 1

let stall t th ~cycles cb =
  if cycles < 0 then invalid_arg "Engine.stall: negative cycles";
  (match th.state with
  | Idle -> ()
  | Queued | On_cpu | Parked_safepoint | Parked | Stalled | Finished ->
      invalid_arg (Printf.sprintf "Engine.stall: thread %s is not idle" th.name));
  th.state <- Stalled;
  th.pending_cycles <- 0;
  th.pending_cb <- cb;
  Obs.stall_begin t.obs ~time:t.clock ~tid:th.tid ~wake:(t.clock + cycles);
  Binary_heap.add t.events ~priority:(t.clock + cycles) th.event

let park _t th =
  (match th.state with
  | Idle -> ()
  | Queued | On_cpu | Parked_safepoint | Parked | Stalled | Finished ->
      invalid_arg (Printf.sprintf "Engine.park: thread %s is not idle" th.name));
  th.state <- Parked

let resume t th cb =
  (match th.state with
  | Parked -> ()
  | Idle | Queued | On_cpu | Parked_safepoint | Stalled | Finished ->
      invalid_arg (Printf.sprintf "Engine.resume: thread %s is not parked" th.name));
  th.state <- Idle;
  submit t th ~cycles:0 cb

let is_parked th = th.state = Parked

let at t ~time cb =
  if time < t.clock then invalid_arg "Engine.at: time in the past";
  Binary_heap.add t.events ~priority:time (Timer cb)

let after t ~cycles cb = at t ~time:(t.clock + cycles) cb

let request_stop t ~reason cb =
  (match t.stop with
  | No_stop -> ()
  | Stopping _ | Paused _ -> invalid_arg "Engine.request_stop: stop already in progress");
  let reason_id = Obs.intern t.obs reason in
  Obs.safepoint_request t.obs ~time:t.clock ~reason_id;
  t.stop <- Stopping { reason; reason_id; cb; sync_scheduled = false }

(* Once no mutator step is queued or running, the global sync cost elapses
   and the pause window opens. *)
let check_stop_ready t =
  match t.stop with
  | No_stop | Paused _ -> ()
  | Stopping s ->
      if t.mutators_active = 0 && not s.sync_scheduled then begin
        s.sync_scheduled <- true;
        at t ~time:(t.clock + t.safepoint_sync) (fun () ->
            t.stop <- Paused { reason = s.reason; reason_id = s.reason_id };
            t.pause_start <- t.clock;
            Obs.pause_begin t.obs ~time:t.clock ~reason_id:s.reason_id;
            s.cb ())
      end

let release_stop t =
  match t.stop with
  | No_stop | Stopping _ -> invalid_arg "Engine.release_stop: no pause is open"
  | Paused { reason; reason_id } ->
      if t.legacy_on then
        Vec.push t.legacy.lpauses
          { start = t.pause_start; duration = t.clock - t.pause_start; reason };
      Obs.pause_end t.obs ~time:t.clock ~reason_id;
      t.stop <- No_stop;
      Vec.iter
        (fun th ->
          match th.state with
          | Parked_safepoint ->
              (* resuming mutators restart with a cold cache *)
              enqueue_ready t th (th.pending_cycles + t.cache_disruption) th.pending_cb
          | Idle | Queued | On_cpu | Parked | Stalled | Finished -> ())
        t.threads

let pauses t = Obs.pauses t.obs

let wall_stw t = Obs.wall_stw t.obs ~now:t.clock

let cycles_of_kind t kind = Obs.cycles_of_kind t.obs (kind_index kind)

let cycles_stw_of_kind t kind = Obs.cycles_stw_of_kind t.obs (kind_index kind)

let cycles_of_thread (th : thread) = Obs.cycles_of_thread th.obs th.tid

type legacy_snapshot = {
  lsnap_wall_stw : int;
  lsnap_cycles_mutator : int;
  lsnap_cycles_gc : int;
  lsnap_cycles_mutator_stw : int;
  lsnap_cycles_gc_stw : int;
  lsnap_pauses : pause list;
}

let legacy_snapshot t =
  if not t.legacy_on then None
  else begin
    let l = t.legacy in
    (* mirror the historical accrual: an open pause's wall time was added
       incrementally by the clock, so it is already in [lwall_stw] *)
    Some
      {
        lsnap_wall_stw = l.lwall_stw;
        lsnap_cycles_mutator = l.lkind_cycles.(0);
        lsnap_cycles_gc = l.lkind_cycles.(1);
        lsnap_cycles_mutator_stw = l.lkind_cycles_stw.(0);
        lsnap_cycles_gc_stw = l.lkind_cycles_stw.(1);
        lsnap_pauses = Vec.to_list l.lpauses;
      }
  end

let abort t ~reason = if t.aborted = None then t.aborted <- Some reason

let dispatch t =
  while t.busy < t.cpus && t.ready_len > 0 do
    let th = ready_pop t in
    (match th.state with
    | Queued -> ()
    | Idle | On_cpu | Parked_safepoint | Parked | Stalled | Finished -> assert false);
    th.state <- On_cpu;
    t.busy <- t.busy + 1;
    Binary_heap.add t.events ~priority:(t.clock + th.pending_cycles) th.event
  done

let advance_clock t time =
  assert (time >= t.clock);
  if t.legacy_on && pause_active t then
    t.legacy.lwall_stw <- t.legacy.lwall_stw + (time - t.clock);
  t.clock <- time

let process_event t = function
  | Thread_ev th -> (
      match th.state with
      | On_cpu ->
          (* step completion *)
          let cycles = th.pending_cycles in
          let cb = th.pending_cb in
          t.busy <- t.busy - 1;
          if th.kind = Mutator then t.mutators_active <- t.mutators_active - 1;
          th.state <- Idle;
          th.pending_cb <- nop;
          let in_pause = pause_active t in
          Obs.step_complete t.obs ~time:t.clock ~tid:th.tid ~kind:(kind_index th.kind)
            ~cycles ~in_pause;
          if t.legacy_on then begin
            let k = kind_index th.kind in
            t.legacy.lkind_cycles.(k) <- t.legacy.lkind_cycles.(k) + cycles;
            if in_pause then
              t.legacy.lkind_cycles_stw.(k) <- t.legacy.lkind_cycles_stw.(k) + cycles
          end;
          cb ()
      | Stalled ->
          (* stall completion *)
          Obs.stall_end t.obs ~time:t.clock ~tid:th.tid;
          if th.kind = Mutator && stop_pending t then begin
            (* A mutator waking into a safepoint parks instead: its
               continuation (which may touch the heap) must not interleave
               with stop-the-world collection work. *)
            th.state <- Parked_safepoint;
            th.pending_cycles <- 0
            (* pending_cb already holds the continuation *)
          end
          else begin
            let cb = th.pending_cb in
            th.state <- Idle;
            th.pending_cb <- nop;
            cb ()
          end
      | Idle | Queued | Parked_safepoint | Parked | Finished -> assert false)
  | Timer cb -> cb ()

(* Shared loop under [run] and [run_until].  [until = Some horizon]
   additionally pauses — returning [None] — once the next event lies
   strictly beyond [horizon]; the event stays queued and a later call
   resumes exactly where this one stopped.  With [until = None] the
   horizon check compiles away and the loop is the historical [run]. *)
let run_general t ~until ~max_events =
  let outcome = ref None in
  let paused = ref false in
  let events_seen = ref 0 in
  (* a stop may have been requested before the engine started *)
  check_stop_ready t;
  dispatch t;
  while !outcome = None && not !paused do
    match t.aborted with
    | Some reason -> outcome := Some (Aborted reason)
    | None ->
        if t.mutators_live = 0 then outcome := Some All_mutators_finished
        else if Binary_heap.is_empty t.events then
          outcome := Some (Aborted "deadlock: no runnable threads or events")
        else begin
          match until with
          | Some horizon when Binary_heap.min_priority t.events > horizon ->
              paused := true
          | _ ->
              incr events_seen;
              if !events_seen > max_events then
                outcome := Some (Aborted "event budget exhausted")
              else begin
                (* pop_min_value + popped_priority: one heap removal per event,
                   no min_priority peek and no (priority, value) pair. *)
                let ev = Binary_heap.pop_min_value t.events in
                advance_clock t (Binary_heap.popped_priority t.events);
                process_event t ev;
                check_stop_ready t;
                dispatch t
              end
        end
  done;
  match !outcome with
  | Some o -> Some o
  | None ->
      assert !paused;
      None

let run t ?(max_events = 50_000_000) () =
  match run_general t ~until:None ~max_events with
  | Some o -> o
  | None -> assert false

let run_until t ~time ?(max_events = 50_000_000) () =
  run_general t ~until:(Some time) ~max_events
