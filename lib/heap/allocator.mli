(** Bump allocator with a thread-local current region.

    This is the simulator's TLAB analogue: each mutator thread owns one, as
    does each GC worker that copies objects.  Fast path bumps the current
    region; when it cannot fit the request, a fresh region is taken from
    the free pool (the caller is told, so it can charge the refill cost and
    let the collector's policy run). *)

type t

type outcome =
  | Allocated of { obj : Obj_model.id; refilled : bool }
  | Out_of_regions
      (** the free pool is empty; the caller must trigger a collection,
          stall, or fail with OOM *)

val create : Heap.t -> space:Region.space -> t

val space : t -> Region.space

val alloc : t -> size:int -> nfields:int -> outcome

val retire : t -> unit
(** Drop the current region (it keeps its space label and contents); the
    next allocation will refill.  Called at collection boundaries. *)

val refill : t -> Region.t option
(** Retire the current region and take a fresh one from the free pool,
    making it current.  Copy targets driven by [Heap.move_object] (which
    bypasses [alloc]) use this; [None] when the pool is empty. *)

val current_region : t -> Region.t option
