(** Fixed-size heap regions.

    The heap is a flat array of equally sized regions (G1/Shenandoah/ZGC
    style).  The stop-the-world collectors reuse the same substrate: their
    "spaces" are simply sets of regions tagged with a space label, which
    keeps one allocation and accounting path for all six collectors. *)

type space =
  | Free  (** in the free pool *)
  | Eden  (** mutator allocation target *)
  | Survivor  (** young objects that survived at least one collection *)
  | Old  (** tenured / mature space *)

val space_equal : space -> space -> bool

val pp_space : Format.formatter -> space -> unit

type t = {
  index : int;
  mutable space : space;
  mutable used_words : int;  (** bump cursor, words allocated *)
  mutable live_words : int;  (** live words found by the last mark *)
  mutable objects : Obj_model.id Gcr_util.Vec.t;
      (** ids of objects whose storage is (or was, until evacuated) here *)
  mutable pinned : bool;  (** excluded from collection sets while set *)
}

val make : index:int -> t

val reset : t -> t
(** Return to the [Free] state with no objects (the vec is cleared, not
    reallocated). *)

val free_words_in : region_words:int -> t -> int
