type id = int

let null = 0

type t = {
  id : id;
  size : int;
  fields : id array;
  mutable region : int;
  mutable age : int;
  mutable mark : int;
  mutable scratch : int;
  mutable remembered : bool;
}

let header_words = 2

let fields_capacity ~size =
  let cap = size - header_words in
  if cap < 0 then 0 else cap

let make ~id ~size ~nfields ~region =
  if size < header_words then invalid_arg "Obj_model.make: size below header";
  if nfields < 0 || nfields > fields_capacity ~size then
    invalid_arg "Obj_model.make: field count does not fit";
  {
    id;
    size;
    fields = Array.make nfields null;
    region;
    age = 0;
    mark = -1;
    scratch = -1;
    remembered = false;
  }

let is_null id = id = null
