type id = int

let null = 0

let is_null id = id = null

let header_words = 2

let fields_capacity ~size =
  let cap = size - header_words in
  if cap < 0 then 0 else cap

(* Struct-of-arrays object store.

   Every per-object attribute lives in its own flat [int array] indexed by
   object id, and all reference fields share one arena of object ids.  The
   mark loop that dominates every collector then walks dense int arrays
   instead of chasing per-object record pointers through the host heap, and
   allocating a simulated object writes a handful of array slots instead of
   allocating host memory.

   Dead ids are recycled through a LIFO free stack: a workload that churns
   millions of short-lived objects keeps the metadata arrays sized to the
   peak live population instead of growing (and re-copying) them with the
   total allocation count, and the hot ids stay dense in cache.  Recycling
   is safe because nothing holds a dead id: roots and heap references keep
   their targets live by construction, and every path that frees an object
   (region release, compaction purge) also clears or rebuilds the region's
   object vec in the same pause, so a reused id can never alias a stale
   entry.  [alloc] rewrites every per-id attribute, so a recycled id is
   indistinguishable from a fresh one.  Field extents in the arena are
   recycled the same way: when an object dies its extent is pushed onto an
   intrusive free list for its exact field count (the next-pointer is
   stored in the extent's first slot), and a later allocation with the same
   field count pops it.  Extents popped from a free list are re-zeroed
   before handing out; extents carved from the bump frontier are already
   [null] because fresh arena storage is zero-initialised. *)

type store = {
  mutable size : int array;  (** words, header included *)
  mutable region : int array;  (** owning region index *)
  mutable age : int array;
  mutable mark : int array;  (** epoch of the last mark; -1 when fresh *)
  mutable scratch : int array;  (** second, independent mark slot *)
  mutable flags : int array;  (** bit 0 live, bit 1 remembered *)
  mutable foff : int array;  (** offset of the field extent in [arena] *)
  mutable nfields : int array;
  mutable rc : int array;  (** reference count (RC collectors only) *)
  mutable dirty : int array;
      (** epoch of the last logged mutation (RC field-logging barrier);
          -1 when never logged *)
  mutable serial : int array;
      (** birth serial: strictly increasing across all allocations, never
          reused.  Ids are recycled LIFO, so a held id may come to name a
          different object; the serial is the stable identity that
          disambiguates (deferred RC work, cross-collector live sets). *)
  mutable next_serial : int;
  mutable count : int;  (** next fresh id; ids are never reused *)
  mutable arena : int array;  (** all reference fields, as object ids *)
  mutable arena_top : int;  (** bump frontier *)
  mutable free_heads : int array;
      (** head of the free-extent list per exact field count; -1 when
          empty.  The next pointer of a free extent is stored in its first
          arena slot. *)
  mutable free_ids : int array;  (** LIFO stack of recycled ids *)
  mutable free_ids_len : int;
}

let initial_capacity = 1024

let initial_arena = 4096

let create_store () =
  let s =
    {
      size = Array.make initial_capacity 0;
      region = Array.make initial_capacity (-1);
      age = Array.make initial_capacity 0;
      mark = Array.make initial_capacity (-1);
      scratch = Array.make initial_capacity (-1);
      flags = Array.make initial_capacity 0;
      foff = Array.make initial_capacity 0;
      nfields = Array.make initial_capacity 0;
      rc = Array.make initial_capacity 0;
      dirty = Array.make initial_capacity (-1);
      serial = Array.make initial_capacity 0;
      next_serial = 0;
      count = 0;
      arena = Array.make initial_arena null;
      arena_top = 0;
      free_heads = Array.make 8 (-1);
      free_ids = Array.make 256 0;
      free_ids_len = 0;
    }
  in
  (* id 0 is the null reference: a permanently dead header-only slot *)
  s.size.(0) <- header_words;
  s.count <- 1;
  s

(* Rewind the store to its post-[create_store] state while keeping every
   array at its grown capacity — the amortisation the warm execution path
   is built on.  Two invariants make this sound without touching the per-id
   attribute planes: (a) [alloc] rewrites every attribute of any id it
   hands out, so stale values above [count] are unreachable; (b) arena
   extents carved from the bump frontier rely on fresh storage reading as
   [null] (see [take_extent]), so the used prefix — which holds both live
   fields and free-list next-pointers — must be re-zeroed before the
   frontier rewinds. *)
let reset_store s =
  Array.fill s.arena 0 s.arena_top null;
  s.arena_top <- 0;
  Array.fill s.free_heads 0 (Array.length s.free_heads) (-1);
  s.free_ids_len <- 0;
  s.next_serial <- 0;
  s.count <- 1;
  s.size.(0) <- header_words

let grow_meta s =
  let old = Array.length s.size in
  let cap = 2 * old in
  let grow ~fill a =
    let b = Array.make cap fill in
    Array.blit a 0 b 0 old;
    b
  in
  s.size <- grow ~fill:0 s.size;
  s.region <- grow ~fill:(-1) s.region;
  s.age <- grow ~fill:0 s.age;
  s.mark <- grow ~fill:(-1) s.mark;
  s.scratch <- grow ~fill:(-1) s.scratch;
  s.flags <- grow ~fill:0 s.flags;
  s.foff <- grow ~fill:0 s.foff;
  s.nfields <- grow ~fill:0 s.nfields;
  s.rc <- grow ~fill:0 s.rc;
  s.dirty <- grow ~fill:(-1) s.dirty;
  s.serial <- grow ~fill:0 s.serial

let grow_arena s needed =
  let cap = ref (2 * Array.length s.arena) in
  while !cap < needed do
    cap := 2 * !cap
  done;
  let b = Array.make !cap null in
  Array.blit s.arena 0 b 0 s.arena_top;
  s.arena <- b

(* Take a field extent: exact-size free list first, bump frontier
   otherwise.  Zero-field objects get offset 0 and cost no arena words. *)
let take_extent s nf =
  if nf < Array.length s.free_heads && s.free_heads.(nf) >= 0 then begin
    let off = s.free_heads.(nf) in
    s.free_heads.(nf) <- s.arena.(off);
    Array.fill s.arena off nf null;
    off
  end
  else begin
    if s.arena_top + nf > Array.length s.arena then grow_arena s (s.arena_top + nf);
    let off = s.arena_top in
    s.arena_top <- off + nf;
    off
  end

let alloc s ~size ~nfields ~region =
  if size < header_words then invalid_arg "Obj_model.alloc: size below header";
  if nfields < 0 || nfields > fields_capacity ~size then
    invalid_arg "Obj_model.alloc: field count does not fit";
  let id =
    if s.free_ids_len > 0 then begin
      let n = s.free_ids_len - 1 in
      s.free_ids_len <- n;
      Array.unsafe_get s.free_ids n
    end
    else begin
      let id = s.count in
      if id = Array.length s.size then grow_meta s;
      s.count <- id + 1;
      id
    end
  in
  s.size.(id) <- size;
  s.region.(id) <- region;
  s.age.(id) <- 0;
  s.mark.(id) <- -1;
  s.scratch.(id) <- -1;
  s.flags.(id) <- 1;
  s.nfields.(id) <- nfields;
  s.rc.(id) <- 0;
  s.dirty.(id) <- -1;
  s.serial.(id) <- s.next_serial;
  s.next_serial <- s.next_serial + 1;
  s.foff.(id) <- (if nfields = 0 then 0 else take_extent s nfields);
  id

let grow_free_heads s nf =
  let cap = ref (2 * Array.length s.free_heads) in
  while !cap <= nf do
    cap := 2 * !cap
  done;
  let b = Array.make !cap (-1) in
  Array.blit s.free_heads 0 b 0 (Array.length s.free_heads);
  s.free_heads <- b

let free s id =
  s.flags.(id) <- 0;
  let nf = s.nfields.(id) in
  if nf > 0 then begin
    if nf >= Array.length s.free_heads then grow_free_heads s nf;
    let off = s.foff.(id) in
    s.arena.(off) <- s.free_heads.(nf);
    s.free_heads.(nf) <- off
  end;
  if s.free_ids_len = Array.length s.free_ids then begin
    let b = Array.make (2 * s.free_ids_len) 0 in
    Array.blit s.free_ids 0 b 0 s.free_ids_len;
    s.free_ids <- b
  end;
  Array.unsafe_set s.free_ids s.free_ids_len id;
  s.free_ids_len <- s.free_ids_len + 1

(* Accessors below [is_live] assume a live id (see the interface); the
   range check in [is_live] is the only guard, so the hot-path reads and
   writes skip the per-access bounds check.  [id < count <= length] holds
   for every live id because ids are handed out monotonically. *)

let[@inline] is_live s id = id > 0 && id < s.count && Array.unsafe_get s.flags id land 1 <> 0

let[@inline] size s id = Array.unsafe_get s.size id

let[@inline] region s id = Array.unsafe_get s.region id

let[@inline] set_region s id r = Array.unsafe_set s.region id r

let[@inline] age s id = Array.unsafe_get s.age id

let[@inline] set_age s id a = Array.unsafe_set s.age id a

let[@inline] mark s id = Array.unsafe_get s.mark id

let[@inline] set_mark s id m = Array.unsafe_set s.mark id m

let[@inline] scratch s id = Array.unsafe_get s.scratch id

let[@inline] set_scratch s id m = Array.unsafe_set s.scratch id m

let[@inline] rc s id = Array.unsafe_get s.rc id

let[@inline] set_rc s id v = Array.unsafe_set s.rc id v

let[@inline] dirty s id = Array.unsafe_get s.dirty id

let[@inline] set_dirty s id e = Array.unsafe_set s.dirty id e

let[@inline] serial s id = Array.unsafe_get s.serial id

let serials_issued s = s.next_serial

let[@inline] remembered s id = Array.unsafe_get s.flags id land 2 <> 0

let[@inline] set_remembered s id v =
  let f = Array.unsafe_get s.flags id in
  Array.unsafe_set s.flags id (if v then f lor 2 else f land lnot 2)

let[@inline] nfields s id = Array.unsafe_get s.nfields id

let[@inline] field_base s id = Array.unsafe_get s.foff id

let[@inline] arena_get s off = Array.unsafe_get s.arena off

let[@inline] field_get s id i = Array.unsafe_get s.arena (Array.unsafe_get s.foff id + i)

let[@inline] field_set s id i v = Array.unsafe_set s.arena (Array.unsafe_get s.foff id + i) v

let field_extent s id = (s.foff.(id), s.nfields.(id))

let arena_used s = s.arena_top

let iter_fields s id f =
  let base = Array.unsafe_get s.foff id in
  let nf = Array.unsafe_get s.nfields id in
  for i = 0 to nf - 1 do
    f (Array.unsafe_get s.arena (base + i))
  done

let exists_fields s id f =
  let base = Array.unsafe_get s.foff id in
  let nf = Array.unsafe_get s.nfields id in
  let rec loop i = i < nf && (f (Array.unsafe_get s.arena (base + i)) || loop (i + 1)) in
  loop 0
