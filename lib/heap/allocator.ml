type t = {
  heap : Heap.t;
  space : Region.space;
  mutable current : Region.t option;
}

type outcome =
  | Allocated of { obj : Obj_model.id; refilled : bool }
  | Out_of_regions

let create heap ~space =
  if Region.space_equal space Region.Free then invalid_arg "Allocator.create: free space";
  { heap; space; current = None }

let space t = t.space

let take_fresh t =
  match Heap.take_free_region t.heap ~space:t.space with
  | None -> None
  | Some r ->
      t.current <- Some r;
      Some r

let alloc t ~size ~nfields =
  let fresh () =
    match take_fresh t with
    | None -> Out_of_regions
    | Some r ->
        let obj = Heap.alloc_in_region t.heap r ~size ~nfields in
        if Obj_model.is_null obj then
          (* A fresh region cannot fit the object: object sizes are capped
             well below the region size, so this is a programming error. *)
          invalid_arg "Allocator.alloc: object larger than a region"
        else Allocated { obj; refilled = true }
  in
  match t.current with
  | None -> fresh ()
  | Some r ->
      let obj = Heap.alloc_in_region t.heap r ~size ~nfields in
      if Obj_model.is_null obj then fresh () else Allocated { obj; refilled = false }

let retire t = t.current <- None

let refill t =
  retire t;
  take_fresh t

let current_region t = t.current
