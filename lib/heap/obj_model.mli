(** The simulated object model, stored struct-of-arrays.

    Objects are real graph nodes: a size in words and reference fields
    holding ids of other objects, which collectors traverse when marking.
    Identity is stable across moves — "copying" an object updates which
    region owns its words (and charges the copy cost), but never its id, so
    simulated references need no rewriting.  Reference-update costs are
    charged from edge counts instead (see DESIGN.md §5).

    The representation is data-oriented: per-object attributes (size,
    region, age, mark, scratch, liveness, remembered bit) are parallel flat
    [int array]s indexed by id, and every object's reference fields are a
    contiguous {e extent} of a single shared arena of ids.  The tracer's
    transitive-mark loop — the kernel behind every collector — therefore
    walks dense int arrays with no per-object host allocation, and the mark
    bits of hot objects share cache lines.  Dead objects' field extents are
    recycled through exact-size free lists; zero-field objects consume no
    arena words at all. *)

type id = int
(** Object identifier.  [null] (= 0) is the absent reference. *)

val null : id

val is_null : id -> bool

val header_words : int
(** 2: every object pays a two-word header, as in HotSpot. *)

val fields_capacity : size:int -> int
(** Largest legal [nfields] for an object of [size] words. *)

type store
(** The struct-of-arrays object store.  One per simulated heap. *)

val create_store : unit -> store
(** Fresh store; id 0 (the null reference) is pre-reserved and dead. *)

val reset_store : store -> unit
(** Rewind to the post-{!create_store} state, keeping the grown array
    capacities: the id counter, birth-serial counter, free lists, and
    arena frontier all restart from zero, and the used arena prefix is
    re-zeroed (bump-carved extents must read as [null], exactly as fresh
    storage does).  After a reset the store behaves bit-identically to a
    fresh one — the warm execution path's reuse contract. *)

val alloc : store -> size:int -> nfields:int -> region:int -> id
(** A fresh, live, unmarked object of age 0.  [nfields] must fit in
    [size - header_words]; fields start [null].  Recycles the most
    recently freed id when one exists (every per-id attribute is
    rewritten), otherwise takes a fresh monotonically increasing id —
    so the store is sized by the peak live population, not the total
    allocation count. *)

val free : store -> id -> unit
(** Kill the object and recycle its field extent and id.  Accessors
    other than {!is_live} must not be used on a dead id, and holding a
    dead id across a later {!alloc} is a caller bug: the id may now name
    a different object. *)

val is_live : store -> id -> bool
(** Allocation-free; false for [null], out-of-range and freed ids. *)

(** {1 Per-object attributes}

    All accessors assume a live id (no bounds or liveness checks). *)

val size : store -> id -> int

val region : store -> id -> int

val set_region : store -> id -> int -> unit

val age : store -> id -> int

val set_age : store -> id -> int -> unit

val mark : store -> id -> int
(** Epoch of the last mark that reached this object; -1 when fresh. *)

val set_mark : store -> id -> int -> unit

val scratch : store -> id -> int
(** Second, independent mark slot: lets a stop-the-world scavenge run
    while a concurrent marking epoch is in flight (as G1's young
    collections do during concurrent marking). *)

val set_scratch : store -> id -> int -> unit

val rc : store -> id -> int
(** Reference count (RC collectors only); 0 for collectors that never
    write it. *)

val set_rc : store -> id -> int -> unit

val dirty : store -> id -> int
(** Epoch of the last logged mutation (RC field-logging barrier); -1
    when never logged. *)

val set_dirty : store -> id -> int -> unit

val serial : store -> id -> int
(** Birth serial: strictly increasing across all allocations and never
    reused, unlike ids.  The stable identity for deferred RC work and
    cross-collector live-set comparison. *)

val serials_issued : store -> int
(** Total serials handed out so far (= total allocations). *)

val remembered : store -> id -> bool
(** Coarse per-object remembered-set bit. *)

val set_remembered : store -> id -> bool -> unit

(** {1 Reference fields} *)

val nfields : store -> id -> int

val field_get : store -> id -> int -> id

val field_set : store -> id -> int -> id -> unit

val iter_fields : store -> id -> (id -> unit) -> unit

val exists_fields : store -> id -> (id -> bool) -> bool
(** Left-to-right, short-circuiting (the [Array.exists] contract). *)

val field_base : store -> id -> int
(** Offset of the object's field extent in the arena; pair with
    {!arena_get} on mark-loop hot paths to avoid re-reading the offset per
    field. *)

val arena_get : store -> int -> id
(** Read an arena slot by absolute offset (from {!field_base}). *)

val field_extent : store -> id -> int * int
(** [(offset, nfields)] — exposed for the arena model tests. *)

val arena_used : store -> int
(** Bump frontier of the field arena in words (recycled extents are below
    it) — exposed for tests. *)
