(** The simulated object model.

    Objects are real graph nodes: a size in words and a field array holding
    ids of other objects, which collectors traverse when marking.  Identity
    is stable across moves — "copying" an object updates which region owns
    its words (and charges the copy cost), but never its id, so simulated
    references need no rewriting.  Reference-update costs are charged from
    edge counts instead (see DESIGN.md §5). *)

type id = int
(** Object identifier.  [null] (= 0) is the absent reference. *)

val null : id

type t = {
  id : id;
  size : int;  (** total size in words, header included *)
  fields : id array;  (** reference slots; [null] where empty *)
  mutable region : int;  (** index of the owning region *)
  mutable age : int;  (** survived collections (generational promotion) *)
  mutable mark : int;  (** epoch of the last mark that reached this object *)
  mutable scratch : int;
      (** second, independent mark slot: lets a stop-the-world scavenge run
          while a concurrent marking epoch is in flight (as G1's young
          collections do during concurrent marking) *)
  mutable remembered : bool;  (** coarse per-object remembered-set bit *)
}

val header_words : int
(** 2: every object pays a two-word header, as in HotSpot. *)

val make : id:id -> size:int -> nfields:int -> region:int -> t
(** A fresh, unmarked object of age 0.  [nfields] must fit in
    [size - header_words]. *)

val fields_capacity : size:int -> int
(** Largest legal [nfields] for an object of [size] words. *)

val is_null : id -> bool
