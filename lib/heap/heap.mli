(** The simulated heap: a struct-of-arrays object store plus a flat array
    of regions.

    Responsibilities kept here: object identity, bump allocation inside
    regions, the free-region pool, space accounting, and mark epochs.
    Policy — when to collect, what to evacuate, barrier costs — lives in the
    collectors ([Gcr_gcs]); work/time attribution lives in the engine.

    Objects are plain [Obj_model.id] ints everywhere; their attributes live
    in the heap's {!Obj_model.store} and are read through the delegating
    accessors below (or directly through {!store} on mark-loop hot
    paths). *)

type t

val create : ?obs:Gcr_obs.Obs.t -> capacity_words:int -> region_words:int -> unit -> t
(** [capacity_words] is rounded down to a whole number of regions; at least
    two regions are required. *)

val reset : t -> capacity_words:int -> region_words:int -> unit
(** Rewind a used heap to the state {!create} would produce for this
    geometry, keeping the object store's grown capacities (the warm
    execution path's reuse).  Re-emits the [heap_init] event into the
    attached spine, so a warm run folds the identical event sequence a
    fresh one would.  Safe after aborted runs; same validation as
    {!create}. *)

val store : t -> Obj_model.store
(** The underlying object store, for hot loops and tests. *)

val set_capacity : t -> capacity_words:int -> cause_id:int -> int
(** Resize the region array at a safepoint while the heap stays live —
    the mechanism under dynamic heap-sizing controllers.  Growth appends
    fresh free regions; shrink drops only a trailing run of free regions
    (region indices are baked into the object store), so a request below
    the highest non-free region — or below two regions — clamps instead
    of raising.  Returns the capacity actually in effect, and emits a
    [limit-change] event (tagged with the interned [cause_id]) iff the
    geometry moved.  Live objects, counters, and {!history_digest} are
    untouched. *)

(** {1 Geometry and accounting} *)

val region_words : t -> int

val total_regions : t -> int

val free_regions : t -> int

val capacity_words : t -> int

val used_words : t -> int
(** Sum of bump cursors over non-free regions (includes unreclaimed
    garbage). *)

val space_used_words : t -> Region.space -> int

val region : t -> int -> Region.t

val iter_regions : (Region.t -> unit) -> t -> unit

val regions_in_space : t -> Region.space -> Region.t list
(** Allocates a fresh list by scanning every region — test/debug use only;
    hot paths should use {!regions_in_space_count}. *)

val regions_in_space_count : t -> Region.space -> int
(** Number of regions currently labelled with that space.  O(1) from
    maintained counters — the allocation-free replacement for
    [List.length (regions_in_space t space)] in collector pacing. *)

(** {1 Objects} *)

val is_live : t -> Obj_model.id -> bool
(** Allocation-free; false for [null], out-of-range and reclaimed ids. *)

val live_objects : t -> int
(** Number of live objects. *)

val live_words_exact : t -> int
(** Sum of sizes of live objects — the "true" live+floating footprint,
    cheap enough to expose for tests and heuristics. *)

(** Delegating accessors over the object store.  All of them assume a live
    id; check {!is_live} first when the id's provenance is uncertain. *)

val obj_size : t -> Obj_model.id -> int

val obj_region : t -> Obj_model.id -> int
(** Index of the owning region. *)

val obj_space : t -> Obj_model.id -> Region.space
(** Space of the owning region. *)

val obj_age : t -> Obj_model.id -> int

val set_obj_age : t -> Obj_model.id -> int -> unit

val obj_nfields : t -> Obj_model.id -> int

val field : t -> Obj_model.id -> int -> Obj_model.id

val set_field : t -> Obj_model.id -> int -> Obj_model.id -> unit

val iter_fields : t -> Obj_model.id -> (Obj_model.id -> unit) -> unit

val obj_remembered : t -> Obj_model.id -> bool

val set_obj_remembered : t -> Obj_model.id -> bool -> unit

val obj_rc : t -> Obj_model.id -> int
(** Reference count; maintained only by RC collectors (LXR). *)

val set_obj_rc : t -> Obj_model.id -> int -> unit

val obj_dirty : t -> Obj_model.id -> int
(** Epoch of the last logged mutation (RC field-logging barrier). *)

val set_obj_dirty : t -> Obj_model.id -> int -> unit

val obj_serial : t -> Obj_model.id -> int
(** Birth serial: never reused even when the id is; see
    {!Obj_model.serial}. *)

(** {1 Mark epochs} *)

val begin_mark_epoch : t -> int
(** Increments and returns the epoch; objects whose mark slot equals the
    current epoch count as marked. *)

val current_epoch : t -> int

val is_marked : t -> Obj_model.id -> bool

val set_marked : t -> Obj_model.id -> unit

val begin_scratch_epoch : t -> int
(** Independent epoch for the scratch mark slot, used by stop-the-world
    scavenges so they do not disturb an in-flight concurrent marking. *)

val is_scratch_marked : t -> Obj_model.id -> bool

val set_scratch_marked : t -> Obj_model.id -> unit

(** {1 Allocation and movement} *)

val take_free_region : t -> space:Region.space -> Region.t option
(** Removes a region from the free pool and labels it.  Requests for
    [Eden] (mutator allocation) fail once the pool is at or below the
    allocation reserve; GC copy targets ([Survivor]/[Old]) may always
    drain the pool. *)

val set_alloc_reserve : t -> int -> unit
(** Free regions withheld from mutator allocation so collections always
    have copy headroom (to-space / evacuation reserve).  Collectors adjust
    it with their policies; 0 initially. *)

val alloc_reserve : t -> int

val alloc_in_region : t -> Region.t -> size:int -> nfields:int -> Obj_model.id
(** Bump-allocates a fresh object, or [Obj_model.null] if the region
    cannot fit [size] words.  Updates cumulative allocation statistics.
    Allocation-free on the host. *)

val move_object : t -> Obj_model.id -> Region.t -> bool
(** Evacuate: the object's storage moves to the destination region (id is
    unchanged); [false] if the destination cannot fit it.  The source
    region's cursor is left as-is — its space is garbage until the region
    is released. *)

val release_log : (int -> string -> unit) ref
(** Debug hook: called with (region index, caller tag) on every release. *)

val release_region : t -> Region.t -> unit
(** Reclaims the region: every object still resident dies (its field
    extent is recycled); the region returns to the free pool. *)

val purge_unmarked : t -> Region.t -> unit
(** Kills every resident object not marked in the current epoch (the sweep
    half of mark-sweep). *)

val free_object : t -> Obj_model.id -> unit
(** Kill one object in place (RC reclamation).  The owning region keeps
    its [used_words] — the dead words are the fragmentation that drives
    later evacuation — and its object vec keeps the stale id, so the
    caller must {!compact_region_objects} every region it freed into
    before the pause ends (id recycling would otherwise alias the stale
    entry). *)

val compact_region_objects : t -> Region.t -> unit
(** Rebuild the region's object vec to exactly its live residents.  Must
    run in the same pause as the {!free_object} calls it cleans up
    after. *)

val release_region_keep_objects : t -> Region.t -> unit
(** Returns the region to the free pool {e without} touching the object
    store.  Used by sliding compaction, which first purges dead objects,
    then resets all regions, then re-places the survivors with
    {!place_object}.  The caller must re-place every resident object. *)

val place_object : t -> Obj_model.id -> Region.t -> bool
(** Like {!move_object}: re-homes an object during compaction. *)

val iter_resident_objects : t -> Region.t -> (Obj_model.id -> unit) -> unit
(** Live objects whose storage is currently in this region. *)

(** {1 Cumulative statistics} *)

val words_allocated_total : t -> int

val objects_allocated_total : t -> int

val history_digest : t -> int
(** Commutative hash of the complete mutation history: every allocation and
    every {!set_field} (keyed by birth serials, with the overwritten value
    folded in) since the heap was created.  Collectors never affect it —
    object moves keep ids and GCs write no fields — so two runs showing the
    same digest have performed identical mutator work, whichever collector
    ran underneath.  This is the progress coordinate the live-set
    differential oracle compares safepoints at: totals such as
    (packets, allocations) are not enough once two mutator threads race,
    because collector-dependent scheduling can reorder cross-thread writes
    into a different — but equally correct — heap graph. *)

val collections_logged : t -> int

val log_collection : t -> unit
(** Collectors bump this for tests/heuristics. *)

(** {1 Reachability (for tests and ground truth)} *)

val reachable_from : t -> Obj_model.id list -> (Obj_model.id, unit) Hashtbl.t
(** BFS over the object graph from the given roots; only live objects are
    traversed.  Begins a fresh scratch epoch (the visited set is the
    scratch mark slot), so do not call it while a scratch-marking scavenge
    is in flight. *)

val pp : Format.formatter -> t -> unit
