(** The simulated heap: an object table plus a flat array of regions.

    Responsibilities kept here: object identity, bump allocation inside
    regions, the free-region pool, space accounting, and mark epochs.
    Policy — when to collect, what to evacuate, barrier costs — lives in the
    collectors ([Gcr_gcs]); work/time attribution lives in the engine. *)

type t

val create : capacity_words:int -> region_words:int -> t
(** [capacity_words] is rounded down to a whole number of regions; at least
    two regions are required. *)

(** {1 Geometry and accounting} *)

val region_words : t -> int

val total_regions : t -> int

val free_regions : t -> int

val capacity_words : t -> int

val used_words : t -> int
(** Sum of bump cursors over non-free regions (includes unreclaimed
    garbage). *)

val space_used_words : t -> Region.space -> int

val region : t -> int -> Region.t

val iter_regions : (Region.t -> unit) -> t -> unit

val regions_in_space : t -> Region.space -> Region.t list
(** Allocates a fresh list by scanning every region — test/debug use only;
    hot paths should use {!regions_in_space_count}. *)

val regions_in_space_count : t -> Region.space -> int
(** Number of regions currently labelled with that space.  O(1) from
    maintained counters — the allocation-free replacement for
    [List.length (regions_in_space t space)] in collector pacing. *)

(** {1 The object table}

    Internally the table stores a shared {e dead sentinel} (whose [id] is
    [Obj_model.null]) in reclaimed slots, so lookups need not box an
    option. *)

val find : t -> Obj_model.id -> Obj_model.t option
(** [None] once the object has been reclaimed (or never existed).
    Allocates the [Some]; hot paths should use {!find_raw} or
    {!find_exn}. *)

val find_raw : t -> Obj_model.id -> Obj_model.t
(** Allocation-free lookup: returns the dead sentinel when the object is
    not live, so callers test [(find_raw t id).id <> Obj_model.null].
    Never mutate the returned object without checking liveness first. *)

val find_exn : t -> Obj_model.id -> Obj_model.t

val is_live : t -> Obj_model.id -> bool
(** Allocation-free. *)

val live_objects : t -> int
(** Number of objects currently in the table. *)

val live_words_exact : t -> int
(** Sum of sizes of objects in the table — the "true" live+floating
    footprint, cheap enough to expose for tests and heuristics. *)

(** {1 Mark epochs} *)

val begin_mark_epoch : t -> int
(** Increments and returns the epoch; objects whose [mark] equals the
    current epoch count as marked. *)

val current_epoch : t -> int

val is_marked : t -> Obj_model.t -> bool

val set_marked : t -> Obj_model.t -> unit

val begin_scratch_epoch : t -> int
(** Independent epoch for the [scratch] mark slot, used by stop-the-world
    scavenges so they do not disturb an in-flight concurrent marking. *)

val is_scratch_marked : t -> Obj_model.t -> bool

val set_scratch_marked : t -> Obj_model.t -> unit

(** {1 Allocation and movement} *)

val take_free_region : t -> space:Region.space -> Region.t option
(** Removes a region from the free pool and labels it.  Requests for
    [Eden] (mutator allocation) fail once the pool is at or below the
    allocation reserve; GC copy targets ([Survivor]/[Old]) may always
    drain the pool. *)

val set_alloc_reserve : t -> int -> unit
(** Free regions withheld from mutator allocation so collections always
    have copy headroom (to-space / evacuation reserve).  Collectors adjust
    it with their policies; 0 initially. *)

val alloc_reserve : t -> int

val alloc_in_region :
  t -> Region.t -> size:int -> nfields:int -> Obj_model.t option
(** Bump-allocates a fresh object, or [None] if the region cannot fit
    [size] words.  Updates cumulative allocation statistics. *)

val move_object : t -> Obj_model.t -> Region.t -> bool
(** Evacuate: the object's storage moves to the destination region (id is
    unchanged); [false] if the destination cannot fit it.  The source
    region's cursor is left as-is — its space is garbage until the region
    is released. *)

val release_log : (int -> string -> unit) ref
(** Debug hook: called with (region index, caller tag) on every release. *)

val release_region : t -> Region.t -> unit
(** Reclaims the region: every object still resident is removed from the
    object table; the region returns to the free pool. *)

val purge_unmarked : t -> Region.t -> unit
(** Removes from the object table every resident object not marked in the
    current epoch (the sweep half of mark-sweep). *)

val release_region_keep_objects : t -> Region.t -> unit
(** Returns the region to the free pool {e without} touching the object
    table.  Used by sliding compaction, which first purges dead objects,
    then resets all regions, then re-places the survivors with
    {!place_object}.  The caller must re-place every resident object. *)

val place_object : t -> Obj_model.t -> Region.t -> bool
(** Like {!move_object}: re-homes an object during compaction. *)

val iter_resident_objects : t -> Region.t -> (Obj_model.t -> unit) -> unit
(** Live-table objects whose storage is currently in this region. *)

(** {1 Cumulative statistics} *)

val words_allocated_total : t -> int

val objects_allocated_total : t -> int

val collections_logged : t -> int

val log_collection : t -> unit
(** Collectors bump this for tests/heuristics. *)

(** {1 Reachability (for tests and ground truth)} *)

val reachable_from : t -> Obj_model.id list -> (Obj_model.id, unit) Hashtbl.t
(** BFS over the object graph from the given roots; only live-table
    objects are traversed.  Begins a fresh scratch epoch (the visited set
    is the scratch mark slot), so do not call it while a scratch-marking
    scavenge is in flight. *)

val pp : Format.formatter -> t -> unit
