module Vec = Gcr_util.Vec
module Obs = Gcr_obs.Obs

type t = {
  obs : Obs.t option;  (** event spine; region transitions are reported here *)
  mutable region_words : int;
  mutable regions : Region.t array;
  free_pool : int Vec.t;  (** indices of free regions (LIFO) *)
  store : Obj_model.store;  (** struct-of-arrays object store *)
  mutable live_count : int;
  mutable live_words : int;
  mutable used_words : int;
  space_used : int array;  (** words used, indexed by space tag *)
  space_regions : int array;  (** region count, indexed by space tag *)
  mutable epoch : int;
  mutable scratch_epoch : int;
  mutable words_allocated : int;
  mutable objects_allocated : int;
  mutable collections : int;
  mutable reserve : int;
  mutable history_digest : int;
      (** commutative fold over every allocation and pointer write (by
          birth serial, so id recycling cannot alias it).  Collectors never
          touch it: object moves keep their id and GCs do not write fields.
          Two runs with equal digests have performed the same multiset of
          mutations — each write folds in the value it overwrote, so
          same-slot writes in a different order digest differently — which
          makes the digest a collector-independent progress coordinate for
          differential oracles. *)
}

let space_tag = function
  | Region.Free -> 0
  | Region.Eden -> 1
  | Region.Survivor -> 2
  | Region.Old -> 3

let create ?obs ~capacity_words ~region_words () =
  if region_words < Obj_model.header_words then invalid_arg "Heap.create: region too small";
  let n = capacity_words / region_words in
  if n < 2 then invalid_arg "Heap.create: need at least two regions";
  let regions = Array.init n (fun index -> Region.make ~index) in
  let free_pool = Vec.make ~capacity:n in
  (* Pushed in reverse so that region 0 is taken first. *)
  for i = n - 1 downto 0 do
    Vec.push free_pool i
  done;
  let space_regions = Array.make 4 0 in
  space_regions.(0) <- n;
  (match obs with
  | Some o -> Obs.heap_init o ~time:(Obs.now o) ~regions:n ~region_words
  | None -> ());
  {
    obs;
    region_words;
    regions;
    free_pool;
    store = Obj_model.create_store ();
    live_count = 0;
    live_words = 0;
    used_words = 0;
    space_used = Array.make 4 0;
    space_regions;
    epoch = 0;
    scratch_epoch = 0;
    words_allocated = 0;
    objects_allocated = 0;
    collections = 0;
    reserve = 0;
    history_digest = 0;
  }

(* Rewind a used heap to the state [create] would produce for the given
   geometry, keeping the object store's and region vecs' grown capacities.
   Region records are reused where the new geometry overlaps the old;
   growth appends fresh records, shrink drops the tail.  The same
   [heap_init] event a fresh heap emits is re-emitted, so an observation
   spine fed by a warm run folds the identical event sequence.  Safe after
   aborted runs — every counter below is rewritten, none is assumed
   clean. *)
let reset t ~capacity_words ~region_words =
  if region_words < Obj_model.header_words then invalid_arg "Heap.reset: region too small";
  let n = capacity_words / region_words in
  if n < 2 then invalid_arg "Heap.reset: need at least two regions";
  t.region_words <- region_words;
  let old = Array.length t.regions in
  if n < old then t.regions <- Array.sub t.regions 0 n
  else if n > old then begin
    let grown =
      Array.init n (fun i -> if i < old then t.regions.(i) else Region.make ~index:i)
    in
    t.regions <- grown
  end;
  for i = 0 to min old n - 1 do
    ignore (Region.reset t.regions.(i))
  done;
  Vec.clear t.free_pool;
  for i = n - 1 downto 0 do
    Vec.push t.free_pool i
  done;
  Obj_model.reset_store t.store;
  t.live_count <- 0;
  t.live_words <- 0;
  t.used_words <- 0;
  Array.fill t.space_used 0 (Array.length t.space_used) 0;
  Array.fill t.space_regions 0 (Array.length t.space_regions) 0;
  t.space_regions.(0) <- n;
  t.epoch <- 0;
  t.scratch_epoch <- 0;
  t.words_allocated <- 0;
  t.objects_allocated <- 0;
  t.collections <- 0;
  t.reserve <- 0;
  t.history_digest <- 0;
  match t.obs with
  | Some o -> Obs.heap_init o ~time:(Obs.now o) ~regions:n ~region_words
  | None -> ()

(* Safepoint-only geometry change: resize the region array in place while
   objects stay live.  Growth appends fresh free regions; shrink can only
   drop a trailing run of FREE regions — region indices are baked into the
   object store, so any non-free region pins every index up to its own.
   The request is therefore clamped (never an error): the achieved
   capacity is returned, and a [limit-change] event is emitted iff the
   geometry actually moved. *)
let set_capacity t ~capacity_words ~cause_id =
  let requested = max 2 (capacity_words / t.region_words) in
  let old_n = Array.length t.regions in
  let n =
    if requested >= old_n then requested
    else begin
      (* highest non-free index pins the floor *)
      let hi = ref (-1) in
      for i = old_n - 1 downto 0 do
        if !hi < 0 && not (Region.space_equal t.regions.(i).Region.space Region.Free)
        then hi := i
      done;
      max requested (max 2 (!hi + 1))
    end
  in
  if n <> old_n then begin
    if n < old_n then begin
      (* every dropped region is free by construction of [n]; surviving
         pool entries keep their LIFO order *)
      t.regions <- Array.sub t.regions 0 n;
      let kept = ref [] in
      Vec.iter (fun i -> if i < n then kept := i :: !kept) t.free_pool;
      Vec.clear t.free_pool;
      List.iter (Vec.push t.free_pool) (List.rev !kept);
      t.space_regions.(0) <- t.space_regions.(0) - (old_n - n)
    end
    else begin
      let grown =
        Array.init n (fun i -> if i < old_n then t.regions.(i) else Region.make ~index:i)
      in
      t.regions <- grown;
      (* lowest fresh index on top of the pool, matching [create]'s order *)
      for i = n - 1 downto old_n do
        Vec.push t.free_pool i
      done;
      t.space_regions.(0) <- t.space_regions.(0) + (n - old_n)
    end;
    match t.obs with
    | Some o ->
        Obs.limit_change o ~time:(Obs.now o) ~regions:n ~old_regions:old_n
          ~controller_id:cause_id
    | None -> ()
  end;
  n * t.region_words

let store t = t.store

let region_words t = t.region_words

let total_regions t = Array.length t.regions

let free_regions t = Vec.length t.free_pool

let capacity_words t = total_regions t * t.region_words

let used_words t = t.used_words

let space_used_words t space = t.space_used.(space_tag space)

let region t i = t.regions.(i)

let iter_regions f t = Array.iter f t.regions

let regions_in_space t space =
  Array.fold_left
    (fun acc r -> if Region.space_equal r.Region.space space then r :: acc else acc)
    [] t.regions
  |> List.rev

let regions_in_space_count t space = t.space_regions.(space_tag space)

let is_live t id = Obj_model.is_live t.store id

let live_objects t = t.live_count

let live_words_exact t = t.live_words

(* {2 Delegating per-object accessors} *)

let obj_size t id = Obj_model.size t.store id

let obj_region t id = Obj_model.region t.store id

let obj_space t id = t.regions.(Obj_model.region t.store id).Region.space

let obj_age t id = Obj_model.age t.store id

let set_obj_age t id a = Obj_model.set_age t.store id a

let obj_nfields t id = Obj_model.nfields t.store id

let field t id i = Obj_model.field_get t.store id i

(* One mutation record hashed FNV-style, finished with an xorshift round so
   that summing records commutatively does not cancel their structure. *)
let[@inline] digest_mix a b c d =
  let fnv h v = (h lxor v) * 0x100000001B3 in
  let h = fnv (fnv (fnv (fnv 0x1505 a) b) c) d in
  let h = h lxor (h lsr 29) in
  let h = h * 0x2545F4914F6CDD1D in
  h lxor (h lsr 31)

(* Digest by birth serial, never by id: ids are recycled, serials are not.
   A dead or out-of-range value (possible only if a collector wrongly freed
   a reachable object) still digests deterministically. *)
let[@inline] digest_serial store x =
  if Obj_model.is_null x then -1
  else if Obj_model.is_live store x then Obj_model.serial store x
  else -2 - x

let set_field t id i v =
  let store = t.store in
  t.history_digest <-
    t.history_digest
    + digest_mix (Obj_model.serial store id) i
        (digest_serial store (Obj_model.field_get store id i))
        (digest_serial store v);
  Obj_model.field_set store id i v

let iter_fields t id f = Obj_model.iter_fields t.store id f

let obj_remembered t id = Obj_model.remembered t.store id

let set_obj_remembered t id v = Obj_model.set_remembered t.store id v

let obj_rc t id = Obj_model.rc t.store id

let set_obj_rc t id v = Obj_model.set_rc t.store id v

let obj_dirty t id = Obj_model.dirty t.store id

let set_obj_dirty t id e = Obj_model.set_dirty t.store id e

let obj_serial t id = Obj_model.serial t.store id

let begin_mark_epoch t =
  t.epoch <- t.epoch + 1;
  t.epoch

let current_epoch t = t.epoch

let is_marked t id = Obj_model.mark t.store id = t.epoch

let set_marked t id = Obj_model.set_mark t.store id t.epoch

let begin_scratch_epoch t =
  t.scratch_epoch <- t.scratch_epoch + 1;
  t.scratch_epoch

let is_scratch_marked t id = Obj_model.scratch t.store id = t.scratch_epoch

let set_scratch_marked t id = Obj_model.set_scratch t.store id t.scratch_epoch

let release_log : (int -> string -> unit) ref = ref (fun _ _ -> ())

let set_alloc_reserve t n =
  if n < 0 then invalid_arg "Heap.set_alloc_reserve: negative";
  t.reserve <- n

let alloc_reserve t = t.reserve

let note_transition t (r : Region.t) ~to_space =
  match t.obs with
  | None -> ()
  | Some o ->
      Obs.region_transition o ~time:(Obs.now o) ~index:r.Region.index
        ~from_space:(space_tag r.Region.space) ~to_space

let retag_region t (r : Region.t) space =
  note_transition t r ~to_space:(space_tag space);
  t.space_regions.(space_tag r.Region.space) <-
    t.space_regions.(space_tag r.Region.space) - 1;
  t.space_regions.(space_tag space) <- t.space_regions.(space_tag space) + 1;
  r.Region.space <- space

let take_free_region t ~space =
  let blocked_by_reserve =
    Region.space_equal space Region.Eden && Vec.length t.free_pool <= t.reserve
  in
  if blocked_by_reserve then None
  else
    match Vec.pop t.free_pool with
    | None -> None
    | Some idx ->
        let r = t.regions.(idx) in
        assert (Region.space_equal r.space Region.Free);
        retag_region t r space;
        !release_log idx "take";
        Some r

let alloc_in_region t (r : Region.t) ~size ~nfields =
  if Region.space_equal r.space Region.Free then
    invalid_arg (Printf.sprintf "Heap.alloc_in_region: free region %d" r.index);
  if r.used_words + size > t.region_words then Obj_model.null
  else begin
    let id = Obj_model.alloc t.store ~size ~nfields ~region:r.index in
    r.used_words <- r.used_words + size;
    Vec.push r.objects id;
    t.used_words <- t.used_words + size;
    t.space_used.(space_tag r.space) <- t.space_used.(space_tag r.space) + size;
    t.live_count <- t.live_count + 1;
    t.live_words <- t.live_words + size;
    t.words_allocated <- t.words_allocated + size;
    t.objects_allocated <- t.objects_allocated + 1;
    t.history_digest <-
      t.history_digest + digest_mix (Obj_model.serial t.store id) size nfields (-3);
    id
  end

let move_object t id (dst : Region.t) =
  if Region.space_equal dst.space Region.Free then invalid_arg "Heap.move_object: free region";
  let size = Obj_model.size t.store id in
  if dst.used_words + size > t.region_words then false
  else begin
    dst.used_words <- dst.used_words + size;
    Vec.push dst.objects id;
    t.used_words <- t.used_words + size;
    t.space_used.(space_tag dst.space) <- t.space_used.(space_tag dst.space) + size;
    Obj_model.set_region t.store id dst.index;
    true
  end

let free_region_bookkeeping t (r : Region.t) =
  note_transition t r ~to_space:(space_tag Region.Free);
  t.used_words <- t.used_words - r.used_words;
  t.space_used.(space_tag r.space) <- t.space_used.(space_tag r.space) - r.used_words;
  t.space_regions.(space_tag r.space) <- t.space_regions.(space_tag r.space) - 1;
  t.space_regions.(space_tag Region.Free) <- t.space_regions.(space_tag Region.Free) + 1;
  ignore (Region.reset r);
  Vec.push t.free_pool r.index

let release_region t (r : Region.t) =
  !release_log r.index "release";
  if Region.space_equal r.space Region.Free then invalid_arg "Heap.release_region: already free";
  (* Only objects whose storage is still here die with the region: evacuated
     objects have had [region] repointed elsewhere. *)
  let store = t.store in
  Vec.iter
    (fun id ->
      if Obj_model.is_live store id && Obj_model.region store id = r.index then begin
        t.live_count <- t.live_count - 1;
        t.live_words <- t.live_words - Obj_model.size store id;
        Obj_model.free store id
      end)
    r.objects;
  free_region_bookkeeping t r

let purge_unmarked t (r : Region.t) =
  let store = t.store in
  Vec.iter
    (fun id ->
      if
        Obj_model.is_live store id
        && Obj_model.region store id = r.index
        && Obj_model.mark store id <> t.epoch
      then begin
        t.live_count <- t.live_count - 1;
        t.live_words <- t.live_words - Obj_model.size store id;
        Obj_model.free store id
      end)
    r.objects

(* Free one object in place, as RC reclamation does.  The region keeps its
   [used_words] (the garbage words are what fragmentation-driven evacuation
   later reclaims) and its [objects] vec keeps the stale id, so callers must
   run {!compact_region_objects} on every region they freed into before the
   pause ends — a recycled id re-allocated into the same region would
   otherwise alias the stale entry. *)
let free_object t id =
  t.live_count <- t.live_count - 1;
  t.live_words <- t.live_words - Obj_model.size t.store id;
  Obj_model.free t.store id

let compact_region_objects t (r : Region.t) =
  let store = t.store in
  let keep = ref [] in
  Vec.iter
    (fun id ->
      if Obj_model.is_live store id && Obj_model.region store id = r.index then
        keep := id :: !keep)
    r.objects;
  Vec.clear r.objects;
  List.iter (Vec.push r.objects) (List.rev !keep)

let release_region_keep_objects t (r : Region.t) =
  !release_log r.index "release-keep";
  if Region.space_equal r.space Region.Free then
    invalid_arg "Heap.release_region_keep_objects: already free";
  free_region_bookkeeping t r

let place_object = move_object

let iter_resident_objects t (r : Region.t) f =
  let store = t.store in
  Vec.iter
    (fun id -> if Obj_model.is_live store id && Obj_model.region store id = r.index then f id)
    r.objects

let words_allocated_total t = t.words_allocated

let objects_allocated_total t = t.objects_allocated

let history_digest t = t.history_digest

let collections_logged t = t.collections

let log_collection t = t.collections <- t.collections + 1

(* The visited set is the scratch mark slot under a fresh epoch — no
   per-call Hashtbl on the traversal itself; the result table is built only
   for the caller (tests and ground-truth checks). *)
let reachable_from t roots =
  ignore (begin_scratch_epoch t);
  let store = t.store in
  let seen = Hashtbl.create 1024 in
  let stack = Vec.create () in
  let push id =
    if
      (not (Obj_model.is_null id))
      && Obj_model.is_live store id
      && not (is_scratch_marked t id)
    then begin
      set_scratch_marked t id;
      Hashtbl.add seen id ();
      Vec.push stack id
    end
  in
  List.iter push roots;
  let rec drain () =
    match Vec.pop stack with
    | None -> ()
    | Some id ->
        Obj_model.iter_fields store id push;
        drain ()
  in
  drain ();
  seen

let pp ppf t =
  Format.fprintf ppf "heap(%d/%d regions free, used=%a, live=%d objs/%a)"
    (free_regions t) (total_regions t) Gcr_util.Units.pp_words t.used_words t.live_count
    Gcr_util.Units.pp_words t.live_words
