module Vec = Gcr_util.Vec

type t = {
  region_words : int;
  regions : Region.t array;
  free_pool : int Vec.t;  (** indices of free regions (LIFO) *)
  table : Obj_model.t Vec.t;
      (** object table indexed by id; dead slots hold [dead] — checking
          [id <> Obj_model.null] replaces option boxing on the lookup fast
          path *)
  dead : Obj_model.t;  (** shared sentinel, [id = Obj_model.null] *)
  mutable live_count : int;
  mutable live_words : int;
  mutable used_words : int;
  space_used : int array;  (** words used, indexed by space tag *)
  space_regions : int array;  (** region count, indexed by space tag *)
  mutable epoch : int;
  mutable scratch_epoch : int;
  mutable next_id : int;
  mutable words_allocated : int;
  mutable objects_allocated : int;
  mutable collections : int;
  mutable reserve : int;
}

let space_tag = function
  | Region.Free -> 0
  | Region.Eden -> 1
  | Region.Survivor -> 2
  | Region.Old -> 3

let create ~capacity_words ~region_words =
  if region_words < Obj_model.header_words then invalid_arg "Heap.create: region too small";
  let n = capacity_words / region_words in
  if n < 2 then invalid_arg "Heap.create: need at least two regions";
  let regions = Array.init n (fun index -> Region.make ~index) in
  let free_pool = Vec.make ~capacity:n in
  (* Pushed in reverse so that region 0 is taken first. *)
  for i = n - 1 downto 0 do
    Vec.push free_pool i
  done;
  let dead = Obj_model.make ~id:Obj_model.null ~size:Obj_model.header_words ~nfields:0 ~region:(-1) in
  let table = Vec.create () in
  Vec.push table dead;
  (* id 0 is the null reference *)
  let space_regions = Array.make 4 0 in
  space_regions.(0) <- n;
  {
    region_words;
    regions;
    free_pool;
    table;
    dead;
    live_count = 0;
    live_words = 0;
    used_words = 0;
    space_used = Array.make 4 0;
    space_regions;
    epoch = 0;
    scratch_epoch = 0;
    next_id = 1;
    words_allocated = 0;
    objects_allocated = 0;
    collections = 0;
    reserve = 0;
  }

let region_words t = t.region_words

let total_regions t = Array.length t.regions

let free_regions t = Vec.length t.free_pool

let capacity_words t = total_regions t * t.region_words

let used_words t = t.used_words

let space_used_words t space = t.space_used.(space_tag space)

let region t i = t.regions.(i)

let iter_regions f t = Array.iter f t.regions

let regions_in_space t space =
  Array.fold_left
    (fun acc r -> if Region.space_equal r.Region.space space then r :: acc else acc)
    [] t.regions
  |> List.rev

let regions_in_space_count t space = t.space_regions.(space_tag space)

let find_raw t id =
  if id <= 0 || id >= Vec.length t.table then t.dead else Vec.get t.table id

let find t id =
  let o = find_raw t id in
  if o.Obj_model.id = Obj_model.null then None else Some o

let find_exn t id =
  let o = find_raw t id in
  if o.Obj_model.id = Obj_model.null then
    invalid_arg (Printf.sprintf "Heap.find_exn: object %d is not live" id)
  else o

let is_live t id = (find_raw t id).Obj_model.id <> Obj_model.null

let live_objects t = t.live_count

let live_words_exact t = t.live_words

let begin_mark_epoch t =
  t.epoch <- t.epoch + 1;
  t.epoch

let current_epoch t = t.epoch

let is_marked t (o : Obj_model.t) = o.mark = t.epoch

let set_marked t (o : Obj_model.t) = o.mark <- t.epoch

let begin_scratch_epoch t =
  t.scratch_epoch <- t.scratch_epoch + 1;
  t.scratch_epoch

let is_scratch_marked t (o : Obj_model.t) = o.scratch = t.scratch_epoch

let set_scratch_marked t (o : Obj_model.t) = o.scratch <- t.scratch_epoch

let release_log : (int -> string -> unit) ref = ref (fun _ _ -> ())

let set_alloc_reserve t n =
  if n < 0 then invalid_arg "Heap.set_alloc_reserve: negative";
  t.reserve <- n

let alloc_reserve t = t.reserve

let retag_region t (r : Region.t) space =
  t.space_regions.(space_tag r.Region.space) <-
    t.space_regions.(space_tag r.Region.space) - 1;
  t.space_regions.(space_tag space) <- t.space_regions.(space_tag space) + 1;
  r.Region.space <- space

let take_free_region t ~space =
  let blocked_by_reserve =
    Region.space_equal space Region.Eden && Vec.length t.free_pool <= t.reserve
  in
  if blocked_by_reserve then None
  else
    match Vec.pop t.free_pool with
    | None -> None
    | Some idx ->
        let r = t.regions.(idx) in
        assert (Region.space_equal r.space Region.Free);
        retag_region t r space;
        !release_log idx "take";
        Some r

let alloc_in_region t (r : Region.t) ~size ~nfields =
  if Region.space_equal r.space Region.Free then
    invalid_arg (Printf.sprintf "Heap.alloc_in_region: free region %d" r.index);
  if r.used_words + size > t.region_words then None
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let o = Obj_model.make ~id ~size ~nfields ~region:r.index in
    Vec.push t.table o;
    r.used_words <- r.used_words + size;
    Vec.push r.objects id;
    t.used_words <- t.used_words + size;
    t.space_used.(space_tag r.space) <- t.space_used.(space_tag r.space) + size;
    t.live_count <- t.live_count + 1;
    t.live_words <- t.live_words + size;
    t.words_allocated <- t.words_allocated + size;
    t.objects_allocated <- t.objects_allocated + 1;
    Some o
  end

let move_object t (o : Obj_model.t) (dst : Region.t) =
  if Region.space_equal dst.space Region.Free then invalid_arg "Heap.move_object: free region";
  if dst.used_words + o.size > t.region_words then false
  else begin
    dst.used_words <- dst.used_words + o.size;
    Vec.push dst.objects o.id;
    t.used_words <- t.used_words + o.size;
    t.space_used.(space_tag dst.space) <- t.space_used.(space_tag dst.space) + o.size;
    o.region <- dst.index;
    true
  end

let free_region_bookkeeping t (r : Region.t) =
  t.used_words <- t.used_words - r.used_words;
  t.space_used.(space_tag r.space) <- t.space_used.(space_tag r.space) - r.used_words;
  t.space_regions.(space_tag r.space) <- t.space_regions.(space_tag r.space) - 1;
  t.space_regions.(space_tag Region.Free) <- t.space_regions.(space_tag Region.Free) + 1;
  ignore (Region.reset r);
  Vec.push t.free_pool r.index

let release_region t (r : Region.t) =
  !release_log r.index "release";
  if Region.space_equal r.space Region.Free then invalid_arg "Heap.release_region: already free";
  (* Only objects whose storage is still here die with the region: evacuated
     objects have had [region] repointed elsewhere. *)
  Vec.iter
    (fun id ->
      let o = find_raw t id in
      if o.Obj_model.id <> Obj_model.null && o.Obj_model.region = r.index then begin
        Vec.set t.table id t.dead;
        t.live_count <- t.live_count - 1;
        t.live_words <- t.live_words - o.Obj_model.size
      end)
    r.objects;
  free_region_bookkeeping t r

let purge_unmarked t (r : Region.t) =
  Vec.iter
    (fun id ->
      let o = find_raw t id in
      if
        o.Obj_model.id <> Obj_model.null
        && o.Obj_model.region = r.index
        && o.Obj_model.mark <> t.epoch
      then begin
        Vec.set t.table id t.dead;
        t.live_count <- t.live_count - 1;
        t.live_words <- t.live_words - o.Obj_model.size
      end)
    r.objects

let release_region_keep_objects t (r : Region.t) =
  !release_log r.index "release-keep";
  if Region.space_equal r.space Region.Free then
    invalid_arg "Heap.release_region_keep_objects: already free";
  free_region_bookkeeping t r

let place_object = move_object

let iter_resident_objects t (r : Region.t) f =
  Vec.iter
    (fun id ->
      let o = find_raw t id in
      if o.Obj_model.id <> Obj_model.null && o.Obj_model.region = r.index then f o)
    r.objects

let words_allocated_total t = t.words_allocated

let objects_allocated_total t = t.objects_allocated

let collections_logged t = t.collections

let log_collection t = t.collections <- t.collections + 1

(* The visited set is the scratch mark slot under a fresh epoch — no
   per-call Hashtbl on the traversal itself; the result table is built only
   for the caller (tests and ground-truth checks). *)
let reachable_from t roots =
  ignore (begin_scratch_epoch t);
  let seen = Hashtbl.create 1024 in
  let stack = Vec.create () in
  let push id =
    if not (Obj_model.is_null id) then begin
      let o = find_raw t id in
      if o.Obj_model.id <> Obj_model.null && not (is_scratch_marked t o) then begin
        set_scratch_marked t o;
        Hashtbl.add seen id ();
        Vec.push stack id
      end
    end
  in
  List.iter push roots;
  let rec drain () =
    match Vec.pop stack with
    | None -> ()
    | Some id ->
        let o = find_exn t id in
        Array.iter push o.fields;
        drain ()
  in
  drain ();
  seen

let pp ppf t =
  Format.fprintf ppf "heap(%d/%d regions free, used=%a, live=%d objs/%a)"
    (free_regions t) (total_regions t) Gcr_util.Units.pp_words t.used_words t.live_count
    Gcr_util.Units.pp_words t.live_words
