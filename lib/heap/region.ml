type space = Free | Eden | Survivor | Old

let space_equal (a : space) b = a = b

let pp_space ppf = function
  | Free -> Format.pp_print_string ppf "free"
  | Eden -> Format.pp_print_string ppf "eden"
  | Survivor -> Format.pp_print_string ppf "survivor"
  | Old -> Format.pp_print_string ppf "old"

type t = {
  index : int;
  mutable space : space;
  mutable used_words : int;
  mutable live_words : int;
  mutable objects : Obj_model.id Gcr_util.Vec.t;
  mutable pinned : bool;
}

let make ~index =
  {
    index;
    space = Free;
    used_words = 0;
    live_words = 0;
    objects = Gcr_util.Vec.create ();
    pinned = false;
  }

let reset t =
  t.space <- Free;
  t.used_words <- 0;
  t.live_words <- 0;
  Gcr_util.Vec.clear t.objects;
  t.pinned <- false;
  t

let free_words_in ~region_words t = region_words - t.used_words
