module Measurement = Gcr_runtime.Measurement
module Run = Gcr_runtime.Run

type t = { dir : string }

(* v3: magic, then a digest of every byte that follows, then the
   marshalled (rendering, measurement).  The digest is checked before
   [Marshal.from_string] ever sees the bytes — Marshal on corrupted input
   is not merely exception-unsafe, it can segfault — so any corruption
   anywhere in the entry reads as a miss and re-executes.  v1/v2 entries
   fail the magic check and simply miss. *)
let magic = "GCR-RESULT-CACHE-3\n"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let create ~dir =
  mkdir_p dir;
  if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"));
  { dir }

let of_env () =
  match Sys.getenv_opt "GCR_CACHE_DIR" with
  | None -> None
  | Some dir -> ( try Some (create ~dir) with Sys_error _ -> None)

let dir t = t.dir

let path t ~digest = Filename.concat t.dir (digest ^ ".run")

(* Distinguishes temp files of concurrent writers.  Same-process domains
   get distinct stamps; cross-process collisions on one key are resolved
   by the atomic rename (last writer wins, both wrote equal content). *)
let stamp = Atomic.make 0

let read_entry path : (string * Measurement.t) option =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let entry =
        match
          let len = in_channel_length ic in
          really_input_string ic len
        with
        | exception _ -> None
        | raw ->
            let m = String.length magic and d = 16 (* MD5 bytes *) in
            if
              String.length raw >= m + d
              && String.equal (String.sub raw 0 m) magic
              && String.equal (String.sub raw m d)
                   (Digest.substring raw (m + d) (String.length raw - m - d))
            then
              (* the digest vouches for every byte Marshal will touch *)
              match
                (Marshal.from_string raw (m + d) : string * Measurement.t)
              with
              | exception _ -> None
              | rendering, measurement -> Some (rendering, measurement)
            else None
      in
      close_in_noerr ic;
      entry

let find t (config : Run.config) =
  match Cache_key.render config with
  | None -> None
  | Some rendering -> (
      let path = path t ~digest:(Digest.to_hex (Digest.string rendering)) in
      match read_entry path with
      | Some (stored, measurement) when String.equal stored rendering -> Some measurement
      | Some _ | None ->
          if Sys.file_exists path then (try Sys.remove path with Sys_error _ -> ());
          None)

let store t (config : Run.config) measurement =
  match Cache_key.render config with
  | None -> ()
  | Some rendering -> (
      let digest = Digest.to_hex (Digest.string rendering) in
      let final = path t ~digest in
      let tmp =
        Printf.sprintf "%s.tmp.%d.%d" final
          (Domain.self () :> int)
          (Atomic.fetch_and_add stamp 1)
      in
      try
        let oc = open_out_bin tmp in
        let body = Marshal.to_string ((rendering, measurement) : string * Measurement.t) [] in
        output_string oc magic;
        output_string oc (Digest.string body);
        output_string oc body;
        close_out oc;
        Sys.rename tmp final
      with Sys_error _ -> ( try Sys.remove tmp with Sys_error _ -> ()))
