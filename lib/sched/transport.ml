module Wire = Gcr_tape.Wire

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* Big enough for a full-scale tape payload, small enough that a forged
   length prefix cannot ask the reader to allocate the address space. *)
let max_frame_bytes = 1 lsl 28

module Codec = struct
  let fnv_body tag payload =
    let h = Wire.fnv_byte Wire.fnv_offset (Char.code tag) in
    Wire.fnv_string h payload

  let encode b ~tag payload =
    Wire.put_varint b (1 + String.length payload);
    Buffer.add_char b tag;
    Buffer.add_string b payload;
    Wire.put_int64_le b (fnv_body tag payload)

  type decoder = { mutable buf : Bytes.t; mutable len : int }

  let decoder () = { buf = Bytes.create 65536; len = 0 }

  let feed d chunk n =
    if n > 0 then begin
      if d.len + n > Bytes.length d.buf then begin
        let grown = Bytes.create (max (2 * Bytes.length d.buf) (d.len + n)) in
        Bytes.blit d.buf 0 grown 0 d.len;
        d.buf <- grown
      end;
      Bytes.blit chunk 0 d.buf d.len n;
      d.len <- d.len + n
    end

  let feed_string d s = feed d (Bytes.unsafe_of_string s) (String.length s)

  let buffered d = d.len

  (* Parse the varint length prefix at the head of the buffer.  Returns
     (header_bytes, body_len), or None if the prefix itself is still
     incomplete.  An overlong or oversized prefix is [Corrupt] the moment
     it is decidable — before any body bytes are waited for. *)
  let parse_header d =
    let rec go i shift len =
      if shift > 62 then corrupt "frame length varint overflow";
      if i >= d.len then None
      else begin
        let b = Bytes.get_uint8 d.buf i in
        let len = len lor ((b land 0x7f) lsl shift) in
        if b land 0x80 <> 0 then go (i + 1) (shift + 7) len
        else if len < 1 then corrupt "empty frame (no tag byte)"
        else if len > max_frame_bytes then
          corrupt "oversized frame: %d bytes (max %d)" len max_frame_bytes
        else Some (i + 1, len)
      end
    in
    go 0 0 0

  let checksum_at d pos =
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Bytes.get_uint8 d.buf (pos + i)))
    done;
    !v

  let next d =
    match parse_header d with
    | None -> None
    | Some (hdr, len) ->
        if d.len < hdr + len + 8 then None
        else begin
          let body = Bytes.sub_string d.buf hdr len in
          let stored = checksum_at d (hdr + len) in
          let rest = d.len - (hdr + len + 8) in
          Bytes.blit d.buf (hdr + len + 8) d.buf 0 rest;
          d.len <- rest;
          let tag = body.[0] in
          let payload = String.sub body 1 (len - 1) in
          if stored <> fnv_body tag payload then corrupt "frame checksum mismatch";
          (Some (tag, payload))
        end
end

type t = {
  rfd : Unix.file_descr;
  wfd : Unix.file_descr;
  dec : Codec.decoder;
  chunk : Bytes.t;
  mutable open_ : bool;
}

let of_fds ~recv ~send =
  { rfd = recv; wfd = send; dec = Codec.decoder (); chunk = Bytes.create 65536; open_ = true }

let of_socket fd = of_fds ~recv:fd ~send:fd

let recv_fd t = t.rfd

let send_fd t = t.wfd

let rec write_all fd s off len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (off + n) (len - n)
  end

let send ?scratch t ~tag payload =
  let b =
    match scratch with
    | Some b -> Buffer.clear b; b
    | None -> Buffer.create (String.length payload + 24)
  in
  Codec.encode b ~tag payload;
  let s = Buffer.contents b in
  write_all t.wfd s 0 (String.length s)

let send_raw t s = write_all t.wfd s 0 (String.length s)

let next_frame t = Codec.next t.dec

let mid_frame t = Codec.buffered t.dec > 0

let read_step t =
  match Unix.read t.rfd t.chunk 0 (Bytes.length t.chunk) with
  | 0 -> `Eof
  | n ->
      Codec.feed t.dec t.chunk n;
      `Ready
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Ready

let rec recv t =
  match next_frame t with
  | Some frame -> Some frame
  | None -> (
      match read_step t with
      | `Ready -> recv t
      | `Eof ->
          if mid_frame t then corrupt "peer disconnected mid-frame" else None)

let close t =
  if t.open_ then begin
    t.open_ <- false;
    (try Unix.close t.rfd with Unix.Unix_error _ -> ());
    if t.wfd <> t.rfd then try Unix.close t.wfd with Unix.Unix_error _ -> ()
  end
