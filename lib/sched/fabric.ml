module Wire = Gcr_tape.Wire
module Tape = Gcr_tape.Tape
module Spec = Gcr_workloads.Spec
module Tape_gen = Gcr_workloads.Tape_gen
module Decision_source = Gcr_workloads.Decision_source
module Run = Gcr_runtime.Run
module Profile = Gcr_runtime.Profile
module Measurement = Gcr_runtime.Measurement
module Obs = Gcr_obs.Obs

type group = {
  spec : Spec.t;
  seed : int;
  tapes : bool;
  cost : float;
  cells : (int * Run.config) list;
}

type sched = Size_aware | Round_robin

type stats = {
  cells : int;
  cache_hits : int;
  per_worker : int array;
  reassigned_cells : int;
  parent_cells : int;
  stolen_groups : int;
  wire_tapes : int;
  worker_profile : Profile.snapshot;
}

type worker_row = {
  row_id : int;
  row_host : string;
  row_transport : string;
  row_cells : int;
  row_wire_tapes : int;
  row_alive : bool;
}

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

(* Checksummed frames (see {!Transport}); one tag byte each.  The
   coordinator speaks the identical protocol to forked pipe workers and
   TCP socket workers — the only differences are the handshake (sockets
   only) and how tapes travel (shared store vs wire fetch). *)

let protocol_version = 1

(* coordinator -> worker *)
let tag_welcome = 'W'
let tag_group = 'G'
let tag_revoke = 'R'
let tag_tape_data = 'T'
let tag_tape_miss = 'M'
let tag_quit = 'Q'

(* worker -> coordinator *)
let tag_hello = 'H'
let tag_batch = 'B'
let tag_ack = 'A'
let tag_tape_fetch = 'F'
let tag_tape_publish = 'P'
let tag_heartbeat = 'h'

let heartbeat_interval_s = 1.0

(* A worker that has sent nothing for this long while holding assigned
   groups is declared dead and its cells are requeued.  Heartbeats flow
   between cells, so the timeout must comfortably exceed one cell's
   runtime; [GCR_FABRIC_TIMEOUT_S] overrides (0 disables). *)
let default_timeout_s = 600.0

let timeout_of_env () =
  match Option.bind (Sys.getenv_opt "GCR_FABRIC_TIMEOUT_S") float_of_string_opt with
  | Some t -> t
  | None -> default_timeout_s

let sched_of_env () =
  match Sys.getenv_opt "GCR_FABRIC_SCHED" with
  | Some ("fifo" | "roundrobin" | "rr") -> Round_robin
  | Some _ | None -> Size_aware

(* Handshake payloads are Wire-encoded, not marshalled: they are parsed
   before the two sides have proven they run the same build, so the
   format must be robust to any byte sequence (the cursor raises
   [Wire.Corrupt], it never faults). *)

let hello_payload ~has_store =
  let b = Buffer.create 80 in
  Wire.put_varint b protocol_version;
  Wire.put_string b Cache_key.version;
  Buffer.add_char b (if has_store then '\001' else '\000');
  Wire.put_string b (Printf.sprintf "%s/%d" (Unix.gethostname ()) (Unix.getpid ()));
  Buffer.contents b

let read_hello payload =
  let c = Wire.cursor payload in
  let proto = Wire.get_varint c "hello protocol version" in
  let ckv = Wire.get_string c "hello cache-key version" in
  let has_store = Wire.get_byte c "hello has-store" <> 0 in
  let host = Wire.get_string c "hello host" in
  (proto, ckv, has_store, host)

let welcome_payload ~worker_id ~plan_digest ~cache_results =
  let b = Buffer.create 120 in
  Wire.put_varint b protocol_version;
  Wire.put_string b Cache_key.version;
  Wire.put_string b plan_digest;
  Wire.put_varint b worker_id;
  Buffer.add_char b (if cache_results then '\001' else '\000');
  Buffer.contents b

let read_welcome payload =
  let c = Wire.cursor payload in
  let proto = Wire.get_varint c "welcome protocol version" in
  let ckv = Wire.get_string c "welcome cache-key version" in
  let plan_digest = Wire.get_string c "welcome plan digest" in
  let worker_id = Wire.get_varint c "welcome worker id" in
  let cache_results = Wire.get_byte c "welcome cache-results" <> 0 in
  (proto, ckv, plan_digest, worker_id, cache_results)

(* ------------------------------------------------------------------ *)
(* Fault injection for the differential suite                          *)
(* ------------------------------------------------------------------ *)

(* Worker 0 calls [_exit] right after sending its [GCR_FABRIC_CRASH_AFTER]-th
   result, mid-group, so the coordinator must reassign the rest. *)
let env_after name ~id =
  if id <> 0 then None
  else
    match Option.bind (Sys.getenv_opt name) int_of_string_opt with
    | Some n when n >= 0 -> Some n
    | Some _ | None -> None

let crash_after = env_after "GCR_FABRIC_CRASH_AFTER"

(* Worker 0 writes raw garbage below the framing after its n-th result and
   dies: the coordinator's decoder must refuse the stream ([Corrupt]) and
   requeue, exactly as for a clean EOF. *)
let garble_after = env_after "GCR_FABRIC_GARBLE_AFTER"

(* Ten 0x80-continuation bytes: an unterminated varint that overflows the
   62-bit cap — [Corrupt] the moment it is read, deterministic. *)
let garble_bytes = String.make 10 '\xff'

(* ------------------------------------------------------------------ *)
(* Worker process                                                      *)
(* ------------------------------------------------------------------ *)

(* Per-process memo of decoded replay images, keyed by the tape recipe.
   Sibling groups differing only in collector or heap size land on the
   same worker back to back; decoding the multi-megabyte tape once per
   worker instead of once per group is most of the warm-path win on the
   tape-replay grid.  Tiny LRU — group scheduling is contiguous, so two
   slots of history already cover interleavings. *)
let image_memo_cap = 4

let image_memo : ((string * int) * Decision_source.image) list ref = ref []

let memoized_image key make =
  match List.assoc_opt key !image_memo with
  | Some image ->
      image_memo := (key, image) :: List.remove_assoc key !image_memo;
      image
  | None ->
      let image = make () in
      let rest = List.filteri (fun i _ -> i < image_memo_cap - 1) !image_memo in
      image_memo := (key, image) :: rest;
      image

(* Tape via the shared store: content-addressed fetch; first consumer
   generates and publishes. *)
let store_tape_fetch store ~spec ~seed =
  match Artifact_store.find_tape store ~spec ~seed with
  | Some tape -> tape
  | None ->
      let tape = Tape_gen.generate ~spec ~seed in
      Artifact_store.store_tape store tape;
      tape

let group_tape ~fetch (g : group) =
  if not g.tapes then Run.Tape_off
  else begin
    let started = Unix.gettimeofday () in
    let key = (Spec.digest g.spec, g.seed) in
    let image =
      memoized_image key (fun () -> Decision_source.image_of_tape ~spec:g.spec (fetch g))
    in
    Profile.add_tape_s (Unix.gettimeofday () -. started);
    Run.Tape_replay image
  end

let execute_group ?state ~fetch ~cache ~on_result (g : group) =
  let tape = group_tape ~fetch g in
  List.iter
    (fun (index, config) ->
      let config = { config with Run.tape } in
      let m, hit = Pool.execute_cached ?cache ?state config in
      on_result index hit m)
    g.cells

(* Results are shipped in batches: fewer, larger frames amortise the
   marshal and write cost per cell, and each batch carries the worker's
   profile self-time accumulated since the last one.  The cap bounds
   result latency on long groups (and the coordinator's reassignment
   loss after a crash). *)
let batch_cap = 32

exception Quit_worker of int

(* The worker loop, shared by forked pipe workers and socket workers.
   [store = None] is the storeless remote worker: tapes are fetched over
   the wire ([tag_tape_fetch]) and generated-then-published on a miss.
   Returns the exit code; forked workers wrap it in [_exit]. *)
let worker_main ~id ~store ~cache ~ep ~verbose =
  let crash_after = crash_after ~id in
  let garble_after = garble_after ~id in
  let state = if Run.warm_enabled () then Some (Run.new_state ()) else None in
  let scratch = Buffer.create 65536 in
  let batch : (int * bool * Measurement.t) list ref = ref [] in
  let batch_len = ref 0 in
  let last_prof = ref (Profile.snapshot ()) in
  let last_tx = ref (Unix.gettimeofday ()) in
  let send tag payload =
    Transport.send ~scratch ep ~tag payload;
    last_tx := Unix.gettimeofday ()
  in
  let flush () =
    if !batch_len > 0 then begin
      let now = Profile.snapshot () in
      let delta = Profile.diff now !last_prof in
      last_prof := now;
      send tag_batch (Marshal.to_string (List.rev !batch, delta) []);
      batch := [];
      batch_len := 0
    end
  in
  let sent = ref 0 in
  let on_result index hit m =
    batch := (index, hit, m) :: !batch;
    incr batch_len;
    incr sent;
    (match crash_after with
    | Some n when !sent >= n ->
        (* flush what was completed so far, then die mid-group: the
           coordinator sees exactly [n] results and reassigns the rest *)
        flush ();
        Unix._exit 97
    | Some _ | None -> ());
    (match garble_after with
    | Some n when !sent >= n ->
        flush ();
        (try Transport.send_raw ep garble_bytes with Unix.Unix_error _ -> ());
        Unix._exit 96
    | Some _ | None -> ());
    if !batch_len >= batch_cap then flush ()
  in
  let inbox : (int * group) list ref = ref [] in
  let quit = ref false in
  let handle tag payload =
    if tag = tag_group then begin
      let (gid, g) : int * group = Marshal.from_string payload 0 in
      inbox := !inbox @ [ (gid, g) ]
    end
    else if tag = tag_revoke then begin
      let c = Wire.cursor payload in
      let gid = Wire.get_varint c "revoke gid" in
      let had = List.mem_assoc gid !inbox in
      if had then inbox := List.remove_assoc gid !inbox;
      let b = Buffer.create 8 in
      Wire.put_varint b gid;
      Buffer.add_char b (if had then '\001' else '\000');
      send tag_ack (Buffer.contents b)
    end
    else if tag = tag_quit then quit := true
    else raise (Quit_worker 3) (* tape reply outside a fetch, or unknown tag *)
  in
  let heartbeat () =
    if Unix.gettimeofday () -. !last_tx >= heartbeat_interval_s then begin
      if !batch_len > 0 then flush () else send tag_heartbeat ""
    end
  in
  let generate_and_publish (g : group) =
    let tape = Tape_gen.generate ~spec:g.spec ~seed:g.seed in
    (match store with
    | Some st -> Artifact_store.store_tape st tape
    | None -> (
        (* publish the bytes so the coordinator (and its other workers)
           never generate this tape again *)
        try send tag_tape_publish (Tape.to_string tape) with Unix.Unix_error _ -> ()));
    tape
  in
  let fetch_tape (g : group) =
    match store with
    | Some st -> store_tape_fetch st ~spec:g.spec ~seed:g.seed
    | None ->
        let spec_digest = Spec.digest g.spec in
        let threads = g.spec.Spec.mutator_threads in
        let b = Buffer.create 80 in
        Wire.put_string b spec_digest;
        Wire.put_varint b g.seed;
        Wire.put_varint b threads;
        send tag_tape_fetch (Buffer.contents b);
        (* The reply is the next tape frame; group/revoke/quit frames may
           arrive interleaved and are handled in place. *)
        let rec wait () =
          match Transport.recv ep with
          | None -> raise (Quit_worker 0)
          | Some (tag, payload) ->
              if tag = tag_tape_data then begin
                match Artifact_store.check_bytes ~spec_digest ~seed:g.seed ~threads payload with
                | Some tape -> tape
                | None ->
                    (* damaged in flight: the verify-on-read discipline
                       degrades the transfer to a miss *)
                    generate_and_publish g
              end
              else if tag = tag_tape_miss then generate_and_publish g
              else begin
                handle tag payload;
                wait ()
              end
        in
        wait ()
  in
  let execute (_gid, g) =
    let fetch = fetch_tape in
    let tape = group_tape ~fetch g in
    List.iter
      (fun (index, config) ->
        heartbeat ();
        let config = { config with Run.tape } in
        let m, hit = Pool.execute_cached ?cache ?state config in
        on_result index hit m)
      g.cells;
    flush ()
  in
  (* Pick up already-arrived control frames (revokes!) without blocking,
     so a queued group stolen while we were busy is dropped before we
     start it. *)
  let drain_pending () =
    let rec frames () =
      match Transport.next_frame ep with
      | Some (tag, payload) ->
          handle tag payload;
          frames ()
      | None -> ()
    in
    frames ();
    let rec poll () =
      match Unix.select [ Transport.recv_fd ep ] [] [] 0.0 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Transport.read_step ep with
          | `Eof -> raise (Quit_worker (if Transport.mid_frame ep then 3 else 0))
          | `Ready ->
              frames ();
              poll ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    in
    poll ()
  in
  let rec loop () =
    drain_pending ();
    match !inbox with
    | job :: rest ->
        inbox := rest;
        execute job;
        loop ()
    | [] ->
        if !quit then 0
        else begin
          match Transport.recv ep with
          | None -> 0
          | Some (tag, payload) ->
              handle tag payload;
              loop ()
        end
  in
  try loop () with
  | Quit_worker code -> code
  | Transport.Corrupt msg | Wire.Corrupt msg ->
      if verbose then Printf.eprintf "gcr worker: corrupt stream from coordinator: %s\n%!" msg;
      3
  | Unix.Unix_error _ -> 1
  | exn ->
      if verbose then
        Printf.eprintf "gcr worker: uncaught exception: %s\n%!" (Printexc.to_string exn);
      1

(* --- Remote worker entry point (gcr worker --connect). --- *)

let resolve_addr host port =
  match Unix.inet_addr_of_string host with
  | addr -> Unix.ADDR_INET (addr, port)
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> failwith ("no address for host " ^ host)
      | { Unix.h_addr_list; _ } -> Unix.ADDR_INET (h_addr_list.(0), port)
      | exception Not_found -> failwith ("unknown host " ^ host))

let worker_connect ~host ~port ?store ?(retry_for = 30.0) () =
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ());
  match resolve_addr host port with
  | exception Failure msg -> Error msg
  | addr -> (
      let deadline = Unix.gettimeofday () +. retry_for in
      (* The coordinator may not be listening yet (workers are typically
         started first): retry connection refusals until the deadline. *)
      let rec connect () =
        let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
        match Unix.connect fd addr with
        | () ->
            (* the protocol is request/response (tape fetch, revoke/ack):
               Nagle + delayed ACK would serialise those exchanges into
               ~40ms stalls *)
            (try Unix.setsockopt fd Unix.TCP_NODELAY true
             with Unix.Unix_error _ -> ());
            Some fd
        | exception
            Unix.Unix_error
              ( ( Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ENETUNREACH
                | Unix.EHOSTUNREACH | Unix.ETIMEDOUT ),
                _,
                _ ) ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            if Unix.gettimeofday () >= deadline then None
            else begin
              Unix.sleepf 0.2;
              connect ()
            end
        | exception Unix.Unix_error (e, _, _) ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            failwith (Unix.error_message e)
      in
      match connect () with
      | exception Failure msg ->
          Error (Printf.sprintf "cannot connect to %s:%d: %s" host port msg)
      | None ->
          Error
            (Printf.sprintf "could not connect to %s:%d within %.0fs" host port retry_for)
      | Some fd -> (
          let ep = Transport.of_socket fd in
          let fail msg =
            Transport.close ep;
            Error msg
          in
          match
            Transport.send ep ~tag:tag_hello (hello_payload ~has_store:(store <> None));
            Transport.recv ep
          with
          | exception Transport.Corrupt msg | exception Wire.Corrupt msg ->
              fail ("corrupt handshake: " ^ msg)
          | exception Unix.Unix_error (e, _, _) ->
              fail ("handshake failed: " ^ Unix.error_message e)
          | None -> fail "coordinator closed the connection during the handshake"
          | Some (tag, _) when tag <> tag_welcome ->
              fail (Printf.sprintf "expected welcome frame, got tag %C" tag)
          | Some (_, payload) -> (
              match read_welcome payload with
              | exception Wire.Corrupt msg -> fail ("corrupt welcome: " ^ msg)
              | proto, ckv, plan_digest, worker_id, cache_results ->
                  if proto <> protocol_version then
                    fail
                      (Printf.sprintf
                         "protocol version mismatch: coordinator speaks v%d, this build v%d"
                         proto protocol_version)
                  else if not (String.equal ckv Cache_key.version) then
                    fail
                      (Printf.sprintf
                         "cache-key version mismatch: coordinator %s, this build %s"
                         ckv Cache_key.version)
                  else begin
                    Printf.eprintf
                      "gcr worker %d: connected to %s:%d (plan %s%s)\n%!"
                      worker_id host port
                      (if plan_digest = "" then "unnamed" else plan_digest)
                      (match store with
                      | Some st -> "; store " ^ Artifact_store.dir st
                      | None -> "; tapes over the wire");
                    let cache =
                      match store with
                      | Some st when cache_results -> Some (Artifact_store.results st)
                      | Some _ | None -> None
                    in
                    let code =
                      worker_main ~id:worker_id ~store ~cache ~ep ~verbose:true
                    in
                    Transport.close ep;
                    Ok code
                  end)))

(* ------------------------------------------------------------------ *)
(* Coordinator                                                         *)
(* ------------------------------------------------------------------ *)

type wrec = {
  w_id : int;
  w_host : string;
  w_transport : string;
  ep : Transport.t;
  pid : int option;  (** forked workers only, for [waitpid] *)
  mutable alive : bool;
  mutable queue : slot list;  (** assigned, in send order; head in progress *)
  mutable revoking : int option;  (** gid of an in-flight revoke *)
  mutable last_rx : float;
  mutable cells_total : int;  (** session-cumulative, probe waves included *)
  mutable wire_tapes_total : int;
}

and slot = {
  gid : int;
  g : group;
  mutable pending : (int * Run.config) list;
  mutable sstate : [ `Ready | `Assigned of int | `Done ];
  mutable stolen_from : int option;
}

type session = {
  store : Artifact_store.t;
  cache_results : bool;
  log : string -> unit;
  obs : Obs.t option;
  sched : sched;
  timeout_s : float;
  ws : wrec array;
  scratch : Buffer.t;
  old_sigpipe : Sys.signal_behavior option;
  plan_digest : string;
  mutable tick : int;  (** monotonic obs event time for lifecycle events *)
  mutable deaths : int;
  mutable stolen_total : int;
  mutable closed : bool;
}

let obs_tick session =
  session.tick <- session.tick + 1;
  session.tick

let emit_spawn session w =
  match session.obs with
  | None -> ()
  | Some obs ->
      Obs.fabric_worker_spawn obs ~time:(obs_tick session) ~worker:w.w_id
        ~transport:(if w.w_transport = "socket" then 1 else 0)

let emit_dead session w ~requeued =
  match session.obs with
  | None -> ()
  | Some obs ->
      Obs.fabric_worker_dead obs ~time:(obs_tick session) ~worker:w.w_id ~requeued

let emit_steal session ~victim ~thief ~cells =
  match session.obs with
  | None -> ()
  | Some obs -> Obs.fabric_group_steal obs ~time:(obs_tick session) ~victim ~thief ~cells

(* --- Spawning: forked pipe workers. --- *)

let spawn_forked ~store ~cache_results ~id ~close_in_child =
  let req_read, req_write = Unix.pipe ~cloexec:false () in
  let resp_read, resp_write = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
      Unix.close req_write;
      Unix.close resp_read;
      (* the parent-side ends of earlier siblings, inherited across the
         fork: close them so sibling EOFs are not kept artificially open *)
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) close_in_child;
      let cache = if cache_results then Some (Artifact_store.results store) else None in
      let ep = Transport.of_fds ~recv:req_read ~send:resp_write in
      Unix._exit
        (try worker_main ~id ~store:(Some store) ~cache ~ep ~verbose:false with _ -> 1)
  | pid ->
      Unix.close req_read;
      Unix.close resp_write;
      {
        w_id = id;
        w_host = "local";
        w_transport = "pipe";
        ep = Transport.of_fds ~recv:resp_read ~send:req_write;
        pid = Some pid;
        alive = true;
        queue = [];
        revoking = None;
        last_rx = Unix.gettimeofday ();
        cells_total = 0;
        wire_tapes_total = 0;
      }

(* --- Socket accept + handshake. --- *)

let accept_workers ~log ~host ~port ~expected ~connect_timeout ~plan_digest
    ~cache_results ~on_listen =
  let addr = resolve_addr host port in
  let sock = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock addr;
  Unix.listen sock (max 1 expected);
  let actual_port =
    match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  Option.iter (fun f -> f actual_port) on_listen;
  log
    (Printf.sprintf "listening on %s:%d; waiting up to %.0fs for %d worker(s)" host
       actual_port connect_timeout expected);
  let deadline = Unix.gettimeofday () +. connect_timeout in
  let ws = ref [] in
  let count = ref 0 in
  let handshake fd =
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    let ep = Transport.of_socket fd in
    let reject msg =
      log ("rejected worker connection: " ^ msg);
      Transport.close ep
    in
    match Transport.recv ep with
    | exception Transport.Corrupt msg -> reject ("corrupt hello: " ^ msg)
    | exception Unix.Unix_error (e, _, _) -> reject (Unix.error_message e)
    | None -> reject "closed before hello"
    | Some (tag, _) when tag <> tag_hello ->
        reject (Printf.sprintf "expected hello, got tag %C" tag)
    | Some (_, payload) -> (
        match read_hello payload with
        | exception Wire.Corrupt msg -> reject ("corrupt hello: " ^ msg)
        | proto, ckv, has_store, peer_host -> (
            let id = !count in
            (* answer with our versions even on mismatch, so the worker can
               print the precise incompatibility before exiting 3 *)
            match
              Transport.send ep ~tag:tag_welcome
                (welcome_payload ~worker_id:id ~plan_digest ~cache_results)
            with
            | exception Unix.Unix_error (e, _, _) -> reject (Unix.error_message e)
            | () ->
                if proto <> protocol_version then
                  reject
                    (Printf.sprintf "protocol version mismatch (worker v%d, ours v%d)"
                       proto protocol_version)
                else if not (String.equal ckv Cache_key.version) then
                  reject
                    (Printf.sprintf "cache-key version mismatch (worker %s, ours %s)" ckv
                       Cache_key.version)
                else begin
                  incr count;
                  log
                    (Printf.sprintf "worker %d connected from %s%s" id peer_host
                       (if has_store then " (own store)" else " (tapes over the wire)"));
                  ws :=
                    {
                      w_id = id;
                      w_host = peer_host;
                      w_transport = "socket";
                      ep;
                      pid = None;
                      alive = true;
                      queue = [];
                      revoking = None;
                      last_rx = Unix.gettimeofday ();
                      cells_total = 0;
                      wire_tapes_total = 0;
                    }
                    :: !ws
                end))
  in
  let rec accept_loop () =
    if !count < expected then begin
      let left = deadline -. Unix.gettimeofday () in
      if left > 0.0 then begin
        match Unix.select [ sock ] [] [] left with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
        | [], _, _ -> ()
        | _ :: _, _, _ ->
            (match Unix.accept sock with
            | fd, _ -> handshake fd
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
            accept_loop ()
      end
    end
  in
  accept_loop ();
  (try Unix.close sock with Unix.Unix_error _ -> ());
  if !count < expected then
    log
      (Printf.sprintf
         "only %d of %d worker(s) connected before the deadline; proceeding%s" !count
         expected
         (if !count = 0 then " (coordinator executes everything inline)" else ""));
  List.rev !ws

(* --- Session lifecycle. --- *)

let start ~workers ~store ~cache_results ?(log = fun (_ : string) -> ()) ?obs
    ?sched ?listen ?(connect_timeout = 30.0) ?on_listen ?(plan_digest = "") () =
  if workers < 1 then invalid_arg "Fabric.start: workers must be >= 1";
  let sched = match sched with Some s -> s | None -> sched_of_env () in
  let old_sigpipe =
    (* a worker that died mid-read must surface as EPIPE, not kill us *)
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> None
  in
  let ws =
    match listen with
    | Some (host, port) ->
        accept_workers ~log ~host ~port ~expected:workers ~connect_timeout ~plan_digest
          ~cache_results ~on_listen
    | None ->
        (* spawn in id order; each child closes the parent-side pipe ends
           of the workers spawned before it *)
        let rec spawn id acc close_fds =
          if id >= workers then List.rev acc
          else begin
            let w = spawn_forked ~store ~cache_results ~id ~close_in_child:close_fds in
            let close_fds = Transport.recv_fd w.ep :: Transport.send_fd w.ep :: close_fds in
            spawn (id + 1) (w :: acc) close_fds
          end
        in
        spawn 0 [] []
  in
  let session =
    {
      store;
      cache_results;
      log;
      obs;
      sched;
      timeout_s = timeout_of_env ();
      ws = Array.of_list ws;
      scratch = Buffer.create 65536;
      old_sigpipe;
      plan_digest;
      tick = 0;
      deaths = 0;
      stolen_total = 0;
      closed = false;
    }
  in
  Array.iter (fun w -> emit_spawn session w) session.ws;
  session

let close_worker w =
  Transport.close w.ep;
  w.alive <- false

let shutdown session =
  if not session.closed then begin
    session.closed <- true;
    Array.iter
      (fun w ->
        if w.alive then begin
          (try Transport.send ~scratch:session.scratch w.ep ~tag:tag_quit "" with _ -> ());
          close_worker w
        end)
      session.ws;
    Array.iter
      (fun w ->
        match w.pid with
        | Some pid -> ( try ignore (Unix.waitpid [] pid) with _ -> ())
        | None -> ())
      session.ws;
    match session.old_sigpipe with
    | Some behaviour -> ( try Sys.set_signal Sys.sigpipe behaviour with _ -> ())
    | None -> ()
  end

let worker_rows session =
  Array.to_list
    (Array.map
       (fun w ->
         {
           row_id = w.w_id;
           row_host = w.w_host;
           row_transport = w.w_transport;
           row_cells = w.cells_total;
           row_wire_tapes = w.wire_tapes_total;
           row_alive = w.alive;
         })
       session.ws)

let worker_deaths session = session.deaths

let stolen_groups session = session.stolen_total

(* --- Dispatch: execute one wave of groups through the session. --- *)

let validate_groups groups =
  List.iter
    (fun (g : group) ->
      List.iter
        (fun (index, (config : Run.config)) ->
          if index < 0 then invalid_arg "Fabric.dispatch: negative cell index";
          if config.Run.make_collector <> None then
            invalid_arg "Fabric.dispatch: custom collectors cannot cross processes";
          match config.Run.tape with
          | Run.Tape_off -> ()
          | Run.Tape_record _ | Run.Tape_replay _ ->
              invalid_arg
                "Fabric.dispatch: cell configs must carry Tape_off (workers attach the \
                 group tape themselves)")
        g.cells)
    groups

(* How many groups a worker holds before new ones go elsewhere: 2 = one
   in progress + one prefetched, hiding transport latency.  The prefetch
   is what work-stealing revokes. *)
let queue_depth = 2

let dispatch session ~n_cells groups =
  if session.closed then invalid_arg "Fabric.dispatch: session is shut down";
  validate_groups groups;
  let slots =
    Array.of_list
      (List.mapi
         (fun gid (g : group) ->
           { gid; g; pending = g.cells; sstate = `Ready; stolen_from = None })
         (List.filter (fun (g : group) -> g.cells <> []) groups))
  in
  let index_gid = Array.make n_cells (-1) in
  Array.iter
    (fun s ->
      List.iter
        (fun (i, _) ->
          if i >= n_cells then invalid_arg "Fabric.dispatch: cell index out of range";
          if index_gid.(i) <> -1 then invalid_arg "Fabric.dispatch: duplicate cell index";
          index_gid.(i) <- s.gid)
        s.pending)
    slots;
  let results : Measurement.t option array = Array.make n_cells None in
  let remaining = ref (Array.fold_left (fun acc s -> acc + List.length s.pending) 0 slots) in
  let per_worker = Array.make (Array.length session.ws) 0 in
  let hits = ref 0 in
  let reassigned = ref 0 in
  let parent_cells = ref 0 in
  let stolen = ref 0 in
  let wire_tapes = ref 0 in
  let worker_profile = ref Profile.zero in
  (* The ready list is the scheduler: size-aware keeps it sorted by
     descending cost (largest first — LPT — so the big groups cannot land
     last on an otherwise-drained fleet), round-robin keeps plan order. *)
  let before a b =
    (* strict priority of slot a over slot b *)
    slots.(a).g.cost > slots.(b).g.cost
    || (slots.(a).g.cost = slots.(b).g.cost && a < b)
  in
  let ready =
    let ids = List.init (Array.length slots) Fun.id in
    ref
      (match session.sched with
      | Round_robin -> ids
      | Size_aware -> List.stable_sort (fun a b -> if before a b then -1 else 1) ids)
  in
  let insert_ready gid =
    slots.(gid).sstate <- `Ready;
    match session.sched with
    | Round_robin -> ready := !ready @ [ gid ]
    | Size_aware ->
        let rec ins = function
          | [] -> [ gid ]
          | x :: rest -> if before x gid then x :: ins rest else gid :: x :: rest
        in
        ready := ins !ready
  in
  let worker_died w =
    if w.alive then begin
      close_worker w;
      session.deaths <- session.deaths + 1;
      let lost = List.fold_left (fun acc s -> acc + List.length s.pending) 0 w.queue in
      reassigned := !reassigned + lost;
      emit_dead session w ~requeued:lost;
      session.log
        (Printf.sprintf "worker %d died; requeueing %d group(s), %d cell(s)" w.w_id
           (List.length w.queue) lost);
      List.iter
        (fun s -> if s.pending <> [] then insert_ready s.gid else s.sstate <- `Done)
        w.queue;
      w.queue <- [];
      w.revoking <- None
    end
  in
  let send_group w s =
    s.sstate <- `Assigned w.w_id;
    w.queue <- w.queue @ [ s ];
    (match s.stolen_from with
    | Some victim ->
        s.stolen_from <- None;
        emit_steal session ~victim ~thief:w.w_id ~cells:(List.length s.pending);
        session.log
          (Printf.sprintf "worker %d stole %s seed=%d (%d cells) from worker %d" w.w_id
             s.g.spec.Spec.name s.g.seed (List.length s.pending) victim)
    | None ->
        session.log
          (Printf.sprintf "worker %d <- %s seed=%d (%d cells, cost %.0f)" w.w_id
             s.g.spec.Spec.name s.g.seed (List.length s.pending) s.g.cost));
    match
      Transport.send ~scratch:session.scratch w.ep ~tag:tag_group
        (Marshal.to_string (s.gid, { s.g with cells = s.pending }) [])
    with
    | () -> ()
    | exception Unix.Unix_error _ -> worker_died w
  in
  let on_result w (index, hit, m) =
    (match results.(index) with
    | Some _ -> () (* duplicate after a reassignment race: first write wins *)
    | None ->
        results.(index) <- Some m;
        per_worker.(w.w_id) <- per_worker.(w.w_id) + 1;
        w.cells_total <- w.cells_total + 1;
        if hit then incr hits;
        decr remaining);
    if index < n_cells && index_gid.(index) >= 0 then begin
      let s = slots.(index_gid.(index)) in
      s.pending <- List.filter (fun (i, _) -> i <> index) s.pending;
      if s.pending = [] && s.sstate <> `Ready then begin
        s.sstate <- `Done;
        w.queue <- List.filter (fun s' -> s'.gid <> s.gid) w.queue
      end
    end
  in
  let handle_frame w (tag, payload) =
    if tag = tag_batch then begin
      let batch, (delta : Profile.snapshot) =
        (Marshal.from_string payload 0
          : (int * bool * Measurement.t) list * Profile.snapshot)
      in
      let acc = !worker_profile in
      worker_profile :=
        {
          Profile.setup_us = acc.Profile.setup_us + delta.Profile.setup_us;
          tape_us = acc.Profile.tape_us + delta.Profile.tape_us;
          simulate_us = acc.Profile.simulate_us + delta.Profile.simulate_us;
        };
      List.iter (fun r -> on_result w r) batch
    end
    else if tag = tag_heartbeat then ()
    else if tag = tag_ack then begin
      let c = Wire.cursor payload in
      let gid = Wire.get_varint c "ack gid" in
      let dropped = Wire.get_byte c "ack dropped" <> 0 in
      if w.revoking = Some gid then w.revoking <- None;
      if dropped && gid >= 0 && gid < Array.length slots then begin
        let s = slots.(gid) in
        w.queue <- List.filter (fun s' -> s'.gid <> gid) w.queue;
        if s.sstate = `Assigned w.w_id && s.pending <> [] then begin
          incr stolen;
          session.stolen_total <- session.stolen_total + 1;
          s.stolen_from <- Some w.w_id;
          insert_ready gid
        end
      end
    end
    else if tag = tag_tape_fetch then begin
      let c = Wire.cursor payload in
      let spec_digest = Wire.get_string c "tape fetch spec digest" in
      let seed = Wire.get_varint c "tape fetch seed" in
      let threads = Wire.get_varint c "tape fetch threads" in
      match
        Artifact_store.find_tape_bytes session.store ~spec_digest ~seed ~threads
      with
      | Some bytes ->
          w.wire_tapes_total <- w.wire_tapes_total + 1;
          incr wire_tapes;
          Transport.send ~scratch:session.scratch w.ep ~tag:tag_tape_data bytes
      | None -> Transport.send ~scratch:session.scratch w.ep ~tag:tag_tape_miss ""
    end
    else if tag = tag_tape_publish then begin
      match Artifact_store.store_tape_bytes session.store payload with
      | Ok () -> ()
      | Error e -> session.log ("rejected published tape: " ^ e)
    end
    else begin
      session.log (Printf.sprintf "worker %d: unexpected frame tag %C" w.w_id tag);
      worker_died w
    end
  in
  let drain w =
    let continue_ = ref true in
    while !continue_ && w.alive do
      match Transport.next_frame w.ep with
      | None -> continue_ := false
      | Some frame -> handle_frame w frame
      | exception Transport.Corrupt msg ->
          session.log (Printf.sprintf "worker %d: corrupt stream (%s)" w.w_id msg);
          worker_died w
      | exception (Wire.Corrupt msg | Failure msg) ->
          (* a frame that passed the checksum but failed payload parsing:
             treat the peer as gone, exactly like transport corruption *)
          session.log (Printf.sprintf "worker %d: bad frame payload (%s)" w.w_id msg);
          worker_died w
    done
  in
  let check_timeouts () =
    if session.timeout_s > 0.0 then begin
      let now = Unix.gettimeofday () in
      Array.iter
        (fun w ->
          if w.alive && w.queue <> [] && now -. w.last_rx > session.timeout_s then begin
            session.log
              (Printf.sprintf "worker %d: no frames for %.0fs, declaring dead" w.w_id
                 (now -. w.last_rx));
            worker_died w
          end)
        session.ws
    end
  in
  while !remaining > 0 && Array.exists (fun w -> w.alive) session.ws do
    (* deal: largest group to the least-loaded live worker (LPT).  Never
       fill one worker's queue before another sees anything — that would
       re-deal a freshly stolen group straight back to its victim.
       Size-aware load is the *cost* already queued on the worker (so a
       prefetched heavyweight counts for what it is, and two big groups
       are never stacked while a neighbour holds two cheap ones);
       round-robin stays cost-blind and compares queue length only. *)
    let queued_cost w =
      List.fold_left (fun acc s -> acc +. s.g.cost) 0.0 w.queue
    in
    let lighter a b =
      (* strict: is a less loaded than b? *)
      match session.sched with
      | Round_robin -> List.length a.queue < List.length b.queue
      | Size_aware ->
          let ca = queued_cost a and cb = queued_cost b in
          ca < cb || (ca = cb && List.length a.queue < List.length b.queue)
    in
    let rec deal () =
      match !ready with
      | [] -> ()
      | gid :: rest -> (
          let best = ref None in
          Array.iter
            (fun w ->
              if w.alive && List.length w.queue < queue_depth then
                match !best with
                | Some b when not (lighter w b) -> ()
                | Some _ | None -> best := Some w)
            session.ws;
          match !best with
          | None -> ()
          | Some w ->
              ready := rest;
              send_group w slots.(gid);
              deal ())
    in
    deal ();
    (* steal: idle workers + an empty ready list means stragglers hold
       prefetched groups — revoke queue tails (never the in-progress
       head), one in-flight revoke per victim *)
    if !ready = [] && !remaining > 0 then begin
      let idle = ref 0 in
      Array.iter
        (fun w -> if w.alive && w.queue = [] && w.revoking = None then incr idle)
        session.ws;
      if !idle > 0 then
        Array.iter
          (fun v ->
            if !idle > 0 && v.alive && v.revoking = None && List.length v.queue >= 2
            then begin
              let tail = List.nth v.queue (List.length v.queue - 1) in
              v.revoking <- Some tail.gid;
              decr idle;
              let b = Buffer.create 8 in
              Wire.put_varint b tail.gid;
              match Transport.send ~scratch:session.scratch v.ep ~tag:tag_revoke
                      (Buffer.contents b)
              with
              | () -> ()
              | exception Unix.Unix_error _ -> worker_died v
            end)
          session.ws
    end;
    let busy =
      Array.exists (fun w -> w.alive && (w.queue <> [] || w.revoking <> None)) session.ws
    in
    if (not busy) && !ready = [] && !remaining > 0 then
      (* live workers but nothing in flight and nothing queued: every
         remaining cell was lost to a crash race — fall through to the
         coordinator-side backstop below *)
      Array.iter worker_died session.ws
    else begin
      let live = Array.to_list session.ws |> List.filter (fun w -> w.alive) in
      let fds = List.map (fun w -> Transport.recv_fd w.ep) live in
      match Unix.select fds [] [] 5.0 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, _, _ ->
          List.iter
            (fun fd ->
              match List.find_opt (fun w -> Transport.recv_fd w.ep == fd) live with
              | None -> ()
              | Some w when not w.alive -> ()
              | Some w -> (
                  w.last_rx <- Unix.gettimeofday ();
                  match Transport.read_step w.ep with
                  | `Eof -> worker_died w
                  | `Ready -> drain w
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                  | exception Unix.Unix_error _ -> worker_died w))
            readable;
          check_timeouts ()
    end
  done;
  (* Backstop: every worker is gone (or none ever connected) but cells
     remain — execute them in this process so the campaign always
     completes.  The coordinator's own setup/tape/simulate time lands in
     this process's {!Profile} counters, not in [worker_profile]. *)
  let backstop_state =
    if Run.warm_enabled () && !ready <> [] then Some (Run.new_state ()) else None
  in
  let cache =
    if session.cache_results then Some (Artifact_store.results session.store) else None
  in
  while !ready <> [] do
    match !ready with
    | [] -> ()
    | gid :: rest ->
        ready := rest;
        let s = slots.(gid) in
        s.sstate <- `Done;
        execute_group ?state:backstop_state
          ~fetch:(fun (g : group) -> store_tape_fetch session.store ~spec:g.spec ~seed:g.seed)
          ~cache
          ~on_result:(fun index hit m ->
            match results.(index) with
            | Some _ -> ()
            | None ->
                results.(index) <- Some m;
                incr parent_cells;
                if hit then incr hits;
                decr remaining)
          { s.g with cells = s.pending }
  done;
  let out =
    Array.map
      (function
        | Some m -> m
        | None -> invalid_arg "Fabric.dispatch: unfilled cell (planner/index mismatch)")
      results
  in
  ( out,
    {
      cells = n_cells;
      cache_hits = !hits;
      per_worker;
      reassigned_cells = !reassigned;
      parent_cells = !parent_cells;
      stolen_groups = !stolen;
      wire_tapes = !wire_tapes;
      worker_profile = !worker_profile;
    } )

(* --- One-shot compatibility wrapper. --- *)

let run ~workers ~store ~cache_results ?log ?obs ?sched ?listen ?connect_timeout
    ?on_listen ?plan_digest ~n_cells groups =
  let session =
    start ~workers ~store ~cache_results ?log ?obs ?sched ?listen ?connect_timeout
      ?on_listen ?plan_digest ()
  in
  Fun.protect
    ~finally:(fun () -> shutdown session)
    (fun () -> dispatch session ~n_cells groups)
