module Wire = Gcr_tape.Wire
module Spec = Gcr_workloads.Spec
module Tape_gen = Gcr_workloads.Tape_gen
module Decision_source = Gcr_workloads.Decision_source
module Run = Gcr_runtime.Run
module Profile = Gcr_runtime.Profile
module Measurement = Gcr_runtime.Measurement

type group = {
  spec : Spec.t;
  seed : int;
  tapes : bool;
  cells : (int * Run.config) list;
}

type stats = {
  cells : int;
  cache_hits : int;
  per_worker : int array;
  reassigned_cells : int;
  parent_cells : int;
  worker_profile : Profile.snapshot;
}

(* ------------------------------------------------------------------ *)
(* Framing: varint length prefix (the tape codec) + 1 tag byte + body.  *)
(* ------------------------------------------------------------------ *)

let tag_group = 'G'

let tag_quit = 'Q'

let tag_batch = 'B'

let rec write_all fd s off len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (off + n) (len - n)
  end

(* [scratch], when given, is a caller-owned assembly buffer reused across
   frames — the worker's result stream allocates no fresh buffer per
   flush. *)
let send_frame ?scratch fd tag body =
  let b =
    match scratch with
    | Some b -> Buffer.clear b; b
    | None -> Buffer.create (String.length body + 16)
  in
  Wire.put_varint b (1 + String.length body);
  Buffer.add_char b tag;
  Buffer.add_string b body;
  let s = Buffer.contents b in
  write_all fd s 0 (String.length s)

(* Blocking frame reader (worker side): returns [None] on a clean EOF at
   a frame boundary — the parent has gone away. *)

let rec read_byte fd =
  let b = Bytes.create 1 in
  match Unix.read fd b 0 1 with
  | 0 -> None
  | _ -> Some (Bytes.get_uint8 b 0)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_byte fd

let read_exact fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off >= n then Some (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> None
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read_frame_blocking fd =
  let rec varint shift acc =
    match read_byte fd with
    | None -> if shift = 0 then None else failwith "fabric: truncated frame length"
    | Some b ->
        let acc = acc lor ((b land 0x7f) lsl shift) in
        if b land 0x80 = 0 then Some acc else varint (shift + 7) acc
  in
  match varint 0 0 with
  | None -> None
  | Some len -> (
      match read_exact fd len with
      | None -> failwith "fabric: truncated frame body"
      | Some payload -> Some payload)

(* ------------------------------------------------------------------ *)
(* Worker process                                                      *)
(* ------------------------------------------------------------------ *)

(* Deterministic crash injection for the differential suite: worker 0
   calls [_exit] right after sending its [GCR_FABRIC_CRASH_AFTER]-th
   result, mid-group, so the parent must reassign the rest. *)
let crash_after ~id =
  if id <> 0 then None
  else
    match Option.bind (Sys.getenv_opt "GCR_FABRIC_CRASH_AFTER") int_of_string_opt with
    | Some n when n >= 0 -> Some n
    | Some _ | None -> None

(* Per-process memo of decoded replay images, keyed by the tape recipe.
   Sibling groups differing only in collector or heap size land on the
   same worker back to back; decoding the multi-megabyte tape once per
   worker instead of once per group is most of the warm-path win on the
   tape-replay grid.  Tiny LRU — group scheduling is contiguous, so two
   slots of history already cover interleavings. *)
let image_memo_cap = 4

let image_memo : ((string * int) * Decision_source.image) list ref = ref []

let group_tape store (g : group) =
  if not g.tapes then Run.Tape_off
  else begin
    let started = Unix.gettimeofday () in
    let key = (Spec.digest g.spec, g.seed) in
    let image =
      match List.assoc_opt key !image_memo with
      | Some image ->
          image_memo := (key, image) :: List.remove_assoc key !image_memo;
          image
      | None ->
          (* Content-addressed fetch; first consumer generates and
             publishes.  One image serves every sibling cell of the group
             — the batched load the fabric's placement exists to enable. *)
          let tape =
            match Artifact_store.find_tape store ~spec:g.spec ~seed:g.seed with
            | Some tape -> tape
            | None ->
                let tape = Tape_gen.generate ~spec:g.spec ~seed:g.seed in
                Artifact_store.store_tape store tape;
                tape
          in
          let image = Decision_source.image_of_tape ~spec:g.spec tape in
          let rest = List.filteri (fun i _ -> i < image_memo_cap - 1) !image_memo in
          image_memo := (key, image) :: rest;
          image
    in
    Profile.add_tape_s (Unix.gettimeofday () -. started);
    Run.Tape_replay image
  end

let execute_group ?state ~store ~cache ~on_result (g : group) =
  let tape = group_tape store g in
  List.iter
    (fun (index, config) ->
      let config = { config with Run.tape } in
      let m, hit = Pool.execute_cached ?cache ?state config in
      on_result index hit m)
    g.cells

(* Results are shipped in batches: fewer, larger frames amortise the
   marshal and pipe-write cost per cell, and each batch carries the
   worker's profile self-time accumulated since the last one.  The cap
   bounds result latency on long groups (and the parent's reassignment
   loss after a crash). *)
let batch_cap = 32

let worker_main ~id ~store ~cache ~req_fd ~resp_fd =
  let crash_after = crash_after ~id in
  let state = if Run.warm_enabled () then Some (Run.new_state ()) else None in
  let scratch = Buffer.create 65536 in
  let batch : (int * bool * Measurement.t) list ref = ref [] in
  let batch_len = ref 0 in
  let last_prof = ref (Profile.snapshot ()) in
  let flush () =
    if !batch_len > 0 then begin
      let now = Profile.snapshot () in
      let delta = Profile.diff now !last_prof in
      last_prof := now;
      send_frame ~scratch resp_fd tag_batch
        (Marshal.to_string (List.rev !batch, delta) []);
      batch := [];
      batch_len := 0
    end
  in
  let sent = ref 0 in
  let on_result index hit m =
    batch := (index, hit, m) :: !batch;
    incr batch_len;
    incr sent;
    (match crash_after with
    | Some n when !sent >= n ->
        (* flush what was completed so far, then die mid-group: the
           parent sees exactly [n] results and reassigns the rest *)
        flush ();
        Unix._exit 97
    | Some _ | None -> ());
    if !batch_len >= batch_cap then flush ()
  in
  let rec loop () =
    match read_frame_blocking req_fd with
    | None -> Unix._exit 0
    | Some payload when String.length payload = 0 -> Unix._exit 1
    | Some payload when payload.[0] = tag_quit -> Unix._exit 0
    | Some payload when payload.[0] = tag_group ->
        let g : group = Marshal.from_string payload 1 in
        execute_group ?state ~store ~cache ~on_result g;
        flush ();
        loop ()
    | Some _ -> Unix._exit 1
  in
  (* Any escape here (a marshalling bug, a closed pipe) must look like a
     crashed worker, not a wedged one: exit abruptly, without flushing
     the channel buffers inherited from the parent. *)
  (try loop () with _ -> Unix._exit 1)

(* ------------------------------------------------------------------ *)
(* Parent: assignment, reduction, crash reassignment                   *)
(* ------------------------------------------------------------------ *)

type conn = { mutable rbuf : Bytes.t; mutable rlen : int }

type worker = {
  id : int;
  pid : int;
  req_fd : Unix.file_descr;
  resp_fd : Unix.file_descr;
  conn : conn;
  mutable alive : bool;
  mutable group : group option;
  mutable pending : (int * Run.config) list;
}

(* Extract one complete frame payload from the connection buffer. *)
let extract_frame conn =
  let rec header i shift len =
    if i >= conn.rlen then None
    else
      let b = Bytes.get_uint8 conn.rbuf i in
      let len = len lor ((b land 0x7f) lsl shift) in
      if b land 0x80 <> 0 then header (i + 1) (shift + 7) len else Some (i + 1, len)
  in
  match header 0 0 0 with
  | None -> None
  | Some (hdr, len) ->
      if conn.rlen < hdr + len then None
      else begin
        let payload = Bytes.sub_string conn.rbuf hdr len in
        let rest = conn.rlen - (hdr + len) in
        Bytes.blit conn.rbuf (hdr + len) conn.rbuf 0 rest;
        conn.rlen <- rest;
        Some payload
      end

let append_conn conn bytes n =
  if conn.rlen + n > Bytes.length conn.rbuf then begin
    let grown = Bytes.create (max (2 * Bytes.length conn.rbuf) (conn.rlen + n)) in
    Bytes.blit conn.rbuf 0 grown 0 conn.rlen;
    conn.rbuf <- grown
  end;
  Bytes.blit bytes 0 conn.rbuf conn.rlen n;
  conn.rlen <- conn.rlen + n

let spawn_worker ~store ~cache_results ~id ~close_in_child =
  let req_read, req_write = Unix.pipe ~cloexec:false () in
  let resp_read, resp_write = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
      Unix.close req_write;
      Unix.close resp_read;
      (* the parent-side ends of earlier siblings, inherited across the
         fork: close them so sibling EOFs are not kept artificially open *)
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) close_in_child;
      let cache = if cache_results then Some (Artifact_store.results store) else None in
      worker_main ~id ~store ~cache ~req_fd:req_read ~resp_fd:resp_write
  | pid ->
      Unix.close req_read;
      Unix.close resp_write;
      {
        id;
        pid;
        req_fd = req_write;
        resp_fd = resp_read;
        conn = { rbuf = Bytes.create 65536; rlen = 0 };
        alive = true;
        group = None;
        pending = [];
      }

let validate_groups groups =
  List.iter
    (fun (g : group) ->
      List.iter
        (fun (index, (config : Run.config)) ->
          if index < 0 then invalid_arg "Fabric.run: negative cell index";
          if config.Run.make_collector <> None then
            invalid_arg "Fabric.run: custom collectors cannot cross processes";
          match config.Run.tape with
          | Run.Tape_off -> ()
          | Run.Tape_record _ | Run.Tape_replay _ ->
              invalid_arg
                "Fabric.run: cell configs must carry Tape_off (workers attach the \
                 group tape themselves)")
        g.cells)
    groups

let run ~workers ~store ~cache_results ?(log = fun (_ : string) -> ()) ~n_cells groups =
  if workers < 1 then invalid_arg "Fabric.run: workers must be >= 1";
  validate_groups groups;
  let results : Measurement.t option array = Array.make n_cells None in
  let per_worker = Array.make workers 0 in
  let hits = ref 0 in
  let reassigned = ref 0 in
  let parent_cells = ref 0 in
  let worker_profile = ref Profile.zero in
  let remaining =
    ref (List.fold_left (fun acc (g : group) -> acc + List.length g.cells) 0 groups)
  in
  if !remaining > n_cells then invalid_arg "Fabric.run: more cells than n_cells";
  let queue : group Queue.t = Queue.create () in
  List.iter (fun (g : group) -> if g.cells <> [] then Queue.add g queue) groups;
  let old_sigpipe =
    (* a worker that died mid-read must surface as EPIPE, not kill us *)
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> None
  in
  let ws =
    (* spawn in id order; each child closes the parent-side pipe ends of
       the workers spawned before it *)
    let rec spawn_all id acc =
      if id >= workers then List.rev acc
      else
        let close_in_child =
          List.concat_map (fun w -> [ w.req_fd; w.resp_fd ]) acc
        in
        spawn_all (id + 1) (spawn_worker ~store ~cache_results ~id ~close_in_child :: acc)
    in
    Array.of_list (spawn_all 0 [])
  in
  let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> () in
  let worker_died w =
    if w.alive then begin
      w.alive <- false;
      close_quiet w.req_fd;
      close_quiet w.resp_fd;
      (match w.group with
      | None -> ()
      | Some g ->
          let lost = List.length w.pending in
          reassigned := !reassigned + lost;
          log
            (Printf.sprintf "worker %d died; reassigning %d cell(s) of %s seed=%d"
               w.id lost g.spec.Spec.name g.seed);
          if w.pending <> [] then Queue.add { g with cells = w.pending } queue;
          w.group <- None;
          w.pending <- [])
    end
  in
  let assign w g =
    w.group <- Some g;
    w.pending <- g.cells;
    log
      (Printf.sprintf "worker %d <- %s seed=%d (%d cells)" w.id g.spec.Spec.name g.seed
         (List.length g.cells));
    match send_frame w.req_fd tag_group (Marshal.to_string g []) with
    | () -> ()
    | exception Unix.Unix_error _ -> worker_died w
  in
  let on_result w (index, hit, m) =
    (match results.(index) with
    | Some _ -> ()  (* duplicate after reassignment race: first write wins *)
    | None ->
        results.(index) <- Some m;
        per_worker.(w.id) <- per_worker.(w.id) + 1;
        if hit then incr hits;
        decr remaining);
    w.pending <- List.filter (fun (i, _) -> i <> index) w.pending;
    if w.pending = [] then w.group <- None
  in
  let drain_frames w =
    let continue_ = ref true in
    while !continue_ do
      match extract_frame w.conn with
      | None -> continue_ := false
      | Some payload ->
          if String.length payload > 0 && payload.[0] = tag_batch then begin
            let batch, (delta : Profile.snapshot) =
              (Marshal.from_string payload 1
                : (int * bool * Measurement.t) list * Profile.snapshot)
            in
            worker_profile :=
              {
                Profile.setup_us = !worker_profile.Profile.setup_us + delta.Profile.setup_us;
                tape_us = !worker_profile.Profile.tape_us + delta.Profile.tape_us;
                simulate_us =
                  !worker_profile.Profile.simulate_us + delta.Profile.simulate_us;
              };
            List.iter (fun (index, hit, m) -> on_result w (index, hit, m)) batch
          end
    done
  in
  let chunk = Bytes.create 65536 in
  let finally () =
    Array.iter
      (fun w ->
        if w.alive then begin
          (try send_frame w.req_fd tag_quit "" with _ -> ());
          close_quiet w.req_fd;
          close_quiet w.resp_fd;
          w.alive <- false
        end)
      ws;
    Array.iter (fun w -> try ignore (Unix.waitpid [] w.pid) with _ -> ()) ws;
    match old_sigpipe with
    | Some behaviour -> ( try Sys.set_signal Sys.sigpipe behaviour with _ -> ())
    | None -> ()
  in
  Fun.protect ~finally (fun () ->
      while !remaining > 0 && Array.exists (fun w -> w.alive) ws do
        (* hand a group to every idle live worker *)
        Array.iter
          (fun w ->
            if w.alive && w.group = None && not (Queue.is_empty queue) then
              assign w (Queue.pop queue))
          ws;
        let busy =
          Array.to_list ws |> List.filter (fun w -> w.alive && w.group <> None)
        in
        if busy = [] then begin
          (* live workers but nothing in flight and nothing queued: every
             remaining cell was lost to a crash race — fall through to the
             parent-side executor below *)
          if Queue.is_empty queue then Array.iter worker_died ws
        end
        else begin
          let fds = List.map (fun w -> w.resp_fd) busy in
          match Unix.select fds [] [] 5.0 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | readable, _, _ ->
              List.iter
                (fun fd ->
                  let w = List.find (fun w -> w.resp_fd == fd) busy in
                  match Unix.read fd chunk 0 (Bytes.length chunk) with
                  | 0 -> worker_died w
                  | n ->
                      append_conn w.conn chunk n;
                      drain_frames w
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                  | exception Unix.Unix_error _ -> worker_died w)
                readable
        end
      done;
      (* Backstop: every worker is gone (or was never alive) but cells
         remain — execute them in this process so the campaign always
         completes.  Reassigned-but-unstarted groups are still queued.
         The parent's own setup/tape/simulate time lands in this
         process's {!Profile} counters, not in [worker_profile]. *)
      let backstop_state =
        if Run.warm_enabled () && not (Queue.is_empty queue) then Some (Run.new_state ())
        else None
      in
      while not (Queue.is_empty queue) do
        let g = Queue.pop queue in
        execute_group ?state:backstop_state ~store
          ~cache:(if cache_results then Some (Artifact_store.results store) else None)
          ~on_result:(fun index hit m ->
            match results.(index) with
            | Some _ -> ()
            | None ->
                results.(index) <- Some m;
                incr parent_cells;
                if hit then incr hits;
                decr remaining)
          g
      done);
  let out =
    Array.map
      (function
        | Some m -> m
        | None -> invalid_arg "Fabric.run: unfilled cell (planner/index mismatch)")
      results
  in
  ( out,
    {
      cells = n_cells;
      cache_hits = !hits;
      per_worker;
      reassigned_cells = !reassigned;
      parent_cells = !parent_cells;
      worker_profile = !worker_profile;
    } )
