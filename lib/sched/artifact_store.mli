(** Content-addressed artifact store: workload tapes and run results
    unified under one digest scheme in one directory.

    Every artifact is addressed by a digest of its {e recipe} (for
    results, the full {!Cache_key} rendering of the run config; for
    tapes, the spec digest + seed + thread count) and is {e verified on
    read}: result entries carry the rendering and a payload checksum,
    tape artifacts are the self-checksummed [GCRTAPE1] bytes plus a
    header cross-check against the requested recipe.  A corrupted,
    truncated, or mislabelled artifact therefore reads as a miss — the
    consumer cleanly re-generates or re-executes — never as a wrong
    result.  Writes are atomic (tmp + rename), so concurrent workers and
    even concurrent campaigns can share a store.

    The fabric's worker processes fetch tapes from here instead of
    receiving multi-megabyte images over the wire, and push results
    through the same directory the in-process result cache reads. *)

type t

val create : dir:string -> t
(** Creates [dir] (and parents) if needed; raises [Sys_error] if the path
    exists and is not a directory. *)

val of_env : unit -> t option
(** A store rooted at [GCR_CACHE_DIR], when set and usable. *)

val dir : t -> string

val results : t -> Result_cache.t
(** The result side of the store — the same on-disk layout
    {!Gcr_sched.Result_cache} has always used, so a store and a plain
    result cache rooted at one directory interoperate. *)

val find_result :
  t -> Gcr_runtime.Run.config -> Gcr_runtime.Measurement.t option

val store_result : t -> Gcr_runtime.Run.config -> Gcr_runtime.Measurement.t -> unit

val find_tape : t -> spec:Gcr_workloads.Spec.t -> seed:int -> Gcr_tape.Tape.t option
(** The tape for [(spec, seed)], if a valid artifact exists.  Invalid
    artifacts (bad checksum, header mismatch) are deleted and read as
    [None].

    Tapes this process has already {e proven} — published via
    {!store_tape}, or fetched and checksummed once — are served from a
    small per-process memo without touching the disk again, so a
    publisher's immediate re-fetch costs no read or re-hash.  The memo
    never outlives the process: a cold reader always verifies the bytes
    on disk, and on-disk corruption is still a clean miss for it. *)

val store_tape : t -> Gcr_tape.Tape.t -> unit
(** Atomically publish a tape under its recipe address.  The published
    tape is immediately memoized for this process (see {!find_tape}). *)

val find_tape_bytes :
  t -> spec_digest:string -> seed:int -> threads:int -> string option
(** The verified [GCRTAPE1] serialisation for the recipe, for shipping
    over the fabric's wire protocol: bytes are checksum-validated and
    header-cross-checked before being served, so a storeless worker
    receives exactly what {!find_tape} would have decoded.  Invalid
    artifacts are deleted and read as [None] — the same
    verify-on-read-degrades-to-miss discipline. *)

val store_tape_bytes : t -> string -> (unit, string) result
(** Accept tape bytes published over the wire: validated first
    ([Tape.of_string]), then written atomically under the address the
    {e bytes themselves} prove (their header), never an address the
    sender claims.  [Error] if the bytes fail validation — a corrupt
    publish cannot poison the store. *)

val check_bytes :
  spec_digest:string -> seed:int -> threads:int -> string ->
  Gcr_tape.Tape.t option
(** Validate wire-received tape bytes against the recipe that was asked
    for: checksummed decode plus header cross-check.  [None] means the
    receiver must treat the transfer as a miss and regenerate. *)
