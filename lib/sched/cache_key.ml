module Machine = Gcr_mach.Machine
module Cost_model = Gcr_mach.Cost_model
module Registry = Gcr_gcs.Registry
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run

(* Bump whenever the rendering, Run semantics, or Measurement layout
   change incompatibly: old cache entries then miss instead of lying.
   v5: the heap-sizing controller joined the key (and Measurement grew
   footprint fields). *)
let version = "gcr-run-v5"

(* Floats are rendered in hex ("%h") so distinct bit patterns never
   collapse to one decimal rendering. *)
let f = Printf.sprintf "%h"

let render_latency = function
  | None -> "none"
  | Some { Spec.offered_load; request_packets } ->
      Printf.sprintf "load=%s,req=%d" (f offered_load) request_packets

let render_spec (s : Spec.t) =
  Printf.sprintf
    "spec(name=%s,desc=%s,threads=%d,packets=%d,compute=%d,allocs=%d,szmin=%d,szmean=%d,\
     szmax=%d,refd=%s,surv=%s,ttl=%d,llwords=%d,llchurn=%s,reads=%d,writes=%d,latency=%s)"
    (String.escaped s.Spec.name)
    (String.escaped s.Spec.description)
    s.Spec.mutator_threads s.Spec.packets_per_thread s.Spec.packet_compute_cycles
    s.Spec.allocs_per_packet s.Spec.size_min s.Spec.size_mean s.Spec.size_max
    (f s.Spec.ref_density) (f s.Spec.survival_ratio) s.Spec.nursery_ttl_packets
    s.Spec.long_lived_target_words
    (f s.Spec.long_lived_churn_per_packet)
    s.Spec.reads_per_packet s.Spec.writes_per_packet
    (render_latency s.Spec.latency)

let render_machine (m : Machine.t) =
  Printf.sprintf "machine(cpus=%d,memory=%d)" m.Machine.cpus m.Machine.memory_words

let render_cost (c : Cost_model.t) =
  (* Every field, in declaration order; a missing field here would make
     cost-model experiments silently share cache entries. *)
  Printf.sprintf
    "cost(%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d)"
    c.Cost_model.alloc_fast c.Cost_model.alloc_init_per_word c.Cost_model.tlab_refill
    c.Cost_model.alloc_slow c.Cost_model.barrier_none c.Cost_model.card_mark
    c.Cost_model.satb_idle c.Cost_model.satb_active c.Cost_model.lvb_idle
    c.Cost_model.lvb_slow c.Cost_model.rc_barrier c.Cost_model.rc_update_per_entry
    c.Cost_model.mark_per_object c.Cost_model.mark_per_edge
    c.Cost_model.concurrent_mark_penalty_pct c.Cost_model.copy_per_object
    c.Cost_model.copy_per_object_concurrent c.Cost_model.copy_per_word
    c.Cost_model.compact_per_word c.Cost_model.update_ref_per_edge
    c.Cost_model.sweep_per_region c.Cost_model.safepoint_global
    c.Cost_model.safepoint_per_thread c.Cost_model.gc_task_dispatch
    c.Cost_model.termination_per_worker c.Cost_model.cache_disruption_per_pause

let render (c : Run.config) =
  match (c.Run.make_collector, c.Run.tape) with
  | Some _, _ -> None
  (* Recording is a side effect (the sink must run); a cache hit would
     silently skip it. *)
  | None, Run.Tape_record _ -> None
  | None, (Run.Tape_off | Run.Tape_replay _) ->
      Some
        (String.concat "|"
           [
             version;
             render_spec c.Run.spec;
             "gc=" ^ Registry.name c.Run.gc;
             Printf.sprintf "heap=%d" c.Run.heap_words;
             render_machine c.Run.machine;
             render_cost c.Run.cost;
             Printf.sprintf "seed=%d" c.Run.seed;
             Printf.sprintf "region=%d" c.Run.region_words;
             (match c.Run.max_events with
             | None -> "maxev=default"
             | Some n -> Printf.sprintf "maxev=%d" n);
             (* Replay results are bit-identical to live ones, but the key
                still carries the tape digest: an entry then certifies the
                exact decision stream it was computed from. *)
             (match c.Run.tape with
             | Run.Tape_off -> "tape=off"
             | Run.Tape_replay image ->
                 "tape=replay:" ^ Gcr_workloads.Decision_source.image_digest image
             | Run.Tape_record _ -> assert false);
             Gcr_policy.Controller.render c.Run.controller;
           ])

let of_config c = Option.map (fun s -> Digest.to_hex (Digest.string s)) (render c)
