(** Checksummed frame transport for the campaign fabric.

    One frame = a {!Gcr_tape.Wire} varint body length, a one-byte tag, the
    payload, and an FNV-1a-64 checksum of tag + payload (8 bytes,
    little-endian).  The same framing runs over a pipe pair (forked
    workers) and a TCP socket (remote workers), so the coordinator treats
    both identically.

    Hostile input never escapes the codec: an oversized or malformed
    length prefix, a checksum mismatch, or a truncated stream raises
    {!Corrupt} (or reads as end-of-stream at a frame boundary) {e before}
    any payload reaches [Marshal] — unmarshalling attacker-controlled
    bytes is never safe, checksummed frames are the gate.
    [test/test_transport.ml] fuzzes exactly this boundary. *)

exception Corrupt of string
(** The stream can no longer be trusted: kill the peer, never parse on. *)

val max_frame_bytes : int
(** Upper bound on a frame body (tag + payload).  A length prefix above
    this raises {!Corrupt} before any allocation — a forged 62-bit length
    cannot OOM the reader. *)

(** Pure incremental codec, exposed for the fuzz suite: feed arbitrary
    chunks, extract complete frames.  No file descriptors involved. *)
module Codec : sig
  val encode : Buffer.t -> tag:char -> string -> unit
  (** Append one encoded frame to the buffer. *)

  type decoder

  val decoder : unit -> decoder

  val feed : decoder -> bytes -> int -> unit
  (** Append the first [n] bytes of the chunk to the decode buffer. *)

  val feed_string : decoder -> string -> unit

  val next : decoder -> (char * string) option
  (** Extract the next complete frame, or [None] if more input is needed.
      Raises {!Corrupt} on an oversized/overflowing length prefix or a
      checksum mismatch; after that the decoder must be discarded. *)

  val buffered : decoder -> int
  (** Bytes fed but not yet consumed — [> 0] at end-of-stream means the
      peer disconnected mid-frame. *)
end

type t
(** One bidirectional endpoint: a pipe pair or a connected socket. *)

val of_fds : recv:Unix.file_descr -> send:Unix.file_descr -> t
(** A pipe-pair endpoint (forked worker ↔ coordinator). *)

val of_socket : Unix.file_descr -> t
(** A connected-socket endpoint (both directions on one fd). *)

val recv_fd : t -> Unix.file_descr
(** The descriptor to [select] on for inbound frames. *)

val send_fd : t -> Unix.file_descr
(** The outbound descriptor (equal to {!recv_fd} for sockets).  The
    coordinator needs both when closing a forked worker's pipe ends in
    later children. *)

val send : ?scratch:Buffer.t -> t -> tag:char -> string -> unit
(** Write one frame.  [scratch], when given, is a caller-owned assembly
    buffer reused across frames.  Raises [Unix.Unix_error] (e.g. [EPIPE])
    if the peer is gone — callers treat that as peer death. *)

val send_raw : t -> string -> unit
(** Write bytes {e below} the framing — fault injection for the
    differential suite (a worker garbling its stream on purpose).  Never
    used on a healthy path. *)

val recv : t -> (char * string) option
(** Blocking read of the next frame.  [None] on a clean EOF at a frame
    boundary; {!Corrupt} on a mid-frame EOF or a damaged stream. *)

val read_step : t -> [ `Ready | `Eof ]
(** One [read(2)] into the decode buffer — the coordinator calls this
    after [select] reports the endpoint readable, then drains
    {!next_frame}.  [`Eof] when the peer closed.  Raises {!Corrupt} (via
    the decoder) or [Unix.Unix_error] on a broken descriptor. *)

val next_frame : t -> (char * string) option
(** Non-blocking: the next already-buffered frame, if complete. *)

val mid_frame : t -> bool
(** True when buffered bytes form an incomplete frame — an [`Eof] in that
    state means the peer died mid-send. *)

val close : t -> unit
(** Close the underlying descriptor(s); idempotent. *)
