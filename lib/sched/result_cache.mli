(** On-disk cache of run results, one file per configuration.

    Entries live under a directory (one campaign sweep can share it with
    the min-heap TSV cache): [<dir>/<digest>.run] holds the cache-key
    rendering plus the marshalled {!Gcr_runtime.Measurement.t}.  Lookups
    verify a format magic {e and} the full rendering (not just the digest),
    so corrupted, truncated, or colliding entries are discarded — a bad
    cache file can cost a re-run, never a wrong measurement.

    Writes go through a temp file and an atomic [Sys.rename], so
    concurrent writers (domains of one campaign, or several processes
    sharing a cache directory) cannot expose half-written entries. *)

type t

val create : dir:string -> t
(** Creates [dir] (and missing parents) if needed.  Raises [Sys_error]
    if the directory cannot be created. *)

val of_env : unit -> t option
(** [Some (create ~dir:$GCR_CACHE_DIR)] when the variable is set and the
    directory is usable, else [None].  Result caching is opt-in: unlike
    the min-heap TSV cache there is no implicit default directory. *)

val dir : t -> string

val find : t -> Gcr_runtime.Run.config -> Gcr_runtime.Measurement.t option
(** [None] for uncacheable configs (custom collector), missing entries,
    and entries that fail validation (which are deleted). *)

val store : t -> Gcr_runtime.Run.config -> Gcr_runtime.Measurement.t -> unit
(** No-op for uncacheable configs.  IO errors are swallowed: a read-only
    cache degrades to a miss, never a crash. *)
