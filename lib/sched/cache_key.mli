(** Content hashing of run configurations for the result cache.

    A key must change whenever anything that can change the measurement
    changes: every spec field, the collector, the heap size, every machine
    and cost-model field, the seed, the region size, and the event budget.
    Workload scale needs no separate field — scaling rewrites
    [packets_per_thread] and the machine memory, both of which are keyed.

    Configs carrying a custom [make_collector] closure have no canonical
    content and are never keyed (they bypass the cache entirely). *)

val version : string
(** The key-format version folded into every rendering.  The fabric's
    socket handshake carries it: a worker whose build renders keys
    differently must not share a result store with the coordinator. *)

val render : Gcr_runtime.Run.config -> string option
(** The canonical single-line rendering that is hashed.  Exposed so tests
    (and cache-entry validation) can compare the full content, not just
    the digest.  [None] iff the config has a [make_collector] override. *)

val of_config : Gcr_runtime.Run.config -> string option
(** Hex digest of {!render}; stable across processes and OCaml versions
    (the rendering uses no [Hashtbl.hash]).  [None] iff {!render} is. *)
