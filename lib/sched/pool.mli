(** Fixed-size domain pool for campaign execution.

    A campaign is a FIFO queue of independent run configurations; the
    pool drains it with [jobs] worker domains and reassembles results in
    submission order, so campaign output is a pure function of the
    submitted configs — independent of scheduling, core count, and cache
    state.  [Run.execute] is deterministic and shares no mutable state
    across runs (each builds its own heap, engine, collector, and PRNG),
    which is what makes the parallel campaign bit-identical to the serial
    one; [test/test_sched.ml] enforces exactly that.

    Crash isolation: an exception escaping one run (a buggy workload, a
    collector invariant failure) becomes a [Failed] measurement for that
    invocation only; the rest of the campaign is unaffected. *)

val default_jobs : unit -> int
(** [GCR_JOBS] when set to a positive integer, else 1 (serial). *)

val on_execute : (Gcr_runtime.Run.config -> unit) ref
(** Test hook, called immediately before every {e fresh} [Run.execute]
    (cache hits do not fire it).  Runs on worker domains: install an
    atomic counter, not arbitrary shared-state mutation.  Default: no-op. *)

val execute :
  ?cache:Result_cache.t -> ?state:Gcr_runtime.Run.state ->
  Gcr_runtime.Run.config -> Gcr_runtime.Measurement.t
(** One crash-isolated, cache-aware invocation: cache hit → stored
    measurement; miss → [Run.execute] (exceptions become [Failed]) and
    the result is stored for next time.  [state], when given, recycles
    that pool's engine/heap on the miss path (the warm execution path;
    results are bit-identical either way).  With [GCR_WARM_CHECK] set,
    every warm execution is re-run on fresh state and any divergence
    raises — the in-line reuse≡fresh oracle. *)

val execute_cached :
  ?cache:Result_cache.t ->
  ?state:Gcr_runtime.Run.state ->
  Gcr_runtime.Run.config ->
  Gcr_runtime.Measurement.t * bool
(** [execute] plus whether the measurement was replayed from the cache —
    the figure the campaign summary's hit/miss accounting is built on. *)

val map :
  ?jobs:int ->
  ?cache:Result_cache.t ->
  ?hits:int Atomic.t ->
  Gcr_runtime.Run.config list ->
  Gcr_runtime.Measurement.t list
(** [map ~jobs configs] executes every config and returns measurements in
    submission order.  [jobs <= 1] (the default) runs inline on the
    calling domain — the serial baseline the differential tests compare
    against; higher values spawn [min jobs (length configs)] domains.
    [hits], when given, is incremented once per cache hit (worker domains
    increment it atomically).  Unless [GCR_WARM=0], each draining domain
    pools run state across its cells ({!Gcr_runtime.Run.state});
    results are bit-identical warm or cold. *)
