module Machine = Gcr_mach.Machine
module Registry = Gcr_gcs.Registry
module Gc_types = Gcr_gcs.Gc_types
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement

let default_jobs () =
  match Option.bind (Sys.getenv_opt "GCR_JOBS") int_of_string_opt with
  | Some n when n > 0 -> n
  | Some _ | None -> 1

let on_execute : (Run.config -> unit) ref = ref (fun _ -> ())

(* The measurement recorded for an invocation whose run raised: same
   labelling a completed run would have carried, all counters zero.  The
   engine's own aborts (OOM, event budget) never get here — Run.execute
   already returns those as Failed measurements with real counters. *)
let failed_of_exn (config : Run.config) exn =
  {
    Measurement.benchmark = config.Run.spec.Spec.name;
    gc = Registry.name config.Run.gc;
    heap_words =
      (match config.Run.gc with
      | Registry.Epsilon -> config.Run.machine.Machine.memory_words
      | _ -> config.Run.heap_words);
    seed = config.Run.seed;
    outcome = Measurement.Failed ("uncaught exception: " ^ Printexc.to_string exn);
    wall_total = 0;
    wall_stw = 0;
    cycles_mutator = 0;
    cycles_gc = 0;
    cycles_gc_stw = 0;
    pauses = [];
    pause_hist = Gcr_util.Histogram.create ();
    latency_metered = None;
    latency_simple = None;
    allocated_words = 0;
    allocated_objects = 0;
    gc_stats = Gc_types.no_stats;
    limit_changes = 0;
    heap_limit_peak_words = 0;
    footprint_word_cycles = 0.0;
  }

(* GCR_WARM_CHECK=1: run every warm cell a second time on fresh state and
   fail loudly on any divergence — the in-line reuse≡fresh oracle for
   bisecting a warm-state leak in the field.  Orders of magnitude slower;
   debug only. *)
let warm_check_enabled () =
  match Sys.getenv_opt "GCR_WARM_CHECK" with
  | Some ("0" | "false" | "off") | None -> false
  | Some _ -> true

let execute_fresh ?state config =
  !on_execute config;
  let run ?state () = try Run.execute ?state config with exn -> failed_of_exn config exn in
  match state with
  | Some _ when warm_check_enabled () ->
      let warm = run ?state () in
      let fresh = run () in
      if warm <> fresh then
        failwith
          (Printf.sprintf
             "GCR_WARM_CHECK: warm-state run diverged from fresh for %s/%s heap=%d seed=%d"
             config.Run.spec.Spec.name (Registry.name config.Run.gc)
             config.Run.heap_words config.Run.seed);
      warm
  | _ -> run ?state ()

let execute_cached ?cache ?state config =
  match Option.bind cache (fun c -> Result_cache.find c config) with
  | Some measurement -> (measurement, true)
  | None ->
      let measurement = execute_fresh ?state config in
      Option.iter (fun c -> Result_cache.store c config measurement) cache;
      (measurement, false)

let execute ?cache ?state config = fst (execute_cached ?cache ?state config)

let map ?(jobs = 1) ?cache ?hits configs =
  let queue = Array.of_list configs in
  let n = Array.length queue in
  let results = Array.make n None in
  let workers = min jobs n in
  (* One run-state pool per draining domain: consecutive cells recycle
     the engine and heap instead of reallocating them.  A state is only
     ever touched by its owning domain. *)
  let make_state () = if Run.warm_enabled () then Some (Run.new_state ()) else None in
  let execute_slot state config =
    let m, hit = execute_cached ?cache ?state config in
    if hit then Option.iter Atomic.incr hits;
    Some m
  in
  if workers <= 1 then begin
    let state = make_state () in
    Array.iteri (fun i config -> results.(i) <- execute_slot state config) queue
  end
  else begin
    (* FIFO via an atomic cursor; each slot of [results] is written by
       exactly one domain, and the joins below publish every write. *)
    let next = Atomic.make 0 in
    let worker () =
      let state = make_state () in
      let rec drain () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- execute_slot state queue.(i);
          drain ()
        end
      in
      drain ()
    in
    let domains = List.init workers (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains
  end;
  Array.to_list
    (Array.map
       (function Some m -> m | None -> invalid_arg "Pool.map: unfilled slot")
       results)
