module Spec = Gcr_workloads.Spec
module Tape = Gcr_tape.Tape

type t = { dir : string; results : Result_cache.t }

let create ~dir =
  let results = Result_cache.create ~dir in
  { dir = Result_cache.dir results; results }

let of_env () =
  match Result_cache.of_env () with
  | None -> None
  | Some results -> Some { dir = Result_cache.dir results; results }

let dir t = t.dir

let results t = t.results

(* --- Results: the existing digest scheme, delegated. --- *)

let find_result t config = Result_cache.find t.results config

let store_result t config measurement = Result_cache.store t.results config measurement

(* --- Tapes. ---

   Addressed by a digest of the *recipe* (the tape version string, the
   spec digest, the seed, the thread count) — exactly how result entries
   are addressed by a digest of the run config rendering — so a consumer
   can look a tape up before anyone has generated it.  The content is the
   GCRTAPE1 serialisation, which carries its own checksum: a corrupted or
   truncated artifact fails [Tape.of_string] (or the header cross-check
   below) and reads as a miss, never as a wrong decision stream. *)

let tape_version = "gcr-tape-v1"

let tape_rendering ~spec_digest ~seed ~threads =
  Printf.sprintf "%s|spec=%s|seed=%d|threads=%d" tape_version spec_digest seed threads

let tape_path t ~spec_digest ~seed ~threads =
  let digest =
    Digest.to_hex (Digest.string (tape_rendering ~spec_digest ~seed ~threads))
  in
  Filename.concat t.dir (digest ^ ".tape")

let discard path = if Sys.file_exists path then (try Sys.remove path with Sys_error _ -> ())

let find_tape t ~(spec : Spec.t) ~seed =
  let spec_digest = Spec.digest spec in
  let threads = spec.Spec.mutator_threads in
  let path = tape_path t ~spec_digest ~seed ~threads in
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ -> None
  | exception End_of_file ->
      discard path;
      None
  | data -> (
      match Tape.of_string data with
      | Error _ ->
          (* checksum or structure failure: drop the artifact so the next
             writer heals it *)
          discard path;
          None
      | Ok tape ->
          (* the checksum proves integrity; the header cross-check proves
             the artifact is the tape this address promises (a renamed or
             hash-colliding file is equally untrusted) *)
          if
            String.equal tape.Tape.spec_digest spec_digest
            && tape.Tape.seed = seed
            && Array.length tape.Tape.streams = threads
          then Some tape
          else begin
            discard path;
            None
          end)

let stamp = Atomic.make 0

let store_tape t (tape : Tape.t) =
  let path =
    tape_path t ~spec_digest:tape.Tape.spec_digest ~seed:tape.Tape.seed
      ~threads:(Array.length tape.Tape.streams)
  in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d.%d" path (Unix.getpid ())
      (Domain.self () :> int)
      (Atomic.fetch_and_add stamp 1)
  in
  try
    let oc = open_out_bin tmp in
    output_string oc (Tape.to_string tape);
    close_out oc;
    Sys.rename tmp path
  with Sys_error _ -> ( try Sys.remove tmp with Sys_error _ -> ())
