module Spec = Gcr_workloads.Spec
module Tape = Gcr_tape.Tape

type t = { dir : string; results : Result_cache.t }

let create ~dir =
  let results = Result_cache.create ~dir in
  { dir = Result_cache.dir results; results }

let of_env () =
  match Result_cache.of_env () with
  | None -> None
  | Some results -> Some { dir = Result_cache.dir results; results }

let dir t = t.dir

let results t = t.results

(* --- Results: the existing digest scheme, delegated. --- *)

let find_result t config = Result_cache.find t.results config

let store_result t config measurement = Result_cache.store t.results config measurement

(* --- Tapes. ---

   Addressed by a digest of the *recipe* (the tape version string, the
   spec digest, the seed, the thread count) — exactly how result entries
   are addressed by a digest of the run config rendering — so a consumer
   can look a tape up before anyone has generated it.  The content is the
   GCRTAPE1 serialisation, which carries its own checksum: a corrupted or
   truncated artifact fails [Tape.of_string] (or the header cross-check
   below) and reads as a miss, never as a wrong decision stream. *)

let tape_version = "gcr-tape-v1"

let tape_rendering ~spec_digest ~seed ~threads =
  Printf.sprintf "%s|spec=%s|seed=%d|threads=%d" tape_version spec_digest seed threads

let tape_path t ~spec_digest ~seed ~threads =
  let digest =
    Digest.to_hex (Digest.string (tape_rendering ~spec_digest ~seed ~threads))
  in
  Filename.concat t.dir (digest ^ ".tape")

let discard path = if Sys.file_exists path then (try Sys.remove path with Sys_error _ -> ())

(* Per-process memo of {e verified} tapes, keyed by artifact path: a
   worker that just published a tape (or fetched and checksummed it once)
   serves the next sibling group from memory instead of re-reading and
   re-hashing the file.  Bounded LRU, newest first.  Trust is strictly
   per process — a cold reader still verifies the bytes on disk, so
   corruption still degrades to a clean miss for everyone who has not
   proven the artifact themselves. *)
let memo_capacity = 8

let memo_lock = Mutex.create ()

let memo : (string * Tape.t) list ref = ref []

let memo_find path =
  Mutex.protect memo_lock (fun () ->
      match List.assoc_opt path !memo with
      | None -> None
      | Some tape ->
          memo := (path, tape) :: List.remove_assoc path !memo;
          Some tape)

let memo_add path tape =
  Mutex.protect memo_lock (fun () ->
      let rest = List.remove_assoc path !memo in
      let rest = List.filteri (fun i _ -> i < memo_capacity - 1) rest in
      memo := (path, tape) :: rest)

let memo_drop path =
  Mutex.protect memo_lock (fun () -> memo := List.remove_assoc path !memo)

let find_tape t ~(spec : Spec.t) ~seed =
  let spec_digest = Spec.digest spec in
  let threads = spec.Spec.mutator_threads in
  let path = tape_path t ~spec_digest ~seed ~threads in
  match memo_find path with
  | Some tape -> Some tape
  | None ->
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ -> None
  | exception End_of_file ->
      discard path;
      None
  | data -> (
      match Tape.of_string data with
      | Error _ ->
          (* checksum or structure failure: drop the artifact so the next
             writer heals it *)
          discard path;
          None
      | Ok tape ->
          (* the checksum proves integrity; the header cross-check proves
             the artifact is the tape this address promises (a renamed or
             hash-colliding file is equally untrusted) *)
          if
            String.equal tape.Tape.spec_digest spec_digest
            && tape.Tape.seed = seed
            && Array.length tape.Tape.streams = threads
          then begin
            memo_add path tape;
            Some tape
          end
          else begin
            discard path;
            memo_drop path;
            None
          end)

(* Raw-bytes access for the fabric's wire tape fetch/publish: the
   coordinator serves verified GCRTAPE1 bytes to storeless workers and
   accepts published bytes back, applying exactly the
   digest-verify-on-read discipline of [find_tape]/[store_tape] — bytes
   that fail the checksum or the header cross-check degrade to a miss
   (or a rejected publish), never to a wrong stream on either end. *)

let check_bytes ~spec_digest ~seed ~threads data =
  match Tape.of_string data with
  | Error _ -> None
  | Ok tape ->
      if
        String.equal tape.Tape.spec_digest spec_digest
        && tape.Tape.seed = seed
        && Array.length tape.Tape.streams = threads
      then Some tape
      else None

let find_tape_bytes t ~spec_digest ~seed ~threads =
  let path = tape_path t ~spec_digest ~seed ~threads in
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ -> None
  | exception End_of_file ->
      discard path;
      None
  | data -> (
      match check_bytes ~spec_digest ~seed ~threads data with
      | Some _ -> Some data
      | None ->
          discard path;
          memo_drop path;
          None)

let stamp = Atomic.make 0

let write_tape_file t ~spec_digest ~seed ~threads data tape =
  let path = tape_path t ~spec_digest ~seed ~threads in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d.%d" path (Unix.getpid ())
      (Domain.self () :> int)
      (Atomic.fetch_and_add stamp 1)
  in
  try
    let oc = open_out_bin tmp in
    output_string oc data;
    close_out oc;
    Sys.rename tmp path;
    memo_add path tape
  with Sys_error _ -> ( try Sys.remove tmp with Sys_error _ -> ())

let store_tape_bytes t data =
  match Tape.of_string data with
  | Error e -> Error e
  | Ok tape ->
      let spec_digest = tape.Tape.spec_digest in
      let seed = tape.Tape.seed in
      let threads = Array.length tape.Tape.streams in
      write_tape_file t ~spec_digest ~seed ~threads data tape;
      Ok ()

let store_tape t (tape : Tape.t) =
  let path =
    tape_path t ~spec_digest:tape.Tape.spec_digest ~seed:tape.Tape.seed
      ~threads:(Array.length tape.Tape.streams)
  in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d.%d" path (Unix.getpid ())
      (Domain.self () :> int)
      (Atomic.fetch_and_add stamp 1)
  in
  try
    let oc = open_out_bin tmp in
    output_string oc (Tape.to_string tape);
    close_out oc;
    Sys.rename tmp path;
    (* the publisher generated these bytes itself — they are proven for
       this process without a read-back *)
    memo_add path tape
  with Sys_error _ -> ( try Sys.remove tmp with Sys_error _ -> ())
