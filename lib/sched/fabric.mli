(** Multi-process campaign fabric: one coordinator deals sibling groups
    to worker processes over checksummed frames (see {!Transport}) and
    reduces their result batches by plan index, so the report is
    bit-identical to a serial run at every worker and host count.

    Two transports, one protocol:

    - {e pipe}: the coordinator forks [workers] children sharing its
      artifact store — the classic single-host fabric.
    - {e socket}: with [listen], the coordinator accepts TCP workers
      started elsewhere via [gcr worker --connect] ({!worker_connect}).
      The handshake pins the protocol version, the {!Cache_key.version},
      and the plan digest.  A worker without a shared store fetches tapes
      over the wire (digest-verified on receipt, exactly like a store
      read) and publishes tapes it had to generate.

    Workers run {e warm} unless [GCR_WARM=0]: each recycles one
    {!Gcr_runtime.Run.state} (engine + heap) across every cell it
    executes, and memoizes the decoded replay image per (spec, seed) so
    sibling groups placed back to back decode their tape once.

    Scheduling is size-aware by default: the coordinator deals the
    costliest groups first (LPT) with a per-worker queue depth of 2, and
    when workers go idle it revokes the {e prefetched} tail of a
    straggler's queue and re-deals it (work-stealing at group
    granularity).  Reduction is by plan index and first-write-wins, so
    neither stealing nor worker death can change a byte of the report —
    only who computes it.

    Fault model: a worker is dead on EOF, on a corrupt frame, on a failed
    send, or after [GCR_FABRIC_TIMEOUT_S] (default 600 s) of silence
    while holding work.  Its unfinished cells are requeued for the
    survivors; with no workers left, the coordinator executes the
    remainder inline.  The report is unchanged either way. *)

type group = {
  spec : Gcr_workloads.Spec.t;
  seed : int;
  tapes : bool;  (** attach the group's replay tape to every cell *)
  cost : float;
      (** the planner's cost estimate (cells × heap factor × invocation
          weight) — the size-aware scheduler's sort key; any
          non-negative number, only relative order matters *)
  cells : (int * Gcr_runtime.Run.config) list;
      (** (result slot, config); configs must carry [Tape_off] — the
          worker attaches the group tape itself — and no
          [make_collector] closure (closures cannot cross processes) *)
}
(** One sibling batch: every cell shares (spec, seed), hence one tape. *)

type sched =
  | Size_aware  (** deal largest-first, steal from stragglers (default) *)
  | Round_robin  (** FIFO in plan order — kept for scheduler A/B runs *)

type stats = {
  cells : int;  (** total result slots *)
  cache_hits : int;  (** cells replayed from the result store *)
  per_worker : int array;  (** cells completed by each worker, this wave *)
  reassigned_cells : int;  (** cells requeued after a worker death *)
  parent_cells : int;  (** cells the coordinator executed as a backstop *)
  stolen_groups : int;  (** groups revoked and re-dealt, this wave *)
  wire_tapes : int;  (** tapes served to storeless workers, this wave *)
  worker_profile : Gcr_runtime.Profile.snapshot;
      (** summed setup/tape/simulate self-time the worker processes
          reported in their result batches.  The coordinator's own
          execution (the backstop) accrues to this process's
          {!Gcr_runtime.Profile} counters instead. *)
}

type worker_row = {
  row_id : int;
  row_host : string;  (** ["local"] for forked workers, else "host/pid" *)
  row_transport : string;  (** ["pipe"] or ["socket"] *)
  row_cells : int;  (** session-cumulative, probe waves included *)
  row_wire_tapes : int;
  row_alive : bool;
}

val sched_of_env : unit -> sched
(** [GCR_FABRIC_SCHED]: ["fifo"], ["roundrobin"], or ["rr"] select
    {!Round_robin}; anything else (or unset) is {!Size_aware}. *)

(** {2 Sessions}

    A session owns the worker fleet; {!dispatch} runs one wave of groups
    through it.  The harness dispatches minheap probe waves and then the
    campaign grid through a single session, so probe runs ride the same
    transport, result cache, and warm worker state as the grid. *)

type session

val start :
  workers:int ->
  store:Artifact_store.t ->
  cache_results:bool ->
  ?log:(string -> unit) ->
  ?obs:Gcr_obs.Obs.t ->
  ?sched:sched ->
  ?listen:string * int ->
  ?connect_timeout:float ->
  ?on_listen:(int -> unit) ->
  ?plan_digest:string ->
  unit ->
  session
(** Spawn (pipe) or accept (socket) the fleet.  With [listen:(host,
    port)] no processes are forked: the coordinator binds, announces the
    actual port via [on_listen] (after [listen(2)], before waiting —
    port [0] requests an ephemeral port), and accepts handshakes until
    [workers] have joined or [connect_timeout] seconds (default 30)
    pass.  A mismatched worker is answered with our versions and then
    dropped, so it can report the precise incompatibility before exiting.
    A short fleet — even an empty one — is not an error: the backstop
    guarantees completion.  [obs] receives worker lifecycle events
    (spawn, death, steal).  Raises [Invalid_argument] on [workers < 1]. *)

val dispatch :
  session ->
  n_cells:int ->
  group list ->
  Gcr_runtime.Measurement.t array * stats
(** Execute one wave.  Returns measurements indexed by plan index (every
    index in \[0, n_cells) must be covered by exactly one cell) plus the
    wave's stats.  Raises [Invalid_argument] on malformed groups
    (out-of-range or duplicate indices, collector closures, non-[Tape_off]
    cell configs) and on a session already shut down. *)

val shutdown : session -> unit
(** Send quit, close endpoints, reap forked children, restore the
    SIGPIPE disposition.  Idempotent. *)

val worker_rows : session -> worker_row list
(** Per-worker session-cumulative accounting for the campaign summary. *)

val worker_deaths : session -> int
(** Workers declared dead over the session's lifetime. *)

val stolen_groups : session -> int
(** Session-cumulative; {!stats}[.stolen_groups] is per wave. *)

val run :
  workers:int ->
  store:Artifact_store.t ->
  cache_results:bool ->
  ?log:(string -> unit) ->
  ?obs:Gcr_obs.Obs.t ->
  ?sched:sched ->
  ?listen:string * int ->
  ?connect_timeout:float ->
  ?on_listen:(int -> unit) ->
  ?plan_digest:string ->
  n_cells:int ->
  group list ->
  Gcr_runtime.Measurement.t array * stats
(** {!start} + one {!dispatch} + {!shutdown}. *)

(** {2 Worker side} *)

val worker_connect :
  host:string ->
  port:int ->
  ?store:Artifact_store.t ->
  ?retry_for:float ->
  unit ->
  (int, string) result
(** The [gcr worker --connect] entry point: connect (retrying refused
    connections for [retry_for] seconds, default 30 — workers are often
    started before the coordinator), handshake, then serve groups until
    quit or EOF.  With [store], tapes and result caching go through it;
    without, tapes arrive over the wire.  [Ok code] is the process exit
    code (0 = clean, 3 = corrupt stream or protocol trouble); [Error]
    describes a connect or handshake failure (callers print it and
    exit 3). *)
