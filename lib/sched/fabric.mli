(** Multi-process campaign fabric.

    [run] forks [workers] worker processes connected to the parent by a
    pipe pair each.  Workers claim {e sibling groups} — the cells of one
    (benchmark spec, seed) pair, which share a workload tape — execute
    them with the same cache-aware path the in-process pool uses, and
    stream results back in {e batched} length-prefixed binary frames
    (the tape codec's varint length, a tag byte, a [Marshal] body
    holding up to 32 results plus the worker's profile self-time since
    the previous batch).  The parent reduces results into
    submission-order slots, so the campaign report is bit-identical to
    the serial and domain-pool executions at any worker count —
    [test/test_fabric.ml] enforces exactly that.

    Workers run {e warm} unless [GCR_WARM=0]: each recycles one
    {!Gcr_runtime.Run.state} (engine + heap) across every cell it
    executes, and memoizes the decoded replay image per (spec, seed) so
    sibling groups placed back to back decode their tape once.  Warm and
    cold executions are bit-identical ([test/test_warm.ml]).

    Forked processes sidestep the cross-domain stop-the-world minor
    collections that throttle the domain pool: each worker owns a whole
    OCaml runtime, so campaign throughput scales with cores.

    Crash handling: a worker that disappears (EOF or write error on its
    pipes) has its unfinished cells requeued for the surviving workers;
    if every worker is gone the parent finishes the queue inline.  The
    report is unchanged either way.

    Tapes travel through the content-addressed {!Artifact_store}, not
    over the wire: the first consumer of a (spec, seed) group generates
    and publishes the tape, later consumers (including other campaigns)
    fetch it by recipe digest. *)

type group = {
  spec : Gcr_workloads.Spec.t;
  seed : int;
  tapes : bool;  (** attach the group's replay tape to every cell *)
  cells : (int * Gcr_runtime.Run.config) list;
      (** (result slot, config); configs must carry [Tape_off] — the
          worker attaches the group tape itself — and no
          [make_collector] closure (closures cannot cross processes) *)
}
(** One sibling batch: every cell shares (spec, seed), hence one tape. *)

type stats = {
  cells : int;  (** total result slots *)
  cache_hits : int;  (** cells replayed from the result store *)
  per_worker : int array;  (** cells completed by each worker process *)
  reassigned_cells : int;  (** cells requeued after a worker crash *)
  parent_cells : int;  (** cells the parent executed as a backstop *)
  worker_profile : Gcr_runtime.Profile.snapshot;
      (** summed setup/tape/simulate self-time the worker processes
          reported in their result batches.  The parent's own execution
          (the crash backstop) accrues to this process's
          {!Gcr_runtime.Profile} counters instead. *)
}

val run :
  workers:int ->
  store:Artifact_store.t ->
  cache_results:bool ->
  ?log:(string -> unit) ->
  n_cells:int ->
  group list ->
  Gcr_runtime.Measurement.t array * stats
(** [run ~workers ~store ~cache_results ~n_cells groups] executes every
    cell and returns the measurements indexed by cell slot, plus
    execution statistics.  [n_cells] is the result array length; every
    slot in \[0, n_cells) must be covered by exactly one cell.
    [cache_results] controls whether run results are read from / written
    to [store] (tapes always go through it).  [log] receives progress
    lines (assignments, crash reassignments).

    Raises [Invalid_argument] on [workers < 1], on cell configs carrying
    tapes or collector closures, and on slot/index mismatches. *)
