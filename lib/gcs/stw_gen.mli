(** The generational stop-the-world collector behind Serial and Parallel.

    Young collections are copying scavenges: live young objects (found by a
    bounded trace over eden+survivor from the workload roots plus the
    remembered set) are copied to survivor regions, or promoted to old
    space once they have survived [tenure_age] collections.  When the free
    pool runs low after a young collection — or a scavenge suffers
    promotion failure — the shared full mark-compact runs.

    Serial runs the same algorithm with one GC worker; Parallel with many
    (paying dispatch and termination-barrier overheads — the
    time-vs-cycles tradeoff of the paper's Section IV-C b). *)

type config = {
  name : string;
  stw_workers : int;
  tenure_age : int;  (** promotions happen at this copy count (default 2) *)
}

val serial_config : cpus:int -> config

val parallel_config : cpus:int -> config
(** HotSpot's default ergonomics: ParallelGCThreads
    = 8 + 5/8 × (cpus − 8) for cpus > 8. *)

val make : Gc_types.ctx -> config -> Gc_types.t
