module Heap = Gcr_heap.Heap
module Region = Gcr_heap.Region
module Obj_model = Gcr_heap.Obj_model
module Allocator = Gcr_heap.Allocator
module Vec = Gcr_util.Vec
module Cost_model = Gcr_mach.Cost_model

type result = {
  objects_marked : int;
  words_live : int;
  edges : int;
}

(* Budget of objects handled per worker slice; small enough that pause
   attribution and parallelism stay fine-grained. *)
let slice_budget = 64

let run (ctx : Gc_types.ctx) ~pool ~on_done =
  let heap = ctx.Gc_types.heap in
  Vec.iter Allocator.retire ctx.Gc_types.allocators;
  ignore (Heap.begin_mark_epoch heap);
  Heap.iter_regions (fun r -> r.Region.live_words <- 0) heap;
  let tracer =
    Tracer.create ctx ~use_scratch:false ~update_region_live:true
      ~should_visit:(fun _ -> true)
      ~on_mark:(fun _ -> 0)
  in
  !(ctx.Gc_types.iter_roots) (Tracer.add_root tracer);
  (* Compaction state, filled in between the two phases. *)
  let survivors = Vec.create () in
  let cursor = ref 0 in
  let target = Allocator.create heap ~space:Region.Old in
  let prepare_compaction () =
    Heap.iter_regions
      (fun r ->
        if not (Region.space_equal r.Region.space Region.Free) then begin
          Heap.purge_unmarked heap r;
          Heap.iter_resident_objects heap r (fun id -> Vec.push survivors id)
        end)
      heap;
    Heap.iter_regions
      (fun r ->
        if not (Region.space_equal r.Region.space Region.Free) then
          Heap.release_region_keep_objects heap r)
      heap
  in
  let place id =
    let rec attempt retried =
      match Allocator.current_region target with
      | Some dst when Heap.place_object heap id dst -> ()
      | Some _ | None ->
          if retried then ctx.Gc_types.oom "full compaction could not place a survivor"
          else begin
            (match Allocator.refill target with
            | None -> ctx.Gc_types.oom "full compaction found no free region"
            | Some _ -> ());
            attempt true
          end
    in
    attempt false
  in
  let compact_slice ~worker:_ =
    let cost = ref 0 in
    let n = Vec.length survivors in
    let stop = min n (!cursor + slice_budget) in
    while !cursor < stop do
      let id = Vec.get survivors !cursor in
      incr cursor;
      place id;
      cost :=
        !cost
        + (ctx.Gc_types.cost.Cost_model.compact_per_word * Heap.obj_size heap id)
        + (ctx.Gc_types.cost.Cost_model.update_ref_per_edge * Heap.obj_nfields heap id)
    done;
    !cost
  in
  let mark_slice ~worker:_ = Tracer.drain tracer ~budget:slice_budget in
  Worker_pool.run_phase pool ~phase:Gcr_obs.Event.Mark ~work:mark_slice ~on_done:(fun () ->
      prepare_compaction ();
      Worker_pool.run_phase pool ~phase:Gcr_obs.Event.Compact ~work:compact_slice
        ~on_done:(fun () ->
          Allocator.retire target;
          on_done
            {
              objects_marked = Tracer.objects_marked tracer;
              words_live = Tracer.words_marked tracer;
              edges = Tracer.edges_seen tracer;
            }))
