(** LXR-style reference counting with regional copying (Zhao, Blackburn &
    McKinley, PLDI'22) — the frontier-widening collector beyond the
    paper's tracing designs.

    Mutators log every reference-field mutation into deferred
    increment/decrement buffers (the coalescing field-logging barrier,
    charged at [rc_barrier] per write).  Periodic short STW pauses pin the
    roots, apply the buffered increments, drain the decrement queue —
    freeing in place and cascading, including born-dead objects that never
    became reachable — then opportunistically evacuate fragmented regions
    and release fully dead ones.  Cyclic garbage, which pure RC can never
    reclaim, falls to a backup concurrent tracing cycle whose SATB-style
    final drain and sweep run inside a later pause.  When a starved pause
    cannot free a usable region the collector degrades to the shared full
    mark-compact and rebuilds all RC state from the surviving graph.

    Invariant at the end of every pause (checked by test/test_lxr.ml): the
    reference count of each live object equals its in-edges from live
    objects plus its occurrences in the current pause's root pins, and the
    deferred decrement queue is empty. *)

type pause_info = {
  pending_decrements : int;  (** entries left in the deferred queue — 0 *)
  pinned : Gcr_heap.Obj_model.id list;
      (** roots pinned by this pause, in scan order (duplicates possible:
          a root reached twice holds two pins) *)
  rc_of : Gcr_heap.Obj_model.id -> int;
}

type config = {
  rc_workers : int;  (** workers for the STW RC-update phases *)
  trace_workers : int;  (** workers for the backup concurrent trace *)
  trigger_free_fraction : float;
      (** start a backup tracing cycle when the free fraction drops below
          this *)
  garbage_threshold : float;
      (** evacuate regions whose garbage exceeds this share of their used
          words *)
  debug : (pause_info -> unit) option;
      (** fired at the end of every pause, before mutators resume — the
          RC-invariant test hook *)
}

val default_config : cpus:int -> config

val make : Gc_types.ctx -> config -> Gc_types.t
