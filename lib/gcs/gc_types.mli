(** The collector interface.

    A collector is a record of closures consulted by the mutator on its hot
    paths (allocation, field reads and writes) plus the machinery that runs
    collection work on GC threads.  The record-of-closures shape keeps the
    mutator code identical across all six collectors — exactly the property
    that makes the LBO methodology applicable: the runtime never needs to
    know which collector it is running. *)

type ctx = {
  heap : Gcr_heap.Heap.t;
  engine : Gcr_engine.Engine.t;
  cost : Gcr_mach.Cost_model.t;
  machine : Gcr_mach.Machine.t;
  iter_roots : ((Gcr_heap.Obj_model.id -> unit) -> unit) ref;
      (** set by the runtime once the workload exists; collectors call it
          at the start of every marking phase.  A visitor rather than a
          list: root enumeration pushes ids straight into the tracer with
          no per-collection list building. *)
  allocators : Gcr_heap.Allocator.t Gcr_util.Vec.t;
      (** every long-lived allocation buffer (mutator TLABs, promotion
          targets); collectors retire them all at collection boundaries so
          no stale current-region pointer survives region reshuffling *)
  oom : string -> unit;  (** aborts the run with an OutOfMemoryError *)
}

val make_ctx :
  heap:Gcr_heap.Heap.t ->
  engine:Gcr_engine.Engine.t ->
  cost:Gcr_mach.Cost_model.t ->
  machine:Gcr_mach.Machine.t ->
  ctx
(** Root enumeration defaults to visiting nothing; [oom] aborts the
    engine. *)

type stats = {
  collections : int;  (** completed collection cycles of any kind *)
  full_collections : int;  (** full / degenerated STW collections *)
  words_copied : int;
  objects_marked : int;
  stalls : int;  (** pacing / allocation-stall episodes imposed on mutators *)
}

type t = {
  name : string;
  read_barrier : unit -> int;
      (** current per-field-read cost charged to the mutator *)
  write_barrier : unit -> int;
      (** current per-pointer-write cost charged to the mutator *)
  on_alloc : Gcr_heap.Obj_model.id -> unit;
      (** every new object is announced (concurrent markers treat objects
          allocated during marking as implicitly live) *)
  on_pointer_write :
    src:Gcr_heap.Obj_model.id ->
    old_target:Gcr_heap.Obj_model.id ->
    new_target:Gcr_heap.Obj_model.id ->
    unit;
      (** every pointer-field write is announced before it happens:
          generational collectors maintain their remembered set, SATB
          collectors enqueue the overwritten value *)
  after_refill : Gcr_engine.Engine.thread -> cont:(unit -> unit) -> unit;
      (** the thread just took a region from the free pool; the collector
          may run its trigger heuristics.  It must call [cont] exactly once,
          immediately or after parking the thread across a collection *)
  on_out_of_regions : Gcr_engine.Engine.thread -> retry:(unit -> unit) -> unit;
      (** the free pool is empty.  The collector must collect, stall, or
          declare OOM; [retry] re-attempts the allocation *)
  stats : unit -> stats;
}

val no_stats : stats
