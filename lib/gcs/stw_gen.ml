module Heap = Gcr_heap.Heap
module Region = Gcr_heap.Region
module Obj_model = Gcr_heap.Obj_model
module Engine = Gcr_engine.Engine
module Vec = Gcr_util.Vec
module Cost_model = Gcr_mach.Cost_model

type config = {
  name : string;
  stw_workers : int;
  tenure_age : int;
}

let serial_config ~cpus:_ = { name = "Serial"; stw_workers = 1; tenure_age = 2 }

let parallel_config ~cpus =
  let workers = if cpus <= 8 then cpus else 8 + ((cpus - 8) * 5 / 8) in
  { name = "Parallel"; stw_workers = workers; tenure_age = 2 }

type state = {
  ctx : Gc_types.ctx;
  config : config;
  pool : Worker_pool.t;
  remset : Remset.t;
  waiters : (Engine.thread * (unit -> unit)) Vec.t;
  mutable gc_pending : bool;
  mutable eden_regions_since_gc : int;
  mutable eden_budget : int;
  mutable last_survivor_regions : int;
  mutable low_free_streak : int;  (** GC-overhead-limit detector *)
  mutable collections : int;
  mutable full_collections : int;
  mutable words_copied : int;
  mutable objects_marked : int;
}

let total_regions s = Heap.total_regions s.ctx.Gc_types.heap

let free_regions s = Heap.free_regions s.ctx.Gc_types.heap

(* Headroom that must stay free so the next scavenge has copy targets. *)
let survivor_reserve s = max 2 ((s.last_survivor_regions * 2) + 1)

let full_gc_reserve s = max 3 (total_regions s / 32)

let should_collect s =
  s.eden_regions_since_gc >= s.eden_budget || free_regions s <= survivor_reserve s

let recompute_eden_budget s =
  let headroom = free_regions s - survivor_reserve s in
  s.eden_budget <- max 2 (headroom / 2)

let resume_waiters s =
  let pending = Vec.to_list s.waiters in
  Vec.clear s.waiters;
  List.iter (fun (th, cont) -> Engine.resume s.ctx.Gc_types.engine th cont) pending

let enqueue_waiter s th cont =
  Engine.park s.ctx.Gc_types.engine th;
  Vec.push s.waiters (th, cont)

(* Runs inside the pause once all collection work is complete. *)
let finish_collection s ~ran_full =
  let engine = s.ctx.Gc_types.engine in
  let heap = s.ctx.Gc_types.heap in
  s.collections <- s.collections + 1;
  if ran_full then s.full_collections <- s.full_collections + 1;
  Heap.log_collection heap;
  s.eden_regions_since_gc <- 0;
  s.last_survivor_regions <- Heap.regions_in_space_count heap Region.Survivor;
  Heap.set_alloc_reserve heap (survivor_reserve s);
  recompute_eden_budget s;
  (* GC-overhead limit: persistent near-zero headroom means the workload
     cannot make progress in this heap. *)
  if free_regions s * 50 < total_regions s then s.low_free_streak <- s.low_free_streak + 1
  else s.low_free_streak <- 0;
  if s.low_free_streak >= 4 then
    s.ctx.Gc_types.oom
      (Printf.sprintf "%s: GC overhead limit exceeded (heap too small)" s.config.name)
  else begin
    Engine.release_stop engine;
    s.gc_pending <- false;
    resume_waiters s
  end

let run_full_then_finish s =
  Full_compact.run s.ctx ~pool:s.pool ~on_done:(fun (res : Full_compact.result) ->
      s.objects_marked <- s.objects_marked + res.objects_marked;
      Remset.clear s.remset;
      finish_collection s ~ran_full:true)

let run_young_collection s =
  Scavenge.run s.ctx ~pool:s.pool ~remset:s.remset ~tenure_age:s.config.tenure_age
    ~on_mark_young:ignore
    ~on_done:(fun (res : Scavenge.result) ->
      s.objects_marked <- s.objects_marked + res.objects_copied;
      s.words_copied <- s.words_copied + res.words_copied;
      if res.promo_failed then run_full_then_finish s
      else begin
        Remset.rebuild s.remset ~extra:res.promoted_with_fields;
        if free_regions s <= full_gc_reserve s then run_full_then_finish s
        else finish_collection s ~ran_full:false
      end)

let trigger_collection s th cont ~reason =
  s.gc_pending <- true;
  enqueue_waiter s th cont;
  Engine.request_stop s.ctx.Gc_types.engine ~reason (fun () -> run_young_collection s)

let is_old s id =
  match Heap.obj_space s.ctx.Gc_types.heap id with
  | Region.Old -> true
  | Region.Free | Region.Eden | Region.Survivor -> false

let make (ctx : Gc_types.ctx) config =
  let s =
    {
      ctx;
      config;
      pool = Worker_pool.create ctx ~count:config.stw_workers ~name:config.name;
      remset = Remset.create ctx.Gc_types.heap;
      waiters = Vec.create ();
      gc_pending = false;
      eden_regions_since_gc = 0;
      eden_budget = max 2 (Heap.total_regions ctx.Gc_types.heap / 4);
      last_survivor_regions = 0;
      low_free_streak = 0;
      collections = 0;
      full_collections = 0;
      words_copied = 0;
      objects_marked = 0;
    }
  in
  Heap.set_alloc_reserve ctx.Gc_types.heap (max 4 (Heap.total_regions ctx.Gc_types.heap / 8));
  let engine = ctx.Gc_types.engine in
  let busy () = s.gc_pending || Engine.stop_requested engine in
  let after_refill th ~cont =
    s.eden_regions_since_gc <- s.eden_regions_since_gc + 1;
    if busy () then enqueue_waiter s th cont
    else if should_collect s then trigger_collection s th cont ~reason:(config.name ^ " young")
    else cont ()
  in
  let on_out_of_regions th ~retry =
    if busy () then enqueue_waiter s th retry
    else trigger_collection s th retry ~reason:(config.name ^ " allocation failure")
  in
  let on_pointer_write ~src ~old_target:_ ~new_target =
    if (not (Obj_model.is_null new_target)) && is_old s src then Remset.remember s.remset src
  in
  {
    Gc_types.name = config.name;
    read_barrier = (fun () -> 0);
    write_barrier = (fun () -> ctx.Gc_types.cost.Cost_model.card_mark);
    on_alloc = ignore;
    on_pointer_write;
    after_refill;
    on_out_of_regions;
    stats =
      (fun () ->
        {
          Gc_types.collections = s.collections;
          full_collections = s.full_collections;
          words_copied = s.words_copied;
          objects_marked = s.objects_marked;
          stalls = 0;
        });
  }
