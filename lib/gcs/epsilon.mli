(** Epsilon: the no-op collector (JEP 318).

    Allocates until the heap is exhausted, then throws OutOfMemoryError.
    No barriers, no collection work, no pauses — the closest physical
    realisation of the paper's "zero-cost GC scheme", used by the LBO
    methodology wherever it fits in memory. *)

val make : Gc_types.ctx -> Gc_types.t
