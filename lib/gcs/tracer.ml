module Heap = Gcr_heap.Heap
module Obj_model = Gcr_heap.Obj_model
module Vec = Gcr_util.Vec
module Cost_model = Gcr_mach.Cost_model

exception Trace_failure of string

type t = {
  ctx : Gc_types.ctx;
  use_scratch : bool;
  update_region_live : bool;
  should_visit : Obj_model.t -> bool;
  on_mark : Obj_model.t -> int;
  stack : Obj_model.id Vec.t;
  mutable objects_marked : int;
  mutable words_marked : int;
  mutable edges_seen : int;
}

let create ctx ~use_scratch ~update_region_live ~should_visit ~on_mark =
  {
    ctx;
    use_scratch;
    update_region_live;
    should_visit;
    on_mark;
    stack = Vec.create ();
    objects_marked = 0;
    words_marked = 0;
    edges_seen = 0;
  }

let is_marked t o =
  if t.use_scratch then Heap.is_scratch_marked t.ctx.Gc_types.heap o
  else Heap.is_marked t.ctx.Gc_types.heap o

let set_marked t o =
  if t.use_scratch then Heap.set_scratch_marked t.ctx.Gc_types.heap o
  else Heap.set_marked t.ctx.Gc_types.heap o

(* Mark at push: each object enters the stack at most once.  [find_raw]
   keeps the per-edge liveness check allocation-free. *)
let add_root t id =
  if not (Obj_model.is_null id) then begin
    let o = Heap.find_raw t.ctx.Gc_types.heap id in
    if
      o.Obj_model.id <> Obj_model.null
      && (not (is_marked t o))
      && t.should_visit o
    then begin
      set_marked t o;
      Vec.push t.stack id
    end
  end

let add_roots t ids = List.iter (add_root t) ids

let drain t ~budget =
  let heap = t.ctx.Gc_types.heap in
  let cost_model = t.ctx.Gc_types.cost in
  let cost = ref 0 in
  let processed = ref 0 in
  while !processed < budget && not (Vec.is_empty t.stack) do
    let id = Vec.pop_exn t.stack in
    incr processed;
    (* The id was live and marked when pushed; objects are only removed by
       region release, which should not happen mid-trace for visited
       spaces — but stay defensive across collector fallbacks. *)
    let o = Heap.find_raw heap id in
    if o.Obj_model.id <> Obj_model.null then begin
      t.objects_marked <- t.objects_marked + 1;
      t.words_marked <- t.words_marked + o.size;
      if t.update_region_live then begin
        let r = Heap.region heap o.region in
        r.Gcr_heap.Region.live_words <- r.Gcr_heap.Region.live_words + o.size
      end;
      cost := !cost + cost_model.Cost_model.mark_per_object;
      cost := !cost + t.on_mark o;
      Array.iter
        (fun field ->
          t.edges_seen <- t.edges_seen + 1;
          cost := !cost + cost_model.Cost_model.mark_per_edge;
          add_root t field)
        o.fields
    end
  done;
  !cost

let pending t = not (Vec.is_empty t.stack)

let objects_marked t = t.objects_marked

let words_marked t = t.words_marked

let edges_seen t = t.edges_seen
