module Heap = Gcr_heap.Heap
module Obj_model = Gcr_heap.Obj_model
module Cost_model = Gcr_mach.Cost_model

exception Trace_failure of string

(* The mark stack is a raw int array rather than a Vec: popping must not
   box an option per object, and ids need no tail-clearing (they are
   immediate). *)
type t = {
  ctx : Gc_types.ctx;
  store : Obj_model.store;  (** cached: the heap's store record is stable *)
  use_scratch : bool;
  update_region_live : bool;
  should_visit : Obj_model.id -> bool;
  on_mark : Obj_model.id -> int;
  mutable stack : int array;
  mutable stack_len : int;
  mutable objects_marked : int;
  mutable words_marked : int;
  mutable edges_seen : int;
}

let create ctx ~use_scratch ~update_region_live ~should_visit ~on_mark =
  {
    ctx;
    store = Heap.store ctx.Gc_types.heap;
    use_scratch;
    update_region_live;
    should_visit;
    on_mark;
    stack = Array.make 256 0;
    stack_len = 0;
    objects_marked = 0;
    words_marked = 0;
    edges_seen = 0;
  }

let[@inline] push t id =
  if t.stack_len = Array.length t.stack then begin
    let b = Array.make (2 * Array.length t.stack) 0 in
    Array.blit t.stack 0 b 0 t.stack_len;
    t.stack <- b
  end;
  Array.unsafe_set t.stack t.stack_len id;
  t.stack_len <- t.stack_len + 1

let is_marked t id =
  if t.use_scratch then Heap.is_scratch_marked t.ctx.Gc_types.heap id
  else Heap.is_marked t.ctx.Gc_types.heap id

let set_marked t id =
  if t.use_scratch then Heap.set_scratch_marked t.ctx.Gc_types.heap id
  else Heap.set_marked t.ctx.Gc_types.heap id

(* Mark at push: each object enters the stack at most once.  Liveness,
   mark and filter checks are all flat-array reads. *)
let add_root t id =
  if not (Obj_model.is_null id) then
    if Obj_model.is_live t.store id && (not (is_marked t id)) && t.should_visit id then begin
      set_marked t id;
      push t id
    end

let add_roots t ids = List.iter (add_root t) ids

let drain t ~budget =
  let heap = t.ctx.Gc_types.heap in
  let store = t.store in
  let cost_model = t.ctx.Gc_types.cost in
  let mark_per_object = cost_model.Cost_model.mark_per_object in
  let mark_per_edge = cost_model.Cost_model.mark_per_edge in
  let should_visit = t.should_visit in
  let on_mark = t.on_mark in
  let use_scratch = t.use_scratch in
  let update_region_live = t.update_region_live in
  let cost = ref 0 in
  let processed = ref 0 in
  while !processed < budget && t.stack_len > 0 do
    let top = t.stack_len - 1 in
    t.stack_len <- top;
    let id = Array.unsafe_get t.stack top in
    incr processed;
    (* The id was live and marked when pushed; objects are only removed by
       region release, which should not happen mid-trace for visited
       spaces — but stay defensive across collector fallbacks. *)
    if Obj_model.is_live store id then begin
      let size = Obj_model.size store id in
      t.objects_marked <- t.objects_marked + 1;
      t.words_marked <- t.words_marked + size;
      if update_region_live then begin
        let r = Heap.region heap (Obj_model.region store id) in
        r.Gcr_heap.Region.live_words <- r.Gcr_heap.Region.live_words + size
      end;
      cost := !cost + mark_per_object;
      cost := !cost + on_mark id;
      (* Fields: one contiguous arena extent.  Read the base after
         [on_mark] (it may move the object). *)
      let nf = Obj_model.nfields store id in
      let base = Obj_model.field_base store id in
      t.edges_seen <- t.edges_seen + nf;
      cost := !cost + (mark_per_edge * nf);
      for i = 0 to nf - 1 do
        let child = Obj_model.arena_get store (base + i) in
        (* add_root, inlined with the per-tracer configuration hoisted *)
        if not (Obj_model.is_null child) then
          if
            Obj_model.is_live store child
            && (not
                  (if use_scratch then Heap.is_scratch_marked heap child
                   else Heap.is_marked heap child))
            && should_visit child
          then begin
            if use_scratch then Heap.set_scratch_marked heap child
            else Heap.set_marked heap child;
            push t child
          end
      done
    end
  done;
  !cost

let pending t = t.stack_len > 0

let objects_marked t = t.objects_marked

let words_marked t = t.words_marked

let edges_seen t = t.edges_seen
