(** G1: generational, region-based, with concurrent old-space marking.

    Young collections are stop-the-world scavenges (shared with
    Serial/Parallel).  When old-space occupancy crosses the initiating
    threshold, a concurrent marking cycle runs on dedicated GC threads
    (SATB write barrier protects it); once marking completes, the next
    young pause also evacuates the old regions with the most garbage
    ("mixed" collection).  Evacuation failure and exhausted headroom fall
    back to the shared full mark-compact. *)

type config = {
  stw_workers : int;
  conc_workers : int;
  tenure_age : int;
  initiating_occupancy : float;  (** old-space fraction starting marking *)
  mixed_live_threshold : float;
      (** only regions with live fraction below this enter a mixed cset *)
}

val default_config : cpus:int -> config

val make : Gc_types.ctx -> config -> Gc_types.t
