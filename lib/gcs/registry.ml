type kind =
  | Epsilon
  | Serial
  | Parallel
  | G1
  | Shenandoah
  | Zgc
  | Shenandoah_gen
  | Lxr
  | Serial_pretenure

let all = [ Epsilon; Serial; Parallel; G1; Shenandoah; Zgc ]

let production = [ Serial; Parallel; G1; Shenandoah; Zgc ]

let experimental = [ Shenandoah_gen; Lxr; Serial_pretenure ]

let frontier = all @ experimental

let name = function
  | Epsilon -> "Epsilon"
  | Serial -> "Serial"
  | Parallel -> "Parallel"
  | G1 -> "G1"
  | Shenandoah -> "Shenandoah"
  | Zgc -> "ZGC"
  | Shenandoah_gen -> "GenShen"
  | Lxr -> "LXR"
  | Serial_pretenure -> "SerialPT"

let of_name s =
  match String.lowercase_ascii s with
  | "epsilon" -> Some Epsilon
  | "serial" -> Some Serial
  | "parallel" -> Some Parallel
  | "g1" -> Some G1
  | "shenandoah" | "shen" -> Some Shenandoah
  | "zgc" | "z" -> Some Zgc
  | "genshen" | "shenandoah-gen" | "generational-shenandoah" -> Some Shenandoah_gen
  | "lxr" -> Some Lxr
  | "serialpt" | "serial-pt" | "serial-pretenure" -> Some Serial_pretenure
  | _ -> None

(* One canonical, user-facing name per kind, for CLI error messages. *)
let valid_names = List.map name frontier

let is_concurrent = function
  | G1 | Shenandoah | Zgc | Shenandoah_gen | Lxr -> true
  | Epsilon | Serial | Parallel | Serial_pretenure -> false

let is_generational = function
  | Serial | Parallel | G1 | Shenandoah_gen | Serial_pretenure -> true
  | Epsilon | Shenandoah | Zgc | Lxr -> false

let make kind (ctx : Gc_types.ctx) =
  let cpus = ctx.Gc_types.machine.Gcr_mach.Machine.cpus in
  match kind with
  | Epsilon -> Epsilon.make ctx
  | Serial -> Stw_gen.make ctx (Stw_gen.serial_config ~cpus)
  | Parallel -> Stw_gen.make ctx (Stw_gen.parallel_config ~cpus)
  | G1 -> G1.make ctx (G1.default_config ~cpus)
  | Shenandoah -> Shenandoah.make ctx (Shenandoah.default_config ~cpus)
  | Zgc -> Zgc.make ctx (Zgc.default_config ~cpus)
  | Shenandoah_gen -> Shenandoah_gen.make ctx (Shenandoah_gen.default_config ~cpus)
  | Lxr -> Lxr.make ctx (Lxr.default_config ~cpus)
  | Serial_pretenure ->
      Stw_gen.make ctx
        { (Stw_gen.serial_config ~cpus) with Stw_gen.name = "SerialPT"; tenure_age = 0 }
