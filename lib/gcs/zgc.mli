(** ZGC: non-generational concurrent mark + concurrent relocation behind a
    load barrier.

    Differences from Shenandoah that matter for the paper's results:
    mutators pay the load barrier on {e every} reference read (idle or
    not); there is no pacing and no degenerated mode — when allocation
    fails during a cycle the thread simply blocks ("allocation stall")
    until reclamation frees memory; and there is no full-GC fallback, so
    allocation that outruns reclamation for good ends in OutOfMemoryError
    (as the paper observes for xalan). *)

type config = {
  conc_workers : int;
  trigger_free_fraction : float;
  garbage_threshold : float;
  max_evac_failures : int;  (** consecutive to-space exhaustions before OOM *)
  stall_timeout_cycles : int;
      (** an allocation stalled longer than this is an OutOfMemoryError *)
  overload_waiters : int;
      (** cycle-end stalled-thread count that counts as overload *)
  max_overload_cycles : int;
      (** consecutive overloaded cycle ends before OOM — sustained
          allocation-over-reclamation, the paper's xalan failure *)
}

val default_config : cpus:int -> config

val make : Gc_types.ctx -> config -> Gc_types.t
