(** Generational Shenandoah — the paper's flagged future work (its Table I
    footnote points at JEP 404, then "in development"; generational mode
    shipped years later in JDK 21).

    The motivation, visible in the paper's own data, is that
    non-generational Shenandoah re-marks and re-copies the whole live set
    every cycle and collapses under high allocation rates (pacing,
    degeneration, the xalan/lusearch pathologies).  Generational mode
    reclaims the nursery with cheap stop-the-world scavenges (shared with
    Serial/Parallel/G1 here) and reserves the concurrent
    mark/evacuate/update pipeline for the old generation, whose cset
    excludes young regions.

    Composition of existing machinery: {!Scavenge} + {!Remset} for the
    young generation, {!Conc_cycle} in [old_only] mode for the old one,
    {!Full_compact} as the last resort, and Shenandoah-style pacing while
    an old cycle is behind.  Not part of the paper's collector set —
    registered as an experimental kind for the extension study. *)

type config = {
  stw_workers : int;  (** scavenge workers *)
  conc_workers : int;
  tenure_age : int;
  old_trigger_occupancy : float;
      (** start an old cycle when old space exceeds this heap fraction *)
  pace_free_fraction : float;
  pace_stall_cycles : int;
  garbage_threshold : float;
}

val default_config : cpus:int -> config

val make : Gc_types.ctx -> config -> Gc_types.t
