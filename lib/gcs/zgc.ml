module Heap = Gcr_heap.Heap
module Engine = Gcr_engine.Engine
module Obs = Gcr_obs.Obs
module Vec = Gcr_util.Vec
module Cost_model = Gcr_mach.Cost_model

type config = {
  conc_workers : int;
  trigger_free_fraction : float;
  garbage_threshold : float;
  max_evac_failures : int;
  stall_timeout_cycles : int;
  overload_waiters : int;  (** cycle-end stalled-thread count counting as overload *)
  max_overload_cycles : int;  (** consecutive overloaded cycle ends before OOM *)
}

let default_config ~cpus =
  {
    conc_workers = max 1 (cpus / 8);
    (* JDK 17 default: ConcGCThreads = 12.5% of CPUs *)
    trigger_free_fraction = 0.55;
    garbage_threshold = 0.25;
    max_evac_failures = 3;
    stall_timeout_cycles = 20_000_000;
    overload_waiters = max 2 (cpus / 4);
    max_overload_cycles = 60;
  }

type waiter = {
  thread : Engine.thread;
  retry : unit -> unit;
  parked_at : int;
}

type state = {
  ctx : Gc_types.ctx;
  config : config;
  cycle : Conc_cycle.t;
  pool : Worker_pool.t;
  waiters : waiter Vec.t;
  mutable evac_failures : int;
  mutable overload_streak : int;
  mutable poll_active : bool;
  mutable stalls : int;
}

let free_fraction s =
  let heap = s.ctx.Gc_types.heap in
  float_of_int (Heap.free_regions heap) /. float_of_int (Heap.total_regions heap)

let memory_available s =
  Heap.free_regions s.ctx.Gc_types.heap > Heap.alloc_reserve s.ctx.Gc_types.heap

let resume_waiters s =
  let engine = s.ctx.Gc_types.engine in
  let obs = Engine.obs engine in
  let now = Engine.now engine in
  let pending = Vec.to_list s.waiters in
  Vec.clear s.waiters;
  List.iter
    (fun w ->
      Obs.alloc_stall_end obs ~time:now ~tid:(Engine.thread_id w.thread)
        ~waited:(now - w.parked_at);
      Engine.resume engine w.thread w.retry)
    pending

let oldest_waiter_age s =
  let now = Engine.now s.ctx.Gc_types.engine in
  Vec.fold (fun acc w -> max acc (now - w.parked_at)) 0 s.waiters

(* Stalled allocators wake as soon as reclamation replenishes the pool —
   not only at cycle boundaries; a stall that outlives the timeout is the
   ZGC OutOfMemoryError (allocation has outrun reclamation for good, the
   paper's xalan failure). *)
let rec schedule_stall_poll s =
  s.poll_active <- true;
  Engine.after s.ctx.Gc_types.engine ~cycles:5_000 (fun () ->
      if Vec.is_empty s.waiters then s.poll_active <- false
      else begin
        if memory_available s then resume_waiters s;
        if Vec.is_empty s.waiters then s.poll_active <- false
        else if oldest_waiter_age s > s.config.stall_timeout_cycles then
          s.ctx.Gc_types.oom
            "ZGC: allocation stalled beyond timeout (allocation rate exceeds reclamation; \
             no full-GC fallback)"
        else schedule_stall_poll s
      end)

(* ZGC's pauses are its own tiny init/final marks; allocation failure never
   opens one. *)
let debug = Sys.getenv_opt "GCR_DEBUG" <> None

let pause_broker s reason body =
  let engine = s.ctx.Gc_types.engine in
  if Engine.stop_requested engine then body (fun () -> ())
  else
    Engine.request_stop engine ~reason:("ZGC " ^ reason) (fun () ->
        body (fun () -> Engine.release_stop engine))

let rec end_cycle s ~evac_failed =
  if evac_failed then s.evac_failures <- s.evac_failures + 1
  else s.evac_failures <- 0;
  (* Overload detection: ending cycle after cycle with a crowd of stalled
     allocators means allocation outruns reclamation for good — real ZGC
     ends such runs with OutOfMemoryError (the paper's xalan failure). *)
  if Vec.length s.waiters >= s.config.overload_waiters then
    s.overload_streak <- s.overload_streak + 1
  else s.overload_streak <- 0;
  if s.evac_failures >= s.config.max_evac_failures then
    s.ctx.Gc_types.oom "ZGC: to-space exhausted repeatedly (no full-GC fallback)"
  else if s.overload_streak >= s.config.max_overload_cycles then
    s.ctx.Gc_types.oom
      "ZGC: sustained allocation stalls (allocation rate exceeds reclamation)"
  else if memory_available s then resume_waiters s
  else if not (Vec.is_empty s.waiters) then
    (* Still at the reserve with threads stalled: run cycles back to
       back.  The stall timeout bounds how long this may go on. *)
    start_cycle s

and start_cycle s =
  (* re-derive the mutator reserve from live geometry: a sizing controller
     may have grown or shrunk the heap since the last cycle *)
  Heap.set_alloc_reserve s.ctx.Gc_types.heap
    (max 2 (Heap.total_regions s.ctx.Gc_types.heap / 10));
  let free_before = Heap.free_regions s.ctx.Gc_types.heap in
  Conc_cycle.start s.cycle
    ~pause:(pause_broker s)
    ~on_done:(fun ~evac_failed ->
      if debug then
        Printf.eprintf "[zgc] cycle %d: free %d -> %d (evac_failed=%b waiters=%d age=%d)
%!"
          (Conc_cycle.cycles_completed s.cycle) free_before
          (Heap.free_regions s.ctx.Gc_types.heap) evac_failed (Vec.length s.waiters)
          (oldest_waiter_age s);
      end_cycle s ~evac_failed)

let cycle_active s =
  match Conc_cycle.phase s.cycle with
  | Conc_cycle.Idle -> false
  | Conc_cycle.Marking | Conc_cycle.Evacuating | Conc_cycle.Updating -> true

let make (ctx : Gc_types.ctx) config =
  Heap.set_alloc_reserve ctx.Gc_types.heap
    (max 2 (Heap.total_regions ctx.Gc_types.heap / 10));
  let pool = Worker_pool.create ctx ~count:config.conc_workers ~name:"ZGC" in
  let cycle =
    Conc_cycle.create ctx ~pool ~garbage_threshold:config.garbage_threshold
      ~reserve_regions:(fun () -> max 2 (Heap.total_regions ctx.Gc_types.heap / 20))
      ~concurrent_copy:true ()
  in
  let s =
    {
      ctx;
      config;
      cycle;
      pool;
      waiters = Vec.create ();
      evac_failures = 0;
      overload_streak = 0;
      poll_active = false;
      stalls = 0;
    }
  in
  let engine = ctx.Gc_types.engine in
  let can_start () =
    (not (cycle_active s)) && (not (Engine.stop_requested engine)) && not (Worker_pool.busy pool)
  in
  let after_refill _th ~cont =
    (* Opportunistic wake-up: a successful refill proves memory is
       available again, so stalled threads need not wait for the poll. *)
    if (not (Vec.is_empty s.waiters)) && memory_available s then resume_waiters s;
    if can_start () && free_fraction s < config.trigger_free_fraction then start_cycle s;
    cont ()
  in
  let on_out_of_regions th ~retry =
    (* Allocation stall: block until reclamation frees memory. *)
    s.stalls <- s.stalls + 1;
    Obs.alloc_stall_begin (Engine.obs engine) ~time:(Engine.now engine)
      ~tid:(Engine.thread_id th);
    Engine.park engine th;
    Vec.push s.waiters { thread = th; retry; parked_at = Engine.now engine };
    if not s.poll_active then schedule_stall_poll s;
    if can_start () then start_cycle s
  in
  let read_barrier () =
    let c = ctx.Gc_types.cost in
    match Conc_cycle.phase cycle with
    | Conc_cycle.Evacuating | Conc_cycle.Updating ->
        c.Cost_model.lvb_idle + (c.Cost_model.lvb_slow / 4)
    | Conc_cycle.Marking -> c.Cost_model.lvb_idle + 1
    | Conc_cycle.Idle -> c.Cost_model.lvb_idle
  in
  {
    Gc_types.name = "ZGC";
    read_barrier;
    write_barrier = (fun () -> ctx.Gc_types.cost.Cost_model.barrier_none);
    on_alloc = (fun o -> Conc_cycle.mark_new_object cycle o);
    on_pointer_write =
      (fun ~src:_ ~old_target ~new_target:_ -> Conc_cycle.satb_publish cycle old_target);
    after_refill;
    on_out_of_regions;
    stats =
      (fun () ->
        {
          Gc_types.collections = Conc_cycle.cycles_completed cycle;
          full_collections = 0;
          words_copied = Conc_cycle.words_copied cycle;
          objects_marked = Conc_cycle.objects_marked cycle;
          stalls = s.stalls;
        });
  }
