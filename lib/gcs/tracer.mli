(** Incremental transitive marking.

    All six collectors establish liveness by tracing, so they share this
    engine: a mark stack drained in bounded slices so the work can be
    spread across worker steps (parallel STW phases) or interleaved with
    mutator execution (concurrent phases).

    The tracer is also the extension point for copying collectors: the
    [on_mark] callback fires exactly once per reached object and may move
    it, returning the extra cycles to charge (a scavenge is a trace whose
    [on_mark] copies).  SATB buffers are modelled by pushing overwritten
    values as additional roots while the trace is in flight.

    The mark loop works directly on the heap's struct-of-arrays object
    store: liveness, mark bits and field extents are flat int-array reads,
    with no host allocation per visited object. *)

type t

exception Trace_failure of string
(** Raised out of {!drain} by an [on_mark] that cannot proceed (promotion
    failure, to-space exhaustion).  The collector catches it and falls back
    (full or degenerated collection). *)

val create :
  Gc_types.ctx ->
  use_scratch:bool ->
  update_region_live:bool ->
  should_visit:(Gcr_heap.Obj_model.id -> bool) ->
  on_mark:(Gcr_heap.Obj_model.id -> int) ->
  t
(** The caller must begin the corresponding heap epoch (mark or scratch)
    first.  [should_visit] bounds the trace (e.g. young objects only for a
    scavenge); objects failing it are neither marked nor traversed.
    [update_region_live] accumulates marked sizes into the owning region's
    [live_words] (reset them beforehand). *)

val add_root : t -> Gcr_heap.Obj_model.id -> unit
(** Push a root (or SATB-buffered value).  Dead, already-marked and
    filtered-out ids are ignored. *)

val add_roots : t -> Gcr_heap.Obj_model.id list -> unit

val drain : t -> budget:int -> int
(** Process up to [budget] objects; returns the cycle cost of the slice,
    0 when the stack is empty. *)

val pending : t -> bool

val objects_marked : t -> int

val words_marked : t -> int

val edges_seen : t -> int
