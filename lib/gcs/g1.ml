module Heap = Gcr_heap.Heap
module Region = Gcr_heap.Region
module Obj_model = Gcr_heap.Obj_model
module Allocator = Gcr_heap.Allocator
module Engine = Gcr_engine.Engine
module Vec = Gcr_util.Vec
module Cost_model = Gcr_mach.Cost_model

type config = {
  stw_workers : int;
  conc_workers : int;
  tenure_age : int;
  initiating_occupancy : float;
  mixed_live_threshold : float;
}

let default_config ~cpus =
  let stw = if cpus <= 8 then cpus else 8 + ((cpus - 8) * 5 / 8) in
  {
    stw_workers = stw;
    conc_workers = max 1 (stw / 4);
    tenure_age = 2;
    initiating_occupancy = 0.45;
    mixed_live_threshold = 0.85;
  }

type mark_state =
  | Mark_idle
  | Mark_running of { tracer : Tracer.t; session : int }
  | Mark_drained of { tracer : Tracer.t; session : int }
      (** concurrent drain finished; final mark runs in the next pause *)

type state = {
  ctx : Gc_types.ctx;
  config : config;
  stw_pool : Worker_pool.t;
  conc_pool : Worker_pool.t;
  remset : Remset.t;
  waiters : (Engine.thread * (unit -> unit)) Vec.t;
  mutable gc_pending : bool;
  mutable eden_regions_since_gc : int;
  mutable eden_budget : int;
  mutable last_survivor_regions : int;
  mutable low_free_streak : int;
  mutable marking : mark_state;
  mutable mark_session : int;  (** bumping it cancels in-flight draining *)
  mutable mixed_pending : int list;  (** old region indices awaiting mixed evac *)
  mutable collections : int;
  mutable full_collections : int;
  mutable words_copied : int;
  mutable objects_marked : int;
  mutable concurrent_cycles : int;
}

let slice_budget = 64

let total_regions s = Heap.total_regions s.ctx.Gc_types.heap

let free_regions s = Heap.free_regions s.ctx.Gc_types.heap

let survivor_reserve s = max 2 ((s.last_survivor_regions * 2) + 1)

let full_gc_reserve s = max 3 (total_regions s / 32)

let should_collect s =
  s.eden_regions_since_gc >= s.eden_budget || free_regions s <= survivor_reserve s

let recompute_eden_budget s =
  let headroom = free_regions s - survivor_reserve s in
  s.eden_budget <- max 2 (headroom / 2)

let resume_waiters s =
  let pending = Vec.to_list s.waiters in
  Vec.clear s.waiters;
  List.iter (fun (th, cont) -> Engine.resume s.ctx.Gc_types.engine th cont) pending

let enqueue_waiter s th cont =
  Engine.park s.ctx.Gc_types.engine th;
  Vec.push s.waiters (th, cont)

let marking_active s =
  match s.marking with Mark_running _ | Mark_drained _ -> true | Mark_idle -> false

let cancel_marking s =
  s.mark_session <- s.mark_session + 1;
  s.marking <- Mark_idle;
  s.mixed_pending <- []

(* ---------- concurrent marking ---------- *)

let start_concurrent_mark s =
  let heap = s.ctx.Gc_types.heap in
  ignore (Heap.begin_mark_epoch heap);
  Heap.iter_regions (fun r -> r.Region.live_words <- 0) heap;
  let tracer =
    Tracer.create s.ctx ~use_scratch:false ~update_region_live:true
      ~should_visit:(fun _ -> true)
      ~on_mark:(fun _ -> 0)
  in
  !(s.ctx.Gc_types.iter_roots) (Tracer.add_root tracer);
  s.mark_session <- s.mark_session + 1;
  let session = s.mark_session in
  s.marking <- Mark_running { tracer; session };
  s.concurrent_cycles <- s.concurrent_cycles + 1;
  let work ~worker:_ =
    if s.mark_session <> session then 0 else Tracer.drain tracer ~budget:slice_budget
  in
  Worker_pool.run_phase s.conc_pool ~phase:Gcr_obs.Event.Mark ~work ~on_done:(fun () ->
      if s.mark_session = session then s.marking <- Mark_drained { tracer; session })

(* Final mark, inside a pause: re-scan roots (SATB leaves the stack
   non-empty), drain on the STW pool, then pick the mixed candidates. *)
let run_final_mark s tracer k =
  let heap = s.ctx.Gc_types.heap in
  !(s.ctx.Gc_types.iter_roots) (Tracer.add_root tracer);
  let work ~worker:_ = Tracer.drain tracer ~budget:slice_budget in
  Worker_pool.run_phase s.stw_pool ~phase:Gcr_obs.Event.Mark ~work ~on_done:(fun () ->
      s.objects_marked <- s.objects_marked + Tracer.objects_marked tracer;
      let region_words = Heap.region_words heap in
      let candidates = ref [] in
      Heap.iter_regions
        (fun r ->
          match r.Region.space with
          | Region.Old ->
              if
                r.Region.used_words > 0
                && float_of_int r.Region.live_words
                   < s.config.mixed_live_threshold *. float_of_int region_words
              then candidates := r :: !candidates
          | Region.Free | Region.Eden | Region.Survivor -> ())
        heap;
      let by_liveness a b = compare a.Region.live_words b.Region.live_words in
      let sorted = List.sort by_liveness !candidates in
      let cap = max 1 (total_regions s / 8) in
      let chosen = List.filteri (fun i _ -> i < cap) sorted in
      s.mixed_pending <- List.map (fun r -> r.Region.index) chosen;
      s.marking <- Mark_idle;
      k ())

(* Mixed evacuation, inside a pause, after a scavenge: evacuate the
   candidate old regions using the liveness the last mark established. *)
let run_mixed_evacuation s k =
  let heap = s.ctx.Gc_types.heap in
  let pending = s.mixed_pending in
  s.mixed_pending <- [];
  let old_target = Allocator.create heap ~space:Region.Old in
  let evacuator =
    Evacuator.create s.ctx ~concurrent:false ~choose_target:(fun _ -> old_target)
  in
  let queued = ref false in
  List.iter
    (fun index ->
      let r = Heap.region heap index in
      match r.Region.space with
      | Region.Old ->
          Evacuator.add_region evacuator r;
          queued := true
      | Region.Free | Region.Eden | Region.Survivor -> ())
    pending;
  if not !queued then k ~failed:false
  else begin
    let failed = ref false in
    let work ~worker:_ =
      if !failed then 0
      else
        try Evacuator.step evacuator ~budget:slice_budget
        with Evacuator.Evacuation_failure ->
          failed := true;
          0
    in
    Worker_pool.run_phase s.stw_pool ~phase:Gcr_obs.Event.Evacuate ~work ~on_done:(fun () ->
        Allocator.retire old_target;
        s.words_copied <- s.words_copied + Evacuator.words_copied evacuator;
        k ~failed:!failed)
  end

(* ---------- the collection pause ---------- *)

let finish_collection s ~ran_full =
  let engine = s.ctx.Gc_types.engine in
  let heap = s.ctx.Gc_types.heap in
  s.collections <- s.collections + 1;
  if ran_full then s.full_collections <- s.full_collections + 1;
  Heap.log_collection heap;
  s.eden_regions_since_gc <- 0;
  s.last_survivor_regions <- Heap.regions_in_space_count heap Region.Survivor;
  Heap.set_alloc_reserve heap (survivor_reserve s);
  recompute_eden_budget s;
  (* Initiate concurrent marking once old occupancy crosses the threshold
     (and no cycle or unconsumed candidates are outstanding). *)
  let old_used = float_of_int (Heap.space_used_words heap Region.Old) in
  let capacity = float_of_int (Heap.capacity_words heap) in
  if
    (not (marking_active s))
    && s.mixed_pending = []
    && (not ran_full)
    && (not (Worker_pool.busy s.conc_pool))
    (* a cancelled drain may still be terminating *)
    && old_used > s.config.initiating_occupancy *. capacity
  then start_concurrent_mark s;
  if free_regions s * 50 < total_regions s then s.low_free_streak <- s.low_free_streak + 1
  else s.low_free_streak <- 0;
  if s.low_free_streak >= 4 then
    s.ctx.Gc_types.oom "G1: GC overhead limit exceeded (heap too small)"
  else begin
    Engine.release_stop engine;
    s.gc_pending <- false;
    resume_waiters s
  end

let run_full_then_finish s =
  cancel_marking s;
  Full_compact.run s.ctx ~pool:s.stw_pool ~on_done:(fun (res : Full_compact.result) ->
      s.objects_marked <- s.objects_marked + res.objects_marked;
      Remset.clear s.remset;
      finish_collection s ~ran_full:true)

let run_collection_pause s =
  Scavenge.run s.ctx ~pool:s.stw_pool ~remset:s.remset ~tenure_age:s.config.tenure_age
    ~on_mark_young:ignore
    ~on_done:(fun (res : Scavenge.result) ->
      s.objects_marked <- s.objects_marked + res.objects_copied;
      s.words_copied <- s.words_copied + res.words_copied;
      if res.promo_failed then run_full_then_finish s
      else begin
        Remset.rebuild s.remset ~extra:res.promoted_with_fields;
        let after_mixed ~failed =
          if failed then run_full_then_finish s
          else begin
            let after_final_mark () =
              if free_regions s <= full_gc_reserve s then run_full_then_finish s
              else finish_collection s ~ran_full:false
            in
            match s.marking with
            | Mark_drained { tracer; session } when session = s.mark_session ->
                run_final_mark s tracer after_final_mark
            | Mark_drained _ | Mark_running _ | Mark_idle -> after_final_mark ()
          end
        in
        if s.mixed_pending <> [] then run_mixed_evacuation s after_mixed
        else after_mixed ~failed:false
      end)

let trigger_collection s th cont ~reason =
  s.gc_pending <- true;
  enqueue_waiter s th cont;
  Engine.request_stop s.ctx.Gc_types.engine ~reason (fun () -> run_collection_pause s)

let is_old s id =
  match Heap.obj_space s.ctx.Gc_types.heap id with
  | Region.Old -> true
  | Region.Free | Region.Eden | Region.Survivor -> false

let make (ctx : Gc_types.ctx) config =
  let s =
    {
      ctx;
      config;
      stw_pool = Worker_pool.create ctx ~count:config.stw_workers ~name:"G1-stw";
      conc_pool = Worker_pool.create ctx ~count:config.conc_workers ~name:"G1-conc";
      remset = Remset.create ctx.Gc_types.heap;
      waiters = Vec.create ();
      gc_pending = false;
      eden_regions_since_gc = 0;
      eden_budget = max 2 (Heap.total_regions ctx.Gc_types.heap / 4);
      last_survivor_regions = 0;
      low_free_streak = 0;
      marking = Mark_idle;
      mark_session = 0;
      mixed_pending = [];
      collections = 0;
      full_collections = 0;
      words_copied = 0;
      objects_marked = 0;
      concurrent_cycles = 0;
    }
  in
  Heap.set_alloc_reserve ctx.Gc_types.heap (max 4 (Heap.total_regions ctx.Gc_types.heap / 8));
  let engine = ctx.Gc_types.engine in
  let busy () = s.gc_pending || Engine.stop_requested engine in
  let after_refill th ~cont =
    s.eden_regions_since_gc <- s.eden_regions_since_gc + 1;
    if busy () then enqueue_waiter s th cont
    else if should_collect s then trigger_collection s th cont ~reason:"G1 young"
    else cont ()
  in
  let on_out_of_regions th ~retry =
    if busy () then enqueue_waiter s th retry
    else trigger_collection s th retry ~reason:"G1 allocation failure"
  in
  let on_pointer_write ~src ~old_target ~new_target =
    if (not (Obj_model.is_null new_target)) && is_old s src then Remset.remember s.remset src;
    match s.marking with
    | Mark_running { tracer; _ } | Mark_drained { tracer; _ } -> Tracer.add_root tracer old_target
    | Mark_idle -> ()
  in
  let on_alloc id =
    if marking_active s then Heap.set_marked ctx.Gc_types.heap id
  in
  let write_barrier () =
    let c = ctx.Gc_types.cost in
    c.Cost_model.card_mark
    + (if marking_active s then c.Cost_model.satb_active else c.Cost_model.satb_idle)
  in
  {
    Gc_types.name = "G1";
    read_barrier = (fun () -> 0);
    write_barrier;
    on_alloc;
    on_pointer_write;
    after_refill;
    on_out_of_regions;
    stats =
      (fun () ->
        {
          Gc_types.collections = s.collections;
          full_collections = s.full_collections;
          words_copied = s.words_copied;
          objects_marked = s.objects_marked;
          stalls = 0;
        });
  }
