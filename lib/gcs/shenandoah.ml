module Heap = Gcr_heap.Heap
module Engine = Gcr_engine.Engine
module Obs = Gcr_obs.Obs
module Vec = Gcr_util.Vec
module Cost_model = Gcr_mach.Cost_model

type config = {
  conc_workers : int;
  trigger_free_fraction : float;
  pace_free_fraction : float;
  pace_stall_cycles : int;
  garbage_threshold : float;
}

let default_config ~cpus =
  {
    conc_workers = max 1 (cpus / 4);
    trigger_free_fraction = 0.55;
    pace_free_fraction = 0.30;
    pace_stall_cycles = 150_000;
    garbage_threshold = 0.25;
  }

type state = {
  ctx : Gc_types.ctx;
  config : config;
  cycle : Conc_cycle.t;
  pool : Worker_pool.t;
  waiters : (Engine.thread * (unit -> unit)) Vec.t;
  mutable degenerated : bool;  (** we own an open (or opening) pause *)
  mutable on_pause_open : (unit -> unit) option;
      (** continuation deferred until the degenerated pause actually opens
          (the cycle can finish on GC threads while mutators are still
          coming to the safepoint) *)
  mutable low_free_streak : int;
  mutable free_at_cycle_start : int;
  mutable full_collections : int;
  mutable degenerated_collections : int;
  mutable stalls : int;
}

let free_fraction s =
  let heap = s.ctx.Gc_types.heap in
  float_of_int (Heap.free_regions heap) /. float_of_int (Heap.total_regions heap)

let resume_waiters s =
  let pending = Vec.to_list s.waiters in
  Vec.clear s.waiters;
  List.iter (fun (th, cont) -> Engine.resume s.ctx.Gc_types.engine th cont) pending

let enqueue_waiter s th cont =
  Engine.park s.ctx.Gc_types.engine th;
  Vec.push s.waiters (th, cont)

(* Pause broker handed to the cycle driver: in degenerated mode the pause
   is already open (or opening), so phase transitions run immediately and
   ownership of the single open pause stays with the degeneration logic. *)
let pause_broker s reason body =
  if s.degenerated || Engine.stop_requested s.ctx.Gc_types.engine then body (fun () -> ())
  else
    Engine.request_stop s.ctx.Gc_types.engine ~reason:("Shenandoah " ^ reason) (fun () ->
        body (fun () -> Engine.release_stop s.ctx.Gc_types.engine))

(* The overhead limit counts only full compactions that freed almost
   nothing: paced / degenerated cycles are Shenandoah's normal (if very
   slow) operating mode under pressure — the paper's xalan pathology. *)
let note_full_compaction s =
  if free_fraction s < 0.02 then s.low_free_streak <- s.low_free_streak + 1
  else s.low_free_streak <- 0;
  if s.low_free_streak >= 3 then
    s.ctx.Gc_types.oom "Shenandoah: GC overhead limit exceeded (heap too small)"

let note_degeneration s =
  s.degenerated <- true;
  let engine = s.ctx.Gc_types.engine in
  let obs = Engine.obs engine in
  Obs.degeneration obs ~time:(Engine.now engine)
    ~reason_id:(Obs.intern obs "Shenandoah degenerated")

(* Run [k] once we own an open pause: immediately if one is open, deferred
   to the pause-open callback if ours is still stopping, or by requesting a
   fresh one. *)
let when_paused s k =
  let engine = s.ctx.Gc_types.engine in
  if Engine.stw_active engine then k ()
  else if Engine.stop_requested engine then begin
    assert (s.degenerated && s.on_pause_open = None);
    s.on_pause_open <- Some k
  end
  else begin
    note_degeneration s;
    Engine.request_stop engine ~reason:"Shenandoah degenerated" (fun () -> k ())
  end

let handle_pause_open s () =
  match s.on_pause_open with
  | Some k ->
      s.on_pause_open <- None;
      k ()
  | None -> ()

let end_cycle s ~evac_failed =
  let engine = s.ctx.Gc_types.engine in
  let heap = s.ctx.Gc_types.heap in
  let wrap_up () = resume_waiters s in
  let release_and_wrap_up () =
    s.degenerated <- false;
    Engine.release_stop engine;
    wrap_up ()
  in
  let no_progress =
    s.degenerated && Heap.free_regions heap <= max 2 s.free_at_cycle_start
  in
  if evac_failed || no_progress then
    (* The cycle could not reclaim enough: full mark-compact under a
       pause. *)
    when_paused s (fun () ->
        Full_compact.run s.ctx ~pool:s.pool ~on_done:(fun (_ : Full_compact.result) ->
            s.full_collections <- s.full_collections + 1;
            note_full_compaction s;
            if Heap.free_regions heap = 0 then
              s.ctx.Gc_types.oom "Shenandoah: full GC freed no memory"
            else release_and_wrap_up ()))
  else if s.degenerated then when_paused s release_and_wrap_up
  else wrap_up ()

let debug = Sys.getenv_opt "GCR_DEBUG" <> None

let start_cycle s =
  if s.degenerated then s.degenerated_collections <- s.degenerated_collections + 1;
  (* re-derive the mutator reserve from live geometry: a sizing controller
     may have grown or shrunk the heap since the last cycle *)
  Heap.set_alloc_reserve s.ctx.Gc_types.heap
    (max 2 (Heap.total_regions s.ctx.Gc_types.heap / 10));
  let free_before = Heap.free_regions s.ctx.Gc_types.heap in
  s.free_at_cycle_start <- free_before;
  Conc_cycle.start s.cycle
    ~pause:(pause_broker s)
    ~on_done:(fun ~evac_failed ->
      if debug then
        Printf.eprintf "[shen] cycle %d: free %d -> %d (degen=%b evac_failed=%b waiters=%d)\n%!"
          (Conc_cycle.cycles_completed s.cycle) free_before
          (Heap.free_regions s.ctx.Gc_types.heap)
          s.degenerated evac_failed (Vec.length s.waiters);
      end_cycle s ~evac_failed)

let cycle_active s =
  match Conc_cycle.phase s.cycle with
  | Conc_cycle.Idle -> false
  | Conc_cycle.Marking | Conc_cycle.Evacuating | Conc_cycle.Updating -> true

let make (ctx : Gc_types.ctx) config =
  Heap.set_alloc_reserve ctx.Gc_types.heap
    (max 2 (Heap.total_regions ctx.Gc_types.heap / 10));
  let pool = Worker_pool.create ctx ~count:config.conc_workers ~name:"Shenandoah" in
  let cycle =
    Conc_cycle.create ctx ~pool ~garbage_threshold:config.garbage_threshold
      ~reserve_regions:(fun () -> max 2 (Heap.total_regions ctx.Gc_types.heap / 20))
      ~concurrent_copy:true ()
  in
  let s =
    {
      ctx;
      config;
      cycle;
      pool;
      waiters = Vec.create ();
      degenerated = false;
      on_pause_open = None;
      low_free_streak = 0;
      free_at_cycle_start = 0;
      full_collections = 0;
      degenerated_collections = 0;
      stalls = 0;
    }
  in
  let engine = ctx.Gc_types.engine in
  let after_refill th ~cont =
    if (not (cycle_active s)) && (not (Engine.stop_requested engine))
       && (not (Worker_pool.busy pool))
       && free_fraction s < config.trigger_free_fraction
    then begin
      start_cycle s;
      cont ()
    end
    else if cycle_active s && free_fraction s < config.pace_free_fraction then begin
      (* Pacing: tax this allocation with a stall proportional to how far
         behind reclamation is.  Sleeping threads burn wall time but no
         cycles. *)
      s.stalls <- s.stalls + 1;
      let deficit = 1.0 -. (free_fraction s /. config.pace_free_fraction) in
      let stall =
        config.pace_stall_cycles
        + int_of_float (deficit *. float_of_int (8 * config.pace_stall_cycles))
      in
      Obs.pacing_stall (Engine.obs engine) ~time:(Engine.now engine)
        ~tid:(Engine.thread_id th) ~cycles:stall;
      Engine.stall engine th ~cycles:stall cont
    end
    else cont ()
  in
  let on_out_of_regions th ~retry =
    enqueue_waiter s th retry;
    if Engine.stop_requested engine || s.degenerated then
      (* A pause is already in flight; once it completes and frees memory
         the waiter retries. *)
      ()
    else if cycle_active s then begin
      (* Degenerated GC: finish the in-flight cycle stop-the-world. *)
      note_degeneration s;
      s.degenerated_collections <- s.degenerated_collections + 1;
      Engine.request_stop engine ~reason:"Shenandoah degenerated" (handle_pause_open s)
    end
    else if Worker_pool.busy pool then
      (* The previous cycle is terminating its last phase; its end-of-cycle
         hook will resume the waiter. *)
      ()
    else begin
      (* No cycle running and the heap is full: run a whole cycle inside a
         pause. *)
      note_degeneration s;
      Engine.request_stop engine ~reason:"Shenandoah degenerated" (fun () ->
          handle_pause_open s ();
          start_cycle s)
    end
  in
  let read_barrier () =
    let c = ctx.Gc_types.cost in
    match Conc_cycle.phase cycle with
    | Conc_cycle.Evacuating | Conc_cycle.Updating ->
        c.Cost_model.lvb_idle + (c.Cost_model.lvb_slow / 4)
    | Conc_cycle.Idle | Conc_cycle.Marking -> c.Cost_model.lvb_idle
  in
  let write_barrier () =
    let c = ctx.Gc_types.cost in
    match Conc_cycle.phase cycle with
    | Conc_cycle.Marking -> c.Cost_model.satb_active
    | Conc_cycle.Idle | Conc_cycle.Evacuating | Conc_cycle.Updating -> c.Cost_model.satb_idle
  in
  {
    Gc_types.name = "Shenandoah";
    read_barrier;
    write_barrier;
    on_alloc = (fun o -> Conc_cycle.mark_new_object cycle o);
    on_pointer_write =
      (fun ~src:_ ~old_target ~new_target:_ -> Conc_cycle.satb_publish cycle old_target);
    after_refill;
    on_out_of_regions;
    stats =
      (fun () ->
        {
          Gc_types.collections = Conc_cycle.cycles_completed cycle;
          full_collections = s.full_collections + s.degenerated_collections;
          words_copied = Conc_cycle.words_copied cycle;
          objects_marked = Conc_cycle.objects_marked cycle;
          stalls = s.stalls;
        });
  }
