(** Shenandoah: non-generational concurrent mark + concurrent evacuation.

    Collection cycles (shared driver, {!Conc_cycle}) are triggered by a
    free-headroom heuristic.  Mutators pay an SATB write barrier while
    marking and an elevated load barrier while evacuation/update is in
    flight.  Under allocation pressure it exhibits the paper's two
    pathological modes:

    - {e pacing}: when free memory falls low during a cycle, allocating
      threads are stalled (consuming wall-clock time but no cycles);
    - {e degenerated GC}: when allocation fails outright, the world stops
      and the in-flight cycle completes inside the pause; if even that
      cannot free memory, a full mark-compact runs. *)

type config = {
  conc_workers : int;
  trigger_free_fraction : float;  (** start a cycle below this free share *)
  pace_free_fraction : float;  (** pace allocators below this free share *)
  pace_stall_cycles : int;  (** base stall per paced allocation *)
  garbage_threshold : float;
}

val default_config : cpus:int -> config

val make : Gc_types.ctx -> config -> Gc_types.t
