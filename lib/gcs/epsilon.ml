let make (ctx : Gc_types.ctx) : Gc_types.t =
  {
    name = "Epsilon";
    read_barrier = (fun () -> 0);
    write_barrier = (fun () -> 0);
    on_alloc = ignore;
    on_pointer_write = (fun ~src:_ ~old_target:_ ~new_target:_ -> ());
    after_refill = (fun _th ~cont -> cont ());
    on_out_of_regions =
      (fun _th ~retry:_ -> ctx.oom "Epsilon never collects and the heap is exhausted");
    stats = (fun () -> Gc_types.no_stats);
  }
