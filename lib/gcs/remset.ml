module Heap = Gcr_heap.Heap
module Region = Gcr_heap.Region
module Obj_model = Gcr_heap.Obj_model
module Vec = Gcr_util.Vec

type t = {
  heap : Heap.t;
  entries : Obj_model.id Vec.t;
}

let create heap = { heap; entries = Vec.create () }

let remember t (o : Obj_model.t) =
  if not o.Obj_model.remembered then begin
    o.Obj_model.remembered <- true;
    Vec.push t.entries o.Obj_model.id
  end

let iter t f = Vec.iter f t.entries

let size t = Vec.length t.entries

let is_young t (o : Obj_model.t) =
  match (Heap.region t.heap o.Obj_model.region).Region.space with
  | Region.Eden | Region.Survivor -> true
  | Region.Free | Region.Old -> false

let points_young t target =
  (not (Obj_model.is_null target))
  && match Heap.find t.heap target with None -> false | Some child -> is_young t child

let rebuild t ~extra =
  let previous = Vec.to_list t.entries in
  Vec.clear t.entries;
  let reconsider id =
    match Heap.find t.heap id with
    | None -> ()
    | Some o ->
        o.Obj_model.remembered <- false;
        if Array.exists (points_young t) o.Obj_model.fields then remember t o
  in
  List.iter reconsider previous;
  List.iter reconsider extra

let clear t =
  Vec.iter
    (fun id ->
      match Heap.find t.heap id with
      | None -> ()
      | Some o -> o.Obj_model.remembered <- false)
    t.entries;
  Vec.clear t.entries
