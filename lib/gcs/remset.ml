module Heap = Gcr_heap.Heap
module Region = Gcr_heap.Region
module Obj_model = Gcr_heap.Obj_model
module Vec = Gcr_util.Vec

type t = {
  heap : Heap.t;
  entries : Obj_model.id Vec.t;
}

let create heap = { heap; entries = Vec.create () }

let remember t id =
  if not (Heap.obj_remembered t.heap id) then begin
    Heap.set_obj_remembered t.heap id true;
    Vec.push t.entries id
  end

let iter t f = Vec.iter f t.entries

let size t = Vec.length t.entries

let is_young t id =
  match Heap.obj_space t.heap id with
  | Region.Eden | Region.Survivor -> true
  | Region.Free | Region.Old -> false

let points_young t target =
  (not (Obj_model.is_null target)) && Heap.is_live t.heap target && is_young t target

let rebuild t ~extra =
  let previous = Vec.to_list t.entries in
  Vec.clear t.entries;
  let reconsider id =
    if Heap.is_live t.heap id then begin
      Heap.set_obj_remembered t.heap id false;
      if Obj_model.exists_fields (Heap.store t.heap) id (points_young t) then remember t id
    end
  in
  List.iter reconsider previous;
  List.iter reconsider extra

let clear t =
  Vec.iter
    (fun id -> if Heap.is_live t.heap id then Heap.set_obj_remembered t.heap id false)
    t.entries;
  Vec.clear t.entries
