module Heap = Gcr_heap.Heap
module Region = Gcr_heap.Region
module Obj_model = Gcr_heap.Obj_model
module Allocator = Gcr_heap.Allocator
module Engine = Gcr_engine.Engine
module Vec = Gcr_util.Vec
module Cost_model = Gcr_mach.Cost_model
module Event = Gcr_obs.Event

type pause_info = {
  pending_decrements : int;
  pinned : Obj_model.id list;
  rc_of : Obj_model.id -> int;
}

type config = {
  rc_workers : int;
  trace_workers : int;
  trigger_free_fraction : float;
  garbage_threshold : float;
  debug : (pause_info -> unit) option;
}

let default_config ~cpus =
  {
    rc_workers = 1;
    trace_workers = max 1 (cpus / 4);
    trigger_free_fraction = 0.35;
    garbage_threshold = 0.25;
    debug = None;
  }

(* Deferred RC buffers hold (id, birth-serial) pairs flattened into int
   vecs.  Ids are recycled across pauses, so an entry is applied only if
   the id still names the object it was logged against: live and same
   serial.  Stale entries are skipped (they still cost a processing
   cycle, as a real drain would pay to examine them). *)
type state = {
  ctx : Gc_types.ctx;
  config : config;
  store : Obj_model.store;
  rc_pool : Worker_pool.t;  (** STW RC-update pause phases *)
  trace_pool : Worker_pool.t;  (** backup concurrent cycle trace *)
  waiters : (Engine.thread * (unit -> unit)) Vec.t;
  mutable gc_pending : bool;
  mutable live_census_done : bool;
      (** set at the first pause, after recounting [Region.live_words] from
          the residents.  Setup-time allocations (the long-lived segment
          spine) bypass [on_alloc], so the incremental accounting only
          becomes exact once this census has run *)
  mutable eden_since_pause : int;
  mutable pause_budget : int;
  mutable low_free_streak : int;
  inc_buf : int Vec.t;  (** increments logged by the write barrier *)
  dec_queue : int Vec.t;  (** deferred decrements (worklist during drains) *)
  births : int Vec.t;  (** objects allocated since the last pause *)
  mutable pins_cur : int Vec.t;  (** roots pinned by the current pause *)
  mutable pins_prev : int Vec.t;  (** previous pause's pins, to unpin *)
  dirty_regions : bool array;
      (** regions that received in-place frees this pause; their object
          vecs are compacted before the pause ends (id recycling would
          otherwise alias the stale entries) *)
  (* backup tracing cycle for cyclic garbage *)
  mutable cycle_session : int;  (** bumped to cancel in-flight trace work *)
  mutable cycle_marking : bool;
  mutable cycle_tracer : Tracer.t option;
  mutable cycle_ready : bool;  (** concurrent drain done; finalize at next pause *)
  (* per-pause cost accumulators *)
  mutable pause_rc_ops : int;
  mutable pause_freed : int;
  (* stats *)
  mutable collections : int;
  mutable full_collections : int;
  mutable words_copied : int;
  mutable objects_marked : int;
  mutable stalls : int;
}

let slice_budget = 64

let one_shot_cost cost =
  let remaining = ref cost in
  fun ~worker:_ ->
    let c = !remaining in
    remaining := 0;
    c

let root_scan_cost nroots = 20 * nroots

let heap s = s.ctx.Gc_types.heap

let engine s = s.ctx.Gc_types.engine

let free_fraction s =
  float_of_int (Heap.free_regions (heap s)) /. float_of_int (Heap.total_regions (heap s))

let evac_reserve s = max 2 (Heap.total_regions (heap s) / 20)

let resume_waiters s =
  let pending = Vec.to_list s.waiters in
  Vec.clear s.waiters;
  List.iter (fun (th, cont) -> Engine.resume (engine s) th cont) pending

let enqueue_waiter s th cont =
  Engine.park (engine s) th;
  Vec.push s.waiters (th, cont)

let run_phase_opt s phase cost k =
  if cost <= 0 then k ()
  else Worker_pool.run_phase s.rc_pool ~phase ~work:(one_shot_cost cost) ~on_done:k

(* An entry is current iff the id still names the object it was logged
   against. *)
let[@inline] entry_valid s id ser =
  Obj_model.is_live s.store id && Obj_model.serial s.store id = ser

let[@inline] push_entry q store id =
  Vec.push q id;
  Vec.push q (Obj_model.serial store id)

(* Free one object in place: its region keeps the garbage words (what
   fragmentation-driven evacuation later reclaims) and is flagged for
   object-vec compaction; the object's out-edges become deferred
   decrements. *)
let free_one s id =
  let store = s.store in
  let size = Obj_model.size store id in
  let ridx = Obj_model.region store id in
  let r = Heap.region (heap s) ridx in
  r.Region.live_words <- r.Region.live_words - size;
  s.dirty_regions.(ridx) <- true;
  Obj_model.iter_fields store id (fun child ->
      if (not (Obj_model.is_null child)) && Obj_model.is_live store child then
        push_entry s.dec_queue store child);
  Heap.free_object (heap s) id;
  s.pause_freed <- s.pause_freed + 1

(* ---- pause phase 1: root pinning ---- *)

(* Rotate the pin buffers and pin this pause's roots: each root gets +1 so
   nothing the mutator holds directly can reach rc 0; last pause's pins
   are pushed as decrements in phase 3. *)
let scan_roots s =
  let store = s.store in
  let tmp = s.pins_prev in
  s.pins_prev <- s.pins_cur;
  s.pins_cur <- tmp;
  Vec.clear s.pins_cur;
  let nroots = ref 0 in
  !(s.ctx.Gc_types.iter_roots) (fun id ->
      if Obj_model.is_live store id then begin
        incr nroots;
        Obj_model.set_rc store id (Obj_model.rc store id + 1);
        push_entry s.pins_cur store id
      end);
  !nroots

(* ---- pause phase 2: apply buffered increments ---- *)

(* All increments logged since the last pause are applied before any
   decrement is processed, so a count can only pass through zero at its
   true final value. *)
let apply_incs s =
  let store = s.store in
  let q = s.inc_buf in
  let n = Vec.length q in
  let i = ref 0 in
  while !i < n do
    let id = Vec.get q !i and ser = Vec.get q (!i + 1) in
    i := !i + 2;
    if entry_valid s id ser then Obj_model.set_rc store id (Obj_model.rc store id + 1)
  done;
  Vec.clear q;
  n / 2

(* ---- pause phase 3: drain deferred decrements ---- *)

let queue_prev_pins s =
  let q = s.pins_prev in
  let n = Vec.length q in
  let i = ref 0 in
  while !i < n do
    Vec.push s.dec_queue (Vec.get q !i);
    Vec.push s.dec_queue (Vec.get q (!i + 1));
    i := !i + 2
  done;
  Vec.clear q

let drain_decs s =
  let store = s.store in
  let q = s.dec_queue in
  (* the queue grows as frees cascade; iterate by index, then clear *)
  let i = ref 0 in
  while !i < Vec.length q do
    let id = Vec.get q !i and ser = Vec.get q (!i + 1) in
    i := !i + 2;
    s.pause_rc_ops <- s.pause_rc_ops + 1;
    if entry_valid s id ser then begin
      let r = Obj_model.rc store id - 1 in
      Obj_model.set_rc store id r;
      if r <= 0 then free_one s id
    end
  done;
  Vec.clear q

(* Born-dead processing: an object allocated since the last pause that
   ended up with rc 0 after increments and pins was never reachable — free
   it now, cascading, to a fixpoint (one born-dead object can drop another
   birth to zero). *)
let process_births s =
  let store = s.store in
  let progress = ref true in
  while !progress do
    progress := false;
    let b = s.births in
    let n = Vec.length b in
    let i = ref 0 in
    while !i < n do
      let id = Vec.get b !i and ser = Vec.get b (!i + 1) in
      i := !i + 2;
      if entry_valid s id ser && Obj_model.rc store id = 0 then begin
        free_one s id;
        progress := true
      end
    done;
    if !progress then drain_decs s
  done;
  Vec.clear s.births

(* ---- pause phase 4: backup-cycle finalization ---- *)

let reset_cycle s =
  s.cycle_session <- s.cycle_session + 1;
  s.cycle_marking <- false;
  s.cycle_tracer <- None;
  s.cycle_ready <- false

(* Final STW trace drain (SATB stragglers and fresh roots), then sweep:
   every live object the completed trace did not reach is cyclic (or
   trace-invisible floating) garbage that pure RC can never reclaim.
   Sweeping frees in place and defers decrements like any other free. *)
let finalize_cycle s k =
  match s.cycle_tracer with
  | Some tracer when s.cycle_marking && s.cycle_ready ->
      !(s.ctx.Gc_types.iter_roots) (Tracer.add_root tracer);
      Worker_pool.run_phase s.rc_pool ~phase:Event.Cycle_trace
        ~work:(fun ~worker:_ -> Tracer.drain tracer ~budget:slice_budget)
        ~on_done:(fun () ->
          s.objects_marked <- s.objects_marked + Tracer.objects_marked tracer;
          let h = heap s in
          let cost = s.ctx.Gc_types.cost in
          let freed_before = s.pause_freed in
          let ops_before = s.pause_rc_ops in
          let regions_swept = ref 0 in
          Heap.iter_regions
            (fun r ->
              if
                (not (Region.space_equal r.Region.space Region.Free))
                && r.Region.used_words > 0
              then begin
                incr regions_swept;
                Heap.iter_resident_objects h r (fun id ->
                    if not (Heap.is_marked h id) then free_one s id)
              end)
            h;
          drain_decs s;
          reset_cycle s;
          let sweep_cost =
            ((s.pause_freed - freed_before) * cost.Cost_model.mark_per_object)
            + ((s.pause_rc_ops - ops_before) * cost.Cost_model.rc_update_per_entry)
            + (!regions_swept * cost.Cost_model.sweep_per_region)
          in
          run_phase_opt s Event.Sweep sweep_cost k)
  | _ -> k ()

(* ---- pause phase 5: opportunistic evacuation ---- *)

(* Regions whose words are entirely dead are released outright (LXR's
   block recycling); fragmented regions — garbage above the threshold
   share of their used words — are evacuated into old-space targets,
   garbage-richest (least live) first, under a rolling to-space budget as
   in [Conc_cycle.select_cset]. *)
let do_evacuation s =
  let h = heap s in
  let store = s.store in
  let cost_model = s.ctx.Gc_types.cost in
  let region_words = Heap.region_words h in
  Vec.iter Allocator.retire s.ctx.Gc_types.allocators;
  let cost = ref 0 in
  Heap.iter_regions
    (fun r ->
      if
        (not (Region.space_equal r.Region.space Region.Free))
        && (not r.Region.pinned)
        && r.Region.live_words <= 0
      then begin
        Heap.release_region h r;
        s.dirty_regions.(r.Region.index) <- false;
        cost := !cost + cost_model.Cost_model.sweep_per_region
      end)
    h;
  let candidates = ref [] in
  Heap.iter_regions
    (fun r ->
      if
        (not (Region.space_equal r.Region.space Region.Free))
        && (not r.Region.pinned)
        && r.Region.used_words > 0
      then begin
        let garbage = r.Region.used_words - r.Region.live_words in
        if
          float_of_int garbage
          > s.config.garbage_threshold *. float_of_int r.Region.used_words
        then candidates := r :: !candidates
      end)
    h;
  let by_liveness a b = compare a.Region.live_words b.Region.live_words in
  let sorted = List.sort by_liveness !candidates in
  (* To-space budget: the whole free pool.  The reserve exists precisely to
     guarantee evacuation targets, and the rolling update below credits a
     fully-evacuated source region back, so net free regions never drop. *)
  let budget = ref (Heap.free_regions h * region_words) in
  let cset =
    List.filter
      (fun r ->
        if r.Region.live_words <= !budget then begin
          budget := !budget - r.Region.live_words + region_words;
          true
        end
        else false)
      sorted
  in
  let target = Allocator.create h ~space:Region.Old in
  let evac_failed = ref false in
  List.iter
    (fun (r : Region.t) ->
      if not !evac_failed then begin
        s.dirty_regions.(r.Region.index) <- true;
        let moved_all = ref true in
        Heap.iter_resident_objects h r (fun id ->
            if not !evac_failed then begin
              let size = Obj_model.size store id in
              let rec place () =
                let placed =
                  match Allocator.current_region target with
                  | Some dst -> Heap.move_object h id dst
                  | None -> false
                in
                if placed then begin
                  (match Allocator.current_region target with
                  | Some dst ->
                      dst.Region.live_words <- dst.Region.live_words + size
                  | None -> assert false);
                  r.Region.live_words <- r.Region.live_words - size;
                  s.words_copied <- s.words_copied + size;
                  cost :=
                    !cost
                    + cost_model.Cost_model.copy_per_object
                    + (cost_model.Cost_model.copy_per_word * size)
                end
                else
                  match Allocator.refill target with
                  | Some _ -> place ()
                  | None ->
                      evac_failed := true;
                      moved_all := false
              in
              place ()
            end
            else moved_all := false);
        if !moved_all && not !evac_failed then begin
          Heap.release_region h r;
          s.dirty_regions.(r.Region.index) <- false;
          cost := !cost + cost_model.Cost_model.sweep_per_region
        end
      end)
    cset;
  Allocator.retire target;
  !cost

(* ---- pause bookkeeping and wrap-up ---- *)

let compact_dirty s =
  let h = heap s in
  for i = 0 to Array.length s.dirty_regions - 1 do
    if s.dirty_regions.(i) then begin
      s.dirty_regions.(i) <- false;
      let r = Heap.region h i in
      if not (Region.space_equal r.Region.space Region.Free) then
        Heap.compact_region_objects h r
    end
  done

(* After a full compaction every RC artifact is stale: buffers refer to
   swept objects and counts predate the sweep.  Rebuild from the ground
   truth — recount in-edges over all residents and re-pin the roots. *)
let rebuild_rc s =
  reset_cycle s;
  Vec.clear s.inc_buf;
  Vec.clear s.dec_queue;
  Vec.clear s.births;
  Vec.clear s.pins_prev;
  Vec.clear s.pins_cur;
  Array.fill s.dirty_regions 0 (Array.length s.dirty_regions) false;
  let h = heap s in
  let store = s.store in
  Heap.iter_regions
    (fun r ->
      r.Region.live_words <- 0;
      Heap.iter_resident_objects h r (fun id -> Obj_model.set_rc store id 0))
    h;
  Heap.iter_regions
    (fun r ->
      Heap.iter_resident_objects h r (fun id ->
          r.Region.live_words <- r.Region.live_words + Obj_model.size store id;
          Obj_model.iter_fields store id (fun child ->
              if (not (Obj_model.is_null child)) && Obj_model.is_live store child then
                Obj_model.set_rc store child (Obj_model.rc store child + 1))))
    h;
  !(s.ctx.Gc_types.iter_roots) (fun id ->
      if Obj_model.is_live store id then begin
        Obj_model.set_rc store id (Obj_model.rc store id + 1);
        push_entry s.pins_cur store id
      end)

let maybe_start_cycle s =
  if
    (not s.cycle_marking)
    && (not (Worker_pool.busy s.trace_pool))
    && free_fraction s < s.config.trigger_free_fraction
  then begin
    s.cycle_session <- s.cycle_session + 1;
    let h = heap s in
    ignore (Heap.begin_mark_epoch h);
    let tracer =
      Tracer.create s.ctx ~use_scratch:false ~update_region_live:false
        ~should_visit:(fun _ -> true)
        ~on_mark:(fun _ -> 0)
    in
    !(s.ctx.Gc_types.iter_roots) (Tracer.add_root tracer);
    s.cycle_tracer <- Some tracer;
    s.cycle_marking <- true;
    s.cycle_ready <- false;
    Some (s.cycle_session, tracer)
  end
  else None

let launch_concurrent_drain s (session, tracer) =
  let penalty = s.ctx.Gc_types.cost.Cost_model.concurrent_mark_penalty_pct in
  Worker_pool.run_phase s.trace_pool ~phase:Event.Cycle_trace
    ~work:(fun ~worker:_ ->
      if s.cycle_session <> session then 0
      else begin
        let c = Tracer.drain tracer ~budget:slice_budget in
        c + (c * penalty / 100)
      end)
    ~on_done:(fun () ->
      if s.cycle_session = session && s.cycle_marking then s.cycle_ready <- true)

let fire_debug s =
  match s.config.debug with
  | None -> ()
  | Some hook ->
      let store = s.store in
      let pinned = ref [] in
      let n = Vec.length s.pins_cur in
      let i = ref (n - 2) in
      while !i >= 0 do
        pinned := Vec.get s.pins_cur !i :: !pinned;
        i := !i - 2
      done;
      hook
        {
          pending_decrements = Vec.length s.dec_queue / 2;
          pinned = List.rev !pinned;
          rc_of = (fun id -> Obj_model.rc store id);
        }

let normal_end s =
  let h = heap s in
  s.collections <- s.collections + 1;
  Heap.log_collection h;
  s.eden_since_pause <- 0;
  let headroom = Heap.free_regions h - evac_reserve s in
  s.pause_budget <- max 2 (headroom / 2);
  (* Never reserve the whole free pool: a starving mutator must be able to
     take at least one region after a pause, or starved pauses would
     full-compact the same heap state forever. *)
  Heap.set_alloc_reserve h (min (evac_reserve s) (max 0 (Heap.free_regions h - 1)));
  if Heap.free_regions h * 50 < Heap.total_regions h then
    s.low_free_streak <- s.low_free_streak + 1
  else s.low_free_streak <- 0;
  if s.low_free_streak >= 4 then
    s.ctx.Gc_types.oom "LXR: GC overhead limit exceeded (heap too small)"
  else begin
    fire_debug s;
    let started = maybe_start_cycle s in
    Engine.release_stop (engine s);
    s.gc_pending <- false;
    resume_waiters s;
    match started with
    | Some c -> launch_concurrent_drain s c
    | None -> ()
  end

let finish_pause s ~starved =
  compact_dirty s;
  let h = heap s in
  if starved && Heap.free_regions h <= Heap.alloc_reserve h then begin
    (* The pause freed no usable region for the starving mutator: fall
       back to the shared full mark-compact, then rebuild RC state from
       scratch. *)
    reset_cycle s;
    Full_compact.run s.ctx ~pool:s.rc_pool
      ~on_done:(fun (res : Full_compact.result) ->
        s.full_collections <- s.full_collections + 1;
        s.objects_marked <- s.objects_marked + res.Full_compact.objects_marked;
        rebuild_rc s;
        if Heap.free_regions h = 0 then
          s.ctx.Gc_types.oom "LXR: full GC freed no memory"
        else normal_end s)
  end
  else normal_end s

(* One-time ground-truth recount of [Region.live_words]: objects allocated
   during run setup (before the mutators start) never pass through
   [on_alloc], so the incremental balance starts understated.  Frees only
   happen inside pauses, so recounting at the first pause makes the
   incremental accounting exact from here on. *)
let ensure_live_census s =
  if not s.live_census_done then begin
    s.live_census_done <- true;
    let h = heap s in
    let store = s.store in
    Heap.iter_regions
      (fun r ->
        if not (Region.space_equal r.Region.space Region.Free) then begin
          r.Region.live_words <- 0;
          Heap.iter_resident_objects h r (fun id ->
              r.Region.live_words <- r.Region.live_words + Obj_model.size store id)
        end)
      h
  end

let run_pause s ~starved =
  let cost = s.ctx.Gc_types.cost in
  s.pause_rc_ops <- 0;
  s.pause_freed <- 0;
  ensure_live_census s;
  let nroots = scan_roots s in
  run_phase_opt s Event.Root_scan (root_scan_cost nroots) (fun () ->
      let inc_entries = apply_incs s in
      run_phase_opt s Event.Rc_increment
        (inc_entries * cost.Cost_model.rc_update_per_entry)
        (fun () ->
          queue_prev_pins s;
          drain_decs s;
          process_births s;
          let dec_cost =
            (s.pause_rc_ops * cost.Cost_model.rc_update_per_entry)
            + (s.pause_freed * cost.Cost_model.mark_per_object)
          in
          run_phase_opt s Event.Decrement_drain dec_cost (fun () ->
              finalize_cycle s (fun () ->
                  let evac_cost = do_evacuation s in
                  run_phase_opt s Event.Evacuate evac_cost (fun () ->
                      finish_pause s ~starved)))))

let trigger_pause s th cont ~starved ~reason =
  s.gc_pending <- true;
  enqueue_waiter s th cont;
  Engine.request_stop (engine s) ~reason (fun () -> run_pause s ~starved)

let make (ctx : Gc_types.ctx) config =
  let h = ctx.Gc_types.heap in
  let total = Heap.total_regions h in
  let s =
    {
      ctx;
      config;
      store = Heap.store h;
      rc_pool = Worker_pool.create ctx ~count:config.rc_workers ~name:"LXR";
      trace_pool = Worker_pool.create ctx ~count:config.trace_workers ~name:"LXR";
      waiters = Vec.create ();
      gc_pending = false;
      live_census_done = false;
      eden_since_pause = 0;
      pause_budget = max 2 (total / 4);
      low_free_streak = 0;
      inc_buf = Vec.create ();
      dec_queue = Vec.create ();
      births = Vec.create ();
      pins_cur = Vec.create ();
      pins_prev = Vec.create ();
      dirty_regions = Array.make total false;
      cycle_session = 0;
      cycle_marking = false;
      cycle_tracer = None;
      cycle_ready = false;
      pause_rc_ops = 0;
      pause_freed = 0;
      collections = 0;
      full_collections = 0;
      words_copied = 0;
      objects_marked = 0;
      stalls = 0;
    }
  in
  Heap.set_alloc_reserve h (evac_reserve s);
  let engine = ctx.Gc_types.engine in
  let store = s.store in
  let busy () = s.gc_pending || Engine.stop_requested engine in
  let after_refill th ~cont =
    s.eden_since_pause <- s.eden_since_pause + 1;
    if busy () then begin
      s.stalls <- s.stalls + 1;
      enqueue_waiter s th cont
    end
    else if
      s.eden_since_pause >= s.pause_budget
      || Heap.free_regions h <= Heap.alloc_reserve h + 1
    then trigger_pause s th cont ~starved:false ~reason:"LXR rc-update"
    else cont ()
  in
  let on_out_of_regions th ~retry =
    if busy () then begin
      s.stalls <- s.stalls + 1;
      enqueue_waiter s th retry
    end
    else trigger_pause s th retry ~starved:true ~reason:"LXR allocation failure"
  in
  let on_alloc id =
    let r = Heap.region h (Obj_model.region store id) in
    r.Region.live_words <- r.Region.live_words + Obj_model.size store id;
    push_entry s.births store id;
    if s.cycle_marking then Heap.set_marked h id
  in
  let on_pointer_write ~src ~old_target ~new_target =
    if not (Obj_model.is_null new_target) then push_entry s.inc_buf store new_target;
    if not (Obj_model.is_null old_target) then begin
      push_entry s.dec_queue store old_target;
      (* SATB: the overwritten reference may be the last path the backup
         trace would have taken *)
      match s.cycle_tracer with
      | Some tracer when s.cycle_marking -> Tracer.add_root tracer old_target
      | _ -> ()
    end;
    Obj_model.set_dirty store src s.collections
  in
  {
    Gc_types.name = "LXR";
    read_barrier = (fun () -> 0);
    write_barrier = (fun () -> ctx.Gc_types.cost.Cost_model.rc_barrier);
    on_alloc;
    on_pointer_write;
    after_refill;
    on_out_of_regions;
    stats =
      (fun () ->
        {
          Gc_types.collections = s.collections;
          full_collections = s.full_collections;
          words_copied = s.words_copied;
          objects_marked = s.objects_marked;
          stalls = s.stalls;
        });
  }
