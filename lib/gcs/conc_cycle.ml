module Heap = Gcr_heap.Heap
module Region = Gcr_heap.Region
module Obj_model = Gcr_heap.Obj_model
module Allocator = Gcr_heap.Allocator
module Vec = Gcr_util.Vec
module Cost_model = Gcr_mach.Cost_model

type phase = Idle | Marking | Evacuating | Updating

type t = {
  ctx : Gc_types.ctx;
  pool : Worker_pool.t;
  garbage_threshold : float;
  reserve_regions : unit -> int;
      (** re-evaluated at cset selection so controller-driven heap resizes
          are seen by the very next cycle *)
  concurrent_copy : bool;
  old_only : bool;  (** restrict the cset to old regions (generational mode) *)
  mutable phase : phase;
  mutable in_flight : bool;  (** set at [start], cleared when the cycle ends
                                 (the phase alone misses the window before
                                 the init-mark pause opens) *)
  mutable tracer : Tracer.t option;  (** present while a cycle is in flight *)
  mutable cycles : int;
  mutable words_copied : int;
  mutable objects_marked : int;
}

let slice_budget = 64

let update_refs_chunk = 256  (** edges fixed up per worker slice *)

let create ctx ~pool ~garbage_threshold ~reserve_regions ~concurrent_copy ?(old_only = false) () =
  {
    ctx;
    pool;
    garbage_threshold;
    reserve_regions;
    concurrent_copy;
    old_only;
    phase = Idle;
    in_flight = false;
    tracer = None;
    cycles = 0;
    words_copied = 0;
    objects_marked = 0;
  }

let phase t = t.phase

let cycles_completed t = t.cycles

let words_copied t = t.words_copied

let objects_marked t = t.objects_marked

let satb_publish t id =
  match (t.phase, t.tracer) with
  | Marking, Some tracer -> Tracer.add_root tracer id
  | (Marking | Idle | Evacuating | Updating), _ -> ()

let mark_new_object t id =
  match t.phase with
  | Marking -> Heap.set_marked t.ctx.Gc_types.heap id
  | Idle | Evacuating | Updating -> ()

(* Greedy cset selection: garbage-richest regions first, bounded by the
   copy headroom the free pool can provide. *)
let select_cset t =
  let heap = t.ctx.Gc_types.heap in
  let region_words = Heap.region_words heap in
  let candidates = ref [] in
  let eligible (r : Region.t) =
    match r.Region.space with
    | Region.Old -> true
    | Region.Eden | Region.Survivor -> not t.old_only
    | Region.Free -> false
  in
  Heap.iter_regions
    (fun r ->
      match eligible r with
      | true ->
          if (not r.Region.pinned) && r.Region.used_words > 0 then begin
            let garbage = r.Region.used_words - r.Region.live_words in
            (* Relative to used words, not region capacity: retired
               allocation buffers leave many thinly used regions whose
               absolute garbage is small but which would otherwise
               accumulate as permanent waste. *)
            if float_of_int garbage > t.garbage_threshold *. float_of_int r.Region.used_words
            then candidates := r :: !candidates
          end
      | false -> ())
    heap;
  let by_liveness a b = compare a.Region.live_words b.Region.live_words in
  let sorted = List.sort by_liveness !candidates in
  (* Rolling to-space budget: evacuating a region costs its live words but
     releases the whole region back to the pool, so — processed in
     ascending-liveness order — each garbage-rich region grows the budget
     for the next.  Only the initial headroom is bounded by the free
     pool. *)
  let budget = ref (max 0 (Heap.free_regions heap - t.reserve_regions ()) * region_words) in
  List.filter
    (fun r ->
      if r.Region.live_words <= !budget then begin
        (* copies consume live words; the whole region comes back *)
        budget := !budget - r.Region.live_words + region_words;
        true
      end
      else false)
    sorted

let one_shot_cost cost =
  let remaining = ref cost in
  fun ~worker:_ ->
    let c = !remaining in
    remaining := 0;
    c

let root_scan_cost nroots = 20 * nroots

let start t ~pause ~on_done =
  if t.in_flight then invalid_arg "Conc_cycle.start: cycle in flight";
  t.in_flight <- true;
  let ctx = t.ctx in
  let heap = ctx.Gc_types.heap in
  let finish ~evac_failed =
    t.phase <- Idle;
    t.in_flight <- false;
    t.tracer <- None;
    t.cycles <- t.cycles + 1;
    Heap.log_collection heap;
    on_done ~evac_failed
  in
  pause "init-mark" (fun release ->
      ignore (Heap.begin_mark_epoch heap);
      Heap.iter_regions (fun r -> r.Region.live_words <- 0) heap;
      let tracer =
        Tracer.create ctx ~use_scratch:false ~update_region_live:true
          ~should_visit:(fun _ -> true)
          ~on_mark:(fun _ -> 0)
      in
      t.tracer <- Some tracer;
      t.phase <- Marking;
      let nroots = ref 0 in
      !(ctx.Gc_types.iter_roots) (fun id ->
          incr nroots;
          Tracer.add_root tracer id);
      Worker_pool.run_phase t.pool ~phase:Gcr_obs.Event.Root_scan
        ~work:(one_shot_cost (root_scan_cost !nroots))
        ~on_done:(fun () ->
          release ();
          (* Concurrent marking: SATB publishes keep arriving while this
             phase drains; stragglers are caught at final mark.  Marking
             concurrently is dearer than STW marking. *)
          let penalty = ctx.Gc_types.cost.Cost_model.concurrent_mark_penalty_pct in
          let mark_work ~worker:_ =
            let c = Tracer.drain tracer ~budget:slice_budget in
            c + (c * penalty / 100)
          in
          Worker_pool.run_phase t.pool ~phase:Gcr_obs.Event.Mark ~work:mark_work
            ~on_done:(fun () ->
              pause "final-mark" (fun release ->
                  !(ctx.Gc_types.iter_roots) (Tracer.add_root tracer);
                  Worker_pool.run_phase t.pool ~phase:Gcr_obs.Event.Mark ~work:mark_work
                    ~on_done:(fun () ->
                      t.objects_marked <- t.objects_marked + Tracer.objects_marked tracer;
                      Vec.iter Allocator.retire ctx.Gc_types.allocators;
                      let cset = select_cset t in
                      let target = Allocator.create heap ~space:Region.Old in
                      let evacuator =
                        Evacuator.create ctx ~concurrent:t.concurrent_copy
                          ~choose_target:(fun _ -> target)
                      in
                      List.iter (Evacuator.add_region evacuator) cset;
                      t.phase <- Evacuating;
                      release ();
                      let evac_failed = ref false in
                      let evac_work ~worker:_ =
                        if !evac_failed then 0
                        else
                          try Evacuator.step evacuator ~budget:slice_budget
                          with Evacuator.Evacuation_failure ->
                            evac_failed := true;
                            0
                      in
                      Worker_pool.run_phase t.pool ~phase:Gcr_obs.Event.Evacuate
                        ~work:evac_work ~on_done:(fun () ->
                          Allocator.retire target;
                          t.words_copied <- t.words_copied + Evacuator.words_copied evacuator;
                          if !evac_failed then finish ~evac_failed:true
                          else begin
                            t.phase <- Updating;
                            let per_edge =
                              ctx.Gc_types.cost.Cost_model.update_ref_per_edge
                            in
                            let remaining = ref (Tracer.edges_seen tracer) in
                            let update_work ~worker:_ =
                              if !remaining <= 0 then 0
                              else begin
                                let chunk = min update_refs_chunk !remaining in
                                remaining := !remaining - chunk;
                                chunk * per_edge
                              end
                            in
                            Worker_pool.run_phase t.pool
                              ~phase:Gcr_obs.Event.Update_refs ~work:update_work
                              ~on_done:(fun () -> finish ~evac_failed:false)
                          end))))))
