(** The young-generation copying collection (scavenge), shared by Serial,
    Parallel and G1.

    Must run inside an open pause.  Traces eden+survivor from the workload
    roots and the remembered set; each reached object is copied to a
    survivor region, or promoted to old space once its age reaches
    [tenure_age].  On success the evacuated young regions are released.
    On promotion failure (free pool exhausted mid-copy) the heap is left
    half-scavenged but consistent, and the caller is expected to run the
    full compaction. *)

type result = {
  promo_failed : bool;
  promoted_with_fields : Gcr_heap.Obj_model.id list;
      (** freshly tenured objects that have reference fields — candidates
          for the rebuilt remembered set *)
  objects_copied : int;
  words_copied : int;
}

val run :
  Gc_types.ctx ->
  pool:Worker_pool.t ->
  remset:Remset.t ->
  tenure_age:int ->
  on_mark_young:(Gcr_heap.Obj_model.id -> unit) ->
  on_done:(result -> unit) ->
  unit
(** [on_mark_young] is invoked for every surviving young object before it
    moves (G1 hooks concurrent-marking bookkeeping here; Serial/Parallel
    pass [ignore]). *)
