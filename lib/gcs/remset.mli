(** Remembered set for generational collectors (card-table analogue).

    Holds old-space objects that may contain references into the young
    generation; young collections scan their fields as extra roots.
    Entries are deduplicated with the per-object remembered bit, exactly
    like a dirty card. *)

type t

val create : Gcr_heap.Heap.t -> t

val remember : t -> Gcr_heap.Obj_model.id -> unit
(** Idempotent per object between rebuilds.  The id must be live. *)

val iter : t -> (Gcr_heap.Obj_model.id -> unit) -> unit

val size : t -> int

val rebuild : t -> extra:Gcr_heap.Obj_model.id list -> unit
(** Post-collection filtering: retain (from the current entries plus
    [extra], typically freshly promoted objects) only live objects that
    still reference a young-space object — a card stays dirty while it
    points into the nursery. *)

val clear : t -> unit
(** Drop all entries and reset their dedup bits (after a full collection,
    when no young objects remain). *)
