(** The concurrent collection cycle shared by Shenandoah and ZGC.

    One cycle is: init-mark pause (root scan) → concurrent marking (SATB
    protected) → final-mark pause (root re-scan, drain, collection-set
    selection) → concurrent evacuation → concurrent reference update.
    The caller supplies a {e pause broker}: in normal operation it opens a
    real safepoint; in degenerated mode (the pause is already open because
    allocation failed) it runs the body immediately, which turns the
    remainder of the cycle into stop-the-world work — exactly Shenandoah's
    degenerated GC semantics. *)

type phase =
  | Idle
  | Marking
  | Evacuating
  | Updating

type t

val create :
  Gc_types.ctx ->
  pool:Worker_pool.t ->
  garbage_threshold:float ->
  reserve_regions:(unit -> int) ->
  concurrent_copy:bool ->
  ?old_only:bool ->
  unit ->
  t
(** [garbage_threshold]: regions with more than this fraction of garbage
    enter the cset.  [reserve_regions]: free regions kept out of the
    evacuation budget — a thunk, re-evaluated every cset selection, so a
    heap resized mid-run by a sizing controller is never budgeted against
    stale geometry.  [concurrent_copy]: use the CAS-guarded copy cost.
    [old_only]: restrict the cset to old regions (generational
    Shenandoah leaves the young generation to its scavenges). *)

val phase : t -> phase

val start :
  t ->
  pause:(string -> ((unit -> unit) -> unit) -> unit) ->
  on_done:(evac_failed:bool -> unit) ->
  unit
(** Raises if a cycle is already in flight.  [pause reason body] must open
    a safepoint (or reuse the already-open degenerated pause) and call
    [body release]; [body] calls [release] exactly once when its pause work
    is finished.  [on_done ~evac_failed:true] means to-space was exhausted
    mid-evacuation: the heap is consistent but the cset was not fully
    reclaimed; the caller must fall back to a full collection. *)

val cycles_completed : t -> int

val words_copied : t -> int

val objects_marked : t -> int

val satb_publish : t -> Gcr_heap.Obj_model.id -> unit
(** SATB write-barrier hook: publish an overwritten reference while
    marking is active (no-op otherwise). *)

val mark_new_object : t -> Gcr_heap.Obj_model.id -> unit
(** Allocation hook: objects born during marking are implicitly live. *)
