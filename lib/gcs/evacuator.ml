module Heap = Gcr_heap.Heap
module Region = Gcr_heap.Region
module Obj_model = Gcr_heap.Obj_model
module Allocator = Gcr_heap.Allocator
module Vec = Gcr_util.Vec
module Cost_model = Gcr_mach.Cost_model

exception Evacuation_failure

type t = {
  ctx : Gc_types.ctx;
  concurrent : bool;
  choose_target : Obj_model.id -> Allocator.t;
  queue : Region.t Vec.t;
  mutable queue_pos : int;
  mutable obj_pos : int;  (** cursor into the current region's object vec *)
  mutable words_copied : int;
  mutable objects_copied : int;
  mutable regions_released : int;
}

let create ctx ~concurrent ~choose_target =
  {
    ctx;
    concurrent;
    choose_target;
    queue = Vec.create ();
    queue_pos = 0;
    obj_pos = 0;
    words_copied = 0;
    objects_copied = 0;
    regions_released = 0;
  }

let add_region t (r : Region.t) =
  if r.pinned then invalid_arg "Evacuator.add_region: pinned region";
  Vec.push t.queue r

let finished t = t.queue_pos >= Vec.length t.queue

let copy_cost t size =
  let c = t.ctx.Gc_types.cost in
  let per_object =
    if t.concurrent then c.Cost_model.copy_per_object_concurrent else c.Cost_model.copy_per_object
  in
  per_object + (c.Cost_model.copy_per_word * size)

(* Copy one live resident object out of its region; raises on to-space
   exhaustion. *)
let evacuate_object t id =
  let heap = t.ctx.Gc_types.heap in
  let target = t.choose_target id in
  let rec attempt retried =
    match Allocator.current_region target with
    | Some dst when Heap.move_object heap id dst -> ()
    | Some _ | None ->
        if retried then raise Evacuation_failure
        else begin
          (match Allocator.refill target with
          | None -> raise Evacuation_failure
          | Some _ -> ());
          attempt true
        end
  in
  attempt false;
  Heap.set_obj_age heap id (Heap.obj_age heap id + 1);
  let size = Heap.obj_size heap id in
  t.words_copied <- t.words_copied + size;
  t.objects_copied <- t.objects_copied + 1;
  copy_cost t size

let step t ~budget =
  let heap = t.ctx.Gc_types.heap in
  let cost = ref 0 in
  let processed = ref 0 in
  while !processed < budget && not (finished t) do
    let r = Vec.get t.queue t.queue_pos in
    if t.obj_pos >= Vec.length r.Region.objects then begin
      (* Region fully scanned: everything live has moved out; release it,
         which reclaims the stragglers (dead objects). *)
      Heap.release_region heap r;
      t.regions_released <- t.regions_released + 1;
      t.queue_pos <- t.queue_pos + 1;
      t.obj_pos <- 0;
      cost := !cost + t.ctx.Gc_types.cost.Cost_model.sweep_per_region
    end
    else begin
      let id = Vec.get r.Region.objects t.obj_pos in
      t.obj_pos <- t.obj_pos + 1;
      incr processed;
      if
        Heap.is_live heap id
        && Heap.obj_region heap id = r.Region.index
        && Heap.is_marked heap id
      then cost := !cost + evacuate_object t id
    end
  done;
  !cost

let words_copied t = t.words_copied

let objects_copied t = t.objects_copied

let regions_released t = t.regions_released
