(** A pool of GC worker threads running phases of divisible work.

    A {e phase} is a function that performs a bounded slice of work on the
    host and returns its simulated cost in cycles (0 = no work left).
    Workers repeatedly pull slices and execute them as engine steps;
    per-slice dispatch overhead and a logarithmic termination barrier are
    charged, so multi-worker pools burn more cycles than a single worker
    for the same work — the single-threaded-vs-parallel tradeoff of the
    paper (Section IV-C b).

    Workers are engine threads of kind [Gc_worker]: during a pause their
    cycles are attributed to STW, and outside pauses they contend with
    mutators for CPUs. *)

type t

val create : Gc_types.ctx -> count:int -> name:string -> t
(** [name] tags the pool's phase events with the collector it belongs to. *)

val count : t -> int

val name : t -> string

val busy : t -> bool
(** A phase is currently executing. *)

val run_phase :
  t ->
  phase:Gcr_obs.Event.phase ->
  work:(worker:int -> int) ->
  on_done:(unit -> unit) ->
  unit
(** Start a phase.  [work ~worker] applies a slice of work and returns its
    cost in cycles, or 0 when no work remains.  [on_done] runs once, after
    every worker has passed the termination barrier.  Raises if a phase is
    already in flight.  Each worker emits a [phase] begin event when the
    phase starts and an end event as it passes the termination barrier. *)

val run_phases :
  t ->
  (Gcr_obs.Event.phase * (worker:int -> int)) list ->
  on_done:(unit -> unit) ->
  unit
(** Run several phases back to back (each with its own termination), then
    [on_done]. *)
