(** Shared full-heap stop-the-world mark-compact.

    The fallback collection of Serial, Parallel, G1 and Shenandoah: marks
    everything reachable, sweeps dead objects from the table, then slides
    the survivors into densely packed old regions.  Requires no free-pool
    headroom (compaction works in place), so it always succeeds when the
    live set fits in the heap at all.

    Must be called while a pause is open; the work itself runs on the given
    worker pool (whose cycles are therefore attributed to STW). *)

type result = {
  objects_marked : int;
  words_live : int;
  edges : int;
}

val run : Gc_types.ctx -> pool:Worker_pool.t -> on_done:(result -> unit) -> unit
(** Retires all registered allocators, relabels every surviving region as
    [Old], and leaves the free pool holding all unneeded regions. *)
