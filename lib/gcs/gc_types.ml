type ctx = {
  heap : Gcr_heap.Heap.t;
  engine : Gcr_engine.Engine.t;
  cost : Gcr_mach.Cost_model.t;
  machine : Gcr_mach.Machine.t;
  iter_roots : ((Gcr_heap.Obj_model.id -> unit) -> unit) ref;
  allocators : Gcr_heap.Allocator.t Gcr_util.Vec.t;
  oom : string -> unit;
}

let make_ctx ~heap ~engine ~cost ~machine =
  {
    heap;
    engine;
    cost;
    machine;
    iter_roots = ref (fun _f -> ());
    allocators = Gcr_util.Vec.create ();
    oom =
      (fun reason ->
        let module Engine = Gcr_engine.Engine in
        let module Obs = Gcr_obs.Obs in
        let obs = Engine.obs engine in
        Obs.oom obs ~time:(Engine.now engine) ~reason_id:(Obs.intern obs reason);
        Engine.abort engine ~reason:("OutOfMemoryError: " ^ reason));
  }

type stats = {
  collections : int;
  full_collections : int;
  words_copied : int;
  objects_marked : int;
  stalls : int;
}

type t = {
  name : string;
  read_barrier : unit -> int;
  write_barrier : unit -> int;
  on_alloc : Gcr_heap.Obj_model.id -> unit;
  on_pointer_write :
    src:Gcr_heap.Obj_model.id ->
    old_target:Gcr_heap.Obj_model.id ->
    new_target:Gcr_heap.Obj_model.id ->
    unit;
  after_refill : Gcr_engine.Engine.thread -> cont:(unit -> unit) -> unit;
  on_out_of_regions : Gcr_engine.Engine.thread -> retry:(unit -> unit) -> unit;
  stats : unit -> stats;
}

let no_stats =
  { collections = 0; full_collections = 0; words_copied = 0; objects_marked = 0; stalls = 0 }
