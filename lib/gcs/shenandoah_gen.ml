module Heap = Gcr_heap.Heap
module Region = Gcr_heap.Region
module Obj_model = Gcr_heap.Obj_model
module Engine = Gcr_engine.Engine
module Obs = Gcr_obs.Obs
module Vec = Gcr_util.Vec
module Cost_model = Gcr_mach.Cost_model

type config = {
  stw_workers : int;
  conc_workers : int;
  tenure_age : int;
  old_trigger_occupancy : float;
  pace_free_fraction : float;
  pace_stall_cycles : int;
  garbage_threshold : float;
}

let default_config ~cpus =
  {
    stw_workers = (if cpus <= 8 then cpus else 8 + ((cpus - 8) * 5 / 8));
    conc_workers = max 1 (cpus / 4);
    tenure_age = 2;
    old_trigger_occupancy = 0.35;
    pace_free_fraction = 0.25;
    pace_stall_cycles = 100_000;
    garbage_threshold = 0.25;
  }

type state = {
  ctx : Gc_types.ctx;
  config : config;
  stw_pool : Worker_pool.t;
  conc_pool : Worker_pool.t;
  cycle : Conc_cycle.t;
  remset : Remset.t;
  waiters : (Engine.thread * (unit -> unit)) Vec.t;
  mutable gc_pending : bool;  (** a young pause is being organised / open *)
  mutable degen_wait : bool;
      (** a young pause stays open until the in-flight old cycle finishes
          (the generational analogue of degenerated GC) *)
  mutable full_wanted : bool;  (** old cycle failed; compact at next pause *)
  mutable eden_regions_since_gc : int;
  mutable eden_budget : int;
  mutable last_survivor_regions : int;
  mutable low_free_streak : int;
  mutable collections : int;
  mutable full_collections : int;
  mutable words_copied : int;
  mutable objects_marked : int;
  mutable stalls : int;
}

let total_regions s = Heap.total_regions s.ctx.Gc_types.heap

let free_regions s = Heap.free_regions s.ctx.Gc_types.heap

let free_fraction s = float_of_int (free_regions s) /. float_of_int (total_regions s)

let survivor_reserve s = max 2 ((s.last_survivor_regions * 2) + 1)

let full_gc_reserve s = max 3 (total_regions s / 32)

let should_collect_young s =
  s.eden_regions_since_gc >= s.eden_budget || free_regions s <= survivor_reserve s

let recompute_eden_budget s =
  let headroom = free_regions s - survivor_reserve s in
  s.eden_budget <- max 2 (headroom / 2)

let resume_waiters s =
  let pending = Vec.to_list s.waiters in
  Vec.clear s.waiters;
  List.iter (fun (th, cont) -> Engine.resume s.ctx.Gc_types.engine th cont) pending

let enqueue_waiter s th cont =
  Engine.park s.ctx.Gc_types.engine th;
  Vec.push s.waiters (th, cont)

let cycle_active s =
  match Conc_cycle.phase s.cycle with
  | Conc_cycle.Idle -> false
  | Conc_cycle.Marking | Conc_cycle.Evacuating | Conc_cycle.Updating -> true

(* The old cycle's pauses piggyback on whatever young pause is open;
   otherwise they open their own short safepoints. *)
let pause_broker s reason body =
  let engine = s.ctx.Gc_types.engine in
  if Engine.stop_requested engine then body (fun () -> ())
  else
    Engine.request_stop engine ~reason:("GenShen " ^ reason) (fun () ->
        body (fun () -> Engine.release_stop engine))

let note_full_compaction s =
  if free_fraction s < 0.02 then s.low_free_streak <- s.low_free_streak + 1
  else s.low_free_streak <- 0;
  if s.low_free_streak >= 3 then
    s.ctx.Gc_types.oom "GenShen: GC overhead limit exceeded (heap too small)"

(* End of a young pause: bookkeeping + release + waiters. *)
let finish_pause s ~ran_full =
  let heap = s.ctx.Gc_types.heap in
  s.collections <- s.collections + 1;
  if ran_full then s.full_collections <- s.full_collections + 1;
  Heap.log_collection heap;
  s.eden_regions_since_gc <- 0;
  s.last_survivor_regions <- Heap.regions_in_space_count heap Region.Survivor;
  Heap.set_alloc_reserve heap (survivor_reserve s);
  recompute_eden_budget s;
  Engine.release_stop s.ctx.Gc_types.engine;
  s.gc_pending <- false;
  resume_waiters s

let run_full_then_finish s =
  s.full_wanted <- false;
  Full_compact.run s.ctx ~pool:s.stw_pool ~on_done:(fun (res : Full_compact.result) ->
      s.objects_marked <- s.objects_marked + res.objects_marked;
      Remset.clear s.remset;
      note_full_compaction s;
      finish_pause s ~ran_full:true)

(* Start a concurrent old cycle (caller checked it is safe). *)
let start_old_cycle s =
  Conc_cycle.start s.cycle
    ~pause:(pause_broker s)
    ~on_done:(fun ~evac_failed ->
      if s.degen_wait then begin
        (* A young pause has been held open waiting for us. *)

        s.degen_wait <- false;
        if evac_failed || free_regions s <= full_gc_reserve s then run_full_then_finish s
        else finish_pause s ~ran_full:false
      end
      else begin
        if evac_failed then s.full_wanted <- true;
        resume_waiters s
      end)

let maybe_start_old_cycle s =
  let heap = s.ctx.Gc_types.heap in
  let old_used = float_of_int (Heap.space_used_words heap Region.Old) in
  let capacity = float_of_int (Heap.capacity_words heap) in
  if
    (not (cycle_active s))
    && (not (Worker_pool.busy s.conc_pool))
    && old_used > s.config.old_trigger_occupancy *. capacity
  then start_old_cycle s

(* The young collection, inside its pause. *)
let run_young_collection s =
  Scavenge.run s.ctx ~pool:s.stw_pool ~remset:s.remset ~tenure_age:s.config.tenure_age
    ~on_mark_young:ignore
    ~on_done:(fun (res : Scavenge.result) ->
      s.objects_marked <- s.objects_marked + res.objects_copied;
      s.words_copied <- s.words_copied + res.words_copied;
      if not res.promo_failed then Remset.rebuild s.remset ~extra:res.promoted_with_fields;
      let need_full =
        res.promo_failed || s.full_wanted || free_regions s <= full_gc_reserve s
      in
      if need_full then begin
        if cycle_active s then begin
          (* Cannot compact while the old cycle is mid-flight: hold the
             pause open; the cycle finishes stop-the-world on its workers
             and then compacts if still needed. *)
          let obs = Engine.obs s.ctx.Gc_types.engine in
          Obs.degeneration obs
            ~time:(Engine.now s.ctx.Gc_types.engine)
            ~reason_id:(Obs.intern obs "GenShen degenerated (old cycle in flight)");
          s.degen_wait <- true
        end
        else run_full_then_finish s
      end
      else begin
        maybe_start_old_cycle s;
        finish_pause s ~ran_full:false
      end)

let trigger_young s th cont ~reason =
  s.gc_pending <- true;
  enqueue_waiter s th cont;
  Engine.request_stop s.ctx.Gc_types.engine ~reason (fun () -> run_young_collection s)

let is_old s id =
  match Heap.obj_space s.ctx.Gc_types.heap id with
  | Region.Old -> true
  | Region.Free | Region.Eden | Region.Survivor -> false

let make (ctx : Gc_types.ctx) config =
  Heap.set_alloc_reserve ctx.Gc_types.heap (max 4 (Heap.total_regions ctx.Gc_types.heap / 8));
  let stw_pool = Worker_pool.create ctx ~count:config.stw_workers ~name:"GenShen-stw" in
  let conc_pool = Worker_pool.create ctx ~count:config.conc_workers ~name:"GenShen-conc" in
  let cycle =
    Conc_cycle.create ctx ~pool:conc_pool ~garbage_threshold:config.garbage_threshold
      ~reserve_regions:(fun () -> max 2 (Heap.total_regions ctx.Gc_types.heap / 20))
      ~concurrent_copy:true ~old_only:true ()
  in
  let s =
    {
      ctx;
      config;
      stw_pool;
      conc_pool;
      cycle;
      remset = Remset.create ctx.Gc_types.heap;
      waiters = Vec.create ();
      gc_pending = false;
      degen_wait = false;
      full_wanted = false;
      eden_regions_since_gc = 0;
      eden_budget = max 2 (Heap.total_regions ctx.Gc_types.heap / 4);
      last_survivor_regions = 0;
      low_free_streak = 0;
      collections = 0;
      full_collections = 0;
      words_copied = 0;
      objects_marked = 0;
      stalls = 0;
    }
  in
  let engine = ctx.Gc_types.engine in
  let busy () = s.gc_pending || Engine.stop_requested engine in
  let after_refill th ~cont =
    s.eden_regions_since_gc <- s.eden_regions_since_gc + 1;
    if busy () then enqueue_waiter s th cont
    else if should_collect_young s then trigger_young s th cont ~reason:"GenShen young"
    else if cycle_active s && free_fraction s < config.pace_free_fraction then begin
      (* Pacing while the old cycle is behind. *)
      s.stalls <- s.stalls + 1;
      let deficit = 1.0 -. (free_fraction s /. config.pace_free_fraction) in
      let stall =
        config.pace_stall_cycles
        + int_of_float (deficit *. float_of_int (4 * config.pace_stall_cycles))
      in
      Obs.pacing_stall (Engine.obs engine) ~time:(Engine.now engine)
        ~tid:(Engine.thread_id th) ~cycles:stall;
      Engine.stall engine th ~cycles:stall cont
    end
    else cont ()
  in
  let on_out_of_regions th ~retry =
    if busy () then enqueue_waiter s th retry
    else trigger_young s th retry ~reason:"GenShen allocation failure"
  in
  let on_pointer_write ~src ~old_target ~new_target =
    if (not (Obj_model.is_null new_target)) && is_old s src then Remset.remember s.remset src;
    Conc_cycle.satb_publish cycle old_target
  in
  let write_barrier () =
    let c = ctx.Gc_types.cost in
    c.Cost_model.card_mark
    +
    match Conc_cycle.phase cycle with
    | Conc_cycle.Marking -> c.Cost_model.satb_active
    | Conc_cycle.Idle | Conc_cycle.Evacuating | Conc_cycle.Updating -> c.Cost_model.satb_idle
  in
  let read_barrier () =
    let c = ctx.Gc_types.cost in
    match Conc_cycle.phase cycle with
    | Conc_cycle.Evacuating | Conc_cycle.Updating ->
        c.Cost_model.lvb_idle + (c.Cost_model.lvb_slow / 4)
    | Conc_cycle.Idle | Conc_cycle.Marking -> c.Cost_model.lvb_idle
  in
  {
    Gc_types.name = "GenShen";
    read_barrier;
    write_barrier;
    on_alloc = (fun o -> Conc_cycle.mark_new_object cycle o);
    on_pointer_write;
    after_refill;
    on_out_of_regions;
    stats =
      (fun () ->
        {
          Gc_types.collections = s.collections + Conc_cycle.cycles_completed cycle;
          full_collections = s.full_collections;
          words_copied = s.words_copied + Conc_cycle.words_copied cycle;
          objects_marked = s.objects_marked + Conc_cycle.objects_marked cycle;
          stalls = s.stalls;
        });
  }
