(** Incremental evacuation of collection-set regions.

    After a marking pass has established per-region liveness, the evacuator
    copies every live (marked) object out of the chosen regions and
    releases them.  G1 does this inside a pause; Shenandoah and ZGC do it
    concurrently (with the dearer CAS-guarded copy cost).  Work is exposed
    in bounded slices, like the tracer, so it can run under a worker
    pool. *)

type t

exception Evacuation_failure
(** Raised out of {!step} when the free pool cannot supply a destination
    region (to-space exhaustion).  The collector falls back: G1 and
    Shenandoah degrade to a full collection, ZGC declares an allocation
    stall or OOM. *)

val create :
  Gc_types.ctx ->
  concurrent:bool ->
  choose_target:(Gcr_heap.Obj_model.id -> Gcr_heap.Allocator.t) ->
  t
(** [choose_target] maps each survivor to the allocator it is copied with
    (survivor vs old for generational promotion, a single target
    otherwise).  [concurrent] selects the CAS-guarded per-object copy
    cost. *)

val add_region : t -> Gcr_heap.Region.t -> unit
(** Queue a region for evacuation.  Pinned regions are rejected
    ([Invalid_argument]); only add regions whose live objects are marked in
    the {e current} heap epoch. *)

val step : t -> budget:int -> int
(** Process up to [budget] objects (dead ones are skipped for free);
    returns the slice's cycle cost, 0 when all queued regions have been
    evacuated and released. *)

val finished : t -> bool

val words_copied : t -> int

val objects_copied : t -> int

val regions_released : t -> int
