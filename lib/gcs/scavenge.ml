module Heap = Gcr_heap.Heap
module Region = Gcr_heap.Region
module Obj_model = Gcr_heap.Obj_model
module Allocator = Gcr_heap.Allocator
module Vec = Gcr_util.Vec
module Cost_model = Gcr_mach.Cost_model

type result = {
  promo_failed : bool;
  promoted_with_fields : Obj_model.id list;
  objects_copied : int;
  words_copied : int;
}

let slice_budget = 64

let is_young (r : Region.t) =
  match r.Region.space with
  | Region.Eden | Region.Survivor -> true
  | Region.Free | Region.Old -> false

let run (ctx : Gc_types.ctx) ~pool ~remset ~tenure_age ~on_mark_young ~on_done =
  let heap = ctx.Gc_types.heap in
  let cost_model = ctx.Gc_types.cost in
  Vec.iter Allocator.retire ctx.Gc_types.allocators;
  let cset = ref [] in
  Heap.iter_regions (fun r -> if is_young r then cset := r :: !cset) heap;
  ignore (Heap.begin_scratch_epoch heap);
  let survivor_target = Allocator.create heap ~space:Region.Survivor in
  let old_target = Allocator.create heap ~space:Region.Old in
  let promoted = ref [] in
  let promo_failed = ref false in
  let objects_copied = ref 0 in
  let words_copied = ref 0 in
  let move_to target id =
    let rec attempt retried =
      match Allocator.current_region target with
      | Some dst when Heap.move_object heap id dst -> ()
      | Some _ | None ->
          if retried then raise (Tracer.Trace_failure "promotion failure")
          else begin
            (match Allocator.refill target with
            | None -> raise (Tracer.Trace_failure "promotion failure")
            | Some _ -> ());
            attempt true
          end
    in
    attempt false
  in
  let on_mark id =
    on_mark_young id;
    let age = Heap.obj_age heap id in
    let tenured = age >= tenure_age in
    move_to (if tenured then old_target else survivor_target) id;
    Heap.set_obj_age heap id (age + 1);
    if tenured && Heap.obj_nfields heap id > 0 then promoted := id :: !promoted;
    incr objects_copied;
    let size = Heap.obj_size heap id in
    words_copied := !words_copied + size;
    cost_model.Cost_model.copy_per_object + (cost_model.Cost_model.copy_per_word * size)
  in
  let tracer =
    Tracer.create ctx ~use_scratch:true ~update_region_live:false
      ~should_visit:(fun id -> is_young (Heap.region heap (Heap.obj_region heap id)))
      ~on_mark
  in
  (* Roots: workload roots plus the remembered set (dirty-card scan). *)
  let root_cost = ref 0 in
  !(ctx.Gc_types.iter_roots) (Tracer.add_root tracer);
  Remset.iter remset (fun id ->
      if Heap.is_live heap id then begin
        root_cost :=
          !root_cost + 30 + (cost_model.Cost_model.mark_per_edge * Heap.obj_nfields heap id);
        Heap.iter_fields heap id (Tracer.add_root tracer)
      end);
  let work ~worker:_ =
    if !promo_failed then 0
    else if !root_cost > 0 then begin
      let c = !root_cost in
      root_cost := 0;
      c
    end
    else
      try Tracer.drain tracer ~budget:slice_budget
      with Tracer.Trace_failure _ ->
        promo_failed := true;
        0
  in
  Worker_pool.run_phase pool ~phase:Gcr_obs.Event.Evacuate ~work ~on_done:(fun () ->
      Allocator.retire survivor_target;
      Allocator.retire old_target;
      if not !promo_failed then List.iter (Heap.release_region heap) !cset;
      on_done
        {
          promo_failed = !promo_failed;
          promoted_with_fields = !promoted;
          objects_copied = !objects_copied;
          words_copied = !words_copied;
        })
