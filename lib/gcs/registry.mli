(** Collector registry: construction by name.

    The six collectors of Table I, keyed by the names used throughout the
    paper's tables. *)

type kind =
  | Epsilon
  | Serial
  | Parallel
  | G1
  | Shenandoah
  | Zgc
  | Shenandoah_gen
      (** generational Shenandoah (JEP 404 / JDK 21) — the paper's flagged
          future work, implemented as an extension; not part of the
          paper's collector set *)
  | Lxr
      (** LXR-style deferred reference counting with regional copying and a
          backup tracing cycle (Zhao, Blackburn & McKinley, PLDI'22) — the
          follow-on design that widens the frontier beyond tracing *)
  | Serial_pretenure
      (** Serial with tenure age 0: every scavenge survivor is promoted
          immediately — a cheap pretenuring variant for the frontier *)

val all : kind list
(** In the paper's table order: Epsilon, Serial, Parallel, G1, Shenandoah,
    ZGC. *)

val production : kind list
(** The five collectors of the paper's study (everything in [all] but
    Epsilon). *)

val experimental : kind list
(** Extensions beyond the paper's set (generational Shenandoah, LXR,
    Serial+pretenuring). *)

val frontier : kind list
(** The full collector frontier: [all @ experimental].  The default
    campaign grid. *)

val name : kind -> string

val of_name : string -> kind option
(** Case-insensitive; accepts "zgc" and "shen" shorthands. *)

val valid_names : string list
(** One canonical name per frontier kind, for CLI error messages. *)

val is_concurrent : kind -> bool
(** Runs collection work outside pauses (G1, Shenandoah, ZGC). *)

val is_generational : kind -> bool

val make : kind -> Gc_types.ctx -> Gc_types.t
(** Instantiate with default configuration for the context's machine. *)
