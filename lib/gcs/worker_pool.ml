module Engine = Gcr_engine.Engine
module Cost_model = Gcr_mach.Cost_model
module Obs = Gcr_obs.Obs
module Event = Gcr_obs.Event

type t = {
  ctx : Gc_types.ctx;
  name : string;
  collector_id : int;  (** interned pool name, tagging phase events *)
  obs : Obs.t;
  threads : Engine.thread array;
  mutable active : int;  (** workers still pulling slices in this phase *)
  mutable phase_running : bool;
}

let create ctx ~count ~name =
  if count < 1 then invalid_arg "Worker_pool.create: count < 1";
  let spawn i =
    let th =
      Engine.spawn ctx.Gc_types.engine ~kind:Engine.Gc_worker
        ~name:(Printf.sprintf "%s-worker-%d" name i)
    in
    Engine.park ctx.Gc_types.engine th;
    th
  in
  let obs = Engine.obs ctx.Gc_types.engine in
  {
    ctx;
    name;
    collector_id = Obs.intern obs name;
    obs;
    threads = Array.init count spawn;
    active = 0;
    phase_running = false;
  }

let count t = Array.length t.threads

let name t = t.name

let busy t = t.phase_running

let termination_cost t =
  let workers = count t in
  t.ctx.Gc_types.cost.Cost_model.termination_per_worker * Cost_model.log2_ceil (max 2 workers)

let run_phase t ~phase ~work ~on_done =
  if t.phase_running then invalid_arg "Worker_pool.run_phase: phase already running";
  t.phase_running <- true;
  t.active <- count t;
  let engine = t.ctx.Gc_types.engine in
  let dispatch_cost = t.ctx.Gc_types.cost.Cost_model.gc_task_dispatch in
  let finish_worker th =
    Obs.phase_end t.obs ~time:(Engine.now engine) ~collector_id:t.collector_id ~phase
      ~tid:(Engine.thread_id th);
    Engine.park engine th;
    t.active <- t.active - 1;
    if t.active = 0 then begin
      t.phase_running <- false;
      on_done ()
    end
  in
  let rec pull worker th () =
    let cost = work ~worker in
    if cost > 0 then Engine.submit engine th ~cycles:(cost + dispatch_cost) (pull worker th)
    else
      (* Termination barrier, then park until the next phase. *)
      Engine.submit engine th ~cycles:(termination_cost t) (fun () -> finish_worker th)
  in
  Array.iter
    (fun th ->
      Obs.phase_begin t.obs ~time:(Engine.now engine) ~collector_id:t.collector_id ~phase
        ~tid:(Engine.thread_id th))
    t.threads;
  Array.iteri (fun worker th -> Engine.resume engine th (pull worker th)) t.threads

let rec run_phases t phases ~on_done =
  match phases with
  | [] -> on_done ()
  | (phase, work) :: rest ->
      run_phase t ~phase ~work ~on_done:(fun () -> run_phases t rest ~on_done)
