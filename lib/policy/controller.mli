(** Heap-limit controllers: observe the run at safepoints, return a new
    heap limit.

    A controller's {!spec} is pure data — it lives in [Run.config],
    renders into cache keys, and marshals across the campaign fabric.
    The stateful instance ({!t}) is built per run.  Controllers consume
    only collector-independent observables (cumulative allocation, live
    words, cumulative GC-worker cycles, the simulated clock), so any
    controller composes with any collector.

    Three implementations:
    - [Fixed] — the status quo: never moves the limit.  A run under
      [Fixed] is bit-identical to a run with no controller at all.
    - [Membalancer] — the square-root rule of "Optimal Heap Limits for
      Reducing Browser Memory Use": extra heap E* = sqrt(c·g·L/s), with
      the allocation-rate/collection-speed ratio read off the spine as
      the GC time fraction.
    - [Monk] — opportunistic CPU/memory trading with a dead band:
      overhead above target buys memory, overhead below returns it. *)

type spec =
  | Fixed
  | Membalancer of { tuning : float; min_period : int }
  | Monk of { target_overhead : float; band : float; min_period : int }

val default_min_period : int
(** Cycles between decisions (rate limit), 100k. *)

val fixed : spec

val membalancer : spec
(** Default tuning (4096.0 words of rent weight — calibrated so the rule
    undercuts the best fixed factor's memory·time on steady benchmarks). *)

val monk : spec
(** Default 8% GC-overhead target with a ±50% dead band. *)

val name : spec -> string
(** Canonical lowercase name: ["fixed"], ["membalancer"], ["monk"]. *)

val of_name : string -> spec option
(** Case-insensitive, with aliases ([none]/[off], [sqrt],
    [opportunistic]); returns the default parameters for the family. *)

val valid_names : string list

val is_fixed : spec -> bool

val render : spec -> string
(** Exact parameter rendering for cache keys (floats in hex). *)

type sample = {
  now : int;  (** simulated cycles *)
  live_words : int;
  capacity_words : int;  (** the current limit *)
  allocated_words : int;  (** cumulative *)
  gc_cycles : int;  (** cumulative GC-worker cycles *)
  mutator_cycles : int;  (** cumulative mutator cycles *)
}

type t

val make : spec -> min_heap_words:int -> max_heap_words:int -> t
(** Bounds every decision: never below [min_heap_words] (or live plus
    25% copy headroom, whichever is larger), never above
    [max_heap_words]. *)

val spec_of : t -> spec

val observe : t -> sample -> int option
(** One decision step.  [None] keeps the current limit (always, for
    [Fixed]); [Some w] asks the caller to move the limit to [w] words
    (the caller rounds to regions).  Decisions are rate-limited by the
    spec's [min_period] and suppressed when within 1/16 of the current
    limit. *)
