(* Heap-limit controllers: observe the run at safepoints, return a new
   heap limit.

   The [spec] is the serialisable half — it travels in [Run.config],
   renders into cache keys, and crosses the fabric's process boundary by
   marshalling.  The stateful half ([t]) is built per run from the spec
   and never leaves the process.

   Controllers see only collector-independent observables (cumulative
   allocation, live words, cumulative GC cycles, the clock), all of which
   come off the obs spine and the heap at a pause boundary, so one
   controller composes with every collector in the registry. *)

type spec =
  | Fixed
  | Membalancer of { tuning : float; min_period : int }
  | Monk of { target_overhead : float; band : float; min_period : int }

(* Decision cadence floor: pause_end events arrive per collection, which
   can be every few tens of microseconds of simulated time under heap
   pressure; rate-limiting keeps the limit trajectory readable and stops
   grow/shrink chatter. *)
let default_min_period = 100_000

let fixed = Fixed

(* Rent weight calibrated on the suite: at 4096 the square-root rule
   undercuts the best fixed heap factor's memory.time integral on the
   steady benchmarks (jme, h2) at matched wall cost; much higher and the
   rule buys memory so cheaply it out-provisions every fixed factor. *)
let membalancer = Membalancer { tuning = 4096.0; min_period = default_min_period }

let monk =
  Monk { target_overhead = 0.08; band = 0.5; min_period = default_min_period }

let name = function
  | Fixed -> "fixed"
  | Membalancer _ -> "membalancer"
  | Monk _ -> "monk"

let of_name s =
  match String.lowercase_ascii s with
  | "fixed" | "none" | "off" -> Some fixed
  | "membalancer" | "mem-balancer" | "sqrt" -> Some membalancer
  | "monk" | "opportunistic" -> Some monk
  | _ -> None

let valid_names = [ "fixed"; "membalancer"; "monk" ]

let is_fixed = function Fixed -> true | Membalancer _ | Monk _ -> false

(* Exact parameter rendering for cache keys: floats in hex so distinct
   bit patterns never collapse (the same discipline as Cache_key). *)
let render = function
  | Fixed -> "ctl=fixed"
  | Membalancer { tuning; min_period } ->
      Printf.sprintf "ctl=membalancer(tuning=%h,period=%d)" tuning min_period
  | Monk { target_overhead; band; min_period } ->
      Printf.sprintf "ctl=monk(target=%h,band=%h,period=%d)" target_overhead band
        min_period

type sample = {
  now : int;
  live_words : int;
  capacity_words : int;
  allocated_words : int;
  gc_cycles : int;
  mutator_cycles : int;
}

type t = {
  spec : spec;
  min_heap_words : int;
  max_heap_words : int;
  mutable last_now : int;
  mutable last_allocated : int;
  mutable last_gc : int;
}

let make spec ~min_heap_words ~max_heap_words =
  if min_heap_words < 0 || max_heap_words < min_heap_words then
    invalid_arg "Controller.make: bad heap bounds";
  { spec; min_heap_words; max_heap_words; last_now = 0; last_allocated = 0; last_gc = 0 }

let spec_of t = t.spec

let clamp t ~live w =
  (* never shrink below the live set plus copy headroom, nor the
     configured floor; never grow past the machine's memory *)
  let floor_words = max t.min_heap_words (live + (live / 4)) in
  min t.max_heap_words (max floor_words w)

(* Change threshold: a decision within 1/16 of the current limit is noise
   (one region either way on small heaps), not a resize. *)
let significant ~current w = abs (w - current) * 16 > current

let observe t sample =
  let elapsed = sample.now - t.last_now in
  let min_period =
    match t.spec with
    | Fixed -> max_int
    | Membalancer { min_period; _ } | Monk { min_period; _ } -> min_period
  in
  if elapsed < min_period then None
  else begin
    let delta_gc = sample.gc_cycles - t.last_gc in
    t.last_now <- sample.now;
    t.last_allocated <- sample.allocated_words;
    t.last_gc <- sample.gc_cycles;
    match t.spec with
    | Fixed -> None
    | Membalancer { tuning; _ } ->
        (* The square-root rule.  MemBalancer sizes the extra heap E to
           minimise (collection cost) + (memory rent):
             E* = sqrt(c · g · L / s)
           with g the allocation rate and s the collection speed.  In
           steady state collection keeps up with allocation, so g / s is
           exactly the measured GC time fraction — which the spine gives
           us directly, with no per-collector plumbing. *)
        let gc_frac = float_of_int delta_gc /. float_of_int (max 1 elapsed) in
        let live = float_of_int (max 1 sample.live_words) in
        let extra = sqrt (tuning *. live *. gc_frac) in
        let target = clamp t ~live:sample.live_words (sample.live_words + int_of_float extra) in
        if significant ~current:sample.capacity_words target then Some target else None
    | Monk { target_overhead; band; _ } ->
        (* Opportunistic CPU/memory trading: when GC overhead since the
           last decision runs hot, spend memory to buy mutator CPU back;
           when it runs cold, return memory.  Multiplicative steps with a
           dead band give Monk-style hysteresis instead of oscillation. *)
        let gc_frac = float_of_int delta_gc /. float_of_int (max 1 elapsed) in
        let current = sample.capacity_words in
        let target =
          if gc_frac > target_overhead *. (1.0 +. band) then current + (current / 4)
          else if gc_frac < target_overhead *. (1.0 -. band) then current - (current / 8)
          else current
        in
        let target = clamp t ~live:sample.live_words target in
        if significant ~current target then Some target else None
  end
