(** Deterministic pseudo-random number generation.

    The simulator must be reproducible: every invocation is driven by a seed,
    and independent components (mutator threads, workload generators) draw
    from independent streams split off a root generator.  The implementation
    is SplitMix64, which is fast, has a 64-bit state, and supports cheap
    splitting; statistical quality is more than sufficient for workload
    synthesis. *)

type t
(** A mutable generator.  Not thread-safe (the simulator is single-threaded
    on the host). *)

val create : int -> t
(** [create seed] makes a generator from a seed.  Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val copy : t -> t
(** [copy t] duplicates the current state; both generators then produce the
    same stream. *)

val raw_state : t -> int64 * int64
(** [(state, gamma)] — the full generator state.  SplitMix64 is
    counter-based (the state after [n] draws is [state + n * gamma]), which
    lets workload tapes resume the exact stream past the recorded prefix. *)

val of_raw_state : state:int64 -> gamma:int64 -> t
(** Rebuild a generator from {!raw_state}; the resulting stream continues
    exactly where the captured one stood. *)

val bits64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean (inter-arrival
    times of metered request streams). *)

val geometric_size : t -> mean:int -> min:int -> max:int -> int
(** A clamped, geometrically decaying integer used for object-size draws:
    most draws near [min], mean approximately [mean]. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto-distributed value, used for heavy-tailed lifetimes. *)
