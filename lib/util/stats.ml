let require_nonempty name samples =
  if Array.length samples = 0 then invalid_arg (name ^ ": empty sample set")

let mean samples =
  require_nonempty "Stats.mean" samples;
  Array.fold_left ( +. ) 0.0 samples /. float_of_int (Array.length samples)

let stddev samples =
  let n = Array.length samples in
  if n < 2 then 0.0
  else begin
    let m = mean samples in
    let sum_sq = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 samples in
    sqrt (sum_sq /. float_of_int (n - 1))
  end

(* Two-sided 95% critical values of Student's t distribution, df = 1..30.
   Beyond 30 degrees of freedom the normal approximation is within 2%. *)
let t_table_95 =
  [| 12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
     2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
     2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042 |]

let t_critical_95 df =
  if df < 1 then invalid_arg "Stats.t_critical_95: df < 1"
  else if df <= Array.length t_table_95 then t_table_95.(df - 1)
  else 1.96

let ci95_half_width samples =
  let n = Array.length samples in
  if n < 2 then 0.0
  else t_critical_95 (n - 1) *. stddev samples /. sqrt (float_of_int n)

let geomean samples =
  require_nonempty "Stats.geomean" samples;
  let sum_logs =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive sample";
        acc +. log x)
      0.0 samples
  in
  exp (sum_logs /. float_of_int (Array.length samples))

let min samples =
  require_nonempty "Stats.min" samples;
  Array.fold_left Stdlib.min samples.(0) samples

let max samples =
  require_nonempty "Stats.max" samples;
  Array.fold_left Stdlib.max samples.(0) samples

let percentile samples p =
  require_nonempty "Stats.percentile" samples;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0, 100]";
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

type summary = {
  n : int;
  mean : float;
  stddev : float;
  ci95 : float;
  min : float;
  max : float;
}

let summarize samples =
  require_nonempty "Stats.summarize" samples;
  {
    n = Array.length samples;
    mean = mean samples;
    stddev = stddev samples;
    ci95 = ci95_half_width samples;
    min = min samples;
    max = max samples;
  }

let pp_summary ppf s =
  Format.fprintf ppf "%.4g ±%.2g (n=%d, min=%.4g, max=%.4g)" s.mean s.ci95 s.n s.min s.max
