(** Minimum binary heap keyed by integer priority.

    The engine's event queue orders pending completions by simulated cycle
    count; ties are broken by insertion order so the simulation is
    deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> priority:int -> 'a -> unit

val min : 'a t -> (int * 'a) option
(** Smallest priority with its value, without removing it. *)

val pop : 'a t -> (int * 'a) option
(** Removes and returns the entry with the smallest priority; among equal
    priorities, the one inserted first. *)

val clear : 'a t -> unit
