(** Minimum binary heap keyed by integer priority, stored as parallel
    priority/sequence/value arrays (structure of arrays).

    The engine's event queue orders pending completions by simulated cycle
    count; ties are broken by insertion order so the simulation is
    deterministic.  The hot path — {!add}, {!min_priority}, {!pop_min} —
    allocates nothing beyond amortised array growth. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> priority:int -> 'a -> unit

val min_priority : 'a t -> int
(** Smallest priority without removing it; raises [Invalid_argument] when
    empty.  Allocation-free. *)

val pop_min : 'a t -> int * 'a
(** Removes and returns the smallest-priority entry with its priority
    (FIFO among equal priorities); raises [Invalid_argument] when empty.
    One tuple cell is the only allocation.  Hot loops that cannot afford
    the pair — the engine pops one event per simulated completion — use
    {!pop_min_value} with {!popped_priority} instead. *)

val pop_min_value : 'a t -> 'a
(** Allocation-free {!pop_min}: removes the smallest-priority entry and
    returns only its value; the priority travels out of band via
    {!popped_priority}.  Raises [Invalid_argument] when empty. *)

val popped_priority : 'a t -> int
(** Priority of the entry most recently removed by {!pop_min_value},
    {!pop_min} or {!pop} — a field read, not a heap peek.  Unspecified
    (0) before the first pop. *)

val min : 'a t -> (int * 'a) option
(** Smallest priority with its value, without removing it.  Allocating
    convenience wrapper over {!min_priority}. *)

val pop : 'a t -> (int * 'a) option
(** Removes and returns the entry with the smallest priority; among equal
    priorities, the one inserted first.  Allocating convenience wrapper
    over {!pop_min}. *)

val clear : 'a t -> unit
(** Empties the heap.  The insertion-sequence counter is preserved, so
    FIFO ordering holds across a clear.  Retains at most the one dummy
    element documented in {!Vec.pop}. *)

val reset : 'a t -> unit
(** {!clear} plus a rewind of the insertion-sequence counter and the
    popped-priority slot: a reused heap is indistinguishable from a
    fresh one to any caller (same tie-break sequence numbers), while
    keeping its array capacity — the warm-path reuse contract. *)
