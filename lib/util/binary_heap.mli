(** Minimum binary heap keyed by integer priority, stored as parallel
    priority/sequence/value arrays (structure of arrays).

    The engine's event queue orders pending completions by simulated cycle
    count; ties are broken by insertion order so the simulation is
    deterministic.  The hot path — {!add}, {!min_priority}, {!pop_min} —
    allocates nothing beyond amortised array growth. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> priority:int -> 'a -> unit

val min_priority : 'a t -> int
(** Smallest priority without removing it; raises [Invalid_argument] when
    empty.  Allocation-free. *)

val pop_min : 'a t -> 'a
(** Removes and returns the value with the smallest priority (FIFO among
    equal priorities); raises [Invalid_argument] when empty.
    Allocation-free: pair with {!min_priority} when the priority is also
    needed. *)

val min : 'a t -> (int * 'a) option
(** Smallest priority with its value, without removing it.  Allocating
    convenience wrapper over {!min_priority}. *)

val pop : 'a t -> (int * 'a) option
(** Removes and returns the entry with the smallest priority; among equal
    priorities, the one inserted first.  Allocating convenience wrapper
    over {!pop_min}. *)

val clear : 'a t -> unit
(** Empties the heap.  The insertion-sequence counter is preserved, so
    FIFO ordering holds across a clear.  Retains at most the one dummy
    element documented in {!Vec.pop}. *)
