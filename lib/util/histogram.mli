(** Log-bucketed histogram of non-negative integer samples.

    Used for pause-time and request-latency distributions (Figures 2–4 of
    the paper).  Buckets grow geometrically (HdrHistogram-style with a fixed
    number of sub-buckets per octave), so relative quantile error is bounded
    (about 1/sub-buckets) while memory stays small no matter how wide the
    dynamic range is. *)

type t

val create : unit -> t

val record : t -> int -> unit
(** Record a sample (clamped below at 0). *)

val record_many : t -> int -> count:int -> unit

val count : t -> int
(** Number of recorded samples. *)

val total : t -> int
(** Sum of all recorded samples (for means). *)

val max_value : t -> int

val mean : t -> float
(** 0 when empty. *)

val percentile : t -> float -> int
(** [percentile t p] for p in [\[0,100\]]: upper bound of the bucket holding
    the p-th percentile sample, capped at {!max_value}.  Total: an empty
    histogram yields 0 (use {!percentile_opt} to distinguish "no samples"
    from a zero sample).  Raises only when [p] is outside [\[0,100\]]. *)

val percentile_opt : t -> float -> int option
(** As {!percentile}, but [None] on an empty histogram. *)

val percentiles : t -> float list -> (float * int) list

val merge_into : dst:t -> t -> unit
(** Adds all of the source's samples into [dst]. *)

val is_empty : t -> bool
