(* SplitMix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014.  The gamma constant is the golden ratio in
   64-bit fixed point; [mix] is the MurmurHash3 finalizer variant. *)

type t = { mutable state : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let popcount64 x =
  let rec loop x acc =
    if x = 0L then acc
    else loop Int64.(logand x (sub x 1L)) (acc + 1)
  in
  loop x 0

(* Used when splitting: ensures the derived gamma is odd and well mixed. *)
let mix_gamma z =
  let z = Int64.(mul (logxor z (shift_right_logical z 33)) 0xFF51AFD7ED558CCDL) in
  let z = Int64.(mul (logxor z (shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L) in
  let z = Int64.logor z 1L in
  let flips = popcount64 (Int64.logxor z (Int64.shift_right_logical z 1)) in
  if flips >= 24 then z else Int64.logxor z 0xAAAAAAAAAAAAAAAAL

let create seed = { state = mix (Int64.of_int seed); gamma = golden_gamma }

let next_seed t =
  t.state <- Int64.add t.state t.gamma;
  t.state

let bits64 t = mix (next_seed t)

let split t =
  let state = mix (next_seed t) in
  let gamma = mix_gamma (next_seed t) in
  { state; gamma }

let copy t = { state = t.state; gamma = t.gamma }

let raw_state t = (t.state, t.gamma)

let of_raw_state ~state ~gamma = { state; gamma }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value fits OCaml's 63-bit int non-negatively. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 uniform bits mapped to [0, 1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bits *. 0x1.0p-53

let float t bound = unit_float t *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = unit_float t < p

let exponential t ~mean =
  let u = 1.0 -. unit_float t in
  -.mean *. log u

let geometric_size t ~mean ~min ~max =
  assert (min <= max && mean >= min);
  let spread = float_of_int (mean - min) in
  let draw = min + int_of_float (exponential t ~mean:spread) in
  if draw > max then max else draw

let pareto t ~shape ~scale =
  let u = 1.0 -. unit_float t in
  scale /. (u ** (1.0 /. shape))
