(** Growable arrays (OCaml 5.1's stdlib predates [Dynarray]).

    Used pervasively for per-region object lists, mark stacks, pause logs and
    sample sets.  Amortised O(1) push, O(1) random access, swap-removal for
    unordered sets. *)

type 'a t

val create : unit -> 'a t

val make : capacity:int -> 'a t
(** Empty vector with preallocated capacity. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** Bounds-checked. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Removes and returns the last element. *)

val pop_exn : 'a t -> 'a

val last : 'a t -> 'a option

val swap_remove : 'a t -> int -> 'a
(** [swap_remove t i] removes index [i] in O(1) by moving the last element
    into its place; returns the removed element.  Order is not preserved. *)

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val to_list : 'a t -> 'a list

val to_array : 'a t -> 'a array

val of_list : 'a list -> 'a t

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** In-place sort. *)
