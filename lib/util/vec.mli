(** Growable arrays (OCaml 5.1's stdlib predates [Dynarray]).

    Used pervasively for per-region object lists, mark stacks, pause logs and
    sample sets.  Amortised O(1) push, O(1) random access, swap-removal for
    unordered sets. *)

type 'a t

val create : unit -> 'a t

val make : capacity:int -> 'a t
(** Empty vector that will allocate [max capacity 8] slots at the first
    push (first-push semantics: preallocating eagerly would need a dummy
    element, which the float-array optimisation forbids).  A vector that
    knows its size avoids re-growing through 8, 16, 32, ... *)

val length : 'a t -> int

val capacity : 'a t -> int
(** Allocated slots in the backing array (0 until the first push). *)

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** Bounds-checked. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Removes and returns the last element.

    Removal ([pop], {!swap_remove}, {!clear}) overwrites freed slots with a
    surviving element so the vector does not retain references to removed
    values.  Residual case: there is no universal dummy element, so a
    vector that becomes empty keeps its slot-0 reference alive until the
    next push (and [clear] retains exactly that one element). *)

val pop_exn : 'a t -> 'a

val last : 'a t -> 'a option

val swap_remove : 'a t -> int -> 'a
(** [swap_remove t i] removes index [i] in O(1) by moving the last element
    into its place; returns the removed element.  Order is not preserved. *)

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val to_list : 'a t -> 'a list

val to_array : 'a t -> 'a array

val of_list : 'a list -> 'a t

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** In-place sort. *)
