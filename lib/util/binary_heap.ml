(* Structure-of-arrays minimum heap.

   Priorities and insertion sequence numbers live in two parallel [int]
   arrays (unboxed), values in a third array — no per-entry record, so the
   engine's event queue allocates nothing on the push/pop fast path.  The
   sequence number breaks priority ties in FIFO order, which keeps the
   simulator deterministic.

   Sift operations move the hole rather than swapping triples: one read of
   the displaced entry, then parent/child moves, then a single write. *)

type 'a t = {
  mutable prio : int array;
  mutable seq : int array;
  mutable values : 'a array;
  mutable len : int;
  mutable next_seq : int;
  mutable last_prio : int;
}

let create () =
  { prio = [||]; seq = [||]; values = [||]; len = 0; next_seq = 0; last_prio = 0 }

let length t = t.len

let is_empty t = t.len = 0

(* Unused value slots must not retain popped values; a surviving element is
   the only safe dummy under the float-array optimisation (see Vec). *)
let grow t v =
  let capacity = Array.length t.prio in
  let capacity' = if capacity = 0 then 8 else capacity * 2 in
  let prio' = Array.make capacity' 0 in
  let seq' = Array.make capacity' 0 in
  let values' = Array.make capacity' v in
  Array.blit t.prio 0 prio' 0 t.len;
  Array.blit t.seq 0 seq' 0 t.len;
  Array.blit t.values 0 values' 0 t.len;
  if t.len > 0 then begin
    let dummy = Array.unsafe_get values' 0 in
    for i = t.len to capacity' - 1 do
      Array.unsafe_set values' i dummy
    done
  end;
  t.prio <- prio';
  t.seq <- seq';
  t.values <- values'

(* (p, s) < entry at index [j]? *)
let before t p s j =
  let pj = Array.unsafe_get t.prio j in
  p < pj || (p = pj && s < Array.unsafe_get t.seq j)

let set_entry t i p s v =
  Array.unsafe_set t.prio i p;
  Array.unsafe_set t.seq i s;
  Array.unsafe_set t.values i v

let move t ~src ~dst =
  Array.unsafe_set t.prio dst (Array.unsafe_get t.prio src);
  Array.unsafe_set t.seq dst (Array.unsafe_get t.seq src);
  Array.unsafe_set t.values dst (Array.unsafe_get t.values src)

let add t ~priority value =
  if t.len = Array.length t.prio then grow t value;
  let s = t.next_seq in
  t.next_seq <- s + 1;
  (* sift the hole up from the new slot *)
  let i = ref t.len in
  t.len <- t.len + 1;
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before t priority s parent then begin
      move t ~src:parent ~dst:!i;
      i := parent
    end
    else continue_ := false
  done;
  set_entry t !i priority s value

let min_priority t =
  if t.len = 0 then invalid_arg "Binary_heap.min_priority: empty";
  Array.unsafe_get t.prio 0

(* The priority of the popped entry is parked in [last_prio] rather than
   returned in a tuple: the engine pops ~10^7 events per simulated second
   and a boxed pair per pop is measurable without flambda. *)
let pop_min_value t =
  if t.len = 0 then invalid_arg "Binary_heap.pop_min: empty";
  let top_prio = Array.unsafe_get t.prio 0 in
  let top = Array.unsafe_get t.values 0 in
  let n = t.len - 1 in
  t.len <- n;
  if n > 0 then begin
    (* displaced last entry sifts down from the root hole *)
    let p = Array.unsafe_get t.prio n in
    let s = Array.unsafe_get t.seq n in
    let v = Array.unsafe_get t.values n in
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 in
      if l >= n then continue_ := false
      else begin
        let r = l + 1 in
        let smallest = if r < n && before t (Array.unsafe_get t.prio r) (Array.unsafe_get t.seq r) l then r else l in
        if before t p s smallest then continue_ := false
        else begin
          move t ~src:smallest ~dst:!i;
          i := smallest
        end
      end
    done;
    set_entry t !i p s v;
    (* clear the freed slot only now: before the sift, slot 0 still held
       [top], and the dummy must be a surviving element *)
    Array.unsafe_set t.values n (Array.unsafe_get t.values 0)
  end;
  t.last_prio <- top_prio;
  top

let popped_priority t = t.last_prio

let pop_min t =
  let v = pop_min_value t in
  (t.last_prio, v)

let min t =
  if t.len = 0 then None
  else Some (Array.unsafe_get t.prio 0, Array.unsafe_get t.values 0)

let pop t = if t.len = 0 then None else Some (pop_min t)

let clear t =
  if t.len > 0 then begin
    let dummy = Array.unsafe_get t.values 0 in
    for i = 1 to t.len - 1 do
      Array.unsafe_set t.values i dummy
    done;
    t.len <- 0
  end

let reset t =
  clear t;
  t.next_seq <- 0;
  t.last_prio <- 0
