(* Entries carry an insertion sequence number so that equal priorities pop in
   FIFO order, which keeps the simulator deterministic. *)

type 'a entry = { prio : int; seq : int; value : 'a }

type 'a t = {
  entries : 'a entry Vec.t;
  mutable next_seq : int;
}

let create () = { entries = Vec.create (); next_seq = 0 }

let length t = Vec.length t.entries

let is_empty t = Vec.is_empty t.entries

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let swap t i j =
  let a = Vec.get t.entries i in
  Vec.set t.entries i (Vec.get t.entries j);
  Vec.set t.entries j a

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less (Vec.get t.entries i) (Vec.get t.entries parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let n = Vec.length t.entries in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && less (Vec.get t.entries l) (Vec.get t.entries !smallest) then smallest := l;
  if r < n && less (Vec.get t.entries r) (Vec.get t.entries !smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let add t ~priority value =
  let entry = { prio = priority; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  Vec.push t.entries entry;
  sift_up t (Vec.length t.entries - 1)

let min t =
  if Vec.is_empty t.entries then None
  else
    let e = Vec.get t.entries 0 in
    Some (e.prio, e.value)

let pop t =
  if Vec.is_empty t.entries then None
  else begin
    let top = Vec.get t.entries 0 in
    let n = Vec.length t.entries in
    if n = 1 then ignore (Vec.pop_exn t.entries)
    else begin
      Vec.set t.entries 0 (Vec.get t.entries (n - 1));
      ignore (Vec.pop_exn t.entries);
      sift_down t 0
    end;
    Some (top.prio, top.value)
  end

let clear t = Vec.clear t.entries
