type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  mutable capacity_hint : int;
}

let create () = { data = [||]; len = 0; capacity_hint = 0 }

(* Preallocating eagerly would require a dummy element, which is unsafe
   under the float-array optimisation, so the hint is honoured at the first
   push: the backing array jumps straight to [max capacity 8] instead of
   re-growing through 8 -> 16 -> ... *)
let make ~capacity =
  if capacity < 0 then invalid_arg "Vec.make: negative capacity";
  { data = [||]; len = 0; capacity_hint = capacity }

let length t = t.len

let capacity t = Array.length t.data

let is_empty t = t.len = 0

let check_bounds t i = if i < 0 || i >= t.len then invalid_arg "Vec: index out of bounds"

let get t i =
  check_bounds t i;
  Array.unsafe_get t.data i

let set t i v =
  check_bounds t i;
  Array.unsafe_set t.data i v

let grow t v =
  let capacity = Array.length t.data in
  let capacity' = if capacity = 0 then max t.capacity_hint 8 else capacity * 2 in
  let data' = Array.make capacity' v in
  Array.blit t.data 0 data' 0 t.len;
  (* [Array.make] filled the tail with [v]; re-point those slots at a
     surviving element, or popping [v] later would leave stale copies of it
     alive in the unused tail (see the removal note below). *)
  if t.len > 0 then begin
    let dummy = Array.unsafe_get data' 0 in
    for i = t.len to capacity' - 1 do
      Array.unsafe_set data' i dummy
    done
  end;
  t.data <- data'

let push t v =
  if t.len = Array.length t.data then grow t v;
  Array.unsafe_set t.data t.len v;
  t.len <- t.len + 1

(* Slots beyond [len] must not retain the elements that once lived there
   (closures, heap objects) — that would keep them alive for as long as the
   vector itself.  There is no universal dummy ('a may be float, so
   [Obj.magic] tricks are unsafe); a surviving element serves instead, so a
   vector that becomes empty retains exactly one element until the next
   push or collection of the vector itself. *)
let clear_slot t i =
  if t.len > 0 then Array.unsafe_set t.data i (Array.unsafe_get t.data 0)

let pop t =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    let v = Array.unsafe_get t.data t.len in
    clear_slot t t.len;
    Some v
  end

let pop_exn t =
  match pop t with
  | Some v -> v
  | None -> invalid_arg "Vec.pop_exn: empty"

let last t = if t.len = 0 then None else Some (Array.unsafe_get t.data (t.len - 1))

let swap_remove t i =
  check_bounds t i;
  let v = Array.unsafe_get t.data i in
  t.len <- t.len - 1;
  Array.unsafe_set t.data i (Array.unsafe_get t.data t.len);
  clear_slot t t.len;
  v

let clear t =
  if t.len > 0 then begin
    let dummy = Array.unsafe_get t.data 0 in
    for i = 1 to t.len - 1 do
      Array.unsafe_set t.data i dummy
    done;
    t.len <- 0
  end

let iter f t =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.data i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i (Array.unsafe_get t.data i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc (Array.unsafe_get t.data i)
  done;
  !acc

let exists p t =
  let rec loop i = i < t.len && (p (Array.unsafe_get t.data i) || loop (i + 1)) in
  loop 0

let to_list t = List.init t.len (fun i -> Array.unsafe_get t.data i)

let to_array t = Array.sub t.data 0 t.len

let of_list xs =
  let t = create () in
  List.iter (push t) xs;
  t

let sort cmp t =
  let a = to_array t in
  Array.sort cmp a;
  Array.blit a 0 t.data 0 t.len
