let word_bytes = 8

let clock_hz = 3.6e9

let cycles_of_us us = int_of_float (Float.round (us *. clock_hz /. 1e6))

let us_of_cycles c = float_of_int c *. 1e6 /. clock_hz

let ms_of_cycles c = float_of_int c *. 1e3 /. clock_hz

let seconds_of_cycles c = float_of_int c /. clock_hz

let bytes_of_words w = w * word_bytes

let words_of_bytes b = (b + word_bytes - 1) / word_bytes

let pp_cycles ppf c =
  let f = float_of_int c in
  if f >= 1e9 then Format.fprintf ppf "%.2f Gcycles" (f /. 1e9)
  else if f >= 1e6 then Format.fprintf ppf "%.2f Mcycles" (f /. 1e6)
  else if f >= 1e3 then Format.fprintf ppf "%.2f Kcycles" (f /. 1e3)
  else Format.fprintf ppf "%d cycles" c

let pp_words ppf w =
  let b = float_of_int (bytes_of_words w) in
  if b >= 1048576.0 then Format.fprintf ppf "%.2f MiB" (b /. 1048576.0)
  else if b >= 1024.0 then Format.fprintf ppf "%.2f KiB" (b /. 1024.0)
  else Format.fprintf ppf "%d B" (bytes_of_words w)
