(** Plain-text table rendering for the paper's tables.

    Right-aligns numeric columns, marks best-in-row/column cells, and prints
    GitHub-style pipe tables so the bench output can be compared directly
    with the paper. *)

type cell =
  | Text of string
  | Num of float * int  (** value, decimal places *)
  | Missing  (** blank entry: collector cannot run this configuration *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> label:string -> cell list -> unit
(** Number of cells must match the number of columns. *)

val add_separator : t -> unit

val mark_best_in_row : t -> min:bool -> unit
(** After all rows are added: annotate the best (smallest if [min]) numeric
    cell of each row with [*]. *)

val mark_best_in_column : t -> min:bool -> unit
(** Annotate the best numeric cell of each column with [*]. *)

val render : t -> string

val print : t -> unit
(** [render] to stdout, followed by a blank line. *)
