(* 32 sub-buckets per power of two gives a worst-case relative quantile
   error of ~3%, plenty for percentile plots. Values below [linear_limit]
   get exact unit buckets. *)

let sub_buckets = 32
let linear_limit = 64 (* values < linear_limit are stored exactly *)
let num_buckets = 2048

type t = {
  counts : int array;
  mutable n : int;
  mutable sum : int;
  mutable max_seen : int;
}

let create () = { counts = Array.make num_buckets 0; n = 0; sum = 0; max_seen = 0 }

(* Bucket layout: indices [0, linear_limit) are exact.  Above that, each
   octave [2^k, 2^(k+1)) is split into [sub_buckets] equal slices. *)
let bucket_of_value v =
  if v < linear_limit then v
  else begin
    let octave = ref 0 in
    let x = ref v in
    while !x >= linear_limit * 2 do
      x := !x lsr 1;
      incr octave
    done;
    (* !x is in [linear_limit, 2*linear_limit) *)
    let slice = (!x - linear_limit) * sub_buckets / linear_limit in
    let idx = linear_limit + (!octave * sub_buckets) + slice in
    if idx >= num_buckets then num_buckets - 1 else idx
  end

let upper_bound_of_bucket i =
  if i < linear_limit then i
  else begin
    let rel = i - linear_limit in
    let octave = rel / sub_buckets in
    let slice = rel mod sub_buckets in
    let base = linear_limit lsl octave in
    let width = base / sub_buckets in
    base + ((slice + 1) * width) - 1
  end

let record_many t v ~count =
  assert (count >= 0);
  if count > 0 then begin
    let v = if v < 0 then 0 else v in
    let i = bucket_of_value v in
    t.counts.(i) <- t.counts.(i) + count;
    t.n <- t.n + count;
    t.sum <- t.sum + (v * count);
    if v > t.max_seen then t.max_seen <- v
  end

let record t v = record_many t v ~count:1

let count t = t.n

let total t = t.sum

let max_value t = t.max_seen

let is_empty t = t.n = 0

let mean t = if t.n = 0 then 0.0 else float_of_int t.sum /. float_of_int t.n

let percentile_opt t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: p outside [0, 100]";
  if t.n = 0 then None
  else begin
    let target =
      let exact = p /. 100.0 *. float_of_int t.n in
      let r = int_of_float (Float.ceil exact) in
      if r < 1 then 1 else if r > t.n then t.n else r
    in
    let rec scan i seen =
      let seen = seen + t.counts.(i) in
      if seen >= target then Stdlib.min (upper_bound_of_bucket i) t.max_seen
      else scan (i + 1) seen
    in
    Some (scan 0 0)
  end

let percentile t p = match percentile_opt t p with None -> 0 | Some v -> v

let percentiles t ps = List.map (fun p -> (p, percentile t p)) ps

let merge_into ~dst src =
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.n <- dst.n + src.n;
  dst.sum <- dst.sum + src.sum;
  if src.max_seen > dst.max_seen then dst.max_seen <- src.max_seen
