(** Summary statistics used throughout the evaluation harness.

    The paper reports, for each configuration, the mean and 95% confidence
    interval over 20 invocations, and geometric means across benchmarks.
    These helpers implement exactly those aggregations. *)

val mean : float array -> float
(** Arithmetic mean.  Raises [Invalid_argument] on an empty array. *)

val stddev : float array -> float
(** Sample standard deviation (Bessel-corrected).  Returns 0 for fewer than
    two samples. *)

val ci95_half_width : float array -> float
(** Half-width of the two-sided 95% confidence interval of the mean, using
    Student's t distribution for the sample size at hand.  Returns 0 for
    fewer than two samples. *)

val geomean : float array -> float
(** Geometric mean.  All values must be positive. *)

val min : float array -> float

val max : float array -> float

val percentile : float array -> float -> float
(** [percentile samples p] for [p] in [\[0, 100\]], by linear interpolation
    between closest ranks on a sorted copy.  Raises on an empty array. *)

val t_critical_95 : int -> float
(** Two-sided 95% Student-t critical value for the given degrees of freedom
    (tabulated for small df, 1.96 asymptotically). *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  ci95 : float;  (** half-width *)
  min : float;
  max : float;
}

val summarize : float array -> summary
(** All of the above in one pass (plus a sort).  Raises on empty input. *)

val pp_summary : Format.formatter -> summary -> unit
