type cell =
  | Text of string
  | Num of float * int
  | Missing

type cells_row = { label : string; cells : cell array; starred : bool array }

type row =
  | Cells of cells_row
  | Separator

type t = {
  title : string;
  columns : string array;
  rows : row Vec.t;
}

let create ~title ~columns = { title; columns = Array.of_list columns; rows = Vec.create () }

let add_row t ~label cells =
  let cells = Array.of_list cells in
  if Array.length cells <> Array.length t.columns then
    invalid_arg "Tablefmt.add_row: cell count mismatch";
  Vec.push t.rows (Cells { label; cells; starred = Array.make (Array.length cells) false })

let add_separator t = Vec.push t.rows Separator

let numeric_value = function
  | Num (v, _) -> Some v
  | Text _ | Missing -> None

let better ~min a b = if min then a < b else a > b

let mark_best_in_row t ~min =
  let mark_row = function
    | Separator -> ()
    | Cells r ->
        let best = ref None in
        Array.iteri
          (fun i c ->
            match numeric_value c with
            | None -> ()
            | Some v -> (
                match !best with
                | None -> best := Some (i, v)
                | Some (_, bv) -> if better ~min v bv then best := Some (i, v)))
          r.cells;
        Option.iter (fun (i, _) -> r.starred.(i) <- true) !best
  in
  Vec.iter mark_row t.rows

let mark_best_in_column t ~min =
  let ncols = Array.length t.columns in
  for col = 0 to ncols - 1 do
    let best = ref None in
    Vec.iter
      (function
        | Separator -> ()
        | Cells r -> (
            match numeric_value r.cells.(col) with
            | None -> ()
            | Some v -> (
                match !best with
                | None -> best := Some (r, v)
                | Some (_, bv) -> if better ~min v bv then best := Some (r, v))))
      t.rows;
    match !best with
    | None -> ()
    | Some (r, _) -> r.starred.(col) <- true
  done

let cell_text cell starred =
  let star = if starred then "*" else "" in
  match cell with
  | Text s -> s ^ star
  | Num (v, places) -> Printf.sprintf "%.*f%s" places v star
  | Missing -> ""

let render t =
  let ncols = Array.length t.columns in
  let widths = Array.make (ncols + 1) 0 in
  let consider i s = if String.length s > widths.(i) then widths.(i) <- String.length s in
  consider 0 "";
  Array.iteri (fun i c -> consider (i + 1) c) t.columns;
  Vec.iter
    (function
      | Separator -> ()
      | Cells r ->
          consider 0 r.label;
          Array.iteri (fun i c -> consider (i + 1) (cell_text c r.starred.(i))) r.cells)
    t.rows;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  let pad_left s w = String.make (w - String.length s) ' ' ^ s in
  let pad_right s w = s ^ String.make (w - String.length s) ' ' in
  let emit_line label cells =
    Buffer.add_string buf "| ";
    Buffer.add_string buf (pad_right label widths.(0));
    Array.iteri
      (fun i c ->
        Buffer.add_string buf " | ";
        Buffer.add_string buf (pad_left c widths.(i + 1)))
      cells;
    Buffer.add_string buf " |\n"
  in
  let separator_line () =
    Buffer.add_string buf "|";
    for i = 0 to ncols do
      Buffer.add_string buf (String.make (widths.(i) + 2) '-');
      Buffer.add_string buf "|"
    done;
    Buffer.add_char buf '\n'
  in
  emit_line "" t.columns;
  separator_line ();
  Vec.iter
    (function
      | Separator -> separator_line ()
      | Cells r ->
          emit_line r.label (Array.mapi (fun i c -> cell_text c r.starred.(i)) r.cells))
    t.rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()
