(** Unit conventions and conversions.

    The whole simulator measures work in {e cycles} (int) and memory in
    {e words} (int, 1 word = 8 bytes).  These helpers convert to human units
    for reporting only — no simulation arithmetic is done in floating
    point. *)

val word_bytes : int
(** 8: the simulated machine is 64-bit. *)

val clock_hz : float
(** Simulated clock: 3.6 GHz, matching the paper's fixed-frequency
    i9-9900K. *)

val cycles_of_us : float -> int
(** Microseconds to cycles, rounded. *)

val us_of_cycles : int -> float

val ms_of_cycles : int -> float

val seconds_of_cycles : int -> float

val bytes_of_words : int -> int

val words_of_bytes : int -> int
(** Rounds up. *)

val pp_cycles : Format.formatter -> int -> unit
(** Human-readable, e.g. "1.25 Gcycles". *)

val pp_words : Format.formatter -> int -> unit
(** Human-readable, e.g. "64 KiB" (converted to bytes). *)
