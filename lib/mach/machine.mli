(** Description of the simulated hardware.

    The paper's testbed is an Intel Core i9-9900K: 8 cores / 16 hardware
    threads, fixed frequency (Turbo Boost disabled), 128 GiB of RAM.  We
    model it as [cpus] identical logical processors at a fixed clock; SMT
    sharing is folded into the cost model rather than modelled
    structurally (documented substitution in DESIGN.md). *)

type t = {
  cpus : int;  (** logical processors available to the process *)
  memory_words : int;
      (** physical memory available for the heap; bounds how large an
          Epsilon (no-GC) heap may grow before the run is declared
          infeasible, mirroring the paper's use of Epsilon only "where it is
          able to run a benchmark without exhausting the memory" *)
}

val default : t
(** 16 CPUs, 16 Mi-words (128 MiB) of heap memory — the scaled-down
    equivalent of the paper's machine (see DESIGN.md §6 on scaling). *)

val with_cpus : t -> int -> t
(** Restrict the CPU count (multi-tenant / opportunity-cost studies). *)

val pp : Format.formatter -> t -> unit
