(** The cycle cost model.

    Every mechanism in the simulator charges cycles through one of these
    constants, so the whole calibration lives in this single module.  Values
    are rough micro-architectural costs on a Coffee-Lake-class core,
    informed by the barrier-cost literature the paper cites (Blackburn &
    Hosking 2004; Yang et al. 2012: card-mark and SATB barriers cost a few
    percent of mutator time; concurrent copying read barriers considerably
    more) and by typical HotSpot trace/copy throughput.  The absolute
    numbers matter less than their ratios: the reproduction targets the
    paper's *shapes* (who wins, by roughly what factor), not its absolute
    wall-clock numbers.

    All costs are in cycles unless stated otherwise. *)

type t = {
  (* -- allocation ---------------------------------------------------- *)
  alloc_fast : int;  (** bump-pointer fast path per allocation *)
  alloc_init_per_word : int;  (** zeroing/header initialisation per word *)
  tlab_refill : int;  (** acquiring a fresh local allocation buffer *)
  alloc_slow : int;  (** shared-pool slow path (lock, region fetch) *)
  (* -- barriers (charged per mutator heap operation) ------------------ *)
  barrier_none : int;  (** cost of an untaken conditional check *)
  card_mark : int;  (** generational post-write barrier *)
  satb_idle : int;  (** SATB pre-write barrier, marking inactive *)
  satb_active : int;  (** SATB pre-write barrier while marking *)
  lvb_idle : int;  (** ZGC/Shenandoah load barrier, no relocation *)
  lvb_slow : int;  (** load-barrier slow path during relocation *)
  rc_barrier : int;
      (** RC field-logging write barrier (LXR): log the mutated field into
          a thread-local decrement/increment buffer *)
  rc_update_per_entry : int;
      (** processing one buffered RC entry (increment apply or deferred
          decrement) during an RC-update pause *)
  (* -- collection work ------------------------------------------------ *)
  mark_per_object : int;  (** visit + test-and-set mark bit *)
  mark_per_edge : int;  (** field load and publish to mark stack *)
  concurrent_mark_penalty_pct : int;
      (** extra cost of marking concurrently with the mutator (atomic mark
          bits, SATB buffer processing, cache contention), as a percentage
          added to STW marking cost *)
  copy_per_object : int;  (** header, forwarding install (STW) *)
  copy_per_object_concurrent : int;  (** as above plus CAS (concurrent) *)
  copy_per_word : int;  (** memcpy throughput *)
  compact_per_word : int;  (** sliding compaction move *)
  update_ref_per_edge : int;  (** pointer fix-up after evacuation *)
  sweep_per_region : int;  (** per-region sweep/return to free pool *)
  (* -- coordination ---------------------------------------------------- *)
  safepoint_global : int;  (** reaching a global safepoint *)
  safepoint_per_thread : int;  (** per parked mutator *)
  gc_task_dispatch : int;  (** handing one work packet to a worker *)
  termination_per_worker : int;  (** work-stealing termination barrier,
                                     charged x ceil(log2 workers) *)
  (* -- locality side-effects ------------------------------------------ *)
  cache_disruption_per_pause : int;
      (** cold-cache penalty charged to each running mutator after a pause
          (paper §II-B: GC displaces the mutator's cache) *)
}

val default : t

val zero_barriers : t -> t
(** All barrier costs set to zero — used to measure the ground-truth ideal
    cost in the LBO validation study. *)

val log2_ceil : int -> int
(** [log2_ceil n] for n >= 1. Helper for termination-barrier charging. *)
