type t = {
  cpus : int;
  memory_words : int;
}

let default = { cpus = 16; memory_words = 16 * 1024 * 1024 }

let with_cpus t cpus =
  if cpus < 1 then invalid_arg "Machine.with_cpus: cpus < 1";
  { t with cpus }

let pp ppf t =
  Format.fprintf ppf "machine(cpus=%d, memory=%a)" t.cpus Gcr_util.Units.pp_words
    t.memory_words
