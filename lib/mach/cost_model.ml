type t = {
  alloc_fast : int;
  alloc_init_per_word : int;
  tlab_refill : int;
  alloc_slow : int;
  barrier_none : int;
  card_mark : int;
  satb_idle : int;
  satb_active : int;
  lvb_idle : int;
  lvb_slow : int;
  rc_barrier : int;
  rc_update_per_entry : int;
  mark_per_object : int;
  mark_per_edge : int;
  concurrent_mark_penalty_pct : int;
  copy_per_object : int;
  copy_per_object_concurrent : int;
  copy_per_word : int;
  compact_per_word : int;
  update_ref_per_edge : int;
  sweep_per_region : int;
  safepoint_global : int;
  safepoint_per_thread : int;
  gc_task_dispatch : int;
  termination_per_worker : int;
  cache_disruption_per_pause : int;
}

let default =
  {
    alloc_fast = 10;
    alloc_init_per_word = 1;
    tlab_refill = 300;
    alloc_slow = 800;
    barrier_none = 0;
    card_mark = 2;
    satb_idle = 1;
    satb_active = 6;
    lvb_idle = 3;
    lvb_slow = 16;
    rc_barrier = 4;
    rc_update_per_entry = 3;
    mark_per_object = 25;
    mark_per_edge = 8;
    concurrent_mark_penalty_pct = 100;
    copy_per_object = 30;
    copy_per_object_concurrent = 70;
    copy_per_word = 4;
    compact_per_word = 6;
    update_ref_per_edge = 10;
    sweep_per_region = 150;
    safepoint_global = 3000;
    safepoint_per_thread = 500;
    gc_task_dispatch = 400;
    termination_per_worker = 1000;
    cache_disruption_per_pause = 4000;
  }

let zero_barriers t =
  {
    t with
    barrier_none = 0;
    card_mark = 0;
    satb_idle = 0;
    satb_active = 0;
    lvb_idle = 0;
    lvb_slow = 0;
    rc_barrier = 0;
  }

let log2_ceil n =
  if n < 1 then invalid_arg "Cost_model.log2_ceil";
  let rec loop acc pow = if pow >= n then acc else loop (acc + 1) (pow * 2) in
  loop 0 1
