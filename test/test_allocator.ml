(* Bump allocator: fast path, refills, retirement, pool exhaustion. *)

module Heap = Gcr_heap.Heap
module Region = Gcr_heap.Region
module Allocator = Gcr_heap.Allocator

let check = Alcotest.check

let make_heap ?(regions = 4) ?(region_words = 32) () =
  Heap.create ~capacity_words:(regions * region_words) ~region_words ()

let alloc_exn a ~size =
  match Allocator.alloc a ~size ~nfields:0 with
  | Allocator.Allocated { obj; refilled } -> (obj, refilled)
  | Allocator.Out_of_regions -> Alcotest.fail "unexpected Out_of_regions"

let test_first_alloc_refills () =
  let h = make_heap () in
  let a = Allocator.create h ~space:Region.Eden in
  let _, refilled = alloc_exn a ~size:8 in
  check Alcotest.bool "first allocation refills" true refilled;
  let _, refilled = alloc_exn a ~size:8 in
  check Alcotest.bool "second hits fast path" false refilled

let test_refill_on_full () =
  let h = make_heap ~region_words:32 () in
  let a = Allocator.create h ~space:Region.Eden in
  ignore (alloc_exn a ~size:24);
  let _, refilled = alloc_exn a ~size:16 in
  check Alcotest.bool "fresh region taken" true refilled;
  check Alcotest.int "two regions in use" 2 (4 - Heap.free_regions h)

let test_out_of_regions () =
  let h = make_heap ~regions:2 ~region_words:32 () in
  let a = Allocator.create h ~space:Region.Eden in
  ignore (alloc_exn a ~size:24);
  ignore (alloc_exn a ~size:24);
  (match Allocator.alloc a ~size:24 ~nfields:0 with
  | Allocator.Out_of_regions -> ()
  | Allocator.Allocated _ -> Alcotest.fail "expected exhaustion")

let test_retire_and_refill () =
  let h = make_heap () in
  let a = Allocator.create h ~space:Region.Eden in
  ignore (alloc_exn a ~size:8);
  let before = Option.get (Allocator.current_region a) in
  Allocator.retire a;
  check Alcotest.bool "no current after retire" true (Allocator.current_region a = None);
  let _, refilled = alloc_exn a ~size:8 in
  check Alcotest.bool "refilled after retire" true refilled;
  let after = Option.get (Allocator.current_region a) in
  check Alcotest.bool "different region" true (before.Region.index <> after.Region.index)

let test_explicit_refill () =
  let h = make_heap () in
  let a = Allocator.create h ~space:Region.Old in
  let r = Option.get (Allocator.refill a) in
  check Alcotest.bool "labelled old" true (Region.space_equal r.Region.space Region.Old);
  check Alcotest.bool "is current" true
    (match Allocator.current_region a with Some c -> c.Region.index = r.Region.index | None -> false)

let test_space_exposed () =
  let h = make_heap () in
  let a = Allocator.create h ~space:Region.Survivor in
  check Alcotest.bool "space" true (Region.space_equal (Allocator.space a) Region.Survivor)

let test_oversized_object_rejected () =
  let h = make_heap ~region_words:32 () in
  let a = Allocator.create h ~space:Region.Eden in
  Alcotest.check_raises "oversized"
    (Invalid_argument "Allocator.alloc: object larger than a region") (fun () ->
      ignore (Allocator.alloc a ~size:40 ~nfields:0))

let test_respects_reserve () =
  let h = make_heap ~regions:4 () in
  Heap.set_alloc_reserve h 2;
  let a = Allocator.create h ~space:Region.Eden in
  ignore (alloc_exn a ~size:30);
  (* free 3 > reserve: second region still allowed *)
  ignore (alloc_exn a ~size:30);
  (* free 2 = reserve: third region is withheld *)
  (match Allocator.alloc a ~size:30 ~nfields:0 with
  | Allocator.Out_of_regions -> ()
  | Allocator.Allocated _ -> Alcotest.fail "reserve not respected")

let suite =
  [
    Alcotest.test_case "first alloc refills" `Quick test_first_alloc_refills;
    Alcotest.test_case "refill on full" `Quick test_refill_on_full;
    Alcotest.test_case "out of regions" `Quick test_out_of_regions;
    Alcotest.test_case "retire" `Quick test_retire_and_refill;
    Alcotest.test_case "explicit refill" `Quick test_explicit_refill;
    Alcotest.test_case "space exposed" `Quick test_space_exposed;
    Alcotest.test_case "oversized rejected" `Quick test_oversized_object_rejected;
    Alcotest.test_case "respects reserve" `Quick test_respects_reserve;
  ]
