(* The shared young-generation scavenge: survivors copied, garbage
   reclaimed, aging and promotion, remembered-set roots. *)

module Heap = Gcr_heap.Heap
module Region = Gcr_heap.Region
module Obj_model = Gcr_heap.Obj_model
module Allocator = Gcr_heap.Allocator
module Engine = Gcr_engine.Engine
module Gc_types = Gcr_gcs.Gc_types
module Scavenge = Gcr_gcs.Scavenge
module Remset = Gcr_gcs.Remset
module Worker_pool = Gcr_gcs.Worker_pool

let check = Alcotest.check

let setup () =
  let heap = Heap.create ~capacity_words:(64 * 64) ~region_words:64 () in
  let engine = Engine.create ~cpus:4 () in
  let ctx =
    Gc_types.make_ctx ~heap ~engine ~cost:Gcr_mach.Cost_model.default
      ~machine:Gcr_mach.Machine.default
  in
  (ctx, heap, engine)

let set_roots ctx ids = ctx.Gc_types.iter_roots := fun f -> List.iter f ids

let alloc_eden ctx ~nfields =
  let heap = ctx.Gc_types.heap in
  let allocator = Allocator.create heap ~space:Region.Eden in
  Gcr_util.Vec.push ctx.Gc_types.allocators allocator;
  fun () ->
    match Allocator.alloc allocator ~size:(nfields + 2) ~nfields with
    | Allocator.Allocated { obj; _ } -> obj
    | Allocator.Out_of_regions -> Alcotest.fail "test heap too small"

let run_scavenge ctx engine ~remset ~tenure_age =
  let pool = Worker_pool.create ctx ~count:2 ~name:"scavenge-test" in
  let m = Engine.spawn engine ~kind:Engine.Mutator ~name:"driver" in
  let result = ref None in
  Engine.request_stop engine ~reason:"young" (fun () ->
      Scavenge.run ctx ~pool ~remset ~tenure_age ~on_mark_young:ignore
        ~on_done:(fun r ->
          result := Some r;
          Engine.release_stop engine;
          Engine.exit_thread engine m));
  (match Engine.run engine () with
  | Engine.All_mutators_finished -> ()
  | Engine.Aborted reason -> Alcotest.failf "aborted: %s" reason);
  Option.get !result

let space_of heap id = Heap.obj_space heap id

let test_survivors_copied_garbage_dies () =
  let ctx, heap, engine = setup () in
  let alloc = alloc_eden ctx ~nfields:1 in
  let live = alloc () in
  let child = alloc () in
  let dead = alloc () in
  Heap.set_field heap live 0 child;
  set_roots ctx [ live ];
  let remset = Remset.create heap in
  let result = run_scavenge ctx engine ~remset ~tenure_age:2 in
  check Alcotest.bool "no promotion failure" false result.Scavenge.promo_failed;
  check Alcotest.int "two survivors" 2 result.Scavenge.objects_copied;
  check Alcotest.bool "live survives" true (Heap.is_live heap live);
  check Alcotest.bool "child survives" true (Heap.is_live heap child);
  check Alcotest.bool "garbage dies" false (Heap.is_live heap dead);
  check Alcotest.bool "live now in survivor space" true
    (Region.space_equal (space_of heap live) Region.Survivor);
  check Alcotest.int "aged" 1 (Heap.obj_age heap live)

let test_promotion_by_age () =
  let ctx, heap, engine = setup () in
  let alloc = alloc_eden ctx ~nfields:0 in
  let elder = alloc () in
  Heap.set_obj_age heap elder 5;
  let young = alloc () in
  set_roots ctx [ elder; young ];
  let remset = Remset.create heap in
  let result = run_scavenge ctx engine ~remset ~tenure_age:2 in
  check Alcotest.bool "elder promoted to old" true
    (Region.space_equal (space_of heap elder) Region.Old);
  check Alcotest.bool "young to survivor" true
    (Region.space_equal (space_of heap young) Region.Survivor);
  (* promoted leaf objects (no fields) are not remset candidates *)
  check Alcotest.(list int) "no promoted-with-fields" [] result.Scavenge.promoted_with_fields

let test_remset_objects_are_roots () =
  let ctx, heap, engine = setup () in
  let alloc = alloc_eden ctx ~nfields:0 in
  let old_region = Option.get (Heap.take_free_region heap ~space:Region.Old) in
  let old_holder = Heap.alloc_in_region heap old_region ~size:4 ~nfields:1 in
  let young = alloc () in
  Heap.set_field heap old_holder 0 young;
  (* young is reachable ONLY through the old object *)
  set_roots ctx [];
  let remset = Remset.create heap in
  Remset.remember remset old_holder;
  let _ = run_scavenge ctx engine ~remset ~tenure_age:2 in
  check Alcotest.bool "young survived via remset" true (Heap.is_live heap young)

let test_without_remset_young_dies () =
  let ctx, heap, engine = setup () in
  let alloc = alloc_eden ctx ~nfields:0 in
  let old_region = Option.get (Heap.take_free_region heap ~space:Region.Old) in
  let old_holder = Heap.alloc_in_region heap old_region ~size:4 ~nfields:1 in
  let young = alloc () in
  Heap.set_field heap old_holder 0 young;
  set_roots ctx [];
  let remset = Remset.create heap in
  let _ = run_scavenge ctx engine ~remset ~tenure_age:2 in
  (* documents WHY the remembered set is needed *)
  check Alcotest.bool "young wrongly dead without remset entry" false
    (Heap.is_live heap young)

let test_promo_failure_flagged () =
  (* tiny heap: survivors cannot be copied anywhere *)
  let heap = Heap.create ~capacity_words:(3 * 64) ~region_words:64 () in
  let engine = Engine.create ~cpus:2 () in
  let ctx =
    Gc_types.make_ctx ~heap ~engine ~cost:Gcr_mach.Cost_model.default
      ~machine:Gcr_mach.Machine.default
  in
  let allocator = Allocator.create heap ~space:Region.Eden in
  Gcr_util.Vec.push ctx.Gc_types.allocators allocator;
  let roots = ref [] in
  (* fill all three regions with live data *)
  (try
     while true do
       match Allocator.alloc allocator ~size:8 ~nfields:0 with
       | Allocator.Allocated { obj; _ } -> roots := obj :: !roots
       | Allocator.Out_of_regions -> raise Exit
     done
   with Exit -> ());
  (ctx.Gc_types.iter_roots := fun f -> List.iter f !roots);
  let remset = Remset.create heap in
  let result = run_scavenge ctx engine ~remset ~tenure_age:2 in
  check Alcotest.bool "promotion failure reported" true result.Scavenge.promo_failed;
  (* heap must still be consistent: all roots alive *)
  List.iter
    (fun id -> check Alcotest.bool "root intact after failure" true (Heap.is_live heap id))
    !roots

let suite =
  [
    Alcotest.test_case "survivors copied, garbage dies" `Quick
      test_survivors_copied_garbage_dies;
    Alcotest.test_case "promotion by age" `Quick test_promotion_by_age;
    Alcotest.test_case "remset objects are roots" `Quick test_remset_objects_are_roots;
    Alcotest.test_case "without remset young dies" `Quick test_without_remset_young_dies;
    Alcotest.test_case "promotion failure flagged" `Quick test_promo_failure_flagged;
  ]
