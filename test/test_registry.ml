(* Registry, heap_ops, and Run-config plumbing. *)

module Registry = Gcr_gcs.Registry
module Gc_types = Gcr_gcs.Gc_types
module Stw_gen = Gcr_gcs.Stw_gen
module Heap = Gcr_heap.Heap
module Region = Gcr_heap.Region
module Obj_model = Gcr_heap.Obj_model
module Engine = Gcr_engine.Engine
module Heap_ops = Gcr_workloads.Heap_ops
module Suite = Gcr_workloads.Suite
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement

let check = Alcotest.check

let test_names_roundtrip () =
  List.iter
    (fun kind ->
      match Registry.of_name (Registry.name kind) with
      | Some k -> check Alcotest.bool "roundtrip" true (k = kind)
      | None -> Alcotest.fail "name did not round-trip")
    Registry.all

let test_aliases () =
  check Alcotest.bool "shen" true (Registry.of_name "shen" = Some Registry.Shenandoah);
  check Alcotest.bool "case" true (Registry.of_name "EPSILON" = Some Registry.Epsilon);
  check Alcotest.bool "lxr" true (Registry.of_name "lxr" = Some Registry.Lxr);
  check Alcotest.bool "lxr case" true (Registry.of_name "LXR" = Some Registry.Lxr);
  check Alcotest.bool "serialpt" true
    (Registry.of_name "serialpt" = Some Registry.Serial_pretenure);
  check Alcotest.bool "serial-pretenure" true
    (Registry.of_name "serial-pretenure" = Some Registry.Serial_pretenure);
  check Alcotest.bool "unknown" true (Registry.of_name "cms" = None)

let test_classification () =
  check Alcotest.bool "zgc concurrent" true (Registry.is_concurrent Registry.Zgc);
  check Alcotest.bool "serial not concurrent" false (Registry.is_concurrent Registry.Serial);
  check Alcotest.bool "g1 generational" true (Registry.is_generational Registry.G1);
  check Alcotest.bool "shenandoah not generational" false
    (Registry.is_generational Registry.Shenandoah);
  check Alcotest.int "six collectors" 6 (List.length Registry.all);
  check Alcotest.int "five production" 5 (List.length Registry.production);
  check Alcotest.bool "lxr concurrent" true (Registry.is_concurrent Registry.Lxr);
  check Alcotest.bool "lxr not generational" false (Registry.is_generational Registry.Lxr);
  check Alcotest.bool "serialpt generational" true
    (Registry.is_generational Registry.Serial_pretenure);
  check Alcotest.bool "frontier = all + experimental" true
    (Registry.frontier = Registry.all @ Registry.experimental);
  check
    Alcotest.(list string)
    "valid_names covers the frontier"
    (List.map Registry.name Registry.frontier)
    Registry.valid_names

let test_make_constructs_all () =
  List.iter
    (fun kind ->
      let heap = Heap.create ~capacity_words:(32 * 256) ~region_words:256 () in
      let engine = Engine.create ~cpus:4 () in
      let ctx =
        Gc_types.make_ctx ~heap ~engine ~cost:Gcr_mach.Cost_model.default
          ~machine:Gcr_mach.Machine.default
      in
      let gc = Registry.make kind ctx in
      check Alcotest.string "name matches" (Registry.name kind) gc.Gc_types.name;
      check Alcotest.bool "barriers non-negative" true
        (gc.Gc_types.read_barrier () >= 0 && gc.Gc_types.write_barrier () >= 0))
    Registry.frontier

let test_heap_ops_write_ref () =
  let heap = Heap.create ~capacity_words:(8 * 64) ~region_words:64 () in
  let engine = Engine.create ~cpus:2 () in
  let ctx =
    Gc_types.make_ctx ~heap ~engine ~cost:Gcr_mach.Cost_model.default
      ~machine:Gcr_mach.Machine.default
  in
  let gc = Registry.make Registry.Serial ctx in
  let r = Option.get (Heap.take_free_region heap ~space:Region.Old) in
  let src = Heap.alloc_in_region heap r ~size:4 ~nfields:1 in
  let eden = Option.get (Heap.take_free_region heap ~space:Region.Eden) in
  let target = Heap.alloc_in_region heap eden ~size:4 ~nfields:0 in
  let cost = Heap_ops.write_ref ~gc ~heap ~src ~slot:0 ~target in
  check Alcotest.int "field written" target (Heap.field heap src 0);
  check Alcotest.bool "barrier cost charged" true (cost > 0);
  (* Serial's write barrier put the old->young source in its remset: a
     second write is deduplicated by the remembered bit *)
  check Alcotest.bool "remembered" true (Heap.obj_remembered heap src);
  let value, read_cost = Heap_ops.read_ref ~gc ~heap ~src ~slot:0 in
  check Alcotest.int "read value" target value;
  check Alcotest.int "serial read barrier free" 0 read_cost

let test_collector_override () =
  (* Run.make_collector lets ablations inject custom configs. *)
  let spec = Spec.scale (Suite.find_exn "jme") 0.1 in
  let custom ctx =
    Stw_gen.make ctx { Stw_gen.name = "Serial"; stw_workers = 1; tenure_age = 0 }
  in
  let m =
    Run.execute
      {
        (Run.default_config ~spec ~gc:Registry.Serial ~heap_words:20_000 ~seed:4) with
        Run.make_collector = Some custom;
      }
  in
  check Alcotest.bool "completed with override" true (Measurement.completed m)

let suite =
  [
    Alcotest.test_case "names roundtrip" `Quick test_names_roundtrip;
    Alcotest.test_case "aliases" `Quick test_aliases;
    Alcotest.test_case "classification" `Quick test_classification;
    Alcotest.test_case "make constructs all" `Quick test_make_constructs_all;
    Alcotest.test_case "heap_ops write/read" `Quick test_heap_ops_write_ref;
    Alcotest.test_case "collector override" `Quick test_collector_override;
  ]
