(* Golden determinism test: one fixed-seed lusearch run per collector, with
   the complete measurement fingerprint checked against values recorded from
   the pre-optimisation simulator.  Hot-path rewrites (event queue, object
   table, engine step plumbing) must keep simulation results bit-identical;
   any silent behavioural change fails here loudly.

   To re-record after an *intentional* simulation change:
     GCR_GOLDEN_RECORD=1 dune exec test/test_main.exe -- test golden -e
   and paste the printed table over [expected] below. *)

module Suite = Gcr_workloads.Suite
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement
module Registry = Gcr_gcs.Registry
module Gc_types = Gcr_gcs.Gc_types

let spec = Spec.scale (Suite.find_exn "lusearch") 0.1

let heap_words = 36_864 (* 144 regions of 256 words: ~3x the live estimate *)

let seed = 42

type fingerprint = {
  gc : string;
  outcome : string;
  wall_total : int;
  wall_stw : int;
  cycles_mutator : int;
  cycles_gc : int;
  cycles_gc_stw : int;
  pause_count : int;
  allocated_words : int;
  allocated_objects : int;
  collections : int;
}

let fingerprint_of (m : Measurement.t) (stats : Gc_types.stats) =
  {
    gc = m.Measurement.gc;
    outcome =
      (match m.Measurement.outcome with
      | Measurement.Completed -> "ok"
      | Measurement.Failed reason -> "failed: " ^ reason);
    wall_total = m.Measurement.wall_total;
    wall_stw = m.Measurement.wall_stw;
    cycles_mutator = m.Measurement.cycles_mutator;
    cycles_gc = m.Measurement.cycles_gc;
    cycles_gc_stw = m.Measurement.cycles_gc_stw;
    pause_count = Measurement.pause_count m;
    allocated_words = m.Measurement.allocated_words;
    allocated_objects = m.Measurement.allocated_objects;
    collections = stats.Gc_types.collections;
  }

let run gc =
  let m = Run.execute (Run.default_config ~spec ~gc ~heap_words ~seed) in
  fingerprint_of m m.Measurement.gc_stats

let collectors =
  [
    Registry.Epsilon;
    Registry.Serial;
    Registry.Parallel;
    Registry.G1;
    Registry.Shenandoah;
    Registry.Zgc;
    Registry.Shenandoah_gen;
    Registry.Lxr;
    Registry.Serial_pretenure;
  ]

(* Recorded from the seed simulator (pre hot-path rewrite); every field is an
   exact integer equality.  Do not edit casually: a diff here means the
   simulation itself changed. *)
let expected : fingerprint list =
  [
    { gc = "Epsilon"; outcome = "ok"; wall_total = 5098553; wall_stw = 0;
      cycles_mutator = 81536905; cycles_gc = 0; cycles_gc_stw = 0;
      pause_count = 0; allocated_words = 519017; allocated_objects = 38418;
      collections = 0 };
    { gc = "Serial"; outcome = "ok"; wall_total = 11715106; wall_stw = 2496634;
      cycles_mutator = 82767112; cycles_gc = 2496634; cycles_gc_stw = 2496634;
      pause_count = 98; allocated_words = 519184; allocated_objects = 38418;
      collections = 98 };
    { gc = "Parallel"; outcome = "ok"; wall_total = 10516333; wall_stw = 1297861;
      cycles_mutator = 82767112; cycles_gc = 7596634; cycles_gc_stw = 7596634;
      pause_count = 98; allocated_words = 519184; allocated_objects = 38418;
      collections = 98 };
    { gc = "G1"; outcome = "ok"; wall_total = 9521793; wall_stw = 1235607;
      cycles_mutator = 83299764; cycles_gc = 7745947; cycles_gc_stw = 7380199;
      pause_count = 85; allocated_words = 519026; allocated_objects = 38418;
      collections = 85 };
    { gc = "Shenandoah"; outcome = "ok"; wall_total = 18106099; wall_stw = 643062;
      cycles_mutator = 97909266; cycles_gc = 19923042; cycles_gc_stw = 1843444;
      pause_count = 169; allocated_words = 520489; allocated_objects = 38418;
      collections = 84 };
    { gc = "ZGC"; outcome = "ok"; wall_total = 9185490; wall_stw = 116840;
      cycles_mutator = 101573698; cycles_gc = 5124376; cycles_gc_stw = 168840;
      pause_count = 52; allocated_words = 514910; allocated_objects = 38418;
      collections = 26 };
    { gc = "GenShen"; outcome = "ok"; wall_total = 9979885; wall_stw = 966084;
      cycles_mutator = 92875024; cycles_gc = 5990001; cycles_gc_stw = 5603179;
      pause_count = 70; allocated_words = 519135; allocated_objects = 38418;
      collections = 72 };
    { gc = "LXR"; outcome = "ok"; wall_total = 11142029; wall_stw = 3017509;
      cycles_mutator = 83555302; cycles_gc = 3017509; cycles_gc_stw = 3017509;
      pause_count = 69; allocated_words = 518898; allocated_objects = 38418;
      collections = 69 };
    { gc = "SerialPT"; outcome = "ok"; wall_total = 9925889; wall_stw = 2182317;
      cycles_mutator = 82710309; cycles_gc = 2182317; cycles_gc_stw = 2182317;
      pause_count = 69; allocated_words = 519505; allocated_objects = 38418;
      collections = 69 };
  ]

let print_fingerprint f =
  Printf.printf
    "    { gc = %S; outcome = %S; wall_total = %d; wall_stw = %d;\n\
    \      cycles_mutator = %d; cycles_gc = %d; cycles_gc_stw = %d;\n\
    \      pause_count = %d; allocated_words = %d; allocated_objects = %d;\n\
    \      collections = %d };\n"
    f.gc f.outcome f.wall_total f.wall_stw f.cycles_mutator f.cycles_gc
    f.cycles_gc_stw f.pause_count f.allocated_words f.allocated_objects
    f.collections

let check_one expected_f =
  let actual = run (Option.get (Registry.of_name expected_f.gc)) in
  Alcotest.(check string) (expected_f.gc ^ " outcome") expected_f.outcome actual.outcome;
  let field name e a = Alcotest.(check int) (expected_f.gc ^ " " ^ name) e a in
  field "wall_total" expected_f.wall_total actual.wall_total;
  field "wall_stw" expected_f.wall_stw actual.wall_stw;
  field "cycles_mutator" expected_f.cycles_mutator actual.cycles_mutator;
  field "cycles_gc" expected_f.cycles_gc actual.cycles_gc;
  field "cycles_gc_stw" expected_f.cycles_gc_stw actual.cycles_gc_stw;
  field "pause_count" expected_f.pause_count actual.pause_count;
  field "allocated_words" expected_f.allocated_words actual.allocated_words;
  field "allocated_objects" expected_f.allocated_objects actual.allocated_objects;
  field "collections" expected_f.collections actual.collections

let test_golden () =
  if Sys.getenv_opt "GCR_GOLDEN_RECORD" <> None then begin
    Printf.printf "let expected : fingerprint list =\n  [\n";
    List.iter (fun gc -> print_fingerprint (run gc)) collectors;
    Printf.printf "  ]\n%!"
  end
  else begin
    Alcotest.(check int)
      "golden table covers every collector" (List.length collectors)
      (List.length expected);
    List.iter check_one expected
  end

let suite = [ Alcotest.test_case "fixed-seed lusearch per collector" `Quick test_golden ]
