(* Remembered set: dedup, rebuild filtering, clear. *)

module Heap = Gcr_heap.Heap
module Region = Gcr_heap.Region
module Obj_model = Gcr_heap.Obj_model
module Remset = Gcr_gcs.Remset

let check = Alcotest.check

let setup () =
  let heap = Heap.create ~capacity_words:(16 * 64) ~region_words:64 () in
  let old_region = Option.get (Heap.take_free_region heap ~space:Region.Old) in
  let eden = Option.get (Heap.take_free_region heap ~space:Region.Eden) in
  (heap, old_region, eden)

let alloc heap region ~nfields =
  let id = Heap.alloc_in_region heap region ~size:(nfields + 2) ~nfields in
  if Obj_model.is_null id then failwith "alloc: region full";
  id

let test_dedup () =
  let heap, old_region, _ = setup () in
  let rs = Remset.create heap in
  let o = alloc heap old_region ~nfields:1 in
  Remset.remember rs o;
  Remset.remember rs o;
  Remset.remember rs o;
  check Alcotest.int "one entry" 1 (Remset.size rs);
  check Alcotest.bool "bit set" true (Heap.obj_remembered heap o)

let test_rebuild_keeps_young_pointers () =
  let heap, old_region, eden = setup () in
  let rs = Remset.create heap in
  let points_young = alloc heap old_region ~nfields:1 in
  let points_old = alloc heap old_region ~nfields:1 in
  let young = alloc heap eden ~nfields:0 in
  let old_target = alloc heap old_region ~nfields:0 in
  Heap.set_field heap points_young 0 young;
  Heap.set_field heap points_old 0 old_target;
  Remset.remember rs points_young;
  Remset.remember rs points_old;
  Remset.rebuild rs ~extra:[];
  check Alcotest.int "only the young-pointing entry kept" 1 (Remset.size rs);
  let kept = ref [] in
  Remset.iter rs (fun id -> kept := id :: !kept);
  check Alcotest.(list int) "kept the right one" [ points_young ] !kept;
  check Alcotest.bool "dropped entry bit cleared" false (Heap.obj_remembered heap points_old)

let test_rebuild_considers_extra () =
  let heap, old_region, eden = setup () in
  let rs = Remset.create heap in
  let promoted = alloc heap old_region ~nfields:1 in
  let young = alloc heap eden ~nfields:0 in
  Heap.set_field heap promoted 0 young;
  Remset.rebuild rs ~extra:[ promoted ];
  check Alcotest.int "promoted object retained" 1 (Remset.size rs)

let test_rebuild_drops_dead () =
  let heap, old_region, _ = setup () in
  let rs = Remset.create heap in
  let o = alloc heap old_region ~nfields:1 in
  Remset.remember rs o;
  Heap.release_region heap old_region;
  Remset.rebuild rs ~extra:[];
  check Alcotest.int "dead entry dropped" 0 (Remset.size rs)

let test_clear () =
  let heap, old_region, eden = setup () in
  let rs = Remset.create heap in
  let o = alloc heap old_region ~nfields:1 in
  let young = alloc heap eden ~nfields:0 in
  Heap.set_field heap o 0 young;
  Remset.remember rs o;
  Remset.clear rs;
  check Alcotest.int "empty" 0 (Remset.size rs);
  check Alcotest.bool "bit cleared" false (Heap.obj_remembered heap o);
  (* rememberable again after clear *)
  Remset.remember rs o;
  check Alcotest.int "re-added" 1 (Remset.size rs)

let suite =
  [
    Alcotest.test_case "dedup" `Quick test_dedup;
    Alcotest.test_case "rebuild keeps young pointers" `Quick test_rebuild_keeps_young_pointers;
    Alcotest.test_case "rebuild considers extra" `Quick test_rebuild_considers_extra;
    Alcotest.test_case "rebuild drops dead" `Quick test_rebuild_drops_dead;
    Alcotest.test_case "clear" `Quick test_clear;
  ]
