(* Tracer: exact reachability, filters, incremental draining, SATB-style
   root publication mid-trace. *)

module Heap = Gcr_heap.Heap
module Region = Gcr_heap.Region
module Obj_model = Gcr_heap.Obj_model
module Gc_types = Gcr_gcs.Gc_types
module Tracer = Gcr_gcs.Tracer
module Engine = Gcr_engine.Engine
module Prng = Gcr_util.Prng

let check = Alcotest.check

let make_ctx ?(regions = 32) ?(region_words = 64) () =
  let heap = Heap.create ~capacity_words:(regions * region_words) ~region_words () in
  let engine = Engine.create ~cpus:4 () in
  Gc_types.make_ctx ~heap ~engine ~cost:Gcr_mach.Cost_model.default
    ~machine:Gcr_mach.Machine.default

let alloc ctx region ~nfields =
  let id = Heap.alloc_in_region ctx.Gc_types.heap region ~size:(nfields + 2) ~nfields in
  if Obj_model.is_null id then failwith "alloc: region full";
  id

(* Build a random object graph; return the object ids. *)
let build_graph ctx ~objects ~edges ~seed =
  let heap = ctx.Gc_types.heap in
  let region = Option.get (Heap.take_free_region heap ~space:Region.Eden) in
  let region = ref region in
  let prng = Prng.create seed in
  let objs =
    Array.init objects (fun _ ->
        let nfields = 3 in
        let id = Heap.alloc_in_region heap !region ~size:(nfields + 2) ~nfields in
        if not (Obj_model.is_null id) then id
        else begin
          region := Option.get (Heap.take_free_region heap ~space:Region.Eden);
          let id = Heap.alloc_in_region heap !region ~size:(nfields + 2) ~nfields in
          if Obj_model.is_null id then failwith "build_graph: fresh region full";
          id
        end)
  in
  for _ = 1 to edges do
    let src = objs.(Prng.int prng objects) in
    let dst = objs.(Prng.int prng objects) in
    Heap.set_field heap src (Prng.int prng 3) dst
  done;
  objs

let drain_fully tracer =
  let total = ref 0 in
  let rec loop () =
    let cost = Tracer.drain tracer ~budget:7 in
    if cost > 0 || Tracer.pending tracer then begin
      total := !total + cost;
      loop ()
    end
  in
  loop ();
  !total

let test_marks_exactly_reachable () =
  let ctx = make_ctx () in
  let heap = ctx.Gc_types.heap in
  let objs = build_graph ctx ~objects:100 ~edges:150 ~seed:3 in
  let roots = [ objs.(0); objs.(50) ] in
  ignore (Heap.begin_mark_epoch heap);
  let tracer =
    Tracer.create ctx ~use_scratch:false ~update_region_live:false
      ~should_visit:(fun _ -> true)
      ~on_mark:(fun _ -> 0)
  in
  Tracer.add_roots tracer roots;
  ignore (drain_fully tracer);
  let expected = Heap.reachable_from heap roots in
  let marked_count = ref 0 in
  Array.iter
    (fun o ->
      let marked = Heap.is_marked heap o in
      if marked then incr marked_count;
      check Alcotest.bool
        (Printf.sprintf "object %d marked iff reachable" o)
        (Hashtbl.mem expected o) marked)
    objs;
  check Alcotest.int "tracer count agrees" !marked_count (Tracer.objects_marked tracer)

let test_cost_positive () =
  let ctx = make_ctx () in
  let heap = ctx.Gc_types.heap in
  let objs = build_graph ctx ~objects:20 ~edges:10 ~seed:4 in
  ignore (Heap.begin_mark_epoch heap);
  let tracer =
    Tracer.create ctx ~use_scratch:false ~update_region_live:false
      ~should_visit:(fun _ -> true)
      ~on_mark:(fun _ -> 0)
  in
  Tracer.add_root tracer objs.(0);
  let cost = drain_fully tracer in
  check Alcotest.bool "positive cost" true (cost > 0);
  check Alcotest.bool "words counted" true (Tracer.words_marked tracer > 0)

let test_filter_bounds_trace () =
  let ctx = make_ctx () in
  let heap = ctx.Gc_types.heap in
  let eden = Option.get (Heap.take_free_region heap ~space:Region.Eden) in
  let old = Option.get (Heap.take_free_region heap ~space:Region.Old) in
  let young = alloc ctx eden ~nfields:1 in
  let old_obj = Heap.alloc_in_region heap old ~size:3 ~nfields:1 in
  let young2 = alloc ctx eden ~nfields:1 in
  (* young -> old -> young2: the young-only trace must not cross the old
     object *)
  Heap.set_field heap young 0 old_obj;
  Heap.set_field heap old_obj 0 young2;
  ignore (Heap.begin_mark_epoch heap);
  let is_young id = Region.space_equal (Heap.obj_space heap id) Region.Eden in
  let tracer =
    Tracer.create ctx ~use_scratch:false ~update_region_live:false ~should_visit:is_young
      ~on_mark:(fun _ -> 0)
  in
  Tracer.add_root tracer young;
  ignore (drain_fully tracer);
  check Alcotest.bool "young marked" true (Heap.is_marked heap young);
  check Alcotest.bool "old not marked" false (Heap.is_marked heap old_obj);
  check Alcotest.bool "young2 not reached through old" false (Heap.is_marked heap young2)

let test_on_mark_called_once () =
  let ctx = make_ctx () in
  let heap = ctx.Gc_types.heap in
  let objs = build_graph ctx ~objects:50 ~edges:200 ~seed:5 in
  ignore (Heap.begin_mark_epoch heap);
  let calls = Hashtbl.create 64 in
  let tracer =
    Tracer.create ctx ~use_scratch:false ~update_region_live:false
      ~should_visit:(fun _ -> true)
      ~on_mark:(fun id ->
        Hashtbl.replace calls id (1 + Option.value ~default:0 (Hashtbl.find_opt calls id));
        0)
  in
  Tracer.add_root tracer objs.(0);
  ignore (drain_fully tracer);
  Hashtbl.iter (fun id n -> check Alcotest.int (Printf.sprintf "obj %d once" id) 1 n) calls

let test_roots_added_mid_trace () =
  (* SATB behaviour: publishing a root while draining still marks it. *)
  let ctx = make_ctx () in
  let heap = ctx.Gc_types.heap in
  let objs = build_graph ctx ~objects:30 ~edges:0 ~seed:6 in
  ignore (Heap.begin_mark_epoch heap);
  let tracer =
    Tracer.create ctx ~use_scratch:false ~update_region_live:false
      ~should_visit:(fun _ -> true)
      ~on_mark:(fun _ -> 0)
  in
  Tracer.add_root tracer objs.(0);
  ignore (Tracer.drain tracer ~budget:1);
  Tracer.add_root tracer objs.(29);
  ignore (drain_fully tracer);
  check Alcotest.bool "late root marked" true (Heap.is_marked heap objs.(29))

let test_region_live_accounting () =
  let ctx = make_ctx () in
  let heap = ctx.Gc_types.heap in
  let region = Option.get (Heap.take_free_region heap ~space:Region.Eden) in
  let a = alloc ctx region ~nfields:1 in
  let b = alloc ctx region ~nfields:1 in
  let _dead = alloc ctx region ~nfields:1 in
  Heap.set_field heap a 0 b;
  ignore (Heap.begin_mark_epoch heap);
  Heap.iter_regions (fun r -> r.Region.live_words <- 0) heap;
  let tracer =
    Tracer.create ctx ~use_scratch:false ~update_region_live:true
      ~should_visit:(fun _ -> true)
      ~on_mark:(fun _ -> 0)
  in
  Tracer.add_root tracer a;
  ignore (drain_fully tracer);
  check Alcotest.int "live words = a + b"
    (Heap.obj_size heap a + Heap.obj_size heap b)
    region.Region.live_words

let test_dead_roots_ignored () =
  let ctx = make_ctx () in
  let heap = ctx.Gc_types.heap in
  ignore (Heap.begin_mark_epoch heap);
  let tracer =
    Tracer.create ctx ~use_scratch:false ~update_region_live:false
      ~should_visit:(fun _ -> true)
      ~on_mark:(fun _ -> 0)
  in
  Tracer.add_root tracer Obj_model.null;
  Tracer.add_root tracer 424242;
  check Alcotest.bool "nothing pending" false (Tracer.pending tracer);
  check Alcotest.int "zero cost" 0 (Tracer.drain tracer ~budget:10)

let prop_trace_equals_bfs =
  QCheck.Test.make ~name:"tracer marks exactly the BFS-reachable set" ~count:60
    QCheck.(pair small_int (int_range 0 300))
    (fun (seed, edges) ->
      let ctx = make_ctx ~regions:64 () in
      let heap = ctx.Gc_types.heap in
      let objs = build_graph ctx ~objects:80 ~edges ~seed in
      let roots = [ objs.(seed mod 80) ] in
      ignore (Heap.begin_mark_epoch heap);
      let tracer =
        Tracer.create ctx ~use_scratch:false ~update_region_live:false
          ~should_visit:(fun _ -> true)
          ~on_mark:(fun _ -> 0)
      in
      Tracer.add_roots tracer roots;
      ignore (drain_fully tracer);
      let expected = Heap.reachable_from heap roots in
      Array.for_all (fun o -> Heap.is_marked heap o = Hashtbl.mem expected o) objs)

let suite =
  [
    Alcotest.test_case "marks exactly reachable" `Quick test_marks_exactly_reachable;
    Alcotest.test_case "cost positive" `Quick test_cost_positive;
    Alcotest.test_case "filter bounds trace" `Quick test_filter_bounds_trace;
    Alcotest.test_case "on_mark called once" `Quick test_on_mark_called_once;
    Alcotest.test_case "roots added mid-trace" `Quick test_roots_added_mid_trace;
    Alcotest.test_case "region live accounting" `Quick test_region_live_accounting;
    Alcotest.test_case "dead roots ignored" `Quick test_dead_roots_ignored;
    QCheck_alcotest.to_alcotest prop_trace_equals_bfs;
  ]
