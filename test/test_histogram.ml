(* Histogram: exactness in the linear range, bounded relative error in the
   log range, merging, and percentile behaviour. *)

module Histogram = Gcr_util.Histogram

let check = Alcotest.check

let test_empty () =
  let h = Histogram.create () in
  check Alcotest.bool "empty" true (Histogram.is_empty h);
  check Alcotest.int "count" 0 (Histogram.count h);
  check (Alcotest.float 1e-9) "mean" 0.0 (Histogram.mean h);
  check Alcotest.int "percentile of empty defaults to 0" 0 (Histogram.percentile h 50.0);
  check
    Alcotest.(option int)
    "percentile_opt of empty" None
    (Histogram.percentile_opt h 50.0);
  Alcotest.check_raises "p outside [0, 100] still raises"
    (Invalid_argument "Histogram.percentile: p outside [0, 100]") (fun () ->
      ignore (Histogram.percentile h 200.0))

let test_bucket_boundaries () =
  (* Exact powers of two at and above the linear limit land on a
     sub-bucket boundary: the upper bound of their bucket must not drop
     below the value itself, and with a single sample the percentile is
     capped at [max_value], i.e. exact. *)
  List.iter
    (fun v ->
      let h = Histogram.create () in
      Histogram.record h v;
      check Alcotest.int (Printf.sprintf "pow2 %d recovered" v) v
        (Histogram.percentile h 100.0))
    [ 63; 64; 65; 128; 256; 1024; 65536; 1 lsl 20; 1 lsl 30 ];
  (* Sub-bucket edges: 64 + k*2 for the first octave (width 2), and the
     last value of a sub-bucket vs the first of the next. *)
  List.iter
    (fun v ->
      let h = Histogram.create () in
      Histogram.record h v;
      check Alcotest.int (Printf.sprintf "edge %d recovered" v) v
        (Histogram.percentile h 100.0))
    [ 66; 67; 126; 127; 129; 130 ]

let test_bucket_boundary_ordering () =
  (* Two samples one sub-bucket apart never collapse: p100 sees the top
     sample's bucket, p1 the bottom one's. *)
  let h = Histogram.create () in
  Histogram.record h 128;
  Histogram.record h 132;
  check Alcotest.bool "p1 below p100" true
    (Histogram.percentile h 1.0 < Histogram.percentile h 100.0);
  check Alcotest.int "p100 capped at max" 132 (Histogram.percentile h 100.0)

let test_exact_small_values () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 1; 2; 3; 4; 5 ];
  check Alcotest.int "p50 exact" 3 (Histogram.percentile h 50.0);
  check Alcotest.int "p100 exact" 5 (Histogram.percentile h 100.0);
  check Alcotest.int "count" 5 (Histogram.count h);
  check Alcotest.int "total" 15 (Histogram.total h);
  check (Alcotest.float 1e-9) "mean" 3.0 (Histogram.mean h)

let test_negative_clamped () =
  let h = Histogram.create () in
  Histogram.record h (-5);
  check Alcotest.int "clamped to zero" 0 (Histogram.percentile h 100.0)

let test_record_many () =
  let h = Histogram.create () in
  Histogram.record_many h 10 ~count:5;
  check Alcotest.int "count" 5 (Histogram.count h);
  check Alcotest.int "total" 50 (Histogram.total h)

let test_max_value () =
  let h = Histogram.create () in
  Histogram.record h 123456;
  Histogram.record h 77;
  check Alcotest.int "max" 123456 (Histogram.max_value h);
  (* the top percentile never exceeds the maximum recorded value *)
  check Alcotest.int "p100 capped at max" 123456 (Histogram.percentile h 100.0)

let test_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.record a 5;
  Histogram.record b 500;
  Histogram.merge_into ~dst:a b;
  check Alcotest.int "merged count" 2 (Histogram.count a);
  check Alcotest.int "merged total" 505 (Histogram.total a);
  check Alcotest.int "p1 low" 5 (Histogram.percentile a 1.0)

let test_percentiles_list () =
  let h = Histogram.create () in
  for i = 1 to 100 do
    Histogram.record h i
  done;
  let results = Histogram.percentiles h [ 50.0; 90.0 ] in
  check Alcotest.int "two results" 2 (List.length results)

let prop_percentiles_sane =
  (* Percentiles are monotone in p, within the recorded range (up to one
     bucket of overshoot at the low end), and p100 hits the maximum. *)
  QCheck.Test.make ~name:"percentiles monotone and within range" ~count:200
    QCheck.(list_of_size Gen.(1 -- 200) (int_range 1 5_000_000))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) xs;
      let lo = List.fold_left min max_int xs and hi = List.fold_left max 0 xs in
      let ps = [ 10.0; 50.0; 90.0; 99.0; 100.0 ] in
      let values = List.map (Histogram.percentile h) ps in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | [ _ ] | [] -> true
      in
      monotone values
      && List.for_all (fun v -> v >= lo * 9 / 10 && v <= hi) values
      && Histogram.percentile h 100.0 = hi)

let prop_merge_counts =
  QCheck.Test.make ~name:"merge preserves counts and totals" ~count:200
    QCheck.(pair (list (int_range 0 100_000)) (list (int_range 0 100_000)))
    (fun (xs, ys) ->
      let a = Histogram.create () and b = Histogram.create () in
      List.iter (Histogram.record a) xs;
      List.iter (Histogram.record b) ys;
      Histogram.merge_into ~dst:a b;
      Histogram.count a = List.length xs + List.length ys
      && Histogram.total a = List.fold_left ( + ) 0 xs + List.fold_left ( + ) 0 ys)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
    Alcotest.test_case "bucket boundary ordering" `Quick test_bucket_boundary_ordering;
    Alcotest.test_case "exact small values" `Quick test_exact_small_values;
    Alcotest.test_case "negative clamped" `Quick test_negative_clamped;
    Alcotest.test_case "record_many" `Quick test_record_many;
    Alcotest.test_case "max value" `Quick test_max_value;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "percentiles list" `Quick test_percentiles_list;
    QCheck_alcotest.to_alcotest prop_percentiles_sane;
    QCheck_alcotest.to_alcotest prop_merge_counts;
  ]
