(* Behaviour specific to the concurrent collectors: G1's concurrent
   marking and mixed collections, Shenandoah's pacing and degeneration,
   ZGC's stalls and overload failure. *)

module Registry = Gcr_gcs.Registry
module Gc_types = Gcr_gcs.Gc_types
module Suite = Gcr_workloads.Suite
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement

let check = Alcotest.check

(* Old-space churn drives G1's concurrent marking; high allocation rate
   drives Shenandoah/ZGC pathologies. *)
let churny_spec =
  {
    (Suite.find_exn "h2") with
    Spec.name = "churny";
    mutator_threads = 4;
    packets_per_thread = 250;
    packet_compute_cycles = 15_000;
    allocs_per_packet = 12;
    long_lived_target_words = 12_000;
    long_lived_churn_per_packet = 0.5;
    latency = None;
  }

let hot_spec =
  {
    churny_spec with
    Spec.name = "hot";
    mutator_threads = 16;
    allocs_per_packet = 90;
    packets_per_thread = 300;
    long_lived_target_words = 6_000;
  }

let execute ?(spec = churny_spec) ~gc ~heap_words () =
  Run.execute (Run.default_config ~spec ~gc ~heap_words ~seed:19)

let test_g1_marks_concurrently () =
  (* In a tightish heap with old-space churn, G1 must run concurrent
     cycles: GC cycles outside pauses appear. *)
  let m = execute ~gc:Registry.G1 ~heap_words:26_000 () in
  check Alcotest.bool "completed" true (Measurement.completed m);
  check Alcotest.bool "concurrent gc cycles" true
    (m.Measurement.cycles_gc > m.Measurement.cycles_gc_stw)

let test_g1_reclaims_old_space () =
  (* Mixed collections must reclaim old-space garbage: with churn ~50% of
     the long-lived table turning over, completing in a 2.2x heap without
     full collections shows old regions are being evacuated. *)
  let m = execute ~gc:Registry.G1 ~heap_words:26_000 () in
  check Alcotest.bool "completed" true (Measurement.completed m);
  check Alcotest.bool "few full collections" true
    (m.Measurement.gc_stats.Gc_types.full_collections <= 2)

let test_shenandoah_paces_under_pressure () =
  let m = execute ~spec:hot_spec ~gc:Registry.Shenandoah ~heap_words:65_000 () in
  check Alcotest.bool "completed" true (Measurement.completed m);
  check Alcotest.bool "paced" true (m.Measurement.gc_stats.Gc_types.stalls > 0);
  (* pacing adds wall time, not cycles: wall-time overhead factor must
     exceed cycle overhead factor *)
  let ideal =
    Run.execute_ideal ~spec:hot_spec ~machine:Gcr_mach.Machine.default ~seed:19
  in
  let time_factor =
    float_of_int m.Measurement.wall_total /. float_of_int ideal.Measurement.wall_total
  in
  let cycle_factor =
    float_of_int (Measurement.cycles_total m)
    /. float_of_int (Measurement.cycles_total ideal)
  in
  check Alcotest.bool "stalls show in time more than cycles" true
    (time_factor > cycle_factor)

let test_shenandoah_degenerates_not_crashes () =
  (* Very tight heap: Shenandoah must fall back (degenerated/full) and
     either complete or fail with a clean OOM — never hang. *)
  let m = execute ~spec:hot_spec ~gc:Registry.Shenandoah ~heap_words:42_000 () in
  match m.Measurement.outcome with
  | Measurement.Completed ->
      check Alcotest.bool "fallbacks used" true
        (m.Measurement.gc_stats.Gc_types.full_collections > 0
        || m.Measurement.gc_stats.Gc_types.stalls > 0)
  | Measurement.Failed reason ->
      let prefix p = String.length reason >= String.length p && String.sub reason 0 (String.length p) = p in
      (* either a real OOM or the engine's thrash verdict; never a hang or
         an internal crash *)
      check Alcotest.bool "clean failure" true
        (prefix "OutOfMemoryError" || prefix "event budget")

let test_zgc_stalls () =
  let m = execute ~spec:hot_spec ~gc:Registry.Zgc ~heap_words:60_000 () in
  if Measurement.completed m then
    check Alcotest.bool "stalled" true (m.Measurement.gc_stats.Gc_types.stalls > 0)

let test_zgc_fails_under_sustained_overload () =
  (* The xalan pattern: allocation far beyond reclamation capacity. *)
  let overload = { hot_spec with Spec.allocs_per_packet = 120; packets_per_thread = 400 } in
  let m = execute ~spec:overload ~gc:Registry.Zgc ~heap_words:80_000 () in
  check Alcotest.bool "ZGC gives up" false (Measurement.completed m)

let test_shenandoah_survives_same_overload () =
  (* Shenandoah has degeneration and full GC to fall back on. *)
  let overload = { hot_spec with Spec.allocs_per_packet = 120; packets_per_thread = 400 } in
  let m = execute ~spec:overload ~gc:Registry.Shenandoah ~heap_words:80_000 () in
  check Alcotest.bool "Shenandoah completes (slowly)" true (Measurement.completed m)

let test_low_pause_has_lowest_stw_fraction () =
  let stw gc =
    let m = execute ~gc ~heap_words:40_000 () in
    check Alcotest.bool "completed" true (Measurement.completed m);
    Measurement.stw_time_fraction m
  in
  let serial = stw Registry.Serial in
  let zgc = stw Registry.Zgc in
  check Alcotest.bool "ZGC pauses far less than Serial" true (zgc < serial /. 2.0)

let suite =
  [
    Alcotest.test_case "G1 marks concurrently" `Quick test_g1_marks_concurrently;
    Alcotest.test_case "G1 reclaims old space" `Quick test_g1_reclaims_old_space;
    Alcotest.test_case "Shenandoah paces" `Quick test_shenandoah_paces_under_pressure;
    Alcotest.test_case "Shenandoah degenerates cleanly" `Quick
      test_shenandoah_degenerates_not_crashes;
    Alcotest.test_case "ZGC stalls" `Quick test_zgc_stalls;
    Alcotest.test_case "ZGC fails under sustained overload" `Quick
      test_zgc_fails_under_sustained_overload;
    Alcotest.test_case "Shenandoah survives same overload" `Quick
      test_shenandoah_survives_same_overload;
    Alcotest.test_case "low-pause lowest STW fraction" `Quick
      test_low_pause_has_lowest_stw_fraction;
  ]
