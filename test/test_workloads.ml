(* Workload specs, the suite, the long-lived graph and mutator roots. *)

module Spec = Gcr_workloads.Spec
module Suite = Gcr_workloads.Suite
module Longlived = Gcr_workloads.Longlived
module Mutator = Gcr_workloads.Mutator
module Decision_source = Gcr_workloads.Decision_source
module Heap = Gcr_heap.Heap
module Region = Gcr_heap.Region
module Obj_model = Gcr_heap.Obj_model
module Gc_types = Gcr_gcs.Gc_types
module Registry = Gcr_gcs.Registry
module Engine = Gcr_engine.Engine
module Prng = Gcr_util.Prng

let check = Alcotest.check

let test_suite_complete () =
  check Alcotest.int "18 benchmarks" 18 (List.length Suite.all);
  check Alcotest.int "16 core benchmarks" 16 (List.length Suite.core_16);
  check Alcotest.int "4 latency-sensitive" 4 (List.length Suite.latency_sensitive);
  List.iter
    (fun name ->
      check Alcotest.bool (name ^ " excluded from core") false
        (List.exists (fun s -> s.Spec.name = name) Suite.core_16))
    [ "eclipse"; "xalan" ]

let test_suite_names_match_dacapo () =
  let expected =
    [ "avrora"; "batik"; "biojava"; "eclipse"; "fop"; "graphchi"; "h2"; "jme"; "jython";
      "luindex"; "lusearch"; "pmd"; "sunflow"; "tomcat"; "tradebeans"; "tradesoap";
      "xalan"; "zxing" ]
  in
  check Alcotest.(list string) "names" expected Suite.names

let test_find () =
  check Alcotest.bool "finds h2" true (Suite.find "h2" <> None);
  check Alcotest.bool "case insensitive" true (Suite.find "LUSEARCH" <> None);
  check Alcotest.bool "unknown" true (Suite.find "nope" = None);
  Alcotest.check_raises "find_exn" (Invalid_argument "Suite.find_exn: unknown benchmark \"nope\"")
    (fun () -> ignore (Suite.find_exn "nope"))

let test_all_specs_valid () =
  List.iter
    (fun s ->
      match Spec.validate s with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)
    Suite.all

let test_scale () =
  let s = Suite.find_exn "h2" in
  let scaled = Spec.scale s 0.5 in
  check Alcotest.int "packets halved" (s.Spec.packets_per_thread / 2)
    scaled.Spec.packets_per_thread;
  check Alcotest.int "threads unchanged" s.Spec.mutator_threads scaled.Spec.mutator_threads;
  let tiny = Spec.scale s 0.0001 in
  check Alcotest.bool "at least one packet" true (tiny.Spec.packets_per_thread >= 1)

let test_estimates_positive () =
  List.iter
    (fun s ->
      check Alcotest.bool (s.Spec.name ^ " allocation estimate") true
        (Spec.allocated_words_estimate s > 0);
      check Alcotest.bool (s.Spec.name ^ " live estimate") true
        (Spec.live_words_estimate s > s.Spec.long_lived_target_words - 1))
    Suite.all

let test_validate_rejects () =
  let base = Suite.find_exn "h2" in
  let bad = { base with Spec.survival_ratio = 1.5 } in
  check Alcotest.bool "bad survival rejected" true (Result.is_error (Spec.validate bad));
  let bad = { base with Spec.size_mean = base.Spec.size_max + 1 } in
  check Alcotest.bool "bad sizes rejected" true (Result.is_error (Spec.validate bad));
  let bad = { base with Spec.mutator_threads = 0 } in
  check Alcotest.bool "no threads rejected" true (Result.is_error (Spec.validate bad))

(* ---- long-lived graph ---- *)

let make_ctx () =
  let heap = Heap.create ~capacity_words:(256 * 256) ~region_words:256 () in
  let engine = Engine.create ~cpus:4 () in
  Gc_types.make_ctx ~heap ~engine ~cost:Gcr_mach.Cost_model.default
    ~machine:Gcr_mach.Machine.default

let small_spec =
  { (Suite.find_exn "h2") with Spec.long_lived_target_words = 2_000; size_mean = 10 }

let test_longlived_create () =
  let ctx = make_ctx () in
  let ds = Decision_source.live ~spec:small_spec (Prng.create 1) in
  let ll = Longlived.create ctx ~spec:small_spec in
  check Alcotest.int "slots" 200 (Longlived.slot_count ll);
  check Alcotest.bool "roots exist" true (Longlived.roots ll <> []);
  check Alcotest.bool "not yet full" false (Longlived.is_full ll);
  check Alcotest.bool "random node null while empty" true
    (Obj_model.is_null (Longlived.random_node ll ds));
  (* static data lives in old space *)
  List.iter
    (fun id ->
      check Alcotest.bool "segment in old" true
        (Region.space_equal (Heap.obj_space ctx.Gc_types.heap id) Region.Old))
    (Longlived.roots ll)

let test_longlived_fill_and_churn () =
  let ctx = make_ctx () in
  let heap = ctx.Gc_types.heap in
  let ds = Decision_source.live ~spec:small_spec (Prng.create 2) in
  let ll = Longlived.create ctx ~spec:small_spec in
  let gc = Registry.make Registry.Epsilon ctx in
  let eden = Gcr_heap.Allocator.create heap ~space:Region.Eden in
  let mk () =
    match Gcr_heap.Allocator.alloc eden ~size:10 ~nfields:2 with
    | Gcr_heap.Allocator.Allocated { obj; _ } -> obj
    | Gcr_heap.Allocator.Out_of_regions -> Alcotest.fail "heap too small"
  in
  for _ = 1 to 200 do
    ignore (Longlived.place ll ~gc ~ds ~node:(mk ()))
  done;
  check Alcotest.bool "full after 200 placements" true (Longlived.is_full ll);
  let node = Longlived.random_node ll ds in
  check Alcotest.bool "random node live" true (Heap.is_live heap node);
  (* churn: placing another node evicts one *)
  let fresh = mk () in
  ignore (Longlived.place ll ~gc ~ds ~node:fresh);
  let reachable = Heap.reachable_from heap (Longlived.roots ll) in
  check Alcotest.bool "fresh node now reachable from segments" true
    (Hashtbl.mem reachable fresh)

(* ---- mutator ---- *)

let run_mutator_packets ~spec ~packets =
  let ctx = make_ctx () in
  let gc = Registry.make Registry.Epsilon ctx in
  let prng = Prng.create 5 in
  let ll = Longlived.create ctx ~spec in
  let m =
    Mutator.create ctx ~gc ~spec ~longlived:ll
      ~ds:(Decision_source.live ~spec (Prng.split prng))
      ~index:0
  in
  (ctx.Gc_types.iter_roots :=
     fun f ->
       Longlived.iter_roots ll f;
       Mutator.iter_roots m f);
  Mutator.run_packets m packets (fun () -> Mutator.exit m);
  (match Engine.run ctx.Gc_types.engine () with
  | Engine.All_mutators_finished -> ()
  | Engine.Aborted reason -> Alcotest.failf "aborted: %s" reason);
  (ctx, m)

let test_mutator_runs_packets () =
  let spec = { small_spec with Spec.mutator_threads = 1 } in
  let ctx, m = run_mutator_packets ~spec ~packets:50 in
  check Alcotest.int "packets counted" 50 (Mutator.packets_executed m);
  check Alcotest.bool "allocated" true (Heap.objects_allocated_total ctx.Gc_types.heap > 0);
  check Alcotest.bool "consumed cycles" true (Engine.now ctx.Gc_types.engine > 0)

let test_mutator_roots_live () =
  let spec = { small_spec with Spec.mutator_threads = 1; survival_ratio = 0.5 } in
  let ctx, m = run_mutator_packets ~spec ~packets:30 in
  List.iter
    (fun id ->
      check Alcotest.bool "root live" true (Heap.is_live ctx.Gc_types.heap id))
    (Mutator.roots m)

let test_mutator_nursery_bounded () =
  let spec =
    { small_spec with Spec.mutator_threads = 1; survival_ratio = 1.0; nursery_ttl_packets = 2 }
  in
  let _, m = run_mutator_packets ~spec ~packets:40 in
  (* with ttl 2, at most ~3 packets' worth of retained objects *)
  check Alcotest.bool "nursery bounded by ttl" true
    (List.length (Mutator.roots m) <= 3 * spec.Spec.allocs_per_packet + 1)

let suite =
  [
    Alcotest.test_case "suite complete" `Quick test_suite_complete;
    Alcotest.test_case "suite names" `Quick test_suite_names_match_dacapo;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "all specs valid" `Quick test_all_specs_valid;
    Alcotest.test_case "scale" `Quick test_scale;
    Alcotest.test_case "estimates positive" `Quick test_estimates_positive;
    Alcotest.test_case "validate rejects" `Quick test_validate_rejects;
    Alcotest.test_case "longlived create" `Quick test_longlived_create;
    Alcotest.test_case "longlived fill and churn" `Quick test_longlived_fill_and_churn;
    Alcotest.test_case "mutator runs packets" `Quick test_mutator_runs_packets;
    Alcotest.test_case "mutator roots live" `Quick test_mutator_roots_live;
    Alcotest.test_case "nursery bounded" `Quick test_mutator_nursery_bounded;
  ]
