(* Worker pool: phase execution, termination, parallelism effects. *)

module Engine = Gcr_engine.Engine
module Heap = Gcr_heap.Heap
module Gc_types = Gcr_gcs.Gc_types
module Worker_pool = Gcr_gcs.Worker_pool

let check = Alcotest.check

let make_ctx ~cpus =
  let heap = Heap.create ~capacity_words:(8 * 64) ~region_words:64 () in
  let engine = Engine.create ~cpus () in
  Gc_types.make_ctx ~heap ~engine ~cost:Gcr_mach.Cost_model.default
    ~machine:Gcr_mach.Machine.default

(* Run the engine with a dummy mutator so it has a termination condition. *)
let run_with_pool ctx body =
  let engine = ctx.Gc_types.engine in
  let m = Engine.spawn engine ~kind:Engine.Mutator ~name:"driver" in
  body (fun () -> Engine.exit_thread engine m);
  match Engine.run engine () with
  | Engine.All_mutators_finished -> ()
  | Engine.Aborted reason -> Alcotest.failf "aborted: %s" reason

let test_phase_consumes_work () =
  let ctx = make_ctx ~cpus:4 in
  let pool = Worker_pool.create ctx ~count:2 ~name:"test" in
  let slices = ref 10 in
  let executed = ref 0 in
  run_with_pool ctx (fun finish ->
      Worker_pool.run_phase pool ~phase:Gcr_obs.Event.Mark
        ~work:(fun ~worker:_ ->
          if !slices = 0 then 0
          else begin
            decr slices;
            incr executed;
            100
          end)
        ~on_done:(fun () ->
          check Alcotest.int "all slices executed" 10 !executed;
          check Alcotest.bool "not busy after" false (Worker_pool.busy pool);
          finish ()))

let test_on_done_once () =
  let ctx = make_ctx ~cpus:4 in
  let pool = Worker_pool.create ctx ~count:3 ~name:"test" in
  let dones = ref 0 in
  run_with_pool ctx (fun finish ->
      Worker_pool.run_phase pool ~phase:Gcr_obs.Event.Mark
        ~work:(fun ~worker:_ -> 0)
        ~on_done:(fun () ->
          incr dones;
          finish ()));
  check Alcotest.int "exactly one on_done" 1 !dones

let test_busy_during_phase () =
  let ctx = make_ctx ~cpus:2 in
  let pool = Worker_pool.create ctx ~count:1 ~name:"test" in
  run_with_pool ctx (fun finish ->
      let first = ref true in
      Worker_pool.run_phase pool ~phase:Gcr_obs.Event.Mark
        ~work:(fun ~worker:_ ->
          if !first then begin
            first := false;
            check Alcotest.bool "busy mid-phase" true (Worker_pool.busy pool);
            50
          end
          else 0)
        ~on_done:finish)

let test_double_phase_rejected () =
  let ctx = make_ctx ~cpus:2 in
  let pool = Worker_pool.create ctx ~count:1 ~name:"test" in
  run_with_pool ctx (fun finish ->
      Worker_pool.run_phase pool ~phase:Gcr_obs.Event.Mark ~work:(fun ~worker:_ -> 0) ~on_done:finish;
      Alcotest.check_raises "second phase"
        (Invalid_argument "Worker_pool.run_phase: phase already running") (fun () ->
          Worker_pool.run_phase pool ~phase:Gcr_obs.Event.Mark ~work:(fun ~worker:_ -> 0) ~on_done:ignore))

let test_run_phases_in_order () =
  let ctx = make_ctx ~cpus:4 in
  let pool = Worker_pool.create ctx ~count:2 ~name:"test" in
  let log = ref [] in
  let phase ph budget =
    let left = ref budget in
    ( ph,
      fun ~worker:_ ->
        if !left = 0 then 0
        else begin
          decr left;
          log := Gcr_obs.Event.phase_name ph :: !log;
          10
        end )
  in
  run_with_pool ctx (fun finish ->
      Worker_pool.run_phases pool
        [ phase Gcr_obs.Event.Mark 3; phase Gcr_obs.Event.Evacuate 2 ]
        ~on_done:(fun () ->
          let order = List.rev !log in
          check Alcotest.(list string) "a strictly before b"
            [ "mark"; "mark"; "mark"; "evacuate"; "evacuate" ]
            order;
          finish ()))

let test_more_workers_finish_faster_but_cost_more () =
  let elapsed_and_cycles workers =
    let ctx = make_ctx ~cpus:16 in
    let engine = ctx.Gc_types.engine in
    let pool = Worker_pool.create ctx ~count:workers ~name:"test" in
    let slices = ref 64 in
    let finished_at = ref 0 in
    run_with_pool ctx (fun finish ->
        Worker_pool.run_phase pool ~phase:Gcr_obs.Event.Mark
          ~work:(fun ~worker:_ ->
            if !slices = 0 then 0
            else begin
              decr slices;
              1000
            end)
          ~on_done:(fun () ->
            finished_at := Engine.now engine;
            finish ()));
    (!finished_at, Engine.cycles_of_kind engine Engine.Gc_worker)
  in
  let t1, c1 = elapsed_and_cycles 1 in
  let t8, c8 = elapsed_and_cycles 8 in
  check Alcotest.bool "8 workers faster" true (t8 < t1);
  check Alcotest.bool "8 workers burn more cycles" true (c8 > c1)

let suite =
  [
    Alcotest.test_case "phase consumes work" `Quick test_phase_consumes_work;
    Alcotest.test_case "on_done once" `Quick test_on_done_once;
    Alcotest.test_case "busy during phase" `Quick test_busy_during_phase;
    Alcotest.test_case "double phase rejected" `Quick test_double_phase_rejected;
    Alcotest.test_case "phases in order" `Quick test_run_phases_in_order;
    Alcotest.test_case "parallel speed/cost tradeoff" `Quick
      test_more_workers_finish_faster_but_cost_more;
  ]
