(* Property tests for the engine: random thread/step workloads must
   respect conservation laws and determinism regardless of shape. *)

module Engine = Gcr_engine.Engine
module Prng = Gcr_util.Prng

(* A random scenario: n threads, each a list of steps; a step is either
   work (cycles) or a stall. *)
type step = Work of int | Sleep of int

type scenario = {
  cpus : int;
  threads : step list list;
}

let scenario_gen =
  QCheck.Gen.(
    let step =
      frequency
        [ (4, map (fun c -> Work c) (int_range 0 500)); (1, map (fun c -> Sleep c) (int_range 1 300)) ]
    in
    let thread = list_size (int_range 1 12) step in
    map2
      (fun cpus threads -> { cpus; threads })
      (int_range 1 6)
      (list_size (int_range 1 8) thread))

let print_scenario s =
  Printf.sprintf "cpus=%d threads=%s" s.cpus
    (String.concat ";"
       (List.map
          (fun steps ->
            String.concat ","
              (List.map (function Work c -> string_of_int c | Sleep c -> "s" ^ string_of_int c) steps))
          s.threads))

let scenario_arb = QCheck.make ~print:print_scenario scenario_gen

(* Run a scenario; returns (wall, total_cycles, per-thread cycles). *)
let run_scenario s =
  let engine = Engine.create ~cpus:s.cpus () in
  let spawn i steps =
    let th = Engine.spawn engine ~kind:Engine.Mutator ~name:(string_of_int i) in
    let rec drive remaining () =
      match remaining with
      | [] -> Engine.exit_thread engine th
      | Work c :: rest -> Engine.submit engine th ~cycles:c (drive rest)
      | Sleep c :: rest -> Engine.stall engine th ~cycles:c (drive rest)
    in
    drive steps ()
  in
  List.iteri spawn s.threads;
  match Engine.run engine () with
  | Engine.All_mutators_finished ->
      (Engine.now engine, Engine.cycles_of_kind engine Engine.Mutator)
  | Engine.Aborted reason -> failwith reason

let work_of s =
  List.fold_left
    (fun acc steps ->
      acc
      + List.fold_left (fun a -> function Work c -> a + c | Sleep _ -> a) 0 steps)
    0 s.threads

let span_of_thread steps =
  List.fold_left (fun a -> function Work c | Sleep c -> a + c) 0 steps

let prop_cycles_conserved =
  QCheck.Test.make ~name:"total cycles equal submitted work" ~count:300 scenario_arb
    (fun s ->
      let _, cycles = run_scenario s in
      cycles = work_of s)

let prop_wall_bounds =
  QCheck.Test.make ~name:"wall between critical path and serialisation" ~count:300
    scenario_arb (fun s ->
      let wall, _ = run_scenario s in
      (* lower bound: no thread can finish faster than its own span;
         upper bound: all work serialised on one cpu plus all sleeps *)
      let longest = List.fold_left (fun a t -> max a (span_of_thread t)) 0 s.threads in
      let total_span = List.fold_left (fun a t -> a + span_of_thread t) 0 s.threads in
      wall >= longest && wall <= total_span)

let prop_utilisation =
  QCheck.Test.make ~name:"cycles never exceed cpus x wall" ~count:300 scenario_arb
    (fun s ->
      let wall, cycles = run_scenario s in
      cycles <= s.cpus * max 1 wall || (cycles = 0 && wall = 0))

let prop_deterministic =
  QCheck.Test.make ~name:"identical scenarios give identical runs" ~count:100 scenario_arb
    (fun s -> run_scenario s = run_scenario s)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_cycles_conserved;
    QCheck_alcotest.to_alcotest prop_wall_bounds;
    QCheck_alcotest.to_alcotest prop_utilisation;
    QCheck_alcotest.to_alcotest prop_deterministic;
  ]
