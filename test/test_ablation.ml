(* Ablation studies: the sweeps run, and the tradeoffs they exist to show
   actually appear in the numbers. *)

module Registry = Gcr_gcs.Registry
module Stw_gen = Gcr_gcs.Stw_gen
module Suite = Gcr_workloads.Suite
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement
module Ablation = Gcr_core.Ablation

let check = Alcotest.check

(* The worker-count tradeoff, asserted directly (the printing wrappers are
   exercised via the CLI and bench). *)
let test_worker_tradeoff () =
  let spec = Spec.scale (Suite.find_exn "h2") 0.15 in
  let run workers =
    let make ctx =
      Stw_gen.make ctx { Stw_gen.name = "Parallel"; stw_workers = workers; tenure_age = 2 }
    in
    Run.execute
      {
        (Run.default_config ~spec ~gc:Registry.Parallel ~heap_words:160_000 ~seed:5) with
        Run.make_collector = Some make;
      }
  in
  let one = run 1 and many = run 8 in
  check Alcotest.bool "both complete" true
    (Measurement.completed one && Measurement.completed many);
  check Alcotest.bool "more workers, shorter pauses" true
    (many.Measurement.wall_stw < one.Measurement.wall_stw);
  check Alcotest.bool "more workers, more cycles" true
    (many.Measurement.cycles_gc > one.Measurement.cycles_gc)

let test_tenure_extremes_complete () =
  let spec = Spec.scale (Suite.find_exn "h2") 0.1 in
  List.iter
    (fun age ->
      let make ctx =
        Stw_gen.make ctx { Stw_gen.name = "Serial"; stw_workers = 1; tenure_age = age }
      in
      let m =
        Run.execute
          {
            (Run.default_config ~spec ~gc:Registry.Serial ~heap_words:160_000 ~seed:6) with
            Run.make_collector = Some make;
          }
      in
      check Alcotest.bool (Printf.sprintf "tenure %d completes" age) true
        (Measurement.completed m))
    [ 0; 15 ]

let test_default_config () =
  let c = Ablation.default_config () in
  check Alcotest.string "default bench" "h2" c.Ablation.spec.Spec.name;
  let c = Ablation.default_config ~bench:"jme" () in
  check Alcotest.string "chosen bench" "jme" c.Ablation.spec.Spec.name

let suite =
  [
    Alcotest.test_case "worker tradeoff" `Quick test_worker_tradeoff;
    Alcotest.test_case "tenure extremes complete" `Quick test_tenure_extremes_complete;
    Alcotest.test_case "default config" `Quick test_default_config;
  ]
