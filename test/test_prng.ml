(* Determinism, ranges and rough distribution checks for the PRNG. *)

module Prng = Gcr_util.Prng

let check = Alcotest.check

let test_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  check Alcotest.bool "different seeds diverge" true (!same < 4)

let test_copy () =
  let a = Prng.create 9 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  for _ = 1 to 50 do
    check Alcotest.int64 "copy replays" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_split_independent () =
  let root = Prng.create 5 in
  let a = Prng.split root in
  let b = Prng.split root in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  check Alcotest.bool "split streams diverge" true (!same < 4)

let test_int_range () =
  let t = Prng.create 3 in
  for _ = 1 to 10_000 do
    let v = Prng.int t 17 in
    check Alcotest.bool "in range" true (v >= 0 && v < 17)
  done

let test_int_in_range () =
  let t = Prng.create 4 in
  for _ = 1 to 1_000 do
    let v = Prng.int_in t (-5) 5 in
    check Alcotest.bool "in closed range" true (v >= -5 && v <= 5)
  done

let test_int_covers () =
  let t = Prng.create 8 in
  let seen = Array.make 10 false in
  for _ = 1 to 2_000 do
    seen.(Prng.int t 10) <- true
  done;
  Array.iteri (fun i s -> check Alcotest.bool (Printf.sprintf "value %d seen" i) true s) seen

let test_float_range () =
  let t = Prng.create 11 in
  for _ = 1 to 1_000 do
    let v = Prng.float t 2.5 in
    check Alcotest.bool "float in range" true (v >= 0.0 && v < 2.5)
  done

let test_bernoulli_bias () =
  let t = Prng.create 12 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.bernoulli t 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  check Alcotest.bool "p close to 0.3" true (p > 0.27 && p < 0.33)

let test_exponential_mean () =
  let t = Prng.create 13 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential t ~mean:100.0
  done;
  let mean = !sum /. float_of_int n in
  check Alcotest.bool "exponential mean" true (mean > 95.0 && mean < 105.0)

let test_geometric_size_bounds () =
  let t = Prng.create 14 in
  for _ = 1 to 5_000 do
    let v = Prng.geometric_size t ~mean:16 ~min:4 ~max:64 in
    check Alcotest.bool "size in bounds" true (v >= 4 && v <= 64)
  done

let test_pareto_positive () =
  let t = Prng.create 15 in
  for _ = 1 to 1_000 do
    check Alcotest.bool "pareto above scale" true (Prng.pareto t ~shape:2.0 ~scale:1.0 >= 1.0)
  done

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
    Alcotest.test_case "copy replays" `Quick test_copy;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "int range" `Quick test_int_range;
    Alcotest.test_case "int_in range" `Quick test_int_in_range;
    Alcotest.test_case "int covers all values" `Quick test_int_covers;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "bernoulli bias" `Quick test_bernoulli_bias;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "geometric_size bounds" `Quick test_geometric_size_bounds;
    Alcotest.test_case "pareto positive" `Quick test_pareto_positive;
  ]
