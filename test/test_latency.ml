(* The metered-latency engine. *)

module Registry = Gcr_gcs.Registry
module Suite = Gcr_workloads.Suite
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement
module Histogram = Gcr_util.Histogram

let check = Alcotest.check

let latency_spec =
  {
    (Suite.find_exn "lusearch") with
    Spec.mutator_threads = 4;
    packets_per_thread = 80;
    long_lived_target_words = 3_000;
    packet_compute_cycles = 20_000;
  }

let run ~gc ~heap_words =
  Run.execute (Run.default_config ~spec:latency_spec ~gc ~heap_words ~seed:17)

let test_latency_recorded () =
  let m = run ~gc:Registry.Epsilon ~heap_words:50_000 in
  check Alcotest.bool "completed" true (Measurement.completed m);
  match (m.Measurement.latency_metered, m.Measurement.latency_simple) with
  | Some metered, Some simple ->
      check Alcotest.bool "requests recorded" true (Histogram.count metered > 0);
      check Alcotest.int "same count both measures" (Histogram.count metered)
        (Histogram.count simple);
      (* expected request count: threads * packets / request_packets *)
      let expected = 4 * 80 / 4 in
      check Alcotest.int "request count" expected (Histogram.count metered)
  | _ -> Alcotest.fail "no latency recorded"

let test_metered_dominates_simple () =
  let m = run ~gc:Registry.Serial ~heap_words:20_000 in
  match (m.Measurement.latency_metered, m.Measurement.latency_simple) with
  | Some metered, Some simple ->
      List.iter
        (fun p ->
          check Alcotest.bool
            (Printf.sprintf "metered >= simple at p%g" p)
            true
            (Histogram.percentile metered p >= Histogram.percentile simple p))
        [ 50.0; 90.0; 99.0 ]
  | _ -> Alcotest.fail "no latency recorded"

let test_gc_pauses_worsen_tail () =
  (* A GC'd run in a tight heap must have a worse metered tail than the
     no-GC run. *)
  let ideal = run ~gc:Registry.Epsilon ~heap_words:50_000 in
  let gcd = run ~gc:Registry.Serial ~heap_words:12_000 in
  match (ideal.Measurement.latency_metered, gcd.Measurement.latency_metered) with
  | Some a, Some b ->
      check Alcotest.bool "p99.9 worse under GC" true
        (Histogram.percentile b 99.9 > Histogram.percentile a 99.9)
  | _ -> Alcotest.fail "no latency recorded"

let test_throughput_benchmarks_have_no_latency () =
  let spec = Gcr_workloads.Spec.scale (Suite.find_exn "jme") 0.1 in
  let m = Run.execute (Run.default_config ~spec ~gc:Registry.Epsilon ~heap_words:30_000 ~seed:1) in
  check Alcotest.bool "no metered histogram" true (m.Measurement.latency_metered = None)

let test_deterministic () =
  let a = run ~gc:Registry.G1 ~heap_words:20_000 in
  let b = run ~gc:Registry.G1 ~heap_words:20_000 in
  match (a.Measurement.latency_metered, b.Measurement.latency_metered) with
  | Some ha, Some hb ->
      check Alcotest.int "same p99" (Histogram.percentile ha 99.0) (Histogram.percentile hb 99.0)
  | _ -> Alcotest.fail "no latency recorded"

let suite =
  [
    Alcotest.test_case "latency recorded" `Quick test_latency_recorded;
    Alcotest.test_case "metered dominates simple" `Quick test_metered_dominates_simple;
    Alcotest.test_case "GC worsens tail" `Quick test_gc_pauses_worsen_tail;
    Alcotest.test_case "throughput runs have no latency" `Quick
      test_throughput_benchmarks_have_no_latency;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
  ]
