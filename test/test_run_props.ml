(* Property tests for the two facts the scheduler's caching and
   serial-equivalence proofs stand on: Run.execute is a pure function of
   its config (for every collector kind), and the cache key is a faithful
   content hash of that config. *)

module Registry = Gcr_gcs.Registry
module Machine = Gcr_mach.Machine
module Cost_model = Gcr_mach.Cost_model
module Suite = Gcr_workloads.Suite
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement
module Cache_key = Gcr_sched.Cache_key

let every_kind = Registry.all @ Registry.experimental

(* A run small enough that hundreds of them stay cheap; fields the
   generators below perturb still exercise real collector activity. *)
let tiny = Spec.scale (Suite.find_exn "jme") 0.05

type shape = {
  kind : Registry.kind;
  seed : int;
  packets : int;
  threads : int;
  heap_words : int;
}

let shape_gen =
  QCheck.Gen.(
    map
      (fun (kind, (seed, packets, threads, heap_words)) ->
        { kind; seed; packets; threads; heap_words })
      (pair (oneofl every_kind)
         (quad (int_range 0 10_000) (int_range 3 12) (int_range 1 2)
            (int_range 20_000 60_000))))

let print_shape s =
  Printf.sprintf "%s seed=%d packets=%d threads=%d heap=%d" (Registry.name s.kind)
    s.seed s.packets s.threads s.heap_words

let shape_arb = QCheck.make ~print:print_shape shape_gen

let config_of_shape s =
  let spec =
    { tiny with Spec.packets_per_thread = s.packets; mutator_threads = s.threads }
  in
  Run.default_config ~spec ~gc:s.kind ~heap_words:s.heap_words ~seed:s.seed

(* Equal config twice => equal measurement, whether the run completes,
   OOMs, or exhausts its budget.  The config is rebuilt from scratch for
   each execution so shared mutable state cannot fake the equality. *)
let prop_execute_deterministic =
  QCheck.Test.make ~name:"Run.execute deterministic across every kind" ~count:60
    shape_arb (fun s ->
      Run.execute (config_of_shape s) = Run.execute (config_of_shape s))

(* Independently-built equal configs must key identically (cache hits),
   and the key must be derived without Hashtbl.hash-style truncation. *)
let prop_equal_configs_equal_keys =
  QCheck.Test.make ~name:"equal configs hash equally" ~count:200 shape_arb (fun s ->
      let k1 = Cache_key.of_config (config_of_shape s)
      and k2 = Cache_key.of_config (config_of_shape s) in
      k1 <> None && k1 = k2)

(* Distinct shapes must never collide: a collision would silently replay
   one configuration's measurement as another's. *)
let prop_distinct_shapes_distinct_keys =
  QCheck.Test.make ~name:"distinct configs hash differently" ~count:200
    (QCheck.pair shape_arb shape_arb) (fun (a, b) ->
      QCheck.assume (a <> b);
      Cache_key.of_config (config_of_shape a) <> Cache_key.of_config (config_of_shape b))

(* Single-field sensitivity: flipping any one field of the run config —
   spec, collector, heap, machine, cost model, seed, region size, event
   budget — must change the key. *)
let base_config = config_of_shape { kind = Registry.G1; seed = 7; packets = 5; threads = 2; heap_words = 40_000 }

let mutations : (string * Run.config) list =
  let spec = base_config.Run.spec in
  let with_spec s = { base_config with Run.spec = s } in
  [
    ("spec.name", with_spec { spec with Spec.name = "jme2" });
    ("spec.description", with_spec { spec with Spec.description = "other" });
    ("spec.mutator_threads", with_spec { spec with Spec.mutator_threads = 3 });
    ("spec.packets_per_thread", with_spec { spec with Spec.packets_per_thread = 6 });
    ("spec.packet_compute_cycles",
     with_spec { spec with Spec.packet_compute_cycles = spec.Spec.packet_compute_cycles + 1 });
    ("spec.allocs_per_packet",
     with_spec { spec with Spec.allocs_per_packet = spec.Spec.allocs_per_packet + 1 });
    ("spec.size_min", with_spec { spec with Spec.size_min = spec.Spec.size_min + 1 });
    ("spec.size_mean", with_spec { spec with Spec.size_mean = spec.Spec.size_mean + 1 });
    ("spec.size_max", with_spec { spec with Spec.size_max = spec.Spec.size_max + 1 });
    ("spec.ref_density", with_spec { spec with Spec.ref_density = spec.Spec.ref_density +. 0.01 });
    ("spec.survival_ratio",
     with_spec { spec with Spec.survival_ratio = spec.Spec.survival_ratio +. 0.01 });
    ("spec.nursery_ttl_packets",
     with_spec { spec with Spec.nursery_ttl_packets = spec.Spec.nursery_ttl_packets + 1 });
    ("spec.long_lived_target_words",
     with_spec { spec with Spec.long_lived_target_words = spec.Spec.long_lived_target_words + 1 });
    ("spec.long_lived_churn_per_packet",
     with_spec
       { spec with Spec.long_lived_churn_per_packet = spec.Spec.long_lived_churn_per_packet +. 0.01 });
    ("spec.reads_per_packet",
     with_spec { spec with Spec.reads_per_packet = spec.Spec.reads_per_packet + 1 });
    ("spec.writes_per_packet",
     with_spec { spec with Spec.writes_per_packet = spec.Spec.writes_per_packet + 1 });
    ("spec.latency",
     with_spec
       { spec with Spec.latency = Some { Spec.offered_load = 0.5; request_packets = 4 } });
    ("gc", { base_config with Run.gc = Registry.Zgc });
    ("heap_words", { base_config with Run.heap_words = base_config.Run.heap_words + 256 });
    ("machine.cpus",
     { base_config with Run.machine = Machine.with_cpus base_config.Run.machine 8 });
    ("machine.memory_words",
     {
       base_config with
       Run.machine =
         { base_config.Run.machine with
           Machine.memory_words = base_config.Run.machine.Machine.memory_words + 1 };
     });
    ("cost.alloc_fast",
     {
       base_config with
       Run.cost = { base_config.Run.cost with Cost_model.alloc_fast = 11 };
     });
    ("cost.cache_disruption_per_pause",
     {
       base_config with
       Run.cost = { base_config.Run.cost with Cost_model.cache_disruption_per_pause = 4001 };
     });
    ("cost.zero_barriers",
     { base_config with Run.cost = Cost_model.zero_barriers base_config.Run.cost });
    ("seed", { base_config with Run.seed = 8 });
    ("region_words", { base_config with Run.region_words = 128 });
    ("max_events.some", { base_config with Run.max_events = Some 1_000_000 });
    ("max_events.other", { base_config with Run.max_events = Some 1_000_001 });
  ]

let test_every_field_keyed () =
  let digest name config =
    match Cache_key.of_config config with
    | Some d -> d
    | None -> Alcotest.fail (name ^ ": expected a cache key")
  in
  let keyed = ("base", digest "base" base_config) :: List.map (fun (n, c) -> (n, digest n c)) mutations in
  List.iteri
    (fun i (ni, di) ->
      List.iteri
        (fun j (nj, dj) ->
          if i < j then
            Alcotest.check Alcotest.bool
              (Printf.sprintf "%s vs %s hash differently" ni nj)
              true (di <> dj))
        keyed)
    keyed

let test_custom_collector_unkeyed () =
  let custom = { base_config with Run.make_collector = Some (fun _ -> assert false) } in
  Alcotest.check Alcotest.bool "closures have no content hash" true
    (Cache_key.of_config custom = None && Cache_key.render custom = None)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_execute_deterministic;
    QCheck_alcotest.to_alcotest prop_equal_configs_equal_keys;
    QCheck_alcotest.to_alcotest prop_distinct_shapes_distinct_keys;
    Alcotest.test_case "every config field is keyed" `Quick test_every_field_keyed;
    Alcotest.test_case "custom collector configs are unkeyed" `Quick
      test_custom_collector_unkeyed;
  ]
