(* Priority-queue ordering, FIFO tie-breaking, and a qcheck sort test. *)

module Binary_heap = Gcr_util.Binary_heap

let check = Alcotest.check

let drain heap =
  let rec loop acc =
    match Binary_heap.pop heap with
    | None -> List.rev acc
    | Some (p, v) -> loop ((p, v) :: acc)
  in
  loop []

let test_ordering () =
  let h = Binary_heap.create () in
  List.iter (fun p -> Binary_heap.add h ~priority:p p) [ 5; 1; 4; 2; 3 ];
  check Alcotest.(list (pair int int)) "sorted"
    [ (1, 1); (2, 2); (3, 3); (4, 4); (5, 5) ]
    (drain h)

let test_fifo_ties () =
  let h = Binary_heap.create () in
  Binary_heap.add h ~priority:7 "first";
  Binary_heap.add h ~priority:7 "second";
  Binary_heap.add h ~priority:7 "third";
  check
    Alcotest.(list (pair int string))
    "insertion order preserved on ties"
    [ (7, "first"); (7, "second"); (7, "third") ]
    (drain h)

let test_min_peek () =
  let h = Binary_heap.create () in
  check Alcotest.bool "empty min" true (Binary_heap.min h = None);
  Binary_heap.add h ~priority:3 'a';
  Binary_heap.add h ~priority:1 'b';
  check Alcotest.(option (pair int char)) "min" (Some (1, 'b')) (Binary_heap.min h);
  check Alcotest.int "length unchanged" 2 (Binary_heap.length h)

let test_interleaved () =
  let h = Binary_heap.create () in
  Binary_heap.add h ~priority:10 10;
  Binary_heap.add h ~priority:5 5;
  check Alcotest.(option (pair int int)) "pop min" (Some (5, 5)) (Binary_heap.pop h);
  Binary_heap.add h ~priority:1 1;
  check Alcotest.(option (pair int int)) "pop new min" (Some (1, 1)) (Binary_heap.pop h);
  check Alcotest.(option (pair int int)) "pop rest" (Some (10, 10)) (Binary_heap.pop h);
  check Alcotest.bool "empty" true (Binary_heap.is_empty h)

let test_clear () =
  let h = Binary_heap.create () in
  Binary_heap.add h ~priority:1 ();
  Binary_heap.clear h;
  check Alcotest.bool "cleared" true (Binary_heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains priorities in sorted order" ~count:300
    QCheck.(list small_int)
    (fun priorities ->
      let h = Binary_heap.create () in
      List.iter (fun p -> Binary_heap.add h ~priority:p p) priorities;
      let drained = List.map fst (drain h) in
      drained = List.sort compare priorities)

let prop_stable_within_priority =
  QCheck.Test.make ~name:"equal priorities pop in insertion order" ~count:200
    QCheck.(list (int_bound 3))
    (fun priorities ->
      let h = Binary_heap.create () in
      List.iteri (fun i p -> Binary_heap.add h ~priority:p (p, i)) priorities;
      let drained = List.map snd (drain h) in
      (* within each priority class, sequence numbers must increase *)
      let by_prio = Hashtbl.create 8 in
      List.for_all
        (fun (p, i) ->
          let last = Option.value (Hashtbl.find_opt by_prio p) ~default:(-1) in
          Hashtbl.replace by_prio p i;
          i > last)
        drained)

(* Model test: under arbitrary add/pop interleavings the heap must agree
   with a reference model — a sorted list of (priority, insertion index)
   entries — at every pop.  FIFO among equal priorities falls out of the
   model's lexicographic order on (priority, insertion index).  This is the
   determinism contract the engine's event loop relies on; the SoA rewrite
   must preserve it exactly. *)
let prop_model_interleaved =
  (* ops: Some p = add with priority p, None = pop *)
  QCheck.Test.make ~name:"add/pop interleavings match a sorted-list model" ~count:500
    QCheck.(list (option (int_bound 7)))
    (fun ops ->
      let h = Binary_heap.create () in
      let model = ref [] (* sorted (priority, seq) list *) in
      let next_seq = ref 0 in
      let insert entry =
        let rec go = function
          | [] -> [ entry ]
          | e :: rest -> if entry < e then entry :: e :: rest else e :: go rest
        in
        model := go !model
      in
      List.for_all
        (fun op ->
          match op with
          | Some p ->
              let s = !next_seq in
              incr next_seq;
              Binary_heap.add h ~priority:p s;
              insert (p, s);
              Binary_heap.length h = List.length !model
          | None -> (
              match (Binary_heap.pop h, !model) with
              | None, [] -> true
              | Some (p, s), (mp, ms) :: rest ->
                  model := rest;
                  p = mp && s = ms
              | Some _, [] | None, _ :: _ -> false))
        ops)

(* The allocation-free accessors must agree with the boxing wrappers. *)
let test_pop_min_agrees () =
  let h = Binary_heap.create () in
  List.iter (fun p -> Binary_heap.add h ~priority:p (p * 10)) [ 4; 2; 9; 2; 7 ];
  check Alcotest.int "min_priority" 2 (Binary_heap.min_priority h);
  check Alcotest.(pair int int) "pop_min entry" (2, 20) (Binary_heap.pop_min h);
  check Alcotest.int "pop_min parks the priority" 2 (Binary_heap.popped_priority h);
  check Alcotest.int "second of the tied pair" 20 (Binary_heap.pop_min_value h);
  check Alcotest.int "popped_priority after pop_min_value" 2
    (Binary_heap.popped_priority h);
  check Alcotest.int "next priority" 4 (Binary_heap.min_priority h);
  Alcotest.check_raises "empty min_priority"
    (Invalid_argument "Binary_heap.min_priority: empty") (fun () ->
      ignore (Binary_heap.min_priority (Binary_heap.create () : int Binary_heap.t)));
  Alcotest.check_raises "empty pop_min"
    (Invalid_argument "Binary_heap.pop_min: empty") (fun () ->
      ignore (Binary_heap.pop_min (Binary_heap.create () : int Binary_heap.t)))

let test_fifo_across_clear () =
  let h = Binary_heap.create () in
  Binary_heap.add h ~priority:1 "a";
  Binary_heap.clear h;
  (* the sequence counter survives clear, so FIFO keeps holding *)
  Binary_heap.add h ~priority:5 "b";
  Binary_heap.add h ~priority:5 "c";
  check
    Alcotest.(list (pair int string))
    "FIFO after clear"
    [ (5, "b"); (5, "c") ]
    (drain h)

let suite =
  [
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "pop_min/min_priority" `Quick test_pop_min_agrees;
    Alcotest.test_case "FIFO across clear" `Quick test_fifo_across_clear;
    QCheck_alcotest.to_alcotest prop_model_interleaved;
    Alcotest.test_case "FIFO on ties" `Quick test_fifo_ties;
    Alcotest.test_case "min peek" `Quick test_min_peek;
    Alcotest.test_case "interleaved add/pop" `Quick test_interleaved;
    Alcotest.test_case "clear" `Quick test_clear;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    QCheck_alcotest.to_alcotest prop_stable_within_priority;
  ]
