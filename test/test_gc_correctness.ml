(* The strongest collector-correctness property: after a full run with
   many collections, every workload root is still live and the object
   graph reachable from the roots is intact (no live object was ever
   reclaimed), for every collector. *)

module Heap = Gcr_heap.Heap
module Obj_model = Gcr_heap.Obj_model
module Engine = Gcr_engine.Engine
module Gc_types = Gcr_gcs.Gc_types
module Registry = Gcr_gcs.Registry
module Spec = Gcr_workloads.Spec
module Suite = Gcr_workloads.Suite
module Mutator = Gcr_workloads.Mutator
module Longlived = Gcr_workloads.Longlived
module Prng = Gcr_util.Prng

let check = Alcotest.check

let spec =
  {
    (Suite.find_exn "h2") with
    Spec.name = "correctness";
    mutator_threads = 3;
    packets_per_thread = 150;
    allocs_per_packet = 12;
    packet_compute_cycles = 15_000;
    long_lived_target_words = 5_000;
    long_lived_churn_per_packet = 0.4;
    survival_ratio = 0.2;
    latency = None;
  }

(* Compose a run by hand so we keep access to the roots afterwards. *)
let run_and_inspect gc_kind ~heap_words ~seed =
  let engine = Engine.create ~cpus:8 () in
  let heap = Heap.create ~capacity_words:heap_words ~region_words:256 () in
  let ctx =
    Gc_types.make_ctx ~heap ~engine ~cost:Gcr_mach.Cost_model.default
      ~machine:Gcr_mach.Machine.default
  in
  let gc = Registry.make gc_kind ctx in
  let root_prng = Prng.create seed in
  let (_ : Prng.t) = Prng.split root_prng in
  let longlived = Longlived.create ctx ~spec in
  let mutators =
    List.init spec.Spec.mutator_threads (fun index ->
        Mutator.create ctx ~gc ~spec ~longlived
          ~ds:(Gcr_workloads.Decision_source.live ~spec (Prng.split root_prng))
          ~index)
  in
  let roots () = List.concat (Longlived.roots longlived :: List.map Mutator.roots mutators) in
  (ctx.Gc_types.iter_roots :=
     fun f ->
       Longlived.iter_roots longlived f;
       List.iter (fun m -> Mutator.iter_roots m f) mutators);
  List.iter Mutator.start_batch mutators;
  let outcome = Engine.run engine () in
  (outcome, ctx, gc, roots)

let test_roots_survive gc_kind () =
  let outcome, ctx, gc, roots = run_and_inspect gc_kind ~heap_words:16_000 ~seed:31 in
  (match outcome with
  | Engine.All_mutators_finished -> ()
  | Engine.Aborted reason -> Alcotest.failf "aborted: %s" reason);
  let heap = ctx.Gc_types.heap in
  (* enough pressure that collection really happened *)
  if gc_kind <> Registry.Epsilon then
    check Alcotest.bool "collected" true
      ((gc.Gc_types.stats ()).Gc_types.collections > 0);
  let root_ids = roots () in
  check Alcotest.bool "has roots" true (root_ids <> []);
  List.iter
    (fun id ->
      check Alcotest.bool (Printf.sprintf "root %d live" id) true (Heap.is_live heap id))
    root_ids;
  (* every object reachable from the roots must be in the table with a
     resident region that is not free *)
  let reachable = Heap.reachable_from heap root_ids in
  Hashtbl.iter
    (fun id () ->
      check Alcotest.bool
        (Printf.sprintf "object %d in a non-free region" id)
        false
        (Gcr_heap.Region.space_equal (Heap.obj_space heap id) Gcr_heap.Region.Free))
    reachable

let test_heap_usage_bounded gc_kind () =
  (* With heavy churn, the live footprint at the end must be a small
     fraction of everything ever allocated — reclamation really ran. *)
  let outcome, ctx, _, _ = run_and_inspect gc_kind ~heap_words:16_000 ~seed:32 in
  (match outcome with
  | Engine.All_mutators_finished -> ()
  | Engine.Aborted reason -> Alcotest.failf "aborted: %s" reason);
  let heap = ctx.Gc_types.heap in
  let allocated = Heap.words_allocated_total heap in
  check Alcotest.bool "allocated much more than heap" true (allocated > 3 * 16_000);
  check Alcotest.bool "live bounded by heap" true (Heap.live_words_exact heap <= 16_000)

let per_gc name f kinds =
  List.map
    (fun gc -> Alcotest.test_case (Printf.sprintf "%s (%s)" name (Registry.name gc)) `Quick (f gc))
    kinds

let kinds = Registry.production @ Registry.experimental

let suite =
  per_gc "roots survive collections" test_roots_survive kinds
  @ per_gc "heap usage bounded" test_heap_usage_bounded kinds
