(* The differential suite behind the scheduler's central promise: a
   parallel campaign is bit-identical to the serial one — measurements,
   min-heaps, LBO values, geomeans — and one crashing invocation never
   takes the campaign down with it. *)

module Registry = Gcr_gcs.Registry
module Suite = Gcr_workloads.Suite
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement
module Harness = Gcr_core.Harness
module Metrics = Gcr_core.Metrics
module Pool = Gcr_sched.Pool

let check = Alcotest.check

let campaign_config jobs =
  {
    (Harness.default_config ()) with
    Harness.invocations = 2;
    scale = 0.1;
    heap_factors = [ 1.9; 3.0 ];
    log_progress = false;
    jobs;
    cache_dir = None;
  }

let benchmarks = [ Suite.find_exn "h2" ]

let serial =
  lazy (Harness.run_campaign (campaign_config 1) ~benchmarks ~gcs:Registry.production)

let parallel =
  lazy (Harness.run_campaign (campaign_config 4) ~benchmarks ~gcs:Registry.production)

let all_gcs = Registry.Epsilon :: Registry.production

let factors = [ 1.9; 3.0 ]

(* Measurements are plain data (ints, strings, lists, histograms of int
   arrays), so structural equality is bit-equality of everything the
   reports are derived from. *)
let test_measurements_identical () =
  let s = Lazy.force serial and p = Lazy.force parallel in
  List.iter
    (fun gc ->
      List.iter
        (fun factor ->
          let rs = Harness.runs s ~bench:"h2" ~gc ~factor
          and rp = Harness.runs p ~bench:"h2" ~gc ~factor in
          check Alcotest.int
            (Printf.sprintf "run count %s@%g" (Registry.name gc) factor)
            (List.length rs) (List.length rp);
          check Alcotest.bool
            (Printf.sprintf "measurements bit-identical %s@%g" (Registry.name gc) factor)
            true (rs = rp))
        factors)
    all_gcs

let test_minheaps_identical () =
  let s = Lazy.force serial and p = Lazy.force parallel in
  check Alcotest.int "minheap words equal"
    (Harness.minheap_words s ~bench:"h2")
    (Harness.minheap_words p ~bench:"h2")

let test_lbo_identical () =
  let s = Lazy.force serial and p = Lazy.force parallel in
  List.iter
    (fun metric ->
      List.iter
        (fun gc ->
          List.iter
            (fun factor ->
              let vs = Harness.lbo_value s metric ~bench:"h2" ~gc ~factor
              and vp = Harness.lbo_value p metric ~bench:"h2" ~gc ~factor in
              check Alcotest.bool
                (Printf.sprintf "lbo equal %s@%g" (Registry.name gc) factor)
                true (vs = vp);
              let gs = Harness.lbo_geomean s metric ~benches:[ "h2" ] ~gc ~factor
              and gp = Harness.lbo_geomean p metric ~benches:[ "h2" ] ~gc ~factor in
              check Alcotest.bool
                (Printf.sprintf "geomean equal %s@%g" (Registry.name gc) factor)
                true (gs = gp))
            factors)
        Registry.production)
    [ Metrics.Wall_time; Metrics.Cpu_cycles ]

(* Pool.map must reassemble results in submission order whatever the
   interleaving: seeds are a fingerprint of which config produced which
   slot. *)
let test_submission_order_preserved () =
  let spec = Spec.scale (Suite.find_exn "jme") 0.1 in
  let configs =
    List.init 8 (fun i ->
        Run.default_config ~spec ~gc:Registry.Serial ~heap_words:40_000 ~seed:(100 + i))
  in
  let results = Pool.map ~jobs:4 configs in
  List.iteri
    (fun i (m : Measurement.t) ->
      check Alcotest.int (Printf.sprintf "slot %d keeps its seed" i) (100 + i)
        m.Measurement.seed)
    results

let contains haystack needle =
  let n = String.length needle and len = String.length haystack in
  let rec go i = i + n <= len && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let boom_collector _ctx = failwith "boom: injected collector failure"

let test_crash_isolation () =
  let spec = Spec.scale (Suite.find_exn "jme") 0.1 in
  let ok seed = Run.default_config ~spec ~gc:Registry.Serial ~heap_words:40_000 ~seed in
  let boom =
    { (ok 2) with Run.gc = Registry.G1; make_collector = Some boom_collector }
  in
  let results = Pool.map ~jobs:4 [ ok 1; boom; ok 3; ok 4 ] in
  (match results with
  | [ a; b; c; d ] ->
      check Alcotest.bool "run 1 completed" true (Measurement.completed a);
      check Alcotest.bool "run 3 completed" true (Measurement.completed c);
      check Alcotest.bool "run 4 completed" true (Measurement.completed d);
      (match b.Measurement.outcome with
      | Measurement.Failed reason ->
          check Alcotest.bool "failure names the exception" true (contains reason "boom")
      | Measurement.Completed -> Alcotest.fail "crashing run reported Completed");
      (* the surviving runs are exactly what a serial, crash-free campaign
         of the same configs produces *)
      let reference = Pool.map ~jobs:1 [ ok 1; ok 3; ok 4 ] in
      check Alcotest.bool "survivors unaffected by the crash" true
        ([ a; c; d ] = reference)
  | _ -> Alcotest.fail "expected four results")

let suite =
  [
    Alcotest.test_case "parallel measurements identical" `Quick test_measurements_identical;
    Alcotest.test_case "parallel minheaps identical" `Quick test_minheaps_identical;
    Alcotest.test_case "parallel lbo identical" `Quick test_lbo_identical;
    Alcotest.test_case "submission order preserved" `Quick test_submission_order_preserved;
    Alcotest.test_case "crash isolation" `Quick test_crash_isolation;
  ]
