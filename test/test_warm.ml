(* The warm execution path's contract: pooling engine/heap state across
   cells (Run.state) is invisible in the results.  Every suite below runs
   the same cell sequence twice — once through one shared warm state,
   once with a fresh state per cell — and demands bit-identical
   measurements plus equal end-of-run heap history digests (the digest
   folds every birth serial, so any leaked allocation ordering or
   recycled-id divergence shows up even when the measurement happens to
   agree). *)

module Registry = Gcr_gcs.Registry
module Heap = Gcr_heap.Heap
module Suite = Gcr_workloads.Suite
module Spec = Gcr_workloads.Spec
module Tape_gen = Gcr_workloads.Tape_gen
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement

let check = Alcotest.check

let tiny = Spec.scale (Suite.find_exn "jme") 0.05

let config_of ?(spec = tiny) ?max_events ?(tape = Run.Tape_off) kind ~heap_words ~seed =
  {
    (Run.default_config ~spec ~gc:kind ~heap_words ~seed) with
    Run.max_events;
    tape;
  }

let digest_of state =
  match Run.state_heap state with
  | Some heap -> Heap.history_digest heap
  | None -> Alcotest.fail "run left no heap in its state"

let describe (config : Run.config) =
  Printf.sprintf "%s/%s heap=%d seed=%d" config.Run.spec.Spec.name
    (Registry.name config.Run.gc) config.Run.heap_words config.Run.seed

(* Execute [configs] in order through one shared warm state, and each
   config through its own fresh state, comparing after every cell. *)
let check_sequence configs =
  let warm_state = Run.new_state () in
  List.iter
    (fun config ->
      let warm = Run.execute ~state:warm_state config in
      let fresh_state = Run.new_state () in
      let fresh = Run.execute ~state:fresh_state config in
      check Alcotest.bool
        (Printf.sprintf "warm = fresh measurement for %s" (describe config))
        true (warm = fresh);
      check Alcotest.int
        (Printf.sprintf "warm = fresh history digest for %s" (describe config))
        (digest_of fresh_state) (digest_of warm_state))
    configs

(* Back-to-back cells across the whole collector frontier through one
   state: the exact reuse pattern a fabric worker sees when sibling
   groups (same spec/seed, collector varies) land on it consecutively. *)
let test_frontier_sequence () =
  check_sequence
    (List.concat_map
       (fun kind ->
         [
           config_of kind ~heap_words:30_000 ~seed:5;
           config_of kind ~heap_words:46_000 ~seed:6;
         ])
       Registry.frontier)

(* A run that aborts (OOM on a starved heap) poisons the state
   mid-flight — collectors bail at arbitrary points, free lists and
   remsets half-updated.  The next run through that state must still be
   bit-identical to fresh. *)
let test_oom_then_clean () =
  check_sequence
    [
      config_of Registry.Serial ~heap_words:768 ~seed:3;
      config_of Registry.Serial ~heap_words:40_000 ~seed:3;
      config_of Registry.G1 ~heap_words:768 ~seed:4;
      config_of Registry.G1 ~heap_words:40_000 ~seed:4;
    ]

(* Same for the event-budget abort: the engine stops with the event heap
   and ready ring full of in-flight work. *)
let test_budget_abort_then_clean () =
  check_sequence
    [
      config_of Registry.Serial ~max_events:10 ~heap_words:30_000 ~seed:2;
      config_of Registry.Serial ~heap_words:30_000 ~seed:2;
    ]

(* Tape replay through a warm state: the decoded image is exactly what
   fabric workers memoize across sibling groups. *)
let test_tape_replay_warm () =
  let image = Tape_gen.image ~spec:tiny ~seed:9 in
  check_sequence
    [
      config_of Registry.Serial ~tape:(Run.Tape_replay image) ~heap_words:30_000 ~seed:9;
      config_of Registry.G1 ~tape:(Run.Tape_replay image) ~heap_words:30_000 ~seed:9;
      config_of Registry.Shenandoah ~tape:(Run.Tape_replay image) ~heap_words:46_000
        ~seed:9;
    ]

(* Random short campaigns over collector × size × heap × seed: any state
   leak between two specific cells that the deterministic suites above
   miss has to survive this to ship. *)
type shape = {
  kind : Registry.kind;
  seed : int;
  packets : int;
  threads : int;
  heap_words : int;
}

let shape_gen =
  QCheck.Gen.(
    map
      (fun (kind, (seed, packets, threads, heap_words)) ->
        { kind; seed; packets; threads; heap_words })
      (pair (oneofl Registry.frontier)
         (quad (int_range 0 10_000) (int_range 3 10) (int_range 1 2)
            (int_range 2_000 60_000))))

let print_shape s =
  Printf.sprintf "%s seed=%d packets=%d threads=%d heap=%d" (Registry.name s.kind)
    s.seed s.packets s.threads s.heap_words

let config_of_shape s =
  let spec =
    { tiny with Spec.packets_per_thread = s.packets; mutator_threads = s.threads }
  in
  config_of s.kind ~spec ~heap_words:s.heap_words ~seed:s.seed

let prop_warm_equals_fresh =
  QCheck.Test.make ~name:"warm sequence = fresh, cell by cell" ~count:25
    (QCheck.make
       ~print:(fun (a, b, c) ->
         String.concat " ; " (List.map print_shape [ a; b; c ]))
       QCheck.Gen.(triple shape_gen shape_gen shape_gen))
    (fun (a, b, c) ->
      let configs = List.map config_of_shape [ a; b; c ] in
      let warm_state = Run.new_state () in
      List.for_all
        (fun config ->
          let warm = Run.execute ~state:warm_state config in
          let fresh_state = Run.new_state () in
          let fresh = Run.execute ~state:fresh_state config in
          warm = fresh && digest_of warm_state = digest_of fresh_state)
        configs)

let suite =
  [
    Alcotest.test_case "frontier sequence, shared state" `Quick test_frontier_sequence;
    Alcotest.test_case "OOM abort then clean run" `Quick test_oom_then_clean;
    Alcotest.test_case "budget abort then clean run" `Quick test_budget_abort_then_clean;
    Alcotest.test_case "tape replay through warm state" `Quick test_tape_replay_warm;
    QCheck_alcotest.to_alcotest prop_warm_equals_fresh;
  ]
