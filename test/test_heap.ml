(* Heap: regions, allocation, movement, release, epochs, accounting. *)

module Heap = Gcr_heap.Heap
module Region = Gcr_heap.Region
module Obj_model = Gcr_heap.Obj_model
module Allocator = Gcr_heap.Allocator

let check = Alcotest.check

let make_heap ?(regions = 8) ?(region_words = 64) () =
  Heap.create ~capacity_words:(regions * region_words) ~region_words ()

(* alloc_in_region returns [Obj_model.null] when the region is full; the
   tests below want a hard failure in that case. *)
let alloc_exn h r ~size ~nfields =
  let id = Heap.alloc_in_region h r ~size ~nfields in
  if Obj_model.is_null id then failwith "alloc_exn: region full";
  id

let test_geometry () =
  let h = make_heap () in
  check Alcotest.int "regions" 8 (Heap.total_regions h);
  check Alcotest.int "free" 8 (Heap.free_regions h);
  check Alcotest.int "capacity" 512 (Heap.capacity_words h);
  check Alcotest.int "used" 0 (Heap.used_words h)

let test_create_rejects_tiny () =
  Alcotest.check_raises "one region" (Invalid_argument "Heap.create: need at least two regions")
    (fun () -> ignore (Heap.create ~capacity_words:64 ~region_words:64 ()))

let test_take_free_region () =
  let h = make_heap () in
  let r = Option.get (Heap.take_free_region h ~space:Region.Eden) in
  check Alcotest.bool "labelled" true (Region.space_equal r.Region.space Region.Eden);
  check Alcotest.int "free decremented" 7 (Heap.free_regions h)

let test_alloc_in_region () =
  let h = make_heap () in
  let r = Option.get (Heap.take_free_region h ~space:Region.Eden) in
  let o = alloc_exn h r ~size:10 ~nfields:3 in
  check Alcotest.int "object size" 10 (Heap.obj_size h o);
  check Alcotest.int "fields" 3 (Heap.obj_nfields h o);
  check Alcotest.int "region used" 10 r.Region.used_words;
  check Alcotest.int "heap used" 10 (Heap.used_words h);
  check Alcotest.int "eden used" 10 (Heap.space_used_words h Region.Eden);
  check Alcotest.bool "live" true (Heap.is_live h o);
  check Alcotest.int "live objects" 1 (Heap.live_objects h);
  check Alcotest.int "live words" 10 (Heap.live_words_exact h)

let test_alloc_region_full () =
  let h = make_heap ~region_words:16 () in
  let r = Option.get (Heap.take_free_region h ~space:Region.Eden) in
  check Alcotest.bool "first fits" true
    (not (Obj_model.is_null (Heap.alloc_in_region h r ~size:12 ~nfields:0)));
  check Alcotest.bool "second does not" true
    (Obj_model.is_null (Heap.alloc_in_region h r ~size:8 ~nfields:0))

let test_ids_unique_and_null () =
  let h = make_heap () in
  let r = Option.get (Heap.take_free_region h ~space:Region.Eden) in
  let a = alloc_exn h r ~size:4 ~nfields:0 in
  let b = alloc_exn h r ~size:4 ~nfields:0 in
  check Alcotest.bool "distinct ids" true (a <> b);
  check Alcotest.bool "null is not live" false (Heap.is_live h Obj_model.null)

let test_release_region () =
  let h = make_heap () in
  let r = Option.get (Heap.take_free_region h ~space:Region.Eden) in
  let o = alloc_exn h r ~size:10 ~nfields:0 in
  Heap.release_region h r;
  check Alcotest.bool "object dead" false (Heap.is_live h o);
  check Alcotest.int "free restored" 8 (Heap.free_regions h);
  check Alcotest.int "used zero" 0 (Heap.used_words h);
  check Alcotest.int "eden used zero" 0 (Heap.space_used_words h Region.Eden);
  check Alcotest.bool "region free" true (Region.space_equal r.Region.space Region.Free)

let test_move_object_survives_release () =
  let h = make_heap () in
  let src = Option.get (Heap.take_free_region h ~space:Region.Eden) in
  let dst = Option.get (Heap.take_free_region h ~space:Region.Old) in
  let o = alloc_exn h src ~size:10 ~nfields:0 in
  check Alcotest.bool "moved" true (Heap.move_object h o dst);
  check Alcotest.int "region updated" dst.Region.index (Heap.obj_region h o);
  Heap.release_region h src;
  check Alcotest.bool "still live after source release" true (Heap.is_live h o);
  check Alcotest.int "old space holds it" 10 (Heap.space_used_words h Region.Old)

let test_move_rejects_when_full () =
  let h = make_heap ~region_words:16 () in
  let src = Option.get (Heap.take_free_region h ~space:Region.Eden) in
  let dst = Option.get (Heap.take_free_region h ~space:Region.Old) in
  ignore (alloc_exn h dst ~size:12 ~nfields:0);
  let o = alloc_exn h src ~size:8 ~nfields:0 in
  check Alcotest.bool "no space" false (Heap.move_object h o dst)

let test_mark_epochs () =
  let h = make_heap () in
  let r = Option.get (Heap.take_free_region h ~space:Region.Eden) in
  let o = alloc_exn h r ~size:4 ~nfields:0 in
  check Alcotest.bool "unmarked initially" false (Heap.is_marked h o);
  ignore (Heap.begin_mark_epoch h);
  Heap.set_marked h o;
  check Alcotest.bool "marked" true (Heap.is_marked h o);
  ignore (Heap.begin_mark_epoch h);
  check Alcotest.bool "stale after new epoch" false (Heap.is_marked h o);
  (* scratch epoch is independent *)
  ignore (Heap.begin_scratch_epoch h);
  Heap.set_scratch_marked h o;
  check Alcotest.bool "scratch marked" true (Heap.is_scratch_marked h o);
  check Alcotest.bool "main unaffected" false (Heap.is_marked h o)

let test_purge_unmarked () =
  let h = make_heap () in
  let r = Option.get (Heap.take_free_region h ~space:Region.Eden) in
  let keep = alloc_exn h r ~size:4 ~nfields:0 in
  let drop = alloc_exn h r ~size:4 ~nfields:0 in
  ignore (Heap.begin_mark_epoch h);
  Heap.set_marked h keep;
  Heap.purge_unmarked h r;
  check Alcotest.bool "marked survives" true (Heap.is_live h keep);
  check Alcotest.bool "unmarked purged" false (Heap.is_live h drop)

let test_release_keep_objects_and_place () =
  let h = make_heap () in
  let r = Option.get (Heap.take_free_region h ~space:Region.Eden) in
  let o = alloc_exn h r ~size:10 ~nfields:0 in
  Heap.release_region_keep_objects h r;
  check Alcotest.bool "object survives raw release" true (Heap.is_live h o);
  check Alcotest.int "used reset" 0 (Heap.used_words h);
  let dst = Option.get (Heap.take_free_region h ~space:Region.Old) in
  check Alcotest.bool "placed" true (Heap.place_object h o dst);
  check Alcotest.int "used again" 10 (Heap.used_words h)

let test_alloc_reserve () =
  let h = make_heap () in
  Heap.set_alloc_reserve h 6;
  (* eden requests stop at the reserve *)
  check Alcotest.bool "eden 1" true (Heap.take_free_region h ~space:Region.Eden <> None);
  check Alcotest.bool "eden 2" true (Heap.take_free_region h ~space:Region.Eden <> None);
  check Alcotest.bool "eden blocked" true (Heap.take_free_region h ~space:Region.Eden = None);
  (* GC copy targets drain past the reserve *)
  check Alcotest.bool "old allowed" true (Heap.take_free_region h ~space:Region.Old <> None)

let test_reachable_from () =
  let h = make_heap () in
  let r = Option.get (Heap.take_free_region h ~space:Region.Eden) in
  let a = alloc_exn h r ~size:6 ~nfields:2 in
  let b = alloc_exn h r ~size:6 ~nfields:2 in
  let c = alloc_exn h r ~size:6 ~nfields:2 in
  let d = alloc_exn h r ~size:6 ~nfields:2 in
  Heap.set_field h a 0 b;
  Heap.set_field h b 0 c;
  Heap.set_field h b 1 a;
  (* cycle *)
  let reachable = Heap.reachable_from h [ a ] in
  check Alcotest.int "three reachable" 3 (Hashtbl.length reachable);
  check Alcotest.bool "d unreachable" false (Hashtbl.mem reachable d)

let test_regions_in_space () =
  let h = make_heap () in
  ignore (Heap.take_free_region h ~space:Region.Eden);
  ignore (Heap.take_free_region h ~space:Region.Old);
  ignore (Heap.take_free_region h ~space:Region.Old);
  check Alcotest.int "eden count" 1 (List.length (Heap.regions_in_space h Region.Eden));
  check Alcotest.int "old count" 2 (List.length (Heap.regions_in_space h Region.Old));
  check Alcotest.int "free count" 5 (List.length (Heap.regions_in_space h Region.Free))

(* qcheck: random alloc/release sequences keep the aggregate accounting
   consistent. *)
let prop_accounting =
  QCheck.Test.make ~name:"heap accounting stays consistent" ~count:100
    QCheck.(list (pair bool (int_range 4 20)))
    (fun ops ->
      let h = Heap.create ~capacity_words:(16 * 64) ~region_words:64 () in
      let taken = ref [] in
      List.iter
        (fun (release, size) ->
          if release then (
            match !taken with
            | r :: rest ->
                Heap.release_region h r;
                taken := rest
            | [] -> ())
          else
            match Heap.take_free_region h ~space:Region.Eden with
            | None -> ()
            | Some r ->
                ignore (Heap.alloc_in_region h r ~size ~nfields:0);
                taken := r :: !taken)
        ops;
      let sum_cursors = ref 0 in
      Heap.iter_regions
        (fun r ->
          if not (Region.space_equal r.Region.space Region.Free) then
            sum_cursors := !sum_cursors + r.Region.used_words)
        h;
      Heap.used_words h = !sum_cursors
      && Heap.free_regions h + List.length !taken = Heap.total_regions h)

let suite =
  [
    Alcotest.test_case "geometry" `Quick test_geometry;
    Alcotest.test_case "create rejects tiny" `Quick test_create_rejects_tiny;
    Alcotest.test_case "take free region" `Quick test_take_free_region;
    Alcotest.test_case "alloc in region" `Quick test_alloc_in_region;
    Alcotest.test_case "alloc region full" `Quick test_alloc_region_full;
    Alcotest.test_case "ids unique, null dead" `Quick test_ids_unique_and_null;
    Alcotest.test_case "release region" `Quick test_release_region;
    Alcotest.test_case "move survives release" `Quick test_move_object_survives_release;
    Alcotest.test_case "move rejects full dst" `Quick test_move_rejects_when_full;
    Alcotest.test_case "mark epochs" `Quick test_mark_epochs;
    Alcotest.test_case "purge unmarked" `Quick test_purge_unmarked;
    Alcotest.test_case "raw release + place" `Quick test_release_keep_objects_and_place;
    Alcotest.test_case "alloc reserve" `Quick test_alloc_reserve;
    Alcotest.test_case "reachable_from" `Quick test_reachable_from;
    Alcotest.test_case "regions in space" `Quick test_regions_in_space;
    QCheck_alcotest.to_alcotest prop_accounting;
  ]
