let () =
  Alcotest.run "gcr"
    [
      ("prng", Test_prng.suite);
      ("vec", Test_vec.suite);
      ("binary-heap", Test_binary_heap.suite);
      ("stats", Test_stats.suite);
      ("histogram", Test_histogram.suite);
      ("units-tablefmt", Test_units.suite);
      ("engine", Test_engine.suite);
      ("engine-props", Test_engine_props.suite);
      ("heap", Test_heap.suite);
      ("obj-store", Test_obj_store.suite);
      ("allocator", Test_allocator.suite);
      ("tracer", Test_tracer.suite);
      ("evacuator", Test_evacuator.suite);
      ("worker-pool", Test_worker_pool.suite);
      ("remset", Test_remset.suite);
      ("scavenge", Test_scavenge.suite);
      ("full-compact", Test_full_compact.suite);
      ("collectors", Test_collectors.suite);
      ("gc-correctness", Test_gc_correctness.suite);
      ("concurrent-gcs", Test_concurrent_gcs.suite);
      ("conc-cycle", Test_conc_cycle.suite);
      ("registry", Test_registry.suite);
      ("lxr", Test_lxr.suite);
      ("liveset-diff", Test_liveset_diff.suite);
      ("workloads", Test_workloads.suite);
      ("latency", Test_latency.suite);
      ("run", Test_run.suite);
      ("policy", Test_policy.suite);
      ("tape", Test_tape.suite);
      ("obs", Test_obs.suite);
      ("run-props", Test_run_props.suite);
      ("warm", Test_warm.suite);
      (* fabric first among the scheduler suites: it forks worker
         processes, which OCaml forbids once any domain has ever been
         spawned — and sched / result-cache campaigns spawn domains *)
      ("transport", Test_transport.suite);
      ("fabric", Test_fabric.suite);
      ("sched", Test_sched.suite);
      ("result-cache", Test_result_cache.suite);
      ("metrics", Test_metrics.suite);
      ("lbo", Test_lbo.suite);
      ("harness", Test_harness.suite);
      ("ablation", Test_ablation.suite);
      ("golden", Test_golden.suite);
    ]
