(* Unit conversions and table formatting. *)

module Units = Gcr_util.Units
module Tablefmt = Gcr_util.Tablefmt

let check = Alcotest.check

let test_words_bytes () =
  check Alcotest.int "bytes of words" 80 (Units.bytes_of_words 10);
  check Alcotest.int "words of bytes exact" 10 (Units.words_of_bytes 80);
  check Alcotest.int "words of bytes rounds up" 11 (Units.words_of_bytes 81)

let test_time () =
  check Alcotest.int "1us at 3.6GHz" 3600 (Units.cycles_of_us 1.0);
  check (Alcotest.float 1e-9) "round trip" 1.0 (Units.us_of_cycles (Units.cycles_of_us 1.0));
  check (Alcotest.float 1e-9) "ms" 1.0 (Units.ms_of_cycles 3_600_000);
  check (Alcotest.float 1e-9) "s" 1.0 (Units.seconds_of_cycles 3_600_000_000)

let test_pp () =
  let str pp v = Format.asprintf "%a" pp v in
  check Alcotest.string "cycles" "1.50 Gcycles" (str Units.pp_cycles 1_500_000_000);
  check Alcotest.string "small cycles" "42 cycles" (str Units.pp_cycles 42);
  check Alcotest.string "words as KiB" "1.00 KiB" (str Units.pp_words 128)

let test_table_render () =
  let t = Tablefmt.create ~title:"T" ~columns:[ "a"; "b" ] in
  Tablefmt.add_row t ~label:"row1" [ Tablefmt.Num (1.5, 2); Tablefmt.Missing ];
  Tablefmt.add_row t ~label:"row2" [ Tablefmt.Text "x"; Tablefmt.Num (2.0, 1) ];
  let s = Tablefmt.render t in
  check Alcotest.bool "title present" true (String.length s > 0 && s.[0] = 'T');
  let contains needle =
    let n = String.length needle and len = String.length s in
    let rec go i = i + n <= len && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "value rendered" true (contains "1.50");
  check Alcotest.bool "text rendered" true (contains "x");
  check Alcotest.bool "labels" true (contains "row1" && contains "row2")

let test_table_best_marking () =
  let t = Tablefmt.create ~title:"T" ~columns:[ "a"; "b" ] in
  Tablefmt.add_row t ~label:"r1" [ Tablefmt.Num (2.0, 1); Tablefmt.Num (1.0, 1) ];
  Tablefmt.add_row t ~label:"r2" [ Tablefmt.Num (3.0, 1); Tablefmt.Num (4.0, 1) ];
  Tablefmt.mark_best_in_row t ~min:true;
  let s = Tablefmt.render t in
  let contains needle =
    let n = String.length needle and len = String.length s in
    let rec go i = i + n <= len && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "r1 best marked" true (contains "1.0*");
  check Alcotest.bool "r2 best marked" true (contains "3.0*");
  check Alcotest.bool "non-best unmarked" false (contains "4.0*")

let test_table_column_marking () =
  let t = Tablefmt.create ~title:"T" ~columns:[ "a" ] in
  Tablefmt.add_row t ~label:"r1" [ Tablefmt.Num (2.0, 1) ];
  Tablefmt.add_row t ~label:"r2" [ Tablefmt.Num (1.0, 1) ];
  Tablefmt.mark_best_in_column t ~min:true;
  let s = Tablefmt.render t in
  let contains needle =
    let n = String.length needle and len = String.length s in
    let rec go i = i + n <= len && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "column best marked" true (contains "1.0*")

let test_table_rejects_mismatch () =
  let t = Tablefmt.create ~title:"T" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "cell count" (Invalid_argument "Tablefmt.add_row: cell count mismatch")
    (fun () -> Tablefmt.add_row t ~label:"r" [ Tablefmt.Missing ])

let suite =
  [
    Alcotest.test_case "words/bytes" `Quick test_words_bytes;
    Alcotest.test_case "time conversions" `Quick test_time;
    Alcotest.test_case "pretty printing" `Quick test_pp;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "best-in-row marking" `Quick test_table_best_marking;
    Alcotest.test_case "best-in-column marking" `Quick test_table_column_marking;
    Alcotest.test_case "row mismatch rejected" `Quick test_table_rejects_mismatch;
  ]
