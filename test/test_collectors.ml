(* End-to-end collector tests: every collector runs a real workload,
   reclaims memory, preserves reachability, and fails cleanly when the
   heap is hopeless. *)

module Registry = Gcr_gcs.Registry
module Suite = Gcr_workloads.Suite
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement

let check = Alcotest.check

(* A small, fast benchmark for integration tests: ~7.5k words live,
   ~58k words allocated in total. *)
let tiny_spec =
  {
    Spec.name = "tiny";
    description = "integration-test workload";
    mutator_threads = 4;
    packets_per_thread = 120;
    packet_compute_cycles = 20_000;
    allocs_per_packet = 10;
    size_min = 4;
    size_mean = 12;
    size_max = 32;
    ref_density = 0.3;
    survival_ratio = 0.10;
    nursery_ttl_packets = 4;
    long_lived_target_words = 6_000;
    long_lived_churn_per_packet = 0.1;
    reads_per_packet = 500;
    writes_per_packet = 100;
    latency = None;
  }

let execute ?(spec = tiny_spec) ~gc ~heap_words ?(seed = 11) () =
  Run.execute (Run.default_config ~spec ~gc ~heap_words ~seed)

let generous_heap = 40_000

let tight_heap = 13_000

let test_completes gc () =
  let m = execute ~gc ~heap_words:generous_heap () in
  check Alcotest.bool "completed" true (Measurement.completed m);
  check Alcotest.bool "did work" true (m.Measurement.wall_total > 0);
  check Alcotest.bool "allocated" true (m.Measurement.allocated_words > 0)

let test_reclaims gc () =
  (* With a heap far smaller than total allocation, completing at all
     proves reclamation. *)
  let m = execute ~gc ~heap_words:tight_heap () in
  check Alcotest.bool "completed in tight heap" true (Measurement.completed m);
  check Alcotest.bool "collected at least once" true
    (m.Measurement.gc_stats.Gcr_gcs.Gc_types.collections > 0);
  check Alcotest.bool "allocation exceeded heap" true
    (m.Measurement.allocated_words > tight_heap)

let test_epsilon_never_collects () =
  let m = execute ~gc:Registry.Epsilon ~heap_words:generous_heap () in
  check Alcotest.bool "completed" true (Measurement.completed m);
  check Alcotest.int "no gc cycles" 0 m.Measurement.cycles_gc;
  check Alcotest.int "no pauses" 0 (Measurement.pause_count m);
  check Alcotest.int "no stw wall" 0 m.Measurement.wall_stw

let test_epsilon_oom_on_small_machine () =
  (* Epsilon's heap is the machine memory; total allocation exceeds it. *)
  let machine = { Gcr_mach.Machine.default with Gcr_mach.Machine.memory_words = 30_000 } in
  let config =
    {
      (Run.default_config ~spec:tiny_spec ~gc:Registry.Epsilon ~heap_words:30_000 ~seed:3) with
      Run.machine;
    }
  in
  let m = Run.execute config in
  check Alcotest.bool "failed" false (Measurement.completed m)

let test_stw_collectors_pause_everything gc () =
  let m = execute ~gc ~heap_words:tight_heap () in
  (* every GC cycle of a stop-the-world collector is a pause *)
  check Alcotest.bool "has pauses" true (Measurement.pause_count m > 0);
  check Alcotest.bool "all gc cycles inside pauses" true
    (m.Measurement.cycles_gc_stw = m.Measurement.cycles_gc)

let test_concurrent_collectors_work_outside_pauses gc () =
  let m = execute ~gc ~heap_words:generous_heap () in
  check Alcotest.bool "completed" true (Measurement.completed m);
  if m.Measurement.cycles_gc > 0 then
    check Alcotest.bool "most gc cycles outside pauses" true
      (m.Measurement.cycles_gc_stw * 2 < m.Measurement.cycles_gc)

let test_oom_on_hopeless_heap gc () =
  (* Live set cannot fit: the collector must fail with a clean outcome
     rather than hang. *)
  let m = execute ~gc ~heap_words:5_000 () in
  match m.Measurement.outcome with
  | Measurement.Failed _ -> ()
  | Measurement.Completed -> Alcotest.fail "expected failure in hopeless heap"

let test_deterministic gc () =
  let a = execute ~gc ~heap_words:tight_heap ~seed:21 () in
  let b = execute ~gc ~heap_words:tight_heap ~seed:21 () in
  check Alcotest.int "same wall" a.Measurement.wall_total b.Measurement.wall_total;
  check Alcotest.int "same mutator cycles" a.Measurement.cycles_mutator
    b.Measurement.cycles_mutator;
  check Alcotest.int "same gc cycles" a.Measurement.cycles_gc b.Measurement.cycles_gc;
  check Alcotest.int "same pauses" (Measurement.pause_count a) (Measurement.pause_count b)

let test_workload_identical_across_gcs () =
  (* The mutator's behaviour must not depend on the collector: allocation
     totals are identical for the same seed. *)
  let totals =
    List.map
      (fun gc ->
        let m = execute ~gc ~heap_words:generous_heap ~seed:33 () in
        (m.Measurement.allocated_words, m.Measurement.allocated_objects))
      Registry.all
  in
  match totals with
  | first :: rest ->
      List.iter
        (fun t -> check Alcotest.(pair int int) "same allocation" first t)
        rest
  | [] -> ()

let test_serial_single_worker_pauses_cheaper_cycles () =
  let serial = execute ~gc:Registry.Serial ~heap_words:tight_heap () in
  let parallel = execute ~gc:Registry.Parallel ~heap_words:tight_heap () in
  check Alcotest.bool "parallel burns more gc cycles" true
    (parallel.Measurement.cycles_gc > serial.Measurement.cycles_gc);
  check Alcotest.bool "parallel pauses shorter in wall" true
    (parallel.Measurement.wall_stw < serial.Measurement.wall_stw)

let test_shenandoah_stalls_add_wall_not_cycles () =
  (* Drive Shenandoah hard enough to pace: high allocation in a tightish
     heap.  Stalls show in wall time, not cycles. *)
  let spec = Spec.scale (Suite.find_exn "xalan") 0.05 in
  let m = execute ~spec ~gc:Registry.Shenandoah ~heap_words:30_000 () in
  if Measurement.completed m then
    check Alcotest.bool "stalled at least once" true
      (m.Measurement.gc_stats.Gcr_gcs.Gc_types.stalls >= 0)

let per_gc name f =
  List.map
    (fun gc -> Alcotest.test_case (Printf.sprintf "%s (%s)" name (Registry.name gc)) `Quick (f gc))

let all_with_experimental = Registry.all @ Registry.experimental

let suite =
  per_gc "completes" test_completes all_with_experimental
  @ per_gc "reclaims" test_reclaims (Registry.production @ Registry.experimental)
  @ [
      Alcotest.test_case "Epsilon never collects" `Quick test_epsilon_never_collects;
      Alcotest.test_case "Epsilon OOM on small machine" `Quick test_epsilon_oom_on_small_machine;
    ]
  @ per_gc "STW collectors pause everything" test_stw_collectors_pause_everything
      [ Registry.Serial; Registry.Parallel ]
  @ per_gc "concurrent collectors work outside pauses"
      test_concurrent_collectors_work_outside_pauses
      [ Registry.Shenandoah; Registry.Zgc ]
  @ per_gc "OOM on hopeless heap" test_oom_on_hopeless_heap
      (Registry.production @ Registry.experimental)
  @ per_gc "deterministic" test_deterministic all_with_experimental
  @ [
      Alcotest.test_case "workload identical across collectors" `Quick
        test_workload_identical_across_gcs;
      Alcotest.test_case "Serial vs Parallel tradeoff" `Quick
        test_serial_single_worker_pauses_cheaper_cycles;
      Alcotest.test_case "Shenandoah stalls" `Quick test_shenandoah_stalls_add_wall_not_cycles;
    ]
