(* The event spine: differential test of event-derived accounting against
   the engine's legacy counters, trace replay completeness, Perfetto
   export validity, and the CLI's failure reporting helper. *)

module Registry = Gcr_gcs.Registry
module Suite = Gcr_workloads.Suite
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement
module Engine = Gcr_engine.Engine
module Obs = Gcr_obs.Obs
module Event = Gcr_obs.Event
module Perfetto = Gcr_obs.Perfetto

let check = Alcotest.check

let with_legacy_accounting f =
  Unix.putenv "GCR_LEGACY_ACCOUNTING" "1";
  Fun.protect ~finally:(fun () -> Unix.putenv "GCR_LEGACY_ACCOUNTING" "") f

(* Capture the engine (the spine lives on it) across a run. *)
let execute_capturing config =
  let captured = ref None in
  let m = Run.execute ~on_engine:(fun e -> captured := Some e) config in
  match !captured with
  | Some engine -> (m, engine)
  | None -> Alcotest.fail "on_engine hook never ran"

let small_config ~bench ~gc ~heap_words ~seed =
  Run.default_config ~spec:(Spec.scale (Suite.find_exn bench) 0.1) ~gc ~heap_words ~seed

(* ---------- differential: derived Measurement = legacy counters ---------- *)

let check_against_legacy (m : Measurement.t) engine =
  match Engine.legacy_snapshot engine with
  | None -> Alcotest.fail "legacy accounting was not enabled"
  | Some l ->
      let name = Printf.sprintf "%s/%s seed=%d" m.Measurement.benchmark m.Measurement.gc m.Measurement.seed in
      check Alcotest.int (name ^ " wall_stw") l.Engine.lsnap_wall_stw m.Measurement.wall_stw;
      check Alcotest.int (name ^ " cycles_mutator") l.Engine.lsnap_cycles_mutator
        m.Measurement.cycles_mutator;
      check Alcotest.int (name ^ " cycles_gc") l.Engine.lsnap_cycles_gc m.Measurement.cycles_gc;
      check Alcotest.int (name ^ " cycles_gc_stw") l.Engine.lsnap_cycles_gc_stw
        m.Measurement.cycles_gc_stw;
      check Alcotest.int (name ^ " pause count") (List.length l.Engine.lsnap_pauses)
        (Measurement.pause_count m);
      List.iter2
        (fun (a : Engine.pause) (b : Engine.pause) ->
          check Alcotest.int (name ^ " pause start") a.Engine.start b.Engine.start;
          check Alcotest.int (name ^ " pause duration") a.Engine.duration b.Engine.duration;
          check Alcotest.string (name ^ " pause reason") a.Engine.reason b.Engine.reason)
        l.Engine.lsnap_pauses m.Measurement.pauses

let test_differential_all_collectors () =
  with_legacy_accounting (fun () ->
      List.iter
        (fun gc ->
          let heap_words =
            match gc with Registry.Epsilon -> 1 | _ -> 40_000
          in
          let m, engine = execute_capturing (small_config ~bench:"jme" ~gc ~heap_words ~seed:7) in
          check_against_legacy m engine)
        Registry.all)

let prop_differential_grid =
  (* Sampled workload grid: benchmark x collector x heap x seed.  Whatever
     the run does (complete, OOM, degenerate), the event-derived fields
     must equal the legacy hand-maintained counters exactly. *)
  let bench = QCheck.Gen.oneofl [ "jme"; "h2"; "lusearch" ] in
  let gc = QCheck.Gen.oneofl Registry.all in
  let gen = QCheck.Gen.(quad bench gc (int_range 20_000 60_000) (int_range 1 1000)) in
  let print (b, g, h, s) =
    Printf.sprintf "%s/%s heap=%d seed=%d" b (Registry.name g) h s
  in
  QCheck.Test.make ~name:"event-derived accounting = legacy counters" ~count:12
    (QCheck.make ~print gen) (fun (b, g, heap_words, seed) ->
      with_legacy_accounting (fun () ->
          let heap_words = match g with Registry.Epsilon -> 1 | _ -> heap_words in
          let m, engine = execute_capturing (small_config ~bench:b ~gc:g ~heap_words ~seed) in
          check_against_legacy m engine;
          true))

let test_differential_aborted_run () =
  (* An abort mid-pause leaves a pause open: the open pause's elapsed time
     must still be counted in wall_stw, exactly as the legacy counter did
     by accruing during the pause. *)
  with_legacy_accounting (fun () ->
      let config =
        { (small_config ~bench:"jme" ~gc:Registry.Serial ~heap_words:40_000 ~seed:3) with
          Run.max_events = Some 100;
        }
      in
      let m, engine = execute_capturing config in
      check Alcotest.bool "aborted" false (Measurement.completed m);
      check_against_legacy m engine)

(* ---------- trace replay completeness ---------- *)

let test_trace_replay_fingerprint () =
  (* A recorded trace replayed into fresh counters reproduces the online
     fold exactly: the trace captures everything the accounting needs. *)
  let trace = ref None in
  let obs_ref = ref None in
  let m, engine =
    let captured = ref None in
    let m =
      Run.execute
        ~on_engine:(fun e ->
          captured := Some e;
          let obs = Engine.obs e in
          obs_ref := Some obs;
          trace := Some (Obs.attach_trace obs))
        (small_config ~bench:"lusearch" ~gc:Registry.G1 ~heap_words:40_000 ~seed:11)
    in
    (m, Option.get !captured)
  in
  check Alcotest.bool "completed" true (Measurement.completed m);
  let obs = Option.get !obs_ref and trace = Option.get !trace in
  let now = Engine.now engine in
  let replayed = Obs.Trace.replay trace in
  check
    Alcotest.(list int)
    "replayed fingerprint = online fingerprint"
    (Obs.fingerprint obs ~now)
    (Obs.Counters.fingerprint replayed ~now)

(* ---------- Perfetto export ---------- *)

let record_trace ~bench ~gc ~seed =
  let captured = ref None in
  let m =
    Run.execute
      ~on_engine:(fun e ->
        let obs = Engine.obs e in
        captured := Some (obs, Obs.attach_trace obs))
      (small_config ~bench ~gc ~heap_words:40_000 ~seed)
  in
  let obs, trace = Option.get !captured in
  (m, Buffer.contents (Perfetto.write_buffer obs trace))

let test_perfetto_valid () =
  let m, text = record_trace ~bench:"lusearch" ~gc:Registry.G1 ~seed:5 in
  check Alcotest.bool "completed" true (Measurement.completed m);
  match Perfetto.validate_string text with
  | Error msg -> Alcotest.fail ("invalid trace: " ^ msg)
  | Ok s ->
      check Alcotest.bool "at least one pause slice" true (s.Perfetto.pause_slices >= 1);
      check Alcotest.bool "at least one phase slice" true (s.Perfetto.phase_slices >= 1);
      check Alcotest.int "begin/end balanced" s.Perfetto.begins s.Perfetto.ends

let test_perfetto_valid_concurrent () =
  (* Shenandoah exercises pacing and degeneration event paths. *)
  let _, text = record_trace ~bench:"jme" ~gc:Registry.Shenandoah ~seed:5 in
  match Perfetto.validate_string text with
  | Error msg -> Alcotest.fail ("invalid trace: " ^ msg)
  | Ok s -> check Alcotest.int "begin/end balanced" s.Perfetto.begins s.Perfetto.ends

let test_trace_alloc_free_when_detached () =
  (* No subscriber: emitting must not allocate; the spine still counts. *)
  let obs = Obs.create () in
  Obs.thread_spawn obs ~time:0 ~tid:0 ~kind:Event.mutator_kind ~name:"m0";
  let before = Gc.minor_words () in
  for i = 1 to 10_000 do
    Obs.step_complete obs ~time:i ~tid:0 ~kind:Event.mutator_kind ~cycles:10 ~in_pause:false
  done;
  let after = Gc.minor_words () in
  check Alcotest.bool "no allocation on the hot path" true (after -. before < 256.0);
  check Alcotest.int "cycles counted" 100_000 (Obs.cycles_of_kind obs Event.mutator_kind)

(* ---------- CLI failure reporting ---------- *)

let test_failure_lines () =
  let ok =
    Run.execute (small_config ~bench:"jme" ~gc:Registry.Epsilon ~heap_words:1 ~seed:2)
  in
  check Alcotest.(list string) "no lines for completed runs" []
    (Measurement.failure_lines [ ok ]);
  let failed =
    { ok with Measurement.outcome = Measurement.Failed "OutOfMemoryError: no free region" }
  in
  match Measurement.failure_lines [ ok; failed; ok ] with
  | [ line ] ->
      check Alcotest.bool "names the config" true
        (String.length line > 0
        && String.sub line 0 3 = "jme"
        && Option.is_some (String.index_opt line ':'))
  | lines -> Alcotest.fail (Printf.sprintf "expected 1 line, got %d" (List.length lines))

let suite =
  [
    Alcotest.test_case "differential: all collectors" `Quick test_differential_all_collectors;
    QCheck_alcotest.to_alcotest prop_differential_grid;
    Alcotest.test_case "differential: aborted run" `Quick test_differential_aborted_run;
    Alcotest.test_case "trace replay fingerprint" `Quick test_trace_replay_fingerprint;
    Alcotest.test_case "perfetto valid" `Quick test_perfetto_valid;
    Alcotest.test_case "perfetto valid (concurrent)" `Quick test_perfetto_valid_concurrent;
    Alcotest.test_case "alloc-free when detached" `Quick test_trace_alloc_free_when_detached;
    Alcotest.test_case "failure lines" `Quick test_failure_lines;
  ]
