(* RC-invariant suite for the LXR-style collector.

   LXR's deferred RC bookkeeping is exact at RC-update pause boundaries:
   all buffered increments and the previous pause's root unpins have been
   applied, every decrement (including the cascades from in-place frees)
   has drained, and born-dead objects have been reclaimed.  The collector's
   [debug] hook fires exactly there, so the suite recomputes the ground
   truth from the heap at each pause and checks:

   - rc(x) of every live object = in-edges from live objects + root pins
     still held on x;
   - the deferred decrement queue is empty;
   - a freed object (identified by its birth serial — ids are recycled,
     serials never) is never observed live again: decrements cannot
     resurrect.

   The same invariants are replayed over workload tapes, and replay must
   reproduce the live measurement bit for bit with the hook installed. *)

module Registry = Gcr_gcs.Registry
module Gc_types = Gcr_gcs.Gc_types
module Lxr = Gcr_gcs.Lxr
module Heap = Gcr_heap.Heap
module Obj_model = Gcr_heap.Obj_model
module Machine = Gcr_mach.Machine
module Suite = Gcr_workloads.Suite
module Spec = Gcr_workloads.Spec
module Tape_gen = Gcr_workloads.Tape_gen
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement
module Cache_key = Gcr_sched.Cache_key
module Tape = Gcr_tape.Tape

let check = Alcotest.check

(* Allocation-heavy enough that these heaps pause many times per run; the
   low end of the heap range forces clean LXR OOMs, so the invariants are
   exercised on aborting runs too. *)
let tiny = Spec.scale (Suite.find_exn "lusearch") 0.02

type shape = { seed : int; packets : int; threads : int; heap_words : int }

let shape_gen =
  QCheck.Gen.(
    map
      (fun (seed, packets, threads, heap_words) -> { seed; packets; threads; heap_words })
      (quad (int_range 0 10_000) (int_range 4 14) (int_range 1 2)
         (int_range 8_000 20_000)))

let spec_of_shape s =
  { tiny with Spec.packets_per_thread = s.packets; mutator_threads = s.threads }

(* A failing shape reproduces from the tape digest alone, so print it. *)
let print_shape s =
  Printf.sprintf "seed=%d packets=%d threads=%d heap=%d tape=%s" s.seed s.packets
    s.threads s.heap_words
    (Tape.digest (Tape_gen.generate ~spec:(spec_of_shape s) ~seed:s.seed))

let shape_arb = QCheck.make ~print:print_shape shape_gen

(* Ground-truth pass over one pause snapshot.  [gone] accumulates the
   serials of objects that were live at an earlier pause and have since
   been freed; seeing one live again is a resurrection. *)
let check_pause ~heap ~errors ~prev_live ~gone (info : Lxr.pause_info) =
  let h = heap in
  let fail fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  if info.Lxr.pending_decrements <> 0 then
    fail "decrement queue not drained at pause end: %d entries"
      info.Lxr.pending_decrements;
  (* expected rc: in-edges from live objects, plus one per pin held *)
  let expected = Hashtbl.create 512 in
  let bump id =
    Hashtbl.replace expected id (1 + Option.value ~default:0 (Hashtbl.find_opt expected id))
  in
  List.iter (fun id -> if Heap.is_live h id then bump id) info.Lxr.pinned;
  Heap.iter_regions
    (fun r ->
      Heap.iter_resident_objects h r (fun src ->
          Heap.iter_fields h src (fun child ->
              if (not (Obj_model.is_null child)) && Heap.is_live h child then bump child)))
    h;
  let live_now = Hashtbl.create 512 in
  Heap.iter_regions
    (fun r ->
      Heap.iter_resident_objects h r (fun id ->
          let serial = Heap.obj_serial h id in
          Hashtbl.replace live_now serial ();
          if Hashtbl.mem gone serial then
            fail "object with serial %d resurrected (freed earlier, live again)" serial;
          let want = Option.value ~default:0 (Hashtbl.find_opt expected id) in
          let got = info.Lxr.rc_of id in
          if got <> want then
            fail "rc mismatch on id %d (serial %d): rc=%d, %d in-edges+pins" id serial
              got want))
    h;
  (* anything live before and not live now is gone for good *)
  Hashtbl.iter
    (fun serial () -> if not (Hashtbl.mem live_now serial) then Hashtbl.replace gone serial ())
    !prev_live;
  prev_live := live_now

(* Run a shape under LXR with the invariant hook injected through
   [make_collector]; returns the measurement and any violations. *)
let run_checked ?(tape = Run.Tape_off) s =
  let spec = spec_of_shape s in
  let errors = ref [] in
  let heap_ref = ref None in
  let prev_live = ref (Hashtbl.create 16) in
  let gone = Hashtbl.create 64 in
  let hook info =
    match !heap_ref with
    | None -> ()
    | Some heap -> check_pause ~heap ~errors ~prev_live ~gone info
  in
  let make ctx =
    heap_ref := Some ctx.Gc_types.heap;
    Lxr.make ctx
      { (Lxr.default_config ~cpus:Machine.default.Machine.cpus) with Lxr.debug = Some hook }
  in
  let m =
    Run.execute
      {
        (Run.default_config ~spec ~gc:Registry.Lxr ~heap_words:s.heap_words ~seed:s.seed)
        with
        Run.make_collector = Some make;
        tape;
      }
  in
  (m, List.rev !errors)

let prop_rc_invariants =
  QCheck.Test.make ~name:"rc = live in-edges + pins; queues drain; no resurrection"
    ~count:25 shape_arb
    (fun s ->
      match run_checked s with
      | _, [] -> true
      | _, e :: _ -> QCheck.Test.fail_reportf "%s" e)

let prop_rc_invariants_on_tape =
  QCheck.Test.make ~name:"invariants hold under tape replay, bit-identical to live"
    ~count:15 shape_arb
    (fun s ->
      let spec = spec_of_shape s in
      let image = Tape_gen.image ~spec ~seed:s.seed in
      let live, live_errors = run_checked s in
      let replayed, replay_errors = run_checked ~tape:(Run.Tape_replay image) s in
      (match (live_errors, replay_errors) with
      | [], [] -> ()
      | e :: _, _ | _, e :: _ -> QCheck.Test.fail_reportf "%s" e);
      live = replayed)

(* The hook observes; it must not change what LXR does. *)
let test_debug_hook_passive () =
  let s = { seed = 9; packets = 10; threads = 2; heap_words = 9_000 } in
  let hooked, errors = run_checked s in
  check Alcotest.bool "no violations" true (errors = []);
  check Alcotest.bool "shape actually pauses (invariants are not vacuous)" true
    (Measurement.pause_count hooked > 0);
  let plain =
    Run.execute
      (Run.default_config ~spec:(spec_of_shape s) ~gc:Registry.Lxr
         ~heap_words:s.heap_words ~seed:s.seed)
  in
  check Alcotest.bool "hook does not perturb the run" true (hooked = plain)

(* A deterministic high-pressure shape that drives every reclamation path:
   repeated RC pauses, the backup trace (objects_marked), and evacuation
   (words_copied) all fire, and the run still completes with the
   invariants holding at every pause. *)
let test_all_reclamation_paths_fire () =
  let s = { seed = 21; packets = 14; threads = 2; heap_words = 11_000 } in
  let m, errors = run_checked s in
  check Alcotest.bool "no violations" true (errors = []);
  check Alcotest.bool "shape collects repeatedly" true (Measurement.pause_count m > 3);
  let stats = m.Measurement.gc_stats in
  check Alcotest.bool "trace marked objects" true (stats.Gc_types.objects_marked > 0);
  check Alcotest.bool "evacuation copied words" true (stats.Gc_types.words_copied > 0);
  check Alcotest.bool "completed" true (Measurement.completed m)

(* Result-cache keys must distinguish the new collector kinds: a cached
   Serial measurement replayed for an LXR run would be silent corruption. *)
let test_cache_key_distinguishes_new_kinds () =
  let spec = spec_of_shape { seed = 1; packets = 3; threads = 1; heap_words = 20_000 } in
  let key kind =
    match
      Cache_key.of_config (Run.default_config ~spec ~gc:kind ~heap_words:20_000 ~seed:1)
    with
    | Some k -> k
    | None -> Alcotest.failf "no cache key for %s" (Registry.name kind)
  in
  let keys = List.map key (Registry.all @ Registry.experimental) in
  let distinct = List.sort_uniq compare keys in
  check Alcotest.int "every collector kind keys differently" (List.length keys)
    (List.length distinct)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_rc_invariants;
    QCheck_alcotest.to_alcotest prop_rc_invariants_on_tape;
    Alcotest.test_case "debug hook is passive" `Quick test_debug_hook_passive;
    Alcotest.test_case "all reclamation paths fire" `Quick test_all_reclamation_paths_fire;
    Alcotest.test_case "cache key distinguishes new kinds" `Quick
      test_cache_key_distinguishes_new_kinds;
  ]
