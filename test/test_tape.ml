(* Differential suite for workload tapes.

   The tape subsystem's contract is exact: replaying a recorded (or
   generated) decision stream must reproduce the live run bit for bit —
   same Measurement, same outcome — for every collector kind, including
   runs that abort or OOM, and regardless of how much of the stream the
   tape actually holds (replay falls over to the live PRNG continuation
   past the recorded end).  These properties are what let the campaign
   harness replay one tape across a whole (collector × heap) cell group
   without re-pinning the golden fingerprints. *)

module Registry = Gcr_gcs.Registry
module Suite = Gcr_workloads.Suite
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement
module Tape = Gcr_tape.Tape
module Tape_gen = Gcr_workloads.Tape_gen
module Decision_source = Gcr_workloads.Decision_source

let check = Alcotest.check

let every_kind = Registry.all @ Registry.experimental

(* Small runs; heap range reaches low enough to exercise OOM/degenerate
   outcomes so replay equivalence is tested on aborted runs too. *)
let tiny = Spec.scale (Suite.find_exn "jme") 0.05

type shape = {
  kind : Registry.kind;
  seed : int;
  packets : int;
  threads : int;
  heap_words : int;
}

let shape_gen =
  QCheck.Gen.(
    map
      (fun (kind, (seed, packets, threads, heap_words)) ->
        { kind; seed; packets; threads; heap_words })
      (pair (oneofl every_kind)
         (quad (int_range 0 10_000) (int_range 3 12) (int_range 1 2)
            (int_range 12_000 60_000))))

let print_shape s =
  Printf.sprintf "%s seed=%d packets=%d threads=%d heap=%d" (Registry.name s.kind)
    s.seed s.packets s.threads s.heap_words

let shape_arb = QCheck.make ~print:print_shape shape_gen

let spec_of_shape s =
  { tiny with Spec.packets_per_thread = s.packets; mutator_threads = s.threads }

let config_of_shape ?(tape = Run.Tape_off) s =
  { (Run.default_config ~spec:(spec_of_shape s) ~gc:s.kind ~heap_words:s.heap_words
       ~seed:s.seed)
    with
    Run.tape;
  }

(* ---- replay ≡ live, across the collector grid ---- *)

let prop_replay_bit_identical =
  QCheck.Test.make ~name:"replayed run == live run for every kind" ~count:60 shape_arb
    (fun s ->
      let spec = spec_of_shape s in
      let image = Tape_gen.image ~spec ~seed:s.seed in
      let live = Run.execute (config_of_shape s) in
      let replayed = Run.execute (config_of_shape ~tape:(Run.Tape_replay image) s) in
      live = replayed)

(* The RC collector keeps deferred per-object state across the whole run
   (increment/decrement buffers, pin rotation, backup-trace sessions);
   one deterministic case pins replay equivalence for it explicitly on a
   shape known to trigger pauses, evacuation, and the cycle trace. *)
let test_lxr_replay_deterministic () =
  let s = { kind = Registry.Lxr; seed = 17; packets = 12; threads = 2; heap_words = 3_000 } in
  let spec = spec_of_shape s in
  let image = Tape_gen.image ~spec ~seed:s.seed in
  let live = Run.execute (config_of_shape s) in
  check Alcotest.bool "lxr completes this shape" true (Measurement.completed live);
  let replayed = Run.execute (config_of_shape ~tape:(Run.Tape_replay image) s) in
  check Alcotest.bool "lxr replay is bit-identical" true (live = replayed)

(* ---- short tapes: replay must fall over to the exact live stream ---- *)

let truncate_tape tape keep =
  {
    tape with
    Tape.streams =
      Array.map
        (fun st ->
          let n = min keep (Array.length st.Tape.raw) in
          { st with Tape.raw = Array.sub st.Tape.raw 0 n })
        tape.Tape.streams;
  }

let prop_short_tape_still_identical =
  QCheck.Test.make
    ~name:"truncated tape (even empty) replays bit-identically via PRNG fallback"
    ~count:30
    (QCheck.pair shape_arb (QCheck.make QCheck.Gen.(int_range 0 50)))
    (fun (s, keep) ->
      let spec = spec_of_shape s in
      let tape = truncate_tape (Tape_gen.generate ~spec ~seed:s.seed) keep in
      let image = Decision_source.image_of_tape ~spec tape in
      let live = Run.execute (config_of_shape s) in
      let replayed = Run.execute (config_of_shape ~tape:(Run.Tape_replay image) s) in
      live = replayed)

(* ---- the record tee captures a prefix of the generated stream ---- *)

let test_record_tee_matches_generate () =
  let s = { kind = Registry.G1; seed = 11; packets = 8; threads = 2; heap_words = 50_000 } in
  let spec = spec_of_shape s in
  let captured = ref None in
  let sink t = captured := Some t in
  let live = Run.execute (config_of_shape ~tape:(Run.Tape_record sink) s) in
  let recorded =
    match !captured with
    | Some t -> t
    | None -> Alcotest.fail "Tape_record produced no tape"
  in
  (* recording draws through the same stream, so it cannot disturb the run *)
  check Alcotest.bool "recording does not change the measurement" true
    (live = Run.execute (config_of_shape s));
  let generated = Tape_gen.generate ~spec ~seed:s.seed in
  check Alcotest.string "same benchmark" generated.Tape.benchmark
    recorded.Tape.benchmark;
  check Alcotest.string "same spec digest" generated.Tape.spec_digest
    recorded.Tape.spec_digest;
  check Alcotest.int "same thread count"
    (Array.length generated.Tape.streams)
    (Array.length recorded.Tape.streams);
  check
    Alcotest.(list int)
    "same arrival schedule"
    (Array.to_list generated.Tape.arrivals)
    (Array.to_list recorded.Tape.arrivals);
  Array.iteri
    (fun i (r : Tape.stream) ->
      let g = generated.Tape.streams.(i) in
      check Alcotest.bool "same stream start state" true
        (r.Tape.state0 = g.Tape.state0 && r.Tape.gamma = g.Tape.gamma);
      let rn = Array.length r.Tape.raw in
      check Alcotest.bool "recorded length within generated bound" true
        (rn <= Array.length g.Tape.raw);
      check
        Alcotest.(list int)
        "recorded words are a prefix of the generated stream"
        (Array.to_list (Array.sub g.Tape.raw 0 rn))
        (Array.to_list r.Tape.raw))
    recorded.Tape.streams;
  (* and the recorded prefix replays bit-identically *)
  let image = Decision_source.image_of_tape ~spec recorded in
  check Alcotest.bool "recorded tape replays bit-identically" true
    (live = Run.execute (config_of_shape ~tape:(Run.Tape_replay image) s))

(* ---- serialization ---- *)

let prop_roundtrip =
  QCheck.Test.make ~name:"to_string/of_string round-trips exactly" ~count:30 shape_arb
    (fun s ->
      let spec = spec_of_shape s in
      let tape = Tape_gen.generate ~spec ~seed:s.seed in
      match Tape.of_string (Tape.to_string tape) with
      | Error msg -> QCheck.Test.fail_reportf "round-trip rejected: %s" msg
      | Ok back -> back = tape && Tape.digest back = Tape.digest tape)

let small_tape () =
  let spec = { tiny with Spec.packets_per_thread = 3; mutator_threads = 1 } in
  Tape_gen.generate ~spec ~seed:5

let test_truncation_rejected () =
  let bytes = Tape.to_string (small_tape ()) in
  let n = String.length bytes in
  (* every strict prefix must be rejected, never parsed as a partial tape *)
  let step = max 1 (n / 97) in
  let i = ref 0 in
  while !i < n do
    (match Tape.of_string (String.sub bytes 0 !i) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation to %d of %d bytes accepted" !i n);
    i := !i + step
  done

let test_corruption_rejected () =
  let bytes = Tape.to_string (small_tape ()) in
  let n = String.length bytes in
  let step = max 1 (n / 211) in
  let i = ref 0 in
  while !i < n do
    let corrupted = Bytes.of_string bytes in
    Bytes.set corrupted !i (Char.chr (Char.code (Bytes.get corrupted !i) lxor 0x40));
    (match Tape.of_string (Bytes.to_string corrupted) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "flipping byte %d of %d went undetected" !i n);
    i := !i + step
  done

let test_file_roundtrip () =
  let tape = small_tape () in
  let path = Filename.temp_file "gcr_tape" ".tape" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Tape.write_file tape ~path;
      match Tape.read_file path with
      | Error msg -> Alcotest.failf "read_file rejected its own write: %s" msg
      | Ok back -> check Alcotest.bool "file round-trip" true (back = tape))

(* ---- spec binding ---- *)

let test_spec_digest_mismatch_rejected () =
  let spec = { tiny with Spec.packets_per_thread = 3; mutator_threads = 1 } in
  let tape = Tape_gen.generate ~spec ~seed:5 in
  let other = { spec with Spec.packets_per_thread = 4 } in
  check Alcotest.bool "digests differ" true (Spec.digest spec <> Spec.digest other);
  match Decision_source.image_of_tape ~spec:other tape with
  | (_ : Decision_source.image) ->
      Alcotest.fail "image_of_tape accepted a tape for a different spec"
  | exception Invalid_argument _ -> ()

(* ---- latency benchmarks: the arrival schedule rides the tape ---- *)

let test_latency_arrivals_replay () =
  let spec = Spec.scale (Suite.find_exn "lusearch") 0.02 in
  let spec = { spec with Spec.mutator_threads = 2; packets_per_thread = 6 } in
  let tape = Tape_gen.generate ~spec ~seed:3 in
  check Alcotest.bool "latency benchmark records arrivals" true
    (Array.length tape.Tape.arrivals > 0);
  let config heap_words tape_mode =
    {
      (Run.default_config ~spec ~gc:Registry.G1 ~heap_words ~seed:3) with
      Run.tape = tape_mode;
    }
  in
  let image = Decision_source.image_of_tape ~spec tape in
  List.iter
    (fun heap_words ->
      check Alcotest.bool
        (Printf.sprintf "latency replay bit-identical at %d words" heap_words)
        true
        (Run.execute (config heap_words Run.Tape_off)
        = Run.execute (config heap_words (Run.Tape_replay image))))
    [ 30_000; 60_000 ]

let suite =
  [
    QCheck_alcotest.to_alcotest prop_replay_bit_identical;
    Alcotest.test_case "lxr replay deterministic" `Quick test_lxr_replay_deterministic;
    QCheck_alcotest.to_alcotest prop_short_tape_still_identical;
    Alcotest.test_case "record tee == generate prefix" `Quick
      test_record_tee_matches_generate;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    Alcotest.test_case "truncation rejected" `Quick test_truncation_rejected;
    Alcotest.test_case "corruption rejected" `Quick test_corruption_rejected;
    Alcotest.test_case "file round-trip" `Quick test_file_roundtrip;
    Alcotest.test_case "spec digest mismatch rejected" `Quick
      test_spec_digest_mismatch_rejected;
    Alcotest.test_case "latency arrivals replay" `Quick test_latency_arrivals_replay;
  ]
