(* Model test for the struct-of-arrays object store's field arena.

   A random interleaving of alloc / free / field_set is mirrored against a
   naive Hashtbl-of-arrays model.  After every step the real store must
   agree with the model on every live object's fields, and the field
   extents of live objects must be pairwise disjoint — extent recycling
   must never alias two live objects, whatever order deaths and births
   come in. *)

module Obj_model = Gcr_heap.Obj_model

let check = Alcotest.check

(* ---- random op sequences ---- *)

type op =
  | Alloc of int * int (* size, nfields (nfields <= size - header) *)
  | Free of int (* index into the live set, mod its cardinality *)
  | Set of int * int * int (* live index, slot, target choice *)

let op_gen =
  QCheck.Gen.(
    frequency
      [
        ( 4,
          map2
            (fun size nf -> Alloc (size, nf mod (Obj_model.fields_capacity ~size + 1)))
            (int_range Obj_model.header_words 12)
            (int_range 0 16) );
        (2, map (fun i -> Free i) (int_range 0 1000));
        (4, map3 (fun i s t -> Set (i, s, t)) (int_range 0 1000) (int_range 0 16) (int_range 0 1000));
      ])

let print_op = function
  | Alloc (size, nf) -> Printf.sprintf "alloc(size=%d,nf=%d)" size nf
  | Free i -> Printf.sprintf "free(%d)" i
  | Set (i, s, t) -> Printf.sprintf "set(%d,%d,%d)" i s t

let ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map print_op ops))
    QCheck.Gen.(list_size (int_range 1 60) op_gen)

(* ---- the naive model: id -> field array ---- *)

let agree store model =
  Hashtbl.iter
    (fun id fields ->
      if not (Obj_model.is_live store id) then
        QCheck.Test.fail_reportf "model object %d not live in store" id;
      if Obj_model.nfields store id <> Array.length fields then
        QCheck.Test.fail_reportf "object %d: nfields %d, model %d" id
          (Obj_model.nfields store id) (Array.length fields);
      Array.iteri
        (fun slot v ->
          let got = Obj_model.field_get store id slot in
          if got <> v then
            QCheck.Test.fail_reportf "object %d slot %d: store %d, model %d" id slot got v)
        fields)
    model

let extents_disjoint store model =
  let live = Hashtbl.fold (fun id _ acc -> id :: acc) model [] in
  let extents =
    List.filter_map
      (fun id ->
        let off, nf = Obj_model.field_extent store id in
        if nf = 0 then None else Some (id, off, nf))
      live
  in
  List.iter
    (fun (a, aoff, anf) ->
      List.iter
        (fun (b, boff, bnf) ->
          if a < b && aoff < boff + bnf && boff < aoff + anf then
            QCheck.Test.fail_reportf "live objects %d [%d,%d) and %d [%d,%d) share arena words" a
              aoff (aoff + anf) b boff (boff + bnf))
        extents)
    extents

let nth_live model i =
  let n = Hashtbl.length model in
  if n = 0 then None
  else begin
    let ids = Hashtbl.fold (fun id _ acc -> id :: acc) model [] in
    let sorted = List.sort compare ids in
    Some (List.nth sorted (i mod n))
  end

let run_ops ops =
  let store = Obj_model.create_store () in
  let model : (Obj_model.id, int array) Hashtbl.t = Hashtbl.create 64 in
  let all_ids = ref [ Obj_model.null ] in
  List.iter
    (fun op ->
      (match op with
      | Alloc (size, nfields) ->
          let id = Obj_model.alloc store ~size ~nfields ~region:0 in
          if Hashtbl.mem model id then QCheck.Test.fail_reportf "id %d reused" id;
          if Obj_model.is_null id then QCheck.Test.fail_report "alloc returned null";
          Hashtbl.replace model id (Array.make nfields Obj_model.null);
          all_ids := id :: !all_ids
      | Free i -> (
          match nth_live model i with
          | None -> ()
          | Some id ->
              Obj_model.free store id;
              Hashtbl.remove model id;
              if Obj_model.is_live store id then
                QCheck.Test.fail_reportf "freed id %d still live" id)
      | Set (i, slot, t) -> (
          match nth_live model i with
          | None -> ()
          | Some id ->
              let fields = Hashtbl.find model id in
              if Array.length fields > 0 then begin
                let slot = slot mod Array.length fields in
                (* target: any id ever seen, live or dead or null — the
                   arena stores ids opaquely *)
                let candidates = !all_ids in
                let target = List.nth candidates (t mod List.length candidates) in
                Obj_model.field_set store id slot target;
                fields.(slot) <- target
              end));
      agree store model;
      extents_disjoint store model)
    ops;
  true

let prop_matches_model =
  QCheck.Test.make ~count:300 ~name:"field arena matches naive model" ops_arb run_ops

(* ---- directed unit tests ---- *)

let test_zero_field_costs_nothing () =
  (* Bugfix regression: a header-only object (size 2, no reference
     fields) must consume zero arena words. *)
  let store = Obj_model.create_store () in
  let before = Obj_model.arena_used store in
  let ids =
    List.init 100 (fun _ ->
        Obj_model.alloc store ~size:Obj_model.header_words ~nfields:0 ~region:0)
  in
  check Alcotest.int "arena unchanged by 100 header-only objects" before
    (Obj_model.arena_used store);
  List.iter
    (fun id ->
      check Alcotest.int "nfields 0" 0 (Obj_model.nfields store id);
      check Alcotest.bool "live" true (Obj_model.is_live store id);
      check Alcotest.int "size" Obj_model.header_words (Obj_model.size store id))
    ids;
  (* freeing them is also a no-op on the arena *)
  List.iter (fun id -> Obj_model.free store id) ids;
  check Alcotest.int "arena unchanged by frees" before (Obj_model.arena_used store)

let test_extent_reuse () =
  (* A freed extent of the exact size is recycled, and recycled fields
     come back nulled. *)
  let store = Obj_model.create_store () in
  let a = Obj_model.alloc store ~size:8 ~nfields:3 ~region:0 in
  Obj_model.field_set store a 0 a;
  Obj_model.field_set store a 2 a;
  let used = Obj_model.arena_used store in
  Obj_model.free store a;
  let b = Obj_model.alloc store ~size:8 ~nfields:3 ~region:1 in
  check Alcotest.int "extent recycled, frontier unmoved" used (Obj_model.arena_used store);
  for slot = 0 to 2 do
    check Alcotest.int "recycled fields start null" Obj_model.null
      (Obj_model.field_get store b slot)
  done;
  (* a different size does NOT fit the recycled extent *)
  Obj_model.free store b;
  let c = Obj_model.alloc store ~size:8 ~nfields:4 ~region:0 in
  check Alcotest.bool "bigger extent allocated fresh" true
    (Obj_model.arena_used store > used);
  ignore c

(* Dead ids are recycled LIFO so the store is sized by the live peak, not
   the allocation total; a recycled id must come back fully reset. *)
let test_id_recycling () =
  let store = Obj_model.create_store () in
  let a = Obj_model.alloc store ~size:8 ~nfields:2 ~region:0 in
  Obj_model.field_set store a 0 a;
  Obj_model.set_age store a 7;
  Obj_model.free store a;
  check Alcotest.bool "dead until recycled" false (Obj_model.is_live store a);
  let b = Obj_model.alloc store ~size:6 ~nfields:1 ~region:3 in
  check Alcotest.int "most recent dead id recycled" a b;
  check Alcotest.bool "recycled id is live" true (Obj_model.is_live store b);
  check Alcotest.int "size rewritten" 6 (Obj_model.size store b);
  check Alcotest.int "region rewritten" 3 (Obj_model.region store b);
  check Alcotest.int "age reset" 0 (Obj_model.age store b);
  check Alcotest.int "nfields rewritten" 1 (Obj_model.nfields store b);
  check Alcotest.int "fields start null" Obj_model.null (Obj_model.field_get store b 0);
  (* with no dead ids banked, allocation takes a fresh id *)
  let c = Obj_model.alloc store ~size:4 ~nfields:0 ~region:0 in
  check Alcotest.bool "fresh id when the free stack is empty" true (c <> b)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_matches_model;
    Alcotest.test_case "header-only objects cost zero arena words" `Quick
      test_zero_field_costs_nothing;
    Alcotest.test_case "extent reuse exact-size, nulled" `Quick test_extent_reuse;
    Alcotest.test_case "id recycling" `Quick test_id_recycling;
  ]
