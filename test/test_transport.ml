(* Fuzzing the fabric's frame codec at the trust boundary.

   The socket fabric unmarshals payloads sent by worker processes, and
   Marshal on corrupted input is not exception-safe — so the framing
   layer must be the gate: truncation, bit flips, oversized length
   prefixes, and mid-frame disconnects all have to surface as
   {!Transport.Corrupt} (or a clean end-of-stream at a frame boundary)
   before any payload byte reaches Marshal.  These properties are what
   lets the coordinator treat any codec exception as "worker died,
   requeue its cells" instead of undefined behaviour. *)

module Transport = Gcr_sched.Transport
module Codec = Transport.Codec
module Wire = Gcr_tape.Wire

let check = Alcotest.check

(* --- generators --- *)

let frame_gen =
  QCheck.Gen.(
    pair (map Char.chr (int_range 32 126)) (string_size ~gen:char (int_range 0 300)))

let frames_gen = QCheck.Gen.(list_size (int_range 1 12) frame_gen)

let print_frames fs =
  String.concat "; "
    (List.map (fun (t, p) -> Printf.sprintf "%c:%d bytes" t (String.length p)) fs)

let frames_arb = QCheck.make ~print:print_frames frames_gen

let encode_all frames =
  let b = Buffer.create 1024 in
  List.iter (fun (tag, payload) -> Codec.encode b ~tag payload) frames;
  Buffer.contents b

(* Per-frame encoded sizes, for locating which frame a corruption lands
   in: varint(len) + len + 8-byte checksum. *)
let encoded_sizes frames =
  List.map
    (fun (tag, payload) ->
      let b = Buffer.create 64 in
      Codec.encode b ~tag payload;
      String.length (Buffer.contents b))
    frames

(* Drain every complete frame; Corrupt is the caller's business. *)
let drain dec =
  let rec go acc =
    match Codec.next dec with Some f -> go (f :: acc) | None -> List.rev acc
  in
  go []

let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
  | _ :: _, [] -> false

(* --- properties --- *)

(* Chunking is transparent: however the stream is sliced, the decoder
   reassembles exactly the frames that were encoded. *)
let prop_roundtrip_chunked =
  QCheck.Test.make ~name:"roundtrip under arbitrary chunking" ~count:200
    QCheck.(pair frames_arb (make QCheck.Gen.(int_range 1 17)))
    (fun (frames, chunk) ->
      let wire = encode_all frames in
      let dec = Codec.decoder () in
      let out = ref [] in
      let n = String.length wire in
      let i = ref 0 in
      while !i < n do
        let len = min chunk (n - !i) in
        Codec.feed_string dec (String.sub wire !i len);
        out := !out @ drain dec;
        i := !i + len
      done;
      !out = frames && Codec.buffered dec = 0)

(* A truncated stream yields a strict prefix of the frames, and the cut
   is detectable: either it fell exactly on a frame boundary, or the
   decoder still holds partial bytes ([buffered > 0] — the fabric's
   "peer disconnected mid-frame"). *)
let prop_truncation_is_prefix =
  QCheck.Test.make ~name:"truncation yields a detectable prefix" ~count:300
    QCheck.(pair frames_arb (make QCheck.Gen.(int_range 0 10_000)))
    (fun (frames, cut) ->
      let wire = encode_all frames in
      let cut = cut mod max 1 (String.length wire) in
      let dec = Codec.decoder () in
      Codec.feed_string dec (String.sub wire 0 cut);
      let out = drain dec in
      let boundaries =
        List.fold_left (fun acc sz -> (List.hd acc + sz) :: acc) [ 0 ]
          (encoded_sizes frames)
      in
      is_prefix out frames
      && (Codec.buffered dec > 0 || List.mem cut boundaries))

(* One flipped bit can never smuggle a wrong frame through: every frame
   the decoder still yields (before it raises Corrupt or runs out of
   input) that lies entirely before the flipped byte is byte-identical
   to the original at that position, and nothing beyond the original
   frame count ever appears. *)
let prop_bit_flip_never_wrong_frame =
  QCheck.Test.make ~name:"bit flip never yields a wrong frame" ~count:500
    QCheck.(pair frames_arb (make QCheck.Gen.(pair (int_range 0 100_000) (int_range 0 7))))
    (fun (frames, (pos, bit)) ->
      let wire = encode_all frames in
      let pos = pos mod String.length wire in
      let b = Bytes.of_string wire in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      let dec = Codec.decoder () in
      Codec.feed_string dec (Bytes.to_string b);
      let out = try drain dec with Transport.Corrupt _ -> [] in
      (* frames wholly before the flip are untouched and must decode
         verbatim; the flipped frame either fails its checksum (Corrupt,
         caught above) or desynchronises the stream — but a desynced
         tail still cannot fabricate trusted frames before the flip *)
      let sizes = encoded_sizes frames in
      let intact =
        let rec count off = function
          | sz :: rest when off + sz <= pos -> 1 + count (off + sz) rest
          | _ -> 0
        in
        count 0 sizes
      in
      let rec take n = function
        | x :: xs when n > 0 -> x :: take (n - 1) xs
        | _ -> []
      in
      List.length out <= List.length frames
      && take intact out = take (min intact (List.length out)) frames)

(* --- crafted hostile prefixes --- *)

(* A length prefix above the frame cap is Corrupt the moment it is
   decidable — before the decoder waits for (or allocates) the body. *)
let test_oversized_length_prefix () =
  let b = Buffer.create 16 in
  Wire.put_varint b (Transport.max_frame_bytes + 1);
  let dec = Codec.decoder () in
  Codec.feed_string dec (Buffer.contents b);
  check Alcotest.bool "oversized prefix raises Corrupt" true
    (match Codec.next dec with
    | exception Transport.Corrupt _ -> true
    | _ -> false)

(* An unterminated varint that overflows 62 bits — the fabric's garble
   fault injection sends exactly these bytes — must be Corrupt even
   though the "length" never completes. *)
let test_overflowing_varint () =
  let dec = Codec.decoder () in
  Codec.feed_string dec (String.make 10 '\xff');
  check Alcotest.bool "overflowing varint raises Corrupt" true
    (match Codec.next dec with
    | exception Transport.Corrupt _ -> true
    | _ -> false)

(* A zero-length frame has no tag byte to dispatch on: Corrupt. *)
let test_empty_frame_rejected () =
  let dec = Codec.decoder () in
  Codec.feed_string dec "\x00";
  check Alcotest.bool "empty frame raises Corrupt" true
    (match Codec.next dec with
    | exception Transport.Corrupt _ -> true
    | _ -> false)

(* --- the same boundary through a real endpoint pair --- *)

let test_mid_frame_eof_over_socketpair () =
  let a, z = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let sender = Transport.of_socket a and receiver = Transport.of_socket z in
  Transport.send sender ~tag:'X' "intact";
  (* then half a frame: a plausible header and some body, no checksum *)
  let b = Buffer.create 32 in
  Codec.encode b ~tag:'Y' "this frame will be cut short";
  Transport.send_raw sender (String.sub (Buffer.contents b) 0 10);
  Transport.close sender;
  check Alcotest.bool "the intact frame arrives" true
    (Transport.recv receiver = Some ('X', "intact"));
  check Alcotest.bool "mid-frame EOF raises Corrupt" true
    (match Transport.recv receiver with
    | exception Transport.Corrupt _ -> true
    | _ -> false);
  Transport.close receiver

let test_clean_eof_at_boundary () =
  let a, z = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let sender = Transport.of_socket a and receiver = Transport.of_socket z in
  Transport.send sender ~tag:'Q' "";
  Transport.close sender;
  check Alcotest.bool "frame then clean EOF" true
    (Transport.recv receiver = Some ('Q', "")
    && Transport.recv receiver = None
    && not (Transport.mid_frame receiver));
  Transport.close receiver

let suite =
  [
    QCheck_alcotest.to_alcotest prop_roundtrip_chunked;
    QCheck_alcotest.to_alcotest prop_truncation_is_prefix;
    QCheck_alcotest.to_alcotest prop_bit_flip_never_wrong_frame;
    Alcotest.test_case "oversized length prefix" `Quick test_oversized_length_prefix;
    Alcotest.test_case "overflowing varint" `Quick test_overflowing_varint;
    Alcotest.test_case "empty frame rejected" `Quick test_empty_frame_rejected;
    Alcotest.test_case "mid-frame EOF over a socketpair" `Quick
      test_mid_frame_eof_over_socketpair;
    Alcotest.test_case "clean EOF at a frame boundary" `Quick test_clean_eof_at_boundary;
  ]
