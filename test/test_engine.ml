(* Engine: scheduling, accounting, safepoints, stalls, timers. *)

module Engine = Gcr_engine.Engine

let check = Alcotest.check

let run_ok engine =
  match Engine.run engine () with
  | Engine.All_mutators_finished -> ()
  | Engine.Aborted reason -> Alcotest.failf "aborted: %s" reason

(* A mutator that runs [n] steps of [cycles] each, then exits. *)
let simple_mutator engine ~name ~steps ~cycles =
  let th = Engine.spawn engine ~kind:Engine.Mutator ~name in
  let rec loop remaining () =
    if remaining = 0 then Engine.exit_thread engine th
    else Engine.submit engine th ~cycles (loop (remaining - 1))
  in
  loop steps ();
  th

let test_single_thread_time () =
  let engine = Engine.create ~cpus:4 () in
  let th = simple_mutator engine ~name:"m" ~steps:10 ~cycles:100 in
  run_ok engine;
  check Alcotest.int "wall equals serial work" 1000 (Engine.now engine);
  check Alcotest.int "cycles recorded" 1000 (Engine.cycles_of_thread th)

let test_parallel_threads () =
  let engine = Engine.create ~cpus:4 () in
  let _ = List.init 4 (fun i ->
      simple_mutator engine ~name:(string_of_int i) ~steps:5 ~cycles:100)
  in
  run_ok engine;
  (* four threads, four cpus: perfectly parallel *)
  check Alcotest.int "wall is one thread's work" 500 (Engine.now engine);
  check Alcotest.int "total cycles" 2000 (Engine.cycles_of_kind engine Engine.Mutator)

let test_oversubscription () =
  let engine = Engine.create ~cpus:2 () in
  let _ = List.init 4 (fun i ->
      simple_mutator engine ~name:(string_of_int i) ~steps:5 ~cycles:100)
  in
  run_ok engine;
  (* 2000 cycles of work on 2 cpus *)
  check Alcotest.int "wall doubles" 1000 (Engine.now engine)

let test_cycle_conservation () =
  (* invariant: total cycles <= cpus * wall *)
  let engine = Engine.create ~cpus:3 () in
  let _ = List.init 7 (fun i ->
      simple_mutator engine ~name:(string_of_int i) ~steps:3 ~cycles:(50 + (i * 13)))
  in
  run_ok engine;
  let total = Engine.cycles_of_kind engine Engine.Mutator in
  check Alcotest.bool "conservation" true (total <= 3 * Engine.now engine)

let test_zero_cycle_step () =
  let engine = Engine.create ~cpus:1 () in
  let th = Engine.spawn engine ~kind:Engine.Mutator ~name:"m" in
  Engine.submit engine th ~cycles:0 (fun () -> Engine.exit_thread engine th);
  run_ok engine;
  check Alcotest.int "no time" 0 (Engine.now engine)

let test_timer_fires () =
  let engine = Engine.create ~cpus:1 () in
  let th = Engine.spawn engine ~kind:Engine.Mutator ~name:"m" in
  let fired_at = ref (-1) in
  Engine.at engine ~time:500 (fun () -> fired_at := Engine.now engine);
  Engine.submit engine th ~cycles:1000 (fun () -> Engine.exit_thread engine th);
  run_ok engine;
  check Alcotest.int "timer time" 500 !fired_at

let test_stall_no_cycles () =
  let engine = Engine.create ~cpus:1 () in
  let th = Engine.spawn engine ~kind:Engine.Mutator ~name:"m" in
  Engine.submit engine th ~cycles:100 (fun () ->
      Engine.stall engine th ~cycles:400 (fun () ->
          Engine.submit engine th ~cycles:100 (fun () -> Engine.exit_thread engine th)));
  run_ok engine;
  check Alcotest.int "wall includes stall" 600 (Engine.now engine);
  check Alcotest.int "cycles exclude stall" 200 (Engine.cycles_of_thread th)

let test_stall_frees_cpu () =
  (* while one thread stalls, another uses the cpu *)
  let engine = Engine.create ~cpus:1 () in
  let a = Engine.spawn engine ~kind:Engine.Mutator ~name:"a" in
  let b = simple_mutator engine ~name:"b" ~steps:4 ~cycles:100 in
  ignore b;
  Engine.stall engine a ~cycles:400 (fun () ->
      Engine.submit engine a ~cycles:100 (fun () -> Engine.exit_thread engine a));
  run_ok engine;
  (* b runs 400 cycles during a's stall; then a runs 100 *)
  check Alcotest.int "wall" 500 (Engine.now engine)

let test_park_resume () =
  let engine = Engine.create ~cpus:1 () in
  let a = Engine.spawn engine ~kind:Engine.Mutator ~name:"a" in
  let b = Engine.spawn engine ~kind:Engine.Mutator ~name:"b" in
  Engine.submit engine a ~cycles:10 (fun () ->
      Engine.park engine a;
      (* b resumes a later *)
      Engine.submit engine b ~cycles:100 (fun () ->
          Engine.resume engine a (fun () -> Engine.exit_thread engine a);
          Engine.exit_thread engine b));
  run_ok engine;
  check Alcotest.int "wall" 110 (Engine.now engine)

let test_safepoint_protocol () =
  let engine = Engine.create ~cpus:4 () in
  let mutators =
    List.init 3 (fun i -> simple_mutator engine ~name:(string_of_int i) ~steps:20 ~cycles:100)
  in
  ignore mutators;
  let gc = Engine.spawn engine ~kind:Engine.Gc_worker ~name:"gc" in
  let pause_seen = ref false in
  Engine.at engine ~time:250 (fun () ->
      Engine.request_stop engine ~reason:"test" (fun () ->
          pause_seen := true;
          check Alcotest.bool "stw active in pause" true (Engine.stw_active engine);
          Engine.submit engine gc ~cycles:500 (fun () ->
              Engine.release_stop engine;
              Engine.park engine gc)));
  run_ok engine;
  check Alcotest.bool "pause happened" true !pause_seen;
  (match Engine.pauses engine with
  | [ p ] ->
      check Alcotest.string "reason" "test" p.Engine.reason;
      check Alcotest.int "duration" 500 p.Engine.duration;
      (* mutators were mid-step at the request; they park at step end *)
      check Alcotest.bool "pause after request" true (p.Engine.start >= 250)
  | pauses -> Alcotest.failf "expected one pause, got %d" (List.length pauses));
  check Alcotest.int "gc cycles attributed to stw" 500
    (Engine.cycles_stw_of_kind engine Engine.Gc_worker);
  (* wall accounting matches the pause log *)
  check Alcotest.int "wall_stw" 500 (Engine.wall_stw engine)

let test_mutators_stopped_during_pause () =
  let engine = Engine.create ~cpus:4 () in
  let th = Engine.spawn engine ~kind:Engine.Mutator ~name:"m" in
  let during_pause = ref (-1) in
  let after_pause = ref (-1) in
  let rec loop n () =
    if n = 0 then Engine.exit_thread engine th
    else Engine.submit engine th ~cycles:100 (loop (n - 1))
  in
  loop 10 ();
  let gc = Engine.spawn engine ~kind:Engine.Gc_worker ~name:"gc" in
  Engine.at engine ~time:150 (fun () ->
      Engine.request_stop engine ~reason:"p" (fun () ->
          during_pause := Engine.cycles_of_thread th;
          Engine.submit engine gc ~cycles:1000 (fun () ->
              after_pause := Engine.cycles_of_thread th;
              Engine.release_stop engine;
              Engine.park engine gc)));
  run_ok engine;
  check Alcotest.int "no mutator cycles during pause" !during_pause !after_pause;
  check Alcotest.int "mutator finished afterwards" 1000 (Engine.cycles_of_thread th)

let test_abort () =
  let engine = Engine.create ~cpus:1 () in
  let th = Engine.spawn engine ~kind:Engine.Mutator ~name:"m" in
  Engine.submit engine th ~cycles:100 (fun () -> Engine.abort engine ~reason:"boom");
  (match Engine.run engine () with
  | Engine.Aborted reason -> check Alcotest.string "reason" "boom" reason
  | Engine.All_mutators_finished -> Alcotest.fail "expected abort")

let test_deadlock_detection () =
  let engine = Engine.create ~cpus:1 () in
  let th = Engine.spawn engine ~kind:Engine.Mutator ~name:"m" in
  Engine.submit engine th ~cycles:10 (fun () -> Engine.park engine th);
  (match Engine.run engine () with
  | Engine.Aborted reason ->
      check Alcotest.bool "deadlock reported" true
        (String.length reason >= 8 && String.sub reason 0 8 = "deadlock")
  | Engine.All_mutators_finished -> Alcotest.fail "expected deadlock")

let test_event_budget () =
  let engine = Engine.create ~cpus:1 () in
  let th = Engine.spawn engine ~kind:Engine.Mutator ~name:"m" in
  let rec forever () = Engine.submit engine th ~cycles:1 forever in
  forever ();
  (match Engine.run engine ~max_events:100 () with
  | Engine.Aborted reason ->
      check Alcotest.string "budget" "event budget exhausted" reason
  | Engine.All_mutators_finished -> Alcotest.fail "expected budget abort")

let test_fifo_fairness () =
  (* With 1 cpu and 2 equal threads, work interleaves rather than one
     thread finishing first. *)
  let engine = Engine.create ~cpus:1 () in
  let order = ref [] in
  let mk name =
    let th = Engine.spawn engine ~kind:Engine.Mutator ~name in
    let rec loop n () =
      order := name :: !order;
      if n = 0 then Engine.exit_thread engine th
      else Engine.submit engine th ~cycles:10 (loop (n - 1))
    in
    loop 3 ()
  in
  mk "a";
  mk "b";
  run_ok engine;
  (* strict alternation: a b a b ... *)
  let observed = List.rev !order in
  check
    Alcotest.(list string)
    "round robin"
    [ "a"; "b"; "a"; "b"; "a"; "b"; "a"; "b" ]
    observed

let test_double_submit_rejected () =
  let engine = Engine.create ~cpus:1 () in
  let th = Engine.spawn engine ~kind:Engine.Mutator ~name:"m" in
  Engine.submit engine th ~cycles:10 (fun () -> Engine.exit_thread engine th);
  Alcotest.check_raises "double submit"
    (Invalid_argument "Engine.submit: thread m is not idle") (fun () ->
      Engine.submit engine th ~cycles:10 ignore)

let suite =
  [
    Alcotest.test_case "single thread time" `Quick test_single_thread_time;
    Alcotest.test_case "parallel threads" `Quick test_parallel_threads;
    Alcotest.test_case "oversubscription" `Quick test_oversubscription;
    Alcotest.test_case "cycle conservation" `Quick test_cycle_conservation;
    Alcotest.test_case "zero-cycle step" `Quick test_zero_cycle_step;
    Alcotest.test_case "timer" `Quick test_timer_fires;
    Alcotest.test_case "stall consumes no cycles" `Quick test_stall_no_cycles;
    Alcotest.test_case "stall frees cpu" `Quick test_stall_frees_cpu;
    Alcotest.test_case "park/resume" `Quick test_park_resume;
    Alcotest.test_case "safepoint protocol" `Quick test_safepoint_protocol;
    Alcotest.test_case "mutators stopped in pause" `Quick test_mutators_stopped_during_pause;
    Alcotest.test_case "abort" `Quick test_abort;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "event budget" `Quick test_event_budget;
    Alcotest.test_case "FIFO fairness" `Quick test_fifo_fairness;
    Alcotest.test_case "double submit rejected" `Quick test_double_submit_rejected;
  ]
