(* The LBO methodology: the paper's worked example (Tables II-V) as a unit
   test, plus algebraic properties. *)

module Lbo = Gcr_core.Lbo

let check = Alcotest.check

let close = Alcotest.float 1e-3

(* Table III of the paper, in billions of cycles. *)
let parallel = { Lbo.collector = "Parallel"; total = 108.33; apparent_gc = 4.46 }

let serial = { Lbo.collector = "Serial"; total = 108.12; apparent_gc = 2.75 }

let shenandoah = { Lbo.collector = "Shenandoah"; total = 218.72; apparent_gc = 0.03 }

let observations = [ parallel; serial; shenandoah ]

let test_other_cost () =
  check close "parallel other" 103.87 (Lbo.other_cost parallel);
  check close "serial other" 105.37 (Lbo.other_cost serial);
  check close "shenandoah other" 218.69 (Lbo.other_cost shenandoah)

let test_ideal_estimate () =
  (* The tightest upper bound comes from Parallel (Table III). *)
  check close "ideal" 103.87 (Lbo.ideal_estimate observations)

let test_lbo_values_match_table_iv () =
  let results = Lbo.compute observations in
  let find name = List.assoc name (List.map (fun (o, v) -> (o.Lbo.collector, v)) results) in
  check close "parallel" 1.043 (find "Parallel");
  check close "serial" 1.041 (find "Serial");
  check close "shenandoah" 2.106 (find "Shenandoah")

let test_refinement_table_v () =
  (* A hypothetical collector with other = 100.00 tightens all bounds. *)
  let hypothetical = { Lbo.collector = "Hypothetical"; total = 109.50; apparent_gc = 9.50 } in
  let refined = observations @ [ hypothetical ] in
  check close "new ideal" 100.0 (Lbo.ideal_estimate refined);
  let results = Lbo.compute refined in
  let find name = List.assoc name (List.map (fun (o, v) -> (o.Lbo.collector, v)) results) in
  check close "parallel tightened" 1.083 (find "Parallel");
  check close "serial tightened" 1.081 (find "Serial");
  check close "shenandoah tightened" 2.187 (find "Shenandoah");
  check close "hypothetical" 1.095 (find "Hypothetical")

let test_lbo_rejects_bad_ideal () =
  Alcotest.check_raises "zero ideal" (Invalid_argument "Lbo.lbo: non-positive ideal estimate")
    (fun () -> ignore (Lbo.lbo ~ideal:0.0 ~total:1.0))

let test_ideal_estimate_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Lbo.ideal_estimate: no observations")
    (fun () -> ignore (Lbo.ideal_estimate []))

let obs_gen =
  QCheck.Gen.(
    map2
      (fun total gc_frac ->
        let total = 1.0 +. total in
        { Lbo.collector = "x"; total; apparent_gc = total *. gc_frac })
      (float_bound_exclusive 1000.0)
      (float_bound_exclusive 0.9))

let obs_arb = QCheck.make obs_gen

let prop_lbo_at_least_one =
  QCheck.Test.make ~name:"every LBO is >= 1 for the argmin collector's set" ~count:300
    QCheck.(list_of_size Gen.(1 -- 10) obs_arb)
    (fun observations ->
      let results = Lbo.compute observations in
      (* every collector's total >= its own other >= min other = ideal *)
      List.for_all (fun (_, v) -> v >= 1.0 -. 1e-9) results)

let prop_refinement_monotone =
  QCheck.Test.make ~name:"adding a collector never loosens the bound" ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 8) obs_arb) obs_arb)
    (fun (observations, extra) ->
      let before = Lbo.compute observations in
      let after = Lbo.compute (observations @ [ extra ]) in
      List.for_all2 (fun (_, v0) (_, v1) -> v1 >= v0 -. 1e-9)
        before
        (List.filteri (fun i _ -> i < List.length before) after))

let prop_argmin_lbo_is_total_over_own_other =
  QCheck.Test.make ~name:"the argmin collector's LBO = total / its own other" ~count:300
    QCheck.(list_of_size Gen.(1 -- 10) obs_arb)
    (fun observations ->
      let ideal = Lbo.ideal_estimate observations in
      let argmin =
        List.find (fun o -> Float.abs (Lbo.other_cost o -. ideal) < 1e-9) observations
      in
      let results = Lbo.compute observations in
      let v = List.assq argmin results in
      Float.abs (v -. (argmin.Lbo.total /. Lbo.other_cost argmin)) < 1e-9)

let suite =
  [
    Alcotest.test_case "other cost (Table III)" `Quick test_other_cost;
    Alcotest.test_case "ideal estimate (Table III)" `Quick test_ideal_estimate;
    Alcotest.test_case "LBO values (Table IV)" `Quick test_lbo_values_match_table_iv;
    Alcotest.test_case "refinement (Table V)" `Quick test_refinement_table_v;
    Alcotest.test_case "rejects non-positive ideal" `Quick test_lbo_rejects_bad_ideal;
    Alcotest.test_case "empty observations rejected" `Quick test_ideal_estimate_empty;
    QCheck_alcotest.to_alcotest prop_lbo_at_least_one;
    QCheck_alcotest.to_alcotest prop_refinement_monotone;
    QCheck_alcotest.to_alcotest prop_argmin_lbo_is_total_over_own_other;
  ]
