(* Vec unit tests plus a qcheck model test against plain lists. *)

module Vec = Gcr_util.Vec

let check = Alcotest.check

let test_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v (i * 2)
  done;
  check Alcotest.int "length" 100 (Vec.length v);
  for i = 0 to 99 do
    check Alcotest.int "get" (i * 2) (Vec.get v i)
  done

let test_set () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Vec.set v 1 42;
  check Alcotest.(list int) "set" [ 1; 42; 3 ] (Vec.to_list v)

let test_pop () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  check Alcotest.(option int) "pop" (Some 3) (Vec.pop v);
  check Alcotest.(option int) "pop" (Some 2) (Vec.pop v);
  check Alcotest.(option int) "pop" (Some 1) (Vec.pop v);
  check Alcotest.(option int) "pop empty" None (Vec.pop v)

let test_swap_remove () =
  let v = Vec.of_list [ 10; 20; 30; 40 ] in
  let removed = Vec.swap_remove v 1 in
  check Alcotest.int "removed value" 20 removed;
  check Alcotest.int "length" 3 (Vec.length v);
  (* 40 moved into slot 1 *)
  check Alcotest.(list int) "contents" [ 10; 40; 30 ] (Vec.to_list v)

let test_swap_remove_last () =
  let v = Vec.of_list [ 1; 2 ] in
  check Alcotest.int "remove last" 2 (Vec.swap_remove v 1);
  check Alcotest.(list int) "contents" [ 1 ] (Vec.to_list v)

let test_bounds () =
  let v = Vec.of_list [ 1 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec: index out of bounds") (fun () ->
      ignore (Vec.get v 1));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec: index out of bounds") (fun () ->
      Vec.set v (-1) 0)

let test_clear () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Vec.clear v;
  check Alcotest.bool "empty" true (Vec.is_empty v);
  Vec.push v 7;
  check Alcotest.(list int) "reusable" [ 7 ] (Vec.to_list v)

let test_iter_fold () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  check Alcotest.int "fold sum" 10 (Vec.fold ( + ) 0 v);
  let collected = ref [] in
  Vec.iteri (fun i x -> collected := (i, x) :: !collected) v;
  check
    Alcotest.(list (pair int int))
    "iteri order"
    [ (0, 1); (1, 2); (2, 3); (3, 4) ]
    (List.rev !collected)

let test_exists () =
  let v = Vec.of_list [ 1; 3; 5 ] in
  check Alcotest.bool "exists odd" true (Vec.exists (fun x -> x = 3) v);
  check Alcotest.bool "no even" false (Vec.exists (fun x -> x mod 2 = 0) v)

let test_sort () =
  let v = Vec.of_list [ 3; 1; 2 ] in
  Vec.sort compare v;
  check Alcotest.(list int) "sorted" [ 1; 2; 3 ] (Vec.to_list v)

let test_last () =
  let v = Vec.create () in
  check Alcotest.(option int) "last empty" None (Vec.last v);
  Vec.push v 5;
  check Alcotest.(option int) "last" (Some 5) (Vec.last v)

let test_capacity_hint () =
  let v = Vec.make ~capacity:100 in
  check Alcotest.int "no eager allocation" 0 (Vec.capacity v);
  Vec.push v 1;
  check Alcotest.int "hint honoured at first push" 100 (Vec.capacity v);
  for i = 2 to 100 do
    Vec.push v i
  done;
  check Alcotest.int "no re-grow within hint" 100 (Vec.capacity v);
  Vec.push v 101;
  check Alcotest.int "doubles past the hint" 200 (Vec.capacity v);
  let small = Vec.make ~capacity:2 in
  Vec.push small 1;
  check Alcotest.int "minimum capacity" 8 (Vec.capacity small)

(* Removal must not retain references to removed elements: a dead element
   only reachable through a freed slot must be collected.  The removal runs
   in a non-inlined helper so no stale register or stack slot of the test
   frame keeps the last removed value alive across the major GC. *)
let assert_collected name removed =
  Gc.full_major ();
  check Alcotest.bool name false
    (List.exists (fun w -> Weak.check w 0) removed)

let weak_of x =
  let w = Weak.create 1 in
  Weak.set w 0 (Some x);
  w

let[@inline never] remove_tracked v ~n remove =
  List.init n (fun _ -> weak_of (remove v))

let test_pop_releases () =
  let v = Vec.create () in
  for i = 0 to 9 do
    Vec.push v (ref i)
  done;
  let removed = remove_tracked v ~n:5 (fun v -> Option.get (Vec.pop v)) in
  assert_collected "popped elements are collectable" removed;
  check Alcotest.int "remaining" 5 (Vec.length v)

let test_swap_remove_releases () =
  let v = Vec.create () in
  for i = 0 to 9 do
    Vec.push v (ref i)
  done;
  let removed = remove_tracked v ~n:5 (fun v -> Vec.swap_remove v 0) in
  assert_collected "swap-removed elements are collectable" removed

let test_clear_releases () =
  let v = Vec.create () in
  for i = 0 to 9 do
    Vec.push v (ref i)
  done;
  (* slot 0 is the documented residual: it survives clear as the dummy *)
  let removed = List.init 9 (fun i -> weak_of (Vec.get v (i + 1))) in
  Vec.clear v;
  assert_collected "cleared elements are collectable" removed

(* qcheck: a sequence of pushes and pops behaves like a list used as a
   stack. *)
let prop_stack_model =
  QCheck.Test.make ~name:"vec behaves like a list stack" ~count:300
    QCheck.(list (option small_int))
    (fun operations ->
      let v = Vec.create () in
      let model = ref [] in
      List.iter
        (fun op ->
          match op with
          | Some x ->
              Vec.push v x;
              model := x :: !model
          | None -> (
              match (Vec.pop v, !model) with
              | None, [] -> ()
              | Some a, b :: rest when a = b -> model := rest
              | _ -> failwith "mismatch"))
        operations;
      List.rev !model = Vec.to_list v)

let suite =
  [
    Alcotest.test_case "push/get" `Quick test_push_get;
    Alcotest.test_case "set" `Quick test_set;
    Alcotest.test_case "pop" `Quick test_pop;
    Alcotest.test_case "swap_remove" `Quick test_swap_remove;
    Alcotest.test_case "swap_remove last" `Quick test_swap_remove_last;
    Alcotest.test_case "bounds checks" `Quick test_bounds;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "iter/fold" `Quick test_iter_fold;
    Alcotest.test_case "exists" `Quick test_exists;
    Alcotest.test_case "sort" `Quick test_sort;
    Alcotest.test_case "last" `Quick test_last;
    Alcotest.test_case "capacity hint honoured" `Quick test_capacity_hint;
    Alcotest.test_case "pop releases elements" `Quick test_pop_releases;
    Alcotest.test_case "swap_remove releases elements" `Quick test_swap_remove_releases;
    Alcotest.test_case "clear releases elements" `Quick test_clear_releases;
    QCheck_alcotest.to_alcotest prop_stack_model;
  ]
