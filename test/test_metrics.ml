(* Cost metrics over measurements. *)

module Metrics = Gcr_core.Metrics
module Measurement = Gcr_runtime.Measurement

let check = Alcotest.check

let measurement ~wall_total ~wall_stw ~cycles_mutator ~cycles_gc ~cycles_gc_stw =
  {
    Measurement.benchmark = "test";
    gc = "Test";
    heap_words = 1000;
    seed = 1;
    outcome = Measurement.Completed;
    wall_total;
    wall_stw;
    cycles_mutator;
    cycles_gc;
    cycles_gc_stw;
    pauses = [];
    pause_hist = Gcr_util.Histogram.create ();
    latency_metered = None;
    latency_simple = None;
    allocated_words = 0;
    allocated_objects = 0;
    gc_stats = Gcr_gcs.Gc_types.no_stats;
    limit_changes = 0;
    heap_limit_peak_words = 1000;
    footprint_word_cycles = 0.0;
  }

let m =
  measurement ~wall_total:1000 ~wall_stw:100 ~cycles_mutator:5000 ~cycles_gc:800
    ~cycles_gc_stw:300

let close = Alcotest.float 1e-9

let test_wall_time () =
  check close "total" 1000.0 (Metrics.total Metrics.Wall_time m);
  check close "apparent gc = pauses" 100.0 (Metrics.apparent_gc Metrics.Wall_time m);
  check close "other" 900.0 (Metrics.other Metrics.Wall_time m)

let test_cpu_cycles () =
  check close "total" 5800.0 (Metrics.total Metrics.Cpu_cycles m);
  check close "apparent gc = all gc-thread cycles" 800.0
    (Metrics.apparent_gc Metrics.Cpu_cycles m);
  check close "other = mutator cycles" 5000.0 (Metrics.other Metrics.Cpu_cycles m)

let test_energy () =
  (* active 5800, idle = 16*1000 - 5800 = 10200 at 0.15 *)
  check close "total" (5800.0 +. (0.15 *. 10200.0)) (Metrics.total Metrics.Energy m);
  check Alcotest.bool "other positive" true (Metrics.other Metrics.Energy m > 0.0)

let test_measurement_helpers () =
  check Alcotest.int "cycles_total" 5800 (Measurement.cycles_total m);
  check Alcotest.int "time_other" 900 (Measurement.time_other m);
  check Alcotest.int "cycles_other" 5000 (Measurement.cycles_other m);
  check Alcotest.int "pause-window cycles" 300 (Measurement.cycles_gc_pause_window m);
  check close "stw time fraction" 0.1 (Measurement.stw_time_fraction m);
  check close "stw cycle fraction" (300.0 /. 5800.0) (Measurement.stw_cycle_fraction m);
  check close "no pauses -> 0 mean" 0.0 (Measurement.mean_pause_ms m)

let test_pause_stats () =
  let hist = Gcr_util.Histogram.create () in
  Gcr_util.Histogram.record hist 3600;
  Gcr_util.Histogram.record hist 7200;
  let m =
    {
      m with
      Measurement.pauses =
        [
          { Gcr_engine.Engine.start = 0; duration = 3600; reason = "a" };
          { Gcr_engine.Engine.start = 10; duration = 7200; reason = "b" };
        ];
      pause_hist = hist;
    }
  in
  check Alcotest.int "count" 2 (Measurement.pause_count m);
  check (Alcotest.float 1e-6) "mean ms" 0.0015 (Measurement.mean_pause_ms m)

let suite =
  [
    Alcotest.test_case "wall time metric" `Quick test_wall_time;
    Alcotest.test_case "cpu cycles metric" `Quick test_cpu_cycles;
    Alcotest.test_case "energy metric" `Quick test_energy;
    Alcotest.test_case "measurement helpers" `Quick test_measurement_helpers;
    Alcotest.test_case "pause stats" `Quick test_pause_stats;
  ]
