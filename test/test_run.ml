(* The runtime composition layer: config rules, event budgets, the ideal
   ground-truth runner. *)

module Registry = Gcr_gcs.Registry
module Machine = Gcr_mach.Machine
module Suite = Gcr_workloads.Suite
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement

let check = Alcotest.check

let tiny = Spec.scale (Suite.find_exn "jme") 0.1

let test_epsilon_ignores_heap_words () =
  (* Epsilon's heap is the machine memory, not the -Xmx analogue. *)
  let m =
    Run.execute (Run.default_config ~spec:tiny ~gc:Registry.Epsilon ~heap_words:1 ~seed:2)
  in
  check Alcotest.bool "completed despite heap_words=1" true (Measurement.completed m);
  check Alcotest.int "heap is machine memory" Machine.default.Machine.memory_words
    m.Measurement.heap_words

let test_max_events_aborts () =
  let config =
    {
      (Run.default_config ~spec:tiny ~gc:Registry.Serial ~heap_words:30_000 ~seed:2) with
      Run.max_events = Some 10;
    }
  in
  let m = Run.execute config in
  match m.Measurement.outcome with
  | Measurement.Failed reason -> check Alcotest.string "budget" "event budget exhausted" reason
  | Measurement.Completed -> Alcotest.fail "expected budget abort"

let test_invalid_spec_rejected () =
  let bad = { tiny with Spec.mutator_threads = 0 } in
  try
    ignore (Run.execute (Run.default_config ~spec:bad ~gc:Registry.Serial ~heap_words:10_000 ~seed:1));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_region_words_config () =
  let config =
    {
      (Run.default_config ~spec:tiny ~gc:Registry.Serial ~heap_words:32_768 ~seed:2) with
      Run.region_words = 128;
    }
  in
  let m = Run.execute config in
  check Alcotest.bool "completed with small regions" true (Measurement.completed m)

let test_execute_ideal_properties () =
  let m = Run.execute_ideal ~spec:tiny ~machine:Machine.default ~seed:3 in
  check Alcotest.bool "completed" true (Measurement.completed m);
  check Alcotest.string "uses Epsilon" "Epsilon" m.Measurement.gc;
  check Alcotest.int "no gc cycles" 0 m.Measurement.cycles_gc;
  (* the ideal's wall is a lower bound for every real collector's wall *)
  let serial =
    Run.execute (Run.default_config ~spec:tiny ~gc:Registry.Serial ~heap_words:8_192 ~seed:3)
  in
  check Alcotest.bool "ideal wall <= serial wall" true
    (m.Measurement.wall_total <= serial.Measurement.wall_total);
  (* barrier-free: ideal mutator cycles are also a lower bound *)
  check Alcotest.bool "ideal cycles <= serial mutator cycles" true
    (m.Measurement.cycles_mutator <= serial.Measurement.cycles_mutator)

let test_seed_changes_run () =
  let run seed =
    Run.execute (Run.default_config ~spec:tiny ~gc:Registry.Serial ~heap_words:30_000 ~seed)
  in
  let a = run 1 and b = run 2 in
  check Alcotest.bool "different seeds differ somewhere" true
    (a.Measurement.wall_total <> b.Measurement.wall_total
    || a.Measurement.allocated_words <> b.Measurement.allocated_words)

let suite =
  [
    Alcotest.test_case "epsilon ignores heap_words" `Quick test_epsilon_ignores_heap_words;
    Alcotest.test_case "max_events aborts" `Quick test_max_events_aborts;
    Alcotest.test_case "invalid spec rejected" `Quick test_invalid_spec_rejected;
    Alcotest.test_case "region_words configurable" `Quick test_region_words_config;
    Alcotest.test_case "execute_ideal" `Quick test_execute_ideal_properties;
    Alcotest.test_case "seed changes run" `Quick test_seed_changes_run;
  ]
