(* Statistics against hand-computed values. *)

module Stats = Gcr_util.Stats

let check = Alcotest.check

let close = Alcotest.float 1e-9

let roughly eps = Alcotest.float eps

let test_mean () =
  check close "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  check close "singleton" 7.0 (Stats.mean [| 7.0 |])

let test_mean_empty () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty sample set")
    (fun () -> ignore (Stats.mean [||]))

let test_stddev () =
  (* samples 2,4,4,4,5,5,7,9: mean 5, population sd 2, sample sd = sqrt(32/7) *)
  let samples = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check (roughly 1e-9) "sample stddev" (sqrt (32.0 /. 7.0)) (Stats.stddev samples);
  check close "single sample sd" 0.0 (Stats.stddev [| 3.0 |])

let test_geomean () =
  check (roughly 1e-9) "geomean" 4.0 (Stats.geomean [| 2.0; 8.0 |]);
  check (roughly 1e-9) "geomean of equal" 3.0 (Stats.geomean [| 3.0; 3.0; 3.0 |]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geomean: non-positive sample") (fun () ->
      ignore (Stats.geomean [| 1.0; 0.0 |]))

let test_min_max () =
  let samples = [| 3.0; -1.0; 4.0 |] in
  check close "min" (-1.0) (Stats.min samples);
  check close "max" 4.0 (Stats.max samples)

let test_percentile () =
  let samples = [| 10.; 20.; 30.; 40.; 50. |] in
  check close "p0" 10.0 (Stats.percentile samples 0.0);
  check close "p100" 50.0 (Stats.percentile samples 100.0);
  check close "p50" 30.0 (Stats.percentile samples 50.0);
  check close "p25" 20.0 (Stats.percentile samples 25.0);
  (* interpolation between ranks *)
  check close "p10" 14.0 (Stats.percentile samples 10.0)

let test_percentile_unsorted () =
  let samples = [| 50.; 10.; 30.; 20.; 40. |] in
  check close "sorts internally" 30.0 (Stats.percentile samples 50.0)

let test_t_table () =
  check close "df=1" 12.706 (Stats.t_critical_95 1);
  check close "df=19 (20 invocations)" 2.093 (Stats.t_critical_95 19);
  check close "asymptotic" 1.96 (Stats.t_critical_95 1000)

let test_ci95 () =
  (* n=4, sd=1, mean irrelevant: ci = t(3) * 1/2 = 3.182/2 *)
  let samples = [| 1.0; 2.0; 3.0; 4.0 |] in
  let sd = Stats.stddev samples in
  let expected = 3.182 *. sd /. 2.0 in
  check (roughly 1e-9) "ci95" expected (Stats.ci95_half_width samples);
  check close "ci of singleton" 0.0 (Stats.ci95_half_width [| 5.0 |])

let test_summarize () =
  let s = Stats.summarize [| 1.0; 3.0 |] in
  check Alcotest.int "n" 2 s.Stats.n;
  check close "mean" 2.0 s.Stats.mean;
  check close "min" 1.0 s.Stats.min;
  check close "max" 3.0 s.Stats.max

let prop_mean_bounded =
  QCheck.Test.make ~name:"mean lies between min and max" ~count:300
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let a = Array.of_list xs in
      let m = Stats.mean a in
      m >= Stats.min a -. 1e-9 && m <= Stats.max a +. 1e-9)

let prop_geomean_le_mean =
  QCheck.Test.make ~name:"geomean <= arithmetic mean (AM-GM)" ~count:300
    QCheck.(list_of_size Gen.(1 -- 30) (float_range 0.001 100.0))
    (fun xs ->
      let a = Array.of_list xs in
      Stats.geomean a <= Stats.mean a +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 30) (float_bound_exclusive 100.0)) (pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))
    (fun (xs, (p1, p2)) ->
      let a = Array.of_list xs in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile a lo <= Stats.percentile a hi +. 1e-9)

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "mean empty raises" `Quick test_mean_empty;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "geomean" `Quick test_geomean;
    Alcotest.test_case "min/max" `Quick test_min_max;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "percentile unsorted" `Quick test_percentile_unsorted;
    Alcotest.test_case "t table" `Quick test_t_table;
    Alcotest.test_case "ci95" `Quick test_ci95;
    Alcotest.test_case "summarize" `Quick test_summarize;
    QCheck_alcotest.to_alcotest prop_mean_bounded;
    QCheck_alcotest.to_alcotest prop_geomean_le_mean;
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
  ]
