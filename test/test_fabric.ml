(* The differential suite behind the campaign fabric's central promise:
   a multi-process campaign is bit-identical to the in-process one — at
   any worker count, through worker crashes, and through artifact-store
   corruption (which must read as a miss and re-execute, never as a
   wrong result). *)

module Registry = Gcr_gcs.Registry
module Suite = Gcr_workloads.Suite
module Harness = Gcr_core.Harness
module Metrics = Gcr_core.Metrics
module Minheap = Gcr_core.Minheap
module Fabric = Gcr_sched.Fabric
module Artifact_store = Gcr_sched.Artifact_store

let check = Alcotest.check

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "gcr-fabric-test-%d-%d" (Unix.getpid ()) !counter)
    in
    (* stale leftovers from a killed run would fake warm hits *)
    if Sys.file_exists dir then
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    dir

(* OCaml 5 forbids [Unix.fork] for the whole life of a process once any
   domain has ever been spawned, and [Pool.map ~jobs:n>1] spawns
   domains.  So this suite (a) uses the domain pool's serial inline path
   ([jobs = 1]) as the reference for the fork-based tests, (b) runs the
   [jobs = 2] domain-pool comparison as its *last* test, and (c) is
   registered before any other domain-spawning suite in [test_main]. *)

let campaign_config ~workers ~jobs =
  {
    (Harness.default_config ()) with
    Harness.invocations = 2;
    scale = 0.1;
    heap_factors = [ 1.9; 3.0 ];
    log_progress = false;
    jobs;
    workers;
    cache_dir = None;
  }

let benchmarks = [ Suite.find_exn "h2" ]

let run_with ?(jobs = 1) ~workers () =
  Harness.run_campaign (campaign_config ~workers ~jobs) ~benchmarks
    ~gcs:Registry.production

let serial = lazy (run_with ~workers:None ())

let fabric1 = lazy (run_with ~workers:(Some 1) ())

let fabric4 = lazy (run_with ~workers:(Some 4) ())

let all_gcs = Registry.Epsilon :: Registry.production

let factors = [ 1.9; 3.0 ]

(* Measurements are plain data, so structural equality is bit-equality
   of everything the reports are derived from. *)
let check_campaigns_identical ~what reference candidate =
  check Alcotest.bool
    (Printf.sprintf "%s: all measurements bit-identical" what)
    true
    (Harness.all_measurements reference = Harness.all_measurements candidate);
  check Alcotest.int
    (Printf.sprintf "%s: minheap words equal" what)
    (Harness.minheap_words reference ~bench:"h2")
    (Harness.minheap_words candidate ~bench:"h2");
  List.iter
    (fun gc ->
      List.iter
        (fun factor ->
          check Alcotest.bool
            (Printf.sprintf "%s: runs identical %s@%g" what (Registry.name gc) factor)
            true
            (Harness.runs reference ~bench:"h2" ~gc ~factor
            = Harness.runs candidate ~bench:"h2" ~gc ~factor))
        factors)
    all_gcs;
  List.iter
    (fun metric ->
      List.iter
        (fun gc ->
          List.iter
            (fun factor ->
              check Alcotest.bool
                (Printf.sprintf "%s: lbo equal %s@%g" what (Registry.name gc) factor)
                true
                (Harness.lbo_value reference metric ~bench:"h2" ~gc ~factor
                = Harness.lbo_value candidate metric ~bench:"h2" ~gc ~factor))
            factors)
        Registry.production)
    [ Metrics.Wall_time; Metrics.Cpu_cycles ]

let test_fabric_one_worker_identical () =
  check_campaigns_identical ~what:"serial vs workers=1" (Lazy.force serial)
    (Lazy.force fabric1)

let test_fabric_four_workers_identical () =
  check_campaigns_identical ~what:"serial vs workers=4" (Lazy.force serial)
    (Lazy.force fabric4);
  check_campaigns_identical ~what:"workers=1 vs workers=4" (Lazy.force fabric1)
    (Lazy.force fabric4)

let test_summary_accounting () =
  let s = Harness.summary (Lazy.force fabric4) in
  (* 2 invocations × (Epsilon + 5 production collectors × 2 factors) *)
  check Alcotest.int "cell count" 22 s.Harness.cells;
  check Alcotest.int "no cache in play" 0 s.Harness.cache_hits;
  check Alcotest.int "worker processes" 4 s.Harness.worker_processes;
  check Alcotest.int "every cell accounted to a worker or the parent"
    s.Harness.cells
    (Array.fold_left ( + ) 0 s.Harness.per_worker + s.Harness.parent_cells);
  check Alcotest.bool "campaign took measurable time" true (s.Harness.elapsed_s > 0.0);
  let p = Harness.summary (Lazy.force serial) in
  check Alcotest.int "pool reports no worker processes" 0 p.Harness.worker_processes

(* A worker that dies mid-group must have its unfinished cells reassigned
   — and the recorded campaign must not show a trace of the crash. *)
let test_worker_crash_reassigns () =
  Unix.putenv "GCR_FABRIC_CRASH_AFTER" "2";
  let crashed =
    Fun.protect
      ~finally:(fun () -> Unix.putenv "GCR_FABRIC_CRASH_AFTER" "")
      (fun () -> run_with ~workers:(Some 2) ())
  in
  let s = Harness.summary crashed in
  check Alcotest.bool "cells were reassigned" true (s.Harness.reassigned_cells > 0);
  check Alcotest.int "every cell still accounted" s.Harness.cells
    (Array.fold_left ( + ) 0 s.Harness.per_worker + s.Harness.parent_cells);
  check_campaigns_identical ~what:"serial vs crashed fabric" (Lazy.force serial) crashed

(* --- Scheduler A/B: either policy yields the identical report. --- *)

let test_round_robin_identical () =
  let config =
    { (campaign_config ~workers:(Some 2) ~jobs:1) with
      Harness.sched = Some Fabric.Round_robin
    }
  in
  let rr = Harness.run_campaign config ~benchmarks ~gcs:Registry.production in
  check_campaigns_identical ~what:"serial vs round-robin fabric" (Lazy.force serial) rr

(* --- S2: both parallelism knobs at once — the fabric wins. --- *)

let test_fabric_wins_over_jobs () =
  let both = run_with ~jobs:4 ~workers:(Some 2) () in
  let s = Harness.summary both in
  check Alcotest.int "fabric executed (jobs ignored)" 2 s.Harness.worker_processes;
  check_campaigns_identical ~what:"serial vs jobs+workers" (Lazy.force serial) both

(* --- Socket transport: the same fabric over TCP. ---

   Workers are forked from [on_listen] — after the coordinator has bound
   its (ephemeral) port, before it starts accepting — so the connection
   is race-free.  Each child becomes a real [gcr worker --connect]
   process via [Fabric.worker_connect]. *)

let fork_socket_worker ~port ~store_dir =
  match Unix.fork () with
  | 0 ->
      let store = Option.map (fun dir -> Artifact_store.create ~dir) store_dir in
      Unix._exit
        (match
           Fabric.worker_connect ~host:"127.0.0.1" ~port ?store ~retry_for:20.0 ()
         with
        | Ok code -> code
        | Error msg ->
            Printf.eprintf "socket worker failed: %s\n%!" msg;
            3)
  | pid -> pid

(* [store_dirs]: one entry per worker; [None] forks a storeless worker
   that fetches tapes over the wire. *)
let run_socket ?cache_dir ~store_dirs () =
  let pids = ref [] in
  let config =
    {
      (campaign_config ~workers:(Some (List.length store_dirs)) ~jobs:1) with
      Harness.cache_dir;
      listen = Some ("127.0.0.1", 0);
      connect_timeout = 30.0;
      on_listen =
        Some
          (fun port ->
            List.iter
              (fun store_dir -> pids := fork_socket_worker ~port ~store_dir :: !pids)
              store_dirs);
    }
  in
  let campaign = Harness.run_campaign config ~benchmarks ~gcs:Registry.production in
  let statuses = List.map (fun pid -> snd (Unix.waitpid [] pid)) !pids in
  (campaign, statuses)

(* Two storeless workers: every tape crosses the wire (fetch on hit,
   generate-and-publish on miss).  The minheap memo is cleared first so
   the probe searches ride the socket as first-class plan cells. *)
let test_socket_fabric_identical () =
  let reference = Lazy.force serial in
  Minheap.clear_memo ();
  let campaign, statuses = run_socket ~store_dirs:[ None; None ] () in
  check_campaigns_identical ~what:"serial vs socket fabric" reference campaign;
  let s = Harness.summary campaign in
  check Alcotest.bool "probes rode the fabric" true (s.Harness.probe_cells > 0);
  check Alcotest.int "two socket workers" 2 (List.length s.Harness.worker_rows);
  List.iter
    (fun (r : Fabric.worker_row) ->
      check Alcotest.string
        (Printf.sprintf "worker %d transport" r.Fabric.row_id)
        "socket" r.Fabric.row_transport)
    s.Harness.worker_rows;
  List.iter
    (fun st ->
      check Alcotest.bool "socket worker exited cleanly" true (st = Unix.WEXITED 0))
    statuses

(* One worker sharing the coordinator's store, one fetching over the
   wire: warm the store's tapes first (a pipe-fabric campaign on a
   narrower factor grid — same (spec, seed) groups, so the same tapes),
   then check the mixed fleet reproduces the serial report and that
   tapes really were served over the socket. *)
let test_socket_mixed_store_identical () =
  let dir = fresh_dir () in
  let warm_config =
    { (campaign_config ~workers:(Some 1) ~jobs:1) with
      Harness.cache_dir = Some dir;
      heap_factors = [ 1.9 ];
    }
  in
  let (_ : Harness.campaign) =
    Harness.run_campaign warm_config ~benchmarks ~gcs:Registry.production
  in
  let campaign, statuses =
    run_socket ~cache_dir:dir ~store_dirs:[ Some dir; None ] ()
  in
  check_campaigns_identical ~what:"serial vs mixed-store socket fabric"
    (Lazy.force serial) campaign;
  let s = Harness.summary campaign in
  check Alcotest.bool "tapes were served over the wire" true (s.Harness.wire_tapes > 0);
  List.iter
    (fun st ->
      check Alcotest.bool "socket worker exited cleanly" true (st = Unix.WEXITED 0))
    statuses

(* Kill a socket worker mid-campaign (the crash hook makes worker 0
   _exit after two results): the coordinator must requeue its cells and
   the report must not show a trace. *)
let test_socket_worker_crash_reassigns () =
  Unix.putenv "GCR_FABRIC_CRASH_AFTER" "2";
  let campaign, statuses =
    Fun.protect
      ~finally:(fun () -> Unix.putenv "GCR_FABRIC_CRASH_AFTER" "")
      (fun () -> run_socket ~store_dirs:[ None; None ] ())
  in
  let s = Harness.summary campaign in
  check Alcotest.bool "cells were reassigned" true (s.Harness.reassigned_cells > 0);
  check Alcotest.bool "a worker death was recorded" true (s.Harness.worker_deaths >= 1);
  check Alcotest.bool "the crash exit code surfaced" true
    (List.mem (Unix.WEXITED 97) statuses);
  check_campaigns_identical ~what:"serial vs socket fabric with a killed worker"
    (Lazy.force serial) campaign

(* A worker that garbles its stream (raw bytes below the framing — an
   unterminated varint) must read as Corrupt at the coordinator and be
   treated exactly like a death: requeue, identical report, never a
   parse of untrusted bytes. *)
let test_garbled_stream_reassigns () =
  Unix.putenv "GCR_FABRIC_GARBLE_AFTER" "2";
  let garbled =
    Fun.protect
      ~finally:(fun () -> Unix.putenv "GCR_FABRIC_GARBLE_AFTER" "")
      (fun () -> run_with ~workers:(Some 2) ())
  in
  let s = Harness.summary garbled in
  check Alcotest.bool "cells were reassigned" true (s.Harness.reassigned_cells > 0);
  check Alcotest.bool "the garbler was declared dead" true (s.Harness.worker_deaths >= 1);
  check_campaigns_identical ~what:"serial vs garbled fabric" (Lazy.force serial) garbled

(* --- Artifact-store corruption: flip one byte, observe a clean miss. --- *)

let tiny_campaign ~workers ~cache_dir =
  let config =
    {
      (Harness.default_config ()) with
      Harness.invocations = 1;
      scale = 0.1;
      heap_factors = [ 1.9 ];
      log_progress = false;
      jobs = 1;
      workers;
      cache_dir;
    }
  in
  Harness.run_campaign config
    ~benchmarks:[ Suite.find_exn "jme" ]
    ~gcs:[ Registry.Serial; Registry.G1 ]

let artifacts dir ~suffix =
  Array.to_list (Sys.readdir dir)
  |> List.filter (fun f -> Filename.check_suffix f suffix)
  |> List.sort compare

(* Flip one byte mid-file (the marshalled payload) and one early byte
   (the entry's structural header) — the latter once segfaulted the
   process, because Marshal on corrupted input is not exception-safe;
   the store must reject the bytes before Marshal ever sees them. *)
let flip_byte path =
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string data in
  let flip pos = Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x5a)) in
  flip (Bytes.length b / 2);
  flip (min 20 (Bytes.length b - 1));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_result_corruption_reexecutes () =
  let dir = fresh_dir () in
  (* settle the minheap memo first (uncached throwaway campaign): probe
     runs otherwise ride the fabric into the same store, and "the first
     .run entry" below could name a probe instead of a grid cell *)
  let (_ : Harness.campaign) = tiny_campaign ~workers:(Some 1) ~cache_dir:None in
  let cold = tiny_campaign ~workers:(Some 1) ~cache_dir:(Some dir) in
  check Alcotest.int "cold campaign misses everything" 0
    (Harness.summary cold).Harness.cache_hits;
  let warm = tiny_campaign ~workers:(Some 1) ~cache_dir:(Some dir) in
  let cells = (Harness.summary warm).Harness.cells in
  check Alcotest.int "warm campaign hits everything" cells
    (Harness.summary warm).Harness.cache_hits;
  (* flip one byte of one result entry: the sealed payload digest no
     longer matches, so that cell must re-execute — and produce the
     identical measurement *)
  (match artifacts dir ~suffix:".run" with
  | entry :: _ -> flip_byte (Filename.concat dir entry)
  | [] -> Alcotest.fail "expected result artifacts in the store");
  let healed = tiny_campaign ~workers:(Some 1) ~cache_dir:(Some dir) in
  check Alcotest.int "corrupted entry re-executed, the rest hit" (cells - 1)
    (Harness.summary healed).Harness.cache_hits;
  check Alcotest.bool "re-execution is bit-identical" true
    (Harness.all_measurements warm = Harness.all_measurements healed);
  let again = tiny_campaign ~workers:(Some 1) ~cache_dir:(Some dir) in
  check Alcotest.int "the re-execution healed the store" cells
    (Harness.summary again).Harness.cache_hits

let test_tape_corruption_regenerates () =
  let dir = fresh_dir () in
  let first = tiny_campaign ~workers:(Some 2) ~cache_dir:(Some dir) in
  let tapes = artifacts dir ~suffix:".tape" in
  check Alcotest.bool "campaign published tape artifacts" true (tapes <> []);
  List.iter (fun t -> flip_byte (Filename.concat dir t)) tapes;
  (* every tape now fails its checksum: workers must regenerate them and
     still replay every result from the (intact) result cache *)
  let after = tiny_campaign ~workers:(Some 2) ~cache_dir:(Some dir) in
  check Alcotest.bool "corrupt tapes do not change the campaign" true
    (Harness.all_measurements first = Harness.all_measurements after);
  check Alcotest.int "results still hit" (Harness.summary after).Harness.cells
    (Harness.summary after).Harness.cache_hits;
  (* the regenerated artifacts are valid again *)
  List.iter
    (fun t ->
      let path = Filename.concat dir t in
      check Alcotest.bool (Printf.sprintf "%s healed" t) true (Sys.file_exists path))
    tapes

(* Last on purpose: spawning domains forbids every later fork (above). *)
let test_domain_pool_identical () =
  let pool = run_with ~workers:None ~jobs:2 () in
  check_campaigns_identical ~what:"serial vs domain pool" (Lazy.force serial) pool;
  check_campaigns_identical ~what:"domain pool vs workers=4" pool (Lazy.force fabric4)

let suite =
  [
    Alcotest.test_case "workers=1 identical to serial" `Quick
      test_fabric_one_worker_identical;
    Alcotest.test_case "workers=4 identical to serial and workers=1" `Quick
      test_fabric_four_workers_identical;
    Alcotest.test_case "summary accounting" `Quick test_summary_accounting;
    Alcotest.test_case "worker crash reassigns cells" `Quick test_worker_crash_reassigns;
    Alcotest.test_case "round-robin scheduler identical" `Quick test_round_robin_identical;
    Alcotest.test_case "--workers wins over --jobs" `Quick test_fabric_wins_over_jobs;
    Alcotest.test_case "socket fabric identical (probes over the wire)" `Quick
      test_socket_fabric_identical;
    Alcotest.test_case "mixed-store socket fleet identical" `Quick
      test_socket_mixed_store_identical;
    Alcotest.test_case "socket worker crash reassigns cells" `Quick
      test_socket_worker_crash_reassigns;
    Alcotest.test_case "garbled worker stream reassigns cells" `Quick
      test_garbled_stream_reassigns;
    Alcotest.test_case "result corruption re-executes" `Quick
      test_result_corruption_reexecutes;
    Alcotest.test_case "tape corruption regenerates" `Quick test_tape_corruption_regenerates;
    Alcotest.test_case "domain pool identical to serial and fabric" `Quick
      test_domain_pool_identical;
  ]
