(* The differential suite behind the campaign fabric's central promise:
   a multi-process campaign is bit-identical to the in-process one — at
   any worker count, through worker crashes, and through artifact-store
   corruption (which must read as a miss and re-execute, never as a
   wrong result). *)

module Registry = Gcr_gcs.Registry
module Suite = Gcr_workloads.Suite
module Harness = Gcr_core.Harness
module Metrics = Gcr_core.Metrics

let check = Alcotest.check

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "gcr-fabric-test-%d-%d" (Unix.getpid ()) !counter)
    in
    (* stale leftovers from a killed run would fake warm hits *)
    if Sys.file_exists dir then
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    dir

(* OCaml 5 forbids [Unix.fork] for the whole life of a process once any
   domain has ever been spawned, and [Pool.map ~jobs:n>1] spawns
   domains.  So this suite (a) uses the domain pool's serial inline path
   ([jobs = 1]) as the reference for the fork-based tests, (b) runs the
   [jobs = 2] domain-pool comparison as its *last* test, and (c) is
   registered before any other domain-spawning suite in [test_main]. *)

let campaign_config ~workers ~jobs =
  {
    (Harness.default_config ()) with
    Harness.invocations = 2;
    scale = 0.1;
    heap_factors = [ 1.9; 3.0 ];
    log_progress = false;
    jobs;
    workers;
    cache_dir = None;
  }

let benchmarks = [ Suite.find_exn "h2" ]

let run_with ?(jobs = 1) ~workers () =
  Harness.run_campaign (campaign_config ~workers ~jobs) ~benchmarks
    ~gcs:Registry.production

let serial = lazy (run_with ~workers:None ())

let fabric1 = lazy (run_with ~workers:(Some 1) ())

let fabric4 = lazy (run_with ~workers:(Some 4) ())

let all_gcs = Registry.Epsilon :: Registry.production

let factors = [ 1.9; 3.0 ]

(* Measurements are plain data, so structural equality is bit-equality
   of everything the reports are derived from. *)
let check_campaigns_identical ~what reference candidate =
  check Alcotest.bool
    (Printf.sprintf "%s: all measurements bit-identical" what)
    true
    (Harness.all_measurements reference = Harness.all_measurements candidate);
  check Alcotest.int
    (Printf.sprintf "%s: minheap words equal" what)
    (Harness.minheap_words reference ~bench:"h2")
    (Harness.minheap_words candidate ~bench:"h2");
  List.iter
    (fun gc ->
      List.iter
        (fun factor ->
          check Alcotest.bool
            (Printf.sprintf "%s: runs identical %s@%g" what (Registry.name gc) factor)
            true
            (Harness.runs reference ~bench:"h2" ~gc ~factor
            = Harness.runs candidate ~bench:"h2" ~gc ~factor))
        factors)
    all_gcs;
  List.iter
    (fun metric ->
      List.iter
        (fun gc ->
          List.iter
            (fun factor ->
              check Alcotest.bool
                (Printf.sprintf "%s: lbo equal %s@%g" what (Registry.name gc) factor)
                true
                (Harness.lbo_value reference metric ~bench:"h2" ~gc ~factor
                = Harness.lbo_value candidate metric ~bench:"h2" ~gc ~factor))
            factors)
        Registry.production)
    [ Metrics.Wall_time; Metrics.Cpu_cycles ]

let test_fabric_one_worker_identical () =
  check_campaigns_identical ~what:"serial vs workers=1" (Lazy.force serial)
    (Lazy.force fabric1)

let test_fabric_four_workers_identical () =
  check_campaigns_identical ~what:"serial vs workers=4" (Lazy.force serial)
    (Lazy.force fabric4);
  check_campaigns_identical ~what:"workers=1 vs workers=4" (Lazy.force fabric1)
    (Lazy.force fabric4)

let test_summary_accounting () =
  let s = Harness.summary (Lazy.force fabric4) in
  (* 2 invocations × (Epsilon + 5 production collectors × 2 factors) *)
  check Alcotest.int "cell count" 22 s.Harness.cells;
  check Alcotest.int "no cache in play" 0 s.Harness.cache_hits;
  check Alcotest.int "worker processes" 4 s.Harness.worker_processes;
  check Alcotest.int "every cell accounted to a worker or the parent"
    s.Harness.cells
    (Array.fold_left ( + ) 0 s.Harness.per_worker + s.Harness.parent_cells);
  check Alcotest.bool "campaign took measurable time" true (s.Harness.elapsed_s > 0.0);
  let p = Harness.summary (Lazy.force serial) in
  check Alcotest.int "pool reports no worker processes" 0 p.Harness.worker_processes

(* A worker that dies mid-group must have its unfinished cells reassigned
   — and the recorded campaign must not show a trace of the crash. *)
let test_worker_crash_reassigns () =
  Unix.putenv "GCR_FABRIC_CRASH_AFTER" "2";
  let crashed =
    Fun.protect
      ~finally:(fun () -> Unix.putenv "GCR_FABRIC_CRASH_AFTER" "")
      (fun () -> run_with ~workers:(Some 2) ())
  in
  let s = Harness.summary crashed in
  check Alcotest.bool "cells were reassigned" true (s.Harness.reassigned_cells > 0);
  check Alcotest.int "every cell still accounted" s.Harness.cells
    (Array.fold_left ( + ) 0 s.Harness.per_worker + s.Harness.parent_cells);
  check_campaigns_identical ~what:"serial vs crashed fabric" (Lazy.force serial) crashed

(* --- Artifact-store corruption: flip one byte, observe a clean miss. --- *)

let tiny_campaign ~workers ~cache_dir =
  let config =
    {
      (Harness.default_config ()) with
      Harness.invocations = 1;
      scale = 0.1;
      heap_factors = [ 1.9 ];
      log_progress = false;
      jobs = 1;
      workers;
      cache_dir;
    }
  in
  Harness.run_campaign config
    ~benchmarks:[ Suite.find_exn "jme" ]
    ~gcs:[ Registry.Serial; Registry.G1 ]

let artifacts dir ~suffix =
  Array.to_list (Sys.readdir dir)
  |> List.filter (fun f -> Filename.check_suffix f suffix)
  |> List.sort compare

(* Flip one byte mid-file (the marshalled payload) and one early byte
   (the entry's structural header) — the latter once segfaulted the
   process, because Marshal on corrupted input is not exception-safe;
   the store must reject the bytes before Marshal ever sees them. *)
let flip_byte path =
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string data in
  let flip pos = Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x5a)) in
  flip (Bytes.length b / 2);
  flip (min 20 (Bytes.length b - 1));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_result_corruption_reexecutes () =
  let dir = fresh_dir () in
  let cold = tiny_campaign ~workers:(Some 1) ~cache_dir:(Some dir) in
  check Alcotest.int "cold campaign misses everything" 0
    (Harness.summary cold).Harness.cache_hits;
  let warm = tiny_campaign ~workers:(Some 1) ~cache_dir:(Some dir) in
  let cells = (Harness.summary warm).Harness.cells in
  check Alcotest.int "warm campaign hits everything" cells
    (Harness.summary warm).Harness.cache_hits;
  (* flip one byte of one result entry: the sealed payload digest no
     longer matches, so that cell must re-execute — and produce the
     identical measurement *)
  (match artifacts dir ~suffix:".run" with
  | entry :: _ -> flip_byte (Filename.concat dir entry)
  | [] -> Alcotest.fail "expected result artifacts in the store");
  let healed = tiny_campaign ~workers:(Some 1) ~cache_dir:(Some dir) in
  check Alcotest.int "corrupted entry re-executed, the rest hit" (cells - 1)
    (Harness.summary healed).Harness.cache_hits;
  check Alcotest.bool "re-execution is bit-identical" true
    (Harness.all_measurements warm = Harness.all_measurements healed);
  let again = tiny_campaign ~workers:(Some 1) ~cache_dir:(Some dir) in
  check Alcotest.int "the re-execution healed the store" cells
    (Harness.summary again).Harness.cache_hits

let test_tape_corruption_regenerates () =
  let dir = fresh_dir () in
  let first = tiny_campaign ~workers:(Some 2) ~cache_dir:(Some dir) in
  let tapes = artifacts dir ~suffix:".tape" in
  check Alcotest.bool "campaign published tape artifacts" true (tapes <> []);
  List.iter (fun t -> flip_byte (Filename.concat dir t)) tapes;
  (* every tape now fails its checksum: workers must regenerate them and
     still replay every result from the (intact) result cache *)
  let after = tiny_campaign ~workers:(Some 2) ~cache_dir:(Some dir) in
  check Alcotest.bool "corrupt tapes do not change the campaign" true
    (Harness.all_measurements first = Harness.all_measurements after);
  check Alcotest.int "results still hit" (Harness.summary after).Harness.cells
    (Harness.summary after).Harness.cache_hits;
  (* the regenerated artifacts are valid again *)
  List.iter
    (fun t ->
      let path = Filename.concat dir t in
      check Alcotest.bool (Printf.sprintf "%s healed" t) true (Sys.file_exists path))
    tapes

(* Last on purpose: spawning domains forbids every later fork (above). *)
let test_domain_pool_identical () =
  let pool = run_with ~workers:None ~jobs:2 () in
  check_campaigns_identical ~what:"serial vs domain pool" (Lazy.force serial) pool;
  check_campaigns_identical ~what:"domain pool vs workers=4" pool (Lazy.force fabric4)

let suite =
  [
    Alcotest.test_case "workers=1 identical to serial" `Quick
      test_fabric_one_worker_identical;
    Alcotest.test_case "workers=4 identical to serial and workers=1" `Quick
      test_fabric_four_workers_identical;
    Alcotest.test_case "summary accounting" `Quick test_summary_accounting;
    Alcotest.test_case "worker crash reassigns cells" `Quick test_worker_crash_reassigns;
    Alcotest.test_case "result corruption re-executes" `Quick
      test_result_corruption_reexecutes;
    Alcotest.test_case "tape corruption regenerates" `Quick test_tape_corruption_regenerates;
    Alcotest.test_case "domain pool identical to serial and fabric" `Quick
      test_domain_pool_identical;
  ]
