(* The live-set differential oracle.

   At a stop-the-world safepoint the set of reachable objects is a pure
   function of the mutation history — which objects were allocated and how
   they were wired — and not of the collector running underneath.
   Collectors differ in *when* they stop the world, but any two that stop
   after the same mutation history must see exactly the same reachable
   set.  A collector that frees a reachable object, loses one to a stale
   remset/RC entry, or resurrects a dead id diverges here, identified by
   birth serial.

   "Same history" is certified by {!Heap.history_digest}, a
   collector-independent commutative fold over every allocation and
   pointer write.  Totals like (packets executed, objects allocated) are
   NOT sufficient on their own once two mutator threads run: concurrent
   collectors tax the mutators unevenly, which can reorder cross-thread
   writes and reach a different — but equally correct — heap graph at the
   same totals.  (The first draft of this oracle keyed on totals alone and
   flagged exactly such a reordering as a Shenandoah bug.)  The totals
   stay in the key only to make divergence reports readable.

   The probe rides {!Run.execute}'s [on_pause] hook: it fires on the
   pause_begin event, after the world is stopped and before the
   collector's pause work starts, so every collector is observed at the
   exact heap state the mutators produced.  Epsilon never pauses and
   participates vacuously; runs that OOM or abort are compared over the
   safepoints they did reach (the shape grid's low heap sizes force such
   runs on purpose). *)

module Registry = Gcr_gcs.Registry
module Heap = Gcr_heap.Heap
module Obj_model = Gcr_heap.Obj_model
module Suite = Gcr_workloads.Suite
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement

let check = Alcotest.check

(* The whole frontier: the paper's six plus the experimental extensions. *)
let every_kind = Registry.all @ Registry.experimental

(* Allocation-heavy enough that the shape grid's heaps actually pause —
   a probe on a heap nothing ever fills checks nothing. *)
let tiny = Spec.scale (Suite.find_exn "lusearch") 0.02

type shape = { seed : int; packets : int; threads : int; heap_words : int }

(* Heap range reaches low enough that some collectors OOM: prefix
   agreement must hold for aborted runs too. *)
let shape_gen =
  QCheck.Gen.(
    map
      (fun (seed, packets, threads, heap_words) -> { seed; packets; threads; heap_words })
      (quad (int_range 0 10_000) (int_range 4 14) (int_range 1 2)
         (int_range 8_000 20_000)))

let print_shape s =
  Printf.sprintf "seed=%d packets=%d threads=%d heap=%d" s.seed s.packets s.threads
    s.heap_words

let shape_arb = QCheck.make ~print:print_shape shape_gen

let spec_of_shape s =
  { tiny with Spec.packets_per_thread = s.packets; mutator_threads = s.threads }

(* Reachability, computed with the probe's own scratch state: the heap's
   built-in [reachable_from] burns a scratch-mark epoch, which would
   corrupt a concurrent collector's in-flight trace. *)
let snapshot (p : Run.probe) =
  let h = p.Run.probe_heap in
  let seen = Hashtbl.create 512 in
  let stack = Stack.create () in
  let push id =
    if (not (Obj_model.is_null id)) && Heap.is_live h id && not (Hashtbl.mem seen id)
    then begin
      Hashtbl.replace seen id ();
      Stack.push id stack
    end
  in
  p.Run.probe_roots push;
  while not (Stack.is_empty stack) do
    Heap.iter_fields h (Stack.pop stack) push
  done;
  let serials = Hashtbl.fold (fun id () acc -> Heap.obj_serial h id :: acc) seen [] in
  List.sort compare serials

(* One run: measurement plus the map from progress coordinate to reachable
   serial set.  A collector may pause twice at the same coordinate (e.g. a
   failed-allocation retry); no mutation can have happened in between, so
   the snapshots must agree even within one run. *)
let run_with_snapshots kind s =
  let spec = spec_of_shape s in
  let snaps = Hashtbl.create 64 in
  let errors = ref [] in
  let on_pause p =
    let h = p.Run.probe_heap in
    let key =
      (p.Run.probe_packets (), Heap.objects_allocated_total h, Heap.history_digest h)
    in
    let set = snapshot p in
    match Hashtbl.find_opt snaps key with
    | Some prev ->
        if prev <> set then begin
          let packets, allocs, _ = key in
          errors :=
            Printf.sprintf "%s: two pauses at packets=%d allocs=%d disagree"
              (Registry.name kind) packets allocs
            :: !errors
        end
    | None -> Hashtbl.replace snaps key set
  in
  (* A modest event budget: a shape below a collector's minimum heap makes
     the stop-the-world collectors thrash (pause per allocation) until the
     engine's "beyond usefulness" abort; the default budget would let them
     rack up hundreds of thousands of probed pauses first.  Healthy runs
     of these shapes use a few tens of thousands of events. *)
  let m =
    Run.execute ~on_pause
      {
        (Run.default_config ~spec ~gc:kind ~heap_words:s.heap_words ~seed:s.seed) with
        Run.max_events = Some 300_000;
      }
  in
  (m, snaps, !errors)

(* Run every collector over the shape and fold the snapshots into one
   reference map; any key two collectors share must carry the same set.
   Returns ([shared], [failed]): how many safepoint coordinates were
   actually cross-checked, and how many runs did not complete. *)
let check_shape ?(kinds = every_kind) s =
  let reference = Hashtbl.create 256 in
  let shared = ref 0 in
  let failed = ref 0 in
  List.iter
    (fun kind ->
      let m, snaps, errors = run_with_snapshots kind s in
      if not (Measurement.completed m) then incr failed;
      (match errors with
      | [] -> ()
      | e :: _ -> QCheck.Test.fail_reportf "intra-run snapshot mismatch: %s" e);
      Hashtbl.iter
        (fun ((packets, allocs, _) as key) set ->
          match Hashtbl.find_opt reference key with
          | Some (kind0, set0) ->
              incr shared;
              if set0 <> set then
                QCheck.Test.fail_reportf
                  "live sets diverge at packets=%d allocs=%d: %s sees %d objects, %s \
                   sees %d"
                  packets allocs (Registry.name kind0) (List.length set0)
                  (Registry.name kind) (List.length set)
          | None -> Hashtbl.replace reference key (kind, set))
        snaps)
    kinds;
  (!shared, !failed)

let heavy = Sys.getenv_opt "GCR_LIVESET_HEAVY" <> None

let prop_frontier_agrees =
  QCheck.Test.make
    ~name:"all collectors see the same live set at shared safepoints"
    ~count:(if heavy then 40 else 8)
    shape_arb
    (fun s ->
      let (_ : int * int) = check_shape s in
      true)

(* The oracle must not be vacuous: on a canonical mid-size shape the
   collectors' pause schedules overlap at many progress coordinates. *)
let test_oracle_not_vacuous () =
  let shared, failed = check_shape { seed = 7; packets = 10; threads = 2; heap_words = 9_000 } in
  check Alcotest.bool "collectors share safepoint coordinates" true (shared > 0);
  check Alcotest.int "every collector completes this shape" 0 failed

(* Memory pressure: most of the frontier fails here (clean OOM or the
   event-budget thrash verdict), and agreement must still hold over the
   prefix each failing run reached. *)
let test_oracle_under_oom () =
  let shared, failed = check_shape { seed = 3; packets = 10; threads = 2; heap_words = 6_000 } in
  check Alcotest.bool "shared coordinates under pressure" true (shared > 0);
  check Alcotest.bool "shape forces at least one failure" true (failed > 0)

(* Observation is passive: probing every pause must not change the
   measurement of a single run. *)
let test_probe_passive () =
  let s = { seed = 11; packets = 8; threads = 2; heap_words = 10_000 } in
  let spec = spec_of_shape s in
  List.iter
    (fun kind ->
      let config =
        Run.default_config ~spec ~gc:kind ~heap_words:s.heap_words ~seed:s.seed
      in
      let probed = Run.execute ~on_pause:(fun p -> ignore (snapshot p)) config in
      let plain = Run.execute config in
      check Alcotest.bool
        (Printf.sprintf "probe does not perturb %s" (Registry.name kind))
        true (probed = plain))
    every_kind

let suite =
  [
    QCheck_alcotest.to_alcotest prop_frontier_agrees;
    Alcotest.test_case "oracle is not vacuous" `Quick test_oracle_not_vacuous;
    Alcotest.test_case "oracle holds under OOM" `Quick test_oracle_under_oom;
    Alcotest.test_case "probe is passive" `Quick test_probe_passive;
  ]
