(* Full mark-compact: dead objects purged, survivors densely re-placed,
   free pool restored, no headroom required. *)

module Heap = Gcr_heap.Heap
module Region = Gcr_heap.Region
module Obj_model = Gcr_heap.Obj_model
module Allocator = Gcr_heap.Allocator
module Engine = Gcr_engine.Engine
module Gc_types = Gcr_gcs.Gc_types
module Full_compact = Gcr_gcs.Full_compact
module Worker_pool = Gcr_gcs.Worker_pool
module Prng = Gcr_util.Prng

let check = Alcotest.check

(* Build a fragmented heap: objects scattered over many regions, a subset
   reachable from the roots.  Returns the ctx, engine, and the root list. *)
let build ~regions ~region_words ~objects ~live_every ~seed =
  let heap = Heap.create ~capacity_words:(regions * region_words) ~region_words () in
  let engine = Engine.create ~cpus:4 () in
  let ctx =
    Gc_types.make_ctx ~heap ~engine ~cost:Gcr_mach.Cost_model.default
      ~machine:Gcr_mach.Machine.default
  in
  let allocator = Allocator.create heap ~space:Region.Eden in
  Gcr_util.Vec.push ctx.Gc_types.allocators allocator;
  let prng = Prng.create seed in
  let roots = ref [] in
  let prev = ref Obj_model.null in
  for i = 0 to objects - 1 do
    let size = 4 + Prng.int prng 8 in
    match Allocator.alloc allocator ~size ~nfields:2 with
    | Allocator.Allocated { obj; _ } ->
        if i mod live_every = 0 then begin
          roots := obj :: !roots;
          (* chain some structure under the root *)
          Heap.set_field heap obj 0 !prev
        end;
        prev := obj
    | Allocator.Out_of_regions -> Alcotest.fail "test heap too small"
  done;
  (ctx.Gc_types.iter_roots := fun f -> List.iter f !roots);
  (ctx, engine, roots)

let run_compact ctx engine =
  let pool = Worker_pool.create ctx ~count:2 ~name:"compact-test" in
  let m = Engine.spawn engine ~kind:Engine.Mutator ~name:"driver" in
  let result = ref None in
  Engine.request_stop engine ~reason:"test" (fun () ->
      Full_compact.run ctx ~pool ~on_done:(fun r ->
          result := Some r;
          Engine.release_stop engine;
          Engine.exit_thread engine m));
  (match Engine.run engine () with
  | Engine.All_mutators_finished -> ()
  | Engine.Aborted reason -> Alcotest.failf "aborted: %s" reason);
  Option.get !result

let test_compacts () =
  let ctx, engine, roots =
    build ~regions:64 ~region_words:64 ~objects:400 ~live_every:5 ~seed:2
  in
  let heap = ctx.Gc_types.heap in
  let reachable_before = Heap.reachable_from heap !roots in
  let used_before = Heap.used_words heap in
  let result = run_compact ctx engine in
  (* survivors = exactly the reachable set *)
  check Alcotest.int "live objects = reachable set" (Hashtbl.length reachable_before)
    (Heap.live_objects heap);
  check Alcotest.int "marked = reachable" (Hashtbl.length reachable_before)
    result.Full_compact.objects_marked;
  Hashtbl.iter
    (fun id () -> check Alcotest.bool "survivor live" true (Heap.is_live heap id))
    reachable_before;
  (* garbage space reclaimed *)
  check Alcotest.bool "used shrank" true (Heap.used_words heap < used_before);
  check Alcotest.int "used = live exactly after compaction" (Heap.live_words_exact heap)
    (Heap.used_words heap);
  (* everything left is in old space *)
  Heap.iter_regions
    (fun r ->
      match r.Region.space with
      | Region.Free | Region.Old -> ()
      | Region.Eden | Region.Survivor -> Alcotest.fail "young region survived compaction")
    heap

let test_works_with_empty_pool () =
  (* Compaction needs no free headroom: fill every region first. *)
  let ctx, engine, _roots =
    build ~regions:16 ~region_words:64 ~objects:120 ~live_every:4 ~seed:3
  in
  let heap = ctx.Gc_types.heap in
  (* exhaust the pool with eden regions *)
  let rec drain () =
    match Heap.take_free_region heap ~space:Region.Eden with
    | Some _ -> drain ()
    | None -> ()
  in
  drain ();
  check Alcotest.int "pool empty" 0 (Heap.free_regions heap);
  let _ = run_compact ctx engine in
  check Alcotest.bool "pool replenished" true (Heap.free_regions heap > 0)

let test_idempotent_when_all_live () =
  let ctx, engine, _roots =
    build ~regions:32 ~region_words:64 ~objects:100 ~live_every:1 ~seed:4
  in
  let heap = ctx.Gc_types.heap in
  let live_before = Heap.live_objects heap in
  let _ = run_compact ctx engine in
  check Alcotest.int "nothing reclaimed" live_before (Heap.live_objects heap)

let suite =
  [
    Alcotest.test_case "compacts" `Quick test_compacts;
    Alcotest.test_case "works with empty pool" `Quick test_works_with_empty_pool;
    Alcotest.test_case "idempotent when all live" `Quick test_idempotent_when_all_live;
  ]
