(* Cache behaviour: cold populates, warm replays without executing,
   corruption is detected and repaired, closures are never cached. *)

module Registry = Gcr_gcs.Registry
module Suite = Gcr_workloads.Suite
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement
module Harness = Gcr_core.Harness
module Metrics = Gcr_core.Metrics
module Pool = Gcr_sched.Pool
module Result_cache = Gcr_sched.Result_cache

let check = Alcotest.check

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "gcr-result-cache-test-%d-%d" (Unix.getpid ()) !counter)
    in
    (* stale leftovers from a killed run would fake warm hits *)
    if Sys.file_exists dir then
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    dir

let entries dir =
  if Sys.file_exists dir then
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> Filename.check_suffix f ".run")
  else []

(* Count fresh Run.execute calls under [f] via the scheduler hook. *)
let counting_executes f =
  let count = Atomic.make 0 in
  let saved = !Pool.on_execute in
  Pool.on_execute := (fun _ -> Atomic.incr count);
  let result = Fun.protect ~finally:(fun () -> Pool.on_execute := saved) f in
  (result, Atomic.get count)

let tiny = Spec.scale (Suite.find_exn "jme") 0.1

let tiny_config seed =
  Run.default_config ~spec:tiny ~gc:Registry.Serial ~heap_words:40_000 ~seed

let test_cold_then_warm_execute_counts () =
  let cache = Result_cache.create ~dir:(fresh_dir ()) in
  let m1, cold = counting_executes (fun () -> Pool.execute ~cache (tiny_config 11)) in
  check Alcotest.int "cold run executes" 1 cold;
  check Alcotest.int "cold run populates the cache" 1 (List.length (entries (Result_cache.dir cache)));
  let m2, warm = counting_executes (fun () -> Pool.execute ~cache (tiny_config 11)) in
  check Alcotest.int "warm run executes nothing" 0 warm;
  check Alcotest.bool "warm measurement bit-identical" true (m1 = m2);
  (* a different seed is a different configuration *)
  let _, miss = counting_executes (fun () -> Pool.execute ~cache (tiny_config 12)) in
  check Alcotest.int "other config is a miss" 1 miss

let campaign_config ~cache_dir =
  {
    (Harness.default_config ()) with
    Harness.invocations = 1;
    scale = 0.1;
    heap_factors = [ 1.9 ];
    log_progress = false;
    jobs = 2;
    cache_dir = Some cache_dir;
  }

let test_warm_campaign_executes_zero_runs () =
  let dir = fresh_dir () in
  let benchmarks = [ Suite.find_exn "h2" ] in
  let run () =
    Harness.run_campaign (campaign_config ~cache_dir:dir) ~benchmarks
      ~gcs:Registry.production
  in
  let cold_campaign, cold = counting_executes run in
  check Alcotest.bool "cold campaign executes runs" true (cold > 0);
  check Alcotest.bool "cold campaign populates the cache" true (entries dir <> []);
  let warm_campaign, warm = counting_executes run in
  check Alcotest.int "warm campaign executes zero runs" 0 warm;
  (* ... and still reports the same campaign *)
  List.iter
    (fun gc ->
      check Alcotest.bool
        (Printf.sprintf "warm runs identical (%s)" (Registry.name gc))
        true
        (Harness.runs cold_campaign ~bench:"h2" ~gc ~factor:1.9
        = Harness.runs warm_campaign ~bench:"h2" ~gc ~factor:1.9))
    (Registry.Epsilon :: Registry.production);
  check Alcotest.bool "warm geomean identical" true
    (Harness.lbo_geomean cold_campaign Metrics.Cpu_cycles ~benches:[ "h2" ]
       ~gc:Registry.G1 ~factor:1.9
    = Harness.lbo_geomean warm_campaign Metrics.Cpu_cycles ~benches:[ "h2" ]
        ~gc:Registry.G1 ~factor:1.9)

let clobber_entry dir ~bytes =
  match entries dir with
  | [ entry ] ->
      let path = Filename.concat dir entry in
      let oc = open_out_gen [ Open_wronly; Open_trunc ] 0o644 path in
      output_string oc bytes;
      close_out oc
  | other -> Alcotest.fail (Printf.sprintf "expected one cache entry, got %d" (List.length other))

let test_corrupted_entries_discarded () =
  let cache = Result_cache.create ~dir:(fresh_dir ()) in
  let config = tiny_config 21 in
  let m1, _ = counting_executes (fun () -> Pool.execute ~cache config) in
  (* truncated entry: unmarshalling fails mid-stream *)
  clobber_entry (Result_cache.dir cache) ~bytes:"torn";
  let m2, reran = counting_executes (fun () -> Pool.execute ~cache config) in
  check Alcotest.int "truncated entry is re-executed" 1 reran;
  check Alcotest.bool "re-execution matches the original" true (m1 = m2);
  (* the re-run healed the cache *)
  let _, healed = counting_executes (fun () -> Pool.execute ~cache config) in
  check Alcotest.int "healed entry hits" 0 healed;
  (* a well-formed entry whose stored rendering belongs to a different
     config (stale digest, renamed file) is equally untrusted *)
  let other_cache = Result_cache.create ~dir:(fresh_dir ()) in
  let _ = Pool.execute ~cache:other_cache (tiny_config 22) in
  (match (entries (Result_cache.dir cache), entries (Result_cache.dir other_cache)) with
  | [ mine ], [ theirs ] ->
      let read path =
        let ic = open_in_bin path in
        let payload = really_input_string ic (in_channel_length ic) in
        close_in ic;
        payload
      in
      clobber_entry (Result_cache.dir cache) ~bytes:(read (Filename.concat (Result_cache.dir other_cache) theirs));
      ignore mine
  | _ -> Alcotest.fail "expected one entry per cache");
  let m3, mismatched = counting_executes (fun () -> Pool.execute ~cache config) in
  check Alcotest.int "digest/content mismatch is re-executed" 1 mismatched;
  check Alcotest.bool "mismatch re-execution matches the original" true (m1 = m3)

let test_custom_collector_bypasses_cache () =
  let cache = Result_cache.create ~dir:(fresh_dir ()) in
  let custom =
    {
      (tiny_config 31) with
      Run.make_collector = Some (fun ctx -> Gcr_gcs.Epsilon.make ctx);
      gc = Registry.Epsilon;
    }
  in
  let _, first = counting_executes (fun () -> Pool.execute ~cache custom) in
  let _, second = counting_executes (fun () -> Pool.execute ~cache custom) in
  check Alcotest.int "closure config always executes (1st)" 1 first;
  check Alcotest.int "closure config always executes (2nd)" 1 second;
  check Alcotest.bool "closure config never stored" true
    (entries (Result_cache.dir cache) = [])

let suite =
  [
    Alcotest.test_case "cold populates, warm replays" `Quick test_cold_then_warm_execute_counts;
    Alcotest.test_case "warm campaign executes zero runs" `Quick
      test_warm_campaign_executes_zero_runs;
    Alcotest.test_case "corrupted entries discarded" `Quick test_corrupted_entries_discarded;
    Alcotest.test_case "custom collector bypasses cache" `Quick
      test_custom_collector_bypasses_cache;
  ]
