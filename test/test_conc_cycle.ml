(* The shared concurrent cycle driver: phase sequencing, SATB hooks,
   cset selection behaviour, evacuation failure reporting. *)

module Heap = Gcr_heap.Heap
module Region = Gcr_heap.Region
module Obj_model = Gcr_heap.Obj_model
module Allocator = Gcr_heap.Allocator
module Engine = Gcr_engine.Engine
module Gc_types = Gcr_gcs.Gc_types
module Conc_cycle = Gcr_gcs.Conc_cycle
module Worker_pool = Gcr_gcs.Worker_pool

let check = Alcotest.check

let setup ?(regions = 64) () =
  let heap = Heap.create ~capacity_words:(regions * 64) ~region_words:64 () in
  let engine = Engine.create ~cpus:4 () in
  let ctx =
    Gc_types.make_ctx ~heap ~engine ~cost:Gcr_mach.Cost_model.default
      ~machine:Gcr_mach.Machine.default
  in
  let pool = Worker_pool.create ctx ~count:2 ~name:"cycle-test" in
  let cycle =
    Conc_cycle.create ctx ~pool ~garbage_threshold:0.25 ~reserve_regions:(fun () -> 2)
      ~concurrent_copy:true ()
  in
  (ctx, heap, engine, cycle)

(* Simple pause broker: real safepoints, no degeneration. *)
let broker engine _reason body =
  if Engine.stop_requested engine then body (fun () -> ())
  else
    Engine.request_stop engine ~reason:"test" (fun () ->
        body (fun () -> Engine.release_stop engine))

let populate ctx ~objects ~live_every =
  let heap = ctx.Gc_types.heap in
  let allocator = Allocator.create heap ~space:Region.Eden in
  Gcr_util.Vec.push ctx.Gc_types.allocators allocator;
  let roots = ref [] in
  for i = 0 to objects - 1 do
    match Allocator.alloc allocator ~size:8 ~nfields:1 with
    | Allocator.Allocated { obj; _ } ->
        if i mod live_every = 0 then roots := obj :: !roots
    | Allocator.Out_of_regions -> Alcotest.fail "test heap too small"
  done;
  (ctx.Gc_types.iter_roots := fun f -> List.iter f !roots);
  !roots

let run_cycle ctx engine cycle =
  let m = Engine.spawn engine ~kind:Engine.Mutator ~name:"driver" in
  ignore ctx;
  let result = ref None in
  Conc_cycle.start cycle ~pause:(broker engine) ~on_done:(fun ~evac_failed ->
      result := Some evac_failed;
      Engine.exit_thread engine m);
  (match Engine.run engine () with
  | Engine.All_mutators_finished -> ()
  | Engine.Aborted reason -> Alcotest.failf "aborted: %s" reason);
  Option.get !result

let test_cycle_reclaims () =
  let ctx, heap, engine, cycle = setup () in
  let roots = populate ctx ~objects:300 ~live_every:6 in
  let free_before = Heap.free_regions heap in
  let failed = run_cycle ctx engine cycle in
  check Alcotest.bool "no evac failure" false failed;
  check Alcotest.bool "memory reclaimed" true (Heap.free_regions heap > free_before);
  check Alcotest.int "one cycle completed" 1 (Conc_cycle.cycles_completed cycle);
  check Alcotest.bool "phase back to idle" true (Conc_cycle.phase cycle = Conc_cycle.Idle);
  List.iter
    (fun id -> check Alcotest.bool "root survived" true (Heap.is_live heap id))
    roots;
  (* both marking pauses were logged *)
  check Alcotest.int "two pauses (init + final mark)" 2 (List.length (Engine.pauses engine))

let test_cycle_counts_work () =
  let ctx, _, engine, cycle = setup () in
  ignore (populate ctx ~objects:200 ~live_every:4);
  ignore (run_cycle ctx engine cycle);
  check Alcotest.bool "objects marked" true (Conc_cycle.objects_marked cycle >= 50);
  check Alcotest.bool "words copied" true (Conc_cycle.words_copied cycle > 0)

let test_satb_publish_only_while_marking () =
  let ctx, heap, engine, cycle = setup () in
  let roots = populate ctx ~objects:50 ~live_every:50 in
  ignore roots;
  (* before the cycle: publishing is a no-op and must not crash *)
  Conc_cycle.satb_publish cycle 1;
  Conc_cycle.mark_new_object cycle 1;
  check Alcotest.bool "not marked outside marking" false (Heap.is_marked heap 1);
  ignore (run_cycle ctx engine cycle)

let test_double_start_rejected () =
  let ctx, _, engine, cycle = setup () in
  ignore (populate ctx ~objects:50 ~live_every:5);
  let m = Engine.spawn engine ~kind:Engine.Mutator ~name:"driver" in
  Conc_cycle.start cycle ~pause:(broker engine) ~on_done:(fun ~evac_failed:_ ->
      Engine.exit_thread engine m);
  Alcotest.check_raises "double start"
    (Invalid_argument "Conc_cycle.start: cycle in flight") (fun () ->
      Conc_cycle.start cycle ~pause:(broker engine) ~on_done:(fun ~evac_failed:_ -> ()));
  match Engine.run engine () with
  | Engine.All_mutators_finished -> ()
  | Engine.Aborted reason -> Alcotest.failf "aborted: %s" reason

let test_evac_failure_reported () =
  (* Live data fills the heap: the cset cannot be evacuated. *)
  let ctx, heap, engine, cycle = setup ~regions:8 () in
  ignore (populate ctx ~objects:40 ~live_every:1);
  (* everything live *)
  let rec drain () =
    match Heap.take_free_region heap ~space:Region.Old with
    | Some _ -> drain ()
    | None -> ()
  in
  drain ();
  let failed = run_cycle ctx engine cycle in
  (* with zero headroom the cset is empty or evacuation fails; either way
     the cycle terminates cleanly *)
  check Alcotest.bool "cycle terminated" true
    (Conc_cycle.phase cycle = Conc_cycle.Idle);
  ignore failed

let suite =
  [
    Alcotest.test_case "cycle reclaims" `Quick test_cycle_reclaims;
    Alcotest.test_case "cycle counts work" `Quick test_cycle_counts_work;
    Alcotest.test_case "satb outside marking is no-op" `Quick
      test_satb_publish_only_while_marking;
    Alcotest.test_case "double start rejected" `Quick test_double_start_rejected;
    Alcotest.test_case "evac failure terminates cleanly" `Quick test_evac_failure_reported;
  ]
