(* Evacuator: live objects move, dead objects die, regions return to the
   pool, failure on to-space exhaustion. *)

module Heap = Gcr_heap.Heap
module Region = Gcr_heap.Region
module Obj_model = Gcr_heap.Obj_model
module Allocator = Gcr_heap.Allocator
module Gc_types = Gcr_gcs.Gc_types
module Evacuator = Gcr_gcs.Evacuator
module Engine = Gcr_engine.Engine

let check = Alcotest.check

let make_ctx ?(regions = 16) ?(region_words = 64) () =
  let heap = Heap.create ~capacity_words:(regions * region_words) ~region_words () in
  let engine = Engine.create ~cpus:4 () in
  Gc_types.make_ctx ~heap ~engine ~cost:Gcr_mach.Cost_model.default
    ~machine:Gcr_mach.Machine.default

let alloc heap region ~size ~nfields =
  let id = Heap.alloc_in_region heap region ~size ~nfields in
  if Obj_model.is_null id then failwith "alloc: region full";
  id

let step_fully evacuator =
  let rec loop acc =
    let cost = Evacuator.step evacuator ~budget:3 in
    if cost > 0 || not (Evacuator.finished evacuator) then loop (acc + cost) else acc
  in
  loop 0

let test_basic_evacuation () =
  let ctx = make_ctx () in
  let heap = ctx.Gc_types.heap in
  let src = Option.get (Heap.take_free_region heap ~space:Region.Old) in
  let live = alloc heap src ~size:8 ~nfields:0 in
  let dead = alloc heap src ~size:8 ~nfields:0 in
  ignore (Heap.begin_mark_epoch heap);
  Heap.set_marked heap live;
  let target = Allocator.create heap ~space:Region.Old in
  let evacuator = Evacuator.create ctx ~concurrent:false ~choose_target:(fun _ -> target) in
  Evacuator.add_region evacuator src;
  let cost = step_fully evacuator in
  check Alcotest.bool "cost positive" true (cost > 0);
  check Alcotest.bool "live survives" true (Heap.is_live heap live);
  check Alcotest.bool "dead reclaimed" false (Heap.is_live heap dead);
  check Alcotest.bool "live moved out" true (Heap.obj_region heap live <> src.Region.index);
  check Alcotest.bool "region freed" true (Region.space_equal src.Region.space Region.Free);
  check Alcotest.int "one region released" 1 (Evacuator.regions_released evacuator);
  check Alcotest.int "words copied" 8 (Evacuator.words_copied evacuator);
  check Alcotest.int "objects copied" 1 (Evacuator.objects_copied evacuator);
  check Alcotest.int "age bumped" 1 (Heap.obj_age heap live)

let test_multiple_regions () =
  let ctx = make_ctx () in
  let heap = ctx.Gc_types.heap in
  ignore (Heap.begin_mark_epoch heap);
  let target = Allocator.create heap ~space:Region.Old in
  let evacuator = Evacuator.create ctx ~concurrent:false ~choose_target:(fun _ -> target) in
  let live_ids = ref [] in
  for _ = 1 to 3 do
    let r = Option.get (Heap.take_free_region heap ~space:Region.Old) in
    for i = 0 to 4 do
      let o = alloc heap r ~size:8 ~nfields:0 in
      if i mod 2 = 0 then begin
        Heap.set_marked heap o;
        live_ids := o :: !live_ids
      end
    done;
    Evacuator.add_region evacuator r
  done;
  ignore (step_fully evacuator);
  check Alcotest.int "three released" 3 (Evacuator.regions_released evacuator);
  check Alcotest.int "nine survivors" 9 (Evacuator.objects_copied evacuator);
  List.iter
    (fun id -> check Alcotest.bool "live survived" true (Heap.is_live heap id))
    !live_ids;
  check Alcotest.int "table holds only survivors" 9 (Heap.live_objects heap)

let test_failure_on_exhaustion () =
  (* 2 regions total: source full of live data, no free region for the
     target allocator once the second is also taken. *)
  let ctx = make_ctx ~regions:2 () in
  let heap = ctx.Gc_types.heap in
  let src = Option.get (Heap.take_free_region heap ~space:Region.Old) in
  let blocker = Option.get (Heap.take_free_region heap ~space:Region.Old) in
  ignore blocker;
  ignore (Heap.begin_mark_epoch heap);
  let o = alloc heap src ~size:8 ~nfields:0 in
  Heap.set_marked heap o;
  let target = Allocator.create heap ~space:Region.Old in
  let evacuator = Evacuator.create ctx ~concurrent:false ~choose_target:(fun _ -> target) in
  Evacuator.add_region evacuator src;
  (match Evacuator.step evacuator ~budget:10 with
  | exception Evacuator.Evacuation_failure -> ()
  | _ -> Alcotest.fail "expected Evacuation_failure")

let test_pinned_rejected () =
  let ctx = make_ctx () in
  let heap = ctx.Gc_types.heap in
  let r = Option.get (Heap.take_free_region heap ~space:Region.Old) in
  r.Region.pinned <- true;
  let target = Allocator.create heap ~space:Region.Old in
  let evacuator = Evacuator.create ctx ~concurrent:false ~choose_target:(fun _ -> target) in
  Alcotest.check_raises "pinned" (Invalid_argument "Evacuator.add_region: pinned region")
    (fun () -> Evacuator.add_region evacuator r)

let test_concurrent_copy_costs_more () =
  let run ~concurrent =
    let ctx = make_ctx () in
    let heap = ctx.Gc_types.heap in
    let src = Option.get (Heap.take_free_region heap ~space:Region.Old) in
    ignore (Heap.begin_mark_epoch heap);
    for _ = 1 to 5 do
      let o = alloc heap src ~size:8 ~nfields:0 in
      Heap.set_marked heap o
    done;
    let target = Allocator.create heap ~space:Region.Old in
    let evacuator = Evacuator.create ctx ~concurrent ~choose_target:(fun _ -> target) in
    Evacuator.add_region evacuator src;
    step_fully evacuator
  in
  check Alcotest.bool "CAS-guarded copies cost more" true
    (run ~concurrent:true > run ~concurrent:false)

let test_choose_target_per_object () =
  let ctx = make_ctx () in
  let heap = ctx.Gc_types.heap in
  let src = Option.get (Heap.take_free_region heap ~space:Region.Eden) in
  ignore (Heap.begin_mark_epoch heap);
  let young = alloc heap src ~size:8 ~nfields:0 in
  let tenured = alloc heap src ~size:8 ~nfields:0 in
  Heap.set_obj_age heap tenured 10;
  Heap.set_marked heap young;
  Heap.set_marked heap tenured;
  let survivor = Allocator.create heap ~space:Region.Survivor in
  let old = Allocator.create heap ~space:Region.Old in
  let choose id = if Heap.obj_age heap id >= 2 then old else survivor in
  let evacuator = Evacuator.create ctx ~concurrent:false ~choose_target:choose in
  Evacuator.add_region evacuator src;
  ignore (step_fully evacuator);
  let space_of id = Heap.obj_space heap id in
  check Alcotest.bool "young to survivor" true
    (Region.space_equal (space_of young) Region.Survivor);
  check Alcotest.bool "tenured to old" true (Region.space_equal (space_of tenured) Region.Old)

let suite =
  [
    Alcotest.test_case "basic evacuation" `Quick test_basic_evacuation;
    Alcotest.test_case "multiple regions" `Quick test_multiple_regions;
    Alcotest.test_case "failure on exhaustion" `Quick test_failure_on_exhaustion;
    Alcotest.test_case "pinned rejected" `Quick test_pinned_rejected;
    Alcotest.test_case "concurrent copies cost more" `Quick test_concurrent_copy_costs_more;
    Alcotest.test_case "per-object target" `Quick test_choose_target_per_object;
  ]
