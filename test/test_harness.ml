(* Harness campaigns, minheap search, report generation, validation — one
   shared tiny campaign keeps the cost manageable. *)

module Registry = Gcr_gcs.Registry
module Suite = Gcr_workloads.Suite
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement
module Harness = Gcr_core.Harness
module Metrics = Gcr_core.Metrics
module Lbo = Gcr_core.Lbo
module Minheap = Gcr_core.Minheap
module Report = Gcr_core.Report
module Validate = Gcr_core.Validate

let check = Alcotest.check

let config =
  {
    (Harness.default_config ()) with
    Harness.invocations = 2;
    scale = 0.1;
    heap_factors = [ 1.9; 3.0 ];
    log_progress = false;
  }

let benchmarks = [ Suite.find_exn "h2" ]

let campaign =
  lazy (Harness.run_campaign config ~benchmarks ~gcs:Registry.production)

let test_cells_populated () =
  let c = Lazy.force campaign in
  List.iter
    (fun gc ->
      List.iter
        (fun factor ->
          let runs = Harness.runs c ~bench:"h2" ~gc ~factor in
          check Alcotest.int
            (Printf.sprintf "invocations for %s@%g" (Registry.name gc) factor)
            2 (List.length runs))
        config.Harness.heap_factors)
    Registry.production

let test_epsilon_included () =
  let c = Lazy.force campaign in
  let runs = Harness.runs c ~bench:"h2" ~gc:Registry.Epsilon ~factor:3.0 in
  check Alcotest.int "epsilon runs" 2 (List.length runs);
  List.iter
    (fun (m : Measurement.t) ->
      check Alcotest.int "epsilon never pauses" 0 (Measurement.pause_count m))
    runs

let test_minheap_recorded () =
  let c = Lazy.force campaign in
  let words = Harness.minheap_words c ~bench:"h2" in
  check Alcotest.bool "minheap positive" true (words > 0);
  (* heap words actually used = factor x minheap, rounded to regions *)
  let runs = Harness.runs c ~bench:"h2" ~gc:Registry.Serial ~factor:3.0 in
  List.iter
    (fun (m : Measurement.t) ->
      check Alcotest.bool "heap close to 3x minheap" true
        (abs (m.Measurement.heap_words - (3 * words)) <= 2 * 256))
    runs

let test_observations_and_lbo () =
  let c = Lazy.force campaign in
  let observations = Harness.observations c Metrics.Cpu_cycles ~bench:"h2" ~factor:3.0 in
  check Alcotest.bool "several collectors observed" true (List.length observations >= 3);
  let ideal = Option.get (Harness.ideal c Metrics.Cpu_cycles ~bench:"h2" ~factor:3.0) in
  check Alcotest.bool "ideal positive" true (ideal > 0.0);
  List.iter
    (fun gc ->
      match Harness.lbo_value c Metrics.Cpu_cycles ~bench:"h2" ~gc ~factor:3.0 with
      | Some v -> check Alcotest.bool (Registry.name gc ^ " lbo >= 1") true (v >= 1.0)
      | None -> ())
    Registry.production

let test_lbo_geomean () =
  let c = Lazy.force campaign in
  match
    Harness.lbo_geomean c Metrics.Cpu_cycles ~benches:[ "h2" ] ~gc:Registry.Serial ~factor:3.0
  with
  | Some v -> check Alcotest.bool "geomean sane" true (v >= 1.0 && v < 10.0)
  | None -> Alcotest.fail "expected geomean"

let test_geomean_empty_benches () =
  (* regression: used to raise Invalid_argument from Stats.geomean *)
  let c = Lazy.force campaign in
  check Alcotest.bool "empty bench list yields None, not an exception" true
    (Harness.lbo_geomean c Metrics.Cpu_cycles ~benches:[] ~gc:Registry.Serial ~factor:3.0
    = None)

let test_geomean_blank_on_missing () =
  let c = Lazy.force campaign in
  check Alcotest.bool "missing bench blanks the mean" true
    (Harness.lbo_geomean c Metrics.Cpu_cycles ~benches:[ "h2"; "not-run" ]
       ~gc:Registry.Serial ~factor:3.0
    = None)

let test_larger_heap_cheaper () =
  (* The fundamental time-space tradeoff must be visible. *)
  let c = Lazy.force campaign in
  match
    ( Harness.lbo_value c Metrics.Cpu_cycles ~bench:"h2" ~gc:Registry.Serial ~factor:1.9,
      Harness.lbo_value c Metrics.Cpu_cycles ~bench:"h2" ~gc:Registry.Serial ~factor:3.0 )
  with
  | Some small, Some large ->
      check Alcotest.bool "overhead shrinks with heap" true (large <= small +. 0.02)
  | _ -> Alcotest.fail "missing values"

let with_stdout_captured f =
  (* The report prints to stdout; just make sure generators run without
     raising and produce output. *)
  let buffer = Filename.temp_file "gcr_report" ".txt" in
  let saved = Unix.dup Unix.stdout in
  let fd = Unix.openfile buffer [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)
    f;
  let ic = open_in buffer in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Sys.remove buffer;
  s

let contains haystack needle =
  let n = String.length needle and len = String.length haystack in
  let rec go i = i + n <= len && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_report_generators_run () =
  let c = Lazy.force campaign in
  let out =
    with_stdout_captured (fun () ->
        Report.table_vi c;
        Report.table_vii c;
        Report.table_viii c;
        Report.table_ix c;
        Report.table_x c;
        Report.table_xi c;
        Report.worked_example c ~bench:"h2" ~factor:3.0 ())
  in
  List.iter
    (fun needle -> check Alcotest.bool ("output has " ^ needle) true (contains out needle))
    [ "TABLE VI"; "TABLE VII"; "TABLE VIII"; "TABLE IX"; "TABLE X"; "TABLE XI"; "TABLE II" ]

let test_validation_bound_holds () =
  let c = Lazy.force campaign in
  List.iter
    (fun metric ->
      let rows = Validate.tightness_rows c ~metric ~factor:3.0 in
      check Alcotest.bool "has rows" true (rows <> []);
      List.iter
        (fun (r : Validate.tightness_row) ->
          check Alcotest.bool
            (Printf.sprintf "%s/%s bound holds (%s)" r.Validate.benchmark r.Validate.collector
               (Metrics.name metric))
            true
            (r.Validate.lbo <= r.Validate.true_overhead +. 1e-6))
        rows)
    [ Metrics.Wall_time; Metrics.Cpu_cycles ]

let test_minheap_properties () =
  Minheap.clear_memo ();
  let spec = Spec.scale (Suite.find_exn "jme") 0.1 in
  let config =
    { (Minheap.default_config ()) with Minheap.machine = Gcr_mach.Machine.default }
  in
  let words = Minheap.find ~config spec in
  check Alcotest.bool "positive" true (words > 0);
  check Alcotest.int "region multiple" 0 (words mod 256);
  (* completes at the found size *)
  let m =
    Run.execute (Run.default_config ~spec ~gc:Registry.G1 ~heap_words:words ~seed:7)
  in
  check Alcotest.bool "completes at minheap" true (Measurement.completed m);
  (* memoised *)
  let again = Minheap.find ~config spec in
  check Alcotest.int "memoised" words again

let suite =
  [
    Alcotest.test_case "cells populated" `Quick test_cells_populated;
    Alcotest.test_case "epsilon included" `Quick test_epsilon_included;
    Alcotest.test_case "minheap recorded" `Quick test_minheap_recorded;
    Alcotest.test_case "observations and lbo" `Quick test_observations_and_lbo;
    Alcotest.test_case "lbo geomean" `Quick test_lbo_geomean;
    Alcotest.test_case "geomean blank on missing" `Quick test_geomean_blank_on_missing;
    Alcotest.test_case "geomean empty benches" `Quick test_geomean_empty_benches;
    Alcotest.test_case "larger heap cheaper" `Quick test_larger_heap_cheaper;
    Alcotest.test_case "report generators run" `Quick test_report_generators_run;
    Alcotest.test_case "validation bound holds" `Quick test_validation_bound_holds;
    Alcotest.test_case "minheap properties" `Quick test_minheap_properties;
  ]
